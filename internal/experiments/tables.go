package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sparsifier"
	"repro/internal/stats"
	"repro/internal/train"
)

// Table1 reproduces the paper's Table 1 — the qualitative strengths and
// weaknesses of each sparsifier — but with the judgement *measured* on a
// common workload instead of asserted: build-up and density predictability
// come from realised densities, selection cost and overheads from wall
// times, and the two static columns (hyperparameter tuning, worker idling)
// from the schemes' definitions.
func Table1(o Options) *Table {
	workers := 8
	iters := 24
	if o.Quick {
		workers = 4
		iters = 12
	}
	density := 0.01
	w := newWorkload("mlp")

	// The hard-threshold sparsifier needs its hyperparameter tuned on a
	// sample gradient before training — exactly the weakness Table 1 notes.
	sample := sampleGradient(w)
	hard := sparsifier.TuneHardThreshold(sample, density)

	type rowInfo struct {
		name    string
		factory sparsifier.Factory
		tuning  string // static property
		idling  string // static property
	}
	rows := []rowInfo{
		{"topk", sparsifierFactory("topk"), "No", "No"},
		{"cltk", sparsifierFactory("cltk"), "No", "Yes"},
		{"hardthreshold", func() sparsifier.Sparsifier { return hard }, "Yes", "No"},
		{"sidco", sparsifierFactory("sidco"), "No", "No"},
		{"deft", sparsifierFactory("deft"), "No", "No"},
	}

	t := &Table{
		ID:    "table1",
		Title: fmt.Sprintf("Sparsifier characteristics, measured on %d workers at d=%g — paper Table 1", workers, density),
		Columns: []string{"sparsifier", "build-up", "density ratio", "unpredictable density",
			"hyperparam tuning", "worker idling", "selection (µs)", "overhead (µs)"},
	}
	specs := make([]runSpec, len(rows))
	for i, ri := range rows {
		specs[i] = runSpec{
			key: fmt.Sprintf("table1/%s/n%d/i%d/s%d", ri.name, workers, iters, o.Seed),
			w:   w, factory: ri.factory,
			cfg: train.Config{
				Workers: workers, Density: density, LR: appLR("vision"),
				Iterations: iters, Seed: 4000 + o.Seed,
			},
		}
	}
	warm(o, specs)
	for i, ri := range rows {
		r := specs[i].run(o)
		ratio := r.ActualDensity.MeanY() / density
		buildUp := "No"
		if ratio > 1.5 {
			buildUp = "Yes"
		}
		// Unpredictable: realised density far from the target or unstable
		// over iterations.
		rel := relStd(&r.ActualDensity)
		unpred := "No"
		if math.Abs(ratio-1) > 0.5 || rel > 0.25 {
			unpred = "Yes"
		}
		selUS := r.SelectTime / float64(iters) * 1e6
		ovhUS := r.PartitionTime / float64(iters) * 1e6
		t.Rows = append(t.Rows, []string{
			ri.name, buildUp, f2(ratio), unpred, ri.tuning, ri.idling,
			fmt.Sprintf("%.0f", selUS), fmt.Sprintf("%.0f", ovhUS),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: Top-k and threshold schemes build up / drift in density; CLT-k idles workers; only DEFT avoids every column's weakness with low cost",
		"selection/overhead are per-iteration wall-clock maxima over workers; hard-threshold was tuned on a sample gradient before the run")
	return t
}

// relStd returns std(Y)/mean(Y) of a series (0 when empty or zero-mean).
func relStd(s *stats.Series) float64 {
	m := s.MeanY()
	if m == 0 || len(s.Y) == 0 {
		return 0
	}
	return math.Sqrt(stats.Variance(s.Y)) / m
}

// sampleGradient computes one minibatch gradient on a fresh replica
// (flattened) — the tuning sample for the hard-threshold scheme.
func sampleGradient(w train.Workload) []float64 {
	m := w.NewModel()
	params := m.Params()
	nn.ZeroGrads(params)
	m.Step(rng.New(99))
	flat := make([]float64, nn.TotalSize(params))
	train.FlattenGrads(params, flat)
	return flat
}

// Table2 reproduces the paper's Table 2: the application configurations.
// The rows record both the paper's setup and this reproduction's simulated
// substitute, so the substitution is visible in the artefact itself.
func Table2(o Options) *Table {
	t := &Table{
		ID:    "table2",
		Title: "DNN applications — paper Table 2 (paper setup → simulated substitute)",
		Columns: []string{"application", "paper model/dataset", "simulated substitute",
			"params", "batch/worker", "density"},
	}
	vision := models.DefaultVisionConfig()
	text := models.DefaultTextConfig()
	rec := models.DefaultRecsysConfig()
	vp := nn.TotalSize(models.NewVision(vision).NewModel().Params())
	tp := nn.TotalSize(models.NewText(text).NewModel().Params())
	rp := nn.TotalSize(models.NewRecsys(rec).NewModel().Params())
	t.Rows = append(t.Rows,
		[]string{"computer vision", "ResNet-18 / CIFAR-10 (B=25, 200 epochs)",
			fmt.Sprintf("residual CNN / synthetic %d-class %dx%dx%d images", vision.Data.Classes, vision.Data.Channels, vision.Data.Size, vision.Data.Size),
			fmt.Sprintf("%d", vp), fmt.Sprintf("%d", vision.BatchSize), "0.01"},
		[]string{"language modelling", "LSTM / WikiText-2 (B=25, 90 epochs)",
			fmt.Sprintf("LSTM / synthetic Markov text, vocab %d", text.Data.Vocab),
			fmt.Sprintf("%d", tp), fmt.Sprintf("%d", text.BatchSize), "0.001"},
		[]string{"recommendation", "NCF / MovieLens-20M (B=2^16, 30 epochs)",
			fmt.Sprintf("NCF / synthetic implicit feedback, %d users x %d items", rec.Data.Users, rec.Data.Items),
			fmt.Sprintf("%d", rp), fmt.Sprintf("%d", rec.Positives*(1+rec.NegRatio)), "0.1"},
	)
	t.Notes = append(t.Notes,
		"full-size layer catalogs of the paper's exact models back the cost experiments: resnet18 11.2M, lstm 136M, ncf 21M gradients (internal/shapes)")
	return t
}

// Ablation quantifies the design choices DESIGN.md calls out: Algorithm 3
// (norm-proportional k) vs uniform k, Algorithm 4 (LPT) vs round-robin and
// contiguous allocation, and Algorithm 2's second partitioning stage
// on/off. Balance numbers use the modeled max-worker cost; selection
// significance uses the realised error norm after a short run.
func Ablation(o Options) *Table {
	workers := 8
	iters := 30
	if o.Quick {
		workers = 4
		iters = 16
	}
	density := 0.01
	w := newWorkload("mlp")

	variants := []struct {
		name string
		opts core.Options
	}{
		{"deft (paper)", core.DefaultOptions()},
		{"uniform-k", core.Options{Partition: core.PartitionOpts{SecondStage: true}, UniformK: true}},
		{"round-robin alloc", core.Options{Partition: core.PartitionOpts{SecondStage: true}, Alloc: core.RoundRobinPolicy}},
		{"contiguous alloc", core.Options{Partition: core.PartitionOpts{SecondStage: true}, Alloc: core.ContiguousPolicy}},
		{"no second stage", core.Options{Partition: core.PartitionOpts{SecondStage: false}}},
	}
	t := &Table{
		ID:    "ablation",
		Title: fmt.Sprintf("DEFT design ablations (mlp, %d workers, d=%g)", workers, density),
		Columns: []string{"variant", "final loss", "tail ‖e‖", "mean density",
			"balance (max/mean cost)"},
	}
	specs := make([]runSpec, len(variants))
	for i, v := range variants {
		specs[i] = runSpec{
			key: fmt.Sprintf("ablation/%s/n%d/i%d/s%d", v.name, workers, iters, o.Seed),
			w:   w, factory: core.Factory(v.opts),
			cfg: train.Config{
				Workers: workers, Density: density, LR: appLR("vision"),
				Iterations: iters, Seed: 5000 + o.Seed,
			},
		}
	}
	warm(o, specs)
	for i, v := range variants {
		r := specs[i].run(o)
		balance := allocBalance(w, v.opts, workers, density)
		t.Rows = append(t.Rows, []string{
			v.name, f(r.TrainLoss.LastY()), f6(r.ErrorNorm.TailMeanY(0.25)),
			f6(r.ActualDensity.MeanY()), f2(balance),
		})
	}
	t.Notes = append(t.Notes,
		"expected: uniform-k raises the error norm (less significant selection); round-robin/contiguous/no-second-stage worsen balance (max/mean cost grows)")
	return t
}

// allocBalance computes max/mean worker cost for one DEFT configuration on
// a sample gradient of the workload.
func allocBalance(w train.Workload, opts core.Options, workers int, density float64) float64 {
	m := w.NewModel()
	params := m.Params()
	nn.ZeroGrads(params)
	m.Step(rng.New(123))
	flat := make([]float64, nn.TotalSize(params))
	train.FlattenGrads(params, flat)
	layers := train.Layout(params)

	frags := core.Partition(layers, workers, opts.Partition)
	core.ComputeNorms(frags, flat)
	k := int(density * float64(len(flat)))
	if opts.UniformK {
		core.AssignUniform(frags, k)
	} else {
		core.AssignK(frags, k)
	}
	bins := core.Allocate(frags, workers, opts.Alloc)
	total := 0.0
	for _, f := range frags {
		total += f.Cost()
	}
	mean := total / float64(workers)
	if mean == 0 {
		return 1
	}
	return core.MaxWorkerCost(frags, bins) / mean
}

// Table3 extends Table 1 beyond the paper: the full sparsifier zoo
// implemented in this repository (adding DGC, Gaussian-k and random-k) on
// one workload, measuring realised density, convergence, error and
// selection cost side by side.
func Table3(o Options) *Table {
	workers := 8
	iters := 40
	if o.Quick {
		workers = 4
		iters = 16
	}
	density := 0.01
	w := newWorkload("mlp")
	sample := sampleGradient(w)
	hard := sparsifier.TuneHardThreshold(sample, density)

	schemes := []struct {
		name    string
		factory sparsifier.Factory
	}{
		{"deft", sparsifierFactory("deft")},
		{"topk", sparsifierFactory("topk")},
		{"cltk", sparsifierFactory("cltk")},
		{"sidco", sparsifierFactory("sidco")},
		{"dgc", sparsifierFactory("dgc")},
		{"gaussiank", sparsifierFactory("gaussiank")},
		{"randk", sparsifierFactory("randk")},
		{"hardthreshold", func() sparsifier.Sparsifier { return hard }},
	}
	t := &Table{
		ID:    "table3",
		Title: fmt.Sprintf("Extended sparsifier comparison (mlp, %d workers, d=%g) — beyond the paper", workers, density),
		Columns: []string{"sparsifier", "final loss", "mean density", "density/target",
			"tail ‖e‖", "selection (µs)"},
	}
	specs := make([]runSpec, len(schemes))
	for i, s := range schemes {
		specs[i] = runSpec{
			key: fmt.Sprintf("table3/%s/n%d/i%d/s%d", s.name, workers, iters, o.Seed),
			w:   w, factory: s.factory,
			cfg: train.Config{
				Workers: workers, Density: density, LR: appLR("vision"),
				Iterations: iters, Seed: 6000 + o.Seed,
			},
		}
	}
	warm(o, specs)
	for i, s := range schemes {
		r := specs[i].run(o)
		t.Rows = append(t.Rows, []string{
			s.name, f(r.TrainLoss.LastY()), f6(r.ActualDensity.MeanY()),
			f2(r.ActualDensity.MeanY() / density),
			f6(r.ErrorNorm.TailMeanY(0.25)),
			fmt.Sprintf("%.0f", r.SelectTime/float64(iters)*1e6),
		})
	}
	t.Notes = append(t.Notes,
		"randk holds the target density but converges worst (magnitude-blind selection); dgc tracks topk with cheaper selection; gaussiank drifts like the other threshold fits")
	return t
}
