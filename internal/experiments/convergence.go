package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/train"
)

// convScale returns (workers, iterations, evalEvery, recordEvery) for the
// convergence experiments. The paper trains on 16 GPUs for up to 200
// epochs; quick mode shrinks both dimensions.
func convScale(o Options) (workers, iters, evalEvery, recordEvery int) {
	if o.Quick {
		return 8, 48, 12, 4
	}
	return 16, 240, 24, 8
}

// convergenceSpec declares one (app, scheme) training run.
func convergenceSpec(o Options, app, scheme string, workers, iters, evalEvery, recordEvery int, density float64) runSpec {
	key := fmt.Sprintf("conv/%s/%s/n%d/i%d/d%g/s%d", app, scheme, workers, iters, density, o.Seed)
	w := newWorkload(app)
	cfg := train.Config{
		Workers:     workers,
		Density:     density,
		LR:          appLR(app),
		Iterations:  iters,
		EvalEvery:   evalEvery,
		RecordEvery: recordEvery,
		Seed:        1000 + o.Seed,
		CostModel:   comm.DefaultCostModel(),
		Topology:    comm.DefaultTopology(),
	}
	spec := runSpec{key: key, w: w, cfg: cfg}
	if scheme == "dense" {
		spec.cfg.DisableSparse = true
	} else {
		spec.factory = sparsifierFactory(scheme)
	}
	return spec
}

// convergenceRun trains one (app, scheme) pair, memoised.
func convergenceRun(o Options, app, scheme string, workers, iters, evalEvery, recordEvery int, density float64) *train.Result {
	return convergenceSpec(o, app, scheme, workers, iters, evalEvery, recordEvery, density).run(o)
}

var convSchemes = []string{"deft", "cltk", "topk", "dense"}

// convergenceSpecs enumerates the (app, scheme) runs of one figure so warm
// can fan them out before the rows are built.
func convergenceSpecs(o Options, apps, schemes []string, workers, iters, evalEvery, recordEvery int, density func(app string) float64) []runSpec {
	specs := make([]runSpec, 0, len(apps)*len(schemes))
	for _, app := range apps {
		for _, s := range schemes {
			specs = append(specs, convergenceSpec(o, app, s, workers, iters, evalEvery, recordEvery, density(app)))
		}
	}
	return specs
}

// Fig3 reproduces Figure 3: convergence of DEFT vs CLT-k vs Top-k vs the
// non-sparsified baseline on one application at the paper's density.
func Fig3(o Options, app string) *Table {
	workers, iters, evalEvery, recordEvery := convScale(o)
	d := appDensity(app)
	warm(o, convergenceSpecs(o, []string{app}, convSchemes, workers, iters, evalEvery, recordEvery, appDensity))
	results := map[string]*train.Result{}
	for _, s := range convSchemes {
		results[s] = convergenceRun(o, app, s, workers, iters, evalEvery, recordEvery, d)
	}
	w := newWorkload(app)

	id := map[string]string{"vision": "fig3a", "langmodel": "fig3b", "recsys": "fig3c"}[app]
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Convergence (%s) on %d workers, d=%g — paper Fig 3", w.MetricName(), workers, d),
		Columns: []string{"iteration", "deft", "cltk", "topk", "dense"},
	}
	// All schemes evaluate at the same iterations.
	ref := results["deft"].Metric
	for i := range ref.X {
		row := []string{fmt.Sprintf("%.0f", ref.X[i])}
		for _, s := range convSchemes {
			m := results[s].Metric
			if i < len(m.Y) {
				row = append(row, f2(m.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: every sparsifier approaches the dense convergence point; Top-k converges fastest (it transmits more due to build-up)",
		fmt.Sprintf("final metric — deft %.2f, cltk %.2f, topk %.2f, dense %.2f",
			results["deft"].Metric.LastY(), results["cltk"].Metric.LastY(),
			results["topk"].Metric.LastY(), results["dense"].Metric.LastY()))
	return t
}

// Fig4 reproduces Figure 4: realised density over iterations for the three
// applications on the same runs as Fig 3.
func Fig4(o Options) *Table {
	workers, iters, evalEvery, recordEvery := convScale(o)
	warm(o, convergenceSpecs(o, []string{"vision", "langmodel", "recsys"},
		[]string{"deft", "cltk", "topk"}, workers, iters, evalEvery, recordEvery, appDensity))
	t := &Table{
		ID:      "fig4",
		Title:   fmt.Sprintf("Actual density over training on %d workers — paper Fig 4", workers),
		Columns: []string{"app", "target d", "deft mean", "deft max", "cltk mean", "topk mean", "topk/target"},
	}
	for _, app := range []string{"vision", "langmodel", "recsys"} {
		d := appDensity(app)
		row := []string{app, fmt.Sprintf("%g", d)}
		var topkMean float64
		for _, s := range []string{"deft", "cltk", "topk"} {
			r := convergenceRun(o, app, s, workers, iters, evalEvery, recordEvery, d)
			switch s {
			case "deft":
				row = append(row, f6(r.ActualDensity.MeanY()), f6(r.ActualDensity.MaxY()))
			case "cltk":
				row = append(row, f6(r.ActualDensity.MeanY()))
			case "topk":
				topkMean = r.ActualDensity.MeanY()
				row = append(row, f6(topkMean), f2(topkMean/d))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: Top-k realised density is a large multiple of the target (13.6x/14.2x/5.3x in the paper); DEFT and CLT-k hold the target")
	return t
}

// Fig5 reproduces Figure 5: error-minimisation performance ‖e_t‖ (Eq. 2)
// over iterations, same runs as Fig 3.
func Fig5(o Options) *Table {
	workers, iters, evalEvery, recordEvery := convScale(o)
	warm(o, convergenceSpecs(o, []string{"vision", "langmodel", "recsys"},
		[]string{"deft", "cltk", "topk"}, workers, iters, evalEvery, recordEvery, appDensity))
	t := &Table{
		ID:      "fig5",
		Title:   fmt.Sprintf("Error ‖e_t‖ over training on %d workers — paper Fig 5", workers),
		Columns: []string{"app", "iteration", "deft", "cltk", "topk"},
	}
	for _, app := range []string{"vision", "langmodel", "recsys"} {
		d := appDensity(app)
		results := map[string]*train.Result{}
		for _, s := range []string{"deft", "cltk", "topk"} {
			results[s] = convergenceRun(o, app, s, workers, iters, evalEvery, recordEvery, d)
		}
		ref := results["deft"].ErrorNorm
		for i := range ref.X {
			row := []string{app, fmt.Sprintf("%.0f", ref.X[i])}
			for _, s := range []string{"deft", "cltk", "topk"} {
				row = append(row, f6(results[s].ErrorNorm.Y[i]))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: Top-k carries the lowest error (its build-up transmits more); DEFT tracks CLT-k")
	return t
}

// Fig1 reproduces Figure 1: the gradient build-up of plain Top-k as the
// cluster scales out, on the vision application at d = 0.01.
func Fig1(o Options) *Table {
	workerSet := []int{2, 4, 8, 16}
	iters := 60
	recordEvery := 4
	if o.Quick {
		workerSet = []int{2, 4, 8}
		iters = 24
	}
	t := &Table{
		ID:      "fig1",
		Title:   "Top-k gradient build-up by scale-out (vision, d=0.01) — paper Fig 1",
		Columns: []string{"workers", "mean density", "max density", "ratio to target"},
	}
	specs := make([]runSpec, len(workerSet))
	for i, n := range workerSet {
		specs[i] = runSpec{
			key: fmt.Sprintf("fig1/n%d/i%d/s%d", n, iters, o.Seed),
			w:   newWorkload("vision"), factory: sparsifierFactory("topk"),
			cfg: train.Config{
				Workers: n, Density: 0.01, LR: appLR("vision"),
				Iterations: iters, RecordEvery: recordEvery, Seed: 2000 + o.Seed,
			},
		}
	}
	warm(o, specs)
	for _, s := range specs {
		r := s.run(o)
		mean := r.ActualDensity.MeanY()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", s.cfg.Workers), f6(mean), f6(r.ActualDensity.MaxY()), f2(mean / 0.01),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: realised density rises monotonically with the worker count despite the fixed user-set d=0.01")
	return t
}

// Fig6 reproduces Figure 6: DEFT at 10× density vs Top-k at the base
// density — matching Top-k's realised (built-up) traffic — compared on
// error norm.
func Fig6(o Options) *Table {
	workers, iters, evalEvery, recordEvery := convScale(o)
	var specs []runSpec
	for _, app := range []string{"vision", "langmodel"} {
		base := appDensity(app)
		specs = append(specs,
			convergenceSpec(o, app, "topk", workers, iters, evalEvery, recordEvery, base),
			convergenceSpec(o, app, "deft", workers, iters, evalEvery, recordEvery, base*10))
	}
	warm(o, specs)
	t := &Table{
		ID:      "fig6",
		Title:   fmt.Sprintf("Error at matched realised density on %d workers — paper Fig 6", workers),
		Columns: []string{"app", "scheme", "set d", "realised d", "final ‖e‖", "tail-mean ‖e‖"},
	}
	for _, app := range []string{"vision", "langmodel"} {
		base := appDensity(app)
		topk := convergenceRun(o, app, "topk", workers, iters, evalEvery, recordEvery, base)
		deft := convergenceRun(o, app, "deft", workers, iters, evalEvery, recordEvery, base*10)
		for _, pair := range []struct {
			name string
			d    float64
			r    *train.Result
		}{{"deft", base * 10, deft}, {"topk", base, topk}} {
			t.Rows = append(t.Rows, []string{
				app, pair.name, fmt.Sprintf("%g", pair.d),
				f6(pair.r.ActualDensity.MeanY()),
				f6(pair.r.ErrorNorm.LastY()),
				f6(pair.r.ErrorNorm.TailMeanY(0.25)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: with DEFT's set density raised to Top-k's realised level, the two error curves approximately coincide")
	return t
}

// Fig8 reproduces Figure 8: DEFT convergence on the language model across
// densities {0.1, 0.01, 0.001} against the dense baseline.
func Fig8(o Options) *Table {
	workers, iters, evalEvery, recordEvery := convScale(o)
	densities := []float64{0.1, 0.01, 0.001}
	var specs []runSpec
	for _, d := range densities {
		specs = append(specs, convergenceSpec(o, "langmodel", "deft", workers, iters, evalEvery, recordEvery, d))
	}
	specs = append(specs, convergenceSpec(o, "langmodel", "dense", workers, iters, evalEvery, recordEvery, appDensity("langmodel")))
	warm(o, specs)
	t := &Table{
		ID:      "fig8",
		Title:   fmt.Sprintf("DEFT convergence by density (langmodel, %d workers) — paper Fig 8", workers),
		Columns: []string{"iteration", "d=0.1", "d=0.01", "d=0.001", "dense"},
	}
	results := make([]*train.Result, 0, 4)
	for _, d := range densities {
		results = append(results, convergenceRun(o, "langmodel", "deft", workers, iters, evalEvery, recordEvery, d))
	}
	results = append(results, convergenceRun(o, "langmodel", "dense", workers, iters, evalEvery, recordEvery, appDensity("langmodel")))
	ref := results[0].Metric
	for i := range ref.X {
		row := []string{fmt.Sprintf("%.0f", ref.X[i])}
		for _, r := range results {
			if i < len(r.Metric.Y) {
				row = append(row, f2(r.Metric.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	// Per-density communication time, byte-accurate: the topology model
	// over the actual encoded payloads, with the element-count α–β model
	// kept as the secondary reference row.
	wireRow := []string{"comm ms/iter (wire)"}
	abRow := []string{"comm ms/iter (α–β)"}
	for _, r := range results {
		wireRow = append(wireRow, f2(r.WireCommTime/float64(iters)*1000))
		abRow = append(abRow, f2(r.CommTime/float64(iters)*1000))
	}
	t.Rows = append(t.Rows, wireRow, abRow)
	t.Notes = append(t.Notes,
		"paper shape: lower density converges slightly slower early but reaches the same convergence point",
		"comm rows: wire = topology model on encoded bytes (byte-accurate); α–β = element-count model of §5.3, kept for reference")
	return t
}

// Fig10 reproduces Figure 10: DEFT convergence on the language model by
// cluster scale at d = 0.001.
func Fig10(o Options) *Table {
	workerSet := []int{4, 8, 16, 32}
	_, iters, evalEvery, recordEvery := convScale(o)
	if o.Quick {
		workerSet = []int{2, 4, 8}
	}
	t := &Table{
		ID:      "fig10",
		Title:   "DEFT convergence by scale-out (langmodel, d=0.001) — paper Fig 10",
		Columns: []string{"workers", "final perplexity", "dense final"},
	}
	specs := []runSpec{convergenceSpec(o, "langmodel", "dense", workerSet[len(workerSet)-1], iters, evalEvery, recordEvery, 0.001)}
	for _, n := range workerSet {
		specs = append(specs, convergenceSpec(o, "langmodel", "deft", n, iters, evalEvery, recordEvery, 0.001))
	}
	warm(o, specs)
	dense := convergenceRun(o, "langmodel", "dense", workerSet[len(workerSet)-1], iters, evalEvery, recordEvery, 0.001)
	for _, n := range workerSet {
		r := convergenceRun(o, "langmodel", "deft", n, iters, evalEvery, recordEvery, 0.001)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), f2(r.Metric.LastY()), f2(dense.Metric.LastY())})
	}
	t.Notes = append(t.Notes,
		"paper shape: every scale reaches the dense convergence point; rates differ mildly")
	return t
}
