package experiments

import (
	"fmt"

	"repro/internal/registry"
)

// quantScale returns (workers, iterations, evalEvery, recordEvery) for the
// quantized-training comparison. It is deliberately smaller than convScale
// in quick mode: the table spans all four workloads × schemes × precisions.
func quantScale(o Options) (workers, iters, evalEvery, recordEvery int) {
	if o.Quick {
		return 4, 12, 6, 3
	}
	return 16, 240, 24, 8
}

// quantSpec is convergenceSpec with a wire precision: fp16 runs get
// Config.Quantize and a distinct cache key, so a quantized run never
// shares a memoised result with its fp32 twin.
func quantSpec(o Options, app, scheme, prec string, workers, iters, evalEvery, recordEvery int, density float64) runSpec {
	spec := convergenceSpec(o, app, scheme, workers, iters, evalEvery, recordEvery, density)
	quantize, err := registry.ParsePrecision(prec)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	if quantize {
		spec.key += "/fp16"
		spec.cfg.Quantize = true
	}
	return spec
}

var quantSchemes = []string{"deft", "topk"}

// Quant extends the paper's convergence figures with the quantized
// training mode: every workload × scheme trained at fp32 and at fp16 (the
// coo16/bitmap16 wire formats decoded into the update, error feedback
// absorbing the quantization error), so the compression ratios the wire
// codecs report finally appear next to the convergence numbers they cost.
func Quant(o Options) *Table {
	workers, iters, evalEvery, recordEvery := quantScale(o)
	var specs []runSpec
	for _, app := range registry.Workloads() {
		for _, s := range quantSchemes {
			for _, prec := range registry.Precisions() {
				specs = append(specs, quantSpec(o, app, s, prec, workers, iters, evalEvery, recordEvery, appDensity(app)))
			}
		}
	}
	warm(o, specs)
	t := &Table{
		ID:      "quant",
		Title:   fmt.Sprintf("Quantized fp16 training vs fp32 on %d workers — beyond the paper", workers),
		Columns: []string{"app", "scheme", "precision", "final metric", "final loss", "tail ‖e‖", "bytes/it", "wire x"},
	}
	si := 0
	for _, app := range registry.Workloads() {
		for _, s := range quantSchemes {
			for _, prec := range registry.Precisions() {
				r := specs[si].run(o)
				si++
				t.Rows = append(t.Rows, []string{
					app, s, prec,
					f2(r.Metric.LastY()), f(r.TrainLoss.LastY()),
					f6(r.ErrorNorm.TailMeanY(0.25)),
					fmt.Sprintf("%.0f", r.BytesPerIteration()),
					f2(r.CompressionRatio()),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"expected: fp16 roughly doubles the wire compression at a slightly higher error norm; final metrics stay close to fp32 (error feedback absorbs the quantization error)",
		"fp16 rows ship the coo16/bitmap16 payloads of internal/wire and apply the decoded values — the same mode as deft-train -quantize")
	return t
}
