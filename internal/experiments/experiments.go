// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate. Each Fig*/Table* function
// returns a Table: a titled grid of the same rows/series the paper plots.
//
// Absolute numbers differ from the paper (its substrate was a 32-GPU V100
// cluster; ours is a deterministic single-process simulator), but each
// experiment preserves the qualitative shape the paper argues from — see
// EXPERIMENTS.md for the paper-vs-measured record.
//
// All experiments honour Options.Quick, which shrinks worker counts and
// iteration budgets so the full suite runs in seconds; full mode matches
// the paper's worker counts.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/sparsifier"
	"repro/internal/train"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks cluster sizes and iteration budgets (CI/bench mode).
	Quick bool
	// Seed offsets all run seeds, for repeated-trial studies.
	Seed uint64
}

// Table is a rendered experiment artefact.
type Table struct {
	ID      string // e.g. "fig3a"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string // qualitative checks, substitutions, caveats
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// IDs lists every runnable experiment id.
func IDs() []string {
	return []string{
		"table1", "table2",
		"fig1", "fig3a", "fig3b", "fig3c", "fig4", "fig5",
		"fig6", "fig7", "fig8", "fig9", "fig10",
		"ablation", "table3",
	}
}

// Run dispatches an experiment by id.
func Run(id string, o Options) (*Table, error) {
	switch id {
	case "table1":
		return Table1(o), nil
	case "table2":
		return Table2(o), nil
	case "fig1":
		return Fig1(o), nil
	case "fig3a":
		return Fig3(o, "vision"), nil
	case "fig3b":
		return Fig3(o, "langmodel"), nil
	case "fig3c":
		return Fig3(o, "recsys"), nil
	case "fig4":
		return Fig4(o), nil
	case "fig5":
		return Fig5(o), nil
	case "fig6":
		return Fig6(o), nil
	case "fig7":
		return Fig7(o), nil
	case "fig8":
		return Fig8(o), nil
	case "fig9":
		return Fig9(o), nil
	case "fig10":
		return Fig10(o), nil
	case "ablation":
		return Ablation(o), nil
	case "table3":
		return Table3(o), nil
	}
	return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(IDs(), ", "))
}

// ------------------------------------------------------- shared plumbing --

// appDensity returns the per-application density the paper uses (Table 2 /
// Fig 3 captions).
func appDensity(app string) float64 {
	switch app {
	case "vision":
		return 0.01
	case "langmodel":
		return 0.001
	case "recsys":
		return 0.1
	}
	panic("experiments: unknown app " + app)
}

// appLR returns a stable learning rate per application for our scaled
// workloads.
func appLR(app string) float64 {
	switch app {
	case "vision":
		return 0.15
	case "langmodel":
		return 1.0
	case "recsys":
		return 1.0
	}
	panic("experiments: unknown app " + app)
}

// newWorkload builds the simulated stand-in for the paper's application.
func newWorkload(app string) train.Workload {
	switch app {
	case "vision":
		return models.NewVision(models.DefaultVisionConfig())
	case "langmodel":
		return models.NewText(models.DefaultTextConfig())
	case "recsys":
		return models.NewRecsys(models.DefaultRecsysConfig())
	case "mlp":
		return models.NewMLP(models.DefaultMLPConfig())
	}
	panic("experiments: unknown app " + app)
}

// sparsifierFactory builds the named scheme. hardthreshold and sidco need a
// density to parameterise; hardthreshold additionally tunes its threshold
// on a sample gradient, done by the caller.
func sparsifierFactory(name string) sparsifier.Factory {
	switch name {
	case "deft":
		return core.Factory(core.DefaultOptions())
	case "topk":
		return func() sparsifier.Sparsifier { return sparsifier.NewTopK() }
	case "cltk":
		return func() sparsifier.Sparsifier { return &sparsifier.CLTK{} }
	case "sidco":
		return func() sparsifier.Sparsifier { return &sparsifier.SIDCo{Stages: 3} }
	case "randk":
		return func() sparsifier.Sparsifier { return sparsifier.RandK{} }
	case "dgc":
		return func() sparsifier.Sparsifier { return &sparsifier.DGC{} }
	case "gaussiank":
		return func() sparsifier.Sparsifier { return sparsifier.GaussianK{} }
	}
	panic("experiments: unknown sparsifier " + name)
}

// runCache memoises training runs within one process so Fig 3/4/5 (which
// share the same runs) train once.
var (
	runMu    sync.Mutex
	runCache = map[string]*train.Result{}
)

func cachedRun(key string, w train.Workload, factory sparsifier.Factory, cfg train.Config) *train.Result {
	runMu.Lock()
	if r, ok := runCache[key]; ok {
		runMu.Unlock()
		return r
	}
	runMu.Unlock()
	r := train.Run(w, factory, cfg)
	runMu.Lock()
	runCache[key] = r
	runMu.Unlock()
	return r
}

// ResetCache clears the memoised runs (tests use it to force fresh runs).
func ResetCache() {
	runMu.Lock()
	runCache = map[string]*train.Result{}
	runMu.Unlock()
}

func f(v float64) string  { return fmt.Sprintf("%.4f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f6(v float64) string { return fmt.Sprintf("%.6f", v) }
