// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate. Each Fig*/Table* function
// returns a Table: a titled grid of the same rows/series the paper plots.
//
// Absolute numbers differ from the paper (its substrate was a 32-GPU V100
// cluster; ours is a deterministic single-process simulator), but each
// experiment preserves the qualitative shape the paper argues from — see
// EXPERIMENTS.md for the paper-vs-measured record.
//
// All experiments honour Options.Quick, which shrinks worker counts and
// iteration budgets so the full suite runs in seconds; full mode matches
// the paper's worker counts.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/registry"
	"repro/internal/sparsifier"
	"repro/internal/train"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks cluster sizes and iteration budgets (CI/bench mode).
	Quick bool
	// Seed offsets all run seeds, for repeated-trial studies.
	Seed uint64
	// Parallel fans the independent training runs of one experiment out
	// over a bounded pool of at most Parallel goroutines (0 or 1 runs them
	// sequentially). Results are identical to a sequential run: every run
	// is deterministic in its config, the single-flight cache trains each
	// configuration once, and the trainer's process-global timing gate
	// keeps measured compute/selection sections contention-free across
	// concurrent runs. With Parallel > 1 Progress may be invoked from
	// multiple goroutines and must be safe for concurrent use.
	Parallel int
	// Progress, when non-nil, receives the per-iteration training events
	// of every *fresh* underlying run, tagged with the run's cache key
	// (memoised runs replay nothing). It inherits train.Config.Progress's
	// contract: fast and non-blocking.
	Progress func(run string, p train.Progress)
	// ProgressEvery forwards train.Config.ProgressEvery to every
	// underlying run: per-layer allocation/norm snapshots ride each
	// ProgressEvery-th record event of the Progress stream. 0 = off.
	// Like Progress it is not part of the run cache key: a memoised
	// result keeps the layer series of the run that first trained it.
	ProgressEvery int

	// ctx carries cancellation from RunContext down into cachedRun; nil
	// means Background. Unexported so Run/RunContext stay the only doors.
	ctx context.Context
}

// context returns the options' cancellation context, defaulting to
// Background.
func (o Options) context() context.Context {
	if o.ctx != nil {
		return o.ctx
	}
	return context.Background()
}

// Table is a rendered experiment artefact.
type Table struct {
	ID      string     `json:"id"` // e.g. "fig3a"
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"` // qualitative checks, substitutions, caveats
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// IDs lists every runnable experiment id.
func IDs() []string {
	return []string{
		"table1", "table2",
		"fig1", "fig3a", "fig3b", "fig3c", "fig4", "fig5",
		"fig6", "fig7", "fig8", "fig9", "fig10",
		"ablation", "table3", "quant", "elasticity",
	}
}

// Run dispatches an experiment by id.
func Run(id string, o Options) (*Table, error) {
	return RunContext(context.Background(), id, o)
}

// RunContext dispatches an experiment by id under a cancellation context:
// when ctx is cancelled, the underlying training runs abort mid-iteration
// (nothing partial is memoised) and RunContext returns ctx's error.
func RunContext(ctx context.Context, id string, o Options) (tab *Table, err error) {
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	o.ctx = ctx
	// cachedRun signals cancellation by panicking with a cancelPanic so the
	// fifteen Fig*/Table* builders don't each thread an error return for an
	// event that abandons the whole table anyway.
	defer func() {
		if r := recover(); r != nil {
			if cp, ok := r.(cancelPanic); ok {
				tab, err = nil, cp.err
				return
			}
			panic(r)
		}
	}()
	return dispatch(id, o)
}

func dispatch(id string, o Options) (*Table, error) {
	switch id {
	case "table1":
		return Table1(o), nil
	case "table2":
		return Table2(o), nil
	case "fig1":
		return Fig1(o), nil
	case "fig3a":
		return Fig3(o, "vision"), nil
	case "fig3b":
		return Fig3(o, "langmodel"), nil
	case "fig3c":
		return Fig3(o, "recsys"), nil
	case "fig4":
		return Fig4(o), nil
	case "fig5":
		return Fig5(o), nil
	case "fig6":
		return Fig6(o), nil
	case "fig7":
		return Fig7(o), nil
	case "fig8":
		return Fig8(o), nil
	case "fig9":
		return Fig9(o), nil
	case "fig10":
		return Fig10(o), nil
	case "ablation":
		return Ablation(o), nil
	case "table3":
		return Table3(o), nil
	case "quant":
		return Quant(o), nil
	case "elasticity":
		return Elasticity(o), nil
	}
	return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(IDs(), ", "))
}

// ------------------------------------------------------- shared plumbing --

// appDensity returns the per-application density the paper uses (Table 2 /
// Fig 3 captions).
func appDensity(app string) float64 {
	switch app {
	case "mlp":
		return 0.01
	case "vision":
		return 0.01
	case "langmodel":
		return 0.001
	case "recsys":
		return 0.1
	}
	panic("experiments: unknown app " + app)
}

// appLR returns a stable learning rate per application for our scaled
// workloads.
func appLR(app string) float64 {
	switch app {
	case "mlp":
		return 0.3
	case "vision":
		return 0.15
	case "langmodel":
		return 1.0
	case "recsys":
		return 1.0
	}
	panic("experiments: unknown app " + app)
}

// newWorkload builds the simulated stand-in for the paper's application.
func newWorkload(app string) train.Workload {
	w, err := registry.NewWorkload(app)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return w
}

// sparsifierFactory builds the named scheme through the shared registry.
// The schemes used here are all self-configuring; hardthreshold (which
// needs pre-training tuning) is built explicitly by the tables that study
// it.
func sparsifierFactory(name string) sparsifier.Factory {
	f, dense, err := registry.NewFactory(name, nil, 0)
	if err != nil || dense {
		panic("experiments: unknown sparsifier " + name)
	}
	return f
}

// cancelPanic unwinds a Fig*/Table* builder when its context is
// cancelled; RunContext recovers it into an ordinary error.
type cancelPanic struct{ err error }

// runCache memoises training runs within one process so Fig 3/4/5 (which
// share the same runs) train once. inflight adds single-flight semantics:
// when experiment jobs run concurrently (the deft-serve worker pool),
// builders sharing a run key wait for the first trainer instead of
// training the same configuration twice.
var (
	runMu    sync.Mutex
	runCache = map[string]*train.Result{}
	inflight = map[string]*inflightRun{}
)

// inflightRun is one in-progress training run; done is closed when the
// leader finishes, ok reports whether it populated the cache (a cancelled
// leader leaves ok false and a waiter takes over).
type inflightRun struct {
	done chan struct{}
	ok   bool
}

func cachedRun(o Options, key string, w train.Workload, factory sparsifier.Factory, cfg train.Config) *train.Result {
	ctx := o.context()
	if o.Progress != nil {
		progress := o.Progress
		cfg.Progress = func(p train.Progress) { progress(key, p) }
	}
	cfg.ProgressEvery = o.ProgressEvery
	for {
		runMu.Lock()
		if r, ok := runCache[key]; ok {
			runMu.Unlock()
			return r
		}
		if c, ok := inflight[key]; ok {
			runMu.Unlock()
			select {
			case <-c.done:
				// Leader finished: on success the next loop pass hits the
				// cache; on a cancelled leader, race to become the leader.
				continue
			case <-ctx.Done():
				panic(cancelPanic{ctx.Err()})
			}
		}
		c := &inflightRun{done: make(chan struct{})}
		inflight[key] = c
		runMu.Unlock()

		r, err := train.RunContext(ctx, w, factory, cfg)
		runMu.Lock()
		delete(inflight, key)
		if err == nil {
			runCache[key] = r
			c.ok = true
		}
		runMu.Unlock()
		close(c.done)
		if err != nil {
			panic(cancelPanic{err})
		}
		return r
	}
}

// ResetCache clears the memoised runs (tests use it to force fresh runs).
func ResetCache() {
	runMu.Lock()
	runCache = map[string]*train.Result{}
	runMu.Unlock()
}

// runSpec declares one training run a table builder needs: the cache key
// and everything cachedRun wants to execute it. Builders enumerate their
// specs up front so warm can fan the independent runs out before the rows
// are assembled (in deterministic order) from the cache.
type runSpec struct {
	key     string
	w       train.Workload
	factory sparsifier.Factory
	cfg     train.Config
}

// run executes (or fetches) the spec through the memoising single-flight
// cache.
func (s runSpec) run(o Options) *train.Result {
	return cachedRun(o, s.key, s.w, s.factory, s.cfg)
}

// warm executes the given specs through cachedRun, fanning out over a
// bounded pool of o.Parallel goroutines. Sequential options make it a
// no-op: the builder's own cachedRun calls do the work. Duplicate specs
// are harmless (single-flight dedups them). A cancellation inside any
// worker is re-raised as cancelPanic on the caller after the pool drains,
// so RunContext unwinds exactly as in the sequential path; any other
// panic propagates as itself.
func warm(o Options, specs []runSpec) {
	if o.Parallel <= 1 || len(specs) < 2 {
		return
	}
	sem := make(chan struct{}, o.Parallel)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var cancelled *cancelPanic
	var failure any
	for _, s := range specs {
		wg.Add(1)
		sem <- struct{}{}
		go func(s runSpec) {
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if cp, ok := r.(cancelPanic); ok {
						if cancelled == nil {
							cancelled = &cp
						}
					} else if failure == nil {
						failure = r
					}
					mu.Unlock()
				}
				<-sem
				wg.Done()
			}()
			s.run(o)
		}(s)
	}
	wg.Wait()
	if failure != nil {
		panic(failure)
	}
	if cancelled != nil {
		panic(*cancelled)
	}
}

func f(v float64) string  { return fmt.Sprintf("%.4f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f6(v float64) string { return fmt.Sprintf("%.6f", v) }
