package experiments

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/train"
)

// countingWorkload wraps the mlp workload to count replica constructions
// — a proxy for "a training run actually started".
type countingWorkload struct {
	train.Workload
	models atomic.Int64
}

func (c *countingWorkload) NewModel() train.Model {
	c.models.Add(1)
	return c.Workload.NewModel()
}

// TestCachedRunSingleFlight: concurrent builders sharing a run key must
// train once — the waiters block on the leader's flight and read the
// memoised result.
func TestCachedRunSingleFlight(t *testing.T) {
	ResetCache()
	w := &countingWorkload{Workload: newWorkload("mlp")}
	cfg := train.Config{Workers: 2, Density: 0.05, LR: 0.1, Iterations: 6, Seed: 7}
	const n = 8
	results := make([]*train.Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = cachedRun(Options{}, "test/singleflight", w, sparsifierFactory("topk"), cfg)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result pointer", i)
		}
	}
	// One run builds exactly cfg.Workers replicas.
	if got := w.models.Load(); got != int64(cfg.Workers) {
		t.Fatalf("built %d replicas, want %d (one run)", got, cfg.Workers)
	}
}

// TestRunContextCancelled: a cancelled context surfaces as an error from
// RunContext, and nothing partial is memoised.
func TestRunContextCancelled(t *testing.T) {
	ResetCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, "fig1", Options{Quick: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	runMu.Lock()
	cached := len(runCache)
	runMu.Unlock()
	if cached != 0 {
		t.Fatalf("%d partial runs memoised after cancellation", cached)
	}
}

// TestOptionsProgressTagged: the experiment-level progress hook receives
// events tagged with the underlying run key.
func TestOptionsProgressTagged(t *testing.T) {
	ResetCache()
	var mu sync.Mutex
	runs := map[string]int{}
	o := Options{Quick: true, Progress: func(run string, p train.Progress) {
		mu.Lock()
		runs[run]++
		mu.Unlock()
	}}
	w := newWorkload("mlp")
	cfg := train.Config{Workers: 2, Density: 0.05, LR: 0.1, Iterations: 4}
	cachedRun(o, "test/progress", w, sparsifierFactory("topk"), cfg)
	if runs["test/progress"] < 4 {
		t.Fatalf("progress events = %v, want >=4 tagged with the run key", runs)
	}
	// A memoised rerun replays nothing.
	cachedRun(o, "test/progress", w, sparsifierFactory("topk"), cfg)
	if runs["test/progress"] > 5 { // 4 records + final eval
		t.Fatalf("cache hit re-emitted progress: %v", runs)
	}
}
