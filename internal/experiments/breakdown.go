package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/models"
	"repro/internal/train"
)

// fig7Workload returns a language model sized so gradient selection is
// measurable against forward/backward time (the default experiment LSTM is
// too small for stable sub-millisecond timing).
func fig7Workload(quick bool) train.Workload {
	cfg := models.DefaultTextConfig()
	cfg.Data.Vocab = 512
	cfg.Embed = 48
	cfg.Hidden = 96
	if quick {
		cfg.Data.Vocab = 256
		cfg.Embed = 32
		cfg.Hidden = 64
	}
	return models.NewText(cfg)
}

// Fig7 reproduces Figure 7: the per-iteration training-time breakdown on
// the language-modelling application — forward+backward compute, gradient
// selection, communication, and (for DEFT) the partitioning overhead.
// Compute and selection are wall-clock maxima over workers; communication
// is the topology-aware byte model driven by the actual encoded payloads
// (internal/wire), with the paper's element-count α–β model of §5.3 kept
// as a secondary reference column.
func Fig7(o Options) *Table {
	workers := 16
	iters := 24
	if o.Quick {
		workers = 8
		iters = 10
	}
	w := fig7Workload(o.Quick)
	density := 0.001

	t := &Table{
		ID:    "fig7",
		Title: fmt.Sprintf("Training time breakdown per iteration (langmodel, %d workers, d=%g) — paper Fig 7", workers, density),
		Columns: []string{"sparsifier", "fwd+bwd (ms)", "selection (ms)",
			"communication (ms)", "partition (ms)", "total (ms)", "comm α–β (ms)"},
	}
	schemes := []string{"deft", "cltk", "topk"}
	specs := make([]runSpec, len(schemes))
	for i, scheme := range schemes {
		specs[i] = runSpec{
			key: fmt.Sprintf("fig7/%s/n%d/i%d/s%d", scheme, workers, iters, o.Seed),
			w:   w, factory: sparsifierFactory(scheme),
			cfg: train.Config{
				Workers: workers, Density: density, LR: appLR("langmodel"),
				Iterations: iters, Seed: 3000 + o.Seed,
				CostModel: comm.DefaultCostModel(),
				Topology:  comm.DefaultTopology(),
			},
		}
	}
	warm(o, specs)
	for i, scheme := range schemes {
		r := specs[i].run(o)
		perIter := func(total float64) float64 { return total / float64(iters) * 1000 }
		compute := perIter(r.ComputeTime)
		sel := perIter(r.SelectTime)
		wireCm := perIter(r.WireCommTime)
		alphaBeta := perIter(r.CommTime)
		part := perIter(r.PartitionTime)
		t.Rows = append(t.Rows, []string{
			scheme, f2(compute), f2(sel), f2(wireCm), f2(part),
			f2(compute + sel + wireCm + part), f2(alphaBeta),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: DEFT's selection time is far below Top-k/CLT-k; its communication is lower (no build-up, k split across workers); partition overhead is a small fraction of the iteration",
		"fwd+bwd and selection are measured wall-clock (max over workers); communication is byte-accurate — the topology model (4 workers/node, 10 GbE uplink) over the slowest worker's encoded wire payload — with the element-count α–β model of §5.3 as the reference column")
	return t
}
