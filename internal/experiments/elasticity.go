package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/registry"
	"repro/internal/train"
)

// elasticScale returns (workers, iterations, evalEvery, recordEvery) for
// the elasticity table. Same footprint reasoning as quantScale: the table
// spans all four workloads × schemes × scenarios.
func elasticScale(o Options) (workers, iters, evalEvery, recordEvery int) {
	if o.Quick {
		return 4, 12, 6, 3
	}
	return 16, 240, 24, 8
}

// elasticScenario is one chaos condition of the elasticity study.
type elasticScenario struct {
	name string
	// plan builds the fault schedule for a cluster of the given size and
	// iteration budget (nil = healthy).
	plan func(workers, iters int) *comm.FaultPlan
	// recover enables the checkpoint-rebuild-resume policy.
	recover bool
}

// elasticScenarios: the paper's load-balance claim probed three ways — the
// healthy baseline, one rank slowed ×4 for the whole run (DEFT's balanced
// selection should degrade by the straggler's share, not collapse to it),
// and a hard drop of the last rank at the 50% mark with recovery.
func elasticScenarios() []elasticScenario {
	return []elasticScenario{
		{name: "healthy", plan: func(_, _ int) *comm.FaultPlan { return nil }},
		{name: "straggler x4", plan: func(workers, _ int) *comm.FaultPlan {
			return &comm.FaultPlan{Stragglers: []comm.Straggler{{Rank: 1 % workers, Factor: 4}}}
		}},
		{name: "drop @50%", recover: true, plan: func(workers, iters int) *comm.FaultPlan {
			return &comm.FaultPlan{Drops: []comm.Drop{{Rank: workers - 1, Iteration: iters / 2}}}
		}},
	}
}

var elasticSchemes = []string{"deft", "topk"}

// elasticSpec is convergenceSpec plus a chaos scenario: the fault plan and
// recovery policy land in the config, and the cache key carries the
// scenario so a faulted run never shares a memoised result with its
// healthy twin.
func elasticSpec(o Options, app, scheme string, sc elasticScenario, workers, iters, evalEvery, recordEvery int, density float64) runSpec {
	spec := convergenceSpec(o, app, scheme, workers, iters, evalEvery, recordEvery, density)
	spec.key = "elastic/" + sc.name + "/" + spec.key
	spec.cfg.Faults = sc.plan(workers, iters)
	spec.cfg.Recover = sc.recover
	return spec
}

// simIterTime returns the simulated seconds one iteration costs: slowest
// worker's gated compute + selection + partitioning plus the topology wire
// model — the same composition as the breakdown table.
func simIterTime(r *train.Result, iters int) float64 {
	return (r.ComputeTime + r.SelectTime + r.PartitionTime + r.WireCommTime) / float64(iters)
}

// Elasticity measures DEFT vs top-k under chaos: every workload × scheme
// run healthy, with a ×4 straggler, and with a worker dropped mid-run and
// recovered. Reported per row: final training loss (did it still
// converge), simulated iterations/sec and its degradation against the
// healthy twin, and the recovery count/overhead. The fault plans are pure
// data, so every row replays bit-identically.
func Elasticity(o Options) *Table {
	workers, iters, evalEvery, recordEvery := elasticScale(o)
	scenarios := elasticScenarios()
	var specs []runSpec
	for _, app := range registry.Workloads() {
		for _, s := range elasticSchemes {
			for _, sc := range scenarios {
				specs = append(specs, elasticSpec(o, app, s, sc, workers, iters, evalEvery, recordEvery, appDensity(app)))
			}
		}
	}
	warm(o, specs)
	t := &Table{
		ID: "elasticity",
		Title: fmt.Sprintf("Elasticity under chaos on %d workers (straggler ×4, drop@%d+recover) — beyond the paper",
			workers, iters/2),
		Columns: []string{"app", "scheme", "scenario", "final loss", "it/s", "degr %", "recov", "recovery ms"},
	}
	si := 0
	for _, app := range registry.Workloads() {
		for _, s := range elasticSchemes {
			var healthyIPS float64
			for _, sc := range scenarios {
				r := specs[si].run(o)
				si++
				ips := 1 / simIterTime(r, iters)
				if sc.name == "healthy" {
					healthyIPS = ips
				}
				degr := 100 * (1 - ips/healthyIPS)
				t.Rows = append(t.Rows, []string{
					app, s, sc.name,
					f(r.TrainLoss.LastY()),
					f2(ips),
					f2(degr),
					fmt.Sprintf("%d", r.Recoveries),
					fmt.Sprintf("%.1f", r.RecoveryTime*1000),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"expected: the x4 straggler bounds iterations/sec by the slow rank on both schemes (synchronous SGD), while final loss stays at the healthy level — balanced selection changes who waits, not what converges",
		"drop rows recover via checkpoint-rebuild-resume at the surviving size and still reach a converged final loss; 'recovery ms' is the measured checkpoint+restore overhead",
		"fault plans are deterministic data (see README 'Chaos & elasticity'): identical seeds and plans replay bit-identical trajectories")
	return t
}
