package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/train"
)

// TestParallelMatchesSequential asserts the parallel experiment driver's
// determinism contract: a table generated with a worker pool is identical
// to the sequentially generated one. fig1's cells are realised densities —
// pure functions of the run configs — so the comparison is exact.
func TestParallelMatchesSequential(t *testing.T) {
	ResetCache()
	seq, err := Run("fig1", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	ResetCache()
	par, err := Run("fig1", Options{Quick: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatalf("parallel table differs from sequential:\n--- sequential ---\n%s--- parallel ---\n%s", seq, par)
	}
}

// TestParallelQuantMatchesSequential extends the determinism contract to
// quantized runs: fp32 and fp16 variants fanned out together over the
// parallel driver must reproduce their sequential twins bit-exactly —
// series, wire bytes and compression included. A deliberately small spec
// set (two apps × both precisions) keeps it affordable under -race, where
// CI runs it.
func TestParallelQuantMatchesSequential(t *testing.T) {
	specsFor := func(o Options) []runSpec {
		var specs []runSpec
		for _, app := range []string{"mlp", "vision"} {
			for _, prec := range []string{"fp32", "fp16"} {
				specs = append(specs, quantSpec(o, app, "deft", prec, 4, 8, 4, 2, 0.05))
			}
		}
		return specs
	}
	// trajectory is the run's canonical deterministic record (series +
	// byte accounting, no wall-clock fields) for exact compare.
	trajectory := func(r *train.Result) string {
		data, err := r.DeterministicJSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	ResetCache()
	seq := Options{Quick: true}
	sequential := make([]string, 0, 4)
	for _, s := range specsFor(seq) {
		sequential = append(sequential, trajectory(s.run(seq)))
	}
	ResetCache()
	par := Options{Quick: true, Parallel: 4}
	specs := specsFor(par)
	warm(par, specs)
	for i, s := range specs {
		if got := trajectory(s.run(par)); got != sequential[i] {
			t.Errorf("%s: parallel run diverged from sequential:\n  sequential: %s\n  parallel:   %s",
				s.key, sequential[i], got)
		}
	}
}

// TestParallelSharedRuns exercises the single-flight path under the pool:
// two experiments that share underlying runs (fig4 and fig5 reuse the same
// convergence runs) generated concurrently, each with its own worker pool.
// The run cache must train every configuration exactly once and both
// tables must build. Run under -race in CI.
func TestParallelSharedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("trains several models")
	}
	ResetCache()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, id := range []string{"fig4", "fig5"} {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			_, errs[i] = Run(id, Options{Quick: true, Parallel: 2})
		}(i, id)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
}

// TestParallelCancellation cancels a parallel table mid-flight: RunContext
// must surface the context error (not hang, not panic) and memoise nothing
// partial.
func TestParallelCancellation(t *testing.T) {
	ResetCache()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, "fig1", Options{Quick: true, Parallel: 3})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("parallel run did not unwind after cancellation")
	}
}
