package experiments

import (
	"strconv"
	"strings"
	"testing"
)

var quick = Options{Quick: true}

// parse pulls a float out of a table cell.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tab.Rows[row][col], "ms")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func colIndex(t *testing.T, tab *Table, name string) int {
	t.Helper()
	for i, c := range tab.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("column %q missing from %v", name, tab.Columns)
	return -1
}

func TestRunDispatchAllIDs(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite is long")
	}
	for _, id := range IDs() {
		tab, err := Run(id, quick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
		if tab.String() == "" {
			t.Fatalf("%s: empty render", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", quick); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFig1BuildUpMonotone(t *testing.T) {
	tab := Fig1(quick)
	col := colIndex(t, tab, "mean density")
	prev := 0.0
	for i := range tab.Rows {
		d := cell(t, tab, i, col)
		if d <= 0.01 {
			t.Errorf("row %d: density %v should exceed target 0.01", i, d)
		}
		if d < prev*0.8 {
			t.Errorf("density not (weakly) growing with workers: %v after %v", d, prev)
		}
		prev = d
	}
}

func TestFig4DensityShape(t *testing.T) {
	tab := Fig4(quick)
	deftCol := colIndex(t, tab, "deft mean")
	topkCol := colIndex(t, tab, "topk mean")
	ratioCol := colIndex(t, tab, "topk/target")
	for i, row := range tab.Rows {
		target, _ := strconv.ParseFloat(row[1], 64)
		deft := cell(t, tab, i, deftCol)
		topk := cell(t, tab, i, topkCol)
		if topk <= deft {
			t.Errorf("%s: topk density %v not above deft %v", row[0], topk, deft)
		}
		// DEFT's density floor is one gradient per fragment (Algorithm 3
		// line 13). On our deliberately tiny models k can sit near the
		// fragment count, so allow the floor: deft must stay within a small
		// multiple of the target, far below any build-up regime.
		if deft > target*4 || deft < target*0.4 {
			t.Errorf("%s: deft density %v strays from target %v", row[0], deft, target)
		}
		if cell(t, tab, i, ratioCol) <= 1 {
			t.Errorf("%s: no build-up measured for topk", row[0])
		}
	}
}

func TestFig9SpeedupShape(t *testing.T) {
	tab := Fig9(quick)
	trivCol := colIndex(t, tab, "theoretical-trivial")
	modelCol := colIndex(t, tab, "deft modeled")
	for i, row := range tab.Rows {
		n, _ := strconv.Atoi(row[0])
		trivial := cell(t, tab, i, trivCol)
		modeled := cell(t, tab, i, modelCol)
		if n > 1 {
			if trivial < float64(n)*0.99 {
				t.Errorf("n=%d: trivial bound %v below linear", n, trivial)
			}
			if modeled < trivial*0.9 {
				t.Errorf("n=%d: modeled speedup %v below trivial bound %v", n, modeled, trivial)
			}
		}
	}
}

func TestFig7BreakdownShape(t *testing.T) {
	tab := Fig7(quick)
	selCol := colIndex(t, tab, "selection (ms)")
	commCol := colIndex(t, tab, "communication (ms)")
	byName := map[string]int{}
	for i, row := range tab.Rows {
		byName[row[0]] = i
	}
	deftSel := cell(t, tab, byName["deft"], selCol)
	topkSel := cell(t, tab, byName["topk"], selCol)
	if deftSel >= topkSel {
		t.Errorf("deft selection %vms not below topk %vms", deftSel, topkSel)
	}
	deftComm := cell(t, tab, byName["deft"], commCol)
	topkComm := cell(t, tab, byName["topk"], commCol)
	if deftComm > topkComm {
		t.Errorf("deft communication %vms above topk %vms", deftComm, topkComm)
	}
}

func TestTable1Shape(t *testing.T) {
	tab := Table1(quick)
	buildCol := colIndex(t, tab, "build-up")
	byName := map[string]int{}
	for i, row := range tab.Rows {
		byName[row[0]] = i
	}
	if tab.Rows[byName["topk"]][buildCol] != "Yes" {
		t.Error("topk should show build-up")
	}
	for _, s := range []string{"deft", "cltk"} {
		if tab.Rows[byName[s]][buildCol] != "No" {
			t.Errorf("%s should show no build-up", s)
		}
	}
	tuneCol := colIndex(t, tab, "hyperparam tuning")
	if tab.Rows[byName["hardthreshold"]][tuneCol] != "Yes" {
		t.Error("hardthreshold requires tuning")
	}
	idleCol := colIndex(t, tab, "worker idling")
	if tab.Rows[byName["cltk"]][idleCol] != "Yes" {
		t.Error("cltk idles workers")
	}
}

func TestTable2Static(t *testing.T) {
	tab := Table2(quick)
	if len(tab.Rows) != 3 {
		t.Fatalf("Table2 rows = %d, want 3", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[3] == "0" {
			t.Errorf("%s: zero parameters", row[0])
		}
	}
}

func TestAblationShape(t *testing.T) {
	tab := Ablation(quick)
	balCol := colIndex(t, tab, "balance (max/mean cost)")
	byName := map[string]int{}
	for i, row := range tab.Rows {
		byName[row[0]] = i
	}
	paper := cell(t, tab, byName["deft (paper)"], balCol)
	contig := cell(t, tab, byName["contiguous alloc"], balCol)
	if paper > contig+1e-9 {
		t.Errorf("LPT balance %v worse than contiguous %v", paper, contig)
	}
	if paper > 2.0 {
		t.Errorf("LPT balance %v too far from 1", paper)
	}
}

// TestQuantShape checks the quantized-vs-fp32 comparison: fp16 rows must
// report strictly higher wire compression than their fp32 twins for every
// (app, scheme), and the fp32/fp16 cache keys must never collide (a
// quantized run memoised as its fp32 twin would poison both).
func TestQuantShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains every workload at both precisions")
	}
	tab := Quant(quick)
	wireCol := colIndex(t, tab, "wire x")
	precCol := colIndex(t, tab, "precision")
	if len(tab.Rows)%2 != 0 {
		t.Fatalf("rows must pair fp32/fp16, got %d", len(tab.Rows))
	}
	for i := 0; i < len(tab.Rows); i += 2 {
		fp32Row, fp16Row := tab.Rows[i], tab.Rows[i+1]
		if fp32Row[precCol] != "fp32" || fp16Row[precCol] != "fp16" {
			t.Fatalf("row pair %d not (fp32, fp16): %v / %v", i, fp32Row, fp16Row)
		}
		if cell(t, tab, i+1, wireCol) <= cell(t, tab, i, wireCol) {
			t.Errorf("%s/%s: fp16 compression %v not above fp32 %v",
				fp32Row[0], fp32Row[1], tab.Rows[i+1][wireCol], tab.Rows[i][wireCol])
		}
	}
	a := quantSpec(quick, "mlp", "deft", "fp32", 4, 8, 4, 2, 0.01)
	b := quantSpec(quick, "mlp", "deft", "fp16", 4, 8, 4, 2, 0.01)
	if a.key == b.key {
		t.Fatalf("fp32 and fp16 specs share cache key %q", a.key)
	}
	if a.cfg.Quantize || !b.cfg.Quantize {
		t.Fatalf("quantize flags wrong: fp32=%v fp16=%v", a.cfg.Quantize, b.cfg.Quantize)
	}
}

// TestElasticityShape checks the chaos table's invariants: a straggler
// degrades iterations/sec without moving the loss (synchronous SGD waits,
// it doesn't diverge), a drop recovers exactly once with measured
// overhead, and faulted runs never share a cache key with healthy twins.
func TestElasticityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains every workload under three chaos scenarios")
	}
	tab := Elasticity(quick)
	lossCol := colIndex(t, tab, "final loss")
	degrCol := colIndex(t, tab, "degr %")
	recovCol := colIndex(t, tab, "recov")
	scCol := colIndex(t, tab, "scenario")
	if len(tab.Rows)%3 != 0 {
		t.Fatalf("rows must come in scenario triples, got %d", len(tab.Rows))
	}
	for i := 0; i < len(tab.Rows); i += 3 {
		healthy, straggler, drop := tab.Rows[i], tab.Rows[i+1], tab.Rows[i+2]
		if healthy[scCol] != "healthy" || straggler[scCol] != "straggler x4" || drop[scCol] != "drop @50%" {
			t.Fatalf("row triple %d out of order: %v / %v / %v", i, healthy[scCol], straggler[scCol], drop[scCol])
		}
		if healthy[lossCol] != straggler[lossCol] {
			t.Errorf("%s/%s: straggler moved final loss %s -> %s; must only slow the clock",
				healthy[0], healthy[1], healthy[lossCol], straggler[lossCol])
		}
		if d := cell(t, tab, i+1, degrCol); d <= 0 {
			t.Errorf("%s/%s: straggler degradation %v not positive", healthy[0], healthy[1], d)
		}
		if healthy[recovCol] != "0" || straggler[recovCol] != "0" || drop[recovCol] != "1" {
			t.Errorf("%s/%s: recovery counts %s/%s/%s, want 0/0/1",
				healthy[0], healthy[1], healthy[recovCol], straggler[recovCol], drop[recovCol])
		}
	}
	scs := elasticScenarios()
	a := elasticSpec(quick, "mlp", "deft", scs[0], 4, 12, 6, 3, 0.01)
	b := elasticSpec(quick, "mlp", "deft", scs[2], 4, 12, 6, 3, 0.01)
	if a.key == b.key {
		t.Fatalf("healthy and drop specs share cache key %q", a.key)
	}
}

func TestTableRenderStable(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Columns: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	out := tab.String()
	if !strings.Contains(out, "== x: T ==") || !strings.Contains(out, "bb") {
		t.Fatalf("render broken:\n%s", out)
	}
}

func TestCacheReturnsSameResult(t *testing.T) {
	ResetCache()
	a := Fig1(quick)
	b := Fig1(quick) // cached second time
	if a.String() != b.String() {
		t.Fatal("cached rerun differs")
	}
}
