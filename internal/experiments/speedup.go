package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/shapes"
	"repro/internal/topk"
)

// Fig9 reproduces Figure 9: the computational speedup of DEFT's layer-wise
// gradient selection over whole-vector Top-k selection as the cluster
// scales out, on the LSTM/WikiText-2 model (true layer-shape catalog,
// synthetic gradients with log-normal per-layer norms).
//
// The simulated-parallel time of DEFT at n workers is the *maximum* of the
// per-worker selection wall times (each measured in isolation, so the
// single-CPU host doesn't serialise the measurement). Alongside the
// measured speedup, the table carries the paper's two analytic curves:
// linear (= n) and the trivial-partitioning bound f_trivial(n) (Eq. 8).
func Fig9(o Options) *Table {
	scale := 0.1 // 13.6M gradients
	workerSet := []int{1, 2, 4, 8, 16, 32}
	reps := 3
	if o.Quick {
		scale = 0.01 // 1.36M gradients
		reps = 2
	}
	catalog := shapes.LSTMWiki().Scaled(scale)
	layers := catalog.Layers()
	ng := catalog.TotalSize()
	grad := catalog.SyntheticGradients(42 + o.Seed)
	density := 0.001
	k := int(float64(ng) * density)

	// Baseline: one whole-vector top-k (what Top-k and CLT-k compute).
	baseline := minDuration(reps, func() {
		topk.HeapTopK(grad, k)
	})

	t := &Table{
		ID:    "fig9",
		Title: fmt.Sprintf("Selection speedup by scale-out (LSTM catalog, ng=%d, d=%g) — paper Fig 9", ng, density),
		Columns: []string{"workers", "linear", "theoretical-trivial", "deft measured",
			"deft modeled", "max worker time"},
	}
	for _, n := range workerSet {
		frags := core.Partition(layers, n, core.PartitionOpts{SecondStage: true})
		core.ComputeNorms(frags, grad)
		core.AssignK(frags, k)
		bins := core.Allocate(frags, n, core.LPTPolicy)

		// Per-worker selection times measured sequentially; the simulated
		// parallel time is their maximum.
		var maxWorker time.Duration
		for w := 0; w < n; w++ {
			alloc := bins[w]
			d := minDuration(reps, func() {
				core.SelectLayerwise(frags, alloc, grad)
			})
			if d > maxWorker {
				maxWorker = d
			}
		}
		measured := float64(baseline) / float64(maxWorker)
		modeled := core.FullCost(ng, k) / core.MaxWorkerCost(frags, bins)
		trivial := core.FullCost(ng, k) / core.TrivialCost(ng, k, n)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", n),
			f2(trivial),
			f2(measured),
			f2(modeled),
			fmt.Sprintf("%.3fms", maxWorker.Seconds()*1000),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: DEFT speedup >= theoretical-trivial >= linear (Eq. 9), with the gap widening as n grows",
		"baseline whole-vector top-k: "+baseline.String())
	return t
}

// minDuration runs fn reps times and returns the fastest wall time — the
// standard way to suppress scheduler noise in microbenchmarks.
func minDuration(reps int, fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// SpeedupCurve returns the modeled DEFT speedup for a catalog and density
// across worker counts — used by the scalability example and tests without
// timing noise.
func SpeedupCurve(catalog shapes.Catalog, density float64, workerSet []int, seed uint64) map[int]float64 {
	layers := catalog.Layers()
	ng := catalog.TotalSize()
	grad := catalog.SyntheticGradients(seed)
	k := int(float64(ng) * density)
	out := map[int]float64{}
	for _, n := range workerSet {
		frags := core.Partition(layers, n, core.PartitionOpts{SecondStage: true})
		core.ComputeNorms(frags, grad)
		core.AssignK(frags, k)
		bins := core.Allocate(frags, n, core.LPTPolicy)
		out[n] = core.FullCost(ng, k) / core.MaxWorkerCost(frags, bins)
	}
	return out
}
