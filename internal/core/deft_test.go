package core

import (
	"sort"
	"testing"

	"repro/internal/comm"
	"repro/internal/rng"
	"repro/internal/sparsifier"
)

// runClusterSelect runs one DEFT Select on an n-rank cluster where each
// rank has its own gradient vector, and returns the per-rank index lists.
func runClusterSelect(t *testing.T, n int, grads [][]float64, layers []sparsifier.Layer, density float64, iter int) [][]int {
	t.Helper()
	cluster := comm.NewCluster(n)
	results := make([][]int, n)
	cluster.Run(func(cm *comm.Comm) {
		d := NewDefault()
		ctx := &sparsifier.Ctx{
			Rank:                cm.Rank(),
			NWorkers:            n,
			Iteration:           iter,
			Density:             density,
			Layers:              layers,
			BroadcastInts:       cm.BroadcastInts,
			BroadcastIntsNested: cm.BroadcastIntsNested,
		}
		results[cm.Rank()] = d.Select(ctx, grads[cm.Rank()])
	})
	return results
}

func clusterGrads(seed uint64, n, ng int) [][]float64 {
	root := rng.New(seed)
	grads := make([][]float64, n)
	for r := range grads {
		rr := root.Split(uint64(r))
		grads[r] = make([]float64, ng)
		for i := range grads[r] {
			grads[r][i] = rr.Norm()
		}
	}
	return grads
}

func TestDEFTClusterDisjointSelection(t *testing.T) {
	const n, ng = 8, 4000
	layers := makeLayers(500, 1500, 100, 1900)
	grads := clusterGrads(1, n, ng)
	for iter := 0; iter < 3; iter++ {
		results := runClusterSelect(t, n, grads, layers, 0.01, iter)
		seen := map[int]int{}
		for r, idx := range results {
			for _, i := range idx {
				if prev, dup := seen[i]; dup {
					t.Fatalf("iter %d: index %d selected by ranks %d and %d", iter, i, prev, r)
				}
				seen[i] = r
				if i < 0 || i >= ng {
					t.Fatalf("index %d out of range", i)
				}
			}
		}
	}
}

func TestDEFTDensityMatchesTarget(t *testing.T) {
	const n, ng = 16, 20000
	layers := makeLayers(4000, 8000, 1000, 7000)
	grads := clusterGrads(2, n, ng)
	density := 0.01
	results := runClusterSelect(t, n, grads, layers, density, 0)
	total := 0
	for _, idx := range results {
		total += len(idx)
	}
	got := float64(total) / float64(ng)
	// DEFT keeps the actual density at the set value up to the per-fragment
	// max(1, ·) floor. With ~tens of fragments on 20000 gradients the
	// deviation must stay tiny.
	if got < density*0.8 || got > density*1.5 {
		t.Fatalf("actual density %v, want ~%v", got, density)
	}
}

func TestDEFTNoBuildUpVsTopK(t *testing.T) {
	// The headline claim: on the same gradients, the union of Top-k
	// selections grows with n while the union of DEFT selections stays at k.
	const n, ng = 8, 10000
	layers := makeLayers(2500, 2500, 2500, 2500)
	grads := clusterGrads(3, n, ng)
	density := 0.01

	deftResults := runClusterSelect(t, n, grads, layers, density, 0)
	deftUnion := map[int]struct{}{}
	for _, idx := range deftResults {
		for _, i := range idx {
			deftUnion[i] = struct{}{}
		}
	}

	tk := sparsifier.NewTopK()
	topkUnion := map[int]struct{}{}
	for r := 0; r < n; r++ {
		ctx := &sparsifier.Ctx{Rank: r, NWorkers: n, Density: density, Layers: layers}
		for _, i := range tk.Select(ctx, grads[r]) {
			topkUnion[i] = struct{}{}
		}
	}

	k := int(density * float64(ng))
	if len(deftUnion) > k+k/2 {
		t.Fatalf("DEFT union %d far above k=%d", len(deftUnion), k)
	}
	if len(topkUnion) < 2*k {
		t.Fatalf("Top-k union %d shows no build-up (k=%d); test workload too correlated", len(topkUnion), k)
	}
	if len(deftUnion) >= len(topkUnion) {
		t.Fatalf("DEFT union %d not smaller than Top-k union %d", len(deftUnion), len(topkUnion))
	}
}

func TestDEFTDeterministicAcrossRuns(t *testing.T) {
	const n, ng = 4, 2000
	layers := makeLayers(1000, 1000)
	grads := clusterGrads(4, n, ng)
	a := runClusterSelect(t, n, grads, layers, 0.05, 7)
	b := runClusterSelect(t, n, grads, layers, 0.05, 7)
	for r := range a {
		sort.Ints(a[r])
		sort.Ints(b[r])
		if len(a[r]) != len(b[r]) {
			t.Fatalf("rank %d selection size differs across runs", r)
		}
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("rank %d selection differs across runs", r)
			}
		}
	}
}

func TestDEFTCycleRotatesAllocation(t *testing.T) {
	// Over n consecutive iterations each rank should receive different bins
	// (curr_part rotates), so a rank's fragment ownership changes.
	const n, ng = 4, 8000
	layers := makeLayers(3000, 2000, 1000, 2000)
	grads := clusterGrads(5, n, ng)
	perIter := make([][]int, n)
	for iter := 0; iter < n; iter++ {
		results := runClusterSelect(t, n, grads, layers, 0.02, iter)
		perIter[iter] = results[0] // rank 0's selection each iteration
	}
	// rank 0's selections should not be identical across all iterations.
	allSame := true
	base := append([]int(nil), perIter[0]...)
	sort.Ints(base)
	for iter := 1; iter < n; iter++ {
		cur := append([]int(nil), perIter[iter]...)
		sort.Ints(cur)
		if len(cur) != len(base) {
			allSame = false
			break
		}
		for i := range cur {
			if cur[i] != base[i] {
				allSame = false
				break
			}
		}
	}
	if allSame {
		t.Fatal("allocation never rotated across the cycle")
	}
}

func TestDEFTSingleProcessFallback(t *testing.T) {
	// Without broadcast functions DEFT must still work (single worker).
	d := NewDefault()
	r := rng.New(6)
	grad := make([]float64, 5000)
	for i := range grad {
		grad[i] = r.Norm()
	}
	ctx := &sparsifier.Ctx{Rank: 0, NWorkers: 1, Density: 0.01, Layers: makeLayers(2000, 3000)}
	idx := d.Select(ctx, grad)
	if len(idx) < 40 || len(idx) > 60 {
		t.Fatalf("selected %d, want ~50", len(idx))
	}
	part, sel := d.LastOverhead()
	if part <= 0 || sel <= 0 {
		t.Fatalf("overheads not recorded: %v %v", part, sel)
	}
}

func TestDEFTSelectsLargeGradients(t *testing.T) {
	// Plant a layer with 10x the magnitude: DEFT must select a
	// disproportionate share there.
	ng := 10000
	grad := make([]float64, ng)
	r := rng.New(7)
	for i := range grad {
		if i < 1000 { // hot layer
			grad[i] = r.Norm() * 10
		} else {
			grad[i] = r.Norm()
		}
	}
	d := NewDefault()
	ctx := &sparsifier.Ctx{Rank: 0, NWorkers: 1, Density: 0.01, Layers: makeLayers(1000, 3000, 3000, 3000)}
	idx := d.Select(ctx, grad)
	inHot := 0
	for _, i := range idx {
		if i < 1000 {
			inHot++
		}
	}
	if frac := float64(inHot) / float64(len(idx)); frac < 0.5 {
		t.Fatalf("only %v of selections in the hot layer, want > 0.5", frac)
	}
}

func TestDEFTUniformAblationDiffers(t *testing.T) {
	ng := 10000
	grad := make([]float64, ng)
	r := rng.New(8)
	for i := range grad {
		if i < 1000 {
			grad[i] = r.Norm() * 10
		} else {
			grad[i] = r.Norm()
		}
	}
	layers := makeLayers(1000, 3000, 3000, 3000)
	ctx := &sparsifier.Ctx{Rank: 0, NWorkers: 1, Density: 0.01, Layers: layers}

	norm := NewDefault().Select(ctx, grad)
	uni := New(Options{Partition: PartitionOpts{SecondStage: true}, UniformK: true}).Select(ctx, grad)
	hotShare := func(idx []int) float64 {
		c := 0
		for _, i := range idx {
			if i < 1000 {
				c++
			}
		}
		return float64(c) / float64(len(idx))
	}
	if hotShare(norm) <= hotShare(uni) {
		t.Fatalf("norm-proportional share %v should exceed uniform share %v", hotShare(norm), hotShare(uni))
	}
}

func TestDEFTPartitionCacheInvalidation(t *testing.T) {
	d := NewDefault()
	r := rng.New(10)
	grad := make([]float64, 1000)
	for i := range grad {
		grad[i] = r.Norm()
	}
	ctx := &sparsifier.Ctx{Rank: 0, NWorkers: 1, Density: 0.1, Layers: makeLayers(1000)}
	d.Select(ctx, grad)
	f1 := len(d.Fragments())
	ctx.NWorkers = 4 // partition must rebuild with second-stage splits
	d.Select(ctx, grad)
	f2 := len(d.Fragments())
	if f2 <= f1 {
		t.Fatalf("partition cache not invalidated: %d -> %d fragments", f1, f2)
	}
}
