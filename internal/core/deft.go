package core

import (
	"sync"
	"time"

	"repro/internal/sparsifier"
)

// Options configures a DEFT sparsifier instance.
type Options struct {
	// Partition controls Algorithm 2. Zero value enables the second stage
	// through DefaultOptions; set SecondStage explicitly when constructing
	// Options by hand.
	Partition PartitionOpts
	// Alloc selects the bin-packing policy of Algorithm 4 (default LPT).
	Alloc AllocPolicy
	// UniformK replaces Algorithm 3 with size-proportional assignment
	// (ablation).
	UniformK bool
}

// DefaultOptions returns the configuration used in the paper: second-stage
// partitioning on, LPT packing, norm-proportional k.
func DefaultOptions() Options {
	return Options{Partition: PartitionOpts{SecondStage: true}}
}

// DEFT is the sparsifier. One instance per worker; the fragment partition
// is computed once (it depends only on layer shapes and cluster size) and
// per-iteration state (norms, k, allocation) is recomputed each Select.
type DEFT struct {
	opts Options

	mu       sync.Mutex
	frags    []Fragment // cached partition
	partFor  int        // nWorkers the cache was built for
	layersAt int        // len(ctx.Layers) the cache was built for

	// Overhead accounting for the training-time breakdown (Fig 7).
	lastPartition time.Duration // norms + k assignment + packing + broadcast
	lastSelection time.Duration // layer-wise top-k proper
}

// New creates a DEFT sparsifier with the given options.
func New(opts Options) *DEFT { return &DEFT{opts: opts} }

// NewDefault creates a DEFT sparsifier with the paper's configuration.
func NewDefault() *DEFT { return New(DefaultOptions()) }

// Name implements sparsifier.Sparsifier.
func (d *DEFT) Name() string { return "deft" }

// LastOverhead returns the wall-clock cost of the most recent Select call,
// split into the partition/assignment overhead and the selection proper.
// Used by the Fig 7 time-breakdown experiment.
func (d *DEFT) LastOverhead() (partition, selection time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastPartition, d.lastSelection
}

// Fragments returns a copy of the current partition (for inspection tools).
func (d *DEFT) Fragments() []Fragment {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Fragment, len(d.frags))
	copy(out, d.frags)
	return out
}

// Select implements sparsifier.Sparsifier. It follows §4's sequence:
// partition (cached), per-layer norms + local k (Algorithm 3, computed
// locally on every worker), delegated bin-packing allocation with broadcast
// (Algorithm 4), then layer-wise top-k (Algorithm 5).
func (d *DEFT) Select(ctx *sparsifier.Ctx, grad []float64) []int {
	nWorkers := ctx.NWorkers
	if nWorkers < 1 {
		nWorkers = 1
	}

	// Partition overhead is timed over the *local* work only (partition,
	// norms, k assignment, packing) under the trainer's timing gate
	// (ctx.Isolated), so the reported numbers are contention-free
	// per-worker times. The broadcast call is excluded: in the simulator
	// its duration is dominated by waiting for the other ranks to arrive
	// (rendezvous skew), which is not a cost of DEFT — on a real cluster
	// workers arrive together and the payload is the 4L bytes the paper
	// bounds in §4.3.
	var frags []Fragment
	kTotal := ctx.TargetK(len(grad))
	localPart := ctx.Isolated(func() {
		frags = d.partition(ctx, nWorkers)
		// Algorithm 3 runs locally on every worker: k depends on the
		// worker's own gradient norms. §4.3 notes the resulting k_x differ
		// only slightly between workers because all replicas share the
		// model state.
		ComputeNorms(frags, grad)
		if d.opts.UniformK {
			AssignUniform(frags, kTotal)
		} else {
			AssignK(frags, kTotal)
		}
	})

	// Algorithm 4: the cycle worker decides the allocation and broadcasts
	// it; everyone else adopts the broadcast bins. Without a cluster
	// (BroadcastIntsNested == nil) the worker packs locally.
	cycle := 0
	if ctx.NWorkers > 0 {
		cycle = ctx.Iteration % ctx.NWorkers
	}
	var bins [][]int
	if ctx.BroadcastIntsNested == nil {
		localPart += ctx.Isolated(func() {
			bins = Allocate(frags, nWorkers, d.opts.Alloc)
		})
	} else {
		var local [][]int
		if ctx.Rank == cycle {
			localPart += ctx.Isolated(func() {
				local = Allocate(frags, nWorkers, d.opts.Alloc)
			})
		}
		bins = ctx.BroadcastIntsNested(cycle, local)
	}
	// curr_part ← (cycle + rank) mod n, line 2 of Algorithm 4: bins rotate
	// with the cycle so each worker walks through all bins over n
	// iterations.
	currPart := (cycle + ctx.Rank) % nWorkers
	alloc := bins[currPart]

	var indices []int
	sel := ctx.Isolated(func() {
		indices = SelectLayerwise(frags, alloc, grad)
	})
	d.mu.Lock()
	d.lastPartition = localPart
	d.lastSelection = sel
	d.mu.Unlock()
	return indices
}

// partition returns the cached fragment list, rebuilding it when the layer
// set or cluster size changes.
func (d *DEFT) partition(ctx *sparsifier.Ctx, nWorkers int) []Fragment {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.frags == nil || d.partFor != nWorkers || d.layersAt != len(ctx.Layers) {
		d.frags = Partition(ctx.Layers, nWorkers, d.opts.Partition)
		d.partFor = nWorkers
		d.layersAt = len(ctx.Layers)
	}
	return d.frags
}

// Factory returns a sparsifier.Factory producing per-worker DEFT instances
// with the given options.
func Factory(opts Options) sparsifier.Factory {
	return func() sparsifier.Sparsifier { return New(opts) }
}

var _ sparsifier.Sparsifier = (*DEFT)(nil)
