package core

import (
	"sync"
	"time"

	"repro/internal/sparsifier"
	"repro/internal/topk"
)

// Options configures a DEFT sparsifier instance.
type Options struct {
	// Partition controls Algorithm 2. Zero value enables the second stage
	// through DefaultOptions; set SecondStage explicitly when constructing
	// Options by hand.
	Partition PartitionOpts
	// Alloc selects the bin-packing policy of Algorithm 4 (default LPT).
	Alloc AllocPolicy
	// UniformK replaces Algorithm 3 with size-proportional assignment
	// (ablation).
	UniformK bool
}

// DefaultOptions returns the configuration used in the paper: second-stage
// partitioning on, LPT packing, norm-proportional k.
func DefaultOptions() Options {
	return Options{Partition: PartitionOpts{SecondStage: true}}
}

// DEFT is the sparsifier. One instance per worker; the fragment partition
// is computed once (it depends only on layer shapes and cluster size) and
// per-iteration state (norms, k, allocation) is recomputed each Select.
//
// All per-iteration buffers (norm-sort permutation, packing scratch,
// selection scratch, index output) are retained on the instance, so the
// steady-state Select performs zero heap allocations on the single-process
// path; the slice returned by Select aliases this scratch and is valid
// until the next Select call.
type DEFT struct {
	opts Options

	mu       sync.Mutex
	frags    []Fragment // cached partition
	partFor  int        // nWorkers the cache was built for
	layersAt int        // len(ctx.Layers) the cache was built for

	// Reusable per-iteration scratch (accessed only by the owning worker).
	order    []int        // AssignK priority permutation
	alloc    AllocScratch // Algorithm 4 packing buffers
	sel      topk.Scratch // Algorithm 5 per-fragment top-k
	idx      []int        // selection output
	localBin []int        // adopted bin copied out of the broadcast

	// Overhead accounting for the training-time breakdown (Fig 7).
	lastPartition time.Duration // norms + k assignment + packing + broadcast
	lastSelection time.Duration // layer-wise top-k proper
}

// New creates a DEFT sparsifier with the given options.
func New(opts Options) *DEFT { return &DEFT{opts: opts} }

// NewDefault creates a DEFT sparsifier with the paper's configuration.
func NewDefault() *DEFT { return New(DefaultOptions()) }

// Name implements sparsifier.Sparsifier.
func (d *DEFT) Name() string { return "deft" }

// LastOverhead returns the wall-clock cost of the most recent Select call,
// split into the partition/assignment overhead and the selection proper.
// Used by the Fig 7 time-breakdown experiment.
func (d *DEFT) LastOverhead() (partition, selection time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastPartition, d.lastSelection
}

// Fragments returns a copy of the current partition (for inspection tools).
func (d *DEFT) Fragments() []Fragment {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Fragment, len(d.frags))
	copy(out, d.frags)
	return out
}

// Select implements sparsifier.Sparsifier. It follows §4's sequence:
// partition (cached), per-layer norms + local k (Algorithm 3, computed
// locally on every worker), delegated bin-packing allocation with broadcast
// (Algorithm 4), then layer-wise top-k (Algorithm 5). The returned slice is
// owned by the sparsifier and valid until the next Select call.
//
// The cluster path (timing gate or broadcast installed) and the
// single-process path are separate methods: the cluster path hands closures
// to ctx.Isolate, and a closure that writes a local forces that local onto
// the heap for the *whole* function regardless of which branch runs — so
// the allocation-free local path must not share a function body with it.
func (d *DEFT) Select(ctx *sparsifier.Ctx, grad []float64) []int {
	if ctx.Isolate != nil || ctx.BroadcastIntsNested != nil {
		return d.selectCluster(ctx, grad)
	}
	return d.selectLocal(ctx, grad)
}

// selectCluster runs Select under a trainer (timing gate, allocation
// broadcast). Partition overhead is timed over the *local* work only
// (partition, norms, k assignment, packing) under the trainer's timing gate
// (ctx.Isolated), so the reported numbers are contention-free per-worker
// times. The broadcast call is excluded: in the simulator its duration is
// dominated by waiting for the other ranks to arrive (rendezvous skew),
// which is not a cost of DEFT — on a real cluster workers arrive together
// and the payload is the 4L bytes the paper bounds in §4.3.
func (d *DEFT) selectCluster(ctx *sparsifier.Ctx, grad []float64) []int {
	nWorkers := ctx.NWorkers
	if nWorkers < 1 {
		nWorkers = 1
	}
	kTotal := ctx.TargetK(len(grad))
	var frags []Fragment
	localPart := ctx.Isolated(func() { frags = d.assignPhase(ctx, grad, kTotal, nWorkers) })

	// Algorithm 4: the cycle worker decides the allocation and broadcasts
	// it; everyone else adopts the broadcast bins. Without a cluster
	// (BroadcastIntsNested == nil) the worker packs locally.
	cycle := 0
	if ctx.NWorkers > 0 {
		cycle = ctx.Iteration % ctx.NWorkers
	}
	// curr_part ← (cycle + rank) mod n, line 2 of Algorithm 4: bins rotate
	// with the cycle so each worker walks through all bins over n
	// iterations.
	currPart := (cycle + ctx.Rank) % nWorkers
	var bin []int
	if ctx.BroadcastIntsNested == nil {
		localPart += ctx.Isolated(func() {
			bin = AllocateInto(frags, nWorkers, d.opts.Alloc, &d.alloc)[currPart]
		})
	} else {
		var local [][]int
		if ctx.Rank == cycle {
			localPart += ctx.Isolated(func() {
				local = AllocateInto(frags, nWorkers, d.opts.Alloc, &d.alloc)
			})
		}
		bins := ctx.BroadcastIntsNested(cycle, local)
		d.localBin = append(d.localBin[:0], bins[currPart]...)
		bin = d.localBin
	}

	sel := ctx.Isolated(func() {
		d.idx = SelectLayerwiseInto(frags, bin, grad, d.idx, &d.sel)
	})
	d.mu.Lock()
	d.lastPartition = localPart
	d.lastSelection = sel
	d.mu.Unlock()
	return d.idx
}

// selectLocal is the single-process fast path: identical algorithm, inline
// timing, no closures — zero heap allocations once the instance scratch has
// reached steady-state size.
func (d *DEFT) selectLocal(ctx *sparsifier.Ctx, grad []float64) []int {
	nWorkers := ctx.NWorkers
	if nWorkers < 1 {
		nWorkers = 1
	}
	kTotal := ctx.TargetK(len(grad))
	t0 := time.Now()
	frags := d.assignPhase(ctx, grad, kTotal, nWorkers)
	cycle := 0
	if ctx.NWorkers > 0 {
		cycle = ctx.Iteration % ctx.NWorkers
	}
	currPart := (cycle + ctx.Rank) % nWorkers
	bin := AllocateInto(frags, nWorkers, d.opts.Alloc, &d.alloc)[currPart]
	t1 := time.Now()
	d.idx = SelectLayerwiseInto(frags, bin, grad, d.idx, &d.sel)
	t2 := time.Now()
	d.mu.Lock()
	d.lastPartition = t1.Sub(t0)
	d.lastSelection = t2.Sub(t1)
	d.mu.Unlock()
	return d.idx
}

// assignPhase runs the local portion of Algorithms 2–3: cached partition,
// per-fragment norms, and local k assignment through the instance scratch.
func (d *DEFT) assignPhase(ctx *sparsifier.Ctx, grad []float64, kTotal, nWorkers int) []Fragment {
	frags := d.partition(ctx, nWorkers)
	// Algorithm 3 runs locally on every worker: k depends on the worker's
	// own gradient norms. §4.3 notes the resulting k_x differ only slightly
	// between workers because all replicas share the model state.
	ComputeNorms(frags, grad)
	if cap(d.order) < len(frags) {
		d.order = make([]int, len(frags))
	}
	if d.opts.UniformK {
		AssignUniform(frags, kTotal)
	} else {
		AssignKScratch(frags, kTotal, d.order)
	}
	return frags
}

// partition returns the cached fragment list, rebuilding it when the layer
// set or cluster size changes.
func (d *DEFT) partition(ctx *sparsifier.Ctx, nWorkers int) []Fragment {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.frags == nil || d.partFor != nWorkers || d.layersAt != len(ctx.Layers) {
		d.frags = Partition(ctx.Layers, nWorkers, d.opts.Partition)
		d.partFor = nWorkers
		d.layersAt = len(ctx.Layers)
	}
	return d.frags
}

// Factory returns a sparsifier.Factory producing per-worker DEFT instances
// with the given options.
func Factory(opts Options) sparsifier.Factory {
	return func() sparsifier.Sparsifier { return New(opts) }
}

var _ sparsifier.Sparsifier = (*DEFT)(nil)
