// Package core implements DEFT, the paper's primary contribution: a
// gradient sparsifier that (1) partitions the flat gradient vector into
// per-layer fragments with a second stage that splits oversized layers
// (Algorithm 2), (2) assigns each fragment a local k proportional to its
// gradient norm (Algorithm 3), (3) allocates fragments to workers with LPT
// bin packing on the n_g·log k selection-cost model (Algorithm 4), and
// (4) has each worker run top-k only inside its own fragments
// (Algorithm 5).
//
// Because fragment ownership is exclusive, per-worker index sets are
// disjoint: the all-gathered union has exactly Σ k_x elements, so the
// realised density equals the user-set density regardless of cluster size —
// gradient build-up is eliminated. Because each worker searches only ~1/n
// of the vector, selection cost shrinks superlinearly with n (Eq. 9).
package core

import (
	"math"

	"repro/internal/binpack"
	"repro/internal/sparsifier"
	"repro/internal/tensor"
	"repro/internal/topk"
)

// Fragment is one unit of DEFT's partition: a contiguous index range
// [Start, End) of the flat gradient vector, belonging to a single model
// layer. After the second partition stage a large model layer contributes
// several fragments. The paper calls fragments "layers" after Algorithm 2
// ("for simplicity, we refer to all partitioned fractions as layers").
type Fragment struct {
	Name  string // originating model layer name
	Start int
	End   int

	// Per-iteration state, filled by AssignK.
	Norm float64 // L2 norm of the fragment's gradients
	K    int     // local k assigned by Algorithm 3
}

// Size returns the number of gradients in the fragment.
func (f Fragment) Size() int { return f.End - f.Start }

// Cost returns the fragment's selection cost n_g,x · log k_x used by
// Algorithm 4 (line 8). Fragments with k < 2 cost their size: a scan still
// reads every element.
func (f Fragment) Cost() float64 {
	if f.Size() == 0 {
		return 0
	}
	if f.K < 2 {
		return float64(f.Size())
	}
	return float64(f.Size()) * math.Log(float64(f.K))
}

// PartitionOpts controls Algorithm 2.
type PartitionOpts struct {
	// SecondStage enables splitting layers larger than n_g / n_workers into
	// n_workers equal fractions. Disabling it is the ablation for §4.1.
	SecondStage bool
}

// Partition implements Algorithm 2: two-stage gradient vector partitioning.
// The first stage is the model's own layer boundaries; the second stage
// splits every layer larger than n_g / nWorkers into nWorkers fractions
// whose sizes differ by at most one. The returned fragments tile the
// original index space exactly.
func Partition(layers []sparsifier.Layer, nWorkers int, opts PartitionOpts) []Fragment {
	if nWorkers < 1 {
		nWorkers = 1
	}
	ng := 0
	for _, l := range layers {
		ng += l.Size()
	}
	threPart := ng / nWorkers // thre_part in Algorithm 2
	frags := make([]Fragment, 0, len(layers))
	for _, l := range layers {
		size := l.Size()
		if size == 0 {
			continue
		}
		if !opts.SecondStage || size <= threPart || nWorkers == 1 {
			frags = append(frags, Fragment{Name: l.Name, Start: l.Start, End: l.End})
			continue
		}
		// Second stage: split into nWorkers fractions of size
		// quotient(+1), exactly as lines 7–18 of Algorithm 2.
		quotient := size / nWorkers
		remainder := size % nWorkers
		pos := l.Start
		for i := 0; i < nWorkers; i++ {
			sz := quotient
			if remainder > 0 {
				sz++
				remainder--
			}
			if sz == 0 {
				continue // more workers than elements
			}
			frags = append(frags, Fragment{Name: l.Name, Start: pos, End: pos + sz})
			pos += sz
		}
	}
	return frags
}

// AssignK implements Algorithm 3: gradient-norm-based local k assignment.
// Fragments are processed in descending norm order (the paper's priority);
// each receives k_remain · norm/norm_remain, clamped to [1, size] (at least
// one gradient per fragment so every layer keeps contributing to updates).
// The fragment Norm and K fields are filled in place. kTotal is k = n_g·d.
//
// Norms must already be stored in frags (use ComputeNorms). Fragments with
// zero remaining norm get k_temp = 0 → k = 1 per line 13's max(1, ·).
func AssignK(frags []Fragment, kTotal int) {
	AssignKScratch(frags, kTotal, make([]int, len(frags)))
}

// AssignKScratch is the scratch-buffer form of AssignK: order is the
// caller-owned permutation buffer (must have len(frags) capacity or more;
// contents are overwritten). Zero heap allocations.
func AssignKScratch(frags []Fragment, kTotal int, order []int) {
	// Priority order: descending norm. Sort an index permutation so the
	// caller's fragment order (positional) is preserved.
	order = order[:len(frags)]
	for i := range order {
		order[i] = i
	}
	// Insertion sort on norms is fine: fragment counts are O(100).
	for i := 1; i < len(order); i++ {
		j := i
		for j > 0 && frags[order[j-1]].Norm < frags[order[j]].Norm {
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
	kRemain := float64(kTotal)
	normRemain := 0.0
	for i := range frags {
		normRemain += frags[i].Norm
	}
	for _, fi := range order {
		f := &frags[fi]
		var kTemp float64
		if normRemain > 0 {
			kTemp = kRemain * f.Norm / normRemain
		}
		if float64(f.Size()) < kTemp {
			f.K = f.Size()
		} else {
			f.K = int(math.Max(1, kTemp)) // truncation follows the int cast in the reference code
		}
		if f.K > f.Size() {
			f.K = f.Size()
		}
		kRemain -= float64(f.K)
		normRemain -= f.Norm
	}
}

// AssignUniform is the ablation counterpart of AssignK: every fragment gets
// k proportional to its size (uniform density), ignoring norms.
func AssignUniform(frags []Fragment, kTotal int) {
	ng := 0
	for i := range frags {
		ng += frags[i].Size()
	}
	if ng == 0 {
		return
	}
	for i := range frags {
		f := &frags[i]
		k := int(math.Round(float64(kTotal) * float64(f.Size()) / float64(ng)))
		if k < 1 {
			k = 1
		}
		if k > f.Size() {
			k = f.Size()
		}
		f.K = k
	}
}

// ComputeNorms fills each fragment's Norm field with the L2 norm of its
// slice of grad. It runs every iteration on every worker inside the gated
// selection section, so it uses tensor.L2Norm's branch-free fast path
// (scaled fallback on overflow/underflow) instead of unconditional scaled
// accumulation.
func ComputeNorms(frags []Fragment, grad []float64) {
	for i := range frags {
		f := &frags[i]
		f.Norm = tensor.L2Norm(grad[f.Start:f.End])
	}
}

// AllocPolicy selects the bin-packing policy for Allocate.
type AllocPolicy int

// Allocation policies. LPTPolicy is the paper's Algorithm 4; the others are
// ablation baselines (§5 of DESIGN.md).
const (
	LPTPolicy AllocPolicy = iota
	RoundRobinPolicy
	ContiguousPolicy
)

// Allocate implements the decision step of Algorithm 4: given fragments
// with K assigned, pack them into nWorkers bins by selection cost. The
// returned slice maps worker -> fragment indices.
func Allocate(frags []Fragment, nWorkers int, policy AllocPolicy) [][]int {
	costs := make([]float64, len(frags))
	for i := range frags {
		costs[i] = frags[i].Cost()
	}
	var a *binpack.Assignment
	switch policy {
	case RoundRobinPolicy:
		a = binpack.RoundRobin(costs, nWorkers)
	case ContiguousPolicy:
		a = binpack.Contiguous(costs, nWorkers)
	default:
		a = binpack.LPT(costs, nWorkers)
	}
	return a.Bins
}

// AllocScratch holds the reusable buffers of AllocateInto. The zero value
// is ready to use.
type AllocScratch struct {
	costs  []float64
	order  []int
	assign binpack.Assignment
}

// AllocateInto is the scratch-buffer form of Allocate for the LPT policy
// hot path. The returned bins alias s and are valid until s is next used.
// Non-LPT policies fall back to the allocating implementations (they are
// ablation baselines, not hot paths).
func AllocateInto(frags []Fragment, nWorkers int, policy AllocPolicy, s *AllocScratch) [][]int {
	if policy != LPTPolicy {
		return Allocate(frags, nWorkers, policy)
	}
	if cap(s.costs) < len(frags) {
		s.costs = make([]float64, len(frags))
	}
	s.costs = s.costs[:len(frags)]
	for i := range frags {
		s.costs[i] = frags[i].Cost()
	}
	if cap(s.order) < len(frags) {
		s.order = make([]int, len(frags))
	}
	binpack.LPTInto(s.costs, nWorkers, &s.assign, s.order[:cap(s.order)])
	return s.assign.Bins
}

// SelectLayerwise implements Algorithm 5: run top-k inside each allocated
// fragment and shift the local indices by the fragment start. The result is
// this worker's global index list; k_i = Σ k_x over owned fragments.
func SelectLayerwise(frags []Fragment, alloc []int, grad []float64) []int {
	var s topk.Scratch
	return SelectLayerwiseInto(frags, alloc, grad, nil, &s)
}

// SelectLayerwiseInto is the scratch-buffer form of SelectLayerwise: the
// selected indices are appended to dst[:0] (grown only on first use) and
// the per-fragment top-k runs through the caller's topk.Scratch, so the
// steady-state call performs zero heap allocations.
func SelectLayerwiseInto(frags []Fragment, alloc []int, grad []float64, dst []int, s *topk.Scratch) []int {
	total := 0
	for _, fi := range alloc {
		total += frags[fi].K
	}
	if cap(dst) < total {
		dst = make([]int, 0, total)
	}
	dst = dst[:0]
	for _, fi := range alloc {
		f := frags[fi]
		local := topk.HeapTopKInto(grad[f.Start:f.End], f.K, s)
		for _, li := range local {
			dst = append(dst, li+f.Start)
		}
	}
	return dst
}

// WorkerCost returns Σ cost over the fragments allocated to one worker
// (Eq. 4), and MaxWorkerCost the maximum over all workers (Eq. 5) — the
// quantity whose reduction gives DEFT its speedup.
func WorkerCost(frags []Fragment, alloc []int) float64 {
	c := 0.0
	for _, fi := range alloc {
		c += frags[fi].Cost()
	}
	return c
}

// MaxWorkerCost returns max_i WorkerCost (Eq. 5).
func MaxWorkerCost(frags []Fragment, bins [][]int) float64 {
	m := 0.0
	for _, alloc := range bins {
		if c := WorkerCost(frags, alloc); c > m {
			m = c
		}
	}
	return m
}

// TrivialCost returns C_trivial(n) = (n_g/n)·log(k/n) from Eq. 7 — the cost
// of the coarse-grained even split the paper analyses as DEFT's worst case.
func TrivialCost(ng, k, n int) float64 {
	if n < 1 {
		n = 1
	}
	fng := float64(ng) / float64(n)
	fk := float64(k) / float64(n)
	if fk < 2 {
		return fng
	}
	return fng * math.Log(fk)
}

// FullCost returns n_g·log k, the cost model of a whole-vector top-k
// (Top-k and CLT-k sparsifiers).
func FullCost(ng, k int) float64 {
	if k < 2 {
		return float64(ng)
	}
	return float64(ng) * math.Log(float64(k))
}
