package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sparsifier"
)

// makeLayers builds contiguous layers with the given sizes.
func makeLayers(sizes ...int) []sparsifier.Layer {
	layers := make([]sparsifier.Layer, len(sizes))
	pos := 0
	for i, s := range sizes {
		layers[i] = sparsifier.Layer{Name: "l", Start: pos, End: pos + s}
		pos += s
	}
	return layers
}

// fragsTile checks that fragments cover [0, ng) exactly once, in order.
func fragsTile(frags []Fragment, ng int) bool {
	pos := 0
	for _, f := range frags {
		if f.Start != pos || f.End < f.Start {
			return false
		}
		pos = f.End
	}
	return pos == ng
}

func TestPartitionTilesVector(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nLayers := 1 + r.Intn(30)
		sizes := make([]int, nLayers)
		ng := 0
		for i := range sizes {
			sizes[i] = r.Intn(5000)
			ng += sizes[i]
		}
		n := 1 + r.Intn(32)
		frags := Partition(makeLayers(sizes...), n, PartitionOpts{SecondStage: true})
		return fragsTile(frags, ng)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSecondStageBoundsFragmentSize(t *testing.T) {
	// After stage two, no fragment may exceed ceil(threPart) where
	// threPart = ng/n: a layer larger than threPart is split into n parts
	// of size <= ceil(size/n) <= ceil(ng/n).
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nLayers := 1 + r.Intn(10)
		sizes := make([]int, nLayers)
		ng := 0
		for i := range sizes {
			sizes[i] = 1 + r.Intn(10000)
			ng += sizes[i]
		}
		n := 2 + r.Intn(31)
		frags := Partition(makeLayers(sizes...), n, PartitionOpts{SecondStage: true})
		bound := ng/n + 1 // quotient + 1 for the remainder-carrying parts
		if ng/n == 0 {
			bound = ng // degenerate tiny models can't be bounded below layer size
		}
		for _, fr := range frags {
			if fr.Size() > bound && fr.Size() > (ng+n-1)/n {
				// A layer smaller than threPart is kept whole, which is <= threPart <= bound.
				// A split layer yields parts <= ceil(size/n) <= ceil(ng/n).
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionNoSecondStageKeepsLayers(t *testing.T) {
	layers := makeLayers(100, 5, 300)
	frags := Partition(layers, 4, PartitionOpts{SecondStage: false})
	if len(frags) != 3 {
		t.Fatalf("got %d fragments, want 3", len(frags))
	}
	for i, f := range frags {
		if f.Start != layers[i].Start || f.End != layers[i].End {
			t.Fatalf("fragment %d = %+v, want layer %+v", i, f, layers[i])
		}
	}
}

func TestPartitionSplitsBigLayer(t *testing.T) {
	// One layer of 103 with 4 workers: threPart=103/4=25, split into 4
	// parts sized 26,26,26,25 (quotient 25, remainder 3).
	frags := Partition(makeLayers(103), 4, PartitionOpts{SecondStage: true})
	if len(frags) != 4 {
		t.Fatalf("got %d fragments, want 4", len(frags))
	}
	wantSizes := []int{26, 26, 26, 25}
	for i, f := range frags {
		if f.Size() != wantSizes[i] {
			t.Fatalf("fragment %d size %d, want %d", i, f.Size(), wantSizes[i])
		}
	}
	if !fragsTile(frags, 103) {
		t.Fatal("fragments do not tile")
	}
}

func TestPartitionDropsEmptyLayers(t *testing.T) {
	frags := Partition(makeLayers(10, 0, 20), 2, PartitionOpts{SecondStage: true})
	for _, f := range frags {
		if f.Size() == 0 {
			t.Fatal("empty fragment emitted")
		}
	}
	if !fragsTile(frags, 30) {
		t.Fatal("tiling broken after dropping empty layer")
	}
}

func TestPartitionSingleWorkerNoSplit(t *testing.T) {
	frags := Partition(makeLayers(1000), 1, PartitionOpts{SecondStage: true})
	if len(frags) != 1 || frags[0].Size() != 1000 {
		t.Fatalf("single worker should not split: %+v", frags)
	}
}

func TestPartitionMoreWorkersThanElements(t *testing.T) {
	frags := Partition(makeLayers(3), 8, PartitionOpts{SecondStage: true})
	if !fragsTile(frags, 3) {
		t.Fatalf("tiling broken: %+v", frags)
	}
	for _, f := range frags {
		if f.Size() < 1 {
			t.Fatal("zero-size fragment emitted")
		}
	}
}

func TestAssignKProportionalToNorm(t *testing.T) {
	frags := []Fragment{
		{Start: 0, End: 1000, Norm: 9},
		{Start: 1000, End: 2000, Norm: 1},
	}
	AssignK(frags, 100)
	// First fragment should get ~90, second ~10 (plus rounding).
	if frags[0].K < 80 || frags[0].K > 100 {
		t.Fatalf("high-norm fragment got k=%d, want ~90", frags[0].K)
	}
	if frags[1].K < 5 || frags[1].K > 20 {
		t.Fatalf("low-norm fragment got k=%d, want ~10", frags[1].K)
	}
}

func TestAssignKRespectsBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nf := 1 + r.Intn(50)
		frags := make([]Fragment, nf)
		pos := 0
		for i := range frags {
			sz := 1 + r.Intn(500)
			frags[i] = Fragment{Start: pos, End: pos + sz, Norm: math.Abs(r.Norm())}
			pos += sz
		}
		// Realistic sparsification densities (the paper uses d <= 0.1):
		// at densities approaching 1 Algorithm 3 intentionally
		// under-allocates (see TestAssignKExtremeDensityStrandsK).
		kTotal := 1 + r.Intn(pos/4+1)
		AssignK(frags, kTotal)
		sum, capped := 0, false
		for _, fr := range frags {
			if fr.K < 1 || fr.K > fr.Size() {
				return false
			}
			if fr.K == fr.Size() {
				capped = true
			}
			sum += fr.K
		}
		// Overshoot is bounded by one per fragment (the max(1,·) floor and
		// int truncation). The lower bound only holds when no fragment
		// saturated at its size: Algorithm 3 is single-pass, so k stranded
		// on a saturated low-priority fragment is never redistributed
		// backward (see TestAssignKExtremeDensityStrandsK).
		if sum > kTotal+nf {
			return false
		}
		return capped || sum >= kTotal-nf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAssignKExtremeDensityStrandsK documents a property of Algorithm 3 as
// published: when k approaches n_g, high-norm fragments processed first can
// receive less than their size (their norm share is below their size
// share), after which the remaining fragments saturate at their sizes and
// the leftover k is stranded. The realised density undershoots slightly.
// This regime (d ≈ 1) is outside the paper's operating range (d <= 0.1).
func TestAssignKExtremeDensityStrandsK(t *testing.T) {
	frags := []Fragment{
		{Start: 0, End: 100, Norm: 0.1}, // top priority requires high norm; give low norm to a big layer
		{Start: 100, End: 110, Norm: 10},
	}
	AssignK(frags, 105)
	sum := frags[0].K + frags[1].K
	if sum > 105 {
		t.Fatalf("overshoot: %d > 105", sum)
	}
	// Fragment 1 (norm 10) is processed first: kTemp = 105·(10/10.1) ≈ 103
	// > size 10 → capped at 10. Fragment 0: kTemp = 95·(0.1/0.1) = 95 ≤ 100
	// → gets 95. Total 105, no stranding here; stranding needs the
	// high-norm fragment to get *less* than size share:
	frags2 := []Fragment{
		{Start: 0, End: 1000, Norm: 1}, // big, modest norm
		{Start: 1000, End: 1010, Norm: 1},
	}
	AssignK(frags2, 1000)
	// First (tie broken by order): kTemp = 1000·0.5 = 500 < 1000 → 500.
	// Second: kTemp = 500·1 = 500 > 10 → capped at 10. Sum 510 << 1000.
	if got := frags2[0].K + frags2[1].K; got != 510 {
		t.Fatalf("stranding example: sum = %d, want 510", got)
	}
}

func TestAssignKSmallLayerLargeNorm(t *testing.T) {
	// A tiny layer with a huge norm must be capped at its size (line 10-11
	// of Algorithm 3).
	frags := []Fragment{
		{Start: 0, End: 5, Norm: 1000},
		{Start: 5, End: 1005, Norm: 1},
	}
	AssignK(frags, 500)
	if frags[0].K != 5 {
		t.Fatalf("tiny layer k=%d, want 5 (capped)", frags[0].K)
	}
	// The surplus flows to the next layer: k_remain=495 all to layer 2.
	if frags[1].K < 400 {
		t.Fatalf("surplus not redistributed: k=%d", frags[1].K)
	}
}

func TestAssignKZeroNorms(t *testing.T) {
	frags := []Fragment{
		{Start: 0, End: 10, Norm: 0},
		{Start: 10, End: 20, Norm: 0},
	}
	AssignK(frags, 4)
	// norm_remain = 0 → k_temp = 0 → max(1, 0) = 1 each.
	for i, f := range frags {
		if f.K != 1 {
			t.Fatalf("fragment %d k=%d, want 1", i, f.K)
		}
	}
}

func TestAssignUniform(t *testing.T) {
	frags := []Fragment{
		{Start: 0, End: 100, Norm: 100},
		{Start: 100, End: 400, Norm: 0.001},
	}
	AssignUniform(frags, 40)
	if frags[0].K != 10 || frags[1].K != 30 {
		t.Fatalf("uniform assignment wrong: %d %d, want 10 30", frags[0].K, frags[1].K)
	}
}

func TestComputeNorms(t *testing.T) {
	grad := []float64{3, 4, 0, 5, 12}
	frags := []Fragment{{Start: 0, End: 2}, {Start: 2, End: 5}}
	ComputeNorms(frags, grad)
	if math.Abs(frags[0].Norm-5) > 1e-12 {
		t.Fatalf("norm0 = %v, want 5", frags[0].Norm)
	}
	if math.Abs(frags[1].Norm-13) > 1e-12 {
		t.Fatalf("norm1 = %v, want 13", frags[1].Norm)
	}
}

func TestAllocateCoversAllFragments(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nf := 1 + r.Intn(100)
		frags := make([]Fragment, nf)
		pos := 0
		for i := range frags {
			sz := 1 + r.Intn(200)
			frags[i] = Fragment{Start: pos, End: pos + sz, K: 1 + r.Intn(sz)}
			pos += sz
		}
		n := 1 + r.Intn(16)
		for _, policy := range []AllocPolicy{LPTPolicy, RoundRobinPolicy, ContiguousPolicy} {
			bins := Allocate(frags, n, policy)
			seen := make([]bool, nf)
			count := 0
			for _, bin := range bins {
				for _, fi := range bin {
					if fi < 0 || fi >= nf || seen[fi] {
						return false
					}
					seen[fi] = true
					count++
				}
			}
			if count != nf {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateLPTBalances(t *testing.T) {
	// Heterogeneous costs: LPT max load should be within 4/3+eps of mean.
	r := rng.New(5)
	frags := make([]Fragment, 64)
	pos := 0
	for i := range frags {
		sz := 100 + r.Intn(10000)
		frags[i] = Fragment{Start: pos, End: pos + sz, K: 1 + sz/100}
		pos += sz
	}
	bins := Allocate(frags, 8, LPTPolicy)
	total, maxItem := 0.0, 0.0
	for _, f := range frags {
		total += f.Cost()
		if f.Cost() > maxItem {
			maxItem = f.Cost()
		}
	}
	maxLoad := MaxWorkerCost(frags, bins)
	lb := math.Max(total/8, maxItem)
	if maxLoad > lb*4/3+maxItem/3+1e-9 {
		t.Fatalf("LPT makespan %v exceeds bound (lb=%v)", maxLoad, lb)
	}
}

func TestSelectLayerwiseIndicesValid(t *testing.T) {
	r := rng.New(9)
	grad := make([]float64, 1000)
	for i := range grad {
		grad[i] = r.Norm()
	}
	frags := Partition(makeLayers(300, 700), 4, PartitionOpts{SecondStage: true})
	ComputeNorms(frags, grad)
	AssignK(frags, 50)
	bins := Allocate(frags, 4, LPTPolicy)
	seen := map[int]bool{}
	total := 0
	for w := 0; w < 4; w++ {
		idx := SelectLayerwise(frags, bins[w], grad)
		for _, i := range idx {
			if i < 0 || i >= 1000 {
				t.Fatalf("index %d out of range", i)
			}
			if seen[i] {
				t.Fatalf("index %d selected by two workers — build-up!", i)
			}
			seen[i] = true
		}
		total += len(idx)
	}
	// Total selected = Σ K.
	wantTotal := 0
	for _, f := range frags {
		wantTotal += f.K
	}
	if total != wantTotal {
		t.Fatalf("total selected %d, want %d", total, wantTotal)
	}
}

func TestSelectLayerwisePicksLargestInFragment(t *testing.T) {
	grad := []float64{0.1, 9, 0.2, 0.3, -8, 0.4}
	frags := []Fragment{{Start: 0, End: 3, K: 1}, {Start: 3, End: 6, K: 1}}
	idx := SelectLayerwise(frags, []int{0, 1}, grad)
	sort.Ints(idx)
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 4 {
		t.Fatalf("selected %v, want [1 4]", idx)
	}
}

func TestCostModelHelpers(t *testing.T) {
	if FullCost(100, 1) != 100 {
		t.Error("FullCost k=1 should be ng")
	}
	if got, want := FullCost(100, 10), 100*math.Log(10); math.Abs(got-want) > 1e-9 {
		t.Errorf("FullCost = %v want %v", got, want)
	}
	// Trivial cost at n=1 equals full cost.
	if got, want := TrivialCost(100, 10, 1), FullCost(100, 10); math.Abs(got-want) > 1e-9 {
		t.Errorf("TrivialCost(n=1) = %v want %v", got, want)
	}
	// Speedup over trivial exceeds n (Eq. 9) when k/n >= 2.
	ng, k := 1_000_000, 10_000
	for _, n := range []int{2, 4, 8, 16, 32} {
		speedup := FullCost(ng, k) / TrivialCost(ng, k, n)
		if speedup < float64(n) {
			t.Errorf("n=%d: trivial speedup %v below linear", n, speedup)
		}
	}
}

func TestFragmentCost(t *testing.T) {
	f := Fragment{Start: 0, End: 100, K: 1}
	if f.Cost() != 100 {
		t.Errorf("k=1 cost = %v, want 100", f.Cost())
	}
	f.K = 10
	if got, want := f.Cost(), 100*math.Log(10); math.Abs(got-want) > 1e-9 {
		t.Errorf("cost = %v, want %v", got, want)
	}
	empty := Fragment{Start: 5, End: 5, K: 3}
	if empty.Cost() != 0 {
		t.Error("empty fragment should cost 0")
	}
}
