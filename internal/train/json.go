package train

import "encoding/json"

// MarshalJSON emits the result with snake_case keys plus the derived
// summary fields (compression ratio, mean bytes/iteration, one-line
// digest), so every consumer of the machine-readable form — the -json CLI
// modes and the deft-serve job service — shares one serialization.
func (r *Result) MarshalJSON() ([]byte, error) {
	type plain Result // identical fields, no methods: avoids recursion
	return json.Marshal(struct {
		*plain
		CompressionRatio  float64 `json:"compression_ratio"`
		BytesPerIteration float64 `json:"bytes_per_iteration"`
		Summary           string  `json:"summary"`
	}{(*plain)(r), r.CompressionRatio(), r.BytesPerIteration(), r.Summary()})
}
