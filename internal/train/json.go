package train

import (
	"encoding/json"

	"repro/internal/stats"
)

// MarshalJSON emits the result with snake_case keys plus the derived
// summary fields (compression ratio, mean bytes/iteration, one-line
// digest), so every consumer of the machine-readable form — the -json CLI
// modes and the deft-serve job service — shares one serialization.
func (r *Result) MarshalJSON() ([]byte, error) {
	type plain Result // identical fields, no methods: avoids recursion
	return json.Marshal(struct {
		*plain
		CompressionRatio  float64 `json:"compression_ratio"`
		BytesPerIteration float64 `json:"bytes_per_iteration"`
		Summary           string  `json:"summary"`
	}{(*plain)(r), r.CompressionRatio(), r.BytesPerIteration(), r.Summary()})
}

// DeterministicJSON renders the run's deterministic numeric record — the
// recorded series and the byte accounting, excluding every wall-clock
// field — as canonical JSON. Two runs of the same configuration must
// produce byte-identical records regardless of GEMM worker count or
// concurrent load; the determinism tests compare these strings so a field
// added here strengthens all of them at once.
func (r *Result) DeterministicJSON() ([]byte, error) {
	return json.Marshal(struct {
		Workload      string       `json:"workload"`
		Sparsifier    string       `json:"sparsifier"`
		Quantized     bool         `json:"quantized"`
		Workers       int          `json:"workers"`
		Density       float64      `json:"density"`
		TrainLoss     stats.Series `json:"train_loss"`
		Metric        stats.Series `json:"metric"`
		ErrorNorm     stats.Series `json:"error_norm"`
		ActualDensity stats.Series `json:"actual_density"`
		EncodedBytes  stats.Series `json:"encoded_bytes"`
		WireBytes     int64        `json:"wire_bytes"`
		DenseBytes    int64        `json:"dense_bytes"`
		NaNIterations int          `json:"nan_iterations"`
	}{
		r.Workload, r.Sparsifier, r.Quantized, r.Workers, r.Density,
		r.TrainLoss, r.Metric, r.ErrorNorm, r.ActualDensity, r.EncodedBytes,
		r.WireBytes, r.DenseBytes, r.NaNIterations,
	})
}
