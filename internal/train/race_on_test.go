//go:build race

package train_test

// raceEnabled mirrors the race build tag: the race detector instruments
// allocations, so AllocsPerRun-based assertions are skipped under -race
// (the non-race CI step still enforces them).
const raceEnabled = true
