package train

import (
	"math"
	"sort"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func testParams(sizes []int) []*nn.Param {
	r := rng.New(5)
	params := make([]*nn.Param, len(sizes))
	for i, s := range sizes {
		params[i] = &nn.Param{Name: string(rune('a' + i)), W: tensor.Randn(r, 1, s), G: tensor.New(s)}
	}
	return params
}

func cloneWeights(params []*nn.Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.W.Data...)
	}
	return out
}

// TestApplySparseUpdateMatchesDense: applying (idx, vals) sparsely must
// produce exactly the same weights as scattering into a dense vector and
// applying that with ApplyUpdate — including indices on parameter
// boundaries and empty selections.
func TestApplySparseUpdateMatchesDense(t *testing.T) {
	sizes := []int{7, 1, 12, 3}
	ng := 23
	r := rng.New(99)
	for trial := 0; trial < 100; trial++ {
		k := r.Intn(ng + 1)
		idxSet := map[int]bool{}
		for len(idxSet) < k {
			idxSet[r.Intn(ng)] = true
		}
		idx := make([]int, 0, k)
		for i := range idxSet {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		vals := make([]float64, k)
		for i := range vals {
			vals[i] = r.Norm()
		}
		scale := 1 + r.Float64()

		sparse := testParams(sizes)
		dense := testParams(sizes)
		ApplySparseUpdate(sparse, idx, vals, scale)
		flat := make([]float64, ng)
		for j, i := range idx {
			flat[i] = vals[j]
		}
		ApplyUpdate(dense, flat, scale)

		want := cloneWeights(dense)
		got := cloneWeights(sparse)
		for p := range want {
			for i := range want[p] {
				if math.Abs(got[p][i]-want[p][i]) != 0 {
					t.Fatalf("trial %d: param %d elem %d: sparse %v, dense %v",
						trial, p, i, got[p][i], want[p][i])
				}
			}
		}
	}
}

// TestApplySparseUpdateBoundaries hits the exact first/last index of each
// parameter (the cursor-advance edge in the implementation).
func TestApplySparseUpdateBoundaries(t *testing.T) {
	sizes := []int{4, 2, 5}
	params := testParams(sizes)
	before := cloneWeights(params)
	// First and last flat index of every parameter: 0,3 | 4,5 | 6,10.
	idx := []int{0, 3, 4, 5, 6, 10}
	vals := []float64{1, 2, 3, 4, 5, 6}
	ApplySparseUpdate(params, idx, vals, 2)
	checks := []struct {
		p, off int
		delta  float64
	}{
		{0, 0, 2}, {0, 3, 4}, {1, 0, 6}, {1, 1, 8}, {2, 0, 10}, {2, 4, 12},
	}
	for _, c := range checks {
		got := params[c.p].W.Data[c.off]
		want := before[c.p][c.off] - c.delta
		if got != want {
			t.Errorf("param %d off %d: got %v, want %v", c.p, c.off, got, want)
		}
	}
	// Untouched element stays put.
	if params[2].W.Data[2] != before[2][2] {
		t.Error("untouched element modified")
	}
}
