package train_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sparsifier"
	"repro/internal/tensor"
	"repro/internal/train"
	"repro/internal/wire"
)

func visionWorkload() train.Workload {
	return models.NewVision(models.DefaultVisionConfig())
}

// TestQuantizedResidualInvariant is the error-feedback absorption
// invariant, end to end: after one quantized step the trainer's residual
// equals (accumulated gradient − applied update) EXACTLY. With one worker
// the whole pipeline is reconstructable outside the trainer — same RNG
// split, same AccumulateGrads, same selection — so the recorded ‖e‖ must
// be bit-equal to the reconstruction, and every applied value must be
// exactly fp16-representable (it came off the wire as binary16).
func TestQuantizedResidualInvariant(t *testing.T) {
	const (
		density = 0.05
		lr      = 0.3
		seed    = 42
	)
	w := mlpWorkload()
	res := train.Run(w, topkFactory(), train.Config{
		Workers: 1, Density: density, LR: lr, Iterations: 1, Seed: seed,
		Quantize: true,
	})
	if !res.Quantized {
		t.Fatal("result not flagged quantized")
	}

	// Reconstruct the worker's accumulator acc = e_0 + lr·G = lr·G
	// (identical replica, identical (rank=0, t=0) RNG split, same fused
	// accumulation pass).
	m := w.NewModel()
	params := m.Params()
	nn.ZeroGrads(params)
	var stepRNG rng.RNG
	m.Step(rng.New(seed).SplitInto(&stepRNG, 0, 0))
	acc := make([]float64, nn.TotalSize(params))
	train.AccumulateGrads(params, acc, lr)

	// The same selection the trainer ran (Top-k is deterministic and
	// local; select on a copy so acc stays pristine).
	sp := sparsifier.NewTopK()
	ctx := &sparsifier.Ctx{Rank: 0, NWorkers: 1, Density: density, Layers: train.Layout(params)}
	selIn := append([]float64(nil), acc...)
	idx := append([]int(nil), sp.Select(ctx, selIn)...)
	if len(idx) == 0 {
		t.Fatal("empty selection")
	}

	// Expected residual: the quantization error on transmitted entries,
	// the untouched accumulator everywhere else.
	expected := append([]float64(nil), acc...)
	for _, i := range idx {
		q := wire.Quantize16(wire.Sat16(acc[i]))
		if wire.Quantize16(q) != q {
			t.Fatalf("applied value %v at %d is not a binary16 fixed point", q, i)
		}
		expected[i] = acc[i] - q
	}
	want := tensor.L2Norm(expected)
	if got := res.ErrorNorm.Y[0]; got != want {
		t.Fatalf("recorded ‖e‖ = %v, reconstruction = %v (must be bit-equal)", got, want)
	}
	if want == 0 {
		t.Fatal("quantization error vanished entirely: invariant vacuous")
	}
}

// TestQuantizedTrainingLearns runs the full quantized stack (DEFT
// selection, fp16 encode→decode, error feedback) and checks convergence
// holds while the wire footprint drops well below the fp32 twin's.
func TestQuantizedTrainingLearns(t *testing.T) {
	cfg := train.Config{
		Workers: 4, Density: 0.05, LR: 0.3, Iterations: 30, Seed: 2,
		CheckSync: true,
	}
	fp32 := train.Run(mlpWorkload(), core.Factory(core.DefaultOptions()), cfg)
	cfg.Quantize = true
	fp16 := train.Run(mlpWorkload(), core.Factory(core.DefaultOptions()), cfg)

	if fp16.TrainLoss.LastY() >= fp16.TrainLoss.Y[0]*0.9 {
		t.Errorf("quantized loss did not improve: %v -> %v", fp16.TrainLoss.Y[0], fp16.TrainLoss.LastY())
	}
	if fp16.NaNIterations != 0 {
		t.Errorf("%d NaN iterations under quantization", fp16.NaNIterations)
	}
	// fp16 halves the value payloads; with varint indices unchanged the
	// total must land clearly below fp32 (but above half, indices remain).
	if fp16.WireBytes >= fp32.WireBytes {
		t.Errorf("fp16 shipped %d B, fp32 %d B: quantization saved nothing", fp16.WireBytes, fp32.WireBytes)
	}
	if fp16.CompressionRatio() <= fp32.CompressionRatio() {
		t.Errorf("fp16 compression %.2f not above fp32 %.2f", fp16.CompressionRatio(), fp32.CompressionRatio())
	}
	if fp16.WireCommTime >= fp32.WireCommTime {
		t.Errorf("fp16 modeled comm %v not below fp32 %v", fp16.WireCommTime, fp32.WireCommTime)
	}
}

// trajectory renders the run's canonical deterministic record for
// bit-exact comparison.
func trajectory(t *testing.T, r *train.Result) string {
	t.Helper()
	data, err := r.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestQuantizedBitIdenticalAcrossGemmWorkers extends the byte-identical
// determinism assertions to the quantized path: the whole numeric
// trajectory must be bit-identical whether large GEMMs run serial or
// sharded across 4 row bands.
func TestQuantizedBitIdenticalAcrossGemmWorkers(t *testing.T) {
	for _, w := range []struct {
		name string
		mk   func() train.Workload
		lr   float64
	}{
		{"mlp", mlpWorkload, 0.3},
		{"vision", visionWorkload, 0.15},
	} {
		cfg := train.Config{
			Workers: 4, Density: 0.05, LR: w.lr, Iterations: 8, Seed: 7,
			Quantize: true,
		}
		prev := tensor.SetGemmWorkers(1)
		serial := train.Run(w.mk(), core.Factory(core.DefaultOptions()), cfg)
		tensor.SetGemmWorkers(4)
		banded := train.Run(w.mk(), core.Factory(core.DefaultOptions()), cfg)
		tensor.SetGemmWorkers(prev)
		if a, b := trajectory(t, serial), trajectory(t, banded); a != b {
			t.Errorf("%s: quantized trajectory differs between 1 and 4 GEMM workers:\n%s\n%s", w.name, a, b)
		}
	}
}

// TestQuantizedConcurrentRuns trains fp32 and fp16 variants of the same
// configuration concurrently — the shape of a deft-serve mixed workload —
// and asserts each matches its own sequential twin bit-exactly. Run under
// -race in CI: it exercises the quantized trainer's per-worker scratch and
// the process-global timing gate across clusters.
func TestQuantizedConcurrentRuns(t *testing.T) {
	base := train.Config{Workers: 4, Density: 0.05, LR: 0.3, Iterations: 10, Seed: 3}
	quant := base
	quant.Quantize = true

	seqFP32 := train.Run(mlpWorkload(), core.Factory(core.DefaultOptions()), base)
	seqFP16 := train.Run(mlpWorkload(), core.Factory(core.DefaultOptions()), quant)

	var wg sync.WaitGroup
	results := make([]*train.Result, 2)
	for i, cfg := range []train.Config{base, quant} {
		wg.Add(1)
		go func(i int, cfg train.Config) {
			defer wg.Done()
			results[i] = train.Run(mlpWorkload(), core.Factory(core.DefaultOptions()), cfg)
		}(i, cfg)
	}
	wg.Wait()

	if a, b := trajectory(t, seqFP32), trajectory(t, results[0]); a != b {
		t.Error("concurrent fp32 run diverged from its sequential twin")
	}
	if a, b := trajectory(t, seqFP16), trajectory(t, results[1]); a != b {
		t.Error("concurrent fp16 run diverged from its sequential twin")
	}
	if trajectory(t, results[0]) == trajectory(t, results[1]) {
		t.Error("fp32 and fp16 trajectories identical: quantization had no effect")
	}
}

// hugeGradWorkload wraps the MLP and injects one gradient entry far above
// the finite binary16 range (65504) at each replica's third (final) step —
// keep the injection step in sync with the test's Iterations, or the
// saturation path silently goes unexercised.
type hugeGradWorkload struct{ train.Workload }

type hugeGradModel struct {
	train.Model
	steps int
}

func (w *hugeGradWorkload) NewModel() train.Model {
	return &hugeGradModel{Model: w.Workload.NewModel()}
}

func (m *hugeGradModel) Step(r *rng.RNG) float64 {
	loss := m.Model.Step(r)
	m.steps++
	// Inject at the final step only: the saturated ±65504 update is huge,
	// and letting further steps run forward through the blown-up weights
	// would conflate model divergence with the codec behavior under test.
	if m.steps == 3 {
		m.Params()[0].G.Data[0] = 1e6
	}
	return loss
}

func (w *hugeGradWorkload) Evaluate(m train.Model) float64 {
	return w.Workload.Evaluate(m.(*hugeGradModel).Model)
}

// TestQuantizedSaturatesToFiniteHalf pins the overflow contract: a
// gradient entry beyond the binary16 range ships as ±MaxFloat16, never as
// the codec's ±Inf — parameters stay finite, the clipped remainder stays
// in the error-feedback residual, and no NaN iteration is flagged (the
// raw gradient was finite).
func TestQuantizedSaturatesToFiniteHalf(t *testing.T) {
	w := &hugeGradWorkload{mlpWorkload()}
	res := train.Run(w, topkFactory(), train.Config{
		Workers: 2, Density: 0.5, LR: 1.0, Iterations: 3, Seed: 5,
		Quantize: true, CheckSync: true,
	})
	if res.NaNIterations != 0 {
		t.Errorf("finite oversized gradient flagged as NaN: %d iterations", res.NaNIterations)
	}
	for _, y := range res.TrainLoss.Y {
		if y != y {
			t.Fatal("training loss went NaN after an oversized quantized entry")
		}
	}
	for _, y := range res.ErrorNorm.Y {
		if y != y || y > 1e308 {
			t.Fatalf("error norm %v not finite", y)
		}
	}
	// The clipped remainder (≈1e6 − 65504 per injection) must be visible
	// in the residual rather than vanish or blow up.
	if res.ErrorNorm.MaxY() < 1e6-float64(wire.MaxFloat16)-1 {
		t.Errorf("residual %v does not carry the clipped magnitude", res.ErrorNorm.MaxY())
	}
}

// TestQuantizePanicsOnDense pins the config contract: the dense baseline
// ships fp32 by definition, so Quantize with DisableSparse must refuse.
func TestQuantizePanicsOnDense(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Quantize + DisableSparse accepted")
		}
	}()
	train.Run(mlpWorkload(), nil, train.Config{
		Workers: 1, LR: 0.1, Iterations: 1, DisableSparse: true, Quantize: true,
	})
}
