package train_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/train"
)

// chaosCfg is the shared base configuration of the fault tests: small and
// fast, with recording every iteration so series assertions are exact.
func chaosCfg(workers, iters int) train.Config {
	return train.Config{
		Workers: workers, Density: 0.05, LR: 0.1,
		Iterations: iters, RecordEvery: 1, Seed: 7,
	}
}

// TestStragglerInflatesPerRankSeries: a ×4 straggler must show up in the
// straggled rank's step-time series — and only there — while the loss
// trajectory stays exactly the healthy run's (a slow worker changes who
// waits, not what is computed).
func TestStragglerInflatesPerRankSeries(t *testing.T) {
	w := mlpWorkload()
	healthyCfg := chaosCfg(3, 8)
	healthy, err := train.RunContext(context.Background(), w, topkFactory(), healthyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.RankStepTime != nil {
		t.Fatal("healthy run allocated per-rank series; must stay off the fault-free path")
	}

	cfg := chaosCfg(3, 8)
	cfg.Faults = &comm.FaultPlan{Stragglers: []comm.Straggler{{Rank: 1, Factor: 4}}}
	res, err := train.RunContext(context.Background(), w, topkFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RankStepTime) != 3 {
		t.Fatalf("rank step series = %d, want 3", len(res.RankStepTime))
	}
	for rank, s := range res.RankStepTime {
		if len(s.Y) != 8 {
			t.Fatalf("rank %d: %d samples, want 8", rank, len(s.Y))
		}
	}
	// The factor is applied analytically to the measured compute time, so
	// the straggled rank's mean must sit well above its peers (the exact
	// ratio carries measurement noise of the underlying wall times).
	if r := res.RankStepTime[1].MeanY() / res.RankStepTime[0].MeanY(); r < 2 {
		t.Errorf("straggled/healthy mean step time = %.2f, want >= 2 (nominal 4)", r)
	}
	// Deterministic trajectory: stragglers never change the math.
	hj, _ := healthy.DeterministicJSON()
	sj, _ := res.DeterministicJSON()
	if !bytes.Equal(hj, sj) {
		t.Error("straggler changed the numeric trajectory; it must only inflate simulated time")
	}
}

// TestDropRecoveryCompletes is the tentpole train guarantee: a hard drop
// mid-run checkpoints, rebuilds at the surviving size, resumes and still
// converges to a full-length result.
func TestDropRecoveryCompletes(t *testing.T) {
	w := mlpWorkload()
	cfg := chaosCfg(4, 10)
	cfg.EvalEvery = 5
	cfg.Faults = &comm.FaultPlan{Drops: []comm.Drop{{Rank: 3, Iteration: 5}}}
	cfg.Recover = true
	var faultEvents int
	cfg.Progress = func(p train.Progress) {
		if p.Kind == "fault" {
			faultEvents++
		}
	}
	res, err := train.RunContext(context.Background(), w, topkFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainLoss.Y) != 10 {
		t.Fatalf("train loss has %d points, want all 10 iterations", len(res.TrainLoss.Y))
	}
	if res.Recoveries != 1 || res.Survivors != 3 {
		t.Fatalf("recoveries=%d survivors=%d, want 1 and 3", res.Recoveries, res.Survivors)
	}
	if res.RecoveryTime <= 0 {
		t.Fatal("recovery time not recorded")
	}
	want := []train.FaultEvent{{Kind: comm.FaultDrop, Rank: 3, Iteration: 5}}
	if !reflect.DeepEqual(res.Faults, want) {
		t.Fatalf("faults = %+v, want %+v", res.Faults, want)
	}
	if faultEvents != 1 {
		t.Fatalf("%d fault progress events, want 1", faultEvents)
	}
	if n := len(res.Metric.Y); n == 0 || res.Metric.X[n-1] != 10 {
		t.Fatalf("final evaluation missing: %+v", res.Metric)
	}
}

// TestTransientRecoveryKeepsSize: a transient collective error recovers at
// the same cluster size.
func TestTransientRecoveryKeepsSize(t *testing.T) {
	w := mlpWorkload()
	cfg := chaosCfg(3, 8)
	cfg.Faults = &comm.FaultPlan{Transients: []comm.Transient{{Rank: 0, Iteration: 4}}}
	cfg.Recover = true
	res, err := train.RunContext(context.Background(), w, topkFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 || res.Survivors != 3 {
		t.Fatalf("recoveries=%d survivors=%d, want 1 and 3", res.Recoveries, res.Survivors)
	}
	if len(res.TrainLoss.Y) != 8 {
		t.Fatalf("train loss has %d points, want 8", len(res.TrainLoss.Y))
	}
}

// TestFaultWithoutRecoverFails: recovery is opt-in — an injected fault on
// a non-recovering run surfaces as the *FaultError with a partial result.
func TestFaultWithoutRecoverFails(t *testing.T) {
	w := mlpWorkload()
	cfg := chaosCfg(3, 8)
	cfg.Faults = &comm.FaultPlan{Drops: []comm.Drop{{Rank: 2, Iteration: 3}}}
	res, err := train.RunContext(context.Background(), w, topkFactory(), cfg)
	var fe *comm.FaultError
	if !errors.As(err, &fe) || fe.Iteration != 3 {
		t.Fatalf("err = %v, want the injected *FaultError at iteration 3", err)
	}
	if res == nil || len(res.TrainLoss.Y) != 3 {
		t.Fatalf("partial result should hold iterations before the fault: %+v", res)
	}
	if len(res.Faults) != 1 {
		t.Fatalf("faults = %+v, want the recorded drop", res.Faults)
	}
}

// TestLastWorkerDropFails: dropping the only worker has nothing to
// recover onto and must error rather than loop.
func TestLastWorkerDropFails(t *testing.T) {
	w := mlpWorkload()
	cfg := chaosCfg(1, 6)
	cfg.Faults = &comm.FaultPlan{Drops: []comm.Drop{{Rank: 0, Iteration: 2}}}
	cfg.Recover = true
	_, err := train.RunContext(context.Background(), w, topkFactory(), cfg)
	if err == nil {
		t.Fatal("recovering a 1-worker drop must fail")
	}
}

// TestChaosReplayBitIdentical is the acceptance criterion: the same fault
// plan and seed replay the identical run — numeric record, fault
// trajectory and recovery accounting all byte-for-byte equal.
func TestChaosReplayBitIdentical(t *testing.T) {
	w := mlpWorkload()
	run := func() *train.Result {
		cfg := chaosCfg(4, 10)
		cfg.Faults = &comm.FaultPlan{
			Stragglers: []comm.Straggler{{Rank: 1, Factor: 4}},
			Transients: []comm.Transient{{Rank: 0, Iteration: 2}},
			Drops:      []comm.Drop{{Rank: 3, Iteration: 6}},
		}
		cfg.Recover = true
		res, err := train.RunContext(context.Background(), w, topkFactory(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	aj, err := a.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("chaos replay diverged:\n%s\n%s", aj, bj)
	}
	if !reflect.DeepEqual(a.Faults, b.Faults) {
		t.Fatalf("fault trajectories diverged: %+v vs %+v", a.Faults, b.Faults)
	}
	if a.Recoveries != b.Recoveries || a.Survivors != b.Survivors {
		t.Fatalf("recovery accounting diverged: %d/%d vs %d/%d",
			a.Recoveries, a.Survivors, b.Recoveries, b.Survivors)
	}
	if a.Recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2 (transient then drop)", a.Recoveries)
	}
}

// TestCheckpointResumeEquivalence: for dense fp32 (no worker-local
// error-feedback state to lose), a drop@k with recovery must land on the
// byte-exact parameters of the equivalent healthy two-segment run — train
// n workers to k, checkpoint, train n-1 workers from k on that snapshot.
func TestCheckpointResumeEquivalence(t *testing.T) {
	w := mlpWorkload()
	const n, k, total = 4, 5, 10
	dense := func(cfg train.Config) train.Config {
		cfg.Density = 0
		cfg.DisableSparse = true
		cfg.Checkpoint = true
		return cfg
	}

	// Reference segment 1: n workers, iterations [0, k).
	cfgA := dense(chaosCfg(n, k))
	segA, err := train.RunContext(context.Background(), w, nil, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	// Reference segment 2: n-1 workers resume from the snapshot at k.
	cfgB := dense(chaosCfg(n-1, total))
	cfgB.StartIteration = k
	cfgB.InitCheckpoint = segA.Checkpoint
	segB, err := train.RunContext(context.Background(), w, nil, cfgB)
	if err != nil {
		t.Fatal(err)
	}

	// Chaos run: rank n-1 drops at k, recovery resumes at n-1 workers.
	cfgC := dense(chaosCfg(n, total))
	cfgC.Faults = &comm.FaultPlan{Drops: []comm.Drop{{Rank: n - 1, Iteration: k}}}
	cfgC.Recover = true
	chaos, err := train.RunContext(context.Background(), w, nil, cfgC)
	if err != nil {
		t.Fatal(err)
	}

	if len(chaos.Checkpoint) == 0 || len(segB.Checkpoint) == 0 {
		t.Fatal("final checkpoints missing")
	}
	if !bytes.Equal(chaos.Checkpoint, segB.Checkpoint) {
		t.Fatal("drop@k + resume diverged from the healthy two-segment reference (dense fp32 must be byte-exact)")
	}
}

// TestStartIterationValidation: a resume point outside the run panics.
func TestStartIterationValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range StartIteration accepted")
		}
	}()
	cfg := chaosCfg(2, 4)
	cfg.StartIteration = 5
	train.RunContext(context.Background(), mlpWorkload(), topkFactory(), cfg) //nolint:errcheck
}

// TestFaultPlanValidatedAtRun: an invalid plan panics before any rank
// starts, exactly like the other Config validation.
func TestFaultPlanValidatedAtRun(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid fault plan accepted")
		}
	}()
	cfg := chaosCfg(2, 4)
	cfg.Faults = &comm.FaultPlan{Drops: []comm.Drop{{Rank: 7, Iteration: 0}}}
	train.RunContext(context.Background(), mlpWorkload(), topkFactory(), cfg) //nolint:errcheck
}
