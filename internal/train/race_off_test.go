//go:build !race

package train_test

const raceEnabled = false
