package train

import "repro/internal/nn"

import "repro/internal/sparsifier"

// Layout maps a parameter list onto contiguous slices of one flat gradient
// vector, in parameter order. The result is the layer list handed to
// sparsifiers (each weight/bias tensor is one "layer", paper footnote 2).
func Layout(params []*nn.Param) []sparsifier.Layer {
	layers := make([]sparsifier.Layer, len(params))
	pos := 0
	for i, p := range params {
		layers[i] = sparsifier.Layer{Name: p.Name, Start: pos, End: pos + p.Size()}
		pos += p.Size()
	}
	return layers
}

// FlattenGrads copies every parameter gradient into the flat vector out,
// which must have length Σ p.Size().
func FlattenGrads(params []*nn.Param, out []float64) {
	pos := 0
	for _, p := range params {
		copy(out[pos:pos+p.Size()], p.G.Data)
		pos += p.Size()
	}
}

// ApplyUpdate subtracts scale · update (flat layout) from the parameters:
// x ← x − scale·u.
func ApplyUpdate(params []*nn.Param, update []float64, scale float64) {
	pos := 0
	for _, p := range params {
		w := p.W.Data
		u := update[pos : pos+p.Size()]
		for i := range w {
			w[i] -= scale * u[i]
		}
		pos += p.Size()
	}
}
