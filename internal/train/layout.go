package train

import "repro/internal/nn"

import "repro/internal/sparsifier"

// Layout maps a parameter list onto contiguous slices of one flat gradient
// vector, in parameter order. The result is the layer list handed to
// sparsifiers (each weight/bias tensor is one "layer", paper footnote 2).
func Layout(params []*nn.Param) []sparsifier.Layer {
	layers := make([]sparsifier.Layer, len(params))
	pos := 0
	for i, p := range params {
		layers[i] = sparsifier.Layer{Name: p.Name, Start: pos, End: pos + p.Size()}
		pos += p.Size()
	}
	return layers
}

// FlattenGrads copies every parameter gradient into the flat vector out,
// which must have length Σ p.Size().
func FlattenGrads(params []*nn.Param, out []float64) {
	pos := 0
	for _, p := range params {
		copy(out[pos:pos+p.Size()], p.G.Data)
		pos += p.Size()
	}
}

// AccumulateGrads folds the parameter gradients into the flat error
// buffer — acc[i] += lr·gᵢ in layout order — and reports whether any
// gradient value was non-finite (gᵢ·0 is NaN exactly for ±Inf and NaN).
// The fused single pass replaces the flatten-copy, NaN-scan and
// error-feedback loops the trainer used to run over three separate
// traversals of the gradient.
func AccumulateGrads(params []*nn.Param, acc []float64, lr float64) (hasNaN bool) {
	pos := 0
	var poison float64
	for _, p := range params {
		g := p.G.Data
		dst := acc[pos : pos+len(g)]
		for i, gv := range g {
			dst[i] += lr * gv
			poison += gv * 0
		}
		pos += len(g)
	}
	return poison != poison
}

// ApplyUpdate subtracts scale · update (flat layout) from the parameters:
// x ← x − scale·u.
func ApplyUpdate(params []*nn.Param, update []float64, scale float64) {
	pos := 0
	for _, p := range params {
		w := p.W.Data
		u := update[pos : pos+p.Size()]
		for i := range w {
			w[i] -= scale * u[i]
		}
		pos += p.Size()
	}
}

// ApplySparseUpdate subtracts scale · vals[j] from the parameter element at
// flat index idx[j], for all j: the sparse form of ApplyUpdate that touches
// only the selected indices instead of all n_g parameters. idx must be
// sorted ascending (the all-gathered union is) and within [0, Σ Size).
func ApplySparseUpdate(params []*nn.Param, idx []int, vals []float64, scale float64) {
	if len(idx) == 0 {
		return
	}
	pi := 0
	start := 0
	end := params[0].Size()
	w := params[0].W.Data
	for j, ix := range idx {
		for ix >= end {
			pi++
			start = end
			end += params[pi].Size()
			w = params[pi].W.Data
		}
		w[ix-start] -= scale * vals[j]
	}
}
