package train

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/nn"
)

// checkpointMagic identifies the checkpoint format; the version byte
// guards against silent format drift.
var checkpointMagic = [8]byte{'D', 'E', 'F', 'T', 'C', 'K', 'P', 1}

// SaveParams serialises parameter values (not gradients) to w:
// magic, count, then per parameter a length-prefixed name, element count,
// and little-endian float64 data. Layout is positional, so loading
// requires an identically-structured model.
func SaveParams(w io.Writer, params []*nn.Param) error {
	if _, err := w.Write(checkpointMagic[:]); err != nil {
		return fmt.Errorf("train: checkpoint write: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return fmt.Errorf("train: checkpoint write: %w", err)
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(w, binary.LittleEndian, uint32(len(name))); err != nil {
			return fmt.Errorf("train: checkpoint write %s: %w", p.Name, err)
		}
		if _, err := w.Write(name); err != nil {
			return fmt.Errorf("train: checkpoint write %s: %w", p.Name, err)
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(p.Size())); err != nil {
			return fmt.Errorf("train: checkpoint write %s: %w", p.Name, err)
		}
		buf := make([]byte, 8*p.Size())
		for i, v := range p.W.Data {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("train: checkpoint write %s: %w", p.Name, err)
		}
	}
	return nil
}

// LoadParams restores parameter values saved by SaveParams into params.
// Names, order and sizes must match exactly; mismatches are reported with
// the offending parameter.
func LoadParams(r io.Reader, params []*nn.Param) error {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("train: checkpoint read: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("train: not a DEFT checkpoint (magic %q)", magic)
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("train: checkpoint read: %w", err)
	}
	if int(count) != len(params) {
		return fmt.Errorf("train: checkpoint has %d params, model has %d", count, len(params))
	}
	for _, p := range params {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return fmt.Errorf("train: checkpoint read %s: %w", p.Name, err)
		}
		if nameLen > 1<<16 {
			return fmt.Errorf("train: checkpoint name length %d implausible", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return fmt.Errorf("train: checkpoint read %s: %w", p.Name, err)
		}
		if string(name) != p.Name {
			return fmt.Errorf("train: checkpoint param %q, model expects %q", name, p.Name)
		}
		var sz uint64
		if err := binary.Read(r, binary.LittleEndian, &sz); err != nil {
			return fmt.Errorf("train: checkpoint read %s: %w", p.Name, err)
		}
		if int(sz) != p.Size() {
			return fmt.Errorf("train: checkpoint %s has %d elements, model has %d", p.Name, sz, p.Size())
		}
		buf := make([]byte, 8*sz)
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("train: checkpoint read %s: %w", p.Name, err)
		}
		for i := range p.W.Data {
			p.W.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
	}
	return nil
}
