package train_test

import (
	"bytes"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/train"
)

func TestCheckpointRoundTrip(t *testing.T) {
	w := mlpWorkload()
	m := w.NewModel()
	params := m.Params()
	// Train a bit so the values are non-trivial.
	for i := 0; i < 5; i++ {
		nn.ZeroGrads(params)
		m.Step(rng.New(uint64(i)))
		for _, p := range params {
			p.W.AddScaled(-0.1, p.G)
		}
	}
	var buf bytes.Buffer
	if err := train.SaveParams(&buf, params); err != nil {
		t.Fatal(err)
	}

	m2 := w.NewModel()
	if err := train.LoadParams(bytes.NewReader(buf.Bytes()), m2.Params()); err != nil {
		t.Fatal(err)
	}
	p2 := m2.Params()
	for i, p := range params {
		for j := range p.W.Data {
			if p.W.Data[j] != p2[i].W.Data[j] {
				t.Fatalf("param %s[%d] differs after round trip", p.Name, j)
			}
		}
	}
	// Loaded replica evaluates identically.
	if w.Evaluate(m) != w.Evaluate(m2) {
		t.Fatal("loaded model evaluates differently")
	}
}

func TestCheckpointRejectsMismatches(t *testing.T) {
	mlp := mlpWorkload()
	m := mlp.NewModel()
	var buf bytes.Buffer
	if err := train.SaveParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}

	// Different architecture: vision model.
	other := visionModelParams()
	if err := train.LoadParams(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("cross-architecture load accepted")
	}

	// Corrupt magic.
	bad := append([]byte{}, buf.Bytes()...)
	bad[0] ^= 0xff
	if err := train.LoadParams(bytes.NewReader(bad), m.Params()); err == nil {
		t.Fatal("corrupt magic accepted")
	}

	// Truncated stream.
	if err := train.LoadParams(bytes.NewReader(buf.Bytes()[:20]), m.Params()); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func visionModelParams() []*nn.Param {
	r := rng.New(1)
	return nn.NewDense("other", r, 3, 3, true).Params()
}
