package train_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/train"
)

// TestRunContextCancelMidRun: cancelling a run must stop it within a few
// iterations, returning the partial result and the context error.
func TestRunContextCancelMidRun(t *testing.T) {
	w := mlpWorkload()
	ctx, cancel := context.WithCancel(context.Background())
	recorded := 0
	cfg := train.Config{
		Workers: 4, Density: 0.01, LR: 0.1,
		Iterations: 1_000_000, // cannot finish: must be cancelled
		Progress: func(p train.Progress) {
			if p.Kind == "record" {
				recorded++
				if recorded == 3 {
					cancel()
				}
			}
		},
	}
	start := time.Now()
	done := make(chan struct{})
	var res *train.Result
	var err error
	go func() {
		res, err = train.RunContext(ctx, w, topkFactory(), cfg)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("RunContext did not return after cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned nil partial result")
	}
	// The partial series hold everything recorded up to the abort; the
	// abort itself lands within a few iterations of the cancel.
	if n := len(res.TrainLoss.Y); n < 3 || n > 16 {
		t.Errorf("partial series has %d points; want >=3 (recorded) and <<1e6 (cancelled promptly)", n)
	}
	if time.Since(start) > 30*time.Second {
		t.Errorf("cancellation took %v", time.Since(start))
	}
}

// TestRunContextCompletesCleanly: with an inert context, RunContext is
// exactly Run — including the final evaluation point.
func TestRunContextCompletesCleanly(t *testing.T) {
	w := mlpWorkload()
	cfg := train.Config{Workers: 2, Density: 0.05, LR: 0.1, Iterations: 6}
	res, err := train.RunContext(context.Background(), w, topkFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainLoss.Y) != 6 {
		t.Fatalf("train loss points = %d, want 6", len(res.TrainLoss.Y))
	}
	if len(res.Metric.Y) != 1 {
		t.Fatalf("metric points = %d, want the final evaluation", len(res.Metric.Y))
	}
}

// TestProgressMatchesSeries: the streamed events must carry exactly the
// values appended to the result series, in order.
func TestProgressMatchesSeries(t *testing.T) {
	w := mlpWorkload()
	var events []train.Progress
	cfg := train.Config{
		Workers: 2, Density: 0.05, LR: 0.1,
		Iterations: 10, EvalEvery: 4, RecordEvery: 2,
		Progress: func(p train.Progress) { events = append(events, p) },
	}
	res, err := train.RunContext(context.Background(), w, cltkFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var records, evals []train.Progress
	for _, e := range events {
		switch e.Kind {
		case "record":
			records = append(records, e)
		case "eval":
			evals = append(evals, e)
		default:
			t.Fatalf("unknown event kind %q", e.Kind)
		}
	}
	if len(records) != len(res.TrainLoss.X) {
		t.Fatalf("%d record events, %d series points", len(records), len(res.TrainLoss.X))
	}
	for i, e := range records {
		if float64(e.Iteration) != res.TrainLoss.X[i] ||
			e.TrainLoss != res.TrainLoss.Y[i] ||
			e.ErrorNorm != res.ErrorNorm.Y[i] ||
			e.ActualDensity != res.ActualDensity.Y[i] ||
			e.EncodedBytes != res.EncodedBytes.Y[i] {
			t.Errorf("record %d diverges from series: %+v", i, e)
		}
	}
	if len(evals) != len(res.Metric.X) {
		t.Fatalf("%d eval events, %d metric points", len(evals), len(res.Metric.X))
	}
	for i, e := range evals {
		if float64(e.Iteration) != res.Metric.X[i] || e.Metric != res.Metric.Y[i] {
			t.Errorf("eval %d diverges from metric series: %+v", i, e)
		}
	}
}
