package train_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sparsifier"
	"repro/internal/tensor"
	"repro/internal/train"
)

func mlpWorkload() train.Workload {
	cfg := models.DefaultMLPConfig()
	cfg.TestN = 128
	return models.NewMLP(cfg)
}

func topkFactory() sparsifier.Factory {
	return func() sparsifier.Sparsifier { return sparsifier.NewTopK() }
}

func cltkFactory() sparsifier.Factory {
	return func() sparsifier.Sparsifier { return &sparsifier.CLTK{} }
}

func TestLayoutTilesParams(t *testing.T) {
	w := mlpWorkload()
	params := w.NewModel().Params()
	layers := train.Layout(params)
	ng := 0
	for _, p := range params {
		ng += p.Size()
	}
	if err := sparsifier.ValidateLayers(layers, ng); err != nil {
		t.Fatal(err)
	}
	if layers[0].Name != params[0].Name {
		t.Fatal("layer names must follow param names")
	}
}

func TestFlattenApplyRoundTrip(t *testing.T) {
	w := mlpWorkload()
	m := w.NewModel()
	params := m.Params()
	nn.ZeroGrads(params)
	m.Step(rng.New(1))
	ng := nn.TotalSize(params)
	flat := make([]float64, ng)
	train.FlattenGrads(params, flat)
	// Applying the flattened gradient with scale 1 must equal per-param
	// subtraction.
	before := nn.Clone(params)
	train.ApplyUpdate(params, flat, 0.5)
	pos := 0
	for pi, p := range params {
		for i := range p.W.Data {
			want := before[pi].W.Data[i] - 0.5*flat[pos]
			if math.Abs(p.W.Data[i]-want) > 1e-15 {
				t.Fatalf("ApplyUpdate mismatch at %s[%d]", p.Name, i)
			}
			pos++
		}
	}
}

func TestDenseBaselineLearns(t *testing.T) {
	res := train.Run(mlpWorkload(), nil, train.Config{
		Workers: 2, LR: 0.3, Iterations: 60, Seed: 1,
		DisableSparse: true, CheckSync: true,
	})
	if res.Sparsifier != "dense" {
		t.Fatalf("sparsifier label %q", res.Sparsifier)
	}
	if res.TrainLoss.Y[0] <= res.TrainLoss.LastY() {
		t.Fatalf("dense loss did not decrease: %v -> %v", res.TrainLoss.Y[0], res.TrainLoss.LastY())
	}
	if res.Metric.LastY() < 30 {
		t.Fatalf("dense accuracy %v too low", res.Metric.LastY())
	}
}

func TestSparsifiedTrainingLearns(t *testing.T) {
	for name, factory := range map[string]sparsifier.Factory{
		"topk": topkFactory(),
		"cltk": cltkFactory(),
		"deft": core.Factory(core.DefaultOptions()),
	} {
		res := train.Run(mlpWorkload(), factory, train.Config{
			Workers: 4, Density: 0.05, LR: 0.3, Iterations: 80, Seed: 2,
			CheckSync: true,
		})
		if res.TrainLoss.LastY() >= res.TrainLoss.Y[0]*0.9 {
			t.Errorf("%s: loss did not improve: %v -> %v", name, res.TrainLoss.Y[0], res.TrainLoss.LastY())
		}
	}
}

func TestDEFTDensityEqualsTarget(t *testing.T) {
	res := train.Run(mlpWorkload(), core.Factory(core.DefaultOptions()), train.Config{
		Workers: 8, Density: 0.01, LR: 0.3, Iterations: 20, Seed: 3,
	})
	mean := res.ActualDensity.MeanY()
	// DEFT keeps density at the target up to the per-fragment floor of 1.
	if mean > 0.02 || mean < 0.005 {
		t.Fatalf("DEFT mean density %v, want ~0.01", mean)
	}
	// And it must be near-constant: max/min ratio small.
	if res.ActualDensity.MaxY() > 2.5*res.ActualDensity.MinY() {
		t.Fatalf("DEFT density unstable: [%v, %v]", res.ActualDensity.MinY(), res.ActualDensity.MaxY())
	}
}

func TestCLTKDensityEqualsTarget(t *testing.T) {
	res := train.Run(mlpWorkload(), cltkFactory(), train.Config{
		Workers: 8, Density: 0.01, LR: 0.3, Iterations: 20, Seed: 4,
	})
	ng := nn.TotalSize(mlpWorkload().NewModel().Params())
	k := int(math.Round(0.01 * float64(ng)))
	wantDensity := float64(k) / float64(ng)
	for _, d := range res.ActualDensity.Y {
		if math.Abs(d-wantDensity) > 1e-9 {
			t.Fatalf("CLT-k density %v, want exactly %v", d, wantDensity)
		}
	}
}

func TestTopKBuildUpGrowsWithWorkers(t *testing.T) {
	// Fig 1: the realised density of Top-k grows with the worker count.
	densities := map[int]float64{}
	for _, n := range []int{2, 8} {
		res := train.Run(mlpWorkload(), topkFactory(), train.Config{
			Workers: n, Density: 0.01, LR: 0.3, Iterations: 15, Seed: 5,
		})
		densities[n] = res.ActualDensity.MeanY()
	}
	if densities[2] <= 0.01 {
		t.Fatalf("n=2 density %v should exceed the target 0.01", densities[2])
	}
	if densities[8] <= densities[2] {
		t.Fatalf("build-up did not grow: n=2 %v, n=8 %v", densities[2], densities[8])
	}
}

func TestErrorNormTracksSelection(t *testing.T) {
	// Error feedback accumulates what is not transmitted: a sparser run
	// must carry a larger error norm than a denser one.
	sparse := train.Run(mlpWorkload(), cltkFactory(), train.Config{
		Workers: 2, Density: 0.01, LR: 0.3, Iterations: 40, Seed: 6,
	})
	denser := train.Run(mlpWorkload(), cltkFactory(), train.Config{
		Workers: 2, Density: 0.2, LR: 0.3, Iterations: 40, Seed: 6,
	})
	if sparse.ErrorNorm.TailMeanY(0.25) <= denser.ErrorNorm.TailMeanY(0.25) {
		t.Fatalf("sparser run should have larger error: %v vs %v",
			sparse.ErrorNorm.TailMeanY(0.25), denser.ErrorNorm.TailMeanY(0.25))
	}
	// The dense baseline transmits everything: error identically 0.
	dense := train.Run(mlpWorkload(), nil, train.Config{
		Workers: 2, LR: 0.3, Iterations: 10, Seed: 6, DisableSparse: true,
	})
	if dense.ErrorNorm.MaxY() != 0 {
		t.Fatalf("dense baseline must have zero error, got %v", dense.ErrorNorm.MaxY())
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := train.Config{Workers: 4, Density: 0.05, LR: 0.3, Iterations: 15, Seed: 7}
	a := train.Run(mlpWorkload(), core.Factory(core.DefaultOptions()), cfg)
	b := train.Run(mlpWorkload(), core.Factory(core.DefaultOptions()), cfg)
	if len(a.TrainLoss.Y) != len(b.TrainLoss.Y) {
		t.Fatal("series lengths differ")
	}
	for i := range a.TrainLoss.Y {
		if a.TrainLoss.Y[i] != b.TrainLoss.Y[i] {
			t.Fatalf("loss differs at %d: %v vs %v", i, a.TrainLoss.Y[i], b.TrainLoss.Y[i])
		}
	}
	if a.Metric.LastY() != b.Metric.LastY() {
		t.Fatal("final metric differs")
	}
}

func TestLRDecayApplies(t *testing.T) {
	// With LR decayed to ~0 immediately, parameters must barely move.
	w := mlpWorkload()
	res := train.Run(w, cltkFactory(), train.Config{
		Workers: 2, Density: 0.05, LR: 0.3, LRDecayAt: []int{1}, LRDecay: 1e-9,
		Iterations: 30, Seed: 8,
	})
	// Loss after decay should stay around its level at iteration 1.
	early := res.TrainLoss.Y[2]
	late := res.TrainLoss.LastY()
	if math.Abs(late-early) > 0.5 {
		t.Fatalf("loss moved after LR kill: %v -> %v", early, late)
	}
}

func TestMomentumRun(t *testing.T) {
	res := train.Run(mlpWorkload(), cltkFactory(), train.Config{
		Workers: 2, Density: 0.05, LR: 0.1, Momentum: 0.9,
		Iterations: 60, Seed: 9, CheckSync: true,
	})
	if res.TrainLoss.LastY() >= res.TrainLoss.Y[0] {
		t.Fatalf("momentum run did not improve: %v -> %v", res.TrainLoss.Y[0], res.TrainLoss.LastY())
	}
}

func TestTimeAccountingPopulated(t *testing.T) {
	res := train.Run(mlpWorkload(), core.Factory(core.DefaultOptions()), train.Config{
		Workers: 2, Density: 0.05, LR: 0.3, Iterations: 5, Seed: 10,
	})
	if res.ComputeTime <= 0 || res.SelectTime <= 0 {
		t.Fatalf("times not recorded: compute %v select %v", res.ComputeTime, res.SelectTime)
	}
	if res.PartitionTime <= 0 {
		t.Fatalf("DEFT partition overhead not recorded")
	}
	if res.Traffic.Total() == 0 {
		t.Fatal("traffic not recorded")
	}
}

func TestEvalEvery(t *testing.T) {
	res := train.Run(mlpWorkload(), cltkFactory(), train.Config{
		Workers: 2, Density: 0.05, LR: 0.3, Iterations: 20, EvalEvery: 5, Seed: 11,
	})
	// Evaluations at 5, 10, 15 plus the final one.
	if len(res.Metric.Y) != 4 {
		t.Fatalf("expected 4 metric points, got %d", len(res.Metric.Y))
	}
}

func TestRunPanicsOnBadConfig(t *testing.T) {
	for name, cfg := range map[string]train.Config{
		"zero workers": {Workers: 0, Density: 0.1, LR: 0.1, Iterations: 1},
		"zero density": {Workers: 1, Density: 0, LR: 0.1, Iterations: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			train.Run(mlpWorkload(), topkFactory(), cfg)
		}()
	}
}

func TestSummaryString(t *testing.T) {
	res := train.Run(mlpWorkload(), cltkFactory(), train.Config{
		Workers: 2, Density: 0.05, LR: 0.3, Iterations: 5, Seed: 12,
	})
	s := res.Summary()
	if s == "" {
		t.Fatal("empty summary")
	}
}

func TestErrorFeedbackReintroducesGradients(t *testing.T) {
	// Unit-level check of the error-feedback arithmetic on a fabricated
	// two-element model: a gradient entry that is never selected must keep
	// accumulating in acc (the error), not vanish.
	grad := []float64{1.0, 0.001}
	acc := make([]float64, 2)
	lr := 0.1
	for t0 := 0; t0 < 10; t0++ {
		for i, g := range grad {
			acc[i] += lr * g
		}
		// Always select only index 0.
		acc[0] = 0
	}
	if math.Abs(acc[1]-10*lr*0.001) > 1e-12 {
		t.Fatalf("unselected gradient not accumulated: %v", acc[1])
	}
	_ = tensor.L2Norm(acc)
}

func TestWireBytesAccounted(t *testing.T) {
	res := train.Run(mlpWorkload(), cltkFactory(), train.Config{
		Workers: 2, Density: 0.05, LR: 0.3, Iterations: 5, Seed: 20,
	})
	if res.WireBytes <= 0 {
		t.Fatal("wire bytes not accounted")
	}
	dense := train.Run(mlpWorkload(), nil, train.Config{
		Workers: 2, LR: 0.3, Iterations: 5, Seed: 20, DisableSparse: true,
	})
	if dense.WireBytes <= res.WireBytes {
		t.Fatalf("dense wire bytes %d should far exceed sparse %d", dense.WireBytes, res.WireBytes)
	}
}

func TestCompressionRatioAndEncodedSeries(t *testing.T) {
	const iters = 6
	res := train.Run(mlpWorkload(), cltkFactory(), train.Config{
		Workers: 2, Density: 0.05, LR: 0.3, Iterations: iters, Seed: 21,
	})
	// At d=0.05 the encoded payload must be far below dense fp32; the
	// exact ratio depends on the realised union, but >4x is safe headroom
	// for a 20x nominal compression.
	if r := res.CompressionRatio(); r < 4 {
		t.Fatalf("compression ratio %.2f too small for d=0.05", r)
	}
	if len(res.EncodedBytes.Y) != iters {
		t.Fatalf("EncodedBytes has %d samples, want %d", len(res.EncodedBytes.Y), iters)
	}
	for i, b := range res.EncodedBytes.Y {
		if b <= 0 {
			t.Fatalf("iteration %d recorded %v encoded bytes", i, b)
		}
	}
	if res.BytesPerIteration() <= 0 {
		t.Fatal("BytesPerIteration not positive")
	}
	if res.WireCommTime <= 0 {
		t.Fatal("topology-modeled comm time not recorded")
	}
	// Dense baseline: ratio pinned at exactly 1 (payload is the fp32
	// gradient itself), and byte-modeled comm time still populated.
	dense := train.Run(mlpWorkload(), nil, train.Config{
		Workers: 2, LR: 0.3, Iterations: 3, Seed: 21, DisableSparse: true,
	})
	if r := dense.CompressionRatio(); math.Abs(r-1) > 1e-12 {
		t.Fatalf("dense compression ratio %v, want exactly 1", r)
	}
	if dense.WireCommTime <= 0 {
		t.Fatal("dense topology-modeled comm time not recorded")
	}
	// More workers union more indices: total bytes must grow with the
	// cluster even at fixed density.
	wide := train.Run(mlpWorkload(), cltkFactory(), train.Config{
		Workers: 4, Density: 0.05, LR: 0.3, Iterations: iters, Seed: 21,
	})
	if wide.WireBytes <= res.WireBytes {
		t.Fatalf("4-worker run shipped %d B, 2-worker %d B: bytes should grow with workers",
			wide.WireBytes, res.WireBytes)
	}
}

// nanWorkload wraps the MLP but injects a NaN gradient at iteration 2.
type nanWorkload struct{ train.Workload }

type nanModel struct {
	train.Model
	steps int
}

func (w *nanWorkload) NewModel() train.Model {
	return &nanModel{Model: w.Workload.NewModel()}
}

func (m *nanModel) Step(r *rng.RNG) float64 {
	loss := m.Model.Step(r)
	m.steps++
	if m.steps == 2 {
		m.Params()[0].G.Data[0] = math.NaN()
	}
	return loss
}

func (w *nanWorkload) Evaluate(m train.Model) float64 {
	return w.Workload.Evaluate(m.(*nanModel).Model)
}

func TestNaNIterationsDetected(t *testing.T) {
	w := &nanWorkload{mlpWorkload()}
	res := train.Run(w, topkFactory(), train.Config{
		Workers: 2, Density: 0.5, LR: 0.0, Iterations: 4, Seed: 21,
	})
	if res.NaNIterations < 1 {
		t.Fatal("NaN gradient not detected")
	}
	clean := train.Run(mlpWorkload(), topkFactory(), train.Config{
		Workers: 2, Density: 0.5, LR: 0.3, Iterations: 4, Seed: 21,
	})
	if clean.NaNIterations != 0 {
		t.Fatalf("false NaN detections: %d", clean.NaNIterations)
	}
}

// TestAllWorkloadsTrainWithDEFT pushes each of the paper's three
// applications (plus the MLP) through the full stack — model, data,
// collectives, DEFT, error feedback — and checks learning progress and
// density stability in one place.
func TestAllWorkloadsTrainWithDEFT(t *testing.T) {
	workloads := []struct {
		w     train.Workload
		lr    float64
		iters int
	}{
		{models.NewMLP(models.DefaultMLPConfig()), 0.3, 30},
		{models.NewVision(models.DefaultVisionConfig()), 0.15, 30},
		{models.NewText(models.DefaultTextConfig()), 1.0, 40},
		{models.NewRecsys(models.DefaultRecsysConfig()), 1.0, 60},
	}
	for _, tc := range workloads {
		res := train.Run(tc.w, core.Factory(core.DefaultOptions()), train.Config{
			Workers: 4, Density: 0.05, LR: tc.lr, Iterations: tc.iters,
			Seed: 33, CheckSync: true,
		})
		if res.TrainLoss.LastY() >= res.TrainLoss.Y[0] {
			t.Errorf("%s: loss did not improve: %v -> %v",
				tc.w.Name(), res.TrainLoss.Y[0], res.TrainLoss.LastY())
		}
		if res.NaNIterations != 0 {
			t.Errorf("%s: %d NaN iterations", tc.w.Name(), res.NaNIterations)
		}
		// DEFT's density stays near the target (the fragment floor can
		// lift it on tiny models, never build-up territory).
		if d := res.ActualDensity.MeanY(); d > 0.05*2 {
			t.Errorf("%s: density %v drifted above target 0.05", tc.w.Name(), d)
		}
	}
}
