// Package train implements Algorithm 1 of the paper: synchronous
// data-parallel SGD with gradient sparsification and error feedback, run on
// the simulated cluster of internal/comm.
//
// Per iteration and per worker i:
//
//	acc_i ← e_i + η_t · G_i(x)          (error feedback)
//	idx_i ← Sparsify(acc_i)
//	idx   ← AllGatherUnique(idx_i)      (union; its size is the density)
//	g_i   ← acc_i[idx]
//	g     ← AllReduceSum(g_i)
//	x     ← x − g / n                    (identical on all replicas)
//	acc_i[idx] ← 0;  e_i ← acc_i
//
// The trainer owns metric collection: realised density, error norm ‖e_t‖
// (Eq. 2), selection wall time, modeled communication time, and the
// periodic evaluation metric.
package train

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"
	"unsafe"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sparsifier"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// Model is one worker's replica.
type Model interface {
	// Params returns the trainable parameter tensors, in a fixed order
	// identical across replicas.
	Params() []*nn.Param
	// Step samples one minibatch with r, runs forward and backward, and
	// accumulates gradients into Params().G (caller zeroes them). It
	// returns the minibatch training loss.
	Step(r *rng.RNG) float64
}

// Workload builds replicas and evaluates them.
type Workload interface {
	Name() string
	MetricName() string
	// NewModel returns a replica whose initial parameters are identical on
	// every call.
	NewModel() Model
	// Evaluate returns the test metric of the given replica.
	Evaluate(m Model) float64
}

// Config drives one distributed training run.
type Config struct {
	Workers   int
	Density   float64
	LR        float64
	LRDecayAt []int   // iterations at which LR is multiplied by LRDecay
	LRDecay   float64 // default 0.1 when LRDecayAt is set
	Momentum  float64 // applied to the aggregated update, identical on all replicas

	Iterations    int
	EvalEvery     int // iterations between metric evaluations (0: only at end)
	RecordEvery   int // iterations between density/error samples (default 1)
	Seed          uint64
	CostModel     comm.CostModel
	Topology      comm.Topology // byte-parameterized comm model (zero: DefaultTopology)
	DisableSparse bool          // dense baseline: all-reduce the full gradient

	// Quantize ships every worker's sparse upload quantized to IEEE
	// binary16: the local selection is encoded with the cheapest fp16 wire
	// format (coo16/bitmap16 via wire.AppendAuto), the *decoded* fp16
	// values — not the fp32 originals — feed the value all-reduce and the
	// model update, and the per-element quantization error acc[i] − q(acc[i])
	// stays in the error-feedback residual, so convergence degrades
	// gracefully instead of silently diverging. Incompatible with
	// DisableSparse (the dense baseline ships fp32 by definition).
	Quantize bool

	// Faults attaches a deterministic chaos schedule (comm.FaultPlan) to
	// the run: per-rank straggler slowdowns inflate that rank's step time,
	// and injected transients/drops abort the cluster mid-rendezvous
	// through the ordinary Abort path. Firing is a pure function of the
	// plan, so the same plan replays bit-identically. nil keeps the fault
	// path entirely off the hot loop.
	Faults *comm.FaultPlan

	// Recover turns injected faults into recoveries instead of failures:
	// on a fault the trainer checkpoints the replica state (SaveParams),
	// rebuilds a cluster at the surviving size (a drop loses its rank, a
	// transient keeps the full size), restores, and resumes at the faulted
	// iteration. Worker-local optimiser state that a real failure would
	// lose — the error-feedback residual and the momentum velocity — is
	// lost here too; the dense momentum-free path recovers byte-exactly.
	Recover bool

	// StartIteration resumes the iteration counter at this value instead
	// of 0 (series x-values, RNG streams, LR decay and eval cadence all
	// use absolute iterations). Used by the recovery path and by resume
	// tests; pair it with InitCheckpoint to continue a previous run.
	StartIteration int

	// InitCheckpoint, when non-nil, is a SaveParams blob restored into
	// every replica before the first iteration.
	InitCheckpoint []byte

	// Checkpoint records the final parameter state into Result.Checkpoint
	// (a SaveParams blob) when the run completes.
	Checkpoint bool

	// CheckSync verifies after every iteration that all replicas hold
	// bit-identical parameters (they must: every replica applies the same
	// aggregated update). Cheap insurance in tests; panics on divergence.
	CheckSync bool

	// Progress, when non-nil, is invoked on rank 0 with exactly the values
	// appended to the Result series: once per recorded iteration (every
	// RecordEvery) and once per evaluation, including the final one. It
	// runs on the training path while the other ranks wait at a barrier —
	// it must be fast and must never block on a slow consumer.
	Progress func(Progress)

	// ProgressEvery, when > 0, attaches per-layer telemetry — fragment
	// allocation (selected indices per layer) and the layer's residual
	// gradient norm — to every ProgressEvery-th recorded iteration, both
	// in the Progress stream (Progress.Layers) and in the Result layer
	// series. Snapshots land on record iterations, so choose a multiple
	// of RecordEvery. 0 (the default) keeps the per-layer path entirely
	// off: no allocation, no per-layer scan.
	ProgressEvery int

	// Tracer, when non-nil, records phase spans (sample, forward/backward,
	// select, encode, decode, collective, apply) on one lane per original
	// rank, exportable as Chrome trace-event JSON. The nil default is the
	// contract the hot loop is benchmarked under: one nil check per phase
	// boundary and zero allocations.
	Tracer *obs.Tracer

	// NewCluster, when non-nil, builds the cluster each segment runs on —
	// the hook multi-node serving uses to substitute a TCP leader/follower
	// transport for the default in-process one. It is called once per
	// segment with the segment's surviving worker count; the trainer closes
	// the returned cluster when the segment ends. On a distributed cluster
	// only the locally hosted ranks run in this process: result series are
	// recorded by rank 0's process, every process returns its lowest local
	// rank's replica (replicas are bit-identical), and the per-iteration
	// worker stats ride an extra AllGatherFloats instead of shared memory.
	// nil runs every rank in-process, byte-for-byte as before.
	NewCluster func(size int) (*comm.Cluster, error)
}

// LayerStat is one layer's slice of a per-layer telemetry snapshot:
// how many of the union's selected indices landed in the layer (K, the
// fragment allocation DEFT rebalances) and the L2 norm of the layer's
// error-feedback residual after the update.
type LayerStat struct {
	Name string  `json:"name"`
	Size int     `json:"size"`
	K    int     `json:"k"`
	Norm float64 `json:"norm"`
}

// Progress is one streamed training event. Kind "record" carries the
// per-iteration loss/density/error/bytes sample; kind "eval" carries the
// periodic evaluation metric; kind "fault" reports an injected fault the
// run is recovering from (emitted between segments, not on the hot path).
type Progress struct {
	Kind          string  `json:"kind"` // "record" | "eval" | "fault"
	Iteration     int     `json:"iteration"`
	TrainLoss     float64 `json:"train_loss,omitempty"`
	ActualDensity float64 `json:"actual_density,omitempty"`
	ErrorNorm     float64 `json:"error_norm,omitempty"`
	EncodedBytes  float64 `json:"encoded_bytes,omitempty"`
	Metric        float64 `json:"metric,omitempty"`
	Fault         string  `json:"fault,omitempty"`
	// StepTime is the iteration's simulated compute time in seconds —
	// the max over workers, straggler-inflated — on record events. It is
	// the series live anomaly detection watches.
	StepTime float64 `json:"step_time_s,omitempty"`
	// RankStep is the per-rank step time in seconds under the ORIGINAL
	// cluster numbering, on record events of fault-injected runs only
	// (nil otherwise, like Result.RankStepTime). Dropped ranks report 0.
	RankStep []float64 `json:"rank_step_s,omitempty"`
	// Layers carries the per-layer telemetry snapshot on every
	// ProgressEvery-th record event (nil otherwise; see
	// Config.ProgressEvery).
	Layers []LayerStat `json:"layers,omitempty"`
}

// FaultEvent is one injected fault the run hit, in the order encountered.
// Rank is in the ORIGINAL cluster numbering (stable across recoveries,
// unlike the shrinking cluster's own ranks); Iteration is where the fault
// fired — the iteration a recovery resumed at.
type FaultEvent struct {
	Kind      string `json:"kind"` // comm.FaultDrop | comm.FaultTransient
	Rank      int    `json:"rank"`
	Iteration int    `json:"iteration"`
}

// Result aggregates everything the experiments need. The JSON form (see
// MarshalJSON) is the machine-readable artefact shared by the -json CLI
// modes and the deft-serve job service.
type Result struct {
	Workload   string  `json:"workload"`
	Sparsifier string  `json:"sparsifier"`
	Workers    int     `json:"workers"`
	Density    float64 `json:"density"`
	// Quantized records that the run shipped fp16 uploads and applied the
	// decoded fp16 values with error feedback (Config.Quantize).
	Quantized bool `json:"quantized,omitempty"`

	TrainLoss     stats.Series `json:"train_loss"`     // x = iteration
	Metric        stats.Series `json:"metric"`         // x = iteration, y = Evaluate()
	ActualDensity stats.Series `json:"actual_density"` // realised density
	ErrorNorm     stats.Series `json:"error_norm"`     // ‖e_t‖, Eq. 2

	// Time accounting (seconds), totals over the run. Selection and
	// gradient compute are wall-clock (max over workers per iteration);
	// communication uses the α–β model on element counts (CommTime) and
	// the topology-aware byte model on actual encoded payloads
	// (WireCommTime).
	ComputeTime   float64 `json:"compute_time_s"`
	SelectTime    float64 `json:"select_time_s"`
	PartitionTime float64 `json:"partition_time_s"` // DEFT's extra overhead bucket
	CommTime      float64 `json:"comm_time_s"`
	WireCommTime  float64 `json:"wire_comm_time_s"`

	// Traffic is the simulated cluster's per-collective byte counter. It
	// charges float payloads at fp32 for every run — including quantized
	// ones — because it also covers the schemes' internal metadata
	// collectives (DEFT's norms, CLT-k's thresholds), which stay fp64/fp32
	// regardless of the upload precision. WireBytes/WireCommTime below are
	// the precision-accurate record of the gradient exchange itself.
	Traffic comm.TrafficCounter `json:"traffic"`
	// WireBytes is the total encoded payload all workers moved over the
	// run, counting both directions symmetrically per worker: the upload
	// (sparse: the local selection encoded with the cheapest internal/wire
	// format at fp32; dense: the full fp32 gradient) plus the download
	// (sparse: the union's summed values as fp32 — the indices are already
	// known from the all-gather, so only values come back; dense: the
	// reduced fp32 vector).
	WireBytes int64 `json:"wire_bytes"`
	// DenseBytes is the fp32 dense baseline over the same run under the
	// same both-directions convention (2·4·ng per worker per iteration) —
	// the numerator of CompressionRatio, which is therefore exactly 1 for
	// a dense run.
	DenseBytes int64 `json:"dense_bytes"`
	// EncodedBytes samples the per-iteration encoded payload summed over
	// workers (x = iteration), every RecordEvery iterations.
	EncodedBytes stats.Series `json:"encoded_bytes"`
	// NaNIterations counts iterations where any worker produced a
	// non-finite gradient (the update still proceeds; inspect this to
	// diagnose divergence).
	NaNIterations int `json:"nan_iterations"`

	// Chaos record (Config.Faults): the injected faults encountered, how
	// many the run recovered from, the wall-clock cost of those recoveries
	// (checkpoint + rebuild + restore), and the worker count the run ended
	// with (smaller than Workers after a drop).
	Faults       []FaultEvent `json:"faults,omitempty"`
	Recoveries   int          `json:"recoveries,omitempty"`
	RecoveryTime float64      `json:"recovery_time_s,omitempty"`
	Survivors    int          `json:"survivors,omitempty"`
	// RankStepTime is the per-rank step-time series (x = iteration, y =
	// seconds, straggler-inflated), indexed by ORIGINAL rank — a dropped
	// rank's series simply stops. Recorded only for fault-injected runs so
	// the healthy path stays allocation-identical.
	RankStepTime []stats.Series `json:"rank_step_time,omitempty"`

	// Per-layer telemetry series (Config.ProgressEvery > 0; nil
	// otherwise): for layer i, LayerAlloc[i] samples the union indices
	// that landed in the layer and LayerNorm[i] the layer's residual L2
	// norm, both with x = iteration. LayerNames gives the layer order.
	LayerNames []string       `json:"layer_names,omitempty"`
	LayerAlloc []stats.Series `json:"layer_alloc,omitempty"`
	LayerNorm  []stats.Series `json:"layer_norm,omitempty"`

	// CommWall is the measured combine wall clock per collective family —
	// the in-process counterpart of the modeled CommTime/WireCommTime,
	// summed over a recovered run's segments. Wall-clock: excluded from
	// DeterministicJSON.
	CommWall comm.CommWall `json:"comm_wall"`

	// SocketTxBytes/SocketRxBytes count the bytes this process actually
	// moved over cluster sockets (framing included), summed over segments.
	// Zero for in-process runs; environment-dependent, so excluded from
	// DeterministicJSON like the wall-clock fields.
	SocketTxBytes int64 `json:"socket_tx_bytes,omitempty"`
	SocketRxBytes int64 `json:"socket_rx_bytes,omitempty"`

	// Checkpoint is the final parameter state as a SaveParams blob,
	// populated when Config.Checkpoint is set. Excluded from the JSON
	// artefact (it is a binary blob, not a metric).
	Checkpoint []byte `json:"-"`
}

// Run executes distributed training and returns the collected result.
// factory builds one sparsifier per worker; pass nil with
// cfg.DisableSparse for the dense baseline.
func Run(w Workload, factory sparsifier.Factory, cfg Config) *Result {
	res, _ := RunContext(context.Background(), w, factory, cfg)
	return res
}

// RunContext is Run with cancellation: when ctx is cancelled the
// simulated cluster is aborted, every rank stops at its next collective
// or compute-section boundary (within one iteration), and RunContext
// returns the partial Result accumulated so far together with the ctx
// error. A nil error means the run completed; the Result is then
// identical to Run's.
func RunContext(ctx context.Context, w Workload, factory sparsifier.Factory, cfg Config) (*Result, error) {
	if cfg.Workers < 1 {
		panic("train: Workers must be >= 1")
	}
	if cfg.Density <= 0 && !cfg.DisableSparse {
		panic("train: Density must be positive for sparsified training")
	}
	if cfg.Quantize && cfg.DisableSparse {
		panic("train: Quantize applies to the sparse upload path; the dense baseline ships fp32")
	}
	if cfg.StartIteration < 0 || cfg.StartIteration > cfg.Iterations {
		panic(fmt.Sprintf("train: StartIteration %d out of [0, %d]", cfg.StartIteration, cfg.Iterations))
	}
	if err := cfg.Faults.Validate(cfg.Workers); err != nil {
		panic(err.Error())
	}
	if cfg.RecordEvery < 1 {
		cfg.RecordEvery = 1
	}
	if cfg.LRDecay == 0 {
		cfg.LRDecay = 0.1
	}
	if cfg.Topology == (comm.Topology{}) {
		cfg.Topology = comm.DefaultTopology()
	}

	res := &Result{
		Workload:  w.Name(),
		Workers:   cfg.Workers,
		Density:   cfg.Density,
		Quantized: cfg.Quantize,
		Survivors: cfg.Workers,
	}
	if cfg.DisableSparse {
		res.Sparsifier = "dense"
	} else {
		probe := factory()
		res.Sparsifier = probe.Name()
	}
	if cfg.Faults != nil {
		// Per-rank step-time series make straggler skew visible in the
		// output; allocated only on the chaos path so a healthy run's
		// allocation profile is untouched.
		res.RankStepTime = make([]stats.Series, cfg.Workers)
	}

	seg := segment{
		workers: cfg.Workers,
		start:   cfg.StartIteration,
		plan:    cfg.Faults,
		init:    cfg.InitCheckpoint,
		rankMap: make([]int, cfg.Workers),
	}
	for i := range seg.rankMap {
		seg.rankMap[i] = i
	}

	for {
		repr, leader, segErr := runSegment(ctx, w, factory, cfg, res, seg)
		if segErr == nil {
			// Final evaluation and checkpoint happen where rank 0 lives; a
			// follower process hands back its (identical) replica without
			// recording anything — the leader's Result is the canonical one.
			if leader {
				m := w.Evaluate(repr)
				res.Metric.Append(float64(cfg.Iterations), m)
				if cfg.Progress != nil {
					cfg.Progress(Progress{Kind: "eval", Iteration: cfg.Iterations, Metric: m})
				}
			}
			if cfg.Checkpoint {
				blob, err := snapshotParams(repr)
				if err != nil {
					return res, fmt.Errorf("train: final checkpoint: %w", err)
				}
				res.Checkpoint = blob
			}
			return res, nil
		}
		var fe *comm.FaultError
		if errors.As(segErr, &fe) {
			// A multi-rank fault (a remote node dying takes every rank it
			// hosted) records one event per lost rank, all at the same
			// iteration, in the original numbering.
			for _, r := range fe.AllRanks() {
				res.Faults = append(res.Faults, FaultEvent{Kind: fe.Kind, Rank: seg.rankMap[r], Iteration: fe.Iteration})
			}
		}
		if fe == nil || !cfg.Recover || ctx.Err() != nil {
			// Not an injected fault (cancellation, real failure), recovery
			// disabled, or the surrounding context is gone: hand back the
			// partial result exactly as a cancelled run does.
			return res, segErr
		}

		// Recovery: checkpoint the replica state (the replica is at the
		// last completed iteration — no rank can apply an update whose
		// collectives did not finish, so the abort left every replica
		// identical), rebuild at the surviving size, restore, and resume
		// at the faulted iteration. Worker-local error-feedback residuals
		// and momentum velocity restart at zero, as a real failure loses
		// them too.
		t0 := time.Now()
		blob, err := snapshotParams(repr)
		if err != nil {
			return res, fmt.Errorf("train: recovery checkpoint: %w", err)
		}
		lost := slices.Clone(fe.AllRanks())
		slices.Sort(lost)
		if fe.Kind == comm.FaultDrop {
			if seg.workers-len(lost) < 1 {
				return res, fmt.Errorf("train: last worker dropped, nothing to recover: %w", segErr)
			}
			seg.workers -= len(lost)
			newMap := slices.Clone(seg.rankMap)
			for i := len(lost) - 1; i >= 0; i-- {
				newMap = slices.Delete(newMap, lost[i], lost[i]+1)
			}
			seg.rankMap = newMap
		}
		// Renumber the pending chaos schedule one lost rank at a time, from
		// the highest so the lower ranks' numbering is still valid for the
		// next deletion.
		for i := len(lost) - 1; i >= 0; i-- {
			seg.plan = seg.plan.Survive(&comm.FaultError{Kind: fe.Kind, Rank: lost[i], Iteration: fe.Iteration})
		}
		seg.init = blob
		seg.start = fe.Iteration
		res.Recoveries++
		res.Survivors = seg.workers
		res.RecoveryTime += time.Since(t0).Seconds()
		if cfg.Progress != nil {
			orig := make([]int, len(lost))
			for i := range lost {
				orig[i] = res.Faults[len(res.Faults)-len(lost)+i].Rank
			}
			cfg.Progress(Progress{Kind: "fault", Iteration: fe.Iteration,
				Fault: fmt.Sprintf("%s of ranks %v: recovered, resuming at iteration %d with %d workers",
					fe.Kind, orig, seg.start, seg.workers)})
		}
	}
}

// segment is one fault-free stretch of a run: a cluster size, a resume
// point, the chaos schedule still pending, the checkpoint to restore, and
// the mapping from this cluster's ranks back to the original numbering.
type segment struct {
	workers int
	start   int
	plan    *comm.FaultPlan
	init    []byte
	rankMap []int
}

// snapshotParams serialises a replica's parameters to a SaveParams blob.
func snapshotParams(m Model) ([]byte, error) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, m.Params()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// runSegment executes iterations [seg.start, cfg.Iterations) on a fresh
// cluster of seg.workers ranks, accumulating into res. It returns the
// lowest local rank's replica — valid even for an aborted segment, since
// every local rank goroutine has finished by then — whether rank 0 ran in
// this process (the leader records the result), and the abort reason (nil
// when the segment ran to completion).
func runSegment(ctx context.Context, w Workload, factory sparsifier.Factory, cfg Config, res *Result, seg segment) (Model, bool, error) {
	// Wire precision of the value payloads: the upload is whatever the
	// codec emits, but the union values returning from the all-reduce ride
	// at the same precision as the upload — fp16 halves that leg too.
	prec := wire.Float32
	valBytes := int64(4)
	if cfg.Quantize {
		prec = wire.Float16
		valBytes = 2
	}

	n := seg.workers
	newCluster := cfg.NewCluster
	if newCluster == nil {
		newCluster = func(size int) (*comm.Cluster, error) { return comm.NewCluster(size), nil }
	}
	cluster, err := newCluster(n)
	if err != nil {
		return nil, false, fmt.Errorf("train: building cluster of %d: %w", n, err)
	}
	defer cluster.Close()
	cluster.SetFaultPlan(seg.plan)
	// Tag the transport with the resume point so a peer dying before its
	// first StartIteration is attributed to seg.start, not iteration 0.
	cluster.SetStartIteration(seg.start)
	lo, _ := cluster.LocalRanks()
	leader := lo == 0
	distributed := cluster.Distributed()
	root := rng.New(cfg.Seed)

	// Per-iteration reduction buffers filled by workers, combined by rank
	// 0. Each entry is padded to its own cache-line pair so neighbouring
	// workers' writes never false-share (see paddedIterStats). On a
	// distributed cluster the remote entries are filled from the stats
	// all-gather instead of shared memory.
	perWorker := make([]paddedIterStats, n)

	// Evaluation runs on one replica only (replicas stay identical); each
	// process keeps its lowest local rank's.
	var repr Model

	runErr := cluster.RunContext(ctx, func(cm *comm.Comm) {
		rank := cm.Rank()
		model := w.NewModel()
		if rank == lo {
			repr = model
		}
		params := model.Params()
		if seg.init != nil {
			// Resumed (or externally seeded) segment: every rank restores the
			// same snapshot, so the replicas start identical exactly as a
			// fresh NewModel would leave them.
			if err := LoadParams(bytes.NewReader(seg.init), params); err != nil {
				panic(fmt.Sprintf("train: restore checkpoint: %v", err))
			}
		}
		layers := Layout(params)
		ng := layers[len(layers)-1].End

		var sp sparsifier.Sparsifier
		if !cfg.DisableSparse {
			sp = factory()
		}
		reporter, hasReporter := sp.(overheadReporter)

		// Tracing: one lane per ORIGINAL rank (stable across recovery
		// segments). The nil lane of a disabled tracer makes every phase
		// boundary below a single nil check.
		var lane *obs.Lane
		if cfg.Tracer != nil {
			origRank := seg.rankMap[rank]
			lane = cfg.Tracer.Lane(origRank, fmt.Sprintf("rank %d", origRank))
		}
		sampler, hasSampler := model.(interface{ LastSampleTime() time.Duration })

		acc := make([]float64, ng) // e_i, then acc_i inside the iteration
		var velocity []float64
		if cfg.Momentum > 0 {
			velocity = make([]float64, ng)
		}
		// Per-worker reusable scratch for the sparse exchange: the gathered
		// index union, the values shipped into the all-reduce, and its
		// result. The dense update vector is only materialised on the paths
		// that need a dense view (momentum, dense baseline). wireBuf and
		// localVals carry the encoded upload payload — the worker's local
		// (index, value) selection through the cheapest internal/wire
		// format — so WireBytes reports what actually crosses the network.
		var idxBuf []int
		var vals, sum []float64
		var update []float64
		var wireBuf []byte
		var localVals []float64
		// Quantized mode decodes the encoded upload back into these scratch
		// slices: the decoded fp16 values are what the update applies.
		var decIdx []int
		var decVals []float64
		if cfg.Momentum > 0 || cfg.DisableSparse {
			update = make([]float64, ng)
		}
		// Distributed runs exchange the per-iteration worker stats over an
		// all-gather (see below); scratch for this rank's contribution and
		// the gathered table. nil on the in-process path, which keeps its
		// shared-memory barrier and allocation profile.
		var statsVec, statsAll []float64
		if distributed {
			statsVec = make([]float64, statsFields)
			statsAll = make([]float64, 0, statsFields*n)
		}

		// The sparsifier context and the gated closures are hoisted out of
		// the iteration loop (closures capture by reference), so the steady
		// state creates no per-iteration closure or context objects.
		ctx := &sparsifier.Ctx{
			Rank:                rank,
			NWorkers:            n,
			Density:             cfg.Density,
			Layers:              layers,
			BroadcastInts:       cm.BroadcastInts,
			BroadcastIntsNested: cm.BroadcastIntsNested,
			Isolate:             isolate,
		}
		var curT int
		var loss float64
		var localIdx []int
		var stepRNG rng.RNG // per-worker storage for the (rank, t) stream
		stepFn := func() {
			// Local gradient on this worker's shard: RNG split by
			// (rank, t) gives independent minibatches per worker, identical
			// across runs.
			nn.ZeroGrads(params)
			loss = model.Step(root.SplitInto(&stepRNG, uint64(rank), uint64(curT)))
		}
		selectFn := func() {
			localIdx = sp.Select(ctx, acc)
		}

		lr := cfg.LR
		decayIdx := 0
		// Replay the decay schedule a resumed segment skipped over.
		for decayIdx < len(cfg.LRDecayAt) && cfg.LRDecayAt[decayIdx] < seg.start {
			lr *= cfg.LRDecay
			decayIdx++
		}

		for t := seg.start; t < cfg.Iterations; t++ {
			// Fault checkpoint and cancellation point ahead of the compute
			// phase: scheduled drops/transients fire here, and collectives
			// abort on their own, but a rank about to disappear into a long
			// Step would otherwise burn a full gradient first. One nil check
			// plus one atomic load when the run is healthy.
			cm.StartIteration(t)
			for decayIdx < len(cfg.LRDecayAt) && t == cfg.LRDecayAt[decayIdx] {
				lr *= cfg.LRDecay
				decayIdx++
			}

			// Gated so stepTime is a contention-free per-worker time (max
			// over workers = simulated parallel compute time); on the
			// single-core simulator the gate costs nothing because the
			// sections were serialised anyway.
			curT = t
			lane.Start(obs.PhaseIteration, t)
			stepStart := lane.Now()
			stepTime := isolate(stepFn)
			if lane != nil {
				// Split the step into its sampling prefix and the
				// forward/backward remainder, recorded retroactively so the
				// traced run pays the same two clock reads as an untraced
				// one inside the gate.
				stepEnd := lane.Now()
				var sampleNS int64
				if hasSampler {
					sampleNS = int64(sampler.LastSampleTime())
				}
				lane.RecordSpanAt(obs.PhaseSample, t, stepStart, sampleNS)
				lane.RecordSpanAt(obs.PhaseForwardBackward, t, stepStart+sampleNS, stepEnd-stepStart-sampleNS)
			}
			if seg.plan != nil {
				if f := cm.StragglerFactor(t); f != 1 {
					// A straggler's slowdown is applied to the measured
					// compute time — the same modelling stance as the α–β
					// comm model: deterministic shape, simulated magnitude.
					inflated := time.Duration(float64(stepTime) * f)
					// The extra time never burned wall clock, so the trace
					// would not show it: record the difference as an explicit
					// stall span so trace analytics sees the same step the
					// accounting reports.
					lane.RecordSpanAt(obs.PhaseStall, t, stepStart+int64(stepTime), int64(inflated-stepTime))
					stepTime = inflated
				}
			}

			// acc_i ← e_i + η·G_i, fused with the NaN scan in one pass
			// over the parameter gradients (no flattening copy).
			hasNaN := AccumulateGrads(params, acc, lr)

			var selTime, partTime time.Duration
			selectedK := ng
			var upBytes int64

			if cfg.DisableSparse {
				lane.Start(obs.PhaseCollective, t)
				update = cm.AllReduceSumInto(acc, update)
				lane.Stop()
				for i := range acc {
					acc[i] = 0
				}
				// The dense baseline ships the full fp32 gradient up and
				// receives the reduced fp32 vector back.
				upBytes = 2 * wire.DenseBytes(ng)
			} else {
				// Align workers before the measured selection phase: without
				// this, a worker's gated section still competes with other
				// workers' compute (they haven't reached their own gate
				// yet), and the measurement absorbs scheduler interleaving.
				// Synchronous SGD synchronises at the all-gather anyway, so
				// this changes no semantics.
				lane.Start(obs.PhaseCollective, t)
				cm.Barrier()
				lane.Stop()
				ctx.Iteration = t
				lane.Start(obs.PhaseSelect, t)
				if hasReporter {
					// Scheme with internal collectives (DEFT, CLT-k): it
					// gates its own local segments and reports them.
					selectFn()
					partTime, selTime = reporter.LastOverhead()
				} else {
					// Pure-local scheme: gate the whole selection.
					selTime = isolate(selectFn)
				}
				lane.Stop()

				// Lines 7–9 of Algorithm 1. The union collective merges
				// sorted per-rank lists, so sort the local selection first —
				// the selection kernels return unspecified order and permit
				// in-place reordering until the next Select.
				lane.Start(obs.PhaseEncode, t)
				slices.Sort(localIdx)
				// Wire accounting: encode this worker's local (index, value)
				// selection with the cheapest codec — the payload a real
				// system would put on the network. The encode is the genuine
				// article, not a size estimate, so the zero-alloc codec path
				// is exercised every iteration.
				if cap(localVals) < len(localIdx) {
					localVals = make([]float64, len(localIdx))
				}
				localVals = localVals[:len(localIdx)]
				if cfg.Quantize {
					// Saturate to the largest finite half before encoding:
					// an accumulator entry beyond ±65504 must ship as
					// ±MaxFloat16, never as the codec's ±Inf (which would
					// make the aggregated update infinite).
					for j, i := range localIdx {
						localVals[j] = wire.Sat16(acc[i])
					}
				} else {
					for j, i := range localIdx {
						localVals[j] = acc[i]
					}
				}
				var wireErr error
				wireBuf, _, wireErr = wire.AppendAuto(wireBuf[:0], ng, localIdx, localVals, prec)
				if wireErr != nil {
					panic(fmt.Sprintf("train: wire encode of local selection: %v", wireErr))
				}
				upBytes = int64(len(wireBuf))
				lane.Stop()
				if cfg.Quantize {
					// Decode the payload just encoded: the receiver side of
					// the wire format, run on the genuine bytes, so the
					// values entering the update are exactly what a remote
					// peer would reconstruct.
					lane.Start(obs.PhaseDecode, t)
					var decErr error
					_, _, decIdx, decVals, decErr = wire.DecodeInto(wireBuf, decIdx, decVals)
					lane.Stop()
					if decErr != nil {
						panic(fmt.Sprintf("train: wire decode of local selection: %v", decErr))
					}
				}
				lane.Start(obs.PhaseCollective, t)
				idxBuf = cm.AllGatherUniqueIntsInto(localIdx, idxBuf)
				lane.Stop()
				idx := idxBuf
				selectedK = len(idx)
				if cap(vals) < len(idx) {
					vals = make([]float64, len(idx))
				}
				vals = vals[:len(idx)]
				if cfg.Quantize {
					// Locally selected entries contribute the decoded wire
					// values verbatim; union entries this worker did not
					// select ride the value all-reduce at the same fp16
					// precision, through the same quantizer.
					li := 0
					for j, i := range idx {
						if li < len(decIdx) && decIdx[li] == i {
							vals[j] = decVals[li]
							li++
						} else {
							vals[j] = wire.Quantize16(wire.Sat16(acc[i]))
						}
					}
				} else {
					for j, i := range idx {
						vals[j] = acc[i]
					}
				}
				lane.Start(obs.PhaseCollective, t)
				sum = cm.AllReduceSumInto(vals, sum)
				lane.Stop()

				// Lines 10–12: update model, clear transmitted entries. The
				// aggregated update is applied sparsely — only the selected
				// indices are touched — unless a dense view is needed for
				// the momentum buffer below.
				lane.Start(obs.PhaseApply, t)
				if velocity != nil {
					for i := range update {
						update[i] = 0
					}
					for j, i := range idx {
						update[i] = sum[j]
					}
				} else {
					ApplySparseUpdate(params, idx, sum, 1/float64(n))
				}
				if cfg.Quantize {
					// Only the transmitted fp16 value left this worker, so
					// only it leaves the accumulator: the residual keeps
					// acc[i] − vals[j], the per-element quantization error —
					// the error-feedback absorption invariant.
					for j, i := range idx {
						acc[i] -= vals[j]
					}
				} else {
					for _, i := range idx {
						acc[i] = 0
					}
				}
				lane.Stop()
			}

			// x ← x − update/n (with optional momentum on the aggregate;
			// every replica computes the same thing, so they stay in sync).
			// Momentum keeps a dense velocity vector, so it falls back to
			// the dense application path; the momentum-free sparse path has
			// already applied the update above.
			invN := 1 / float64(n)
			if velocity != nil || cfg.DisableSparse {
				lane.Start(obs.PhaseApply, t)
				if velocity != nil {
					for i := range update {
						velocity[i] = cfg.Momentum*velocity[i] + update[i]*invN
					}
					ApplyUpdate(params, velocity, 1)
				} else {
					ApplyUpdate(params, update, invN)
				}
				lane.Stop()
			}

			if cfg.CheckSync {
				sum := 0.0
				for _, p := range params {
					for _, v := range p.W.Data {
						sum += v
					}
				}
				// Sequential summation of n identical values can differ from
				// sum*n by rounding, so compare with a tight relative bound.
				all := cm.AllReduceSum([]float64{sum})
				want := sum * float64(n)
				if diff := math.Abs(all[0] - want); diff > 1e-9*math.Max(1, math.Abs(want)) {
					panic(fmt.Sprintf("train: replica divergence at iteration %d (rank %d: %v vs mean %v)",
						t, rank, sum, all[0]/float64(n)))
				}
			}

			// Metrics.
			st := iterStats{
				loss:      loss,
				errNorm:   tensor.L2Norm(acc),
				selTime:   selTime,
				partTime:  partTime,
				stepTime:  stepTime,
				selectedK: selectedK,
				upBytes:   upBytes,
				hasNaN:    hasNaN,
			}
			perWorker[rank].iterStats = st
			lane.Start(obs.PhaseCollective, t)
			if distributed {
				// Remote ranks cannot reach this process's perWorker: every
				// rank contributes its stats to an all-gather instead, and
				// rank 0 refills the table from the result. The collective
				// doubles as the "all entries written" barrier; it moves
				// control-plane floats only and charges no modeled traffic,
				// keeping Traffic identical to an in-process run.
				statsVec[0] = st.loss
				statsVec[1] = st.errNorm
				statsVec[2] = float64(st.selTime)
				statsVec[3] = float64(st.partTime)
				statsVec[4] = float64(st.stepTime)
				statsVec[5] = float64(st.selectedK)
				statsVec[6] = float64(st.upBytes)
				statsVec[7] = 0
				if st.hasNaN {
					statsVec[7] = 1
				}
				statsAll = cm.AllGatherFloatsInto(statsVec, statsAll)
				if rank == 0 {
					for i := 0; i < n; i++ {
						v := statsAll[i*statsFields : (i+1)*statsFields]
						perWorker[i].iterStats = iterStats{
							loss:      v[0],
							errNorm:   v[1],
							selTime:   time.Duration(v[2]),
							partTime:  time.Duration(v[3]),
							stepTime:  time.Duration(v[4]),
							selectedK: int(v[5]),
							upBytes:   int64(v[6]),
							hasNaN:    v[7] != 0,
						}
					}
				}
			} else {
				cm.Barrier() // all perWorker entries written
			}
			lane.Stop()

			if rank == 0 {
				// Loss: mean across workers. Error: Eq. 2, the mean of the
				// per-worker ‖e_i‖. Times: the slowest worker bounds the
				// iteration (paper §5.3); communication uses the α–β model
				// with the realised per-worker k.
				var lossSum, errSum float64
				var iterUp, maxUp int64
				var maxSel, maxPart, maxStep time.Duration
				anyNaN := false
				for i := range perWorker {
					s := &perWorker[i]
					lossSum += s.loss
					errSum += s.errNorm
					iterUp += s.upBytes
					anyNaN = anyNaN || s.hasNaN
					if s.upBytes > maxUp {
						maxUp = s.upBytes
					}
					if s.selTime > maxSel {
						maxSel = s.selTime
					}
					if s.partTime > maxPart {
						maxPart = s.partTime
					}
					if s.stepTime > maxStep {
						maxStep = s.stepTime
					}
				}
				if anyNaN {
					res.NaNIterations++
				}
				res.ComputeTime += maxStep.Seconds()
				res.SelectTime += maxSel.Seconds()
				res.PartitionTime += maxPart.Seconds()
				k := perWorker[0].selectedK
				// Byte accounting: every worker's encoded upload, plus the
				// download each worker receives back — in sparse runs the
				// union's summed values as fp32 (the indices are already
				// known to every worker from the all-gather, so only values
				// return); the dense baseline already counted both
				// directions in upBytes. The same both-directions
				// convention on both sides makes CompressionRatio an honest
				// cross-mode comparison (exactly 1 for dense).
				iterBytes := iterUp
				res.DenseBytes += 2 * wire.DenseBytes(ng) * int64(n)
				if cfg.DisableSparse {
					res.CommTime += cfg.CostModel.AllReduceDense(n, ng)
					res.WireCommTime += cfg.Topology.RingAllReduce(n, wire.DenseBytes(ng))
				} else {
					iterBytes += valBytes * int64(k) * int64(n) // union values per worker, at the run's wire precision
					res.CommTime += cfg.CostModel.AllGatherSparse(n, k)
					// The sparse exchange rides a recursive-doubling
					// all-gather of the slowest worker's encoded payload,
					// then a ring all-reduce of the union's values at the
					// run's wire precision.
					res.WireCommTime += cfg.Topology.RecursiveDoublingAllGather(n, maxUp) +
						cfg.Topology.RingAllReduce(n, valBytes*int64(k))
				}
				res.WireBytes += iterBytes
				if t%cfg.RecordEvery == 0 {
					if res.RankStepTime != nil {
						// Per-rank step times under the ORIGINAL numbering,
						// so a rank's series survives renumbering when a
						// lower rank drops.
						for i := range perWorker {
							res.RankStepTime[seg.rankMap[i]].Append(float64(t), perWorker[i].stepTime.Seconds())
						}
					}
					res.TrainLoss.Append(float64(t), lossSum/float64(n))
					res.ErrorNorm.Append(float64(t), errSum/float64(n))
					res.ActualDensity.Append(float64(t), float64(k)/float64(ng))
					res.EncodedBytes.Append(float64(t), float64(iterBytes))
					// Per-layer telemetry rides every ProgressEvery-th record
					// event: lazily allocated, entirely absent at the default
					// ProgressEvery == 0 so the hot loop's allocation profile
					// is untouched.
					var layerStats []LayerStat
					if cfg.ProgressEvery > 0 && t%cfg.ProgressEvery == 0 {
						layerStats = layerSnapshot(layers, acc, idxBuf, cfg.DisableSparse)
						if res.LayerNames == nil {
							res.LayerNames = make([]string, len(layers))
							for i, l := range layers {
								res.LayerNames[i] = l.Name
							}
							res.LayerAlloc = make([]stats.Series, len(layers))
							res.LayerNorm = make([]stats.Series, len(layers))
						}
						for i, ls := range layerStats {
							res.LayerAlloc[i].Append(float64(t), float64(ls.K))
							res.LayerNorm[i].Append(float64(t), ls.Norm)
						}
					}
					if cfg.Progress != nil {
						var rankStep []float64
						if res.RankStepTime != nil {
							// Same original-rank numbering as the series
							// appended above; a dropped rank stays 0.
							rankStep = make([]float64, cfg.Workers)
							for i := range perWorker {
								rankStep[seg.rankMap[i]] = perWorker[i].stepTime.Seconds()
							}
						}
						cfg.Progress(Progress{
							Kind:          "record",
							Iteration:     t,
							TrainLoss:     lossSum / float64(n),
							ActualDensity: float64(k) / float64(ng),
							ErrorNorm:     errSum / float64(n),
							EncodedBytes:  float64(iterBytes),
							StepTime:      maxStep.Seconds(),
							RankStep:      rankStep,
							Layers:        layerStats,
						})
					}
				}
				if cfg.EvalEvery > 0 && t > 0 && t%cfg.EvalEvery == 0 {
					m := w.Evaluate(repr)
					res.Metric.Append(float64(t), m)
					if cfg.Progress != nil {
						cfg.Progress(Progress{Kind: "eval", Iteration: t, Metric: m})
					}
				}
			}
			lane.Start(obs.PhaseCollective, t)
			cm.Barrier() // keep workers in lockstep with the recording
			lane.Stop()
			lane.Stop() // iteration span
		}
	})

	// Accumulate (not assign): a recovered run's traffic is the sum over
	// its segments. On an aborted segment the partial series are still
	// consistent — rank 0 only appends between the two lockstep barriers.
	res.Traffic.Add(cluster.Traffic())
	res.CommWall.Add(cluster.CommWall())
	tx, rx := cluster.SocketBytes()
	res.SocketTxBytes += tx
	res.SocketRxBytes += rx
	return repr, leader, runErr
}

// layerSnapshot builds the per-layer telemetry of one recorded iteration:
// for each layer, how many of the union's indices (idx, sorted ascending)
// fall inside it — the fragment allocation DEFT's partitioner rebalances —
// and the L2 norm of the layer's slice of the error-feedback residual.
// The dense baseline selects everything, so K is the layer size there.
func layerSnapshot(layers []sparsifier.Layer, acc []float64, idx []int, dense bool) []LayerStat {
	out := make([]LayerStat, len(layers))
	li := 0
	for i, l := range layers {
		k := 0
		if dense {
			k = l.End - l.Start
		} else {
			for li < len(idx) && idx[li] < l.End {
				k++
				li++
			}
		}
		out[i] = LayerStat{
			Name: l.Name,
			Size: l.End - l.Start,
			K:    k,
			Norm: tensor.L2Norm(acc[l.Start:l.End]),
		}
	}
	return out
}

// overheadReporter is implemented by DEFT to expose its partition-vs-select
// split without this package importing internal/core.
type overheadReporter interface {
	LastOverhead() (partition, selection time.Duration)
}

// measureGate is the process-global timing gate: a mutex serialising the
// *measured* sections (gradient compute, selection, DEFT's partitioning)
// of every worker of every concurrently running cluster. With all workers
// hosted on one machine, un-gated sections contend for the CPU and their
// wall times measure scheduler interleaving instead of work; gated
// sections run alone, so max-over-workers is the simulated parallel time.
// The gate is process-global rather than per-cluster so that concurrent
// training runs — the parallel experiment driver fans independent runs out
// over a worker pool — cannot contend with each other's measured sections
// either.
var measureGate sync.Mutex

// isolate runs fn under the process-global timing gate and returns its
// contention-free wall time.
func isolate(fn func()) time.Duration {
	measureGate.Lock()
	defer measureGate.Unlock()
	t0 := time.Now()
	fn()
	return time.Since(t0)
}

// statsFields is the width of one rank's contribution to the distributed
// per-iteration stats all-gather: every iterStats field as a float64.
const statsFields = 8

// iterStats is one worker's per-iteration metric contribution.
type iterStats struct {
	loss      float64
	errNorm   float64
	selTime   time.Duration
	partTime  time.Duration
	stepTime  time.Duration
	selectedK int
	upBytes   int64 // this worker's encoded upload payload
	hasNaN    bool
}

// paddedIterStats pads each worker's entry to a 128-byte boundary (two
// 64-byte lines: the adjacent-line prefetcher drags pairs) so concurrent
// workers writing neighbouring slice entries never share a cache line.
type paddedIterStats struct {
	iterStats
	_ [128 - unsafe.Sizeof(iterStats{})%128]byte
}

// CompressionRatio returns the run's wire compression ratio: the fp32
// dense baseline over the encoded bytes actually shipped (1 for the dense
// baseline itself, 0 before any iteration ran).
func (r *Result) CompressionRatio() float64 {
	if r.WireBytes <= 0 {
		return 0
	}
	return float64(r.DenseBytes) / float64(r.WireBytes)
}

// BytesPerIteration returns the mean encoded bytes shipped per iteration
// across all workers.
func (r *Result) BytesPerIteration() float64 {
	return r.EncodedBytes.MeanY()
}

// Summary renders a short human-readable digest of the run.
func (r *Result) Summary() string {
	mode := ""
	if r.Quantized {
		mode = "+fp16"
	}
	return fmt.Sprintf("%s/%s%s workers=%d d=%g: loss %.4f→%.4f, metric %.3f, density mean %.5f, err final %.4g, wire %.2fx",
		r.Workload, r.Sparsifier, mode, r.Workers, r.Density,
		firstY(&r.TrainLoss), r.TrainLoss.LastY(), r.Metric.LastY(),
		r.ActualDensity.MeanY(), r.ErrorNorm.LastY(), r.CompressionRatio())
}

func firstY(s *stats.Series) float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[0]
}
