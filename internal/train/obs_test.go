package train_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/comm"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/train"
)

// TestProgressOrderingWithFaults: the full event stream of a recovering
// run arrives in iteration order — records strictly ascend, the fault
// event for iteration k lands before any re-run record of k, and evals
// interleave at their exact cadence positions.
func TestProgressOrderingWithFaults(t *testing.T) {
	w := mlpWorkload()
	var events []train.Progress
	cfg := train.Config{
		Workers: 3, Density: 0.05, LR: 0.1,
		Iterations: 12, EvalEvery: 4, RecordEvery: 1,
		Faults:  &comm.FaultPlan{Transients: []comm.Transient{{Rank: 1, Iteration: 6}}},
		Recover: true,
		Progress: func(p train.Progress) {
			events = append(events, p)
		},
	}
	res, err := train.RunContext(context.Background(), w, topkFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", res.Recoveries)
	}

	faultSeen := false
	lastRecord := -1
	evalIters := []int{}
	for i, e := range events {
		switch e.Kind {
		case "record":
			if e.Iteration <= lastRecord {
				t.Errorf("event %d: record iteration %d not after %d", i, e.Iteration, lastRecord)
			}
			lastRecord = e.Iteration
		case "eval":
			evalIters = append(evalIters, e.Iteration)
			// An eval reports the iteration just recorded (or the final
			// iteration count for the terminal eval).
			if e.Iteration != lastRecord && e.Iteration != cfg.Iterations {
				t.Errorf("event %d: eval at %d does not follow its record (last %d)", i, e.Iteration, lastRecord)
			}
		case "fault":
			faultSeen = true
			if e.Iteration != 6 {
				t.Errorf("fault event at iteration %d, want 6", e.Iteration)
			}
			// The transient fires at iteration 6 before its record: the
			// last completed record must be 5, and the resumed segment
			// re-records from 6.
			if lastRecord != 5 {
				t.Errorf("fault arrived after record %d, want 5", lastRecord)
			}
			lastRecord = 5 // resume: next record is 6 again
		default:
			t.Fatalf("unknown event kind %q", e.Kind)
		}
	}
	if !faultSeen {
		t.Fatal("no fault event streamed")
	}
	if lastRecord != cfg.Iterations-1 {
		t.Errorf("last record iteration = %d, want %d", lastRecord, cfg.Iterations-1)
	}
	wantEvals := []int{4, 8, 12}
	if len(evalIters) != len(wantEvals) {
		t.Fatalf("eval iterations %v, want %v", evalIters, wantEvals)
	}
	for i := range wantEvals {
		if evalIters[i] != wantEvals[i] {
			t.Fatalf("eval iterations %v, want %v", evalIters, wantEvals)
		}
	}
}

// TestProgressLayersMatchSeries: the per-layer snapshots streamed on
// ProgressEvery-th record events must decode to exactly the Result's
// layer series — the same identity contract the scalar series have.
func TestProgressLayersMatchSeries(t *testing.T) {
	w := mlpWorkload()
	var withLayers, without []train.Progress
	cfg := train.Config{
		Workers: 2, Density: 0.05, LR: 0.1,
		Iterations: 9, RecordEvery: 1, ProgressEvery: 3,
		Progress: func(p train.Progress) {
			if p.Kind != "record" {
				return
			}
			if p.Layers != nil {
				withLayers = append(withLayers, p)
			} else {
				without = append(without, p)
			}
		},
	}
	res, err := train.RunContext(context.Background(), w, cltkFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LayerNames) == 0 {
		t.Fatal("ProgressEvery > 0 must populate LayerNames")
	}
	if len(res.LayerAlloc) != len(res.LayerNames) || len(res.LayerNorm) != len(res.LayerNames) {
		t.Fatalf("layer series count mismatch: %d names, %d alloc, %d norm",
			len(res.LayerNames), len(res.LayerAlloc), len(res.LayerNorm))
	}
	// Iterations 0, 3, 6 carry layers; the other six records do not.
	if len(withLayers) != 3 || len(without) != 6 {
		t.Fatalf("layer-carrying records = %d (want 3), plain = %d (want 6)", len(withLayers), len(without))
	}
	for si, e := range withLayers {
		if len(e.Layers) != len(res.LayerNames) {
			t.Fatalf("event %d has %d layers, want %d", si, len(e.Layers), len(res.LayerNames))
		}
		totalK := 0
		for li, ls := range e.Layers {
			if ls.Name != res.LayerNames[li] {
				t.Errorf("event %d layer %d name %q, want %q", si, li, ls.Name, res.LayerNames[li])
			}
			if x := res.LayerAlloc[li].X[si]; float64(e.Iteration) != x {
				t.Errorf("layer %d alloc x = %v, want %d", li, x, e.Iteration)
			}
			if y := res.LayerAlloc[li].Y[si]; float64(ls.K) != y {
				t.Errorf("layer %d alloc y = %v, want %d", li, y, ls.K)
			}
			if y := res.LayerNorm[li].Y[si]; ls.Norm != y {
				t.Errorf("layer %d norm y = %v, want %v", li, y, ls.Norm)
			}
			if ls.K < 0 || ls.K > ls.Size {
				t.Errorf("layer %q K=%d out of [0,%d]", ls.Name, ls.K, ls.Size)
			}
			totalK += ls.K
		}
		// The union is tiled exactly by the layers: per-layer K sums to
		// the recorded union size (density × ng).
		var rec *train.Progress
		for i := range without {
			if without[i].Iteration == e.Iteration {
				rec = &without[i]
				break
			}
		}
		_ = rec // layer-carrying events ARE the record; use its own density
		ng := 0
		for _, ls := range e.Layers {
			ng += ls.Size
		}
		if want := int(e.ActualDensity*float64(ng) + 0.5); totalK != want {
			t.Errorf("event %d: sum of layer K = %d, want union size %d", si, totalK, want)
		}
	}

	// The round trip through JSON (what the serve NDJSON stream does)
	// preserves the layer snapshots exactly.
	blob, err := json.Marshal(withLayers[0])
	if err != nil {
		t.Fatal(err)
	}
	var decoded train.Progress
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Layers) != len(withLayers[0].Layers) {
		t.Fatalf("JSON round trip lost layers: %d vs %d", len(decoded.Layers), len(withLayers[0].Layers))
	}
	for i, ls := range decoded.Layers {
		if ls != withLayers[0].Layers[i] {
			t.Errorf("layer %d changed across JSON: %+v vs %+v", i, ls, withLayers[0].Layers[i])
		}
	}
}

// TestTracedRunWritesValidChromeTrace: a traced training run must export
// a structurally valid Chrome trace-event document containing every
// training phase on every rank's lane.
func TestTracedRunWritesValidChromeTrace(t *testing.T) {
	w := mlpWorkload()
	tr := obs.NewTracer("train-test")
	cfg := train.Config{
		Workers: 2, Density: 0.05, LR: 0.1,
		Iterations: 4, Tracer: tr, Quantize: true,
	}
	if _, err := train.RunContext(context.Background(), w, topkFactory(), cfg); err != nil {
		t.Fatal(err)
	}
	if tr.SpanCount() == 0 {
		t.Fatal("traced run recorded no spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	phases := map[string]map[int]bool{} // phase name -> set of lanes
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if phases[ev.Name] == nil {
			phases[ev.Name] = map[int]bool{}
		}
		phases[ev.Name][ev.Tid] = true
	}
	for _, want := range []string{
		"iteration", "sample", "forward/backward", "select",
		"encode", "decode", "collective", "apply",
	} {
		if len(phases[want]) != cfg.Workers {
			t.Errorf("phase %q seen on %d lanes, want %d", want, len(phases[want]), cfg.Workers)
		}
	}
}

// TestTracedStragglerRunIsAttributed closes the loop the tentpole is
// about: a FaultPlan straggler run, traced, analyzed, yields a named
// culprit with the configured window. The straggler's slowdown is
// accounting-only (no wall clock burned), so this also locks in the
// stall spans that make the trace consistent with the metrics.
func TestTracedStragglerRunIsAttributed(t *testing.T) {
	w := mlpWorkload()
	tr := obs.NewTracer("chaos-test")
	const from, until = 20, 50
	cfg := train.Config{
		Workers: 4, Density: 0.05, LR: 0.1,
		Iterations: 60, RecordEvery: 1, Tracer: tr,
		Faults: &comm.FaultPlan{Stragglers: []comm.Straggler{
			{Rank: 1, Factor: 8, From: from, Until: until},
		}},
	}
	var stepEvents int
	cfg.Progress = func(p train.Progress) {
		if p.Kind == "record" {
			if p.StepTime <= 0 {
				t.Errorf("record at %d missing step_time_s", p.Iteration)
			}
			if len(p.RankStep) != cfg.Workers {
				t.Errorf("record at %d has %d rank steps, want %d", p.Iteration, len(p.RankStep), cfg.Workers)
			}
			stepEvents++
		}
	}
	if _, err := train.RunContext(context.Background(), w, topkFactory(), cfg); err != nil {
		t.Fatal(err)
	}
	if stepEvents != cfg.Iterations {
		t.Fatalf("saw %d record events, want %d", stepEvents, cfg.Iterations)
	}

	// Stall spans appear exactly on the straggler's lane inside the
	// fault window.
	_, spans := tr.Snapshot()
	stalls := 0
	for _, s := range spans {
		if s.Name != "stall" {
			continue
		}
		stalls++
		if s.Lane != 1 {
			t.Errorf("stall span on lane %d, want 1", s.Lane)
		}
		if s.Iter < from || s.Iter >= until {
			t.Errorf("stall span at iteration %d, outside [%d,%d)", s.Iter, from, until)
		}
		if s.Dur <= 0 {
			t.Errorf("stall span at %d has non-positive duration %d", s.Iter, s.Dur)
		}
	}
	if stalls != until-from {
		t.Errorf("stall spans = %d, want %d", stalls, until-from)
	}

	rep := analyze.Analyze(analyze.FromTracer(tr), analyze.Options{})
	if len(rep.Stragglers) != 1 {
		t.Fatalf("stragglers = %+v, want exactly one", rep.Stragglers)
	}
	f := rep.Stragglers[0]
	if f.Rank != 1 {
		t.Errorf("culprit rank = %d, want 1", f.Rank)
	}
	// Timing noise may drop an edge iteration below the flagging ratio,
	// but a x8 straggler can never be flagged outside its window.
	if f.From < from || f.Until > until || f.Flagged < (until-from)*3/4 {
		t.Errorf("window [%d,%d) with %d flagged, want within [%d,%d)", f.From, f.Until, f.Flagged, from, until)
	}
}

// TestDisabledTracerZeroAllocPerIteration is the ISSUE's acceptance
// assertion in test form: with the tracer disabled (nil — the default)
// and per-layer telemetry off, the steady-state training iteration
// allocates nothing. Comparing two run lengths cancels the setup
// allocations; RecordEvery larger than either run keeps the series
// appends out of the loop.
func TestDisabledTracerZeroAllocPerIteration(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations; the non-race run enforces this")
	}
	w := mlpWorkload()
	run := func(iters int) func() {
		return func() {
			cfg := train.Config{
				Workers: 2, Density: 0.05, LR: 0.1,
				Iterations: iters, RecordEvery: 1 << 20,
			}
			train.Run(w, topkFactory(), cfg)
		}
	}
	const short, long = 24, 48
	// Warm up process-global state (GEMM pools, codec tables) first.
	run(2)()
	allocsShort := testing.AllocsPerRun(3, run(short))
	allocsLong := testing.AllocsPerRun(3, run(long))
	perIter := (allocsLong - allocsShort) / float64(long-short)
	// The steady state is allocation-free except for growable scratch
	// hitting a new union-size high-water mark (a fraction of an alloc
	// per iteration, amortized). Any unconditional instrumentation
	// allocation costs >= 1 per iteration, so half an alloc cleanly
	// separates the regression from the noise.
	if perIter >= 0.5 {
		t.Errorf("disabled tracer: %.2f allocs per steady-state iteration, want ~0 (short=%v long=%v)",
			perIter, allocsShort, allocsLong)
	}
}
