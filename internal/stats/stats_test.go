package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMeanVariance(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	if Mean(v) != 2.5 {
		t.Fatalf("Mean = %v", Mean(v))
	}
	if Variance(v) != 1.25 {
		t.Fatalf("Variance = %v", Variance(v))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty input should give 0")
	}
}

func TestMeanAbs(t *testing.T) {
	if MeanAbs([]float64{-2, 2}) != 2 {
		t.Fatal("MeanAbs wrong")
	}
	if MeanAbs(nil) != 0 {
		t.Fatal("MeanAbs(nil) should be 0")
	}
}

// On genuinely exponential data the exponential-fit threshold should
// select close to the target fraction.
func TestExpThresholdOnExponentialData(t *testing.T) {
	r := rng.New(1)
	n := 200000
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Exp() * 3.7 // rate 1/3.7
	}
	for _, ratio := range []float64{0.1, 0.01, 0.001} {
		th := ExpThreshold(v, ratio)
		got := 0
		for _, x := range v {
			if x >= th {
				got++
			}
		}
		frac := float64(got) / float64(n)
		if frac < ratio/2 || frac > ratio*2 {
			t.Errorf("ratio %v: selected fraction %v, want within 2x", ratio, frac)
		}
	}
}

func TestExpThresholdEdges(t *testing.T) {
	v := []float64{1, 2, 3}
	if !math.IsInf(ExpThreshold(v, 0), 1) {
		t.Fatal("ratio 0 should give +Inf")
	}
	if ExpThreshold(v, 1) != 0 {
		t.Fatal("ratio 1 should give 0")
	}
	if ExpThreshold([]float64{0, 0}, 0.5) != 0 {
		t.Fatal("all-zero input should give 0 threshold")
	}
}

func TestMultiStageSharperThanSingleOnHeavyTail(t *testing.T) {
	// Gaussian magnitudes are lighter-tailed than exponential; the
	// single-stage exponential fit overestimates the tail and selects too
	// many elements at small ratios. Multi-stage refits on the tail and
	// must do no worse.
	r := rng.New(2)
	n := 100000
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Norm()
	}
	ratio := 0.01
	single := ExpThreshold(v, ratio)
	multi := MultiStageExpThreshold(v, ratio, 3)
	fracAt := func(th float64) float64 {
		c := 0
		for _, x := range v {
			if math.Abs(x) >= th {
				c++
			}
		}
		return float64(c) / float64(n)
	}
	errSingle := math.Abs(fracAt(single) - ratio)
	errMulti := math.Abs(fracAt(multi) - ratio)
	if errMulti > errSingle*1.5 {
		t.Errorf("multi-stage err %v much worse than single %v", errMulti, errSingle)
	}
}

func TestMultiStageDegeneratesToSingle(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	if MultiStageExpThreshold(v, 0.3, 1) != ExpThreshold(v, 0.3) {
		t.Fatal("stages=1 should equal single stage")
	}
	if MultiStageExpThreshold(v, 0.3, 0) != ExpThreshold(v, 0.3) {
		t.Fatal("stages=0 should equal single stage")
	}
}

func TestMultiStageEdges(t *testing.T) {
	v := []float64{1, 2}
	if !math.IsInf(MultiStageExpThreshold(v, 0, 3), 1) {
		t.Fatal("ratio 0 should give +Inf")
	}
	if MultiStageExpThreshold(v, 1, 3) != 0 {
		t.Fatal("ratio 1 should give 0")
	}
	if th := MultiStageExpThreshold([]float64{0, 0, 0}, 0.5, 3); th != 0 {
		t.Fatalf("all zeros gave %v", th)
	}
}

func TestMultiStageMonotoneInRatio(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		v := make([]float64, 2000)
		for i := range v {
			v[i] = r.Norm()
		}
		t1 := MultiStageExpThreshold(v, 0.2, 3)
		t2 := MultiStageExpThreshold(v, 0.02, 3)
		return t2 >= t1 // rarer selection needs a higher threshold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{4, 1, 3, 2}
	if Quantile(v, 0) != 1 || Quantile(v, 1) != 4 {
		t.Fatal("quantile extremes wrong")
	}
	if got := Quantile(v, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("median = %v, want 2.5", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// Input must not be mutated.
	if v[0] != 4 {
		t.Fatal("Quantile mutated input")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.LastY() != 0 || s.MinY() != 0 || s.MaxY() != 0 || s.TailMeanY(0.5) != 0 {
		t.Fatal("empty series summaries should be 0")
	}
	s.Append(0, 10)
	s.Append(1, 20)
	s.Append(2, 30)
	if s.MeanY() != 20 || s.LastY() != 30 || s.MinY() != 10 || s.MaxY() != 30 {
		t.Fatalf("series summaries wrong: %+v", s)
	}
	if got := s.TailMeanY(0.34); got != 30 { // last 1 element (ceil(0.34*3)=2? no: ceil(1.02)=2)
		// ceil(0.34*3)=ceil(1.02)=2 -> mean(20,30)=25
		if got != 25 {
			t.Fatalf("TailMeanY = %v", got)
		}
	}
	if got := s.TailMeanY(5); got != 20 { // clamped to all
		t.Fatalf("TailMeanY clamp = %v", got)
	}
}

func BenchmarkMultiStageExpThreshold(b *testing.B) {
	r := rng.New(3)
	v := make([]float64, 1<<20)
	for i := range v {
		v[i] = r.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MultiStageExpThreshold(v, 0.01, 3)
	}
}

// TestMultiStageDoesNotMutateInput is the regression test for a scratch
// aliasing bug: the stage filter used to ping-pong through a reslice of the
// input, overwriting the caller's gradient vector from the second stage on.
func TestMultiStageDoesNotMutateInput(t *testing.T) {
	r := rng.New(17)
	v := make([]float64, 5000)
	for i := range v {
		v[i] = r.Norm()
	}
	orig := append([]float64(nil), v...)
	for _, stages := range []int{2, 3, 5} {
		MultiStageExpThreshold(v, 0.01, stages)
		for i := range v {
			if v[i] != orig[i] {
				t.Fatalf("stages=%d: input mutated at %d: %v -> %v", stages, i, orig[i], v[i])
			}
		}
	}
}

// TestMultiStageScratchReuseStable: a reused scratch must produce the same
// threshold as a fresh one, with zero steady-state allocations.
func TestMultiStageScratchReuseStable(t *testing.T) {
	r := rng.New(23)
	v := make([]float64, 3000)
	for i := range v {
		v[i] = r.Norm()
	}
	var s ExpFitScratch
	want := MultiStageExpThreshold(v, 0.02, 3)
	for i := 0; i < 5; i++ {
		if got := MultiStageExpThresholdScratch(v, 0.02, 3, &s); got != want {
			t.Fatalf("reused scratch run %d: %v, want %v", i, got, want)
		}
	}
	if a := testing.AllocsPerRun(10, func() { MultiStageExpThresholdScratch(v, 0.02, 3, &s) }); a != 0 {
		t.Errorf("warmed scratch allocates %v per run, want 0", a)
	}
}
