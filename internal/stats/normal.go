package stats

import "math"

// NormalQuantile returns Φ⁻¹(p), the standard normal inverse CDF, using
// Acklam's rational approximation (relative error < 1.15e-9 over (0,1)).
// Used by the Gaussian-k sparsifier to convert a target density into a
// magnitude threshold.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var q, r float64
	switch {
	case p < pLow:
		q = math.Sqrt(-2 * math.Log(p))
		return (((((c0*q+c1)*q+c2)*q+c3)*q+c4)*q + c5) /
			((((d0*q+d1)*q+d2)*q+d3)*q + 1)
	case p <= pHigh:
		q = p - 0.5
		r = q * q
		return (((((a0*r+a1)*r+a2)*r+a3)*r+a4)*r + a5) * q /
			(((((b0*r+b1)*r+b2)*r+b3)*r+b4)*r + 1)
	default:
		q = math.Sqrt(-2 * math.Log(1-p))
		return -(((((c0*q+c1)*q+c2)*q+c3)*q+c4)*q + c5) /
			((((d0*q+d1)*q+d2)*q+d3)*q + 1)
	}
}

// Acklam's coefficients.
const (
	a0 = -3.969683028665376e+01
	a1 = 2.209460984245205e+02
	a2 = -2.759285104469687e+02
	a3 = 1.383577518672690e+02
	a4 = -3.066479806614716e+01
	a5 = 2.506628277459239e+00

	b0 = -5.447609879822406e+01
	b1 = 1.615858368580409e+02
	b2 = -1.556989798598866e+02
	b3 = 6.680131188771972e+01
	b4 = -1.328068155288572e+01

	c0 = -7.784894002430293e-03
	c1 = -3.223964580411365e-01
	c2 = -2.400758277161838e+00
	c3 = -2.549732539343734e+00
	c4 = 4.374664141464968e+00
	c5 = 2.938163982698783e+00

	d0 = 7.784695709041462e-03
	d1 = 3.224671290700398e-01
	d2 = 2.445134137142996e+00
	d3 = 3.754408661907416e+00
)

// GaussianThreshold returns the magnitude threshold that keeps fraction
// ratio of samples under a two-sided N(0, σ²) model fitted to v:
// t = σ·Φ⁻¹(1 − ratio/2).
func GaussianThreshold(v []float64, ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(1)
	}
	if ratio >= 1 {
		return 0
	}
	sigma := math.Sqrt(meanSquare(v))
	if sigma == 0 {
		return 0
	}
	return sigma * NormalQuantile(1-ratio/2)
}

func meanSquare(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return s / float64(len(v))
}
