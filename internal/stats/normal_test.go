package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447460685429, 1}, // Φ(1)
		{0.9772498680518208, 2}, // Φ(2)
		{0.15865525393145707, -1},
		{0.975, 1.959963984540054},
		{0.001, -3.090232306167813},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("p=0 should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("p=1 should be +Inf")
	}
}

func TestNormalQuantileRoundTripWithErf(t *testing.T) {
	// Φ(Φ⁻¹(p)) = p, with Φ from math.Erf.
	phi := func(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }
	for _, p := range []float64{0.0001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.9999} {
		if got := phi(NormalQuantile(p)); math.Abs(got-p) > 1e-8 {
			t.Errorf("round trip p=%v gave %v", p, got)
		}
	}
}

func TestGaussianThresholdSelectsTargetFraction(t *testing.T) {
	r := rng.New(1)
	v := make([]float64, 200000)
	for i := range v {
		v[i] = r.Norm() * 2.5
	}
	for _, ratio := range []float64{0.1, 0.01} {
		th := GaussianThreshold(v, ratio)
		count := 0
		for _, x := range v {
			if math.Abs(x) >= th {
				count++
			}
		}
		frac := float64(count) / float64(len(v))
		if frac < ratio*0.7 || frac > ratio*1.4 {
			t.Errorf("ratio %v: selected %v", ratio, frac)
		}
	}
}

func TestGaussianThresholdEdges(t *testing.T) {
	v := []float64{1, 2}
	if !math.IsInf(GaussianThreshold(v, 0), 1) {
		t.Error("ratio 0 should be +Inf")
	}
	if GaussianThreshold(v, 1) != 0 {
		t.Error("ratio 1 should be 0")
	}
	if GaussianThreshold([]float64{0, 0}, 0.5) != 0 {
		t.Error("zero data should give 0")
	}
	if GaussianThreshold(nil, 0.5) != 0 {
		t.Error("empty data should give 0")
	}
}
