// Package stats provides the statistical machinery used by the SIDCo
// sparsifier (threshold estimation by fitting a sparsity-inducing
// distribution to the gradient magnitudes) and by the experiment harness
// (running summaries of measured series).
//
// SIDCo (Abdelmoniem et al., MLSys 2021) models gradient magnitudes with a
// sparsity-inducing distribution and picks the threshold at the quantile
// that yields the target density. We implement its multi-stage exponential
// fit: fit |g| ~ Exp(λ), take the threshold for the target ratio, restrict
// to the selected sub-population and repeat, which sharpens the estimate on
// heavy-tailed data exactly as the paper describes.
package stats

import (
	"math"
	"slices"
)

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// MeanAbs returns the mean of |v[i]|.
func MeanAbs(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s / float64(len(v))
}

// ExpThreshold returns the threshold t such that, under the maximum
// likelihood exponential fit to the magnitudes |v|, the expected fraction
// of elements with |x| >= t equals ratio. For Exp(λ), P(X >= t) = e^{-λt},
// so t = -ln(ratio)/λ with λ = 1/mean(|v|).
func ExpThreshold(v []float64, ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(1)
	}
	if ratio >= 1 {
		return 0
	}
	mean := MeanAbs(v)
	if mean == 0 {
		return 0
	}
	return -math.Log(ratio) * mean
}

// MultiStageExpThreshold implements SIDCo's iterative refinement. At each
// stage the exponential model is fit to the currently surviving
// sub-population and the threshold is moved to the quantile that leaves the
// overall target ratio. stages <= 1 degenerates to ExpThreshold.
//
// The per-stage target follows the SIDCo construction: after stage j the
// surviving fraction should be ratio^{(j+1)/stages}, so each stage keeps
// fraction ratio^{1/stages} of its input.
func MultiStageExpThreshold(v []float64, ratio float64, stages int) float64 {
	var s ExpFitScratch
	return MultiStageExpThresholdScratch(v, ratio, stages, &s)
}

// ExpFitScratch holds the surviving-population filter buffers of
// MultiStageExpThresholdScratch. The zero value is ready; buffers are
// retained across calls so a warmed scratch performs no allocations.
type ExpFitScratch struct {
	a, b []float64
}

// MultiStageExpThresholdScratch is the scratch-buffer form of
// MultiStageExpThreshold. The input v is never written (an earlier version
// ping-ponged the filter buffer with a reslice of v and corrupted the
// caller's gradient vector from the second stage on — the filter buffers
// now live entirely in the scratch).
func MultiStageExpThresholdScratch(v []float64, ratio float64, stages int, scratch *ExpFitScratch) float64 {
	if stages <= 1 {
		return ExpThreshold(v, ratio)
	}
	if ratio <= 0 {
		return math.Inf(1)
	}
	if ratio >= 1 {
		return 0
	}
	perStage := math.Pow(ratio, 1/float64(stages))
	cur := v
	threshold := 0.0
	cutNext, cutAfter := scratch.a[:0], scratch.b[:0]
	for s := 0; s < stages; s++ {
		mean := MeanAbs(cur)
		if mean == 0 || len(cur) == 0 {
			break
		}
		// Threshold for the conditional distribution above the previous
		// threshold: memorylessness of the exponential gives an additive
		// update.
		threshold += -math.Log(perStage) * mean
		if s == stages-1 {
			break
		}
		cutNext = cutNext[:0]
		for _, x := range cur {
			if a := math.Abs(x); a >= threshold {
				cutNext = append(cutNext, a-threshold)
			}
		}
		if len(cutNext) == 0 {
			break
		}
		cur, cutNext, cutAfter = cutNext, cutAfter, cutNext
	}
	// Persist grown buffers for the next call. cur may alias one of them;
	// the rotation above keeps v itself out of the buffer pair.
	if cap(cutNext) > cap(scratch.a) || cap(cutAfter) > cap(scratch.b) {
		scratch.a, scratch.b = cutNext[:0], cutAfter[:0]
	}
	return threshold
}

// Quantile returns the q-quantile (0 <= q <= 1) of v using linear
// interpolation over the sorted copy. Empty input returns 0.
func Quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := make([]float64, len(v))
	copy(s, v)
	slices.Sort(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Series accumulates a named sequence of (x, y) measurements, e.g. density
// per iteration or accuracy per epoch, and renders summaries for the
// experiment reports.
type Series struct {
	Name string    `json:"name,omitempty"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// Append adds one measurement.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// MeanY returns the mean of the recorded y values.
func (s *Series) MeanY() float64 { return Mean(s.Y) }

// LastY returns the final y value (0 if empty).
func (s *Series) LastY() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// MinY and MaxY return extremes of y (0 if empty).
func (s *Series) MinY() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	m := s.Y[0]
	for _, y := range s.Y[1:] {
		if y < m {
			m = y
		}
	}
	return m
}

// MaxY returns the maximum recorded y value.
func (s *Series) MaxY() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	m := s.Y[0]
	for _, y := range s.Y[1:] {
		if y > m {
			m = y
		}
	}
	return m
}

// TailMeanY returns the mean of the last frac fraction of y values,
// a robust "converged value" summary. frac is clamped to (0, 1].
func (s *Series) TailMeanY(frac float64) float64 {
	if len(s.Y) == 0 {
		return 0
	}
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	n := int(math.Ceil(frac * float64(len(s.Y))))
	return Mean(s.Y[len(s.Y)-n:])
}
