package binpack

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func covers(a *Assignment, n int) bool {
	seen := make([]bool, n)
	total := 0
	for _, bin := range a.Bins {
		for _, item := range bin {
			if item < 0 || item >= n || seen[item] {
				return false
			}
			seen[item] = true
			total++
		}
	}
	return total == n
}

func randomCosts(seed uint64, maxN int) []float64 {
	r := rng.New(seed)
	n := 1 + r.Intn(maxN)
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = math.Abs(r.Norm()) * 100
	}
	return costs
}

func TestAllPoliciesPlaceEveryItemOnce(t *testing.T) {
	policies := map[string]func([]float64, int) *Assignment{
		"lpt": LPT, "roundrobin": RoundRobin, "contiguous": Contiguous,
	}
	for name, policy := range policies {
		f := func(seed uint64) bool {
			r := rng.New(seed)
			costs := randomCosts(seed, 200)
			nBins := 1 + r.Intn(20)
			return covers(policy(costs, nBins), len(costs))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLoadsMatchBinContents(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		costs := randomCosts(seed, 100)
		a := LPT(costs, 1+r.Intn(10))
		for b, bin := range a.Bins {
			sum := 0.0
			for _, item := range bin {
				sum += costs[item]
			}
			if math.Abs(sum-a.Load[b]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// LPT makespan guarantee: maxLoad <= 4/3 * OPT + max/3. Since OPT >= total/nBins
// and OPT >= maxItem, we assert the sound bound maxLoad <= 4/3*LB + maxItem/3
// where LB = max(total/nBins, maxItem).
func TestLPTMakespanBound(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		costs := randomCosts(seed, 300)
		nBins := 1 + r.Intn(16)
		a := LPT(costs, nBins)
		total, maxItem := 0.0, 0.0
		for _, c := range costs {
			total += c
			if c > maxItem {
				maxItem = c
			}
		}
		lb := total / float64(nBins)
		if maxItem > lb {
			lb = maxItem
		}
		return a.MaxLoad() <= 4.0/3.0*lb+maxItem/3.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLPTBeatsOrMatchesNaivePolicies(t *testing.T) {
	// On heterogeneous costs LPT's makespan should not exceed contiguous
	// chunking (which concentrates heavy prefixes).
	costs := []float64{100, 90, 1, 1, 1, 1, 1, 1}
	lpt := LPT(costs, 2).MaxLoad()
	cont := Contiguous(costs, 2).MaxLoad()
	if lpt > cont {
		t.Fatalf("LPT makespan %v worse than contiguous %v", lpt, cont)
	}
	// Exact check: LPT on {100,90,1*6} with 2 bins -> bins {100,1,1} vs {90,1,1,1,1}: loads 102 / 94? Recompute:
	// items sorted: 100,90,1,1,1,1,1,1 -> bin0:100, bin1:90, bin1:+1(91), bin1... until equal.
	if lpt >= 190 {
		t.Fatalf("LPT did not spread: %v", lpt)
	}
}

func TestLPTDeterministic(t *testing.T) {
	costs := randomCosts(42, 150)
	a := LPT(costs, 7)
	b := LPT(costs, 7)
	for i := range a.Bins {
		if len(a.Bins[i]) != len(b.Bins[i]) {
			t.Fatal("LPT not deterministic")
		}
		for j := range a.Bins[i] {
			if a.Bins[i][j] != b.Bins[i][j] {
				t.Fatal("LPT not deterministic")
			}
		}
	}
}

func TestSingleBin(t *testing.T) {
	costs := []float64{3, 1, 2}
	a := LPT(costs, 1)
	if len(a.Bins[0]) != 3 || math.Abs(a.Load[0]-6) > 1e-12 {
		t.Fatalf("single bin wrong: %+v", a)
	}
}

func TestMoreBinsThanItems(t *testing.T) {
	costs := []float64{5, 3}
	a := LPT(costs, 4)
	if !covers(a, 2) {
		t.Fatal("items lost")
	}
	nonEmpty := 0
	for _, bin := range a.Bins {
		if len(bin) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Fatalf("expected 2 non-empty bins, got %d", nonEmpty)
	}
}

func TestEmptyItems(t *testing.T) {
	for _, policy := range []func([]float64, int) *Assignment{LPT, RoundRobin, Contiguous} {
		a := policy(nil, 3)
		if a.MaxLoad() != 0 || a.MinLoad() != 0 {
			t.Fatal("empty items should give zero loads")
		}
	}
}

func TestPanicsOnZeroBins(t *testing.T) {
	for _, policy := range []func([]float64, int) *Assignment{LPT, RoundRobin, Contiguous} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for 0 bins")
				}
			}()
			policy([]float64{1}, 0)
		}()
	}
}

func TestZeroCostItemsStillPlaced(t *testing.T) {
	costs := []float64{0, 0, 0, 5}
	a := LPT(costs, 2)
	if !covers(a, 4) {
		t.Fatal("zero-cost items must still be placed")
	}
}

func TestMaxMinLoad(t *testing.T) {
	a := &Assignment{Load: []float64{3, 9, 1}}
	if a.MaxLoad() != 9 || a.MinLoad() != 1 {
		t.Fatalf("MaxLoad/MinLoad wrong: %v %v", a.MaxLoad(), a.MinLoad())
	}
	empty := &Assignment{}
	if empty.MaxLoad() != 0 || empty.MinLoad() != 0 {
		t.Fatal("empty assignment loads should be 0")
	}
}

func BenchmarkLPT_1000items_32bins(b *testing.B) {
	costs := randomCosts(7, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LPT(costs, 32)
	}
}
