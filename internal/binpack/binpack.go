// Package binpack implements the load-balancing allocators used by DEFT's
// layer-to-worker assignment (paper §4.3, Algorithm 4) plus two simpler
// policies used as ablation baselines.
//
// The paper's policy is the classical LPT (longest processing time) greedy:
// repeatedly take the most expensive unallocated item and place it in the
// currently lightest bin. LPT guarantees makespan ≤ 4/3·OPT + 1/3·max.
package binpack

// Assignment maps bins to the item indices they hold. Bins[b] lists item
// indices placed in bin b, in placement order.
type Assignment struct {
	Bins [][]int   // item indices per bin
	Load []float64 // total cost per bin
}

// MaxLoad returns the largest bin load (the makespan).
func (a *Assignment) MaxLoad() float64 {
	m := 0.0
	for _, l := range a.Load {
		if l > m {
			m = l
		}
	}
	return m
}

// MinLoad returns the smallest bin load.
func (a *Assignment) MinLoad() float64 {
	if len(a.Load) == 0 {
		return 0
	}
	m := a.Load[0]
	for _, l := range a.Load[1:] {
		if l < m {
			m = l
		}
	}
	return m
}

// Reset prepares the assignment for reuse with nBins bins: bin and load
// slices are truncated in place, reallocating only when the bin count grew.
// Fresh zero-value Assignments work too.
func (a *Assignment) Reset(nBins int) {
	if cap(a.Bins) < nBins {
		a.Bins = make([][]int, nBins)
	}
	a.Bins = a.Bins[:nBins]
	for b := range a.Bins {
		a.Bins[b] = a.Bins[b][:0]
	}
	if cap(a.Load) < nBins {
		a.Load = make([]float64, nBins)
	}
	a.Load = a.Load[:nBins]
	for b := range a.Load {
		a.Load[b] = 0
	}
}

// LPT allocates items (given by their costs) to nBins bins with the
// longest-processing-time greedy used by Algorithm 4: the costliest
// remaining item goes to the currently lightest bin. Ties on bin load break
// toward the lowest bin index, matching the argmin in the pseudocode.
// It panics if nBins <= 0.
func LPT(costs []float64, nBins int) *Assignment {
	a := &Assignment{}
	LPTInto(costs, nBins, a, nil)
	return a
}

// LPTInto is the scratch-buffer form of LPT: the assignment a is reset and
// filled in place, and order (if non-nil and large enough) is used for the
// cost-sorted item permutation. In steady state (stable item count and bin
// count) it performs zero heap allocations beyond slice growth on the first
// call.
func LPTInto(costs []float64, nBins int, a *Assignment, order []int) {
	if nBins <= 0 {
		panic("binpack: LPT with non-positive bin count")
	}
	a.Reset(nBins)
	if cap(order) < len(costs) {
		order = make([]int, len(costs))
	}
	order = order[:len(costs)]
	for i := range order {
		order[i] = i
	}
	// Insertion sort, descending by cost with ascending-index tie-break:
	// stable, allocation-free, and fast for the O(100) fragment counts the
	// partition produces.
	for i := 1; i < len(order); i++ {
		j := i
		for j > 0 && lessCost(costs, order[j], order[j-1]) {
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
	for _, item := range order {
		b := argMinLoad(a.Load)
		a.Bins[b] = append(a.Bins[b], item)
		a.Load[b] += costs[item]
	}
}

// lessCost orders items descending by cost, ascending by index on ties —
// the LPT priority.
func lessCost(costs []float64, x, y int) bool {
	if costs[x] != costs[y] {
		return costs[x] > costs[y]
	}
	return x < y
}

// RoundRobin allocates item i to bin i mod nBins, ignoring costs. Ablation
// baseline: no load awareness at all.
func RoundRobin(costs []float64, nBins int) *Assignment {
	if nBins <= 0 {
		panic("binpack: RoundRobin with non-positive bin count")
	}
	a := &Assignment{
		Bins: make([][]int, nBins),
		Load: make([]float64, nBins),
	}
	for i, c := range costs {
		b := i % nBins
		a.Bins[b] = append(a.Bins[b], i)
		a.Load[b] += c
	}
	return a
}

// Contiguous splits items into nBins consecutive runs of (nearly) equal
// item count, preserving order. Ablation baseline: what you get by naively
// chunking the layer list.
func Contiguous(costs []float64, nBins int) *Assignment {
	if nBins <= 0 {
		panic("binpack: Contiguous with non-positive bin count")
	}
	a := &Assignment{
		Bins: make([][]int, nBins),
		Load: make([]float64, nBins),
	}
	n := len(costs)
	for b := 0; b < nBins; b++ {
		lo := b * n / nBins
		hi := (b + 1) * n / nBins
		for i := lo; i < hi; i++ {
			a.Bins[b] = append(a.Bins[b], i)
			a.Load[b] += costs[i]
		}
	}
	return a
}

func argMinLoad(load []float64) int {
	best, bi := load[0], 0
	for i := 1; i < len(load); i++ {
		if load[i] < best {
			best, bi = load[i], i
		}
	}
	return bi
}
