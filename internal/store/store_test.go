package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func openT(t *testing.T, root string) (*Store, *OpenReport) {
	t.Helper()
	s, rep, err := Open(root)
	if err != nil {
		t.Fatalf("Open(%s): %v", root, err)
	}
	return s, rep
}

// TestPutGetRoundTrip: blobs come back byte-identical under a manifest
// that names and checksums them.
func TestPutGetRoundTrip(t *testing.T) {
	s, _ := openT(t, t.TempDir())
	result := []byte(`{"workload":"mlp","train_loss":{"x":[1],"y":[0.5]}}`)
	ckpt := bytes.Repeat([]byte{0xDE, 0xF7}, 512)

	m, err := s.Put("abcd1234", "mlp-deft", result, ckpt)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if m.Version != 1 || m.Format != Format || m.SpecHash != "abcd1234" || m.Name != "mlp-deft" {
		t.Fatalf("manifest %+v", m)
	}
	if m.Checkpoint == nil || m.Checkpoint.SizeBytes != int64(len(ckpt)) {
		t.Fatalf("checkpoint info %+v", m.Checkpoint)
	}

	e, err := s.Get("abcd1234")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(e.Result, result) || !bytes.Equal(e.Checkpoint, ckpt) {
		t.Fatal("round trip lost bytes")
	}
	if !s.Has("abcd1234") || s.Len() != 1 {
		t.Fatalf("Has/Len wrong: %v %d", s.Has("abcd1234"), s.Len())
	}
	if _, err := s.Get("ffff0000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing entry: %v", err)
	}
	if ms := s.List(); len(ms) != 1 || ms[0].SpecHash != "abcd1234" {
		t.Fatalf("List: %+v", ms)
	}
}

// TestPutVersionsSupersede: a second Put bumps the version, serves the
// new bytes, and garbage-collects the old blob files.
func TestPutVersionsSupersede(t *testing.T) {
	s, _ := openT(t, t.TempDir())
	if _, err := s.Put("h1", "n", []byte("v1"), nil); err != nil {
		t.Fatal(err)
	}
	m2, err := s.Put("h1", "n", []byte("v2-longer"), []byte("ck"))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != 2 {
		t.Fatalf("version %d, want 2", m2.Version)
	}
	e, err := s.Get("h1")
	if err != nil {
		t.Fatal(err)
	}
	if string(e.Result) != "v2-longer" || string(e.Checkpoint) != "ck" {
		t.Fatalf("got %q/%q", e.Result, e.Checkpoint)
	}
	if _, err := os.Stat(filepath.Join(s.objectDir("h1"), "result.v1.json")); !os.IsNotExist(err) {
		t.Error("superseded v1 blob not collected")
	}
}

// TestCorruptBlobQuarantined: flip one bit on disk — the read detects
// the checksum mismatch, quarantines the entry whole, and the hash
// reads as not-found afterwards (it will re-train).
func TestCorruptBlobQuarantined(t *testing.T) {
	root := t.TempDir()
	s, _ := openT(t, root)
	if _, err := s.Put("h1", "n", []byte(`{"ok":true}`), []byte("ckpt")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.objectDir("h1"), "result.v1.json")
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err := s.Get("h1")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt read: %v", err)
	}
	if s.Has("h1") || s.Len() != 0 {
		t.Error("corrupt entry still present")
	}
	if s.QuarantineLen() != 1 {
		t.Fatalf("quarantined %d entries, want 1", s.QuarantineLen())
	}
	if _, err := s.Get("h1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after quarantine: %v", err)
	}
	// The quarantined dir keeps the evidence: manifest plus the bad blob.
	ents, _ := os.ReadDir(s.quarantineDir())
	if len(ents) != 1 || !strings.HasPrefix(ents[0].Name(), "h1.v1.result") {
		t.Fatalf("quarantine contents: %v", ents)
	}

	// Re-training the hash commits version 2: the lineage stays ordered
	// past the quarantined version.
	m, err := s.Put("h1", "n", []byte("retrained"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 2 {
		t.Fatalf("post-quarantine version %d, want 2", m.Version)
	}
	if e, err := s.Get("h1"); err != nil || string(e.Result) != "retrained" {
		t.Fatalf("retrained read: %v %q", err, e.Result)
	}
}

// TestTruncatedBlobQuarantined: a torn write (size mismatch) is
// detected before hashing and quarantined the same way.
func TestTruncatedBlobQuarantined(t *testing.T) {
	s, _ := openT(t, t.TempDir())
	if _, err := s.Put("h2", "n", []byte("0123456789"), nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.objectDir("h2"), "result.v1.json")
	if err := os.WriteFile(path, []byte("0123"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("h2"); !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn read: %v", err)
	}
	if s.QuarantineLen() != 1 {
		t.Error("torn entry not quarantined")
	}
}

// TestFaultInjection: the three scheduled faults fire deterministically
// on their put ordinal and produce exactly the failure they model.
func TestFaultInjection(t *testing.T) {
	t.Run("enospc", func(t *testing.T) {
		s, _ := openT(t, t.TempDir())
		s.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultENOSPC, Hash: "h1"}}})
		if _, err := s.Put("h1", "n", []byte("x"), nil); !errors.Is(err, ErrNoSpace) {
			t.Fatalf("want injected ENOSPC, got %v", err)
		}
		if s.Has("h1") {
			t.Error("failed put left an entry")
		}
		// Only the first put of h1 is scheduled: the retry lands.
		if _, err := s.Put("h1", "n", []byte("x"), nil); err != nil {
			t.Fatalf("second put: %v", err)
		}
	})
	t.Run("torn", func(t *testing.T) {
		s, _ := openT(t, t.TempDir())
		s.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultTorn, Hash: "*", Put: 1}}})
		if _, err := s.Put("h1", "n", []byte("0123456789"), nil); err != nil {
			t.Fatalf("torn put should commit (the tear is silent): %v", err)
		}
		if _, err := s.Get("h1"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("torn blob served: %v", err)
		}
		if s.QuarantineLen() != 1 {
			t.Error("torn blob not quarantined")
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		s, _ := openT(t, t.TempDir())
		s.SetFaultPlan(&FaultPlan{Faults: []Fault{{Kind: FaultBitFlip, Hash: "h9", Put: 2}}})
		if _, err := s.Put("h9", "n", []byte("0123456789"), nil); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get("h9"); err != nil {
			t.Fatalf("put 1 is unscheduled, read should verify: %v", err)
		}
		if _, err := s.Put("h9", "n", []byte("0123456789"), nil); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get("h9"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit-flipped blob served: %v", err)
		}
	})
}

// TestFaultPlanValidate covers the rejection paths.
func TestFaultPlanValidate(t *testing.T) {
	if err := (&FaultPlan{Faults: []Fault{{Kind: "melt"}}}).Validate(); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := (&FaultPlan{Faults: []Fault{{Kind: FaultTorn, Put: -1}}}).Validate(); err == nil {
		t.Error("negative ordinal accepted")
	}
	if err := (&FaultPlan{Faults: []Fault{{Kind: FaultENOSPC, Hash: "*"}}}).Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	var nilPlan *FaultPlan
	if err := nilPlan.Validate(); err != nil || !nilPlan.Empty() {
		t.Error("nil plan should validate and be empty")
	}
}

// TestOpenSweepsAndQuarantines: a reopened store removes staging
// leftovers and unreferenced blob versions, and quarantines entries
// whose manifest is damaged — the crash-recovery scan.
func TestOpenSweepsAndQuarantines(t *testing.T) {
	root := t.TempDir()
	s, _ := openT(t, root)
	if _, err := s.Put("good", "n", []byte("ok"), nil); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-put: staging file in tmp/, a stray
	// half-written next-version blob, and an entry with a mangled
	// manifest.
	if err := os.WriteFile(filepath.Join(root, "tmp", "result.v2.json.123"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.objectDir("good"), "result.v2.json"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(s.objectDir("bad"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.objectDir("bad"), manifestFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rep := openT(t, root)
	if rep.Objects != 1 || rep.Quarantined != 1 || rep.Swept != 2 {
		t.Fatalf("report %+v, want 1 object, 1 quarantined, 2 swept", rep)
	}
	if e, err := s2.Get("good"); err != nil || string(e.Result) != "ok" {
		t.Fatalf("surviving entry: %v", err)
	}
	if s2.Has("bad") {
		t.Error("damaged entry still present")
	}
	if s2.QuarantineLen() != 1 {
		t.Error("damaged entry not quarantined")
	}
}

// TestConcurrentPutGet is the race-coverage test: many goroutines
// hammer distinct and shared hashes; every successful Get must verify.
func TestConcurrentPutGet(t *testing.T) {
	s, _ := openT(t, t.TempDir())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				hash := fmt.Sprintf("h%d", i%4) // 4 shared hashes
				payload := []byte(fmt.Sprintf(`{"g":%d,"i":%d}`, g, i))
				if _, err := s.Put(hash, "n", payload, nil); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				e, err := s.Get(hash)
				if err != nil {
					// A concurrent writer may be mid-supersede; corruption
					// would quarantine, which concurrent valid puts must not.
					if errors.Is(err, ErrCorrupt) {
						t.Errorf("valid concurrent puts produced corruption: %v", err)
					}
					continue
				}
				if len(e.Result) == 0 {
					t.Error("empty verified read")
				}
			}
		}(g)
	}
	wg.Wait()
	if s.QuarantineLen() != 0 {
		t.Errorf("%d entries quarantined by healthy concurrency", s.QuarantineLen())
	}
}
