// Package store is the crash-safe, content-addressed artifact store
// behind deft-serve's durability: one entry per canonical spec hash,
// holding the run's result JSON, an optional checkpoint blob (the
// train.SaveParams parameter state), and a versioned manifest naming
// both with sizes and SHA-256 checksums — the name/version/checksum
// model of MLModelScope's declarative model manifests, in JSON.
//
// Layout under the root directory:
//
//	objects/<hash>/manifest.json     commit point; names the blob files
//	objects/<hash>/result.v<N>.json  result JSON, checksummed
//	objects/<hash>/checkpoint.v<N>.bin
//	quarantine/<hash>.v<N>.<reason>/ corrupt entries, moved aside whole
//	tmp/                             staging for atomic writes
//
// Every write goes temp file → fsync → rename, and the manifest is
// renamed into place last, so a crash at any instant leaves either the
// previous committed state or a stray staging file that Open sweeps.
// Blob files are versioned (the manifest's version names them), so a
// torn Put can never alias a committed blob. Every read re-hashes the
// blobs against the manifest; a mismatch moves the whole entry to the
// quarantine directory — a quarantined artifact is never served again,
// and its hash simply re-trains.
//
// The store is safe for concurrent use by one process. Cross-process
// sharing works for readers (entries are immutable once committed);
// concurrent writers of the same hash race benignly — both write valid
// artifacts, last rename wins.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Format identifies the on-disk manifest schema.
const Format = "deft-artifact/1"

// Sentinel errors. ErrCorrupt always arrives wrapped with the failing
// blob and reason; the entry has already been quarantined when a Get
// returns it.
var (
	ErrNotFound = errors.New("store: no such entry")
	ErrCorrupt  = errors.New("store: entry corrupt")
	// ErrNoSpace is the synthetic disk-full failure injected by a fault
	// plan (kind "enospc"); real ENOSPC surfaces as the OS error.
	ErrNoSpace = errors.New("store: no space left on device (injected)")
)

// BlobInfo names one stored blob with its integrity record.
type BlobInfo struct {
	File      string `json:"file"`
	SizeBytes int64  `json:"size_bytes"`
	SHA256    string `json:"sha256"`
}

// Manifest is the versioned, declarative description of one artifact:
// what it is (name, spec hash), which blobs realise it, and how to
// verify them. It is the entry's commit record — an entry exists iff
// its manifest does.
type Manifest struct {
	Name        string    `json:"name"`
	Version     int       `json:"version"`
	Format      string    `json:"format"`
	SpecHash    string    `json:"spec_hash"`
	CreatedUnix int64     `json:"created_unix"`
	Result      BlobInfo  `json:"result"`
	Checkpoint  *BlobInfo `json:"checkpoint,omitempty"`
}

// Entry is a verified read: the manifest plus the blob bytes, each
// re-hashed against its checksum.
type Entry struct {
	Manifest   Manifest
	Result     []byte
	Checkpoint []byte // nil when the artifact has no checkpoint blob
}

// OpenReport summarises what Open found and repaired.
type OpenReport struct {
	Objects     int // committed entries available
	Quarantined int // entries moved to quarantine (unreadable manifest)
	Swept       int // stray staging/blob files removed
}

// Store is a handle on one root directory. Create with Open.
type Store struct {
	root string

	// fsMu orders this process's filesystem transactions: Put holds it
	// exclusively across its read-version/write-blobs/commit sequence
	// (two writers of one hash must not pick the same version), readers
	// share it so a verified read never observes a supersede mid-GC.
	fsMu sync.RWMutex

	mu      sync.Mutex
	plan    *FaultPlan
	putSeq  map[string]int // per-hash put ordinal, for fault matching
	putsAll int            // global put ordinal, for wildcard faults
}

// Open prepares the directory layout, sweeps staging leftovers from a
// previous crash, and quarantines entries whose manifest is unreadable.
// Blob corruption is detected lazily, on Get, where the checksum is
// verified anyway.
func Open(root string) (*Store, *OpenReport, error) {
	s := &Store{root: root, putSeq: map[string]int{}}
	for _, d := range []string{s.objectsDir(), s.quarantineDir(), s.tmpDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, nil, fmt.Errorf("store: open: %w", err)
		}
	}
	rep := &OpenReport{}
	// Staging files are never referenced by a committed manifest: anything
	// left in tmp/ is a torn write from a crashed process.
	if names, err := os.ReadDir(s.tmpDir()); err == nil {
		for _, e := range names {
			if os.RemoveAll(filepath.Join(s.tmpDir(), e.Name())) == nil {
				rep.Swept++
			}
		}
	}
	ents, err := os.ReadDir(s.objectsDir())
	if err != nil {
		return nil, nil, fmt.Errorf("store: open: %w", err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		hash := e.Name()
		m, err := s.readManifest(hash)
		if err != nil {
			// No committed manifest: the entry never existed (crash before
			// the first commit) or its commit record is damaged. Either way
			// nothing here is servable — quarantine the remains.
			s.quarantine(hash, 0, "manifest")
			rep.Quarantined++
			continue
		}
		rep.Objects++
		// Sweep blob files the manifest doesn't reference: stale versions
		// or a torn half-written successor put.
		keep := map[string]bool{manifestFile: true, m.Result.File: true}
		if m.Checkpoint != nil {
			keep[m.Checkpoint.File] = true
		}
		if files, err := os.ReadDir(s.objectDir(hash)); err == nil {
			for _, f := range files {
				if !keep[f.Name()] {
					if os.Remove(filepath.Join(s.objectDir(hash), f.Name())) == nil {
						rep.Swept++
					}
				}
			}
		}
	}
	return s, rep, nil
}

// SetFaultPlan attaches a deterministic store-fault schedule (nil
// clears it). Faults fire as a pure function of the put sequence, so a
// replayed run hits them identically.
func (s *Store) SetFaultPlan(p *FaultPlan) {
	s.mu.Lock()
	s.plan = p
	s.mu.Unlock()
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

const manifestFile = "manifest.json"

func (s *Store) objectsDir() string        { return filepath.Join(s.root, "objects") }
func (s *Store) objectDir(h string) string { return filepath.Join(s.objectsDir(), h) }
func (s *Store) quarantineDir() string     { return filepath.Join(s.root, "quarantine") }
func (s *Store) tmpDir() string            { return filepath.Join(s.root, "tmp") }

func (s *Store) readManifest(hash string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(s.objectDir(hash), manifestFile))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	if m.Format != Format {
		return nil, fmt.Errorf("store: manifest format %q, want %q", m.Format, Format)
	}
	return &m, nil
}

// Has reports whether a committed entry exists for hash (manifest
// presence only; blob integrity is checked by Get).
func (s *Store) Has(hash string) bool {
	_, err := s.readManifest(hash)
	return err == nil
}

// Len counts committed entries.
func (s *Store) Len() int {
	ents, err := os.ReadDir(s.objectsDir())
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if e.IsDir() && s.Has(e.Name()) {
			n++
		}
	}
	return n
}

// QuarantineLen counts quarantined entries.
func (s *Store) QuarantineLen() int {
	ents, err := os.ReadDir(s.quarantineDir())
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if e.IsDir() {
			n++
		}
	}
	return n
}

// List returns every committed manifest, sorted by spec hash.
func (s *Store) List() []Manifest {
	ents, err := os.ReadDir(s.objectsDir())
	if err != nil {
		return nil
	}
	var out []Manifest
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if m, err := s.readManifest(e.Name()); err == nil {
			out = append(out, *m)
		}
	}
	slices.SortFunc(out, func(a, b Manifest) int { return strings.Compare(a.SpecHash, b.SpecHash) })
	return out
}

// hashBytes returns the hex SHA-256 of b.
func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Put commits an artifact for hash: result JSON plus an optional
// checkpoint blob, under a manifest whose version is one past any
// committed or quarantined predecessor. The write is crash-safe: blobs
// land under version-unique names via temp+fsync+rename, the manifest
// rename is the commit point, and the directory is fsynced after it.
// On success the previous version's blobs are garbage-collected.
func (s *Store) Put(hash, name string, result, checkpoint []byte) (*Manifest, error) {
	if hash == "" || strings.ContainsAny(hash, "/\\.") {
		return nil, fmt.Errorf("store: invalid hash %q", hash)
	}
	s.mu.Lock()
	s.putSeq[hash]++
	s.putsAll++
	fault := s.plan.match(hash, s.putSeq[hash], s.putsAll)
	s.mu.Unlock()
	if fault == FaultENOSPC {
		return nil, fmt.Errorf("store: put %s: %w", hash, ErrNoSpace)
	}

	s.fsMu.Lock()
	defer s.fsMu.Unlock()
	version := 1
	var oldResult, oldCkpt string
	if m, err := s.readManifest(hash); err == nil {
		version = m.Version + 1
		oldResult = m.Result.File
		if m.Checkpoint != nil {
			oldCkpt = m.Checkpoint.File
		}
	}
	// A re-trained artifact supersedes its quarantined predecessors:
	// version past the highest quarantined version too, so the lineage
	// stays totally ordered across corruption events.
	if qv := s.maxQuarantinedVersion(hash); qv >= version {
		version = qv + 1
	}

	m := &Manifest{
		Name:        name,
		Version:     version,
		Format:      Format,
		SpecHash:    hash,
		CreatedUnix: time.Now().Unix(),
		Result: BlobInfo{
			File:      fmt.Sprintf("result.v%d.json", version),
			SizeBytes: int64(len(result)),
			SHA256:    hashBytes(result),
		},
	}
	if checkpoint != nil {
		m.Checkpoint = &BlobInfo{
			File:      fmt.Sprintf("checkpoint.v%d.bin", version),
			SizeBytes: int64(len(checkpoint)),
			SHA256:    hashBytes(checkpoint),
		}
	}

	dir := s.objectDir(hash)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: put %s: %w", hash, err)
	}
	// Injected corruption models hardware that lies underneath a correct
	// manifest: the blob lands torn or bit-flipped while the manifest
	// records the intended bytes — exactly what the read-side checksum
	// exists to catch.
	blob := result
	switch fault {
	case FaultTorn:
		blob = result[:len(result)/2]
	case FaultBitFlip:
		blob = slices.Clone(result)
		blob[len(blob)/2] ^= 0x01
	}
	if err := s.writeBlob(dir, m.Result.File, blob); err != nil {
		return nil, fmt.Errorf("store: put %s: %w", hash, err)
	}
	if checkpoint != nil {
		if err := s.writeBlob(dir, m.Checkpoint.File, checkpoint); err != nil {
			return nil, fmt.Errorf("store: put %s: %w", hash, err)
		}
	}
	manifestJSON, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: put %s: %w", hash, err)
	}
	if err := s.writeBlob(dir, manifestFile, append(manifestJSON, '\n')); err != nil {
		return nil, fmt.Errorf("store: put %s: %w", hash, err)
	}
	if err := syncDir(dir); err != nil {
		return nil, fmt.Errorf("store: put %s: %w", hash, err)
	}
	// Superseded blobs are unreferenced now that the new manifest is the
	// committed one; removal is best-effort (Open sweeps stragglers).
	if oldResult != "" && oldResult != m.Result.File {
		os.Remove(filepath.Join(dir, oldResult))
	}
	if oldCkpt != "" && (m.Checkpoint == nil || oldCkpt != m.Checkpoint.File) {
		os.Remove(filepath.Join(dir, oldCkpt))
	}
	return m, nil
}

// writeBlob lands data at dir/name atomically: staging file in tmp/ on
// the same filesystem, fsync, rename into place.
func (s *Store) writeBlob(dir, name string, data []byte) error {
	f, err := os.CreateTemp(s.tmpDir(), name+".*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// syncDir fsyncs a directory so the renames inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Get reads and verifies the entry for hash. A blob whose size or
// SHA-256 disagrees with the manifest quarantines the whole entry and
// returns an error wrapping ErrCorrupt; a missing entry returns
// ErrNotFound.
func (s *Store) Get(hash string) (*Entry, error) {
	s.fsMu.RLock()
	defer s.fsMu.RUnlock()
	m, err := s.readManifest(hash)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("store: get %s: %w", hash, ErrNotFound)
		}
		// Manifest present but unreadable: damaged commit record.
		s.quarantine(hash, 0, "manifest")
		return nil, fmt.Errorf("store: get %s: manifest unreadable (%v): %w", hash, err, ErrCorrupt)
	}
	result, err := s.verifiedBlob(hash, m.Result)
	if err != nil {
		s.quarantine(hash, m.Version, "result")
		return nil, fmt.Errorf("store: get %s result: %w", hash, err)
	}
	var ckpt []byte
	if m.Checkpoint != nil {
		ckpt, err = s.verifiedBlob(hash, *m.Checkpoint)
		if err != nil {
			s.quarantine(hash, m.Version, "checkpoint")
			return nil, fmt.Errorf("store: get %s checkpoint: %w", hash, err)
		}
	}
	return &Entry{Manifest: *m, Result: result, Checkpoint: ckpt}, nil
}

// verifiedBlob reads one blob and checks it against its integrity
// record. Failures wrap ErrCorrupt.
func (s *Store) verifiedBlob(hash string, info BlobInfo) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.objectDir(hash), info.File))
	if err != nil {
		return nil, fmt.Errorf("%s missing (%v): %w", info.File, err, ErrCorrupt)
	}
	if int64(len(data)) != info.SizeBytes {
		return nil, fmt.Errorf("%s is %d bytes, manifest says %d (torn write): %w",
			info.File, len(data), info.SizeBytes, ErrCorrupt)
	}
	if got := hashBytes(data); got != info.SHA256 {
		return nil, fmt.Errorf("%s checksum %s, manifest says %s: %w",
			info.File, got[:12], info.SHA256[:12], ErrCorrupt)
	}
	return data, nil
}

// quarantine moves an entry's directory aside as
// quarantine/<hash>.v<version>.<reason>, never to be served again.
func (s *Store) quarantine(hash string, version int, reason string) {
	base := fmt.Sprintf("%s.v%d.%s", hash, version, reason)
	dst := filepath.Join(s.quarantineDir(), base)
	for i := 2; ; i++ {
		if err := os.Rename(s.objectDir(hash), dst); err == nil || os.IsNotExist(err) {
			return
		}
		if i > 10 {
			// Rename persistently failing (e.g. read-only fs): remove so a
			// corrupt entry can at least never be served.
			os.RemoveAll(s.objectDir(hash))
			return
		}
		dst = filepath.Join(s.quarantineDir(), fmt.Sprintf("%s.%d", base, i))
	}
}

// maxQuarantinedVersion scans the quarantine for hash's newest version.
func (s *Store) maxQuarantinedVersion(hash string) int {
	ents, err := os.ReadDir(s.quarantineDir())
	if err != nil {
		return 0
	}
	maxV := 0
	prefix := hash + ".v"
	for _, e := range ents {
		rest, ok := strings.CutPrefix(e.Name(), prefix)
		if !ok {
			continue
		}
		if dot := strings.IndexByte(rest, '.'); dot > 0 {
			if v, err := strconv.Atoi(rest[:dot]); err == nil && v > maxV {
				maxV = v
			}
		}
	}
	return maxV
}
