package store

import "fmt"

// FaultKind names one injectable store failure mode.
type FaultKind string

// The three failure modes every durable store must survive: a write the
// disk tore mid-blob, a bit the medium flipped under a valid manifest,
// and a full disk rejecting the write outright.
const (
	FaultTorn    FaultKind = "torn"
	FaultBitFlip FaultKind = "bitflip"
	FaultENOSPC  FaultKind = "enospc"
	faultNone    FaultKind = ""
)

// Fault schedules one injected failure. Like comm.FaultPlan, firing is
// a pure function of the schedule and the operation sequence: the fault
// hits the Put-th put of the matching scope (per-hash when Hash names
// one, global when it is "*" or empty), so a replayed run corrupts the
// same byte of the same artifact every time.
type Fault struct {
	Kind FaultKind `json:"kind"`
	// Hash scopes the fault to one entry; "*" (or empty) matches any put.
	Hash string `json:"hash,omitempty"`
	// Put is the 1-based ordinal of the matching put to hit (default 1).
	Put int `json:"put,omitempty"`
}

// FaultPlan is a deterministic schedule of store faults, the storage
// counterpart of comm.FaultPlan. A nil plan injects nothing.
type FaultPlan struct {
	Faults []Fault `json:"faults"`
}

// Empty reports whether the plan schedules nothing.
func (p *FaultPlan) Empty() bool { return p == nil || len(p.Faults) == 0 }

// Validate rejects unknown kinds and non-positive ordinals.
func (p *FaultPlan) Validate() error {
	if p == nil {
		return nil
	}
	for i, f := range p.Faults {
		switch f.Kind {
		case FaultTorn, FaultBitFlip, FaultENOSPC:
		default:
			return fmt.Errorf("store: fault %d: unknown kind %q", i, f.Kind)
		}
		if f.Put < 0 {
			return fmt.Errorf("store: fault %d: put ordinal %d must be positive", i, f.Put)
		}
	}
	return nil
}

// match returns the fault kind firing for this put, given the per-hash
// and global put ordinals (both 1-based, already incremented). At most
// one fault fires per put: the first match in schedule order wins.
func (p *FaultPlan) match(hash string, hashSeq, globalSeq int) FaultKind {
	if p == nil {
		return faultNone
	}
	for _, f := range p.Faults {
		nth := f.Put
		if nth == 0 {
			nth = 1
		}
		if f.Hash == "" || f.Hash == "*" {
			if globalSeq == nth {
				return f.Kind
			}
		} else if f.Hash == hash && hashSeq == nth {
			return f.Kind
		}
	}
	return faultNone
}
