// Blocked GEMM compute substrate.
//
// The three matrix products the layers use — C = A·B, C = Aᵀ·B and
// C = A·Bᵀ — run on unrolled register kernels chosen by measurement on
// pure-Go scalar code (no SIMD intrinsics are available to lean on):
//
//   - C = A·B and small Aᵀ·B stream four output rows at a time: the
//     inner column loop carries four independent multiply-add chains per
//     B element, which keeps the FP units saturated while the four hot C
//     rows live in L1. A classical packed 4×4 register tile was measured
//     and rejected: its 16 accumulators plus 8 operands exceed amd64's 16
//     vector registers and the spill traffic loses to the streaming form
//     at every size up to 512³.
//   - Large Aᵀ·B packs A panels into reusable pool-owned scratch,
//     de-transposing them (KC-deep k-panels) so the same streaming kernel
//     runs on contiguous rows instead of column-strided loads.
//   - C = A·Bᵀ uses 4×4 tiles of dot products for small operands — both
//     operand rows are already contiguous — and above a threshold packs
//     Bᵀ into scratch and streams, which measures ~1.3× faster once the
//     transpose amortises.
//
// Determinism: the kernel for a product is resolved once from the full
// problem shape, and the parallel row bands (large products shard whole
// rows of C across goroutines) run that same kernel per band with each
// row's k terms accumulating in band-independent order — so results are
// bit-identical across worker counts. All paths also match the
// pre-blocking kernels bit-for-bit except packed A·Bᵀ in accumulate mode,
// which folds the k terms into C incrementally instead of via a separate
// dot sum.
package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

func init() { gemmMaxWorkers.Store(int32(runtime.GOMAXPROCS(0))) }

const (
	// gemmKC is the k-panel depth of the packed Aᵀ·B path: panels of
	// m×KC transposed A stay within a few hundred KB of pool scratch.
	gemmKC = 256
	// Aᵀ·B products at least this large (m·k·n multiply-adds) run the
	// packed path; below it the transpose traffic costs more than the
	// contiguous loads win.
	gemmPackTAMinOps = 1 << 17
	// A·Bᵀ products at least this large pack Bᵀ and stream.
	gemmPackTBMinOps = 1 << 14
	// Products at least this large shard row bands across goroutines.
	gemmParallelMinOps = 1 << 21
	// gemmMinBandRows keeps parallel bands tall enough that the per-band
	// goroutine and packing overheads stay amortised.
	gemmMinBandRows = 32
)

// Operand layout variants. The packed forms are resolved from the full
// problem shape in gemm, never per band, so banding cannot change which
// kernel runs.
const (
	opNN  = iota // C += A·B,  A: m×k
	opTA         // C += Aᵀ·B, A: k×m, streaming rank-1 form
	opTAP        // C += Aᵀ·B, packed panels
	opTB         // C += A·Bᵀ, B: n×k, dot-tile form
	opTBP        // C += A·Bᵀ, packed transpose
)

// gemmMaxWorkers caps the row-band parallelism of large products. It is
// set from GOMAXPROCS at startup; SetGemmWorkers overrides it.
var gemmMaxWorkers atomic.Int32

// SetGemmWorkers sets the maximum number of goroutines a single large
// GEMM may shard row bands across (minimum 1, i.e. serial). The result is
// bit-identical for every worker count. Returns the previous value.
func SetGemmWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(gemmMaxWorkers.Swap(int32(n)))
}

// gemmScratch holds one worker's packing buffer, recycled through a pool
// so the steady state allocates nothing.
type gemmScratch struct {
	a []float64 // de-transposed A panel: m × gemmKC
}

var gemmScratchPool = sync.Pool{New: func() any { return new(gemmScratch) }}

// GemmInto computes C = A·B (or C += A·B when accumulate is true) over flat
// row-major buffers with dimensions A: m×k, B: k×n, C: m×n.
func GemmInto(c, a, b []float64, m, k, n int, accumulate bool) {
	gemm(opNN, c, a, b, m, k, n, accumulate)
}

// GemmTransA computes C = Aᵀ·B where A is k×m (so Aᵀ is m×k), B is k×n.
func GemmTransA(c, a, b []float64, m, k, n int, accumulate bool) {
	gemm(opTA, c, a, b, m, k, n, accumulate)
}

// GemmTransB computes C = A·Bᵀ where A is m×k, B is n×k.
func GemmTransB(c, a, b []float64, m, k, n int, accumulate bool) {
	gemm(opTB, c, a, b, m, k, n, accumulate)
}

func gemm(op int, c, a, b []float64, m, k, n int, accumulate bool) {
	if !accumulate {
		clear(c[:m*n])
	}
	if m == 0 || n == 0 || k == 0 {
		return
	}
	ops := m * k * n
	if op == opTA && ops >= gemmPackTAMinOps {
		op = opTAP
	}
	if op == opTB && ops >= gemmPackTBMinOps {
		op = opTBP
	}
	if ops >= gemmParallelMinOps && m >= 2*gemmMinBandRows {
		if w := gemmBands(m); w > 1 {
			gemmParallel(op, c, a, b, m, k, n, w)
			return
		}
	}
	gemmSerial(op, c, a, b, m, k, n, 0, m)
}

// gemmSerial runs one resolved kernel over C rows [r0, r0+rm). m is the
// full row count of C (needed to index transposed A); c is the full m×n
// buffer. Rows outside the band are untouched, and each row's k terms
// accumulate in the same order regardless of the banding.
func gemmSerial(op int, c, a, b []float64, m, k, n, r0, rm int) {
	switch op {
	case opNN:
		gemmNN(c[r0*n:], a[r0*k:], b, rm, k, n, k)
	case opTA:
		gemmTA(c, a, b, m, k, n, r0, rm)
	case opTAP:
		gemmPackedTA(c, a, b, m, k, n, r0, rm)
	case opTB:
		gemmTB(c[r0*n:], a[r0*k:], b, rm, k, n)
	case opTBP:
		gemmPackedTB(c[r0*n:], a[r0*k:], b, rm, k, n)
	}
}

// gemmPackedTB computes C += A·Bᵀ by de-transposing B (stored n×k) into
// KC-deep k-major panels in pool scratch and streaming with gemmNN —
// measured faster than the dot-tile form once the transpose amortises
// over the C rows.
func gemmPackedTB(c, a, b []float64, m, k, n int) {
	s := gemmScratchPool.Get().(*gemmScratch)
	if need := n * gemmKC; cap(s.a) < need {
		s.a = make([]float64, need)
	}
	for p0 := 0; p0 < k; p0 += gemmKC {
		pb := gemmKC
		if p0+pb > k {
			pb = k - p0
		}
		bt := s.a[:pb*n]
		packBTPanel(bt, b, p0, pb, n, k)
		gemmNN(c, a[p0:], bt, m, pb, n, k)
	}
	gemmScratchPool.Put(s)
}

// packBTPanel de-transposes B[0:n, p0:p0+pb] (B stored n×k) into the
// pb×n k-major panel bt.
func packBTPanel(bt, b []float64, p0, pb, n, ldb int) {
	for j := 0; j < n; j++ {
		brow := b[j*ldb+p0 : j*ldb+p0+pb]
		for p, v := range brow {
			bt[p*n+j] = v
		}
	}
}

// gemmBands returns how many row bands to shard m rows across: bounded by
// the worker cap and the minimum band height.
func gemmBands(m int) int {
	w := int(gemmMaxWorkers.Load())
	if byRows := m / gemmMinBandRows; w > byRows {
		w = byRows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// gemmParallel shards C's rows into bands and runs the serial kernels on
// each concurrently. Each row is owned by exactly one band, so the
// accumulation order per element — and therefore the result — is identical
// to a serial run.
func gemmParallel(op int, c, a, b []float64, m, k, n, bands int) {
	band := (m + bands - 1) / bands
	// Round bands up to whole 4-row groups so every band's kernel runs the
	// unrolled fast path over its full height.
	band = (band + 3) / 4 * 4
	if op == opTBP {
		// Pack each Bᵀ panel once and let the bands stream the shared
		// read-only panel, instead of every band re-transposing all of B
		// inside gemmPackedTB.
		s := gemmScratchPool.Get().(*gemmScratch)
		if need := n * gemmKC; cap(s.a) < need {
			s.a = make([]float64, need)
		}
		for p0 := 0; p0 < k; p0 += gemmKC {
			pb := gemmKC
			if p0+pb > k {
				pb = k - p0
			}
			bt := s.a[:pb*n]
			packBTPanel(bt, b, p0, pb, n, k)
			runRowBands(m, band, func(r0, rows int) {
				gemmNN(c[r0*n:], a[r0*k+p0:], bt, rows, pb, n, k)
			})
		}
		gemmScratchPool.Put(s)
		return
	}
	runRowBands(m, band, func(r0, rows int) {
		gemmSerial(op, c, a, b, m, k, n, r0, rows)
	})
}

// runRowBands runs fn(r0, rows) concurrently for each band of rows and
// waits for all bands.
func runRowBands(m, band int, fn func(r0, rows int)) {
	var wg sync.WaitGroup
	for r0 := 0; r0 < m; r0 += band {
		rows := band
		if r0+rows > m {
			rows = m - r0
		}
		wg.Add(1)
		go func(r0, rows int) {
			defer wg.Done()
			fn(r0, rows)
		}(r0, rows)
	}
	wg.Wait()
}

// gemmNN computes C += A·B (A m×k with leading dimension lda, B k×n,
// C m×n) with the streaming four-row kernel: each pass pins four A rows
// and four C rows and sweeps B once, giving four independent accumulation
// chains per B element.
func gemmNN(c, a, b []float64, m, k, n, lda int) {
	i := 0
	for ; i+4 <= m; i += 4 {
		a0 := a[i*lda : i*lda+k]
		a1 := a[(i+1)*lda : (i+1)*lda+k]
		a2 := a[(i+2)*lda : (i+2)*lda+k]
		a3 := a[(i+3)*lda : (i+3)*lda+k]
		c0 := c[i*n : (i+1)*n]
		c1 := c[(i+1)*n : (i+2)*n]
		c2 := c[(i+2)*n : (i+3)*n]
		c3 := c[(i+3)*n : (i+4)*n]
		for p := 0; p < k; p++ {
			brow := b[p*n : (p+1)*n]
			v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
			for j, bv := range brow {
				c0[j] += v0 * bv
				c1[j] += v1 * bv
				c2[j] += v2 * bv
				c3[j] += v3 * bv
			}
		}
	}
	for ; i < m; i++ {
		arow := a[i*lda : i*lda+k]
		crow := c[i*n : (i+1)*n]
		for p, av := range arow {
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// gemmTA computes C += Aᵀ·B (A k×m) over C rows [r0, r0+rm) with rank-1
// updates along p and four C rows in flight. Tall products are cut into
// row bands first so each band of C stays L1-resident across the whole p
// sweep (the per-element accumulation order is unchanged); the packed
// path takes over beyond gemmPackTAMinOps.
func gemmTA(c, a, b []float64, m, k, n, r0, rm int) {
	const band = 64
	if rm > band {
		for i0 := r0; i0 < r0+rm; i0 += band {
			ib := band
			if i0+ib > r0+rm {
				ib = r0 + rm - i0
			}
			gemmTA(c, a, b, m, k, n, i0, ib)
		}
		return
	}
	for p := 0; p < k; p++ {
		arow := a[p*m+r0 : p*m+r0+rm]
		brow := b[p*n : (p+1)*n]
		i := 0
		for ; i+4 <= rm; i += 4 {
			v0, v1, v2, v3 := arow[i], arow[i+1], arow[i+2], arow[i+3]
			c0 := c[(r0+i)*n : (r0+i+1)*n]
			c1 := c[(r0+i+1)*n : (r0+i+2)*n]
			c2 := c[(r0+i+2)*n : (r0+i+3)*n]
			c3 := c[(r0+i+3)*n : (r0+i+4)*n]
			for j, bv := range brow {
				c0[j] += v0 * bv
				c1[j] += v1 * bv
				c2[j] += v2 * bv
				c3[j] += v3 * bv
			}
		}
		for ; i < rm; i++ {
			av := arow[i]
			crow := c[(r0+i)*n : (r0+i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// gemmPackedTA computes C += Aᵀ·B over C rows [r0, r0+rm) by packing
// KC-deep panels of Aᵀ into pool scratch — turning the column-strided
// loads into contiguous rows — and running the streaming kernel on each
// panel. Panels advance in k order, so per-element accumulation order
// matches gemmTA exactly.
func gemmPackedTA(c, a, b []float64, m, k, n, r0, rm int) {
	s := gemmScratchPool.Get().(*gemmScratch)
	if need := rm * gemmKC; cap(s.a) < need {
		s.a = make([]float64, need)
	}
	for p0 := 0; p0 < k; p0 += gemmKC {
		pb := gemmKC
		if p0+pb > k {
			pb = k - p0
		}
		at := s.a[:rm*pb]
		for p := 0; p < pb; p++ {
			arow := a[(p0+p)*m+r0 : (p0+p)*m+r0+rm]
			for i, v := range arow {
				at[i*pb+p] = v
			}
		}
		gemmNN(c[r0*n:], at, b[p0*n:], rm, pb, n, pb)
	}
	gemmScratchPool.Put(s)
}

// gemmTB computes C += A·Bᵀ (A m×k, B n×k) with 4×4 tiles of dot
// products: both operand rows are contiguous, so the sixteen accumulators
// and eight stream heads fit the register file with no packing needed.
func gemmTB(c, a, b []float64, m, k, n int) {
	i := 0
	for ; i+4 <= m; i += 4 {
		a0 := a[i*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		a2 := a[(i+2)*k : (i+3)*k]
		a3 := a[(i+3)*k : (i+4)*k]
		c0 := c[i*n : (i+1)*n]
		c1 := c[(i+1)*n : (i+2)*n]
		c2 := c[(i+2)*n : (i+3)*n]
		c3 := c[(i+3)*n : (i+4)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[j*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			var s00, s01, s02, s03 float64
			var s10, s11, s12, s13 float64
			var s20, s21, s22, s23 float64
			var s30, s31, s32, s33 float64
			for p, v0 := range a0 {
				v1, v2, v3 := a1[p], a2[p], a3[p]
				w0, w1, w2, w3 := b0[p], b1[p], b2[p], b3[p]
				s00 += v0 * w0
				s01 += v0 * w1
				s02 += v0 * w2
				s03 += v0 * w3
				s10 += v1 * w0
				s11 += v1 * w1
				s12 += v1 * w2
				s13 += v1 * w3
				s20 += v2 * w0
				s21 += v2 * w1
				s22 += v2 * w2
				s23 += v2 * w3
				s30 += v3 * w0
				s31 += v3 * w1
				s32 += v3 * w2
				s33 += v3 * w3
			}
			c0[j] += s00
			c0[j+1] += s01
			c0[j+2] += s02
			c0[j+3] += s03
			c1[j] += s10
			c1[j+1] += s11
			c1[j+2] += s12
			c1[j+3] += s13
			c2[j] += s20
			c2[j+1] += s21
			c2[j+2] += s22
			c2[j+3] += s23
			c3[j] += s30
			c3[j+1] += s31
			c3[j+2] += s32
			c3[j+3] += s33
		}
		for ; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var s0, s1, s2, s3 float64
			for p, bv := range brow {
				s0 += a0[p] * bv
				s1 += a1[p] * bv
				s2 += a2[p] * bv
				s3 += a3[p] * bv
			}
			c0[j] += s0
			c1[j] += s1
			c2[j] += s2
			c3[j] += s3
		}
	}
	for ; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] += s
		}
	}
}
