package tensor

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
)

// Naive reference kernels: the pre-blocking loops, kept verbatim as the
// correctness oracle for the packed/tiled/parallel paths.

func refGemm(c, a, b []float64, m, k, n int, accumulate bool) {
	if !accumulate {
		clear(c[:m*n])
	}
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a[i*k+p]
			for j := 0; j < n; j++ {
				c[i*n+j] += av * b[p*n+j]
			}
		}
	}
}

func refGemmTransA(c, a, b []float64, m, k, n int, accumulate bool) {
	if !accumulate {
		clear(c[:m*n])
	}
	for p := 0; p < k; p++ {
		for i := 0; i < m; i++ {
			av := a[p*m+i]
			for j := 0; j < n; j++ {
				c[i*n+j] += av * b[p*n+j]
			}
		}
	}
}

func refGemmTransB(c, a, b []float64, m, k, n int, accumulate bool) {
	if !accumulate {
		clear(c[:m*n])
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[j*k+p]
			}
			c[i*n+j] += s
		}
	}
}

func randSlice(r *rng.RNG, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = r.Norm()
	}
	return s
}

// maxRelDiff returns the largest relative element difference, scaled by the
// k-length of the accumulation (rounding differs between summation orders).
func maxRelDiff(got, want []float64) float64 {
	worst := 0.0
	for i := range got {
		d := math.Abs(got[i] - want[i])
		den := math.Max(math.Abs(want[i]), 1)
		if rel := d / den; rel > worst {
			worst = rel
		}
	}
	return worst
}

// gemmShapes covers the dispatch boundaries: scalar edges, sub-tile shapes,
// exact and off-by-one micro-tile multiples, shapes straddling the
// small/blocked threshold, and panels crossing the KC/MC block boundaries.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1}, {1, 7, 1}, {3, 2, 5}, {4, 4, 4}, {5, 9, 6},
	{4, 8, 3}, {3, 8, 4}, {8, 16, 8}, {16, 192, 32}, {17, 191, 33},
	{8, 32, 128}, {61, 127, 33}, {64, 256, 64}, {65, 257, 63},
	{130, 300, 37}, {12, 520, 20},
}

func TestGemmMatchesReference(t *testing.T) {
	type variant struct {
		name string
		run  func(c, a, b []float64, m, k, n int, acc bool)
		ref  func(c, a, b []float64, m, k, n int, acc bool)
		aLen func(m, k int) int // operand A element count
		bLen func(k, n int) int
	}
	variants := []variant{
		{"NN", GemmInto, refGemm,
			func(m, k int) int { return m * k }, func(k, n int) int { return k * n }},
		{"TransA", GemmTransA, refGemmTransA,
			func(m, k int) int { return k * m }, func(k, n int) int { return k * n }},
		{"TransB", GemmTransB, refGemmTransB,
			func(m, k int) int { return m * k }, func(k, n int) int { return n * k }},
	}
	r := rng.New(7)
	for _, v := range variants {
		for _, sh := range gemmShapes {
			for _, acc := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/%dx%dx%d/acc=%v", v.name, sh.m, sh.k, sh.n, acc), func(t *testing.T) {
					a := randSlice(r, v.aLen(sh.m, sh.k))
					b := randSlice(r, v.bLen(sh.k, sh.n))
					got := randSlice(r, sh.m*sh.n)
					want := append([]float64(nil), got...)
					v.run(got, a, b, sh.m, sh.k, sh.n, acc)
					v.ref(want, a, b, sh.m, sh.k, sh.n, acc)
					// Tolerance scales with the accumulation length: blocked
					// and reference paths sum the k terms in different orders.
					tol := 1e-13 * float64(sh.k+1)
					if d := maxRelDiff(got, want); d > tol {
						t.Fatalf("max relative diff %g > %g", d, tol)
					}
				})
			}
		}
	}
}

// TestGemmParallelBitIdentical asserts the documented determinism claim:
// the row-band parallel path produces bit-identical results to the serial
// path for any worker count, for all three operand layouts (which at
// these sizes resolve to the streaming, packed-Aᵀ and packed-Bᵀ kernels).
func TestGemmParallelBitIdentical(t *testing.T) {
	ops := []struct {
		name string
		run  func(c, a, b []float64, m, k, n int)
		aLen func(m, k int) int
		bLen func(k, n int) int
	}{
		{"NN", func(c, a, b []float64, m, k, n int) { GemmInto(c, a, b, m, k, n, false) },
			func(m, k int) int { return m * k }, func(k, n int) int { return k * n }},
		{"TransA", func(c, a, b []float64, m, k, n int) { GemmTransA(c, a, b, m, k, n, false) },
			func(m, k int) int { return k * m }, func(k, n int) int { return k * n }},
		{"TransB", func(c, a, b []float64, m, k, n int) { GemmTransB(c, a, b, m, k, n, false) },
			func(m, k int) int { return m * k }, func(k, n int) int { return n * k }},
	}
	r := rng.New(11)
	// 160·160·160 = 4.1M multiply-adds: comfortably above the parallel
	// threshold; 161/157 exercise ragged band and tile edges too. k=300
	// crosses the KC panel boundary of the packed paths.
	for _, sh := range []struct{ m, k, n int }{{160, 160, 160}, {161, 157, 149}, {128, 300, 64}} {
		for _, op := range ops {
			a := randSlice(r, op.aLen(sh.m, sh.k))
			b := randSlice(r, op.bLen(sh.k, sh.n))
			serial := make([]float64, sh.m*sh.n)
			parallel := make([]float64, sh.m*sh.n)

			prev := SetGemmWorkers(1)
			op.run(serial, a, b, sh.m, sh.k, sh.n)
			SetGemmWorkers(4)
			op.run(parallel, a, b, sh.m, sh.k, sh.n)
			SetGemmWorkers(prev)

			for i := range serial {
				if serial[i] != parallel[i] {
					t.Fatalf("%s shape %v: element %d differs: serial %v parallel %v",
						op.name, sh, i, serial[i], parallel[i])
				}
			}
		}
	}
}

// TestGemmPackedPathZeroAlloc asserts the pool-backed packing scratch keeps
// the blocked kernels allocation-free in steady state for all three layouts.
func TestGemmPackedPathZeroAlloc(t *testing.T) {
	r := rng.New(13)
	m, k, n := 64, 256, 64 // blocked path, multi-strip B panel
	a := randSlice(r, m*k)
	bT := randSlice(r, n*k)
	aT := randSlice(r, k*m)
	b := randSlice(r, k*n)
	c := make([]float64, m*n)

	for name, fn := range map[string]func(){
		"GemmInto":   func() { GemmInto(c, a, b, m, k, n, false) },
		"GemmTransA": func() { GemmTransA(c, aT, b, m, k, n, true) },
		"GemmTransB": func() { GemmTransB(c, a, bT, m, k, n, false) },
	} {
		fn() // warm the pool
		if allocs := testing.AllocsPerRun(20, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op on the packed path, want 0", name, allocs)
		}
	}
}

func TestEnsureReusesBuffer(t *testing.T) {
	a := Ensure(nil, 3, 4)
	if a.Size() != 12 {
		t.Fatalf("size %d", a.Size())
	}
	a.Fill(1)
	data := &a.Data[0]
	b := Ensure(a, 2, 5)
	if b != a || &b.Data[0] != data {
		t.Fatal("Ensure reallocated despite sufficient capacity")
	}
	if b.Dim(0) != 2 || b.Dim(1) != 5 || b.Size() != 10 {
		t.Fatalf("shape %v", b.Shape())
	}
	c := Ensure(b, 6, 6)
	if c.Size() != 36 {
		t.Fatalf("grown size %d", c.Size())
	}
}

func TestViewOfSharesData(t *testing.T) {
	src := New(2, 6)
	src.Data[7] = 42
	v := ViewOf(nil, src, 3, 4)
	if v.Data[7] != 42 {
		t.Fatal("view does not alias source")
	}
	v.Data[0] = 9
	if src.Data[0] != 9 {
		t.Fatal("write through view not visible in source")
	}
	// Repointing the same view must not allocate a new tensor.
	v2 := ViewOf(v, src, 4, 3)
	if v2 != v {
		t.Fatal("ViewOf allocated a new view")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected size-mismatch panic")
		}
	}()
	ViewOf(nil, src, 5, 5)
}
