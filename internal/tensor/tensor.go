// Package tensor implements the dense numeric arrays used by the neural
// network substrate and the sparsifiers.
//
// The representation is deliberately simple: a flat []float64 buffer plus a
// shape. All layout is row-major. The package provides only the kernels the
// reproduction actually needs (element-wise ops, GEMM, reductions, norms);
// it is not a general array library.
package tensor

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Tensor is a dense row-major array of float64.
type Tensor struct {
	Data  []float64
	shape []int
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: make([]float64, n), shape: s}
}

// FromSlice wraps data in a tensor of the given shape. The slice is not
// copied; the tensor aliases it.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, slice has %d", shape, n, len(data)))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: data, shape: s}
}

// Randn fills a new tensor with N(0, std²) variates.
func Randn(r *rng.RNG, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = r.Norm() * std
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Dim returns the length of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape of the same total size. The data
// buffer is shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, len(t.Data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: t.Data, shape: s}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// AddScaled computes t += alpha * u element-wise.
func (t *Tensor) AddScaled(alpha float64, u *Tensor) {
	if len(t.Data) != len(u.Data) {
		panic("tensor: AddScaled size mismatch")
	}
	for i, v := range u.Data {
		t.Data[i] += alpha * v
	}
}

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float64) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Dot returns the inner product of t and u viewed as flat vectors.
func (t *Tensor) Dot(u *Tensor) float64 {
	if len(t.Data) != len(u.Data) {
		panic("tensor: Dot size mismatch")
	}
	s := 0.0
	for i, v := range t.Data {
		s += v * u.Data[i]
	}
	return s
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 { return L2Norm(t.Data) }

// L2Norm returns the Euclidean norm of v, guarding against overflow for
// large magnitudes by scaling.
func L2Norm(v []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n), returning a
// new m×n tensor. The inner loops are ordered ikj for cache friendliness.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMul requires 2-D tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", k, k2))
	}
	c := New(m, n)
	GemmInto(c.Data, a.Data, b.Data, m, k, n, false)
	return c
}

// GemmInto computes C = A·B (or C += A·B when accumulate is true) over flat
// row-major buffers with dimensions A: m×k, B: k×n, C: m×n.
func GemmInto(c, a, b []float64, m, k, n int, accumulate bool) {
	if !accumulate {
		for i := range c[:m*n] {
			c[i] = 0
		}
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// GemmTransA computes C = Aᵀ·B where A is k×m (so Aᵀ is m×k), B is k×n.
func GemmTransA(c, a, b []float64, m, k, n int, accumulate bool) {
	if !accumulate {
		for i := range c[:m*n] {
			c[i] = 0
		}
	}
	for p := 0; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// GemmTransB computes C = A·Bᵀ where A is m×k, B is n×k.
func GemmTransB(c, a, b []float64, m, k, n int, accumulate bool) {
	if !accumulate {
		for i := range c[:m*n] {
			c[i] = 0
		}
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] += s
		}
	}
}

// ArgMax returns the index of the largest element of v (first on ties).
func ArgMax(v []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// Sum returns the sum of all elements.
func Sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// MaxAbs returns the largest absolute value in v (0 for empty v).
func MaxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// HasNaN reports whether v contains a NaN or Inf.
func HasNaN(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}
