// Package tensor implements the dense numeric arrays used by the neural
// network substrate and the sparsifiers.
//
// The representation is deliberately simple: a flat []float64 buffer plus a
// shape. All layout is row-major. The package provides only the kernels the
// reproduction actually needs (element-wise ops, GEMM, reductions, norms);
// it is not a general array library.
package tensor

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Tensor is a dense row-major array of float64.
type Tensor struct {
	Data  []float64
	shape []int
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: make([]float64, n), shape: s}
}

// FromSlice wraps data in a tensor of the given shape. The slice is not
// copied; the tensor aliases it.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, slice has %d", shape, n, len(data)))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: data, shape: s}
}

// Randn fills a new tensor with N(0, std²) variates.
func Randn(r *rng.RNG, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = r.Norm() * std
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Dim returns the length of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape of the same total size. The data
// buffer is shared.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, len(t.Data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Data: t.Data, shape: s}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// AddScaled computes t += alpha * u element-wise.
func (t *Tensor) AddScaled(alpha float64, u *Tensor) {
	if len(t.Data) != len(u.Data) {
		panic("tensor: AddScaled size mismatch")
	}
	for i, v := range u.Data {
		t.Data[i] += alpha * v
	}
}

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float64) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Dot returns the inner product of t and u viewed as flat vectors.
func (t *Tensor) Dot(u *Tensor) float64 {
	if len(t.Data) != len(u.Data) {
		panic("tensor: Dot size mismatch")
	}
	s := 0.0
	for i, v := range t.Data {
		s += v * u.Data[i]
	}
	return s
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 { return L2Norm(t.Data) }

// L2Norm returns the Euclidean norm of v. The hot path is a plain
// two-chain sum of squares; when that overflows to +Inf or underflows to
// a subnormal-or-zero result it falls back to the branchy scaled
// accumulation, which is immune to both.
func L2Norm(v []float64) float64 {
	var s0, s1 float64
	i := 0
	for ; i+2 <= len(v); i += 2 {
		s0 += v[i] * v[i]
		s1 += v[i+1] * v[i+1]
	}
	if i < len(v) {
		s0 += v[i] * v[i]
	}
	ssq := s0 + s1
	// 0x1p-1000 leaves the partial squares far above subnormal rounding.
	// Everything else — all-zero input, underflow, overflow, NaN — goes
	// through the scaled path, which handles each correctly.
	if ssq > 0x1p-1000 && ssq <= math.MaxFloat64 {
		return math.Sqrt(ssq)
	}
	return l2NormScaled(v)
}

// l2NormScaled is the overflow/underflow-safe slow path of L2Norm.
func l2NormScaled(v []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n), returning a
// new m×n tensor.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMul requires 2-D tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", k, k2))
	}
	c := New(m, n)
	GemmInto(c.Data, a.Data, b.Data, m, k, n, false)
	return c
}

// Ensure returns t resized to shape, reusing its data and shape buffers
// when capacity allows; a nil t allocates a fresh tensor. The contents are
// unspecified — callers must overwrite (or Zero) the tensor. It is the
// allocation-free counterpart of New for per-step scratch that layers keep
// across forward/backward calls.
func Ensure(t *Tensor, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			// Plain message: formatting shape here would make the variadic
			// escape and cost an allocation on every call.
			panic("tensor: negative dimension in Ensure shape")
		}
		n *= d
	}
	if t == nil {
		t = &Tensor{}
	}
	if cap(t.Data) < n {
		t.Data = make([]float64, n)
	}
	t.Data = t.Data[:n]
	t.shape = append(t.shape[:0], shape...)
	return t
}

// ViewOf repoints view (allocating it on first use when nil) at src's data
// buffer with the given shape — the allocation-free counterpart of Reshape
// for cached reshape views. The product of shape must equal src's size.
func ViewOf(view, src *Tensor, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(src.Data) {
		// Sizes only: formatting the shape slices would make the variadic
		// escape and cost an allocation on every call.
		panic(fmt.Sprintf("tensor: cannot view %d elems as a shape of %d elems",
			len(src.Data), n))
	}
	if view == nil {
		view = &Tensor{}
	}
	view.Data = src.Data
	view.shape = append(view.shape[:0], shape...)
	return view
}

// ArgMax returns the index of the largest element of v (first on ties).
func ArgMax(v []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// Sum returns the sum of all elements.
func Sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// MaxAbs returns the largest absolute value in v (0 for empty v).
func MaxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// HasNaN reports whether v contains a NaN or Inf. x·0 is ±0 for every
// finite x and NaN for ±Inf and NaN, so a poisoned running sum replaces
// two classification branches per element with one multiply-add.
func HasNaN(v []float64) bool {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(v); i += 4 {
		s0 += v[i] * 0
		s1 += v[i+1] * 0
		s2 += v[i+2] * 0
		s3 += v[i+3] * 0
	}
	for ; i < len(v); i++ {
		s0 += v[i] * 0
	}
	s := s0 + s1 + s2 + s3
	return s != s
}
