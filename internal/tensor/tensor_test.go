package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d, want 24", x.Size())
	}
	if x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad dims: %v", x.Shape())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-initialise")
		}
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, -1)
}

func TestFromSliceAliasesAndValidates(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	x.Data[0] = 9
	if d[0] != 9 {
		t.Fatal("FromSlice must alias, not copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	FromSlice(d, 3, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if x.Data[2*4+1] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	x := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, 2}, {-1, 0}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for index %v", idx)
				}
			}()
			x.At(idx...)
		}()
	}
}

func TestCloneIndependent(t *testing.T) {
	x := New(4)
	x.Fill(3)
	y := x.Clone()
	y.Data[0] = -1
	if x.Data[0] != 3 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[5] = 42
	if x.Data[5] != 42 {
		t.Fatal("Reshape must share the buffer")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad reshape")
		}
	}()
	x.Reshape(5)
}

func TestAddScaledAndScale(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	y := FromSlice([]float64{10, 20, 30}, 3)
	x.AddScaled(0.5, y)
	want := []float64{6, 12, 18}
	for i := range want {
		if x.Data[i] != want[i] {
			t.Fatalf("AddScaled[%d] = %v, want %v", i, x.Data[i], want[i])
		}
	}
	x.Scale(2)
	if x.Data[2] != 36 {
		t.Fatalf("Scale gave %v", x.Data[2])
	}
}

func TestDot(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	y := FromSlice([]float64{4, 5, 6}, 3)
	if got := x.Dot(y); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestL2Norm(t *testing.T) {
	x := FromSlice([]float64{3, 4}, 2)
	if got := x.L2Norm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("L2Norm = %v, want 5", got)
	}
	if L2Norm(nil) != 0 {
		t.Fatal("L2Norm(nil) should be 0")
	}
	// Overflow guard: plain sum-of-squares would overflow here.
	big := []float64{1e200, 1e200}
	if got := L2Norm(big); math.IsInf(got, 0) || math.Abs(got-1e200*math.Sqrt2) > 1e188 {
		t.Fatalf("L2Norm big = %v", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], want[i])
		}
	}
}

func TestMatMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// naiveGemm is the reference implementation for property testing.
func naiveGemm(a, b []float64, m, k, n int) []float64 {
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func TestGemmVariantsAgainstNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		want := naiveGemm(a.Data, b.Data, m, k, n)

		got := make([]float64, m*n)
		GemmInto(got, a.Data, b.Data, m, k, n, false)
		if !approxEq(got, want, 1e-9) {
			return false
		}

		// GemmTransA: store A transposed (k×m), expect the same product.
		at := make([]float64, k*m)
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				at[p*m+i] = a.Data[i*k+p]
			}
		}
		got2 := make([]float64, m*n)
		GemmTransA(got2, at, b.Data, m, k, n, false)
		if !approxEq(got2, want, 1e-9) {
			return false
		}

		// GemmTransB: store B transposed (n×k).
		bt := make([]float64, n*k)
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				bt[j*k+p] = b.Data[p*n+j]
			}
		}
		got3 := make([]float64, m*n)
		GemmTransB(got3, a.Data, bt, m, k, n, false)
		return approxEq(got3, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmAccumulate(t *testing.T) {
	a := []float64{1, 0, 0, 1}
	c := []float64{5, 5, 5, 5}
	GemmInto(c, a, a, 2, 2, 2, true)
	want := []float64{6, 5, 5, 6}
	if !approxEq(c, want, 0) {
		t.Fatalf("accumulate gave %v, want %v", c, want)
	}
}

func approxEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 5, 3}) != 1 {
		t.Fatal("ArgMax wrong")
	}
	if ArgMax([]float64{2, 2}) != 0 {
		t.Fatal("ArgMax should return first on ties")
	}
}

func TestSumMaxAbsHasNaN(t *testing.T) {
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Fatal("Sum wrong")
	}
	if MaxAbs([]float64{-7, 3}) != 7 {
		t.Fatal("MaxAbs wrong")
	}
	if MaxAbs(nil) != 0 {
		t.Fatal("MaxAbs(nil) should be 0")
	}
	if HasNaN([]float64{1, 2}) {
		t.Fatal("false NaN")
	}
	if !HasNaN([]float64{1, math.NaN()}) || !HasNaN([]float64{math.Inf(1)}) {
		t.Fatal("missed NaN/Inf")
	}
}

func TestRandnStd(t *testing.T) {
	r := rng.New(11)
	x := Randn(r, 0.5, 100, 100)
	var ss float64
	for _, v := range x.Data {
		ss += v * v
	}
	std := math.Sqrt(ss / float64(x.Size()))
	if math.Abs(std-0.5) > 0.02 {
		t.Fatalf("std = %v, want ~0.5", std)
	}
}

func BenchmarkGemm64(b *testing.B) {
	r := rng.New(1)
	a := Randn(r, 1, 64, 64)
	x := Randn(r, 1, 64, 64)
	c := make([]float64, 64*64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmInto(c, a.Data, x.Data, 64, 64, 64, false)
	}
}

func BenchmarkL2Norm(b *testing.B) {
	r := rng.New(1)
	x := Randn(r, 1, 1<<16)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = x.L2Norm()
	}
	_ = sink
}
