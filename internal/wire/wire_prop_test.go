package wire

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// randomSelection draws a strictly increasing index set of the given
// density over [0, ng) with values in [-8, 8).
func randomSelection(r *rng.RNG, ng int, density float64) (idx []int, vals []float64) {
	for i := 0; i < ng; i++ {
		if r.Float64() < density {
			idx = append(idx, i)
			vals = append(vals, r.Float64()*16-8)
		}
	}
	return idx, vals
}

// TestPropertyRoundTripIdentity is the satellite-task property test:
// encode→decode is the identity on indices for random index sets at
// densities 1e-4…0.5 — including the empty and full vectors — in every
// format, and the identity on values up to the format's value precision.
func TestPropertyRoundTripIdentity(t *testing.T) {
	r := rng.New(7)
	densities := []float64{1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5}
	lengths := []int{1, 3, 64, 1000, 50000}
	var buf []byte
	var dIdx []int
	var dVals []float64
	check := func(ng int, idx []int, vals []float64) {
		t.Helper()
		for _, f := range allFormats {
			var err error
			buf, err = AppendEncode(buf[:0], f, ng, idx, vals)
			if err != nil {
				t.Fatalf("%v ng=%d nnz=%d: encode: %v", f, ng, len(idx), err)
			}
			if len(buf) != EncodedSize(f, ng, idx) {
				t.Fatalf("%v ng=%d nnz=%d: size %d != EncodedSize %d",
					f, ng, len(idx), len(buf), EncodedSize(f, ng, idx))
			}
			var gf Format
			var gng int
			gf, gng, dIdx, dVals, err = DecodeInto(buf, dIdx, dVals)
			if err != nil {
				t.Fatalf("%v ng=%d nnz=%d: decode: %v", f, ng, len(idx), err)
			}
			if gf != f || gng != ng || len(dIdx) != len(idx) {
				t.Fatalf("%v: header (%v, %d, %d), want (%v, %d, %d)",
					f, gf, gng, len(dIdx), f, ng, len(idx))
			}
			for i := range idx {
				if dIdx[i] != idx[i] {
					t.Fatalf("%v ng=%d: index %d is %d, want %d", f, ng, i, dIdx[i], idx[i])
				}
				want := float64(float32(vals[i]))
				if f.valueBytes() == 2 {
					want = Float16from(Float16bits(vals[i]))
				}
				if dVals[i] != want {
					t.Fatalf("%v ng=%d: value %d is %v, want %v", f, ng, i, dVals[i], want)
				}
			}
		}
	}
	for _, ng := range lengths {
		for _, d := range densities {
			idx, vals := randomSelection(r, ng, d)
			check(ng, idx, vals)
		}
		// Empty and full vectors.
		check(ng, nil, nil)
		full := make([]int, ng)
		fullV := make([]float64, ng)
		for i := range full {
			full[i] = i
			fullV[i] = r.Norm()
		}
		check(ng, full, fullV)
	}
}

// TestPropertyRoundTripFloat16ULP pins the quantized-training contract of
// the fp16 formats: an encode→decode round trip through coo16/bitmap16
// returns, for every element, the nearest binary16 neighbour of the input —
// within half a binary16 ulp (round-to-nearest) — and is bit-identical to
// Quantize16, the function the trainer applies to union values that skip
// the encoded upload.
func TestPropertyRoundTripFloat16ULP(t *testing.T) {
	r := rng.New(17)
	var buf []byte
	var dIdx []int
	var dVals []float64
	// halfULP returns ulp16(x)/2: values in [2^e, 2^(e+1)) have spacing
	// 2^(e-10); below 2^-14 the subnormal spacing is a fixed 2^-24.
	halfULP := func(x float64) float64 {
		ax := math.Abs(x)
		if ax < 0x1p-14 {
			return 0x1p-25
		}
		_, exp := math.Frexp(ax) // ax = f·2^exp with f ∈ [0.5, 1)
		return math.Ldexp(1, exp-12)
	}
	for _, ng := range []int{64, 5000} {
		for _, d := range []float64{0.01, 0.2} {
			idx, vals := randomSelection(r, ng, d)
			// Sweep magnitudes from deep subnormal to near the fp16 max
			// (|v| < 8·2^12 = 32768 < 65504, so nothing saturates to Inf).
			for i := range vals {
				vals[i] = math.Ldexp(vals[i], i%28-15)
			}
			for _, f := range []Format{COO16, Bitmap16} {
				var err error
				buf, err = AppendEncode(buf[:0], f, ng, idx, vals)
				if err != nil {
					t.Fatalf("%v ng=%d: encode: %v", f, ng, err)
				}
				_, _, dIdx, dVals, err = DecodeInto(buf, dIdx, dVals)
				if err != nil {
					t.Fatalf("%v ng=%d: decode: %v", f, ng, err)
				}
				for i := range idx {
					if diff := math.Abs(dVals[i] - vals[i]); diff > halfULP(vals[i]) {
						t.Fatalf("%v: value %v decoded as %v, error %v beyond half-ulp %v",
							f, vals[i], dVals[i], diff, halfULP(vals[i]))
					}
					if q := Quantize16(vals[i]); dVals[i] != q {
						t.Fatalf("%v: decode(%v) = %v differs from Quantize16 = %v",
							f, vals[i], dVals[i], q)
					}
				}
			}
		}
	}
}

// TestPropertyPickIsCheapest verifies the selector against brute force on
// random selections across the density sweep.
func TestPropertyPickIsCheapest(t *testing.T) {
	r := rng.New(11)
	for _, ng := range []int{100, 4096, 100000} {
		for _, d := range []float64{1e-4, 1e-2, 0.1, 0.2, 0.5} {
			idx, _ := randomSelection(r, ng, d)
			for _, prec := range []Precision{Float32, Float16} {
				f, size := Pick(ng, idx, prec)
				coo, bm := COO32, Bitmap32
				if prec == Float16 {
					coo, bm = COO16, Bitmap16
				}
				best := EncodedSize(coo, ng, idx)
				if s := EncodedSize(bm, ng, idx); s < best {
					best = s
				}
				if size != best || size != EncodedSize(f, ng, idx) {
					t.Fatalf("ng=%d d=%g prec=%d: Pick (%v, %d), brute-force min %d",
						ng, d, prec, f, size, best)
				}
			}
		}
	}
}

// TestPropertyFloat16Monotone checks the quantizer is monotone and within
// one half-precision ulp across a magnitude sweep — the property that makes
// fp16 gradients usable at all.
func TestPropertyFloat16Monotone(t *testing.T) {
	r := rng.New(13)
	prev := math.Inf(-1)
	step := 0.001
	for x := -65000.0; x < 65000; x += step {
		got := Float16from(Float16bits(x))
		if got < prev {
			t.Fatalf("quantizer not monotone at %v: %v < %v", x, got, prev)
		}
		prev = got
		step *= 1.01 // geometric step: dense near zero, coarse at the ends
	}
	for i := 0; i < 10000; i++ {
		x := r.Float64()*130000 - 65000
		q := Float16from(Float16bits(x))
		if math.Abs(q-x) > math.Max(math.Abs(x)/1024, 0x1p-24) {
			t.Fatalf("f16(%v) = %v: error beyond one ulp", x, q)
		}
	}
}
