package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"slices"
	"testing"
)

func TestIndexBlockRoundTrip(t *testing.T) {
	cases := [][]int{
		nil,
		{0},
		{5},
		{0, 1, 2, 3},
		{0, 127, 128, 1 << 20, math.MaxInt32},
		{3, 1000, 1001, 2000000},
	}
	for _, idx := range cases {
		buf, err := AppendIndexBlock(nil, idx)
		if err != nil {
			t.Fatalf("%v: encode: %v", idx, err)
		}
		if n, ok := IndexBytes(idx); !ok || n != len(buf) {
			t.Fatalf("%v: IndexBytes says %d (ok=%v), encoder wrote %d", idx, n, ok, len(buf))
		}
		// Trailing bytes past the block must be left unconsumed.
		got, used, err := DecodeIndexBlock(append(buf, 0xAA, 0xBB), len(idx), nil)
		if err != nil {
			t.Fatalf("%v: decode: %v", idx, err)
		}
		if used != len(buf) {
			t.Fatalf("%v: consumed %d bytes, want %d", idx, used, len(buf))
		}
		if !slices.Equal(got, slices.Clone(idx)) && len(idx) > 0 {
			t.Fatalf("%v: round trip got %v", idx, got)
		}
	}
}

func TestAppendIndexBlockRejectsInvalid(t *testing.T) {
	for _, idx := range [][]int{
		{-1},
		{1, 1},
		{2, 1},
		{0, math.MaxInt32 + 1},
	} {
		prefix := []byte{0x7F}
		out, err := AppendIndexBlock(prefix, idx)
		if err == nil {
			t.Fatalf("%v: encoder accepted an invalid index list", idx)
		}
		if !bytes.Equal(out, prefix) {
			t.Fatalf("%v: dst modified past its original length on error", idx)
		}
	}
}

// TestDecodeIndexBlockUntrusted drives the decoder with bytes no encoder
// produced: truncation, varint overflow, counts the buffer cannot hold,
// and deltas that push an index past the representable range must all be
// errors — never panics, never huge speculative allocations.
func TestDecodeIndexBlockUntrusted(t *testing.T) {
	overflowVarint := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01} // 2^63
	bigDelta := binary.AppendUvarint(nil, uint64(math.MaxInt32))                         // index MaxInt32: fine once...
	twoBig := append(slices.Clone(bigDelta), bigDelta...)                                // ...but not twice (overflow)

	cases := []struct {
		name  string
		buf   []byte
		count int
	}{
		{"negative count", []byte{0x00}, -1},
		{"count exceeds buffer", []byte{0x00, 0x00}, 3},
		{"huge count empty buffer", nil, math.MaxInt32},
		{"truncated varint", []byte{0x80}, 1},
		{"truncated second entry", []byte{0x05, 0x80}, 2},
		{"varint overflow", overflowVarint, 1},
		{"delta overflows index", twoBig, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, _, err := DecodeIndexBlock(c.buf, c.count, nil); err == nil {
				t.Fatalf("decoder accepted malformed input")
			}
		})
	}
}

// FuzzDecodeIndexBlock feeds raw bytes and arbitrary counts to the
// standalone index-block decoder: it must never panic, and anything it
// accepts must be a strictly increasing list whose canonical re-encoding
// decodes back identically (byte equality with the input is not required:
// like binary.Uvarint, the decoder tolerates non-minimal varints).
func FuzzDecodeIndexBlock(f *testing.F) {
	for _, idx := range [][]int{{0, 1, 2}, {5, 1000}, {math.MaxInt32}} {
		buf, err := AppendIndexBlock(nil, idx)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf, uint16(len(idx)))
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, uint16(1))
	f.Fuzz(func(t *testing.T, buf []byte, count16 uint16) {
		count := int(count16)
		idx, used, err := DecodeIndexBlock(buf, count, nil)
		if err != nil {
			return
		}
		if len(idx) != count || used > len(buf) {
			t.Fatalf("accepted decode has %d indices (want %d), consumed %d of %d",
				len(idx), count, used, len(buf))
		}
		re, err := AppendIndexBlock(nil, idx)
		if err != nil {
			t.Fatalf("accepted decode does not re-encode: %v", err)
		}
		back, used2, err := DecodeIndexBlock(re, count, nil)
		if err != nil || used2 != len(re) || !slices.Equal(back, idx) {
			t.Fatalf("canonical re-encoding does not round-trip: %v, %v vs %v", err, back, idx)
		}
	})
}
