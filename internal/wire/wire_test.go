package wire

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

var allFormats = []Format{COO32, COO16, Bitmap32, Bitmap16}

// roundTrip encodes (ng, idx, vals) in format f and decodes it back,
// failing the test on any error or mismatch in format, length or indices.
// It returns the decoded values and the encoded size.
func roundTrip(t *testing.T, f Format, ng int, idx []int, vals []float64) ([]float64, int) {
	t.Helper()
	buf, err := AppendEncode(nil, f, ng, idx, vals)
	if err != nil {
		t.Fatalf("%v encode: %v", f, err)
	}
	if got, want := len(buf), EncodedSize(f, ng, idx); got != want {
		t.Fatalf("%v: encoded %d bytes, EncodedSize says %d", f, got, want)
	}
	gf, gng, gidx, gvals, err := DecodeInto(buf, nil, nil)
	if err != nil {
		t.Fatalf("%v decode: %v", f, err)
	}
	if gf != f || gng != ng {
		t.Fatalf("%v: decoded header (%v, %d), want (%v, %d)", f, gf, gng, f, ng)
	}
	if len(gidx) != len(idx) {
		t.Fatalf("%v: decoded %d indices, want %d", f, len(gidx), len(idx))
	}
	for i := range idx {
		if gidx[i] != idx[i] {
			t.Fatalf("%v: index %d decoded as %d, want %d", f, i, gidx[i], idx[i])
		}
	}
	return gvals, len(buf)
}

func TestRoundTripAllFormats(t *testing.T) {
	ng := 1000
	idx := []int{0, 1, 7, 8, 300, 301, 999}
	vals := []float64{-1.5, 0, 0.25, 1e-3, -7.75, 42, 0.5}
	for _, f := range allFormats {
		gvals, _ := roundTrip(t, f, ng, idx, vals)
		for i, v := range vals {
			want := float64(float32(v))
			if f.valueBytes() == 2 {
				want = Float16from(Float16bits(v))
			}
			if gvals[i] != want {
				t.Errorf("%v: value %d decoded as %v, want %v", f, i, gvals[i], want)
			}
		}
	}
}

func TestRoundTripEmptyAndFull(t *testing.T) {
	for _, f := range allFormats {
		// Empty selection.
		gvals, _ := roundTrip(t, f, 64, nil, nil)
		if len(gvals) != 0 {
			t.Errorf("%v: empty round trip returned %d values", f, len(gvals))
		}
		// Zero-length vector.
		roundTrip(t, f, 0, nil, nil)
		// Full vector: every index present.
		const ng = 130
		idx := make([]int, ng)
		vals := make([]float64, ng)
		for i := range idx {
			idx[i] = i
			vals[i] = float64(i) - 60
		}
		roundTrip(t, f, ng, idx, vals)
	}
}

func TestEncodeErrors(t *testing.T) {
	cases := map[string]struct {
		f    Format
		ng   int
		idx  []int
		vals []float64
	}{
		"unknown format":  {Format(0), 10, []int{1}, []float64{1}},
		"length mismatch": {COO32, 10, []int{1, 2}, []float64{1}},
		"negative ng":     {COO32, -1, nil, nil},
		"negative index":  {Bitmap32, 10, []int{-1}, []float64{1}},
		"out of range":    {COO32, 10, []int{10}, []float64{1}},
		"duplicate":       {COO32, 10, []int{3, 3}, []float64{1, 2}},
		"unsorted":        {Bitmap16, 10, []int{5, 2}, []float64{1, 2}},
	}
	for name, c := range cases {
		if _, err := AppendEncode(nil, c.f, c.ng, c.idx, c.vals); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	good, err := AppendEncode(nil, COO32, 100, []int{3, 50}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	bm, err := AppendEncode(nil, Bitmap32, 100, []int{3, 50}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":             {},
		"unknown format":    {0xee, 10, 0},
		"truncated header":  good[:2],
		"truncated indices": good[:4],
		"truncated values":  good[:len(good)-1],
		"trailing bytes":    append(append([]byte(nil), good...), 0),
		"bitmap truncated":  bm[:5],
	}
	// Bitmap popcount disagreeing with the nnz header.
	bad := append([]byte(nil), bm...)
	bad[3+3/8] |= 1 << 7 // set an extra bit in the bitmap block
	cases["popcount mismatch"] = bad
	// Hostile headers claiming gigantic nnz/ng over a tiny body: must be
	// rejected cheaply, before any nnz-sized allocation happens.
	var varint [binary.MaxVarintLen64]byte
	huge := []byte{byte(COO32)}
	huge = append(huge, varint[:binary.PutUvarint(varint[:], math.MaxInt32-1)]...) // ng
	huge = append(huge, varint[:binary.PutUvarint(varint[:], 1<<30)]...)           // nnz
	cases["huge nnz, empty body"] = huge
	hugeBM := []byte{byte(Bitmap16)}
	hugeBM = append(hugeBM, varint[:binary.PutUvarint(varint[:], math.MaxInt32-1)]...)
	hugeBM = append(hugeBM, varint[:binary.PutUvarint(varint[:], 1<<30)]...)
	cases["huge bitmap, empty body"] = hugeBM

	for name, buf := range cases {
		if _, _, _, _, err := DecodeInto(buf, nil, nil); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestPickComputesExactMinimum(t *testing.T) {
	// Low density: COO must win. High density: bitmap must win.
	ng := 100000
	sparseIdx := []int{5, 20000, 77777}
	denseIdx := make([]int, ng/2)
	for i := range denseIdx {
		denseIdx[i] = 2 * i
	}
	for _, c := range []struct {
		idx  []int
		prec Precision
	}{{sparseIdx, Float32}, {sparseIdx, Float16}, {denseIdx, Float32}, {denseIdx, Float16}} {
		f, size := Pick(ng, c.idx, c.prec)
		coo, bm := COO32, Bitmap32
		if c.prec == Float16 {
			coo, bm = COO16, Bitmap16
		}
		min := EncodedSize(coo, ng, c.idx)
		if s := EncodedSize(bm, ng, c.idx); s < min {
			min = s
		}
		if size != min {
			t.Errorf("Pick(%d idx, prec %d) size %d, want exact min %d", len(c.idx), c.prec, size, min)
		}
		if size != EncodedSize(f, ng, c.idx) {
			t.Errorf("Pick returned inconsistent (format, size)")
		}
	}
	if f, _ := Pick(ng, sparseIdx, Float32); f != COO32 {
		t.Errorf("sparse selection picked %v, want coo32", f)
	}
	if f, _ := Pick(ng, denseIdx, Float32); f != Bitmap32 {
		t.Errorf("half-dense selection picked %v, want bitmap32", f)
	}
}

func TestIndexBytes(t *testing.T) {
	if n, ok := IndexBytes([]int{0, 1, 2, 3}); !ok || n != 4 {
		t.Errorf("dense run: (%d, %v), want (4, true)", n, ok)
	}
	// Gap of 129 needs a 2-byte varint (128 after the −1 shift).
	if n, ok := IndexBytes([]int{0, 129}); !ok || n != 3 {
		t.Errorf("gap 129: (%d, %v), want (3, true)", n, ok)
	}
	if _, ok := IndexBytes([]int{3, 3}); ok {
		t.Error("duplicate accepted")
	}
	if _, ok := IndexBytes([]int{-1, 4}); ok {
		t.Error("negative accepted")
	}
	if n, ok := IndexBytes(nil); !ok || n != 0 {
		t.Errorf("empty: (%d, %v), want (0, true)", n, ok)
	}
}

func TestFloat16Conversion(t *testing.T) {
	exact := []float64{0, 1, -1, 0.5, -0.25, 2048, 65504, -65504, 0x1p-14, 0x1p-24, -0x1p-24}
	for _, v := range exact {
		if got := Float16from(Float16bits(v)); got != v {
			t.Errorf("f16 round trip of exactly-representable %v gave %v", v, got)
		}
	}
	if Float16bits(0) != 0 || Float16bits(math.Copysign(0, -1)) != 0x8000 {
		t.Error("signed zeros not preserved")
	}
	if v := Float16from(Float16bits(math.Inf(1))); !math.IsInf(v, 1) {
		t.Errorf("+Inf became %v", v)
	}
	if v := Float16from(Float16bits(math.Inf(-1))); !math.IsInf(v, -1) {
		t.Errorf("-Inf became %v", v)
	}
	if v := Float16from(Float16bits(math.NaN())); !math.IsNaN(v) {
		t.Errorf("NaN became %v", v)
	}
	// Overflow saturates to Inf; deep underflow flushes to zero.
	if v := Float16from(Float16bits(1e6)); !math.IsInf(v, 1) {
		t.Errorf("65504-overflow became %v", v)
	}
	if v := Float16from(Float16bits(1e-9)); v != 0 {
		t.Errorf("underflow became %v", v)
	}
	// Round-to-nearest-even: 2049 is exactly between 2048 and 2050 in
	// binary16 (ulp 2 at this magnitude) and must round to the even 2048.
	if v := Float16from(Float16bits(2049)); v != 2048 {
		t.Errorf("2049 rounded to %v, want 2048 (ties to even)", v)
	}
	if v := Float16from(Float16bits(2051)); v != 2052 {
		t.Errorf("2051 rounded to %v, want 2052 (ties to even)", v)
	}
	// Relative error within half-precision epsilon for normal values.
	for _, v := range []float64{0.1, 3.14159, -123.456, 999.9} {
		got := Float16from(Float16bits(v))
		if rel := math.Abs(got-v) / math.Abs(v); rel > 1.0/1024 {
			t.Errorf("f16(%v) = %v, relative error %v too large", v, got, rel)
		}
	}
}

func TestFormatString(t *testing.T) {
	for _, f := range allFormats {
		if s := f.String(); s == "" || strings.Contains(s, "Format(") {
			t.Errorf("format %d has no name: %q", uint8(f), s)
		}
	}
	if s := Format(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown format string %q", s)
	}
}

// TestSteadyStateZeroAlloc asserts the acceptance criterion: with warmed
// caller-owned buffers, Encode and DecodeInto allocate nothing.
func TestSteadyStateZeroAlloc(t *testing.T) {
	ng := 100000
	idx := make([]int, 0, 1000)
	vals := make([]float64, 0, 1000)
	for i := 0; i < 1000; i++ {
		idx = append(idx, i*97)
		vals = append(vals, float64(i)*0.25-100)
	}
	for _, f := range allFormats {
		var buf []byte
		var err error
		buf, err = AppendEncode(buf[:0], f, ng, idx, vals)
		if err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(50, func() {
			buf, err = AppendEncode(buf[:0], f, ng, idx, vals)
		}); n != 0 {
			t.Errorf("%v: AppendEncode allocates %.1f per run in steady state", f, n)
		}
		dIdx := make([]int, 0, len(idx))
		dVals := make([]float64, 0, len(vals))
		if n := testing.AllocsPerRun(50, func() {
			_, _, dIdx, dVals, err = DecodeInto(buf, dIdx, dVals)
		}); n != 0 {
			t.Errorf("%v: DecodeInto allocates %.1f per run in steady state", f, n)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	// The automatic path (Pick + encode) must be allocation-free too.
	var buf []byte
	buf, _, _ = AppendAuto(buf[:0], ng, idx, vals, Float32)
	if n := testing.AllocsPerRun(50, func() {
		buf, _, _ = AppendAuto(buf[:0], ng, idx, vals, Float32)
	}); n != 0 {
		t.Errorf("AppendAuto allocates %.1f per run in steady state", n)
	}
}
