// Standalone COO index-block codec: the varint delta encoding of a sorted
// index list, without the format/ng/nnz header of the full payloads. The
// comm transport frames int collectives with it, so — unlike the encoder
// round-trips the original fuzzers exercised — its decoder must survive
// bytes this process never produced: truncated buffers, varint overflow,
// counts exceeding what the buffer can hold. Every failure is an error,
// never a panic or an unbounded allocation.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendIndexBlock appends the COO varint delta index block of idx to dst
// and returns the extended buffer: uvarint(idx[0]), then
// uvarint(idx[i]−idx[i−1]−1) for each subsequent index — the same block
// the full payload layout embeds. idx must be strictly increasing,
// non-negative and bounded by MaxInt32; violations return an error with
// dst unmodified past its original length.
func AppendIndexBlock(dst []byte, idx []int) ([]byte, error) {
	var varint [binary.MaxVarintLen64]byte
	prev := -1
	base := len(dst)
	for _, ix := range idx {
		if ix <= prev || ix > math.MaxInt32 {
			return dst[:base], fmt.Errorf("wire: index %d not strictly increasing within [0,%d]", ix, math.MaxInt32)
		}
		dst = append(dst, varint[:binary.PutUvarint(varint[:], uint64(ix-prev-1))]...)
		prev = ix
	}
	return dst, nil
}

// DecodeIndexBlock decodes count indices from the front of buf into idx
// (reusing its capacity, growing only when insufficient) and returns the
// filled slice plus the number of bytes consumed. buf is untrusted: a
// negative or impossible count (every index needs at least one byte), a
// truncated or malformed varint, or a delta pushing an index past MaxInt32
// all return an error before any proportional allocation happens.
func DecodeIndexBlock(buf []byte, count int, idx []int) ([]int, int, error) {
	out := idx[:0]
	if count < 0 {
		return out, 0, fmt.Errorf("wire: negative index count %d", count)
	}
	if count > len(buf) {
		return out, 0, fmt.Errorf("wire: buffer of %d bytes cannot hold %d indices", len(buf), count)
	}
	if cap(out) < count {
		out = make([]int, 0, count)
	}
	rest := buf
	prev := -1
	for i := 0; i < count; i++ {
		d, n := binary.Uvarint(rest)
		if n <= 0 {
			return out, 0, fmt.Errorf("wire: index block truncated at entry %d", i)
		}
		rest = rest[n:]
		if d > math.MaxInt32 || prev+1+int(d) > math.MaxInt32 {
			return out, 0, fmt.Errorf("wire: index overflow at entry %d", i)
		}
		prev = prev + 1 + int(d)
		out = append(out, prev)
	}
	return out, len(buf) - len(rest), nil
}
