package wire

import "math"

// IEEE 754 binary16 conversion for the fp16-quantized wire formats. The
// conversion goes through float32 (matching how GPU systems cast before
// transmission) and rounds to nearest, ties to even. Out-of-range
// magnitudes saturate to ±Inf, NaN is preserved as a quiet NaN, and
// subnormal halves (|x| < 2^-14) are produced and consumed exactly.

// Float16bits converts x to its binary16 bit pattern.
func Float16bits(x float64) uint16 {
	b := math.Float32bits(float32(x))
	sign := uint16((b >> 16) & 0x8000)
	exp := int((b >> 23) & 0xff)
	man := b & 0x7fffff

	if exp == 0xff { // Inf or NaN
		if man != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	}

	e := exp - 127 + 15
	if e >= 0x1f {
		return sign | 0x7c00 // overflow: saturate to Inf
	}
	if e <= 0 {
		// Subnormal target (or underflow to zero). The float32 significand
		// with its implicit bit, man|0x800000, scaled by 2^(e-14), is the
		// subnormal payload; shift it down with round-to-nearest-even.
		if e < -10 {
			return sign // underflows even the smallest subnormal
		}
		man |= 0x800000
		shift := uint(14 - e) // in [14, 24]
		v := uint16(man >> shift)
		rem := man & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && v&1 == 1) {
			v++
		}
		return sign | v
	}

	// Normal target: drop 23−10 = 13 significand bits with
	// round-to-nearest-even. A mantissa carry propagates into the exponent
	// bits, which is exactly the correct rounding (up to Inf at the top).
	h := sign | uint16(e)<<10 | uint16(man>>13)
	rem := man & 0x1fff
	if rem > 0x1000 || (rem == 0x1000 && h&1 == 1) {
		h++
	}
	return h
}

// Quantize16 rounds x through IEEE binary16 and back: the exact value a
// receiver decodes from an fp16 wire payload carrying x. The quantized
// trainer uses it for the union entries that ride the value all-reduce
// without passing through an encoded upload, so every transmitted value —
// encoded or not — is the same function of its fp32 original.
func Quantize16(x float64) float64 { return Float16from(Float16bits(x)) }

// MaxFloat16 is the largest finite binary16 value (2^15 × (1 + 1023/1024)).
const MaxFloat16 = 65504

// Sat16 clamps x to the finite binary16 range [-MaxFloat16, MaxFloat16].
// Quantize16 alone saturates out-of-range magnitudes to ±Inf — correct for
// a codec, catastrophic inside a training update (one oversized
// error-feedback entry would turn the aggregated update infinite). The
// quantized trainer therefore saturates to the largest finite half before
// quantizing, the standard behavior of fp16 gradient compression. NaN
// passes through (the trainer's NaN accounting owns that case).
func Sat16(x float64) float64 {
	if x > MaxFloat16 {
		return MaxFloat16
	}
	if x < -MaxFloat16 {
		return -MaxFloat16
	}
	return x
}

// Float16from converts a binary16 bit pattern back to float64.
func Float16from(h uint16) float64 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	man := uint32(h & 0x3ff)
	switch exp {
	case 0:
		// Zero or subnormal: man × 2^-24.
		v := float64(man) * 0x1p-24
		if sign != 0 {
			v = -v
		}
		return v
	case 0x1f:
		if man != 0 {
			return math.NaN()
		}
		return float64(math.Float32frombits(sign | 0x7f800000))
	}
	return float64(math.Float32frombits(sign | (exp-15+127)<<23 | man<<13))
}
