// Package wire implements the byte-level codecs that turn a sparse gradient
// slice — strictly increasing indices plus float64 values — into an actual
// network payload. Until this package existed the simulator modeled
// communication from element counts; a codec makes every sparsifier's
// footprint byte-accurate and benchmarkable, the way DGC and SIDCo report
// compression ratios.
//
// Four formats are provided, the cross product of two index encodings and
// two value precisions:
//
//	COO32 / COO16       varint delta-encoded indices + fp32 / fp16 values
//	Bitmap32 / Bitmap16 presence bitmap over [0, ng) + fp32 / fp16 values
//
// COO shrinks with density (a dense run of indices costs one byte per
// index), while the bitmap costs a fixed ceil(ng/8) bytes regardless of
// density — so the bitmap wins once the per-index varint bytes exceed
// ng/8/nnz, around d ≈ 0.125 for single-byte deltas and lower when gaps
// need multi-byte varints. Pick computes both exactly and returns the
// cheaper format; nothing here guesses from density heuristics.
//
// All encoders append into caller-owned buffers and all decoders fill
// caller-owned slices, growing them only when capacity is insufficient:
// the steady-state hot path of a training iteration allocates nothing here
// (asserted with testing.AllocsPerRun in the tests).
//
// Layout, little-endian throughout:
//
//	[1 byte format] [uvarint ng] [uvarint nnz] [index block] [value block]
//
// COO index block: uvarint(idx[0]), then uvarint(idx[i] − idx[i−1] − 1) for
// each subsequent index (indices are strictly increasing, so the −1 is
// free and keeps single-byte deltas up to a gap of 128). Bitmap index
// block: ceil(ng/8) bytes, bit i%8 of byte i/8 set iff index i is present.
// Value block: nnz little-endian fp32 (4 B) or IEEE binary16 (2 B) values
// in index order.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Format identifies one sparse wire encoding.
type Format uint8

const (
	// COO32 is varint delta-encoded indices with float32 values.
	COO32 Format = 1 + iota
	// COO16 is varint delta-encoded indices with float16 values.
	COO16
	// Bitmap32 is a presence bitmap with float32 values.
	Bitmap32
	// Bitmap16 is a presence bitmap with float16 values.
	Bitmap16
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case COO32:
		return "coo32"
	case COO16:
		return "coo16"
	case Bitmap32:
		return "bitmap32"
	case Bitmap16:
		return "bitmap16"
	}
	return fmt.Sprintf("wire.Format(%d)", uint8(f))
}

// valueBytes returns the per-value wire size of the format, or 0 for an
// unknown format.
func (f Format) valueBytes() int {
	switch f {
	case COO32, Bitmap32:
		return 4
	case COO16, Bitmap16:
		return 2
	}
	return 0
}

// bitmap reports whether the format uses the bitmap index block.
func (f Format) bitmap() bool { return f == Bitmap32 || f == Bitmap16 }

// Precision selects the value quantization of the automatic format choice.
type Precision uint8

const (
	// Float32 transmits values as fp32 — lossless relative to what
	// GPU systems ship, and what the trainer accounts with.
	Float32 Precision = iota
	// Float16 transmits values as IEEE binary16 — half the value bytes at
	// ~3 decimal digits, the quantized variant DGC-class systems use.
	Float16
)

// uvarintLen returns the encoded size of x as a uvarint.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// headerSize returns the byte count of the common header.
func headerSize(ng, nnz int) int {
	return 1 + uvarintLen(uint64(ng)) + uvarintLen(uint64(nnz))
}

// IndexBytes returns the exact byte count of the COO varint delta index
// block for idx, and whether idx is a valid index list (strictly
// increasing, non-negative). Callers accounting for arbitrary int payloads
// fall back to 4 bytes per element when ok is false.
func IndexBytes(idx []int) (n int, ok bool) {
	prev := -1
	for _, ix := range idx {
		if ix <= prev {
			return 0, false
		}
		n += uvarintLen(uint64(ix - prev - 1))
		prev = ix
	}
	return n, true
}

// EncodedSize returns the exact encoded size in bytes of (idx, values) in
// format f over a length-ng vector, without encoding. idx must be a valid
// strictly increasing index list; the result is unspecified otherwise.
func EncodedSize(f Format, ng int, idx []int) int {
	nnz := len(idx)
	size := headerSize(ng, nnz) + nnz*f.valueBytes()
	if f.bitmap() {
		return size + (ng+7)/8
	}
	ib, _ := IndexBytes(idx)
	return size + ib
}

// Pick returns the cheapest format for the given index set at the given
// precision, and its exact encoded size. The choice is by exact size, not a
// density heuristic: it compares the COO varint block (computed from the
// actual gaps) against the fixed ceil(ng/8) bitmap.
func Pick(ng int, idx []int, prec Precision) (Format, int) {
	coo, bm := COO32, Bitmap32
	if prec == Float16 {
		coo, bm = COO16, Bitmap16
	}
	cooSize := EncodedSize(coo, ng, idx)
	bmSize := EncodedSize(bm, ng, idx)
	if bmSize < cooSize {
		return bm, bmSize
	}
	return coo, cooSize
}

// DenseBytes returns the wire size of the dense fp32 baseline — what an
// uncompressed system ships per worker — used as the numerator of
// compression ratios.
func DenseBytes(ng int) int64 { return 4 * int64(ng) }

// zeros is the block source for alloc-free zero extension of byte buffers.
var zeros [256]byte

// AppendEncode appends the format-f encoding of (idx, values) over a
// length-ng vector to dst and returns the extended buffer. idx must be
// strictly increasing within [0, ng) and len(values) must equal len(idx);
// violations return an error with dst unmodified past its original length.
// With sufficient capacity in dst the call performs zero heap allocations.
func AppendEncode(dst []byte, f Format, ng int, idx []int, values []float64) ([]byte, error) {
	if f.valueBytes() == 0 {
		return dst, fmt.Errorf("wire: unknown format %d", uint8(f))
	}
	if len(idx) != len(values) {
		return dst, fmt.Errorf("wire: %d indices but %d values", len(idx), len(values))
	}
	if ng < 0 {
		return dst, fmt.Errorf("wire: negative vector length %d", ng)
	}
	prev := -1
	for _, ix := range idx {
		if ix <= prev || ix >= ng {
			return dst, fmt.Errorf("wire: index %d not strictly increasing within [0,%d)", ix, ng)
		}
		prev = ix
	}

	var varint [binary.MaxVarintLen64]byte
	dst = append(dst, byte(f))
	dst = append(dst, varint[:binary.PutUvarint(varint[:], uint64(ng))]...)
	dst = append(dst, varint[:binary.PutUvarint(varint[:], uint64(len(idx)))]...)

	if f.bitmap() {
		base := len(dst)
		for n := (ng + 7) / 8; n > 0; {
			c := n
			if c > len(zeros) {
				c = len(zeros)
			}
			dst = append(dst, zeros[:c]...)
			n -= c
		}
		for _, ix := range idx {
			dst[base+ix/8] |= 1 << (ix % 8)
		}
	} else {
		prev = -1
		for _, ix := range idx {
			dst = append(dst, varint[:binary.PutUvarint(varint[:], uint64(ix-prev-1))]...)
			prev = ix
		}
	}

	if f.valueBytes() == 4 {
		for _, v := range values {
			dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v)))
		}
	} else {
		for _, v := range values {
			dst = binary.LittleEndian.AppendUint16(dst, Float16bits(v))
		}
	}
	return dst, nil
}

// AppendAuto picks the cheapest format for (idx, values) at the given
// precision (see Pick), appends its encoding to dst, and returns the
// extended buffer and the chosen format.
func AppendAuto(dst []byte, ng int, idx []int, values []float64, prec Precision) ([]byte, Format, error) {
	f, _ := Pick(ng, idx, prec)
	out, err := AppendEncode(dst, f, ng, idx, values)
	return out, f, err
}

// DecodeInto decodes a payload produced by AppendEncode into caller-owned
// slices, growing them only when capacity is insufficient, and returns the
// format, the dense vector length, and the filled slices. Every byte of buf
// must be consumed; trailing or missing bytes, malformed varints, indices
// out of order or range, and bitmap popcount mismatches are all errors.
func DecodeInto(buf []byte, idx []int, values []float64) (f Format, ng int, outIdx []int, outVals []float64, err error) {
	outIdx, outVals = idx[:0], values[:0]
	if len(buf) < 1 {
		return 0, 0, outIdx, outVals, fmt.Errorf("wire: empty buffer")
	}
	f = Format(buf[0])
	vb := f.valueBytes()
	if vb == 0 {
		return 0, 0, outIdx, outVals, fmt.Errorf("wire: unknown format byte %d", buf[0])
	}
	rest := buf[1:]
	ung, n := binary.Uvarint(rest)
	if n <= 0 || ung > math.MaxInt32 {
		return f, 0, outIdx, outVals, fmt.Errorf("wire: bad vector length")
	}
	rest = rest[n:]
	unnz, n := binary.Uvarint(rest)
	if n <= 0 || unnz > ung {
		return f, 0, outIdx, outVals, fmt.Errorf("wire: bad nnz")
	}
	rest = rest[n:]
	ng, nnz := int(ung), int(unnz)

	// Bound the pre-allocation by what the remaining buffer can possibly
	// hold before trusting the header's nnz: every entry needs at least one
	// index byte (COO) or its value bytes, so a short buffer with a huge
	// claimed nnz is rejected here instead of forcing a giant allocation.
	minEntry := vb
	if !f.bitmap() {
		minEntry++ // at least one varint byte per index
	} else if (ng+7)/8 > len(rest) {
		return f, ng, outIdx, outVals, fmt.Errorf("wire: bitmap truncated: %d bytes, want %d", len(rest), (ng+7)/8)
	}
	if nnz > 0 && nnz > len(rest)/minEntry {
		return f, ng, outIdx, outVals, fmt.Errorf("wire: buffer of %d bytes cannot hold nnz=%d", len(rest), nnz)
	}
	if cap(outIdx) < nnz {
		outIdx = make([]int, 0, nnz)
	}
	if cap(outVals) < nnz {
		outVals = make([]float64, 0, nnz)
	}

	if f.bitmap() {
		nb := (ng + 7) / 8
		if len(rest) < nb {
			return f, ng, outIdx, outVals, fmt.Errorf("wire: bitmap truncated: %d bytes, want %d", len(rest), nb)
		}
		for bi, b := range rest[:nb] {
			for ; b != 0; b &= b - 1 {
				ix := bi*8 + bits.TrailingZeros8(b)
				if ix >= ng {
					return f, ng, outIdx, outVals, fmt.Errorf("wire: bitmap bit %d beyond vector length %d", ix, ng)
				}
				outIdx = append(outIdx, ix)
			}
		}
		if len(outIdx) != nnz {
			return f, ng, outIdx, outVals, fmt.Errorf("wire: bitmap has %d bits set, header says %d", len(outIdx), nnz)
		}
		rest = rest[nb:]
	} else {
		prev := -1
		for i := 0; i < nnz; i++ {
			d, n := binary.Uvarint(rest)
			if n <= 0 {
				return f, ng, outIdx, outVals, fmt.Errorf("wire: index block truncated at entry %d", i)
			}
			rest = rest[n:]
			ix := prev + 1 + int(d)
			if d > uint64(ng) || ix >= ng {
				return f, ng, outIdx, outVals, fmt.Errorf("wire: index %d out of range [0,%d)", ix, ng)
			}
			outIdx = append(outIdx, ix)
			prev = ix
		}
	}

	if len(rest) != nnz*vb {
		return f, ng, outIdx, outVals, fmt.Errorf("wire: value block is %d bytes, want %d", len(rest), nnz*vb)
	}
	if vb == 4 {
		for i := 0; i < nnz; i++ {
			bits := binary.LittleEndian.Uint32(rest[4*i:])
			outVals = append(outVals, float64(math.Float32frombits(bits)))
		}
	} else {
		for i := 0; i < nnz; i++ {
			outVals = append(outVals, Float16from(binary.LittleEndian.Uint16(rest[2*i:])))
		}
	}
	return f, ng, outIdx, outVals, nil
}
