package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeInto feeds arbitrary bytes to the decoder: it must never panic,
// and anything it accepts must re-encode (in the same format) to a payload
// that decodes to the identical selection — i.e. decode∘encode is the
// identity on the decoder's accepted language.
func FuzzDecodeInto(f *testing.F) {
	seed := [][]struct {
		ng   int
		idx  []int
		vals []float64
	}{{
		{0, nil, nil},
		{1, []int{0}, []float64{1.5}},
		{1000, []int{0, 1, 999}, []float64{-1, 0, 65000}},
		{257, []int{13, 14, 15, 128, 256}, []float64{1e-5, -2, 3, 4, 5}},
	}}
	for _, cases := range seed {
		for _, c := range cases {
			for _, fmtc := range allFormats {
				buf, err := AppendEncode(nil, fmtc, c.ng, c.idx, c.vals)
				if err != nil {
					f.Fatal(err)
				}
				f.Add(buf)
			}
		}
	}
	f.Add([]byte{byte(COO32), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{byte(Bitmap16), 0x10, 0x03, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, buf []byte) {
		format, ng, idx, vals, err := DecodeInto(buf, nil, nil)
		if err != nil {
			return
		}
		// Accepted payloads must round-trip bit-identically: the decoded
		// selection re-encodes to a canonical payload that decodes equal.
		re, err := AppendEncode(nil, format, ng, idx, vals)
		if err != nil {
			t.Fatalf("re-encode of accepted payload failed: %v", err)
		}
		f2, ng2, idx2, vals2, err := DecodeInto(re, nil, nil)
		if err != nil {
			t.Fatalf("decode of re-encoded payload failed: %v", err)
		}
		if f2 != format || ng2 != ng || len(idx2) != len(idx) || len(vals2) != len(vals) {
			t.Fatalf("round trip changed shape: (%v,%d,%d) vs (%v,%d,%d)",
				format, ng, len(idx), f2, ng2, len(idx2))
		}
		for i := range idx {
			if idx2[i] != idx[i] {
				t.Fatalf("round trip changed index %d: %d vs %d", i, idx[i], idx2[i])
			}
		}
		// Values compare via their wire bits (NaN-safe).
		rv, err := AppendEncode(nil, format, ng, idx2, vals2)
		if err != nil || !bytes.Equal(re, rv) {
			t.Fatalf("re-encoding is not a fixed point (err %v)", err)
		}
	})
}

// FuzzEncodeDecodeIdentity drives the encoder with fuzzer-chosen shapes:
// any selection the encoder accepts must decode back identically.
func FuzzEncodeDecodeIdentity(f *testing.F) {
	f.Add(uint16(1000), uint64(0x12345), byte(1), byte(0))
	f.Add(uint16(64), uint64(0xffffffff), byte(3), byte(1))
	f.Add(uint16(0), uint64(0), byte(2), byte(0))
	f.Fuzz(func(t *testing.T, ng16 uint16, pattern uint64, fb byte, vseed byte) {
		ng := int(ng16)
		format := allFormats[int(fb)%len(allFormats)]
		// Derive a strictly increasing index set from the bit pattern.
		var idx []int
		var vals []float64
		x := pattern | 1
		for i := 0; i < ng; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			if x&7 == 0 {
				idx = append(idx, i)
				vals = append(vals, float64(int(x%1024))-512+float64(vseed)/7)
			}
		}
		buf, err := AppendEncode(nil, format, ng, idx, vals)
		if err != nil {
			t.Fatalf("encoder rejected a valid selection: %v", err)
		}
		gf, gng, gidx, gvals, err := DecodeInto(buf, nil, nil)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if gf != format || gng != ng || len(gidx) != len(idx) {
			t.Fatalf("shape mismatch")
		}
		for i := range idx {
			if gidx[i] != idx[i] {
				t.Fatalf("index %d: %d vs %d", i, idx[i], gidx[i])
			}
			want := float64(float32(vals[i]))
			if format.valueBytes() == 2 {
				want = Float16from(Float16bits(vals[i]))
			}
			if gvals[i] != want {
				t.Fatalf("value %d: %v vs %v", i, want, gvals[i])
			}
		}
	})
}
