// Package rng provides a splittable, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Reproducibility is a hard requirement for this reproduction: every worker
// in the simulated cluster must compute the same model state from the same
// (seed, rank, iteration) triple, and every experiment must be re-runnable
// bit-for-bit. The standard library's math/rand is seedable but offers no
// principled way to derive independent streams; this package implements
// xoshiro256** with a SplitMix64 seeding stage, which is the construction
// recommended by its authors for generating independent generators.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is invalid; use New.
type RNG struct {
	s0, s1, s2, s3 uint64
	// cached spare normal variate for Gaussian (Marsaglia polar method)
	spare    float64
	hasSpare bool
}

// splitmix64 advances the given state and returns the next output.
// It is used only to expand a user seed into generator state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds produce
// independent-looking streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// xoshiro256** must not be seeded with the all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1
	}
	return r
}

// Split derives a new independent generator from r and the given stream
// identifiers. It does not advance r, so callers may derive any number of
// streams from a single root seed: worker i at iteration t uses
// root.Split(uint64(i), uint64(t)).
func (r *RNG) Split(ids ...uint64) *RNG {
	return r.SplitInto(&RNG{}, ids...)
}

// SplitInto is Split writing the derived generator into caller-owned
// storage, so hot loops can split once per iteration without allocating.
// It returns dst.
func (r *RNG) SplitInto(dst *RNG, ids ...uint64) *RNG {
	// Mix the current state with the ids through SplitMix64. The state is
	// read, not advanced, to keep Split free of side effects.
	h := r.s0 ^ (r.s1 << 1) ^ (r.s2 << 2) ^ (r.s3 << 3)
	for _, id := range ids {
		x := h ^ (id + 0x9e3779b97f4a7c15)
		h = splitmix64(&x)
	}
	sm := h
	dst.s0 = splitmix64(&sm)
	dst.s1 = splitmix64(&sm)
	dst.s2 = splitmix64(&sm)
	dst.s3 = splitmix64(&sm)
	if dst.s0|dst.s1|dst.s2|dst.s3 == 0 {
		dst.s0 = 1
	}
	dst.spare, dst.hasSpare = 0, false
	return dst
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	un := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, un)
		}
	}
	_ = lo
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo = a * b
	hi = a1*b1 + t>>32 + (t&mask+a0*b1)>>32
	return hi, lo
}

// Norm returns a standard normal variate using the Marsaglia polar method.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Exp returns an exponentially distributed variate with rate 1.
func (r *RNG) Exp() float64 {
	u := r.Float64()
	// Guard against log(0); Float64 can return exactly 0.
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples from a Zipf distribution over [0, n) with exponent s > 0
// using inverse-CDF over precomputed weights. For repeated sampling over
// the same support, build a Zipf sampler instead.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with exponent s.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf}
}

// Sample draws one index in [0, n) with Zipf weights.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
