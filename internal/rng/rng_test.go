package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split(0, 1)
	b := root.Split(0, 2)
	c := root.Split(0, 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams with different ids should differ")
	}
	a2 := New(7).Split(0, 1)
	_ = c
	x, y := New(7).Split(0, 1).Uint64(), a2.Uint64()
	if x != y {
		t.Fatal("split must be deterministic")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(1)
	_ = a.Split(2, 3)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split advanced parent state")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(4)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d too far from %f", i, c, want)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(6)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exp mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(200)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfRange(t *testing.T) {
	z := NewZipf(50, 1.1)
	r := New(10)
	counts := make([]int, 50)
	for i := 0; i < 50000; i++ {
		v := z.Sample(r)
		if v < 0 || v >= 50 {
			t.Fatalf("zipf sample %d out of range", v)
		}
		counts[v]++
	}
	// Zipf must be head-heavy: item 0 strictly more popular than item 49.
	if counts[0] <= counts[49] {
		t.Errorf("zipf not head-heavy: counts[0]=%d counts[49]=%d", counts[0], counts[49])
	}
	if counts[0] < 5*counts[49] {
		t.Errorf("zipf head too light: counts[0]=%d counts[49]=%d", counts[0], counts[49])
	}
}

func TestZipfPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(0, 1)
}

func TestMul64AgainstBig(t *testing.T) {
	cases := [][2]uint64{
		{0, 0}, {1, 1}, {math.MaxUint64, math.MaxUint64},
		{1 << 32, 1 << 32}, {0xdeadbeefcafebabe, 0x123456789abcdef0},
	}
	for _, c := range cases {
		hi, lo := mul64(c[0], c[1])
		// Verify via 4-limb schoolbook with 32-bit limbs.
		a0, a1 := c[0]&0xffffffff, c[0]>>32
		b0, b1 := c[1]&0xffffffff, c[1]>>32
		wantLo := c[0] * c[1]
		mid := a1*b0 + (a0*b0)>>32
		wantHi := a1*b1 + mid>>32 + ((mid&0xffffffff)+a0*b1)>>32
		if hi != wantHi || lo != wantLo {
			t.Errorf("mul64(%x,%x) = (%x,%x), want (%x,%x)", c[0], c[1], hi, lo, wantHi, wantLo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Norm()
	}
	_ = sink
}
