package registry

import (
	"testing"

	"repro/internal/store"
)

func TestParseStoreFaultPlanShorthand(t *testing.T) {
	p, err := ParseStoreFaultPlan("torn, enospc:*@3, bitflip:4a1de2b37c09a1f2")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := []store.Fault{
		{Kind: store.FaultTorn},
		{Kind: store.FaultENOSPC, Hash: "*", Put: 3},
		{Kind: store.FaultBitFlip, Hash: "4a1de2b37c09a1f2"},
	}
	if len(p.Faults) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(p.Faults), len(want))
	}
	for i, f := range want {
		if p.Faults[i] != f {
			t.Errorf("fault %d = %+v, want %+v", i, p.Faults[i], f)
		}
	}
}

func TestParseStoreFaultPlanJSON(t *testing.T) {
	p, err := ParseStoreFaultPlan(`{"faults":[{"kind":"torn","hash":"*","put":2}]}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(p.Faults) != 1 || p.Faults[0].Kind != store.FaultTorn || p.Faults[0].Put != 2 {
		t.Fatalf("parsed %+v", p.Faults)
	}
}

func TestParseStoreFaultPlanRejects(t *testing.T) {
	for _, bad := range []string{
		"gamma-ray",                    // unknown kind
		"torn:*@0",                     // non-positive ordinal
		"torn@x",                       // non-numeric ordinal
		`{"faults":[{"kind":"melt"}]}`, // unknown kind via JSON
		`{"nope":1}`,                   // unknown field
	} {
		if _, err := ParseStoreFaultPlan(bad); err == nil {
			t.Errorf("ParseStoreFaultPlan(%q) accepted", bad)
		}
	}
}

func TestParseStoreFaultPlanEmpty(t *testing.T) {
	for _, s := range []string{"", "   ", `{"faults":[]}`} {
		p, err := ParseStoreFaultPlan(s)
		if err != nil || p != nil {
			t.Errorf("ParseStoreFaultPlan(%q) = (%v, %v), want (nil, nil)", s, p, err)
		}
	}
}
