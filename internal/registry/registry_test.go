package registry

import "testing"

// TestEveryNameConstructs: each advertised name must build, and unknown
// names must be rejected — the registry is the single catalog every entry
// point (CLI, experiments, serve) trusts.
func TestEveryNameConstructs(t *testing.T) {
	for _, name := range Workloads() {
		w, err := NewWorkload(name)
		if err != nil || w == nil {
			t.Fatalf("workload %q: %v", name, err)
		}
	}
	if _, err := NewWorkload("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}

	mlp, err := NewWorkload("mlp")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Sparsifiers() {
		f, dense, err := NewFactory(name, mlp, 0.01)
		if err != nil {
			t.Fatalf("sparsifier %q: %v", name, err)
		}
		if dense != (name == "dense") {
			t.Fatalf("sparsifier %q: dense = %v", name, dense)
		}
		if !dense {
			sp := f()
			if sp == nil || sp.Name() == "" {
				t.Fatalf("sparsifier %q: empty instance", name)
			}
		}
	}
	if _, _, err := NewFactory("nope", mlp, 0.01); err == nil {
		t.Fatal("unknown sparsifier accepted")
	}
	// hardthreshold without a workload cannot tune and must error.
	if _, _, err := NewFactory("hardthreshold", nil, 0.01); err == nil {
		t.Fatal("hardthreshold without workload accepted")
	}
}

// TestParsePrecision pins the precision catalog: every advertised name
// parses, empty defaults to fp32, unknown names are rejected.
func TestParsePrecision(t *testing.T) {
	for _, name := range Precisions() {
		q, err := ParsePrecision(name)
		if err != nil {
			t.Fatalf("precision %q: %v", name, err)
		}
		if q != (name == "fp16") {
			t.Fatalf("precision %q: quantize = %v", name, q)
		}
	}
	if q, err := ParsePrecision(""); err != nil || q {
		t.Fatalf("empty precision: (%v, %v), want fp32 default", q, err)
	}
	if _, err := ParsePrecision("fp8"); err == nil {
		t.Fatal("unknown precision accepted")
	}
}
