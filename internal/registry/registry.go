// Package registry maps the string names used at every entry point — the
// CLIs, the experiment harness and the deft-serve job service — onto
// workload and sparsifier constructors. Before it existed each entry point
// carried its own copy of the name switch; a scheme added in one place was
// silently missing from the others.
package registry

import (
	"fmt"
	"net"
	"strings"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/sparsifier"
	"repro/internal/train"
)

// Workloads lists the valid workload names.
func Workloads() []string {
	return []string{"mlp", "vision", "langmodel", "recsys"}
}

// Sparsifiers lists the valid sparsifier names, including the "dense"
// (non-sparsified) baseline.
func Sparsifiers() []string {
	return []string{"deft", "topk", "cltk", "sidco", "randk", "dgc", "gaussiank", "hardthreshold", "dense"}
}

// Precisions lists the valid training wire-precision names: "fp32" ships
// the sparse upload values as float32, "fp16" enables the quantized
// training mode (train.Config.Quantize — the fp16 wire payload is decoded
// into the update, error feedback absorbs the quantization error).
func Precisions() []string {
	return []string{"fp32", "fp16"}
}

// ParsePrecision maps a precision name (empty defaults to fp32) onto
// train.Config.Quantize.
func ParsePrecision(name string) (quantize bool, err error) {
	switch name {
	case "", "fp32":
		return false, nil
	case "fp16":
		return true, nil
	}
	return false, fmt.Errorf("unknown precision %q (known: %s)", name, strings.Join(Precisions(), ", "))
}

// ParseClusterAddr validates a cluster address flag (-cluster-listen,
// -join): it must be host:port, where an empty host means all interfaces
// for listening. Returns the address unchanged on success.
func ParseClusterAddr(s string) (string, error) {
	_, port, err := net.SplitHostPort(s)
	if err != nil {
		return "", fmt.Errorf("cluster address %q: want host:port: %v", s, err)
	}
	if port == "" {
		return "", fmt.Errorf("cluster address %q: missing port", s)
	}
	return s, nil
}

// NewWorkload builds the named workload with its default configuration.
func NewWorkload(name string) (train.Workload, error) {
	switch name {
	case "mlp":
		return models.NewMLP(models.DefaultMLPConfig()), nil
	case "vision":
		return models.NewVision(models.DefaultVisionConfig()), nil
	case "langmodel":
		return models.NewText(models.DefaultTextConfig()), nil
	case "recsys":
		return models.NewRecsys(models.DefaultRecsysConfig()), nil
	}
	return nil, fmt.Errorf("unknown workload %q (known: %s)", name, strings.Join(Workloads(), ", "))
}

// NewFactory builds the per-worker sparsifier factory for name. The
// "dense" baseline reports dense=true with a nil factory (set
// train.Config.DisableSparse). "hardthreshold" tunes its threshold on one
// sample gradient of w at the target density — the pre-training
// hyperparameter step the paper's Table 1 charges it with — and therefore
// needs a non-nil workload; every other scheme ignores w and density.
func NewFactory(name string, w train.Workload, density float64) (factory sparsifier.Factory, dense bool, err error) {
	switch name {
	case "dense":
		return nil, true, nil
	case "deft":
		return core.Factory(core.DefaultOptions()), false, nil
	case "topk":
		return func() sparsifier.Sparsifier { return sparsifier.NewTopK() }, false, nil
	case "cltk":
		return func() sparsifier.Sparsifier { return &sparsifier.CLTK{} }, false, nil
	case "sidco":
		return func() sparsifier.Sparsifier { return &sparsifier.SIDCo{Stages: 3} }, false, nil
	case "randk":
		return func() sparsifier.Sparsifier { return sparsifier.RandK{} }, false, nil
	case "dgc":
		return func() sparsifier.Sparsifier { return &sparsifier.DGC{} }, false, nil
	case "gaussiank":
		return func() sparsifier.Sparsifier { return sparsifier.GaussianK{} }, false, nil
	case "hardthreshold":
		if w == nil {
			return nil, false, fmt.Errorf("sparsifier %q needs a workload to tune its threshold on", name)
		}
		h := sparsifier.TuneHardThreshold(SampleGradient(w), density)
		return func() sparsifier.Sparsifier { return h }, false, nil
	}
	return nil, false, fmt.Errorf("unknown sparsifier %q (known: %s)", name, strings.Join(Sparsifiers(), ", "))
}

// SampleGradient computes one minibatch gradient on a fresh replica of w,
// flattened — the tuning sample for threshold schemes.
func SampleGradient(w train.Workload) []float64 {
	m := w.NewModel()
	params := m.Params()
	nn.ZeroGrads(params)
	m.Step(rng.New(99))
	flat := make([]float64, nn.TotalSize(params))
	train.FlattenGrads(params, flat)
	return flat
}
