package registry

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/comm"
)

// ParseFaultPlan parses a chaos schedule from either a JSON object (the
// comm.FaultPlan wire format, recognised by a leading '{') or the compact
// CLI shorthand: comma-separated clauses of
//
//	straggler:<rank>x<factor>[@<from>[-<until>]]
//	drop:<rank>@<iter>[x<attempts>]
//	transient:<rank>@<iter>[x<attempts>]
//
// e.g. "straggler:1x4,drop:3@120". An empty string returns a nil plan
// (healthy run). Rank bounds are checked later, against the actual cluster
// size, by comm.FaultPlan.Validate.
func ParseFaultPlan(s string) (*comm.FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if strings.HasPrefix(s, "{") {
		p := &comm.FaultPlan{}
		dec := json.NewDecoder(strings.NewReader(s))
		dec.DisallowUnknownFields()
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("fault plan JSON: %w", err)
		}
		if p.Empty() {
			return nil, nil
		}
		return p, nil
	}
	p := &comm.FaultPlan{}
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("fault clause %q: want <kind>:<spec>", clause)
		}
		switch kind {
		case "straggler":
			st, err := parseStraggler(rest)
			if err != nil {
				return nil, fmt.Errorf("fault clause %q: %w", clause, err)
			}
			p.Stragglers = append(p.Stragglers, st)
		case "drop", "transient":
			rank, iter, attempts, err := parseRankAtIter(rest)
			if err != nil {
				return nil, fmt.Errorf("fault clause %q: %w", clause, err)
			}
			if kind == "drop" {
				p.Drops = append(p.Drops, comm.Drop{Rank: rank, Iteration: iter, Attempts: attempts})
			} else {
				p.Transients = append(p.Transients, comm.Transient{Rank: rank, Iteration: iter, Attempts: attempts})
			}
		default:
			return nil, fmt.Errorf("fault clause %q: unknown kind %q (want straggler, drop or transient)", clause, kind)
		}
	}
	if p.Empty() {
		return nil, nil
	}
	return p, nil
}

// parseStraggler parses "<rank>x<factor>[@<from>[-<until>]]".
func parseStraggler(s string) (comm.Straggler, error) {
	var st comm.Straggler
	head, window, hasWindow := strings.Cut(s, "@")
	rankStr, factorStr, ok := strings.Cut(head, "x")
	if !ok {
		return st, fmt.Errorf("want <rank>x<factor>[@<from>[-<until>]]")
	}
	rank, err := strconv.Atoi(rankStr)
	if err != nil {
		return st, fmt.Errorf("rank %q: %w", rankStr, err)
	}
	factor, err := strconv.ParseFloat(factorStr, 64)
	if err != nil {
		return st, fmt.Errorf("factor %q: %w", factorStr, err)
	}
	st = comm.Straggler{Rank: rank, Factor: factor}
	if hasWindow {
		fromStr, untilStr, hasUntil := strings.Cut(window, "-")
		if st.From, err = strconv.Atoi(fromStr); err != nil {
			return st, fmt.Errorf("window start %q: %w", fromStr, err)
		}
		if hasUntil {
			if st.Until, err = strconv.Atoi(untilStr); err != nil {
				return st, fmt.Errorf("window end %q: %w", untilStr, err)
			}
		}
	}
	return st, nil
}

// parseRankAtIter parses "<rank>@<iter>[x<attempts>]".
func parseRankAtIter(s string) (rank, iter, attempts int, err error) {
	rankStr, tail, ok := strings.Cut(s, "@")
	if !ok {
		return 0, 0, 0, fmt.Errorf("want <rank>@<iter>[x<attempts>]")
	}
	iterStr, attemptsStr, hasAttempts := strings.Cut(tail, "x")
	if rank, err = strconv.Atoi(rankStr); err != nil {
		return 0, 0, 0, fmt.Errorf("rank %q: %w", rankStr, err)
	}
	if iter, err = strconv.Atoi(iterStr); err != nil {
		return 0, 0, 0, fmt.Errorf("iteration %q: %w", iterStr, err)
	}
	if hasAttempts {
		if attempts, err = strconv.Atoi(attemptsStr); err != nil {
			return 0, 0, 0, fmt.Errorf("attempts %q: %w", attemptsStr, err)
		}
	}
	return rank, iter, attempts, nil
}
