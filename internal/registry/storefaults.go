package registry

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/store"
)

// ParseStoreFaultPlan parses a storage chaos schedule from either a JSON
// object (the store.FaultPlan wire format, recognised by a leading '{')
// or the compact CLI shorthand: comma-separated clauses of
//
//	<kind>[:<hash>|*][@<put>]
//
// where kind is torn, bitflip or enospc, hash scopes the fault to one
// content address ("*" or omitted matches any put), and put is the
// 1-based ordinal of the matching put to hit (default 1). Examples:
//
//	torn                  tear the first put
//	enospc:*@3            disk full on the third put overall
//	bitflip:4a1de2b37c09a1f2   flip a bit in that entry's first put
//
// An empty string returns a nil plan (healthy store).
func ParseStoreFaultPlan(s string) (*store.FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if strings.HasPrefix(s, "{") {
		p := &store.FaultPlan{}
		dec := json.NewDecoder(strings.NewReader(s))
		dec.DisallowUnknownFields()
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("store fault plan JSON: %w", err)
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if p.Empty() {
			return nil, nil
		}
		return p, nil
	}
	p := &store.FaultPlan{}
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		head, putStr, hasPut := strings.Cut(clause, "@")
		kindStr, hash, _ := strings.Cut(head, ":")
		f := store.Fault{Kind: store.FaultKind(kindStr), Hash: hash}
		if hasPut {
			n, err := strconv.Atoi(putStr)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("store fault clause %q: put ordinal %q: want a positive integer", clause, putStr)
			}
			f.Put = n
		}
		p.Faults = append(p.Faults, f)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
