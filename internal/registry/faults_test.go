package registry

import (
	"reflect"
	"testing"

	"repro/internal/comm"
)

func TestParseFaultPlanShorthand(t *testing.T) {
	cases := []struct {
		in   string
		want *comm.FaultPlan
	}{
		{"", nil},
		{"   ", nil},
		{",,", nil},
		{"straggler:1x4", &comm.FaultPlan{
			Stragglers: []comm.Straggler{{Rank: 1, Factor: 4}},
		}},
		{"straggler:2x1.5@10-20", &comm.FaultPlan{
			Stragglers: []comm.Straggler{{Rank: 2, Factor: 1.5, From: 10, Until: 20}},
		}},
		{"straggler:0x3@5", &comm.FaultPlan{
			Stragglers: []comm.Straggler{{Rank: 0, Factor: 3, From: 5}},
		}},
		{"drop:3@120", &comm.FaultPlan{
			Drops: []comm.Drop{{Rank: 3, Iteration: 120}},
		}},
		{"drop:3@120x2", &comm.FaultPlan{
			Drops: []comm.Drop{{Rank: 3, Iteration: 120, Attempts: 2}},
		}},
		{"transient:0@7", &comm.FaultPlan{
			Transients: []comm.Transient{{Rank: 0, Iteration: 7}},
		}},
		{"straggler:1x4, drop:3@120, transient:0@7x3", &comm.FaultPlan{
			Stragglers: []comm.Straggler{{Rank: 1, Factor: 4}},
			Transients: []comm.Transient{{Rank: 0, Iteration: 7, Attempts: 3}},
			Drops:      []comm.Drop{{Rank: 3, Iteration: 120}},
		}},
	}
	for _, tc := range cases {
		got, err := ParseFaultPlan(tc.in)
		if err != nil {
			t.Errorf("ParseFaultPlan(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseFaultPlan(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseFaultPlanJSON(t *testing.T) {
	in := `{"stragglers":[{"rank":1,"factor":4}],"drops":[{"rank":3,"iteration":120}]}`
	got, err := ParseFaultPlan(in)
	if err != nil {
		t.Fatal(err)
	}
	want := &comm.FaultPlan{
		Stragglers: []comm.Straggler{{Rank: 1, Factor: 4}},
		Drops:      []comm.Drop{{Rank: 3, Iteration: 120}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseFaultPlan(JSON) = %+v, want %+v", got, want)
	}
	// An empty JSON object is a healthy run, same as the empty string.
	if got, err := ParseFaultPlan("{}"); err != nil || got != nil {
		t.Fatalf("ParseFaultPlan({}) = %+v, %v; want nil plan", got, err)
	}
}

func TestParseFaultPlanErrors(t *testing.T) {
	bad := []string{
		"straggler",             // no spec
		"straggler:1",           // missing factor
		"straggler:ax2",         // bad rank
		"straggler:1xfast",      // bad factor
		"straggler:1x2@ten",     // bad window start
		"straggler:1x2@1-twenty",// bad window end
		"drop:3",                // missing iteration
		"drop:3@abc",            // bad iteration
		"drop:3@5xmany",         // bad attempts
		"pause:1@5",             // unknown kind
		`{"drops":[{"rank":0,"iteration":1}],"oops":true}`, // unknown JSON field
		`{"drops":`,             // truncated JSON
	}
	for _, in := range bad {
		if p, err := ParseFaultPlan(in); err == nil {
			t.Errorf("ParseFaultPlan(%q) = %+v, want error", in, p)
		}
	}
}
