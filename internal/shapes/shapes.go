// Package shapes provides exact layer-shape catalogs of the three models
// the paper evaluates — ResNet-18 (CIFAR-10 variant), the 2-layer LSTM
// language model used on WikiText-2, and NCF sized for MovieLens-20M.
//
// Selection-cost and scalability experiments (Fig 7, Fig 9) depend only on
// the per-layer size distribution and per-layer gradient norms, not on
// training a real model, so these catalogs let the reproduction exercise
// DEFT at the paper's true scale (tens of millions of gradients) without a
// GPU. Each catalog is a list of (name, size) pairs in parameter order,
// convertible to the sparsifier.Layer layout.
package shapes

import (
	"math"

	"repro/internal/rng"
	"repro/internal/sparsifier"
)

// Spec is one parameter tensor: a name and its element count.
type Spec struct {
	Name string
	Size int
}

// Catalog is an ordered list of parameter tensors.
type Catalog []Spec

// TotalSize returns the number of gradients in the whole model.
func (c Catalog) TotalSize() int {
	n := 0
	for _, s := range c {
		n += s.Size
	}
	return n
}

// Layers converts the catalog to the contiguous layer layout used by the
// sparsifiers.
func (c Catalog) Layers() []sparsifier.Layer {
	layers := make([]sparsifier.Layer, len(c))
	pos := 0
	for i, s := range c {
		layers[i] = sparsifier.Layer{Name: s.Name, Start: pos, End: pos + s.Size}
		pos += s.Size
	}
	return layers
}

// Scaled returns a copy with every layer scaled by factor (minimum size 1).
// Used to shrink full-size catalogs to laptop-runnable sizes while keeping
// the size *distribution* — the quantity the cost model cares about.
func (c Catalog) Scaled(factor float64) Catalog {
	out := make(Catalog, len(c))
	for i, s := range c {
		sz := int(math.Round(float64(s.Size) * factor))
		if sz < 1 {
			sz = 1
		}
		out[i] = Spec{Name: s.Name, Size: sz}
	}
	return out
}

// SyntheticGradients fills a gradient vector for the catalog: each layer
// gets Gaussian gradients with a per-layer scale drawn log-normally, so
// layer norms differ by orders of magnitude — the phenomenon (Zhang et al.
// [41]) DEFT exploits. Deterministic in seed.
func (c Catalog) SyntheticGradients(seed uint64) []float64 {
	r := rng.New(seed)
	g := make([]float64, c.TotalSize())
	pos := 0
	for li, s := range c {
		lr := r.Split(uint64(li))
		scale := math.Exp(lr.Norm() * 1.5) // log-normal layer scale
		for i := 0; i < s.Size; i++ {
			g[pos+i] = lr.Norm() * scale
		}
		pos += s.Size
	}
	return g
}

// ResNet18 returns the CIFAR-10 variant of ResNet-18: 3×3 stem (no 7×7, no
// max-pool), four stages of two basic blocks at widths 64/128/256/512 with
// 1×1 projection shortcuts on the downsampling blocks, batch-norm
// scale/shift everywhere, and a 512→10 classifier. Total ≈ 11.2M params.
func ResNet18() Catalog {
	var c Catalog
	addConv := func(name string, inC, outC, k int) {
		c = append(c, Spec{name + ".weight", outC * inC * k * k})
	}
	addBN := func(name string, ch int) {
		c = append(c, Spec{name + ".gamma", ch}, Spec{name + ".beta", ch})
	}
	addConv("conv1", 3, 64, 3)
	addBN("bn1", 64)
	widths := []int{64, 128, 256, 512}
	inC := 64
	for stage, w := range widths {
		for block := 0; block < 2; block++ {
			prefix := "layer" + itoa(stage+1) + "." + itoa(block)
			first := inC
			if block > 0 {
				first = w
			}
			addConv(prefix+".conv1", first, w, 3)
			addBN(prefix+".bn1", w)
			addConv(prefix+".conv2", w, w, 3)
			addBN(prefix+".bn2", w)
			if block == 0 && first != w {
				addConv(prefix+".downsample.0", first, w, 1)
				addBN(prefix+".downsample.1", w)
			}
		}
		inC = w
	}
	c = append(c, Spec{"fc.weight", 512 * 10}, Spec{"fc.bias", 10})
	return c
}

// LSTMWiki returns the 2-layer LSTM language model configuration used by
// the gradient-compression literature on WikiText-2 (DGC/GRACE lineage):
// vocabulary 33278, embedding and hidden width 1500, PyTorch-style packed
// gate weights with separate ih/hh biases. Total ≈ 86M params.
func LSTMWiki() Catalog {
	const (
		vocab  = 33278
		embed  = 1500
		hidden = 1500
	)
	var c Catalog
	c = append(c, Spec{"encoder.weight", vocab * embed})
	for l := 0; l < 2; l++ {
		in := embed
		if l > 0 {
			in = hidden
		}
		p := "lstm" + itoa(l)
		c = append(c,
			Spec{p + ".weight_ih", 4 * hidden * in},
			Spec{p + ".weight_hh", 4 * hidden * hidden},
			Spec{p + ".bias_ih", 4 * hidden},
			Spec{p + ".bias_hh", 4 * hidden},
		)
	}
	c = append(c, Spec{"decoder.weight", vocab * embed}, Spec{"decoder.bias", vocab})
	return c
}

// NCFMovieLens returns NCF sized for MovieLens-20M (138493 users, 26744
// items) with 64 predictive factors in both towers and a 128→64→32→16 MLP.
// Total ≈ 21.2M params.
func NCFMovieLens() Catalog {
	const (
		users   = 138493
		items   = 26744
		factors = 64
	)
	var c Catalog
	c = append(c,
		Spec{"gmf.user.weight", users * factors},
		Spec{"gmf.item.weight", items * factors},
		Spec{"mlp.user.weight", users * factors},
		Spec{"mlp.item.weight", items * factors},
		Spec{"mlp.fc1.weight", 2 * factors * 64}, Spec{"mlp.fc1.bias", 64},
		Spec{"mlp.fc2.weight", 64 * 32}, Spec{"mlp.fc2.bias", 32},
		Spec{"mlp.fc3.weight", 32 * 16}, Spec{"mlp.fc3.bias", 16},
		Spec{"fuse.weight", factors + 16}, Spec{"fuse.bias", 1},
	)
	return c
}

// ByName returns the catalog for a model name: "resnet18", "lstm", "ncf".
// ok is false for unknown names.
func ByName(name string) (Catalog, bool) {
	switch name {
	case "resnet18":
		return ResNet18(), true
	case "lstm":
		return LSTMWiki(), true
	case "ncf":
		return NCFMovieLens(), true
	}
	return nil, false
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
