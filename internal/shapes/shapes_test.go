package shapes

import (
	"math"
	"testing"

	"repro/internal/sparsifier"
)

func TestResNet18Size(t *testing.T) {
	c := ResNet18()
	total := c.TotalSize()
	// CIFAR ResNet-18 is ~11.17M parameters.
	if total < 11_000_000 || total > 11_400_000 {
		t.Fatalf("ResNet-18 total %d, want ~11.17M", total)
	}
	// Roughly 60 parameter tensors (conv + 2×BN per conv + fc).
	if len(c) < 50 || len(c) > 80 {
		t.Fatalf("ResNet-18 has %d tensors, want ~60", len(c))
	}
}

func TestLSTMWikiSize(t *testing.T) {
	c := LSTMWiki()
	total := c.TotalSize()
	// encoder 49.9M + 2×(9M+9M+12k) + decoder 49.9M ≈ 136M.
	if total < 130_000_000 || total > 142_000_000 {
		t.Fatalf("LSTM total %d, want ~136M", total)
	}
}

func TestNCFSize(t *testing.T) {
	c := NCFMovieLens()
	total := c.TotalSize()
	if total < 20_000_000 || total > 22_500_000 {
		t.Fatalf("NCF total %d, want ~21M", total)
	}
}

func TestLayersValid(t *testing.T) {
	for _, name := range []string{"resnet18", "lstm", "ncf"} {
		c, ok := ByName(name)
		if !ok {
			t.Fatalf("catalog %s missing", name)
		}
		if err := sparsifier.ValidateLayers(c.Layers(), c.TotalSize()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown name accepted")
	}
}

func TestScaledKeepsDistribution(t *testing.T) {
	c := ResNet18()
	s := c.Scaled(0.01)
	if len(s) != len(c) {
		t.Fatal("Scaled changed layer count")
	}
	for i := range s {
		if s[i].Size < 1 {
			t.Fatal("Scaled produced empty layer")
		}
		want := float64(c[i].Size) * 0.01
		if want >= 2 && math.Abs(float64(s[i].Size)-want) > want*0.5+1 {
			t.Fatalf("layer %d scaled to %d, want ~%v", i, s[i].Size, want)
		}
	}
	if s.TotalSize() >= c.TotalSize() {
		t.Fatal("Scaled did not shrink")
	}
}

func TestSyntheticGradientsNormSpread(t *testing.T) {
	c := ResNet18().Scaled(0.01)
	g := c.SyntheticGradients(7)
	if len(g) != c.TotalSize() {
		t.Fatalf("gradient length %d, want %d", len(g), c.TotalSize())
	}
	// Per-layer norms must spread over orders of magnitude (per-element
	// RMS, so layer size doesn't dominate the comparison).
	var minRMS, maxRMS float64 = math.Inf(1), 0
	pos := 0
	for _, s := range c {
		ss := 0.0
		for i := 0; i < s.Size; i++ {
			ss += g[pos+i] * g[pos+i]
		}
		pos += s.Size
		rms := math.Sqrt(ss / float64(s.Size))
		if rms < minRMS {
			minRMS = rms
		}
		if rms > maxRMS {
			maxRMS = rms
		}
	}
	if maxRMS < 5*minRMS {
		t.Fatalf("layer RMS spread too small: %v..%v", minRMS, maxRMS)
	}
	// Deterministic.
	g2 := c.SyntheticGradients(7)
	for i := range g {
		if g[i] != g2[i] {
			t.Fatal("SyntheticGradients not deterministic")
		}
	}
}

func TestItoa(t *testing.T) {
	for n, want := range map[int]string{0: "0", 5: "5", 42: "42", 1234: "1234"} {
		if got := itoa(n); got != want {
			t.Errorf("itoa(%d) = %q", n, got)
		}
	}
}
