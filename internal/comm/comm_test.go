package comm

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rng"
)

func TestClusterPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCluster(0)
}

func TestBarrierSynchronises(t *testing.T) {
	const n = 8
	c := NewCluster(n)
	var phase int32
	var violations int32
	c.Run(func(cm *Comm) {
		atomic.AddInt32(&phase, 1)
		cm.Barrier()
		// After the barrier, all ranks must have incremented.
		if atomic.LoadInt32(&phase) != n {
			atomic.AddInt32(&violations, 1)
		}
	})
	if violations != 0 {
		t.Fatalf("%d ranks passed barrier early", violations)
	}
}

func TestBroadcastInts(t *testing.T) {
	const n = 5
	c := NewCluster(n)
	results := make([][]int, n)
	c.Run(func(cm *Comm) {
		var data []int
		if cm.Rank() == 2 {
			data = []int{10, 20, 30}
		}
		results[cm.Rank()] = cm.BroadcastInts(2, data)
	})
	for r, got := range results {
		if len(got) != 3 || got[0] != 10 || got[2] != 30 {
			t.Fatalf("rank %d got %v", r, got)
		}
	}
	// Results must be independent copies.
	results[0][0] = -1
	if results[1][0] == -1 {
		t.Fatal("broadcast results alias each other")
	}
}

func TestBroadcastFloats(t *testing.T) {
	const n = 3
	c := NewCluster(n)
	results := make([][]float64, n)
	c.Run(func(cm *Comm) {
		var data []float64
		if cm.Rank() == 0 {
			data = []float64{1.5, 2.5}
		}
		results[cm.Rank()] = cm.BroadcastFloats(0, data)
	})
	for r := range results {
		if len(results[r]) != 2 || results[r][1] != 2.5 {
			t.Fatalf("rank %d got %v", r, results[r])
		}
	}
}

func TestBroadcastPanicsOnBadRoot(t *testing.T) {
	c := NewCluster(2)
	done := make(chan bool, 2)
	c.Run(func(cm *Comm) {
		defer func() { done <- recover() != nil }()
		cm.BroadcastInts(5, nil)
	})
	for i := 0; i < 2; i++ {
		if !<-done {
			t.Fatal("expected panic for out-of-range root")
		}
	}
}

func TestBroadcastIntsNested(t *testing.T) {
	const n = 4
	c := NewCluster(n)
	results := make([][][]int, n)
	c.Run(func(cm *Comm) {
		var data [][]int
		if cm.Rank() == 1 {
			data = [][]int{{1}, {2, 3}, nil, {4}}
		}
		results[cm.Rank()] = cm.BroadcastIntsNested(1, data)
	})
	for r := range results {
		got := results[r]
		if len(got) != 4 || got[1][1] != 3 || len(got[2]) != 0 {
			t.Fatalf("rank %d got %v", r, got)
		}
	}
	results[0][0][0] = -9
	if results[2][0][0] == -9 {
		t.Fatal("nested broadcast results alias")
	}
}

func TestAllGatherIntsOrderAndContent(t *testing.T) {
	const n = 4
	c := NewCluster(n)
	results := make([][]int, n)
	c.Run(func(cm *Comm) {
		results[cm.Rank()] = cm.AllGatherInts([]int{cm.Rank() * 10, cm.Rank()*10 + 1})
	})
	want := []int{0, 1, 10, 11, 20, 21, 30, 31}
	for r := range results {
		if len(results[r]) != len(want) {
			t.Fatalf("rank %d got %v", r, results[r])
		}
		for i := range want {
			if results[r][i] != want[i] {
				t.Fatalf("rank %d got %v, want %v (rank order!)", r, results[r], want)
			}
		}
	}
}

func TestAllGatherUniqueInts(t *testing.T) {
	const n = 3
	c := NewCluster(n)
	results := make([][]int, n)
	c.Run(func(cm *Comm) {
		// Overlapping sets: union must deduplicate.
		data := []int{1, 5, cm.Rank() + 100}
		results[cm.Rank()] = cm.AllGatherUniqueInts(data)
	})
	want := []int{1, 5, 100, 101, 102}
	for r := range results {
		got := results[r]
		if !sort.IntsAreSorted(got) {
			t.Fatalf("rank %d: union not sorted: %v", r, got)
		}
		if len(got) != len(want) {
			t.Fatalf("rank %d got %v, want %v", r, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d got %v, want %v", r, got, want)
			}
		}
	}
}

func TestAllReduceSum(t *testing.T) {
	const n = 6
	c := NewCluster(n)
	results := make([][]float64, n)
	c.Run(func(cm *Comm) {
		results[cm.Rank()] = cm.AllReduceSum([]float64{1, float64(cm.Rank())})
	})
	// Sum of ranks 0..5 = 15.
	for r := range results {
		if results[r][0] != n || results[r][1] != 15 {
			t.Fatalf("rank %d got %v", r, results[r])
		}
	}
}

func TestAllReduceSumMatchesSerial(t *testing.T) {
	const n, sz = 7, 513
	vecs := make([][]float64, n)
	for r := range vecs {
		rr := rng.New(uint64(r + 1))
		vecs[r] = make([]float64, sz)
		for i := range vecs[r] {
			vecs[r][i] = rr.Norm()
		}
	}
	want := make([]float64, sz)
	for _, v := range vecs {
		for i, x := range v {
			want[i] += x
		}
	}
	c := NewCluster(n)
	results := make([][]float64, n)
	c.Run(func(cm *Comm) {
		results[cm.Rank()] = cm.AllReduceSum(vecs[cm.Rank()])
	})
	for r := range results {
		for i := range want {
			if math.Abs(results[r][i]-want[i]) > 1e-12 {
				t.Fatalf("rank %d element %d: got %v want %v", r, i, results[r][i], want[i])
			}
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	const n = 4
	c := NewCluster(n)
	results := make([][]float64, n)
	c.Run(func(cm *Comm) {
		results[cm.Rank()] = cm.AllReduceMax([]float64{float64(cm.Rank()), -float64(cm.Rank())})
	})
	for r := range results {
		if results[r][0] != 3 || results[r][1] != 0 {
			t.Fatalf("rank %d got %v", r, results[r])
		}
	}
}

func TestRepeatedCollectivesDoNotDeadlock(t *testing.T) {
	const n, rounds = 8, 200
	c := NewCluster(n)
	var bad int32
	c.Run(func(cm *Comm) {
		for i := 0; i < rounds; i++ {
			sum := cm.AllReduceSum([]float64{1})
			if sum[0] != n {
				atomic.AddInt32(&bad, 1)
			}
			got := cm.AllGatherInts([]int{i})
			if len(got) != n {
				atomic.AddInt32(&bad, 1)
			}
		}
	})
	if bad != 0 {
		t.Fatalf("%d bad results across rounds", bad)
	}
}

func TestSingleRankCluster(t *testing.T) {
	c := NewCluster(1)
	c.Run(func(cm *Comm) {
		if got := cm.AllReduceSum([]float64{4})[0]; got != 4 {
			t.Errorf("single-rank allreduce = %v", got)
		}
		if got := cm.AllGatherUniqueInts([]int{3, 3, 1}); len(got) != 2 {
			t.Errorf("single-rank union = %v", got)
		}
	})
}

func TestTrafficAccountingBytes(t *testing.T) {
	const n = 4
	c := NewCluster(n)
	c.Run(func(cm *Comm) {
		// Sorted contribution {1, 2}: varint delta block is 2 bytes per
		// rank (uvarint(1), uvarint(0)) — 8 bytes across 4 ranks.
		cm.AllGatherInts([]int{1, 2})
		// 3 fp32 values from each of 4 ranks: 48 bytes.
		cm.AllReduceSum([]float64{1, 2, 3})
		// Sorted single index 9: one varint byte, charged once at the root.
		cm.BroadcastInts(0, []int{9})
		// Unsorted payload falls back to plain uint32s: 8 bytes.
		cm.BroadcastInts(0, []int{5, 2})
	})
	tr := c.Traffic()
	if tr.AllGatherBytes != 8 {
		t.Errorf("AllGatherBytes = %d, want 8", tr.AllGatherBytes)
	}
	if tr.AllReduceBytes != 48 {
		t.Errorf("AllReduceBytes = %d, want 48", tr.AllReduceBytes)
	}
	if tr.BroadcastBytes != 9 {
		t.Errorf("BroadcastBytes = %d, want 9", tr.BroadcastBytes)
	}
	if tr.Total() != 65 {
		t.Errorf("Total = %d, want 65", tr.Total())
	}
	c.ResetTraffic()
	if c.Traffic().Total() != 0 {
		t.Error("ResetTraffic failed")
	}
}

func TestNestedBroadcastTrafficIsFlattenedBytes(t *testing.T) {
	c := NewCluster(2)
	c.Run(func(cm *Comm) {
		var data [][]int
		if cm.Rank() == 0 {
			data = [][]int{{1}, {2, 3}}
		}
		cm.BroadcastIntsNested(0, data)
	})
	// Flattened payload: [2, 1, 2, 1, 2, 3] = 6 uint32s = 24 bytes.
	if got := c.Traffic().BroadcastBytes; got != 24 {
		t.Errorf("nested broadcast charged %d bytes, want 24", got)
	}
}

func TestNestedBroadcastLaggingReaderSeesOwnGeneration(t *testing.T) {
	// Back-to-back nested broadcasts with a slow non-root rank: the root
	// starts flattening iteration t+1 while the laggard is still decoding
	// iteration t. The decode must come from a cluster-owned copy, not the
	// root's flattening scratch (this is the regression test for the race
	// `go test -race` catches if the combine returns the root's slice).
	const n, rounds = 3, 30
	c := NewCluster(n)
	var bad int32
	c.Run(func(cm *Comm) {
		for it := 0; it < rounds; it++ {
			var in [][]int
			if cm.Rank() == 0 {
				in = [][]int{{it}, {it + 1, it + 2}}
			}
			out := cm.BroadcastIntsNested(0, in)
			if cm.Rank() != 0 {
				time.Sleep(100 * time.Microsecond) // lag behind the root
			}
			if len(out) != 2 || out[0][0] != it || out[1][1] != it+2 {
				atomic.AddInt32(&bad, 1)
			}
		}
	})
	if bad != 0 {
		t.Fatalf("%d corrupted reads across generations", bad)
	}
}

func TestNestedBroadcastReusesBuffers(t *testing.T) {
	// Steady state: repeated nested broadcasts must not allocate per rank
	// beyond the first call's buffer growth.
	c := NewCluster(2)
	c.Run(func(cm *Comm) {
		data := [][]int{{1, 2}, {3}, {4, 5, 6}}
		var first [][]int
		for it := 0; it < 3; it++ {
			var in [][]int
			if cm.Rank() == 0 {
				in = data
			}
			out := cm.BroadcastIntsNested(0, in)
			if len(out) != 3 || out[2][2] != 6 {
				t.Errorf("iteration %d: got %v", it, out)
			}
			if it == 0 {
				first = out
			} else if &out[0][0] != &first[0][0] {
				t.Errorf("iteration %d reallocated the decode buffer", it)
			}
		}
	})
}

func TestConcurrentClustersIndependent(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewCluster(3)
			c.Run(func(cm *Comm) {
				for j := 0; j < 50; j++ {
					cm.Barrier()
				}
			})
		}(i)
	}
	wg.Wait()
}

func TestCostModel(t *testing.T) {
	m := CostModel{Alpha: 1, Beta: 0.001}
	if m.AllGatherSparse(1, 100) != 0 {
		t.Error("n=1 should cost 0")
	}
	// n=4, k=100: log2(4)*1 + 2*3*100*0.001 = 2 + 0.6
	if got := m.AllGatherSparse(4, 100); math.Abs(got-2.6) > 1e-12 {
		t.Errorf("AllGatherSparse = %v, want 2.6", got)
	}
	// Broadcast n=4,k=0: 2 rounds * 1
	if got := m.Broadcast(4, 0); got != 2 {
		t.Errorf("Broadcast = %v, want 2", got)
	}
	if m.Broadcast(1, 10) != 0 {
		t.Error("broadcast to self should cost 0")
	}
	// AllReduceDense n=2, ng=1000: 2*1*1 + 2*(1/2)*1000*0.001 = 2+1
	if got := m.AllReduceDense(2, 1000); math.Abs(got-3) > 1e-12 {
		t.Errorf("AllReduceDense = %v, want 3", got)
	}
}

func TestTopologyModels(t *testing.T) {
	topo := Topology{Alpha: 1, BytesPerSec: 1000, WorkersPerNode: 4, IntraFactor: 10}
	for name, got := range map[string]float64{
		"ring n=1":  topo.RingAllReduce(1, 1<<20),
		"rdag n=1":  topo.RecursiveDoublingAllGather(1, 1<<20),
		"tree n=1":  topo.TreeBroadcast(1, 1<<20),
		"hier n=1":  topo.HierarchicalBroadcast(1, 1<<20),
		"ring zero": topo.RingAllReduce(8, 0) - 2*7*1, // α-only when payload is empty
	} {
		if got != 0 {
			t.Errorf("%s = %v, want 0", name, got)
		}
	}
	// Ring all-reduce n=8 (2 nodes → inter-node β = 1/1000):
	// 2·7·1 + 2·7/8·8000·0.001 = 14 + 14.
	if got := topo.RingAllReduce(8, 8000); math.Abs(got-28) > 1e-9 {
		t.Errorf("RingAllReduce = %v, want 28", got)
	}
	// The same collective confined to one 4-worker node rides the 10×
	// intra-node links: 2·3·1 + 2·3/4·8000·0.0001 = 6 + 1.2.
	if got := topo.RingAllReduce(4, 8000); math.Abs(got-7.2) > 1e-9 {
		t.Errorf("intra-node RingAllReduce = %v, want 7.2", got)
	}
	// Recursive doubling all-gather n=8: 3·1 + 7·1000·0.001 = 10.
	if got := topo.RecursiveDoublingAllGather(8, 1000); math.Abs(got-10) > 1e-9 {
		t.Errorf("RecursiveDoublingAllGather = %v, want 10", got)
	}
	// Tree broadcast n=8: 3·(1 + 500·0.001) = 4.5.
	if got := topo.TreeBroadcast(8, 500); math.Abs(got-4.5) > 1e-9 {
		t.Errorf("TreeBroadcast = %v, want 4.5", got)
	}
	// Hierarchical broadcast n=8 (2 nodes of 4): inter tree over 2 leaders
	// + intra tree over 4 workers = 1·(1+500·0.001) + 2·(1+500·0.0001).
	want := 1*(1+0.5) + 2*(1+0.05)
	if got := topo.HierarchicalBroadcast(8, 500); math.Abs(got-want) > 1e-9 {
		t.Errorf("HierarchicalBroadcast = %v, want %v", got, want)
	}
	// Node awareness must help: the hierarchical broadcast beats the flat
	// tree whenever the group spans nodes.
	if topo.HierarchicalBroadcast(16, 1<<20) >= topo.TreeBroadcast(16, 1<<20) {
		t.Error("hierarchical broadcast should beat the flat tree across nodes")
	}
	// Flat topology degrades gracefully.
	flat := Topology{Alpha: 1, BytesPerSec: 1000}
	if got, want := flat.HierarchicalBroadcast(8, 500), flat.TreeBroadcast(8, 500); got != want {
		t.Errorf("flat hierarchical = %v, want tree cost %v", got, want)
	}
	if DefaultTopology().BytesPerSec <= 0 || DefaultTopology().WorkersPerNode <= 0 {
		t.Error("DefaultTopology not usable")
	}
}

func TestSelectionCost(t *testing.T) {
	if SelectionCost(0, 5) != 0 {
		t.Error("ng=0 should cost 0")
	}
	if SelectionCost(100, 1) != 100 {
		t.Error("k=1 should cost ng")
	}
	if got, want := SelectionCost(100, 8), 100*math.Log(8); math.Abs(got-want) > 1e-9 {
		t.Errorf("SelectionCost = %v, want %v", got, want)
	}
	// Monotone in k.
	if SelectionCost(1000, 100) <= SelectionCost(1000, 10) {
		t.Error("cost should grow with k")
	}
}

func BenchmarkAllReduceSum_8ranks_64k(b *testing.B) {
	const n = 8
	data := make([][]float64, n)
	for r := range data {
		data[r] = make([]float64, 1<<16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCluster(n)
		c.Run(func(cm *Comm) {
			cm.AllReduceSum(data[cm.Rank()])
		})
	}
}
