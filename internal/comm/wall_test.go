package comm

import "testing"

// TestCommWallCounts: every collective family a run issues shows up in
// the measured-wall snapshot with the exact combine count, and Reset
// zeroes it.
func TestCommWallCounts(t *testing.T) {
	c := NewCluster(4)
	const iters = 3
	c.Run(func(cm *Comm) {
		for i := 0; i < iters; i++ {
			cm.Barrier()
			cm.BroadcastInts(0, []int{1, 2, 3})
			cm.AllGatherUniqueInts([]int{cm.Rank(), cm.Rank() + 1})
			cm.AllReduceSum([]float64{1, 2})
		}
	})
	w := c.CommWall()
	if w.Barrier.Count != iters {
		t.Errorf("barrier combines = %d, want %d", w.Barrier.Count, iters)
	}
	if w.Broadcast.Count != iters {
		t.Errorf("broadcast combines = %d, want %d", w.Broadcast.Count, iters)
	}
	if w.AllGather.Count != iters {
		t.Errorf("allgather combines = %d, want %d", w.AllGather.Count, iters)
	}
	if w.AllReduce.Count != iters {
		t.Errorf("allreduce combines = %d, want %d", w.AllReduce.Count, iters)
	}
	for _, s := range []float64{w.Barrier.Seconds, w.Broadcast.Seconds, w.AllGather.Seconds, w.AllReduce.Seconds} {
		if s < 0 {
			t.Errorf("negative measured wall %v", s)
		}
	}
	if w.TotalSeconds() < w.AllReduce.Seconds {
		t.Error("TotalSeconds smaller than one component")
	}

	sum := CommWall{}
	sum.Add(w)
	sum.Add(w)
	if sum.AllGather.Count != 2*iters {
		t.Errorf("Add: allgather count = %d, want %d", sum.AllGather.Count, 2*iters)
	}

	c.ResetCommWall()
	if got := c.CommWall(); got.TotalSeconds() != 0 || got.Barrier.Count != 0 {
		t.Errorf("after reset: %+v", got)
	}
}
