package comm

import "math"

// CostModel is the α–β communication model the paper uses in §5.3:
// a collective over n workers moving k elements per worker costs
// latency·α + volume·β seconds. Alpha is per-message latency in seconds,
// Beta is per-element transfer time in seconds (i.e. 1/bandwidth scaled by
// element size).
type CostModel struct {
	Alpha float64 // startup latency per communication round (s)
	Beta  float64 // per-element transfer cost (s/element)
}

// DefaultCostModel approximates the paper's 4×V100-per-node cluster with
// 10 GbE-class interconnect and float32 gradients: α = 30 µs,
// β = 4 bytes / 10 Gbit/s ≈ 3.2 ns per element.
func DefaultCostModel() CostModel {
	return CostModel{Alpha: 30e-6, Beta: 3.2e-9}
}

// AllGatherSparse returns the modeled time of the sparse all-gather +
// all-reduce pipeline of Algorithm 1 used by Top-k style sparsifiers:
// log(n)·α + 2(n−1)·k·β, the expression quoted in §5.3 (from Shi et al.).
// k is the per-worker selected count (index+value pairs).
func (m CostModel) AllGatherSparse(n, k int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(float64(n))*m.Alpha + 2*float64(n-1)*float64(k)*m.Beta
}

// Broadcast returns the modeled time of broadcasting k elements from one
// root to n−1 peers with a binomial tree: ceil(log2 n)·(α + k·β).
func (m CostModel) Broadcast(n, k int) float64 {
	if n <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(n)))
	return rounds * (m.Alpha + float64(k)*m.Beta)
}

// AllReduceDense returns the modeled time of a ring all-reduce over a dense
// vector of ng elements: 2(n−1)·α + 2·(n−1)/n·ng·β.
func (m CostModel) AllReduceDense(n, ng int) float64 {
	if n <= 1 {
		return 0
	}
	fn := float64(n)
	return 2*(fn-1)*m.Alpha + 2*(fn-1)/fn*float64(ng)*m.Beta
}

// SelectionCost returns the paper's computational cost model for finding
// the top k elements of an ng-element vector: ng·log(k) (natural log, the
// constant factor is irrelevant to the speedups in Fig 9). k < 2 costs ng
// (a plain scan still reads every element).
func SelectionCost(ng, k int) float64 {
	if ng <= 0 {
		return 0
	}
	if k < 2 {
		return float64(ng)
	}
	return float64(ng) * math.Log(float64(k))
}
