package comm

import "math"

// CostModel is the α–β communication model the paper uses in §5.3:
// a collective over n workers moving k elements per worker costs
// latency·α + volume·β seconds. Alpha is per-message latency in seconds,
// Beta is per-element transfer time in seconds (i.e. 1/bandwidth scaled by
// element size).
type CostModel struct {
	Alpha float64 // startup latency per communication round (s)
	Beta  float64 // per-element transfer cost (s/element)
}

// DefaultCostModel approximates the paper's 4×V100-per-node cluster with
// 10 GbE-class interconnect and float32 gradients: α = 30 µs,
// β = 4 bytes / 10 Gbit/s ≈ 3.2 ns per element.
func DefaultCostModel() CostModel {
	return CostModel{Alpha: 30e-6, Beta: 3.2e-9}
}

// AllGatherSparse returns the modeled time of the sparse all-gather +
// all-reduce pipeline of Algorithm 1 used by Top-k style sparsifiers:
// log(n)·α + 2(n−1)·k·β, the expression quoted in §5.3 (from Shi et al.).
// k is the per-worker selected count (index+value pairs).
func (m CostModel) AllGatherSparse(n, k int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(float64(n))*m.Alpha + 2*float64(n-1)*float64(k)*m.Beta
}

// Broadcast returns the modeled time of broadcasting k elements from one
// root to n−1 peers with a binomial tree: ceil(log2 n)·(α + k·β).
func (m CostModel) Broadcast(n, k int) float64 {
	if n <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(n)))
	return rounds * (m.Alpha + float64(k)*m.Beta)
}

// AllReduceDense returns the modeled time of a ring all-reduce over a dense
// vector of ng elements: 2(n−1)·α + 2·(n−1)/n·ng·β.
func (m CostModel) AllReduceDense(n, ng int) float64 {
	if n <= 1 {
		return 0
	}
	fn := float64(n)
	return 2*(fn-1)*m.Alpha + 2*(fn-1)/fn*float64(ng)*m.Beta
}

// ------------------------------------------------- byte-accurate models --
//
// The CostModel methods above take element counts, as the paper's §5.3
// formulas do. The Topology below is their byte-parameterized, fabric-aware
// successor: now that internal/wire produces actual payloads, modeled time
// can be driven by encoded bytes and by where the workers sit (a 4-GPU
// node's NVLink is an order of magnitude faster than the 10 GbE between
// nodes, and a collective confined to one node never touches the slow
// link).

// Topology describes the cluster fabric for the byte-parameterized cost
// models: nodes of WorkersPerNode workers each, inter-node links moving
// BytesPerSec, intra-node links IntraFactor times faster.
type Topology struct {
	Alpha          float64 // per-message latency (s)
	BytesPerSec    float64 // inter-node link bandwidth (bytes/s)
	WorkersPerNode int     // workers per node; <= 1 means a flat topology
	IntraFactor    float64 // intra-node bandwidth multiplier (>= 1)
}

// DefaultTopology approximates the paper's cluster: 4 V100 workers per
// node (NVLink-class intra-node fabric, ~10x the node uplink) with
// 10 GbE-class interconnect between nodes.
func DefaultTopology() Topology {
	return Topology{Alpha: 30e-6, BytesPerSec: 1.25e9, WorkersPerNode: 4, IntraFactor: 10}
}

// beta returns the inter-node per-byte transfer time.
func (t Topology) beta() float64 {
	if t.BytesPerSec <= 0 {
		return 0
	}
	return 1 / t.BytesPerSec
}

// linkBeta returns the per-byte cost of the slowest link a synchronous
// collective over n workers crosses: the fast intra-node link when the
// whole group fits on one node, the node uplink otherwise.
func (t Topology) linkBeta(n int) float64 {
	b := t.beta()
	if n <= t.WorkersPerNode && t.IntraFactor > 1 {
		return b / t.IntraFactor
	}
	return b
}

// nodes returns how many nodes n workers occupy.
func (t Topology) nodes(n int) int {
	if t.WorkersPerNode <= 1 {
		return n
	}
	return (n + t.WorkersPerNode - 1) / t.WorkersPerNode
}

// RingAllReduce models the bandwidth-optimal ring all-reduce of a payload
// of the given bytes per worker: 2(n−1) synchronous steps, each moving
// bytes/n over the slowest link the ring crosses —
// 2(n−1)·α + 2·(n−1)/n·bytes·β.
func (t Topology) RingAllReduce(n int, bytes int64) float64 {
	if n <= 1 {
		return 0
	}
	fn := float64(n)
	return 2*(fn-1)*t.Alpha + 2*(fn-1)/fn*float64(bytes)*t.linkBeta(n)
}

// RecursiveDoublingAllGather models the all-gather of bytesPerRank from
// every rank by recursive doubling: ceil(log2 n) rounds whose payload
// doubles each round — ceil(log2 n)·α + (n−1)·bytesPerRank·β. This is the
// collective the sparse index/value exchange of Algorithm 1 rides on.
func (t Topology) RecursiveDoublingAllGather(n int, bytesPerRank int64) float64 {
	if n <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(n)))
	return rounds*t.Alpha + float64(n-1)*float64(bytesPerRank)*t.linkBeta(n)
}

// TreeBroadcast models a flat binomial-tree broadcast of a payload:
// ceil(log2 n)·(α + bytes·β), every hop charged at the topology's slowest
// link.
func (t Topology) TreeBroadcast(n int, bytes int64) float64 {
	if n <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(n)))
	return rounds * (t.Alpha + float64(bytes)*t.linkBeta(n))
}

// HierarchicalBroadcast models the two-level broadcast a node-aware
// runtime performs: a binomial tree over the node leaders on the inter-node
// links, then — concurrently across nodes — a tree inside each node on the
// fast intra-node links. With one node (or a flat topology) it degrades to
// TreeBroadcast.
func (t Topology) HierarchicalBroadcast(n int, bytes int64) float64 {
	if n <= 1 {
		return 0
	}
	m := t.nodes(n)
	if m <= 1 || m >= n {
		return t.TreeBroadcast(n, bytes)
	}
	fb := float64(bytes)
	inter := math.Ceil(math.Log2(float64(m))) * (t.Alpha + fb*t.beta())
	w := t.WorkersPerNode
	intra := math.Ceil(math.Log2(float64(w))) * (t.Alpha + fb*t.linkBeta(w))
	return inter + intra
}

// SelectionCost returns the paper's computational cost model for finding
// the top k elements of an ng-element vector: ng·log(k) (natural log, the
// constant factor is irrelevant to the speedups in Fig 9). k < 2 costs ng
// (a plain scan still reads every element).
func SelectionCost(ng, k int) float64 {
	if ng <= 0 {
		return 0
	}
	if k < 2 {
		return float64(ng)
	}
	return float64(ng) * math.Log(float64(k))
}
