// Package comm simulates the multi-worker communication substrate the paper
// runs on MPI + NCCL: ranks, barriers, broadcast, all-gather and all-reduce.
//
// By default workers run as goroutines inside one process. Collectives are
// implemented over a generation-counted rendezvous: every rank deposits its
// contribution, the last arrival computes the combined result, and all ranks
// pick it up. This gives real synchronisation semantics (a rank cannot race
// ahead of a collective), so phenomena like gradient build-up are measured
// from genuinely independent per-rank data rather than assumed.
//
// The rendezvous engine is a Transport (see transport.go). Besides the
// in-process engine, transport_tcp.go provides a hub-and-spoke TCP pair —
// NewLeaderCluster hosts the rendezvous and NewFollowerCluster ships its
// local ranks' deposits over length-prefixed frames — so several processes
// can form one cluster. The collective API, traffic accounting and
// abort/fault machinery are identical over both.
//
// The rendezvous is typed: each element type has its own mailbox (a generic
// slot array plus combined result), so no collective boxes its payload into
// an interface. Combine results are computed into buffers owned by the
// transport and reused across generations, and every collective has an Into
// variant that copies the shared result into a caller-owned buffer — the
// steady-state hot path of a training iteration allocates nothing here.
//
// Wall-clock time inside a simulated collective is meaningless as a proxy
// for network time, so the package also provides the α–β cost model the
// paper itself uses in §5.3 to discuss communication time.
package comm

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"

	"repro/internal/wire"
)

// Cluster is the rank-facing façade over a Transport: it owns the cluster
// size, the attached fault plan and the run lifecycle, and delegates the
// rendezvous itself to the transport.
type Cluster struct {
	n  int
	tr Transport

	// faults is the attached chaos schedule (nil when healthy); see
	// SetFaultPlan. Written before the ranks start, read-only after.
	faults *FaultPlan

	// baseIter is the training iteration the current segment starts at
	// (SetStartIteration); Comm iteration tags begin here.
	baseIter int

	// killAt is the HardKill trigger iteration, -1 when disarmed. Written
	// before the ranks start, read-only after.
	killAt int
}

// ErrAborted is the abort reason when Abort is called with a nil error.
var ErrAborted = errors.New("comm: cluster aborted")

// ErrHardKilled is the local abort reason of a HardKill: the simulated
// process died, severing its connections without any abort handshake.
var ErrHardKilled = errors.New("comm: hard-killed (simulated process death)")

// errHardKilled is the internal alias transports raise.
var errHardKilled = ErrHardKilled

// abortPanic unwinds rank goroutines out of a collective when the cluster
// is aborted. RunContext recovers it; any other panic propagates untouched.
type abortPanic struct{ err error }

// NewCluster creates an in-process cluster of n ranks. It panics if n <= 0.
func NewCluster(n int) *Cluster {
	if n <= 0 {
		panicf("comm: cluster size %d must be positive", n)
	}
	return &Cluster{n: n, tr: newInproc(n), killAt: -1}
}

// Size returns the number of ranks.
func (c *Cluster) Size() int { return c.n }

// LocalRanks returns the half-open rank range [lo, hi) hosted by this
// process: [0, Size) in-process and on the TCP leader's hub, the joined
// slice on a TCP follower. Run and RunContext spawn fn only for these.
func (c *Cluster) LocalRanks() (lo, hi int) { return c.tr.localRanks() }

// Distributed reports whether this cluster spans processes (TCP transport).
func (c *Cluster) Distributed() bool {
	_, ok := c.tr.(*inprocTransport)
	return !ok
}

// Traffic returns a snapshot of the accumulated modeled traffic counters.
func (c *Cluster) Traffic() TrafficCounter { return c.tr.traffic() }

// ResetTraffic zeroes the traffic counters.
func (c *Cluster) ResetTraffic() { c.tr.resetTraffic() }

// SocketBytes returns the real bytes this process moved over transport
// sockets (frame headers included): zero in-process, actual TX/RX volumes
// over TCP. Unlike Traffic — which models the payload bytes an MPI/NCCL
// deployment would move and is identical across transports — these measure
// this hub-and-spoke implementation itself.
func (c *Cluster) SocketBytes() (tx, rx int64) { return c.tr.socketBytes() }

// Abort poisons the cluster: every rank currently parked in a collective
// wakes and unwinds, and every later collective call unwinds on entry (the
// unwind is recovered by Run/RunContext, where it terminates the rank's
// function). A nil err records ErrAborted. An aborted cluster stays
// aborted; Abort is idempotent and safe from any goroutine. On a TCP
// cluster the abort propagates to every connected process.
//
// The first call wins deterministically — the transport lock serialises
// callers, so whoever aborts first is the reason every later check sees.
// A later call with a distinct error does not overwrite the winner; it is
// recorded as a suppressed cause, and Err reports the winner together with
// the suppressed errors errors.Join-style (Unwrap() []error), so a worker
// drop racing a deadline reports both instead of silently losing one.
func (c *Cluster) Abort(err error) {
	if err == nil {
		err = ErrAborted
	}
	c.tr.abort(err)
}

// maxSuppressedAborts bounds the suppressed-cause list: every rank of a
// large cluster aborting with its own error must not grow state without
// limit. Eight is far beyond any diagnosable pile-up.
const maxSuppressedAborts = 8

// Err returns the abort reason, or nil while the cluster is healthy. When
// several distinct aborts raced, the returned error's message and
// errors.Is/As behaviour cover the deterministic winner first and every
// suppressed cause after it.
func (c *Cluster) Err() error { return c.tr.err() }

// SetStartIteration tells the transport which training iteration the next
// Run starts at, seeding disconnect attribution: a peer lost before any
// collective completes is attributed to iteration t. Call before Run.
func (c *Cluster) SetStartIteration(t int) {
	c.baseIter = t
	c.tr.setBaseIteration(t)
}

// HardKill arms a test hook simulating abrupt process death: the first
// local rank to enter StartIteration(t) with t >= iteration severs the
// transport's connections with no abort handshake — exactly what kill -9
// does to a node — and every local rank unwinds with ErrHardKilled. Peers
// observe a closed connection, not a fault frame, which is the scenario
// drop-recovery must handle over real sockets. Call before Run.
func (c *Cluster) HardKill(iteration int) {
	if iteration < 0 {
		panicf("comm: HardKill iteration %d must be >= 0", iteration)
	}
	c.killAt = iteration
}

// Close releases transport resources (connections). In-process clusters
// need no cleanup; TCP clusters close their links, which peers past the
// finish handshake treat as normal teardown.
func (c *Cluster) Close() error { return c.tr.close() }

// abortCauses is the multi-error form of an aborted cluster: the
// deterministic winner plus the suppressed later aborts. Unwrap follows
// the errors.Join convention so errors.Is/As match every cause.
type abortCauses struct {
	winner     error
	suppressed []error
}

func (e *abortCauses) Error() string {
	msg := e.winner.Error() + " (suppressed:"
	for i, s := range e.suppressed {
		if i > 0 {
			msg += ";"
		}
		msg += " " + s.Error()
	}
	return msg + ")"
}

func (e *abortCauses) Unwrap() []error {
	return append([]error{e.winner}, e.suppressed...)
}

// abortCause folds a winner and its suppressed causes into one error.
func abortCause(winner error, suppressed []error) error {
	if winner == nil || len(suppressed) == 0 {
		return winner
	}
	return &abortCauses{winner: winner, suppressed: slices.Clone(suppressed)}
}

// containsErr reports whether errs contains err by identity.
func containsErr(errs []error, err error) bool {
	for _, e := range errs {
		if e == err {
			return true
		}
	}
	return false
}

// Run starts fn on every local rank concurrently and waits for all to
// finish. Each invocation receives a rank-bound Comm handle.
func (c *Cluster) Run(fn func(comm *Comm)) {
	c.RunContext(context.Background(), fn)
}

// RunContext starts fn on every local rank concurrently and waits for all
// to finish. When ctx is cancelled the cluster is aborted: ranks parked in
// a collective wake immediately, ranks busy between collectives stop at
// their next collective (or CheckAbort call), and every rank's fn is
// unwound. It returns nil on a clean run, or the abort reason (the ctx
// error for a cancellation).
func (c *Cluster) RunContext(ctx context.Context, fn func(comm *Comm)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	lo, hi := c.tr.localRanks()
	c.tr.start()
	stop := make(chan struct{})
	var watcher sync.WaitGroup
	if ctx.Done() != nil {
		watcher.Add(1)
		go func() {
			defer watcher.Done()
			select {
			case <-ctx.Done():
				c.Abort(ctx.Err())
			case <-stop:
			}
		}()
	}
	var wg sync.WaitGroup
	wg.Add(hi - lo)
	for rank := lo; rank < hi; rank++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				// Swallow only the cluster's own abort unwind; genuine
				// panics in fn keep crashing as they always did.
				if r := recover(); r != nil {
					if _, ok := r.(abortPanic); !ok {
						panic(r)
					}
				}
			}()
			fn(&Comm{rank: rank, cluster: c, iter: c.baseIter})
		}(rank)
	}
	wg.Wait()
	close(stop)
	watcher.Wait()
	c.tr.finish()
	return c.Err()
}

// Comm is a rank-bound handle for collective operations.
type Comm struct {
	rank    int
	cluster *Cluster

	// iter is the training iteration this rank is in (StartIteration); it
	// tags every exchange so a TCP transport can attribute a peer loss to
	// the iteration recovery must resume at.
	iter int

	// Reusable rank-owned buffers for the flattened nested broadcast: the
	// root's flattening scratch plus this rank's decoded bins. A rank's
	// collectives are serial, so no locking is needed here.
	nestedFlat []int
	nestedBins [][]int
	nestedData []int
}

// Rank returns this handle's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// CheckAbort unwinds this rank (exactly as an aborted collective would) if
// the cluster has been aborted. Long compute sections call it between
// collectives so a cancelled run stops mid-iteration instead of at its
// next rendezvous; the un-aborted fast path is one atomic load.
func (c *Comm) CheckAbort() {
	if c.cluster.tr.hasAborted() {
		panic(abortPanic{c.cluster.Err()})
	}
}

// Size returns the cluster size.
func (c *Comm) Size() int { return c.cluster.n }

// collectiveKind indexes the measured-wall accumulators; one slot per
// collective family the trainer issues.
type collectiveKind uint8

const (
	kindBarrier collectiveKind = iota
	kindBroadcast
	kindAllGather
	kindAllReduce
	numCollectiveKinds
)

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	c.cluster.tr.exchangeInts(c.rank, OpBarrier, 0, c.iter, nil)
}

// BroadcastInts distributes root's slice to every rank. Every rank receives
// a fresh copy (safe to mutate). Non-root ranks may pass nil.
func (c *Comm) BroadcastInts(root int, data []int) []int {
	return c.BroadcastIntsInto(root, data, nil)
}

// BroadcastIntsInto is the scratch-buffer form of BroadcastInts: the result
// is copied into dst (grown only when capacity is insufficient).
func (c *Comm) BroadcastIntsInto(root int, data []int, dst []int) []int {
	c.checkRoot(root)
	src := c.cluster.tr.exchangeInts(c.rank, OpBroadcastInts, root, c.iter, data)
	return append(dst[:0], src...)
}

// BroadcastFloats distributes root's slice to every rank as a fresh copy.
func (c *Comm) BroadcastFloats(root int, data []float64) []float64 {
	return c.BroadcastFloatsInto(root, data, nil)
}

// BroadcastFloatsInto is the scratch-buffer form of BroadcastFloats.
func (c *Comm) BroadcastFloatsInto(root int, data []float64, dst []float64) []float64 {
	c.checkRoot(root)
	src := c.cluster.tr.exchangeFloats(c.rank, OpBroadcastFloats, root, c.iter, data)
	return append(dst[:0], src...)
}

// BroadcastIntsNested distributes root's slice-of-slices (e.g. the
// bin-packing result of DEFT's Algorithm 4) to every rank. The payload
// travels as one flattened [count, len_0 … len_{k−1}, data…] slice through
// the reusable int mailbox — replacing the previous per-rank deep copy —
// and each rank decodes it into rank-owned buffers. The returned bins are
// therefore valid only until this rank's next BroadcastIntsNested call;
// callers that retain a bin across iterations must copy it out (the DEFT
// sparsifier does).
func (c *Comm) BroadcastIntsNested(root int, data [][]int) [][]int {
	c.checkRoot(root)
	var contrib []int
	if c.rank == root {
		flat := append(c.nestedFlat[:0], len(data))
		for _, bin := range data {
			flat = append(flat, len(bin))
		}
		for _, bin := range data {
			flat = append(flat, bin...)
		}
		c.nestedFlat = flat
		contrib = flat
	}
	src := c.cluster.tr.exchangeInts(c.rank, OpBroadcastNested, root, c.iter, contrib)
	nBins := src[0]
	lens := src[1 : 1+nBins]
	c.nestedData = append(c.nestedData[:0], src[1+nBins:]...)
	if cap(c.nestedBins) < nBins {
		c.nestedBins = make([][]int, nBins)
	}
	bins := c.nestedBins[:nBins]
	off := 0
	for i, l := range lens {
		bins[i] = c.nestedData[off : off+l : off+l]
		off += l
	}
	return bins
}

// AllGatherInts concatenates every rank's contribution in rank order and
// returns a fresh copy of the concatenation to every rank.
func (c *Comm) AllGatherInts(data []int) []int {
	return c.AllGatherIntsInto(data, nil)
}

// AllGatherIntsInto is the scratch-buffer form of AllGatherInts.
func (c *Comm) AllGatherIntsInto(data []int, dst []int) []int {
	shared := c.cluster.tr.exchangeInts(c.rank, OpAllGatherInts, 0, c.iter, data)
	return append(dst[:0], shared...)
}

// AllGatherUniqueInts gathers every rank's index set and returns the sorted
// union without duplicates. This is the collective on line 7 of Algorithm 1:
// the resulting length, relative to the per-rank k, is exactly the gradient
// build-up the paper measures.
//
// Contributions should be sorted ascending; an unsorted contribution is
// sorted in place (the deposit slices are mutated). The union is computed
// by an n-way merge over the sorted per-rank lists — O(total·n) with no
// hashing and no allocation in steady state, against the previous map-based
// dedup's O(total) hash inserts plus a map and result allocation per call.
func (c *Comm) AllGatherUniqueInts(data []int) []int {
	return c.AllGatherUniqueIntsInto(data, nil)
}

// AllGatherUniqueIntsInto is the scratch-buffer form of AllGatherUniqueInts.
func (c *Comm) AllGatherUniqueIntsInto(data []int, dst []int) []int {
	shared := c.cluster.tr.exchangeInts(c.rank, OpAllGatherUnique, 0, c.iter, data)
	return append(dst[:0], shared...)
}

// AllGatherFloats concatenates every rank's float contribution in rank
// order. It is the trainer's control-plane stats gather — per-rank
// telemetry that shared memory used to carry — so it charges no traffic
// counter (see OpAllGatherFloats).
func (c *Comm) AllGatherFloats(data []float64) []float64 {
	return c.AllGatherFloatsInto(data, nil)
}

// AllGatherFloatsInto is the scratch-buffer form of AllGatherFloats.
func (c *Comm) AllGatherFloatsInto(data []float64, dst []float64) []float64 {
	shared := c.cluster.tr.exchangeFloats(c.rank, OpAllGatherFloats, 0, c.iter, data)
	return append(dst[:0], shared...)
}

// AllReduceSum element-wise sums every rank's vector (all must have equal
// length) and returns a fresh copy of the sum to every rank.
func (c *Comm) AllReduceSum(data []float64) []float64 {
	return c.AllReduceSumInto(data, nil)
}

// AllReduceSumInto is the scratch-buffer form of AllReduceSum.
func (c *Comm) AllReduceSumInto(data []float64, dst []float64) []float64 {
	shared := c.cluster.tr.exchangeFloats(c.rank, OpAllReduceSum, 0, c.iter, data)
	return append(dst[:0], shared...)
}

// AllReduceMax element-wise maximum across ranks.
func (c *Comm) AllReduceMax(data []float64) []float64 {
	return c.AllReduceMaxInto(data, nil)
}

// AllReduceMaxInto is the scratch-buffer form of AllReduceMax.
func (c *Comm) AllReduceMaxInto(data []float64, dst []float64) []float64 {
	shared := c.cluster.tr.exchangeFloats(c.rank, OpAllReduceMax, 0, c.iter, data)
	return append(dst[:0], shared...)
}

func (c *Comm) checkRoot(root int) {
	if root < 0 || root >= c.cluster.n {
		panicf("comm: root %d out of range [0,%d)", root, c.cluster.n)
	}
}

// panicf panics with a formatted message.
func panicf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...))
}

// intsSorted reports whether s is sorted ascending.
func intsSorted(s []int) bool { return slices.IsSorted(s) }

// sortInts sorts s ascending in place.
func sortInts(s []int) { slices.Sort(s) }

// TrafficCounter accumulates the encoded wire bytes moved by collectives —
// not element counts. Sorted index lists are charged at their COO varint
// delta size (internal/wire), other int payloads at uint32 each, and float
// payloads at fp32 each, matching what NCCL-class systems put on the
// network. Conventions per collective: all-gathers charge the sum of every
// rank's encoded contribution, all-reduces charge the fp32 vector times the
// rank count, and broadcasts charge the root's payload once — the topology
// cost models, not the counters, decide how many links a payload crosses.
//
// The counters model a deployment, so they are byte-identical across
// transports; Cluster.SocketBytes reports what this implementation itself
// moved over real sockets.
type TrafficCounter struct {
	AllGatherBytes int64 `json:"allgather_bytes"`
	AllReduceBytes int64 `json:"allreduce_bytes"`
	BroadcastBytes int64 `json:"broadcast_bytes"`
}

// Total returns the sum of all counters in bytes.
func (t TrafficCounter) Total() int64 {
	return t.AllGatherBytes + t.AllReduceBytes + t.BroadcastBytes
}

// Add accumulates another counter into t (the trainer sums the segments of
// a recovered run into one per-run record).
func (t *TrafficCounter) Add(o TrafficCounter) {
	t.AllGatherBytes += o.AllGatherBytes
	t.AllReduceBytes += o.AllReduceBytes
	t.BroadcastBytes += o.BroadcastBytes
}

// CollectiveWall is the measured combine wall clock of one collective
// family: how many combines ran and how long they took in total.
type CollectiveWall struct {
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// add accumulates ns/count into the wall entry.
func (w *CollectiveWall) add(o CollectiveWall) {
	w.Count += o.Count
	w.Seconds += o.Seconds
}

// CommWall is the measured counterpart of the modeled WireCommTime: the
// wall clock actually spent moving and combining payloads per collective
// family. In-process the combine (merge, sum, copy under the transport
// lock) is the data movement; over TCP the window additionally covers real
// network time — the leader's hub opens it at a generation's first deposit
// (so waiting for remote deposits counts), and a follower measures the
// full deposit→result round-trip. Comparing it against the α–β and
// topology models is what turns those models from predictions into
// testable claims.
type CommWall struct {
	Barrier   CollectiveWall `json:"barrier"`
	Broadcast CollectiveWall `json:"broadcast"`
	AllGather CollectiveWall `json:"allgather"`
	AllReduce CollectiveWall `json:"allreduce"`
}

// TotalSeconds sums the measured wall over all collective families.
func (w CommWall) TotalSeconds() float64 {
	return w.Barrier.Seconds + w.Broadcast.Seconds + w.AllGather.Seconds + w.AllReduce.Seconds
}

// Add accumulates another snapshot into w (the trainer sums the segments
// of a recovered run into one per-run record).
func (w *CommWall) Add(o CommWall) {
	w.Barrier.add(o.Barrier)
	w.Broadcast.add(o.Broadcast)
	w.AllGather.add(o.AllGather)
	w.AllReduce.add(o.AllReduce)
}

// CommWall returns a snapshot of the measured collective wall clock.
func (c *Cluster) CommWall() CommWall { return c.tr.commWall() }

// ResetCommWall zeroes the measured wall accumulators.
func (c *Cluster) ResetCommWall() { c.tr.resetCommWall() }

// intPayloadBytes returns the wire footprint of an int payload: the COO
// varint delta block for a strictly increasing index list (the common case
// — sorted selections), else 4 bytes per element as plain uint32s.
func intPayloadBytes(s []int) int64 {
	if n, ok := wire.IndexBytes(s); ok {
		return int64(n)
	}
	return 4 * int64(len(s))
}
