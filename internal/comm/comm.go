// Package comm simulates the multi-worker communication substrate the paper
// runs on MPI + NCCL: ranks, barriers, broadcast, all-gather and all-reduce.
//
// Workers run as goroutines inside one process. Collectives are implemented
// over a generation-counted rendezvous: every rank deposits its
// contribution, the last arrival computes the combined result, and all ranks
// pick it up. This gives real synchronisation semantics (a rank cannot race
// ahead of a collective), so phenomena like gradient build-up are measured
// from genuinely independent per-rank data rather than assumed.
//
// The rendezvous is typed: each element type has its own mailbox (a generic
// slot array plus combined result), so no collective boxes its payload into
// an interface. Combine results are computed into buffers owned by the
// cluster and reused across generations, and every collective has an Into
// variant that copies the shared result into a caller-owned buffer — the
// steady-state hot path of a training iteration allocates nothing here.
//
// Wall-clock time inside a simulated collective is meaningless as a proxy
// for network time, so the package also provides the α–β cost model the
// paper itself uses in §5.3 to discuss communication time.
package comm

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// mailbox is the typed slot array of the rendezvous: one deposit slot per
// rank plus the combined result of the current generation. One mailbox per
// payload type removes the any-boxing of the previous design; since the
// collectives are SPMD (every rank calls the same operation in the same
// order), only one mailbox is active per generation and they can all share
// the cluster's single arrival counter.
type mailbox[T any] struct {
	slots  []T
	result T
}

// Cluster owns the shared rendezvous state for n ranks.
type Cluster struct {
	n    int
	mu   sync.Mutex
	cond *sync.Cond

	arrived    int
	generation uint64

	ints   mailbox[[]int]
	floats mailbox[[]float64]

	// Reusable combine buffers (guarded by mu; written only by the last
	// arrival of a generation, read by all ranks before the next combine of
	// the same type can start).
	intBuf   []int
	floatBuf []float64
	heads    []int // k-way merge cursors for AllGatherUniqueInts

	// Abort state: once set, every rank entering (or parked inside) a
	// collective unwinds with an abortPanic instead of blocking, so a
	// cancelled run cannot deadlock on the rendezvous. aborted mirrors
	// abortErr != nil for lock-free polling between collectives. The first
	// Abort wins deterministically (the lock serialises callers); later
	// distinct errors are kept as suppressed causes so a drop+timeout race
	// reports both.
	abortErr   error
	suppressed []error
	aborted    atomic.Bool

	// faults is the attached chaos schedule (nil when healthy); see
	// SetFaultPlan. Written before the ranks start, read-only after.
	faults *FaultPlan

	traffic TrafficCounter

	// Measured combine wall clock per collective kind (guarded by mu:
	// combines run under the lock in the last-arrival branch). Two clock
	// reads per collective, no allocation — cheap enough to stay on.
	wallNS    [numCollectiveKinds]int64
	wallCount [numCollectiveKinds]int64
}

// ErrAborted is the abort reason when Abort is called with a nil error.
var ErrAborted = errors.New("comm: cluster aborted")

// abortPanic unwinds rank goroutines out of a collective when the cluster
// is aborted. RunContext recovers it; any other panic propagates untouched.
type abortPanic struct{ err error }

// NewCluster creates a cluster of n ranks. It panics if n <= 0.
func NewCluster(n int) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("comm: cluster size %d must be positive", n))
	}
	c := &Cluster{
		n:     n,
		heads: make([]int, n),
	}
	c.ints.slots = make([][]int, n)
	c.floats.slots = make([][]float64, n)
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Size returns the number of ranks.
func (c *Cluster) Size() int { return c.n }

// Traffic returns a snapshot of the accumulated traffic counters.
func (c *Cluster) Traffic() TrafficCounter {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traffic
}

// ResetTraffic zeroes the traffic counters.
func (c *Cluster) ResetTraffic() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.traffic = TrafficCounter{}
}

// Abort poisons the cluster: every rank currently parked in a collective
// wakes and unwinds, and every later collective call unwinds on entry (the
// unwind is recovered by Run/RunContext, where it terminates the rank's
// function). A nil err records ErrAborted. An aborted cluster stays
// aborted; Abort is idempotent and safe from any goroutine.
//
// The first call wins deterministically — the cluster lock serialises
// callers, so whoever aborts first is the reason every later check sees.
// A later call with a distinct error does not overwrite the winner; it is
// recorded as a suppressed cause, and Err reports the winner together with
// the suppressed errors errors.Join-style (Unwrap() []error), so a worker
// drop racing a deadline reports both instead of silently losing one.
func (c *Cluster) Abort(err error) {
	if err == nil {
		err = ErrAborted
	}
	c.mu.Lock()
	switch {
	case c.abortErr == nil:
		c.abortErr = err
		c.aborted.Store(true)
		c.cond.Broadcast()
	case err != c.abortErr && !slices.Contains(c.suppressed, err) && len(c.suppressed) < maxSuppressedAborts:
		c.suppressed = append(c.suppressed, err)
	}
	c.mu.Unlock()
}

// maxSuppressedAborts bounds the suppressed-cause list: every rank of a
// large cluster aborting with its own error must not grow state without
// limit. Eight is far beyond any diagnosable pile-up.
const maxSuppressedAborts = 8

// Err returns the abort reason, or nil while the cluster is healthy. When
// several distinct aborts raced, the returned error's message and
// errors.Is/As behaviour cover the deterministic winner first and every
// suppressed cause after it.
func (c *Cluster) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.abortErr == nil || len(c.suppressed) == 0 {
		return c.abortErr
	}
	return &abortCauses{winner: c.abortErr, suppressed: slices.Clone(c.suppressed)}
}

// abortCauses is the multi-error form of an aborted cluster: the
// deterministic winner plus the suppressed later aborts. Unwrap follows
// the errors.Join convention so errors.Is/As match every cause.
type abortCauses struct {
	winner     error
	suppressed []error
}

func (e *abortCauses) Error() string {
	msg := e.winner.Error() + " (suppressed:"
	for i, s := range e.suppressed {
		if i > 0 {
			msg += ";"
		}
		msg += " " + s.Error()
	}
	return msg + ")"
}

func (e *abortCauses) Unwrap() []error {
	return append([]error{e.winner}, e.suppressed...)
}

// Run starts fn on every rank concurrently and waits for all to finish.
// Each invocation receives a rank-bound Comm handle.
func (c *Cluster) Run(fn func(comm *Comm)) {
	c.RunContext(context.Background(), fn)
}

// RunContext starts fn on every rank concurrently and waits for all to
// finish. When ctx is cancelled the cluster is aborted: ranks parked in a
// collective wake immediately, ranks busy between collectives stop at
// their next collective (or CheckAbort call), and every rank's fn is
// unwound. It returns nil on a clean run, or the abort reason (the ctx
// error for a cancellation).
func (c *Cluster) RunContext(ctx context.Context, fn func(comm *Comm)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	stop := make(chan struct{})
	var watcher sync.WaitGroup
	if ctx.Done() != nil {
		watcher.Add(1)
		go func() {
			defer watcher.Done()
			select {
			case <-ctx.Done():
				c.Abort(ctx.Err())
			case <-stop:
			}
		}()
	}
	var wg sync.WaitGroup
	wg.Add(c.n)
	for rank := 0; rank < c.n; rank++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				// Swallow only the cluster's own abort unwind; genuine
				// panics in fn keep crashing as they always did.
				if r := recover(); r != nil {
					if _, ok := r.(abortPanic); !ok {
						panic(r)
					}
				}
			}()
			fn(&Comm{rank: rank, cluster: c})
		}(rank)
	}
	wg.Wait()
	close(stop)
	watcher.Wait()
	return c.Err()
}

// Comm is a rank-bound handle for collective operations.
type Comm struct {
	rank    int
	cluster *Cluster

	// Reusable rank-owned buffers for the flattened nested broadcast: the
	// root's flattening scratch plus this rank's decoded bins. A rank's
	// collectives are serial, so no locking is needed here.
	nestedFlat []int
	nestedBins [][]int
	nestedData []int
}

// Rank returns this handle's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// CheckAbort unwinds this rank (exactly as an aborted collective would) if
// the cluster has been aborted. Long compute sections call it between
// collectives so a cancelled run stops mid-iteration instead of at its
// next rendezvous; the un-aborted fast path is one atomic load.
func (c *Comm) CheckAbort() {
	if c.cluster.aborted.Load() {
		panic(abortPanic{c.cluster.Err()})
	}
}

// Size returns the cluster size.
func (c *Comm) Size() int { return c.cluster.n }

// collectiveKind indexes the measured-wall accumulators; one slot per
// collective family the trainer issues.
type collectiveKind uint8

const (
	kindBarrier collectiveKind = iota
	kindBroadcast
	kindAllGather
	kindAllReduce
	numCollectiveKinds
)

// exchange is the rendezvous core, generic over the payload type. Every
// rank deposits contrib into the mailbox; the last arrival runs combine
// over the deposited slots (indexed by rank) and the shared result is
// returned to every rank. combine runs exactly once per generation, under
// the cluster lock; its wall-clock time — the in-process analogue of the
// network actually moving and merging bytes — is accumulated per
// collective kind for the modeled-vs-measured comparison (CommWall).
//
// The result may alias cluster-owned buffers: a rank must copy what it
// needs before entering its next collective. That ordering is safe without
// extra synchronisation because the next combine of any type cannot run
// until all n ranks have deposited again, which each rank only does after
// it is done reading.
func exchange[T any](c *Comm, kind collectiveKind, mb *mailbox[T], contrib T, combine func(slots []T) T) T {
	cl := c.cluster
	cl.mu.Lock()
	if err := cl.abortErr; err != nil {
		cl.mu.Unlock()
		panic(abortPanic{err})
	}
	gen := cl.generation
	mb.slots[c.rank] = contrib
	cl.arrived++
	if cl.arrived == cl.n {
		start := time.Now()
		mb.result = combine(mb.slots)
		cl.wallNS[kind] += int64(time.Since(start))
		cl.wallCount[kind]++
		cl.arrived = 0
		cl.generation++
		cl.cond.Broadcast()
	} else {
		for gen == cl.generation {
			cl.cond.Wait()
			// An abort broadcast wakes parked ranks without advancing the
			// generation; unwind instead of re-parking forever.
			if err := cl.abortErr; err != nil {
				cl.mu.Unlock()
				panic(abortPanic{err})
			}
		}
	}
	res := mb.result
	cl.mu.Unlock()
	return res
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	exchange(c, kindBarrier, &c.cluster.ints, nil, func([][]int) []int { return nil })
}

// BroadcastInts distributes root's slice to every rank. Every rank receives
// a fresh copy (safe to mutate). Non-root ranks may pass nil.
func (c *Comm) BroadcastInts(root int, data []int) []int {
	return c.BroadcastIntsInto(root, data, nil)
}

// BroadcastIntsInto is the scratch-buffer form of BroadcastInts: the result
// is copied into dst (grown only when capacity is insufficient).
func (c *Comm) BroadcastIntsInto(root int, data []int, dst []int) []int {
	c.checkRoot(root)
	src := exchange(c, kindBroadcast, &c.cluster.ints, data, func(slots [][]int) []int {
		s := slots[root]
		c.cluster.traffic.BroadcastBytes += intPayloadBytes(s)
		return s
	})
	return append(dst[:0], src...)
}

// BroadcastFloats distributes root's slice to every rank as a fresh copy.
func (c *Comm) BroadcastFloats(root int, data []float64) []float64 {
	return c.BroadcastFloatsInto(root, data, nil)
}

// BroadcastFloatsInto is the scratch-buffer form of BroadcastFloats.
func (c *Comm) BroadcastFloatsInto(root int, data []float64, dst []float64) []float64 {
	c.checkRoot(root)
	src := exchange(c, kindBroadcast, &c.cluster.floats, data, func(slots [][]float64) []float64 {
		s := slots[root]
		c.cluster.traffic.BroadcastBytes += 4 * int64(len(s)) // fp32 on the wire
		return s
	})
	return append(dst[:0], src...)
}

// BroadcastIntsNested distributes root's slice-of-slices (e.g. the
// bin-packing result of DEFT's Algorithm 4) to every rank. The payload
// travels as one flattened [count, len_0 … len_{k−1}, data…] slice through
// the reusable int mailbox — replacing the previous per-rank deep copy —
// and each rank decodes it into rank-owned buffers. The returned bins are
// therefore valid only until this rank's next BroadcastIntsNested call;
// callers that retain a bin across iterations must copy it out (the DEFT
// sparsifier does).
func (c *Comm) BroadcastIntsNested(root int, data [][]int) [][]int {
	c.checkRoot(root)
	var contrib []int
	if c.rank == root {
		flat := append(c.nestedFlat[:0], len(data))
		for _, bin := range data {
			flat = append(flat, len(bin))
		}
		for _, bin := range data {
			flat = append(flat, bin...)
		}
		c.nestedFlat = flat
		contrib = flat
	}
	src := exchange(c, kindBroadcast, &c.cluster.ints, contrib, func(slots [][]int) []int {
		cl := c.cluster
		s := slots[root]
		// The flattened header+data ships as uint32s: lengths and fragment
		// ids are all small.
		cl.traffic.BroadcastBytes += 4 * int64(len(s))
		// Copy into the cluster-owned buffer: the root flattens into its
		// rank-owned scratch BEFORE depositing, so lagging ranks must not
		// read that scratch after the rendezvous — the root may already be
		// flattening its next payload into it. The cluster buffer is safe:
		// no combine of any type can run again until every rank has
		// finished reading and deposited anew.
		out := growInts(&cl.intBuf, len(s))
		copy(out, s)
		return out
	})
	nBins := src[0]
	lens := src[1 : 1+nBins]
	c.nestedData = append(c.nestedData[:0], src[1+nBins:]...)
	if cap(c.nestedBins) < nBins {
		c.nestedBins = make([][]int, nBins)
	}
	bins := c.nestedBins[:nBins]
	off := 0
	for i, l := range lens {
		bins[i] = c.nestedData[off : off+l : off+l]
		off += l
	}
	return bins
}

// AllGatherInts concatenates every rank's contribution in rank order and
// returns a fresh copy of the concatenation to every rank.
func (c *Comm) AllGatherInts(data []int) []int {
	return c.AllGatherIntsInto(data, nil)
}

// AllGatherIntsInto is the scratch-buffer form of AllGatherInts.
func (c *Comm) AllGatherIntsInto(data []int, dst []int) []int {
	shared := exchange(c, kindAllGather, &c.cluster.ints, data, func(slots [][]int) []int {
		cl := c.cluster
		total := 0
		for _, s := range slots {
			total += len(s)
		}
		out := growInts(&cl.intBuf, total)[:0]
		for _, s := range slots {
			out = append(out, s...)
		}
		cl.intBuf = out
		for _, s := range slots {
			cl.traffic.AllGatherBytes += intPayloadBytes(s)
		}
		return out
	})
	return append(dst[:0], shared...)
}

// AllGatherUniqueInts gathers every rank's index set and returns the sorted
// union without duplicates. This is the collective on line 7 of Algorithm 1:
// the resulting length, relative to the per-rank k, is exactly the gradient
// build-up the paper measures.
//
// Contributions should be sorted ascending; an unsorted contribution is
// sorted in place (the deposit slices are mutated). The union is computed
// by an n-way merge over the sorted per-rank lists — O(total·n) with no
// hashing and no allocation in steady state, against the previous map-based
// dedup's O(total) hash inserts plus a map and result allocation per call.
func (c *Comm) AllGatherUniqueInts(data []int) []int {
	return c.AllGatherUniqueIntsInto(data, nil)
}

// AllGatherUniqueIntsInto is the scratch-buffer form of AllGatherUniqueInts.
func (c *Comm) AllGatherUniqueIntsInto(data []int, dst []int) []int {
	shared := exchange(c, kindAllGather, &c.cluster.ints, data, func(slots [][]int) []int {
		cl := c.cluster
		total := 0
		for _, s := range slots {
			if !slices.IsSorted(s) {
				slices.Sort(s)
			}
			total += len(s)
		}
		// Traffic: every rank ships its own sorted index list, which goes on
		// the wire as the COO varint delta block.
		for _, s := range slots {
			cl.traffic.AllGatherBytes += intPayloadBytes(s)
		}
		// n-way merge with dedup. heads[r] is rank r's cursor.
		heads := cl.heads
		for r := range heads {
			heads[r] = 0
		}
		out := growInts(&cl.intBuf, total)[:0]
		for {
			best, bv := -1, 0
			for r, s := range slots {
				if h := heads[r]; h < len(s) {
					if v := s[h]; best < 0 || v < bv {
						best, bv = r, v
					}
				}
			}
			if best < 0 {
				break
			}
			if len(out) == 0 || out[len(out)-1] != bv {
				out = append(out, bv)
			}
			heads[best]++
		}
		cl.intBuf = out
		return out
	})
	return append(dst[:0], shared...)
}

// AllReduceSum element-wise sums every rank's vector (all must have equal
// length) and returns a fresh copy of the sum to every rank.
func (c *Comm) AllReduceSum(data []float64) []float64 {
	return c.AllReduceSumInto(data, nil)
}

// AllReduceSumInto is the scratch-buffer form of AllReduceSum.
func (c *Comm) AllReduceSumInto(data []float64, dst []float64) []float64 {
	shared := exchange(c, kindAllReduce, &c.cluster.floats, data, func(slots [][]float64) []float64 {
		cl := c.cluster
		sum := growFloats(&cl.floatBuf, len(slots[0]))
		copy(sum, slots[0])
		for r, s := range slots[1:] {
			if len(s) != len(sum) {
				panic(fmt.Sprintf("comm: AllReduceSum length mismatch: rank %d has %d, rank 0 has %d",
					r+1, len(s), len(sum)))
			}
			for i, x := range s {
				sum[i] += x
			}
		}
		cl.traffic.AllReduceBytes += 4 * int64(len(sum)) * int64(cl.n)
		return sum
	})
	return append(dst[:0], shared...)
}

// AllReduceMax element-wise maximum across ranks.
func (c *Comm) AllReduceMax(data []float64) []float64 {
	return c.AllReduceMaxInto(data, nil)
}

// AllReduceMaxInto is the scratch-buffer form of AllReduceMax.
func (c *Comm) AllReduceMaxInto(data []float64, dst []float64) []float64 {
	shared := exchange(c, kindAllReduce, &c.cluster.floats, data, func(slots [][]float64) []float64 {
		cl := c.cluster
		m := growFloats(&cl.floatBuf, len(slots[0]))
		copy(m, slots[0])
		for _, s := range slots[1:] {
			if len(s) != len(m) {
				panic("comm: AllReduceMax length mismatch")
			}
			for i, x := range s {
				if x > m[i] {
					m[i] = x
				}
			}
		}
		cl.traffic.AllReduceBytes += 4 * int64(len(m)) * int64(cl.n)
		return m
	})
	return append(dst[:0], shared...)
}

func (c *Comm) checkRoot(root int) {
	if root < 0 || root >= c.cluster.n {
		panic(fmt.Sprintf("comm: root %d out of range [0,%d)", root, c.cluster.n))
	}
}

// growInts resizes *buf to length n, reallocating only on capacity growth.
func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growFloats resizes *buf to length n, reallocating only on capacity growth.
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// TrafficCounter accumulates the encoded wire bytes moved by collectives —
// not element counts. Sorted index lists are charged at their COO varint
// delta size (internal/wire), other int payloads at uint32 each, and float
// payloads at fp32 each, matching what NCCL-class systems put on the
// network. Conventions per collective: all-gathers charge the sum of every
// rank's encoded contribution, all-reduces charge the fp32 vector times the
// rank count, and broadcasts charge the root's payload once — the topology
// cost models, not the counters, decide how many links a payload crosses.
type TrafficCounter struct {
	AllGatherBytes int64 `json:"allgather_bytes"`
	AllReduceBytes int64 `json:"allreduce_bytes"`
	BroadcastBytes int64 `json:"broadcast_bytes"`
}

// Total returns the sum of all counters in bytes.
func (t TrafficCounter) Total() int64 {
	return t.AllGatherBytes + t.AllReduceBytes + t.BroadcastBytes
}

// Add accumulates another counter into t (the trainer sums the segments of
// a recovered run into one per-run record).
func (t *TrafficCounter) Add(o TrafficCounter) {
	t.AllGatherBytes += o.AllGatherBytes
	t.AllReduceBytes += o.AllReduceBytes
	t.BroadcastBytes += o.BroadcastBytes
}

// CollectiveWall is the measured combine wall clock of one collective
// family: how many combines ran and how long they took in total.
type CollectiveWall struct {
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// add accumulates ns/count into the wall entry.
func (w *CollectiveWall) add(o CollectiveWall) {
	w.Count += o.Count
	w.Seconds += o.Seconds
}

// CommWall is the measured counterpart of the modeled WireCommTime: the
// wall clock actually spent combining payloads per collective family.
// In this in-process substrate the combine (merge, sum, copy under the
// cluster lock) is the data movement; comparing it against the α–β and
// topology models is what turns those models from predictions into
// testable claims.
type CommWall struct {
	Barrier   CollectiveWall `json:"barrier"`
	Broadcast CollectiveWall `json:"broadcast"`
	AllGather CollectiveWall `json:"allgather"`
	AllReduce CollectiveWall `json:"allreduce"`
}

// TotalSeconds sums the measured wall over all collective families.
func (w CommWall) TotalSeconds() float64 {
	return w.Barrier.Seconds + w.Broadcast.Seconds + w.AllGather.Seconds + w.AllReduce.Seconds
}

// Add accumulates another snapshot into w (the trainer sums the segments
// of a recovered run into one per-run record).
func (w *CommWall) Add(o CommWall) {
	w.Barrier.add(o.Barrier)
	w.Broadcast.add(o.Broadcast)
	w.AllGather.add(o.AllGather)
	w.AllReduce.add(o.AllReduce)
}

// CommWall returns a snapshot of the measured combine wall clock.
func (c *Cluster) CommWall() CommWall {
	c.mu.Lock()
	defer c.mu.Unlock()
	at := func(k collectiveKind) CollectiveWall {
		return CollectiveWall{Count: c.wallCount[k], Seconds: float64(c.wallNS[k]) / 1e9}
	}
	return CommWall{
		Barrier:   at(kindBarrier),
		Broadcast: at(kindBroadcast),
		AllGather: at(kindAllGather),
		AllReduce: at(kindAllReduce),
	}
}

// ResetCommWall zeroes the measured wall accumulators.
func (c *Cluster) ResetCommWall() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wallNS = [numCollectiveKinds]int64{}
	c.wallCount = [numCollectiveKinds]int64{}
}

// intPayloadBytes returns the wire footprint of an int payload: the COO
// varint delta block for a strictly increasing index list (the common case
// — sorted selections), else 4 bytes per element as plain uint32s.
func intPayloadBytes(s []int) int64 {
	if n, ok := wire.IndexBytes(s); ok {
		return int64(n)
	}
	return 4 * int64(len(s))
}
