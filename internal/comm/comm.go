// Package comm simulates the multi-worker communication substrate the paper
// runs on MPI + NCCL: ranks, barriers, broadcast, all-gather and all-reduce.
//
// Workers run as goroutines inside one process. Collectives are implemented
// over a generation-counted rendezvous: every rank deposits its
// contribution, the last arrival computes the combined result, and all ranks
// pick it up. This gives real synchronisation semantics (a rank cannot race
// ahead of a collective), so phenomena like gradient build-up are measured
// from genuinely independent per-rank data rather than assumed.
//
// Wall-clock time inside a simulated collective is meaningless as a proxy
// for network time, so the package also provides the α–β cost model the
// paper itself uses in §5.3 to discuss communication time.
package comm

import (
	"fmt"
	"sync"
)

// Cluster owns the shared rendezvous state for n ranks.
type Cluster struct {
	n    int
	mu   sync.Mutex
	cond *sync.Cond

	arrived    int
	generation uint64
	slots      []any
	result     any

	traffic TrafficCounter
}

// NewCluster creates a cluster of n ranks. It panics if n <= 0.
func NewCluster(n int) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("comm: cluster size %d must be positive", n))
	}
	c := &Cluster{n: n, slots: make([]any, n)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Size returns the number of ranks.
func (c *Cluster) Size() int { return c.n }

// Traffic returns a snapshot of the accumulated traffic counters.
func (c *Cluster) Traffic() TrafficCounter {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traffic
}

// ResetTraffic zeroes the traffic counters.
func (c *Cluster) ResetTraffic() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.traffic = TrafficCounter{}
}

// Run starts fn on every rank concurrently and waits for all to finish.
// Each invocation receives a rank-bound Comm handle.
func (c *Cluster) Run(fn func(comm *Comm)) {
	var wg sync.WaitGroup
	wg.Add(c.n)
	for rank := 0; rank < c.n; rank++ {
		go func(rank int) {
			defer wg.Done()
			fn(&Comm{rank: rank, cluster: c})
		}(rank)
	}
	wg.Wait()
}

// Comm is a rank-bound handle for collective operations.
type Comm struct {
	rank    int
	cluster *Cluster
}

// Rank returns this handle's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the cluster size.
func (c *Comm) Size() int { return c.cluster.n }

// exchange is the rendezvous core. Every rank deposits contrib; the last
// arrival runs combine over the deposited slots (indexed by rank) and the
// shared result is returned to every rank. combine runs exactly once per
// generation, under the cluster lock.
func (c *Comm) exchange(contrib any, combine func(slots []any) any) any {
	cl := c.cluster
	cl.mu.Lock()
	gen := cl.generation
	cl.slots[c.rank] = contrib
	cl.arrived++
	if cl.arrived == cl.n {
		cl.result = combine(cl.slots)
		for i := range cl.slots {
			cl.slots[i] = nil
		}
		cl.arrived = 0
		cl.generation++
		cl.cond.Broadcast()
	} else {
		for gen == cl.generation {
			cl.cond.Wait()
		}
	}
	res := cl.result
	cl.mu.Unlock()
	return res
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	c.exchange(nil, func([]any) any { return nil })
}

// BroadcastInts distributes root's slice to every rank. Every rank receives
// a fresh copy (safe to mutate). Non-root ranks may pass nil.
func (c *Comm) BroadcastInts(root int, data []int) []int {
	c.checkRoot(root)
	res := c.exchange(data, func(slots []any) any {
		src, _ := slots[root].([]int)
		c.cluster.traffic.BroadcastInts += int64(len(src))
		return src
	})
	src, _ := res.([]int)
	out := make([]int, len(src))
	copy(out, src)
	return out
}

// BroadcastFloats distributes root's slice to every rank as a fresh copy.
func (c *Comm) BroadcastFloats(root int, data []float64) []float64 {
	c.checkRoot(root)
	res := c.exchange(data, func(slots []any) any {
		src, _ := slots[root].([]float64)
		c.cluster.traffic.BroadcastFloats += int64(len(src))
		return src
	})
	src, _ := res.([]float64)
	out := make([]float64, len(src))
	copy(out, src)
	return out
}

// BroadcastIntsNested distributes root's slice-of-slices (e.g. the
// bin-packing result of DEFT's Algorithm 4) to every rank as a deep copy.
func (c *Comm) BroadcastIntsNested(root int, data [][]int) [][]int {
	c.checkRoot(root)
	res := c.exchange(data, func(slots []any) any {
		src, _ := slots[root].([][]int)
		total := 0
		for _, s := range src {
			total += len(s)
		}
		c.cluster.traffic.BroadcastInts += int64(total)
		return src
	})
	src, _ := res.([][]int)
	out := make([][]int, len(src))
	for i, s := range src {
		out[i] = make([]int, len(s))
		copy(out[i], s)
	}
	return out
}

// AllGatherInts concatenates every rank's contribution in rank order and
// returns a fresh copy of the concatenation to every rank.
func (c *Comm) AllGatherInts(data []int) []int {
	res := c.exchange(data, func(slots []any) any {
		total := 0
		for _, s := range slots {
			v, _ := s.([]int)
			total += len(v)
		}
		out := make([]int, 0, total)
		for _, s := range slots {
			v, _ := s.([]int)
			out = append(out, v...)
		}
		c.cluster.traffic.AllGatherInts += int64(total)
		return out
	})
	shared, _ := res.([]int)
	out := make([]int, len(shared))
	copy(out, shared)
	return out
}

// AllGatherUniqueInts gathers every rank's index set and returns the sorted
// union without duplicates. This is the collective on line 7 of Algorithm 1:
// the resulting length, relative to the per-rank k, is exactly the gradient
// build-up the paper measures.
func (c *Comm) AllGatherUniqueInts(data []int) []int {
	res := c.exchange(data, func(slots []any) any {
		total := 0
		for _, s := range slots {
			v, _ := s.([]int)
			total += len(v)
		}
		// Traffic: every rank ships its own k indices.
		c.cluster.traffic.AllGatherInts += int64(total)
		seen := make(map[int]struct{}, total)
		out := make([]int, 0, total)
		for _, s := range slots {
			v, _ := s.([]int)
			for _, idx := range v {
				if _, ok := seen[idx]; !ok {
					seen[idx] = struct{}{}
					out = append(out, idx)
				}
			}
		}
		sortInts(out)
		return out
	})
	shared, _ := res.([]int)
	out := make([]int, len(shared))
	copy(out, shared)
	return out
}

// AllReduceSum element-wise sums every rank's vector (all must have equal
// length) and returns a fresh copy of the sum to every rank.
func (c *Comm) AllReduceSum(data []float64) []float64 {
	res := c.exchange(data, func(slots []any) any {
		first, _ := slots[0].([]float64)
		sum := make([]float64, len(first))
		for r, s := range slots {
			v, _ := s.([]float64)
			if len(v) != len(sum) {
				panic(fmt.Sprintf("comm: AllReduceSum length mismatch: rank %d has %d, rank 0 has %d",
					r, len(v), len(sum)))
			}
			for i, x := range v {
				sum[i] += x
			}
		}
		c.cluster.traffic.AllReduceFloats += int64(len(sum)) * int64(c.cluster.n)
		return sum
	})
	shared, _ := res.([]float64)
	out := make([]float64, len(shared))
	copy(out, shared)
	return out
}

// AllReduceMax element-wise maximum across ranks.
func (c *Comm) AllReduceMax(data []float64) []float64 {
	res := c.exchange(data, func(slots []any) any {
		first, _ := slots[0].([]float64)
		m := make([]float64, len(first))
		copy(m, first)
		for _, s := range slots[1:] {
			v, _ := s.([]float64)
			if len(v) != len(m) {
				panic("comm: AllReduceMax length mismatch")
			}
			for i, x := range v {
				if x > m[i] {
					m[i] = x
				}
			}
		}
		c.cluster.traffic.AllReduceFloats += int64(len(m)) * int64(c.cluster.n)
		return m
	})
	shared, _ := res.([]float64)
	out := make([]float64, len(shared))
	copy(out, shared)
	return out
}

func (c *Comm) checkRoot(root int) {
	if root < 0 || root >= c.cluster.n {
		panic(fmt.Sprintf("comm: root %d out of range [0,%d)", root, c.cluster.n))
	}
}

// TrafficCounter accumulates logical element counts moved by collectives.
// Element counts (not bytes) keep the numbers precision-agnostic; multiply
// by 4 for float32-on-the-wire as in the paper's systems.
type TrafficCounter struct {
	AllGatherInts   int64
	AllReduceFloats int64
	BroadcastInts   int64
	BroadcastFloats int64
}

// Total returns the sum of all counters.
func (t TrafficCounter) Total() int64 {
	return t.AllGatherInts + t.AllReduceFloats + t.BroadcastInts + t.BroadcastFloats
}

// sortInts is insertion-free small wrapper around sort for []int; kept
// local to avoid importing sort in several files.
func sortInts(v []int) {
	// Simple pdq via sort.Ints would be fine; manual shellsort avoids the
	// interface overhead for the very hot union path.
	n := len(v)
	for gap := n / 2; gap > 0; gap /= 2 {
		for i := gap; i < n; i++ {
			tmp := v[i]
			j := i
			for ; j >= gap && v[j-gap] > tmp; j -= gap {
				v[j] = v[j-gap]
			}
			v[j] = tmp
		}
	}
}
