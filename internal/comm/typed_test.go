package comm

import (
	"reflect"
	"sort"
	"sync"
	"testing"
)

// TestAllGatherUniqueIntsMerge exercises the n-way merge against a map
// reference across overlap patterns: disjoint, identical, nested, and
// randomly overlapping unsorted contributions.
func TestAllGatherUniqueIntsMerge(t *testing.T) {
	cases := []struct {
		name    string
		contrib [][]int
	}{
		{"disjoint", [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}},
		{"identical", [][]int{{3, 1, 2}, {1, 2, 3}, {2, 3, 1}, {3, 2, 1}}},
		{"nested", [][]int{{5}, {4, 5, 6}, {3, 4, 5, 6, 7}, {5, 6}}},
		{"empty-some", [][]int{{}, {9, 1}, nil, {1, 9, 4}}},
		{"all-empty", [][]int{nil, {}, nil, {}}},
		{"unsorted", [][]int{{9, 0, 4}, {7, 7, 2}, {100, 50}, {0, 100}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Reference: map-based union.
			seen := map[int]bool{}
			for _, s := range c.contrib {
				for _, x := range s {
					seen[x] = true
				}
			}
			want := make([]int, 0, len(seen))
			for x := range seen {
				want = append(want, x)
			}
			sort.Ints(want)
			if len(want) == 0 {
				want = nil
			}

			cl := NewCluster(len(c.contrib))
			var mu sync.Mutex
			got := make([][]int, len(c.contrib))
			cl.Run(func(cm *Comm) {
				// Copy: the collective may sort contributions in place.
				in := append([]int(nil), c.contrib[cm.Rank()]...)
				res := cm.AllGatherUniqueInts(in)
				mu.Lock()
				got[cm.Rank()] = res
				mu.Unlock()
			})
			for r, g := range got {
				if len(g) == 0 {
					g = nil
				}
				if !reflect.DeepEqual(g, want) {
					t.Fatalf("rank %d: union = %v, want %v", r, g, want)
				}
			}
		})
	}
}

// TestIntoVariantsReuseBuffers verifies the Into collectives fill the
// caller's buffer without reallocating when capacity suffices, and that
// repeated use across generations keeps returning correct values.
func TestIntoVariantsReuseBuffers(t *testing.T) {
	const n = 4
	const iters = 5
	cl := NewCluster(n)
	cl.Run(func(cm *Comm) {
		rank := cm.Rank()
		idxBuf := make([]int, 0, 64)
		sumBuf := make([]float64, 0, 64)
		for it := 0; it < iters; it++ {
			contrib := []int{rank, rank + 10, it}
			prev := cap(idxBuf)
			idxBuf = cm.AllGatherUniqueIntsInto(contrib, idxBuf)
			if cap(idxBuf) != prev {
				t.Errorf("rank %d iter %d: AllGatherUniqueIntsInto reallocated (cap %d -> %d)",
					rank, it, prev, cap(idxBuf))
			}
			if !sort.IntsAreSorted(idxBuf) {
				t.Errorf("rank %d iter %d: union not sorted: %v", rank, it, idxBuf)
			}

			vals := []float64{float64(rank), float64(it)}
			prevF := cap(sumBuf)
			sumBuf = cm.AllReduceSumInto(vals, sumBuf)
			if cap(sumBuf) != prevF {
				t.Errorf("rank %d iter %d: AllReduceSumInto reallocated", rank, it)
			}
			wantSum := float64(n * (n - 1) / 2) // Σ ranks
			if sumBuf[0] != wantSum || sumBuf[1] != float64(it*n) {
				t.Errorf("rank %d iter %d: sum = %v, want [%v %v]", rank, it, sumBuf, wantSum, it*n)
			}
		}
	})
}

// TestResultsSurviveNextCollective guards the buffer-reuse contract: a
// result copied out by a rank must not be corrupted by the next collective
// (whose combine reuses the cluster-owned intermediate buffers).
func TestResultsSurviveNextCollective(t *testing.T) {
	const n = 4
	cl := NewCluster(n)
	cl.Run(func(cm *Comm) {
		rank := cm.Rank()
		first := cm.AllGatherUniqueInts([]int{rank * 2})
		second := cm.AllGatherUniqueInts([]int{100 + rank})
		want1 := []int{0, 2, 4, 6}
		want2 := []int{100, 101, 102, 103}
		if !reflect.DeepEqual(first, want1) {
			t.Errorf("rank %d: first union corrupted: %v", rank, first)
		}
		if !reflect.DeepEqual(second, want2) {
			t.Errorf("rank %d: second union = %v, want %v", rank, second, want2)
		}
	})
}

// TestMixedTypedCollectivesInterleave runs a sequence alternating between
// the int, float and nested mailboxes, ensuring the typed rendezvous shares
// one arrival counter correctly.
func TestMixedTypedCollectivesInterleave(t *testing.T) {
	const n = 3
	cl := NewCluster(n)
	cl.Run(func(cm *Comm) {
		rank := cm.Rank()
		for it := 0; it < 4; it++ {
			g := cm.AllGatherInts([]int{rank})
			if len(g) != n {
				t.Errorf("gather %d: %v", it, g)
			}
			s := cm.AllReduceSum([]float64{1})
			if s[0] != n {
				t.Errorf("sum %d: %v", it, s)
			}
			cm.Barrier()
			b := cm.BroadcastIntsNested(0, [][]int{{it}, {rank}})
			if b[0][0] != it {
				t.Errorf("nested broadcast %d: %v", it, b)
			}
		}
	})
}
