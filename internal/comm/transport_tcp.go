// Hub-and-spoke TCP transports: a leader process hosts the rendezvous for
// the whole cluster, follower processes ship their local ranks' deposits
// over frames (frame.go) and receive each collective's combined result.
//
// The leader wraps the in-process rendezvous: every remote rank is driven
// by a proxy goroutine that replays decoded deposits into the hub exactly
// as a local rank goroutine would. Combines therefore run once, in rank
// order, on the leader — which is what makes a distributed run's numerics
// byte-identical to the in-process run the golden fixtures record.
//
// A follower's deposit is one frame per local rank; the result comes back
// once per peer (its lowest rank's proxy sends it) and wakes all local
// ranks through a generation counter, mirroring the in-process rendezvous
// one level up.
//
// Failure routing: a peer connection dying while the cluster is healthy is
// a drop — the leader aborts with a *FaultError covering the peer's whole
// rank range, attributed to one past the last completed collective's
// iteration tag, so the trainer's checkpoint → rebuild → resume recovery
// handles a killed process exactly like an injected fault. The leader
// itself is the single point of failure by design (it hosts the
// rendezvous): followers that lose it abort with a plain error.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// RemotePeer declares one follower process joining a leader cluster: the
// frame link to it and the contiguous rank range [Lo, Hi) it hosts.
type RemotePeer struct {
	Link   Link
	Lo, Hi int
}

// NewLeaderCluster creates the hub of a multi-process cluster of n total
// ranks: this process hosts ranks [0, local) — rank 0, which owns
// evaluation and checkpointing, is always local — and each peer hosts its
// declared contiguous range. Peer ranges must tile [local, n) in order.
func NewLeaderCluster(n, local int, peers []RemotePeer) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("comm: cluster size %d must be positive", n)
	}
	if local < 1 || local > n {
		return nil, fmt.Errorf("comm: leader rank count %d out of [1,%d]", local, n)
	}
	next := local
	for i, p := range peers {
		if p.Link == nil {
			return nil, fmt.Errorf("comm: peer %d has no link", i)
		}
		if p.Lo != next || p.Hi <= p.Lo {
			return nil, fmt.Errorf("comm: peer %d rank range [%d,%d) does not tile at %d", i, p.Lo, p.Hi, next)
		}
		next = p.Hi
	}
	if next != n {
		return nil, fmt.Errorf("comm: peer ranges end at %d, want %d", next, n)
	}
	hub := newInproc(n)
	// Open the per-collective wall window at the first deposit, so waiting
	// for remote deposits — real network time — is measured.
	hub.measureRendezvous = true
	lt := &leaderTransport{inprocTransport: hub, nLocal: local}
	for _, p := range peers {
		lt.peers = append(lt.peers, &peerState{link: p.Link, lo: p.Lo, hi: p.Hi})
	}
	return &Cluster{n: n, tr: lt, killAt: -1}, nil
}

// NewFollowerCluster joins a multi-process cluster of n total ranks as the
// process hosting ranks [lo, hi), over the given link to the leader. Rank
// 0 lives on the leader, so lo must be at least 1.
func NewFollowerCluster(n, lo, hi int, link Link) (*Cluster, error) {
	if n <= 0 || lo < 1 || hi <= lo || hi > n {
		return nil, fmt.Errorf("comm: follower rank range [%d,%d) invalid for cluster size %d", lo, hi, n)
	}
	if link == nil {
		return nil, fmt.Errorf("comm: follower has no link")
	}
	t := &followerTransport{
		n: n, lo: lo, hi: hi, link: link,
		down:       make(chan struct{}),
		readerDone: make(chan struct{}),
	}
	t.cond = sync.NewCond(&t.mu)
	return &Cluster{n: n, tr: t, killAt: -1}, nil
}

// peerState is the leader's bookkeeping for one follower connection.
type peerState struct {
	link   Link
	lo, hi int
	tx, rx atomic.Int64
}

// send frames a message to the peer, counting socket bytes on success.
func (p *peerState) send(typ byte, payload []byte) error {
	err := p.link.Send(typ, payload)
	if err == nil {
		p.tx.Add(int64(len(payload)) + frameOverhead)
	}
	return err
}

// frameOverhead is the per-frame header cost (length prefix + type byte).
const frameOverhead = 5

// leaderTransport is the hub: the in-process rendezvous over all n ranks,
// with remote ranks driven by proxy goroutines fed from per-peer frame
// pumps.
type leaderTransport struct {
	*inprocTransport
	nLocal int
	peers  []*peerState

	startOnce sync.Once
	killOnce  sync.Once
	pumps     sync.WaitGroup
}

func (l *leaderTransport) localRanks() (int, int) { return 0, l.nLocal }

// start spawns one frame pump per peer plus one proxy per remote rank.
// finish blocks until every pump drained (its peer sent FINISH or died),
// so after RunContext returns no collective frames are in flight and a
// higher layer can reuse the connections.
func (l *leaderTransport) start() {
	l.startOnce.Do(func() {
		for _, p := range l.peers {
			chans := make([]chan deposit, p.hi-p.lo)
			for i := range chans {
				chans[i] = make(chan deposit, 4)
			}
			l.pumps.Add(1 + len(chans))
			for i, ch := range chans {
				go l.proxyLoop(p, p.lo+i, ch)
			}
			go l.pumpLoop(p, chans)
		}
	})
}

func (l *leaderTransport) finish() { l.pumps.Wait() }

// pumpLoop reads a peer's frames for the cluster's lifetime, routing each
// decoded deposit to its rank's proxy. It exits on the peer's FINISH (the
// clean path) or on a link error — which, while the cluster is healthy, is
// a real drop: the peer process died or the network went away.
func (l *leaderTransport) pumpLoop(p *peerState, chans []chan deposit) {
	defer l.pumps.Done()
	defer func() {
		for _, ch := range chans {
			close(ch)
		}
	}()
	for {
		typ, payload, err := p.link.Recv()
		if err != nil {
			l.peerLost(p, err)
			return
		}
		p.rx.Add(int64(len(payload)) + frameOverhead)
		switch typ {
		case frameFinish:
			return
		case frameAbort:
			// The peer's abort becomes the cluster's (or a suppressed
			// cause); keep pumping so the peer's in-flight frames drain
			// until its FINISH or close.
			l.abort(decodeAbort(payload))
		case frameDeposit:
			d, derr := decodeDeposit(payload)
			if derr != nil {
				l.abort(fmt.Errorf("comm: peer ranks [%d,%d): %w", p.lo, p.hi, derr))
				return
			}
			if d.rank < p.lo || d.rank >= p.hi {
				l.abort(fmt.Errorf("comm: peer deposited for rank %d outside [%d,%d)", d.rank, p.lo, p.hi))
				return
			}
			select {
			case chans[d.rank-p.lo] <- d:
			case <-l.down:
				// Aborted: proxies are unwinding, discard the deposit.
			}
		default:
			l.abort(fmt.Errorf("comm: unexpected frame type %d from peer", typ))
			return
		}
	}
}

// proxyLoop replays one remote rank's deposits into the hub rendezvous,
// exactly as a local rank goroutine would. The peer's lowest-rank proxy
// additionally returns each combined result — one result frame per peer
// per collective, fanned out to the peer's ranks on its side.
func (l *leaderTransport) proxyLoop(p *peerState, rank int, ch chan deposit) {
	defer l.pumps.Done()
	var buf []byte
	for d := range ch {
		resInts, resFloats, ok := l.runCollective(rank, d)
		if !ok {
			return // aborted; the pump discards further deposits
		}
		if rank == p.lo {
			// Encode before touching the next deposit: the result aliases
			// hub buffers that stay valid until this rank deposits again.
			buf = appendResult(buf[:0], d.op, resInts, resFloats)
			if err := p.send(frameResult, buf); err != nil {
				l.peerLost(p, err)
				return
			}
		}
	}
}

// runCollective enters the hub rendezvous on behalf of a remote rank,
// converting an abort unwind into ok=false (a proxy goroutine has no
// RunContext to recover it).
func (l *leaderTransport) runCollective(rank int, d deposit) (ints []int, floats []float64, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(abortPanic); !isAbort {
				panic(r)
			}
			ok = false
		}
	}()
	if d.op.isFloat() {
		floats = l.exchangeFloats(rank, d.op, d.root, d.iter, d.floats)
	} else {
		ints = l.exchangeInts(rank, d.op, d.root, d.iter, d.ints)
	}
	return ints, floats, true
}

// peerLost routes a dead connection into the fault machinery: while the
// cluster is healthy it is a drop of the peer's entire rank range,
// resuming at one past the last completed collective's iteration. After an
// abort it is just teardown noise.
func (l *leaderTransport) peerLost(p *peerState, cause error) {
	if l.hasAborted() {
		return
	}
	ranks := make([]int, 0, p.hi-p.lo)
	for r := p.lo; r < p.hi; r++ {
		ranks = append(ranks, r)
	}
	_ = cause // the FaultError is the actionable form; the cause is conn noise
	l.abort(&FaultError{Kind: FaultDrop, Rank: p.lo, Ranks: ranks, Iteration: l.resumeIteration()})
}

// abort installs the reason in the hub and fans the winning abort out to
// every peer, waking their parked ranks.
func (l *leaderTransport) abort(err error) {
	if l.abortFirst(err) {
		payload := encodeAbort(err)
		for _, p := range l.peers {
			_ = p.send(frameAbort, payload)
		}
	}
}

// hardKill severs every peer link with no abort handshake — peers see a
// closed connection, exactly like a kill -9 of this process — and unwinds
// local ranks.
func (l *leaderTransport) hardKill() {
	l.killOnce.Do(func() {
		for _, p := range l.peers {
			_ = p.link.Close()
		}
		l.abortFirst(errHardKilled)
	})
}

func (l *leaderTransport) socketBytes() (tx, rx int64) {
	for _, p := range l.peers {
		tx += p.tx.Load()
		rx += p.rx.Load()
	}
	return tx, rx
}

func (l *leaderTransport) close() error {
	for _, p := range l.peers {
		_ = p.link.Close()
	}
	return nil
}

// followerTransport ships local ranks' deposits to the leader's hub and
// distributes each returned result to them via a generation counter.
type followerTransport struct {
	n, lo, hi int
	link      Link

	sendMu  sync.Mutex
	sendBuf []byte

	mu         sync.Mutex
	cond       *sync.Cond
	generation uint64
	resInts    []int
	resFloats  []float64
	abortErr   error
	suppressed []error
	abortedF   atomic.Bool
	down       chan struct{}

	// Wall clock measured by the lowest local rank: the full
	// deposit→result round-trip, i.e. real network plus hub rendezvous.
	wallNS    [numCollectiveKinds]int64
	wallCount [numCollectiveKinds]int64

	startOnce  sync.Once
	startedF   atomic.Bool
	finished   atomic.Bool
	killed     atomic.Bool
	readerDone chan struct{}
	tx, rx     atomic.Int64
}

func (t *followerTransport) localRanks() (int, int) { return t.lo, t.hi }

func (t *followerTransport) exchangeInts(rank int, op Op, root, iter int, data []int) []int {
	gen := t.preSend()
	var begin time.Time
	if rank == t.lo {
		begin = time.Now()
	}
	t.sendDeposit(rank, op, root, iter, data, nil)
	t.await(gen) // returns holding mu
	if rank == t.lo {
		k := op.kind()
		t.wallNS[k] += int64(time.Since(begin))
		t.wallCount[k]++
	}
	res := t.resInts
	t.mu.Unlock()
	return res
}

func (t *followerTransport) exchangeFloats(rank int, op Op, root, iter int, data []float64) []float64 {
	gen := t.preSend()
	var begin time.Time
	if rank == t.lo {
		begin = time.Now()
	}
	t.sendDeposit(rank, op, root, iter, nil, data)
	t.await(gen) // returns holding mu
	if rank == t.lo {
		k := op.kind()
		t.wallNS[k] += int64(time.Since(begin))
		t.wallCount[k]++
	}
	res := t.resFloats
	t.mu.Unlock()
	return res
}

// preSend snapshots the generation before this rank's deposit goes out.
// The result for generation g cannot arrive until every local rank has
// deposited g, so the snapshot cannot miss its own wake-up.
func (t *followerTransport) preSend() uint64 {
	t.mu.Lock()
	if err := t.abortErr; err != nil {
		t.mu.Unlock()
		panic(abortPanic{err})
	}
	gen := t.generation
	t.mu.Unlock()
	return gen
}

// sendDeposit frames one rank's contribution. A send failure means the
// leader is gone: abort locally and unwind.
func (t *followerTransport) sendDeposit(rank int, op Op, root, iter int, ints []int, floats []float64) {
	t.sendMu.Lock()
	t.sendBuf = appendDeposit(t.sendBuf[:0], rank, op, root, iter, ints, floats)
	err := t.link.Send(frameDeposit, t.sendBuf)
	if err == nil {
		t.tx.Add(int64(len(t.sendBuf)) + frameOverhead)
	}
	t.sendMu.Unlock()
	if err != nil {
		t.abortLocal(fmt.Errorf("comm: leader connection lost: %w", err))
		panic(abortPanic{t.err()})
	}
}

// await parks until the generation advances past gen (the reader installed
// this collective's result) and returns holding mu.
func (t *followerTransport) await(gen uint64) {
	t.mu.Lock()
	for gen == t.generation {
		t.cond.Wait()
		if err := t.abortErr; err != nil {
			t.mu.Unlock()
			panic(abortPanic{err})
		}
	}
}

// start spawns the result reader.
func (t *followerTransport) start() {
	t.startOnce.Do(func() {
		t.startedF.Store(true)
		go t.readerLoop()
	})
}

// readerLoop receives result and abort frames for the cluster's lifetime.
// A link error while the cluster is healthy means the leader died: the
// hub is gone, so the run can only abort (the leader is the transport's
// single point of failure by design).
func (t *followerTransport) readerLoop() {
	defer close(t.readerDone)
	for {
		typ, payload, err := t.link.Recv()
		if err != nil {
			if t.finished.Load() || t.killed.Load() || t.hasAborted() {
				return
			}
			t.abortLocal(fmt.Errorf("comm: leader connection lost: %w", err))
			return
		}
		t.rx.Add(int64(len(payload)) + frameOverhead)
		switch typ {
		case frameResult:
			t.mu.Lock()
			var derr error
			_, t.resInts, t.resFloats, derr = decodeResult(payload, t.resInts, t.resFloats)
			if derr != nil {
				t.mu.Unlock()
				t.abortLocal(fmt.Errorf("comm: leader sent malformed result: %w", derr))
				return
			}
			t.generation++
			t.cond.Broadcast()
			t.mu.Unlock()
		case frameAbort:
			t.abortLocal(decodeAbort(payload))
			return
		default:
			t.abortLocal(fmt.Errorf("comm: unexpected frame type %d from leader", typ))
			return
		}
	}
}

// abortFirstLocal installs the abort reason locally, waking parked ranks;
// reports whether this call won.
func (t *followerTransport) abortFirstLocal(err error) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case t.abortErr == nil:
		t.abortErr = err
		t.abortedF.Store(true)
		close(t.down)
		t.cond.Broadcast()
		return true
	case err != t.abortErr && !containsErr(t.suppressed, err) && len(t.suppressed) < maxSuppressedAborts:
		t.suppressed = append(t.suppressed, err)
	}
	return false
}

// abortLocal records an abort without echoing it to the leader (used for
// aborts the leader originated or connection failures).
func (t *followerTransport) abortLocal(err error) { t.abortFirstLocal(err) }

// abort records an abort and forwards the winning reason to the leader,
// which fans it out to the rest of the cluster.
func (t *followerTransport) abort(err error) {
	if t.abortFirstLocal(err) && !t.killed.Load() {
		payload := encodeAbort(err)
		if t.link.Send(frameAbort, payload) == nil {
			t.tx.Add(int64(len(payload)) + frameOverhead)
		}
	}
}

func (t *followerTransport) err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return abortCause(t.abortErr, t.suppressed)
}

func (t *followerTransport) hasAborted() bool { return t.abortedF.Load() }

// traffic is zero on a follower: the modeled counters accumulate where the
// combines run — the leader's hub — so the leader's Result carries the
// cluster-wide model, identical to an in-process run.
func (t *followerTransport) traffic() TrafficCounter { return TrafficCounter{} }
func (t *followerTransport) resetTraffic()           {}

func (t *followerTransport) commWall() CommWall {
	t.mu.Lock()
	defer t.mu.Unlock()
	at := func(k collectiveKind) CollectiveWall {
		return CollectiveWall{Count: t.wallCount[k], Seconds: float64(t.wallNS[k]) / 1e9}
	}
	return CommWall{
		Barrier:   at(kindBarrier),
		Broadcast: at(kindBroadcast),
		AllGather: at(kindAllGather),
		AllReduce: at(kindAllReduce),
	}
}

func (t *followerTransport) resetCommWall() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wallNS = [numCollectiveKinds]int64{}
	t.wallCount = [numCollectiveKinds]int64{}
}

func (t *followerTransport) socketBytes() (tx, rx int64) { return t.tx.Load(), t.rx.Load() }

// setBaseIteration is leader-side bookkeeping; a follower attributes
// nothing (the leader owns disconnect attribution).
func (t *followerTransport) setBaseIteration(int) {}

// finish announces clean completion of every local rank; the leader's
// pump for this peer drains and exits on it.
func (t *followerTransport) finish() {
	if t.finished.CompareAndSwap(false, true) && !t.killed.Load() {
		_ = t.link.Send(frameFinish, nil)
	}
}

// hardKill severs the leader link with no handshake — the leader sees a
// closed connection, exactly like a kill -9 of this process — and unwinds
// local ranks.
func (t *followerTransport) hardKill() {
	if t.killed.CompareAndSwap(false, true) {
		_ = t.link.Close()
		t.abortLocal(errHardKilled)
	}
}

func (t *followerTransport) close() error {
	err := t.link.Close()
	if t.startedF.Load() {
		<-t.readerDone
	}
	return err
}
