// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan is pure data — JSON-serialisable, no hidden state — describing
// a chaos schedule: per-rank slowdown windows (stragglers), transient
// collective errors, and hard worker drops at a given iteration. Because
// firing is a pure function of (plan, rank, iteration, attempt), the same
// plan replays bit-identically: the identical faults fire at the identical
// points of every run, which is what lets the elasticity experiments and
// the chaos CI job assert on fault trajectories instead of sampling them.
//
// Injection rides the existing abort machinery: a drop or transient error
// calls Cluster.Abort with a *FaultError, so every rank — including ranks
// parked mid-rendezvous — unwinds exactly as a cancelled run does, instead
// of deadlocking on a collective the dead rank will never join.
package comm

import (
	"fmt"
	"slices"
)

// Straggler slows one rank by a multiplicative factor over an iteration
// window. The simulator applies the factor to the rank's measured compute
// time (wall clock inside a collective is meaningless here, exactly as for
// the α–β comm model), so a ×4 straggler shows up as a ×4 step time in the
// per-rank series and in the max-over-workers iteration time.
type Straggler struct {
	Rank   int     `json:"rank"`
	Factor float64 `json:"factor"`
	// From is the first iteration the slowdown applies to; Until, when
	// positive, is the first iteration it no longer applies to (a zero
	// Until means "until the end of the run").
	From  int `json:"from,omitempty"`
	Until int `json:"until,omitempty"`
}

// Transient is a transient collective error: the rank's iteration fails
// once (the whole cluster unwinds mid-rendezvous), but the rank survives —
// a recovering trainer resumes at the same size, and a retrying job
// re-executes with the fault already expired.
type Transient struct {
	Rank      int `json:"rank"`
	Iteration int `json:"iteration"`
	// Attempts is the number of run attempts the fault fires on (default
	// 1: first execution only, so a retry succeeds). See ForAttempt.
	Attempts int `json:"attempts,omitempty"`
}

// Drop is a hard worker failure: from the given iteration on, the rank is
// gone. A recovering trainer rebuilds the cluster at the surviving size; a
// non-recovering run fails with the *FaultError.
type Drop struct {
	Rank      int `json:"rank"`
	Iteration int `json:"iteration"`
	Attempts  int `json:"attempts,omitempty"`
}

// FaultPlan is a deterministic chaos schedule for one cluster. The zero
// value (and nil) injects nothing. Plans are immutable once attached:
// every derived schedule (ForAttempt, Survive) is a fresh value, so one
// plan can be shared by any number of replayed runs.
type FaultPlan struct {
	Stragglers []Straggler `json:"stragglers,omitempty"`
	Transients []Transient `json:"transients,omitempty"`
	Drops      []Drop      `json:"drops,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (p *FaultPlan) Empty() bool {
	return p == nil || len(p.Stragglers)+len(p.Transients)+len(p.Drops) == 0
}

// Validate checks every entry against a cluster of the given size.
func (p *FaultPlan) Validate(ranks int) error {
	if p == nil {
		return nil
	}
	checkRank := func(kind string, rank int) error {
		if rank < 0 || rank >= ranks {
			return fmt.Errorf("comm: fault plan: %s rank %d out of [0,%d)", kind, rank, ranks)
		}
		return nil
	}
	for _, s := range p.Stragglers {
		if err := checkRank("straggler", s.Rank); err != nil {
			return err
		}
		if s.Factor <= 0 {
			return fmt.Errorf("comm: fault plan: straggler factor %g must be positive", s.Factor)
		}
		if s.From < 0 || (s.Until != 0 && s.Until <= s.From) {
			return fmt.Errorf("comm: fault plan: straggler window [%d,%d) invalid", s.From, s.Until)
		}
	}
	for _, t := range p.Transients {
		if err := checkRank("transient", t.Rank); err != nil {
			return err
		}
		if t.Iteration < 0 || t.Attempts < 0 {
			return fmt.Errorf("comm: fault plan: transient at iteration %d, attempts %d invalid", t.Iteration, t.Attempts)
		}
	}
	for _, d := range p.Drops {
		if err := checkRank("drop", d.Rank); err != nil {
			return err
		}
		if d.Iteration < 0 || d.Attempts < 0 {
			return fmt.Errorf("comm: fault plan: drop at iteration %d, attempts %d invalid", d.Iteration, d.Attempts)
		}
	}
	return nil
}

// Factor returns the combined straggler slowdown of rank at the given
// iteration (1 when healthy). Overlapping windows multiply.
func (p *FaultPlan) Factor(rank, iteration int) float64 {
	if p == nil {
		return 1
	}
	f := 1.0
	for _, s := range p.Stragglers {
		if s.Rank == rank && iteration >= s.From && (s.Until == 0 || iteration < s.Until) {
			f *= s.Factor
		}
	}
	return f
}

// attemptCount normalises the Attempts field: zero means "first attempt
// only".
func attemptCount(a int) int {
	if a <= 0 {
		return 1
	}
	return a
}

// ForAttempt returns the schedule as seen by the attempt-th execution of
// the run (attempt is 1-based): transients and drops expire after their
// Attempts count, so a retried job eventually runs clean, while stragglers
// — a property of the machine, not of one execution — persist on every
// attempt. The receiver is never mutated.
func (p *FaultPlan) ForAttempt(attempt int) *FaultPlan {
	if p == nil || attempt <= 1 {
		return p
	}
	out := &FaultPlan{Stragglers: slices.Clone(p.Stragglers)}
	for _, t := range p.Transients {
		if attemptCount(t.Attempts) >= attempt {
			out.Transients = append(out.Transients, t)
		}
	}
	for _, d := range p.Drops {
		if attemptCount(d.Attempts) >= attempt {
			out.Drops = append(out.Drops, d)
		}
	}
	return out
}

// Survive returns the schedule for the cluster rebuilt after fe fired. A
// fired transient is removed (the rank survived; refiring it on resume
// would loop forever). A fired drop removes the dead rank entirely: its
// remaining faults die with it, every other entry is renumbered down past
// it, and the fired drop itself disappears. The receiver is never mutated.
func (p *FaultPlan) Survive(fe *FaultError) *FaultPlan {
	if p == nil {
		return nil
	}
	out := &FaultPlan{}
	if fe.Kind == FaultTransient {
		out.Stragglers = slices.Clone(p.Stragglers)
		out.Drops = slices.Clone(p.Drops)
		for _, t := range p.Transients {
			if t.Rank == fe.Rank && t.Iteration == fe.Iteration {
				continue
			}
			out.Transients = append(out.Transients, t)
		}
		return out
	}
	// Drop: remove rank fe.Rank, shift higher ranks down by one.
	remap := func(rank int) (int, bool) {
		switch {
		case rank == fe.Rank:
			return 0, false
		case rank > fe.Rank:
			return rank - 1, true
		}
		return rank, true
	}
	for _, s := range p.Stragglers {
		if r, ok := remap(s.Rank); ok {
			s.Rank = r
			out.Stragglers = append(out.Stragglers, s)
		}
	}
	for _, t := range p.Transients {
		if r, ok := remap(t.Rank); ok {
			t.Rank = r
			out.Transients = append(out.Transients, t)
		}
	}
	for _, d := range p.Drops {
		if r, ok := remap(d.Rank); ok {
			d.Rank = r
			out.Drops = append(out.Drops, d)
		}
	}
	return out
}

// Fault kinds carried by FaultError.
const (
	FaultDrop      = "drop"
	FaultTransient = "transient"
)

// FaultError is the abort reason of an injected fault. Rank is in the
// numbering of the cluster the fault fired on (the trainer maps it back to
// the original rank across recoveries); Iteration is where it fired — the
// iteration whose update was NOT applied, i.e. where a recovery resumes.
//
// A peer process lost over TCP takes all of its ranks with it at once:
// Ranks then lists the whole dead range (and Rank is its first element).
// Injected faults leave Ranks nil.
type FaultError struct {
	Kind      string `json:"kind"` // FaultDrop | FaultTransient
	Rank      int    `json:"rank"`
	Ranks     []int  `json:"ranks,omitempty"`
	Iteration int    `json:"iteration"`
}

// AllRanks returns every rank the fault took: Ranks when set, else [Rank].
func (e *FaultError) AllRanks() []int {
	if len(e.Ranks) > 0 {
		return e.Ranks
	}
	return []int{e.Rank}
}

func (e *FaultError) Error() string {
	if len(e.Ranks) > 1 {
		return fmt.Sprintf("comm: %s fault: ranks %v at iteration %d", e.Kind, e.Ranks, e.Iteration)
	}
	return fmt.Sprintf("comm: injected %s fault: rank %d at iteration %d", e.Kind, e.Rank, e.Iteration)
}

// SetFaultPlan attaches a chaos schedule to the cluster. It must be called
// before Run/RunContext starts the ranks; a nil plan (the default) keeps
// the fault path entirely off the collectives. The plan is data only — the
// cluster never mutates it — so the same value can drive any number of
// replayed runs.
func (c *Cluster) SetFaultPlan(p *FaultPlan) {
	if p != nil {
		if err := p.Validate(c.n); err != nil {
			panic(err.Error())
		}
	}
	c.faults = p
}

// FaultPlan returns the attached chaos schedule (nil when healthy).
func (c *Cluster) FaultPlan() *FaultPlan { return c.faults }

// StartIteration is the per-iteration fault checkpoint, called by each
// rank at the top of its iteration (it subsumes CheckAbort). Drops and
// transients scheduled for this rank fire here — before the iteration's
// compute, exactly like a worker dying between steps — and the abort
// broadcast unwinds every other rank out of whatever collective it is
// parked in mid-rendezvous. The healthy path costs one nil check plus one
// atomic load. It also advances the rank's iteration tag (disconnect
// attribution) and fires an armed HardKill.
func (c *Comm) StartIteration(t int) {
	c.iter = t
	if k := c.cluster.killAt; k >= 0 && t >= k {
		// Simulated process death: sever connections with no handshake and
		// unwind. All local ranks reach this; hardKill is idempotent.
		c.cluster.tr.hardKill()
		panic(abortPanic{errHardKilled})
	}
	if p := c.cluster.faults; p != nil {
		for _, d := range p.Drops {
			if d.Rank == c.rank && t >= d.Iteration {
				c.injectFault(&FaultError{Kind: FaultDrop, Rank: c.rank, Iteration: t})
			}
		}
		for _, tr := range p.Transients {
			if tr.Rank == c.rank && tr.Iteration == t {
				c.injectFault(&FaultError{Kind: FaultTransient, Rank: c.rank, Iteration: t})
			}
		}
	}
	c.CheckAbort()
}

// injectFault aborts the cluster with the given fault and unwinds this
// rank. If another abort already won the race, that winner is kept (the
// fault is recorded as a suppressed cause) and the rank unwinds all the
// same.
func (c *Comm) injectFault(fe *FaultError) {
	c.cluster.Abort(fe)
	panic(abortPanic{c.cluster.Err()})
}

// StragglerFactor returns the plan's slowdown multiplier for this rank at
// the given iteration (1 when no plan is attached or the rank is healthy).
func (c *Comm) StragglerFactor(t int) float64 {
	return c.cluster.faults.Factor(c.rank, t)
}
