package comm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func samplePlan() *FaultPlan {
	return &FaultPlan{
		Stragglers: []Straggler{{Rank: 1, Factor: 4}, {Rank: 2, Factor: 2, From: 10, Until: 20}},
		Transients: []Transient{{Rank: 0, Iteration: 5, Attempts: 2}},
		Drops:      []Drop{{Rank: 3, Iteration: 50}},
	}
}

// TestFaultPlanJSONRoundTrip: the plan is pure data — its JSON form must
// reconstruct it exactly, so a serialised chaos run replays bit-identically.
func TestFaultPlanJSONRoundTrip(t *testing.T) {
	p := samplePlan()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q FaultPlan
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, &q) {
		t.Fatalf("round trip diverged:\n%+v\n%+v", p, &q)
	}
	data2, err := json.Marshal(&q)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("re-marshal not byte-identical: %s vs %s", data, data2)
	}
}

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
		ok   bool
	}{
		{"empty", FaultPlan{}, true},
		{"sample", *samplePlan(), true},
		{"straggler rank high", FaultPlan{Stragglers: []Straggler{{Rank: 4, Factor: 2}}}, false},
		{"straggler rank negative", FaultPlan{Stragglers: []Straggler{{Rank: -1, Factor: 2}}}, false},
		{"straggler factor zero", FaultPlan{Stragglers: []Straggler{{Rank: 0}}}, false},
		{"straggler window inverted", FaultPlan{Stragglers: []Straggler{{Rank: 0, Factor: 2, From: 9, Until: 3}}}, false},
		{"transient rank high", FaultPlan{Transients: []Transient{{Rank: 9}}}, false},
		{"transient negative iteration", FaultPlan{Transients: []Transient{{Rank: 0, Iteration: -1}}}, false},
		{"drop negative attempts", FaultPlan{Drops: []Drop{{Rank: 0, Attempts: -1}}}, false},
	}
	for _, c := range cases {
		err := c.plan.Validate(4)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
	var nilPlan *FaultPlan
	if err := nilPlan.Validate(4); err != nil {
		t.Errorf("nil plan: %v", err)
	}
}

// TestFaultPlanFactor: window semantics [From, Until), zero Until = open
// end, overlapping windows multiply, nil plan is healthy.
func TestFaultPlanFactor(t *testing.T) {
	p := &FaultPlan{Stragglers: []Straggler{
		{Rank: 1, Factor: 4},
		{Rank: 1, Factor: 2, From: 10, Until: 20},
		{Rank: 2, Factor: 3, From: 5},
	}}
	cases := []struct {
		rank, iter int
		want       float64
	}{
		{0, 0, 1}, {1, 0, 4}, {1, 9, 4}, {1, 10, 8}, {1, 19, 8}, {1, 20, 4},
		{2, 4, 1}, {2, 5, 3}, {2, 1000, 3},
	}
	for _, c := range cases {
		if got := p.Factor(c.rank, c.iter); got != c.want {
			t.Errorf("Factor(%d, %d) = %g, want %g", c.rank, c.iter, got, c.want)
		}
	}
	var nilPlan *FaultPlan
	if got := nilPlan.Factor(0, 0); got != 1 {
		t.Errorf("nil plan factor = %g, want 1", got)
	}
}

// TestFaultPlanForAttempt: transients/drops expire after their Attempts
// count (default 1), stragglers persist, and the receiver is not mutated.
func TestFaultPlanForAttempt(t *testing.T) {
	p := samplePlan()
	orig := *samplePlan()

	if got := p.ForAttempt(1); got != p {
		t.Fatal("attempt 1 must see the plan unchanged")
	}
	a2 := p.ForAttempt(2)
	if len(a2.Stragglers) != 2 {
		t.Fatalf("attempt 2 lost stragglers: %+v", a2)
	}
	if len(a2.Transients) != 1 || a2.Transients[0].Rank != 0 {
		t.Fatalf("attempt 2 must keep the attempts=2 transient: %+v", a2)
	}
	if len(a2.Drops) != 0 {
		t.Fatalf("attempt 2 must expire the default-attempts drop: %+v", a2)
	}
	a3 := p.ForAttempt(3)
	if len(a3.Transients) != 0 || len(a3.Drops) != 0 || len(a3.Stragglers) != 2 {
		t.Fatalf("attempt 3 must keep only stragglers: %+v", a3)
	}
	if !reflect.DeepEqual(p, &orig) {
		t.Fatalf("ForAttempt mutated the receiver: %+v", p)
	}
}

// TestFaultPlanSurvive: a fired transient is removed; a fired drop removes
// the dead rank's entries and renumbers higher ranks down.
func TestFaultPlanSurvive(t *testing.T) {
	p := samplePlan()
	orig := *samplePlan()

	afterTransient := p.Survive(&FaultError{Kind: FaultTransient, Rank: 0, Iteration: 5})
	if len(afterTransient.Transients) != 0 {
		t.Fatalf("fired transient not removed: %+v", afterTransient)
	}
	if len(afterTransient.Stragglers) != 2 || len(afterTransient.Drops) != 1 {
		t.Fatalf("transient survival must keep everything else: %+v", afterTransient)
	}

	afterDrop := p.Survive(&FaultError{Kind: FaultDrop, Rank: 2, Iteration: 30})
	// Rank 2's straggler dies with it; rank 3's drop renumbers to rank 2.
	want := &FaultPlan{
		Stragglers: []Straggler{{Rank: 1, Factor: 4}},
		Transients: []Transient{{Rank: 0, Iteration: 5, Attempts: 2}},
		Drops:      []Drop{{Rank: 2, Iteration: 50}},
	}
	if !reflect.DeepEqual(afterDrop, want) {
		t.Fatalf("drop survival = %+v, want %+v", afterDrop, want)
	}
	if !reflect.DeepEqual(p, &orig) {
		t.Fatalf("Survive mutated the receiver: %+v", p)
	}
}

// TestSetFaultPlanValidates: attaching an out-of-range plan is a
// programming error and panics before any rank starts.
func TestSetFaultPlanValidates(t *testing.T) {
	c := NewCluster(2)
	defer func() {
		if recover() == nil {
			t.Fatal("SetFaultPlan accepted an invalid plan")
		}
	}()
	c.SetFaultPlan(&FaultPlan{Drops: []Drop{{Rank: 5}}})
}

// TestDropUnwindsMidRendezvous is the tentpole comm guarantee: when a
// scheduled drop fires on one rank, every other rank — parked inside a
// collective the dead rank will never join — unwinds with the FaultError
// instead of deadlocking.
func TestDropUnwindsMidRendezvous(t *testing.T) {
	c := NewCluster(4)
	c.SetFaultPlan(&FaultPlan{Drops: []Drop{{Rank: 2, Iteration: 1}}})
	var completed atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- c.RunContext(context.Background(), func(cm *Comm) {
			for ti := 0; ; ti++ {
				cm.StartIteration(ti)
				cm.Barrier()
				if ti == 0 {
					completed.Add(1)
				}
			}
		})
	}()
	select {
	case err := <-done:
		var fe *FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("err = %v, want *FaultError", err)
		}
		if fe.Kind != FaultDrop || fe.Rank != 2 || fe.Iteration != 1 {
			t.Fatalf("fault = %+v, want drop of rank 2 at iteration 1", fe)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cluster deadlocked on a dropped rank")
	}
	// The dropping rank itself must have completed iteration 0 before the
	// injection at iteration 1. Other ranks may unwind while waking from an
	// already-satisfied barrier (the abort is asynchronous), so their count
	// is not asserted.
	if completed.Load() < 1 {
		t.Fatalf("iteration 0 completed on %d ranks, want >= 1", completed.Load())
	}
}

// TestTransientFiresOnItsIterationOnly: a transient aborts the run at its
// iteration; a fresh cluster with the fired fault removed (Survive) runs
// clean — the recovery loop's contract.
func TestTransientFiresOnItsIterationOnly(t *testing.T) {
	plan := &FaultPlan{Transients: []Transient{{Rank: 1, Iteration: 2}}}
	c := NewCluster(2)
	c.SetFaultPlan(plan)
	err := c.RunContext(context.Background(), func(cm *Comm) {
		for ti := 0; ti < 5; ti++ {
			cm.StartIteration(ti)
			cm.Barrier()
		}
	})
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != FaultTransient || fe.Iteration != 2 {
		t.Fatalf("err = %v, want transient at iteration 2", err)
	}

	c2 := NewCluster(2)
	c2.SetFaultPlan(plan.Survive(fe))
	if err := c2.RunContext(context.Background(), func(cm *Comm) {
		for ti := 2; ti < 5; ti++ {
			cm.StartIteration(ti)
			cm.Barrier()
		}
	}); err != nil {
		t.Fatalf("resumed cluster still faults: %v", err)
	}
}

// TestConcurrentAbortStress: every rank aborts with its own error while
// all are inside (or entering) a collective. The cluster must neither
// deadlock nor leak goroutines, one abort must win, and under -race this
// exercises the suppressed-cause bookkeeping from all ranks at once.
func TestConcurrentAbortStress(t *testing.T) {
	before := runtime.NumGoroutine()
	const rounds = 50
	for round := 0; round < rounds; round++ {
		c := NewCluster(8)
		errs := make([]error, 8)
		for i := range errs {
			errs[i] = fmt.Errorf("rank %d abort", i)
		}
		done := make(chan error, 1)
		go func() {
			done <- c.RunContext(context.Background(), func(cm *Comm) {
				cm.Barrier() // align all ranks
				c.Abort(errs[cm.Rank()])
				cm.Barrier() // must unwind, not hang
				t.Error("barrier returned on an aborted cluster")
			})
		}()
		select {
		case err := <-done:
			won := false
			for _, e := range errs {
				if errors.Is(err, e) {
					won = true
					break
				}
			}
			if !won {
				t.Fatalf("round %d: abort error %v is none of the ranks'", round, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: concurrent abort deadlocked", round)
		}
	}
	// goleak-style check: all rank goroutines must have drained.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}
}

// TestAbortWinnerDeterministic: when abort order is observable (the second
// abort strictly follows the first), the first caller's error wins and the
// later one is reported as a suppressed cause — both visible via errors.Is.
func TestAbortWinnerDeterministic(t *testing.T) {
	first := errors.New("drop")
	second := errors.New("timeout")
	for i := 0; i < 100; i++ {
		c := NewCluster(1)
		c.Abort(first)
		c.Abort(second)
		c.Abort(second) // duplicates are not recorded twice
		err := c.Err()
		if !errors.Is(err, first) || !errors.Is(err, second) {
			t.Fatalf("Err() = %v, want both causes in the chain", err)
		}
		var ac *abortCauses
		if !errors.As(err, &ac) {
			t.Fatalf("Err() = %T, want *abortCauses", err)
		}
		if ac.winner != first {
			t.Fatalf("winner = %v, want the first abort", ac.winner)
		}
		if len(ac.suppressed) != 1 || ac.suppressed[0] != second {
			t.Fatalf("suppressed = %v, want exactly the later abort", ac.suppressed)
		}
	}
}

// TestAbortSuppressedCap: the suppressed list is bounded no matter how
// many distinct errors race in after the winner.
func TestAbortSuppressedCap(t *testing.T) {
	c := NewCluster(1)
	c.Abort(errors.New("winner"))
	for i := 0; i < 3*maxSuppressedAborts; i++ {
		c.Abort(fmt.Errorf("latecomer %d", i))
	}
	var ac *abortCauses
	if !errors.As(c.Err(), &ac) {
		t.Fatalf("Err() = %T, want *abortCauses", c.Err())
	}
	if len(ac.suppressed) != maxSuppressedAborts {
		t.Fatalf("suppressed = %d causes, want capped at %d", len(ac.suppressed), maxSuppressedAborts)
	}
}

// TestSingleAbortErrUnchanged: with no suppressed causes Err() returns the
// winner itself, not a wrapper — existing errors.Is call sites keep the
// exact error they always saw.
func TestSingleAbortErrUnchanged(t *testing.T) {
	c := NewCluster(1)
	boom := errors.New("boom")
	c.Abort(boom)
	if err := c.Err(); err != boom {
		t.Fatalf("Err() = %v (%T), want the bare winner", err, err)
	}
}

// TestStragglerFactorThroughComm: ranks read their own slowdown through
// the rank-bound handle; healthy ranks read 1.
func TestStragglerFactorThroughComm(t *testing.T) {
	c := NewCluster(3)
	c.SetFaultPlan(&FaultPlan{Stragglers: []Straggler{{Rank: 1, Factor: 4, From: 2}}})
	factors := make([]float64, 3)
	c.Run(func(cm *Comm) {
		factors[cm.Rank()] = cm.StragglerFactor(5)
	})
	if factors[0] != 1 || factors[1] != 4 || factors[2] != 1 {
		t.Fatalf("factors = %v, want [1 4 1]", factors)
	}
}

// TestStartIterationHealthyPath: with no plan attached StartIteration is
// exactly CheckAbort — it neither injects nor allocates.
func TestStartIterationHealthyPath(t *testing.T) {
	c := NewCluster(2)
	if err := c.RunContext(context.Background(), func(cm *Comm) {
		for ti := 0; ti < 100; ti++ {
			cm.StartIteration(ti)
		}
	}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		comm := &Comm{rank: 0, cluster: c}
		comm.StartIteration(0)
	})
	if allocs != 0 {
		t.Fatalf("healthy StartIteration allocates %.1f/op, want 0", allocs)
	}
}
