// The Transport interface and the in-process rendezvous implementation.
//
// A Cluster is a façade over a Transport: the rendezvous engine that moves
// one collective's payloads between ranks. Two implementations exist — the
// in-process generation-counted mailbox this package has always been (every
// rank is a goroutine in this process; the combine runs under one lock),
// and the TCP transports of transport_tcp.go, where a leader process hosts
// the rendezvous for all ranks and follower processes ship their deposits
// over length-prefixed frames (see frame.go). The Comm collective API is
// identical over both; the in-process hot path is unchanged (one interface
// dispatch per collective, no new allocations).
package comm

import (
	"sync"
	"sync/atomic"
	"time"
)

// Op identifies one collective operation on the wire and in the combine
// dispatch. Int and float collectives never mix payloads: each Op is
// either an int op or a float op (see isFloat).
type Op uint8

const (
	// OpBarrier is the empty rendezvous: no payload, nil result.
	OpBarrier Op = iota
	// OpBroadcastInts distributes the root's int slice.
	OpBroadcastInts
	// OpBroadcastNested distributes the root's flattened nested int slice
	// (BroadcastIntsNested's [count, len_0…len_{k−1}, data…] form).
	OpBroadcastNested
	// OpAllGatherInts concatenates every rank's ints in rank order.
	OpAllGatherInts
	// OpAllGatherUnique merges every rank's sorted index list into the
	// deduplicated sorted union.
	OpAllGatherUnique
	// OpBroadcastFloats distributes the root's float slice.
	OpBroadcastFloats
	// OpAllGatherFloats concatenates every rank's floats in rank order.
	// It carries control-plane telemetry (the distributed trainer's
	// per-rank stats), so it is charged to no traffic counter.
	OpAllGatherFloats
	// OpAllReduceSum element-wise sums equal-length float vectors.
	OpAllReduceSum
	// OpAllReduceMax element-wise maximizes equal-length float vectors.
	OpAllReduceMax
	numOps
)

// isFloat reports whether the op's payload is a float64 slice.
func (op Op) isFloat() bool {
	switch op {
	case OpBroadcastFloats, OpAllGatherFloats, OpAllReduceSum, OpAllReduceMax:
		return true
	}
	return false
}

// kind maps the op to its measured-wall accumulator family.
func (op Op) kind() collectiveKind {
	switch op {
	case OpBarrier:
		return kindBarrier
	case OpBroadcastInts, OpBroadcastNested, OpBroadcastFloats:
		return kindBroadcast
	case OpAllGatherInts, OpAllGatherUnique, OpAllGatherFloats:
		return kindAllGather
	default:
		return kindAllReduce
	}
}

// Transport is the rendezvous engine behind a Cluster: it moves one
// collective's deposits between the n ranks and hands every rank the
// combined result. Implementations live in this package only (the methods
// are unexported); external callers always go through Cluster and Comm.
//
// The returned slices may alias transport-owned buffers: a rank must copy
// what it needs before entering its next collective (Comm's Into variants
// do). iter is the calling rank's current training iteration, used to
// attribute a mid-run peer loss to the iteration a recovery must resume at.
type Transport interface {
	// localRanks returns the half-open rank range [lo, hi) hosted by this
	// process. The in-process transport hosts all of [0, n).
	localRanks() (lo, hi int)
	// exchangeInts runs one int-payload collective for local rank rank.
	exchangeInts(rank int, op Op, root, iter int, data []int) []int
	// exchangeFloats runs one float-payload collective for local rank rank.
	exchangeFloats(rank int, op Op, root, iter int, data []float64) []float64
	// abort poisons the rendezvous; parked ranks wake and unwind.
	abort(err error)
	// err returns the abort reason (with suppressed causes), nil if healthy.
	err() error
	// hasAborted is the lock-free abort poll behind Comm.CheckAbort.
	hasAborted() bool

	traffic() TrafficCounter
	resetTraffic()
	commWall() CommWall
	resetCommWall()
	// socketBytes returns real bytes moved over sockets (0, 0 in-process).
	socketBytes() (tx, rx int64)

	// setBaseIteration seeds the resume-point tracker for a segment that
	// starts at iteration t (a peer lost before any collective completes
	// resumes at t).
	setBaseIteration(t int)
	// start is called by RunContext before rank goroutines spawn (the TCP
	// transports start their frame pumps here).
	start()
	// finish is called after every local rank returned (the follower
	// transport announces completion to the leader here).
	finish()
	// hardKill simulates abrupt process death for tests: connections close
	// with no abort handshake, and local ranks unwind.
	hardKill()
	// close releases transport resources (connections). Idempotent.
	close() error
}

// mailbox is the typed slot array of the in-process rendezvous: one deposit
// slot per rank plus the combined result of the current generation. One
// mailbox per payload type removes any-boxing; since the collectives are
// SPMD (every rank calls the same operation in the same order), only one
// mailbox is active per generation and they share one arrival counter.
type mailbox[T any] struct {
	slots  []T
	result T
}

// inprocTransport is the in-process rendezvous: every rank deposits its
// contribution, the last arrival computes the combined result under the
// lock, and all ranks pick it up. This is the original Cluster engine,
// unchanged; it also serves as the hub of the leader-side TCP transport,
// where remote ranks are driven by proxy goroutines fed from frames.
type inprocTransport struct {
	n    int
	mu   sync.Mutex
	cond *sync.Cond

	arrived    int
	generation uint64

	ints   mailbox[[]int]
	floats mailbox[[]float64]

	// Reusable combine buffers (guarded by mu; written only by the last
	// arrival of a generation, read by all ranks before the next combine of
	// the same type can start).
	intBuf   []int
	floatBuf []float64
	heads    []int // k-way merge cursors for OpAllGatherUnique

	// Abort state: once set, every rank entering (or parked inside) a
	// collective unwinds with an abortPanic instead of blocking. aborted
	// mirrors abortErr != nil for lock-free polling; down is closed on the
	// first abort so non-rendezvous waiters (the TCP pumps) unblock too.
	abortErr   error
	suppressed []error
	aborted    atomic.Bool
	down       chan struct{}

	tc TrafficCounter

	// Measured wall clock per collective kind (guarded by mu). By default
	// only the combine is timed — in-process, the combine IS the data
	// movement. The leader TCP transport sets measureRendezvous: the
	// window then opens at the generation's first deposit, so waiting for
	// remote deposits (real network time) is included.
	measureRendezvous bool
	genStart          time.Time
	wallNS            [numCollectiveKinds]int64
	wallCount         [numCollectiveKinds]int64

	// lastIter is the iteration tag of the most recently completed
	// combine; a peer lost at an iteration boundary resumes at lastIter+1.
	lastIter int
}

func newInproc(n int) *inprocTransport {
	p := &inprocTransport{
		n:        n,
		heads:    make([]int, n),
		down:     make(chan struct{}),
		lastIter: -1,
	}
	p.ints.slots = make([][]int, n)
	p.floats.slots = make([][]float64, n)
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *inprocTransport) localRanks() (int, int) { return 0, p.n }

// exchangeInts is the int-payload rendezvous. Every rank deposits data
// into the mailbox; the last arrival runs the op's combine over the
// deposited slots (indexed by rank) and the shared result is returned to
// every rank. The combine runs exactly once per generation, under the
// lock; its wall-clock time is accumulated per collective kind (CommWall).
func (p *inprocTransport) exchangeInts(rank int, op Op, root, iter int, data []int) []int {
	p.mu.Lock()
	if err := p.abortErr; err != nil {
		p.mu.Unlock()
		panic(abortPanic{err})
	}
	gen := p.generation
	p.ints.slots[rank] = data
	if p.deposit(iter) {
		start := time.Now()
		p.ints.result = p.combineInts(op, root)
		p.noteWall(op, start)
		p.cond.Broadcast()
	} else {
		p.waitGeneration(gen)
	}
	res := p.ints.result
	p.mu.Unlock()
	return res
}

// exchangeFloats is the float-payload rendezvous; see exchangeInts.
func (p *inprocTransport) exchangeFloats(rank int, op Op, root, iter int, data []float64) []float64 {
	p.mu.Lock()
	if err := p.abortErr; err != nil {
		p.mu.Unlock()
		panic(abortPanic{err})
	}
	gen := p.generation
	p.floats.slots[rank] = data
	if p.deposit(iter) {
		start := time.Now()
		p.floats.result = p.combineFloats(op, root)
		p.noteWall(op, start)
		p.cond.Broadcast()
	} else {
		p.waitGeneration(gen)
	}
	res := p.floats.result
	p.mu.Unlock()
	return res
}

// deposit counts one arrival and reports whether this rank is the last of
// the generation (the one that runs the combine). Callers hold mu.
func (p *inprocTransport) deposit(iter int) bool {
	if p.arrived == 0 && p.measureRendezvous {
		p.genStart = time.Now()
	}
	p.arrived++
	if p.arrived < p.n {
		return false
	}
	p.arrived = 0
	p.generation++
	p.lastIter = iter
	return true
}

// noteWall accumulates the completed collective's measured wall. Callers
// hold mu; start is when the combine began.
func (p *inprocTransport) noteWall(op Op, start time.Time) {
	k := op.kind()
	if p.measureRendezvous {
		start = p.genStart
	}
	p.wallNS[k] += int64(time.Since(start))
	p.wallCount[k]++
}

// waitGeneration parks the rank until the generation advances past gen,
// unwinding if an abort broadcast wakes it instead. Callers hold mu; the
// lock is released while parked and re-held on return (or dropped on the
// abort unwind).
func (p *inprocTransport) waitGeneration(gen uint64) {
	for gen == p.generation {
		p.cond.Wait()
		if err := p.abortErr; err != nil {
			p.mu.Unlock()
			panic(abortPanic{err})
		}
	}
}

// combineInts runs the int op's combine over the deposited slots. Callers
// hold mu. Traffic accounting happens here, exactly where the payloads
// merge, so the modeled byte counters are identical no matter which
// transport fed the slots.
func (p *inprocTransport) combineInts(op Op, root int) []int {
	slots := p.ints.slots
	switch op {
	case OpBarrier:
		return nil
	case OpBroadcastInts:
		s := slots[root]
		p.tc.BroadcastBytes += intPayloadBytes(s)
		return s
	case OpBroadcastNested:
		s := slots[root]
		// The flattened header+data ships as uint32s: lengths and fragment
		// ids are all small.
		p.tc.BroadcastBytes += 4 * int64(len(s))
		// Copy into the transport-owned buffer: the root flattens into its
		// rank-owned scratch BEFORE depositing, so lagging ranks must not
		// read that scratch after the rendezvous — the root may already be
		// flattening its next payload into it. The shared buffer is safe:
		// no combine of any type can run again until every rank has
		// finished reading and deposited anew.
		out := growInts(&p.intBuf, len(s))
		copy(out, s)
		return out
	case OpAllGatherInts:
		total := 0
		for _, s := range slots {
			total += len(s)
		}
		out := growInts(&p.intBuf, total)[:0]
		for _, s := range slots {
			out = append(out, s...)
		}
		p.intBuf = out
		for _, s := range slots {
			p.tc.AllGatherBytes += intPayloadBytes(s)
		}
		return out
	case OpAllGatherUnique:
		return p.combineUnique()
	}
	panic("comm: unknown int op")
}

// combineUnique merges every rank's sorted index list into the sorted
// union without duplicates — the collective on line 7 of Algorithm 1; the
// resulting length, relative to the per-rank k, is exactly the gradient
// build-up the paper measures. Contributions should be sorted ascending;
// an unsorted contribution is sorted in place (the deposit slices are
// mutated). The union is an n-way merge over the sorted per-rank lists —
// O(total·n) with no hashing and no allocation in steady state.
func (p *inprocTransport) combineUnique() []int {
	slots := p.ints.slots
	total := 0
	for _, s := range slots {
		if !intsSorted(s) {
			sortInts(s)
		}
		total += len(s)
	}
	// Traffic: every rank ships its own sorted index list, which goes on
	// the wire as the COO varint delta block.
	for _, s := range slots {
		p.tc.AllGatherBytes += intPayloadBytes(s)
	}
	// n-way merge with dedup. heads[r] is rank r's cursor.
	heads := p.heads
	for r := range heads {
		heads[r] = 0
	}
	out := growInts(&p.intBuf, total)[:0]
	for {
		best, bv := -1, 0
		for r, s := range slots {
			if h := heads[r]; h < len(s) {
				if v := s[h]; best < 0 || v < bv {
					best, bv = r, v
				}
			}
		}
		if best < 0 {
			break
		}
		if len(out) == 0 || out[len(out)-1] != bv {
			out = append(out, bv)
		}
		heads[best]++
	}
	p.intBuf = out
	return out
}

// combineFloats runs the float op's combine over the deposited slots.
// Callers hold mu.
func (p *inprocTransport) combineFloats(op Op, root int) []float64 {
	slots := p.floats.slots
	switch op {
	case OpBroadcastFloats:
		s := slots[root]
		p.tc.BroadcastBytes += 4 * int64(len(s)) // fp32 on the wire
		return s
	case OpAllGatherFloats:
		// Control-plane stats gather (distributed trainer bookkeeping):
		// deliberately charged to no traffic counter, so a TCP run's
		// modeled Traffic matches the in-process run it must reproduce.
		total := 0
		for _, s := range slots {
			total += len(s)
		}
		out := growFloats(&p.floatBuf, total)[:0]
		for _, s := range slots {
			out = append(out, s...)
		}
		p.floatBuf = out
		return out
	case OpAllReduceSum:
		sum := growFloats(&p.floatBuf, len(slots[0]))
		copy(sum, slots[0])
		for r, s := range slots[1:] {
			if len(s) != len(sum) {
				panicf("comm: AllReduceSum length mismatch: rank %d has %d, rank 0 has %d",
					r+1, len(s), len(sum))
			}
			for i, x := range s {
				sum[i] += x
			}
		}
		p.tc.AllReduceBytes += 4 * int64(len(sum)) * int64(p.n)
		return sum
	case OpAllReduceMax:
		m := growFloats(&p.floatBuf, len(slots[0]))
		copy(m, slots[0])
		for _, s := range slots[1:] {
			if len(s) != len(m) {
				panic("comm: AllReduceMax length mismatch")
			}
			for i, x := range s {
				if x > m[i] {
					m[i] = x
				}
			}
		}
		p.tc.AllReduceBytes += 4 * int64(len(m)) * int64(p.n)
		return m
	}
	panic("comm: unknown float op")
}

// abort poisons the rendezvous. The first call wins deterministically (the
// lock serialises callers); later distinct errors are kept as suppressed
// causes so a drop+timeout race reports both.
func (p *inprocTransport) abort(err error) { p.abortFirst(err) }

// abortFirst is abort reporting whether this call installed the winner
// (the TCP transports fan the winning abort out to their peers).
func (p *inprocTransport) abortFirst(err error) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case p.abortErr == nil:
		p.abortErr = err
		p.aborted.Store(true)
		close(p.down)
		p.cond.Broadcast()
		return true
	case err != p.abortErr && !containsErr(p.suppressed, err) && len(p.suppressed) < maxSuppressedAborts:
		p.suppressed = append(p.suppressed, err)
	}
	return false
}

func (p *inprocTransport) err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return abortCause(p.abortErr, p.suppressed)
}

func (p *inprocTransport) hasAborted() bool { return p.aborted.Load() }

func (p *inprocTransport) traffic() TrafficCounter {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tc
}

func (p *inprocTransport) resetTraffic() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tc = TrafficCounter{}
}

func (p *inprocTransport) commWall() CommWall {
	p.mu.Lock()
	defer p.mu.Unlock()
	at := func(k collectiveKind) CollectiveWall {
		return CollectiveWall{Count: p.wallCount[k], Seconds: float64(p.wallNS[k]) / 1e9}
	}
	return CommWall{
		Barrier:   at(kindBarrier),
		Broadcast: at(kindBroadcast),
		AllGather: at(kindAllGather),
		AllReduce: at(kindAllReduce),
	}
}

func (p *inprocTransport) resetCommWall() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wallNS = [numCollectiveKinds]int64{}
	p.wallCount = [numCollectiveKinds]int64{}
}

func (p *inprocTransport) socketBytes() (int64, int64) { return 0, 0 }

func (p *inprocTransport) setBaseIteration(t int) {
	p.mu.Lock()
	p.lastIter = t - 1
	p.mu.Unlock()
}

// resumeIteration is the iteration a recovery resumes at if a peer is lost
// now: one past the last completed collective's tag. Exact when the loss
// lands at an iteration boundary (an injected drop and a process kill at
// StartIteration both do); a loss mid-iteration may attribute one early.
func (p *inprocTransport) resumeIteration() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastIter + 1
}

func (p *inprocTransport) start()  {}
func (p *inprocTransport) finish() {}

// hardKill on the in-process transport is a plain abort: there is no
// connection to sever, so the unwind is the whole simulation of death.
func (p *inprocTransport) hardKill() { p.abort(errHardKilled) }

func (p *inprocTransport) close() error { return nil }

// growInts resizes *buf to length n, reallocating only on capacity growth.
func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growFloats resizes *buf to length n, reallocating only on capacity growth.
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
