// Length-prefixed framing and the collective payload codecs of the TCP
// transport.
//
// Every message on a cluster connection is one frame:
//
//	[4-byte little-endian length] [1-byte type] [payload]
//
// where length counts the type byte plus the payload. Frame types below
// FrameUserBase belong to this package's collective protocol; higher
// layers multiplexing control traffic over the same connection (the serve
// cluster handshake) use types at FrameUserBase and above.
//
// Collective payloads reuse the internal/wire codecs: a sorted index list
// — the dominant int payload, a sparsifier's selection — ships as the same
// COO varint delta block the modeled TrafficCounter charges for, so the
// bytes on this socket are the bytes the model predicts (plus framing).
// Floats ship as raw little-endian float64 bits: the simulator's numerics
// must be byte-identical across transports, so no fp32 rounding happens on
// the real wire even though the traffic model charges fp32.
package comm

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/wire"
)

// Frame types of the collective protocol.
const (
	// frameDeposit carries one rank's contribution to a collective:
	// [1B op][4B rank][4B root][4B iteration][payload].
	frameDeposit byte = 0x01
	// frameResult returns a collective's combined result: [1B op][payload].
	frameResult byte = 0x02
	// frameAbort propagates an abort: JSON {fault|error}.
	frameAbort byte = 0x03
	// frameFinish announces that every local rank returned cleanly.
	frameFinish byte = 0x04

	// FrameUserBase is the first frame type available to layers
	// multiplexing their own control traffic over a cluster connection.
	FrameUserBase byte = 0x10
)

// IsCommFrame reports whether a frame type belongs to the collective
// protocol (as opposed to a higher layer's control traffic).
func IsCommFrame(typ byte) bool { return typ < FrameUserBase }

// maxFramePayload bounds what Recv will buffer for one frame. Frames are
// untrusted input: a corrupt or hostile length prefix must not force a
// multi-gigabyte allocation. 256 MiB is far beyond any collective here.
const maxFramePayload = 1 << 28

// Link is a reliable, ordered frame pipe between two cluster processes.
// Send is safe for concurrent use; Recv is single-consumer. The payload
// returned by Recv is only valid until the next Recv call (implementations
// reuse the buffer); consumers that retain it must copy.
type Link interface {
	Send(typ byte, payload []byte) error
	Recv() (typ byte, payload []byte, err error)
	Close() error
}

// FrameConn implements Link over any stream connection (net.Conn,
// net.Pipe) using the framing above.
type FrameConn struct {
	sendMu sync.Mutex
	w      *bufio.Writer
	rw     io.ReadWriteCloser

	r       *bufio.Reader
	readBuf []byte
	head    [5]byte
}

// NewFrameConn wraps a stream connection in the frame protocol.
func NewFrameConn(rw io.ReadWriteCloser) *FrameConn {
	return &FrameConn{
		rw: rw,
		w:  bufio.NewWriter(rw),
		r:  bufio.NewReader(rw),
	}
}

// Send writes one frame and flushes it.
func (c *FrameConn) Send(typ byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("comm: frame payload %d exceeds %d bytes", len(payload), maxFramePayload)
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	var head [5]byte
	binary.LittleEndian.PutUint32(head[:4], uint32(1+len(payload)))
	head[4] = typ
	if _, err := c.w.Write(head[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(payload); err != nil {
		return err
	}
	return c.w.Flush()
}

// Recv reads one frame. The returned payload aliases an internal buffer
// reused by the next Recv.
func (c *FrameConn) Recv() (byte, []byte, error) {
	if _, err := io.ReadFull(c.r, c.head[:]); err != nil {
		return 0, nil, err
	}
	total := binary.LittleEndian.Uint32(c.head[:4])
	if total < 1 || total > maxFramePayload+1 {
		return 0, nil, fmt.Errorf("comm: bad frame length %d", total)
	}
	typ := c.head[4]
	n := int(total) - 1
	if cap(c.readBuf) < n {
		c.readBuf = make([]byte, n)
	}
	buf := c.readBuf[:n]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return 0, nil, err
	}
	return typ, buf, nil
}

// Close closes the underlying connection. In-flight Recv calls fail.
func (c *FrameConn) Close() error { return c.rw.Close() }

// Int payload modes: the 1-byte discriminator ahead of an int body.
const (
	intModeNil     byte = 0 // nil slice (barrier, non-root broadcast arm)
	intModeSorted  byte = 1 // strictly increasing non-negative: COO delta block
	intModeGeneric byte = 2 // anything else: zigzag varints
)

// appendIntBody appends the int payload encoding to dst: sorted index
// lists (the hot case — selections) ship as the wire COO delta block, so
// socket bytes track the modeled traffic; anything else falls back to
// zigzag varints.
func appendIntBody(dst []byte, data []int) []byte {
	if data == nil {
		return append(dst, intModeNil)
	}
	base := len(dst)
	dst = append(dst, intModeSorted)
	dst = binary.AppendUvarint(dst, uint64(len(data)))
	if out, err := wire.AppendIndexBlock(dst, data); err == nil {
		return out
	}
	dst = append(dst[:base], intModeGeneric)
	dst = binary.AppendUvarint(dst, uint64(len(data)))
	for _, v := range data {
		dst = binary.AppendVarint(dst, int64(v))
	}
	return dst
}

// decodeIntBody decodes an int payload into dst (reusing capacity). The
// input is untrusted: counts are bounded by what the buffer can hold
// before any allocation, and every varint is checked.
func decodeIntBody(buf []byte, dst []int) ([]int, error) {
	if len(buf) < 1 {
		return nil, errors.New("comm: empty int payload")
	}
	mode, rest := buf[0], buf[1:]
	switch mode {
	case intModeNil:
		if len(rest) != 0 {
			return nil, errors.New("comm: nil int payload has a body")
		}
		return nil, nil
	case intModeSorted:
		count, n := binary.Uvarint(rest)
		if n <= 0 || count > uint64(len(rest)) {
			return nil, errors.New("comm: bad int payload count")
		}
		rest = rest[n:]
		out, used, err := wire.DecodeIndexBlock(rest, int(count), dst)
		if err != nil {
			return nil, err
		}
		if used != len(rest) {
			return nil, errors.New("comm: trailing bytes after index block")
		}
		return out, nil
	case intModeGeneric:
		count, n := binary.Uvarint(rest)
		if n <= 0 || count > uint64(len(rest)) {
			return nil, errors.New("comm: bad int payload count")
		}
		rest = rest[n:]
		out := dst[:0]
		if cap(out) < int(count) {
			out = make([]int, 0, count)
		}
		for i := uint64(0); i < count; i++ {
			v, n := binary.Varint(rest)
			if n <= 0 {
				return nil, fmt.Errorf("comm: int payload truncated at entry %d", i)
			}
			rest = rest[n:]
			out = append(out, int(v))
		}
		if len(rest) != 0 {
			return nil, errors.New("comm: trailing bytes after int payload")
		}
		return out, nil
	}
	return nil, fmt.Errorf("comm: unknown int payload mode %d", mode)
}

// appendFloatBody appends the float payload: uvarint count then raw
// little-endian float64 bits per element (bit-exact across processes).
func appendFloatBody(dst []byte, data []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(data)))
	for _, v := range data {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// decodeFloatBody decodes a float payload into dst (reusing capacity).
func decodeFloatBody(buf []byte, dst []float64) ([]float64, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 || count > uint64(len(buf))/8 {
		return nil, errors.New("comm: bad float payload count")
	}
	rest := buf[n:]
	if uint64(len(rest)) != 8*count {
		return nil, fmt.Errorf("comm: float payload is %d bytes, want %d", len(rest), 8*count)
	}
	out := dst[:0]
	if cap(out) < int(count) {
		out = make([]float64, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:])))
	}
	return out, nil
}

// depositHeaderLen is the fixed prefix of a deposit payload.
const depositHeaderLen = 1 + 4 + 4 + 4

// appendDeposit encodes a deposit frame payload.
func appendDeposit(dst []byte, rank int, op Op, root, iter int, ints []int, floats []float64) []byte {
	dst = append(dst, byte(op))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rank))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(root))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(iter))
	if op.isFloat() {
		return appendFloatBody(dst, floats)
	}
	return appendIntBody(dst, ints)
}

// deposit is one decoded deposit frame.
type deposit struct {
	op         Op
	rank, root int
	iter       int
	ints       []int
	floats     []float64
}

// decodeDeposit decodes an untrusted deposit payload into fresh slices.
func decodeDeposit(buf []byte) (deposit, error) {
	var d deposit
	if len(buf) < depositHeaderLen {
		return d, errors.New("comm: short deposit frame")
	}
	d.op = Op(buf[0])
	if d.op >= numOps {
		return d, fmt.Errorf("comm: unknown op %d", buf[0])
	}
	d.rank = int(binary.LittleEndian.Uint32(buf[1:]))
	d.root = int(binary.LittleEndian.Uint32(buf[5:]))
	d.iter = int(int32(binary.LittleEndian.Uint32(buf[9:])))
	body := buf[depositHeaderLen:]
	var err error
	if d.op.isFloat() {
		d.floats, err = decodeFloatBody(body, nil)
	} else {
		d.ints, err = decodeIntBody(body, nil)
	}
	return d, err
}

// appendResult encodes a result frame payload.
func appendResult(dst []byte, op Op, ints []int, floats []float64) []byte {
	dst = append(dst, byte(op))
	if op.isFloat() {
		return appendFloatBody(dst, floats)
	}
	return appendIntBody(dst, ints)
}

// decodeResult decodes an untrusted result payload, reusing the given
// buffers.
func decodeResult(buf []byte, ints []int, floats []float64) (Op, []int, []float64, error) {
	if len(buf) < 1 {
		return 0, ints, floats, errors.New("comm: empty result frame")
	}
	op := Op(buf[0])
	if op >= numOps {
		return 0, ints, floats, fmt.Errorf("comm: unknown op %d", buf[0])
	}
	var err error
	if op.isFloat() {
		floats, err = decodeFloatBody(buf[1:], floats)
	} else {
		ints, err = decodeIntBody(buf[1:], ints)
	}
	return op, ints, floats, err
}

// abortWire is the JSON body of an abort frame: a structured fault when
// the abort is one (so drop-recovery machinery fires on the far side),
// else the plain message.
type abortWire struct {
	Fault *FaultError `json:"fault,omitempty"`
	Error string      `json:"error,omitempty"`
}

// RemoteAbortError wraps a peer's non-fault abort reason.
type RemoteAbortError struct{ Msg string }

func (e *RemoteAbortError) Error() string { return "comm: remote abort: " + e.Msg }

// encodeAbort renders an abort reason for the wire.
func encodeAbort(err error) []byte {
	var fe *FaultError
	if errors.As(err, &fe) {
		b, _ := json.Marshal(abortWire{Fault: fe})
		return b
	}
	b, _ := json.Marshal(abortWire{Error: err.Error()})
	return b
}

// AbortLink writes a collective-protocol abort frame carrying err over a
// raw link, waking a peer transport parked in a collective. Higher layers
// multiplexing control traffic over a cluster connection use it to unwind
// the far side when a segment is abandoned outside the transport's own
// machinery (e.g. the serve leader tearing down a half-started job).
func AbortLink(l Link, err error) error {
	return l.Send(frameAbort, encodeAbort(err))
}

// decodeAbort parses a peer's abort reason.
func decodeAbort(buf []byte) error {
	var aw abortWire
	if err := json.Unmarshal(buf, &aw); err != nil {
		return &RemoteAbortError{Msg: "unparseable abort frame"}
	}
	if aw.Fault != nil {
		return aw.Fault
	}
	return &RemoteAbortError{Msg: aw.Error}
}
