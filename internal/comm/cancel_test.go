package comm

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunContextCancelUnblocksCollective: ranks parked in a rendezvous
// must wake and unwind when the context is cancelled, instead of
// deadlocking forever.
func TestRunContextCancelUnblocksCollective(t *testing.T) {
	c := NewCluster(4)
	ctx, cancel := context.WithCancel(context.Background())
	var entered atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- c.RunContext(ctx, func(cm *Comm) {
			if cm.Rank() == 0 {
				// Rank 0 never joins: the other three park in the barrier.
				for entered.Load() != 3 {
					time.Sleep(time.Millisecond)
				}
				cancel()
				return
			}
			entered.Add(1)
			cm.Barrier() // must unwind, not hang
			t.Error("barrier returned on an aborted cluster")
		})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext error = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunContext did not return after cancel")
	}
}

// TestAbortPoisonsLaterCollectives: a rank that reaches a collective
// after the abort must unwind on entry.
func TestAbortPoisonsLaterCollectives(t *testing.T) {
	c := NewCluster(2)
	c.Abort(nil)
	err := c.RunContext(context.Background(), func(cm *Comm) {
		cm.Barrier()
		t.Error("collective succeeded on aborted cluster")
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
}

// TestCheckAbortUnwinds: CheckAbort is the compute-section cancellation
// point; it must unwind exactly like an aborted collective.
func TestCheckAbortUnwinds(t *testing.T) {
	c := NewCluster(1)
	reached := false
	c.Abort(errors.New("boom"))
	err := c.RunContext(context.Background(), func(cm *Comm) {
		cm.CheckAbort()
		reached = true
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	if reached {
		t.Fatal("CheckAbort did not unwind")
	}
}

// TestRunContextCleanRun: an uncancelled context changes nothing — the
// collectives behave exactly as under Run.
func TestRunContextCleanRun(t *testing.T) {
	c := NewCluster(3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sum atomic.Int64
	if err := c.RunContext(ctx, func(cm *Comm) {
		res := cm.AllReduceSum([]float64{1})
		sum.Add(int64(res[0]))
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 9 { // 3 ranks each see the 3-way sum
		t.Fatalf("sum = %d, want 9", sum.Load())
	}
}

// TestRunContextPreCancelled: a context cancelled before the run starts
// must not start any rank.
func TestRunContextPreCancelled(t *testing.T) {
	c := NewCluster(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Bool{}
	err := c.RunContext(ctx, func(cm *Comm) { ran.Store(true) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() {
		t.Fatal("rank ran under a pre-cancelled context")
	}
}
