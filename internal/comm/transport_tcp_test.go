package comm

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"
)

// tcpPair builds a leader cluster hosting ranks [0,split) and a follower
// hosting [split,n) over a real localhost TCP connection.
func tcpPair(t *testing.T, n, split int) (*Cluster, *Cluster) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	connCh := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			connCh <- c
		}
	}()
	fc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	lc := <-connCh

	leader, err := NewLeaderCluster(n, split, []RemotePeer{{Link: NewFrameConn(lc), Lo: split, Hi: n}})
	if err != nil {
		t.Fatal(err)
	}
	follower, err := NewFollowerCluster(n, split, n, NewFrameConn(fc))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close(); follower.Close() })
	return leader, follower
}

// collectiveScript runs every collective family with rank-dependent data
// and records what each rank observed, so one script can be replayed over
// any transport and compared.
func collectiveScript(results [][]string, mu *sync.Mutex) func(c *Comm) {
	return func(c *Comm) {
		r := c.Rank()
		var got []string
		note := func(name string, v any) { got = append(got, fmt.Sprintf("%s=%v", name, v)) }

		c.Barrier()
		note("bcastI", c.BroadcastInts(1, ints(r, 3, 7)))
		note("bcastF", c.BroadcastFloats(0, floats(r, 2, 0.5)))
		bins := c.BroadcastIntsNested(1, [][]int{{10 + r}, {20 + r, 21 + r}, {}})
		note("nested", fmt.Sprintf("%v", bins))
		note("gather", c.AllGatherInts(ints(r, 2, 100)))
		note("unique", c.AllGatherUniqueInts([]int{r, r + 1, 64}))
		note("gatherF", c.AllGatherFloats(floats(r, 2, 1.25)))
		note("sum", c.AllReduceSum(floats(r, 4, 1)))
		note("max", c.AllReduceMax(floats(r, 4, -1)))
		c.Barrier()

		mu.Lock()
		results[r] = got
		mu.Unlock()
	}
}

func ints(rank, n, base int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = base*rank + i
	}
	return out
}

func floats(rank, n int, scale float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = scale * float64(rank*n+i+1)
	}
	return out
}

// TestTCPCollectivesMatchInProcess replays the same collective script over
// the in-process transport and over a leader/follower TCP pair: every rank
// must observe identical results, and the leader's modeled traffic must be
// byte-identical to the in-process counters.
func TestTCPCollectivesMatchInProcess(t *testing.T) {
	const n, split = 4, 2
	var mu sync.Mutex

	want := make([][]string, n)
	ref := NewCluster(n)
	ref.Run(collectiveScript(want, &mu))
	if err := ref.Err(); err != nil {
		t.Fatalf("in-process run: %v", err)
	}

	got := make([][]string, n)
	leader, follower := tcpPair(t, n, split)
	var wg sync.WaitGroup
	wg.Add(2)
	errs := make([]error, 2)
	go func() { defer wg.Done(); errs[0] = leader.RunContext(t.Context(), collectiveScript(got, &mu)) }()
	go func() { defer wg.Done(); errs[1] = follower.RunContext(t.Context(), collectiveScript(got, &mu)) }()
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("tcp run: leader %v, follower %v", errs[0], errs[1])
	}

	for r := range want {
		if !reflect.DeepEqual(want[r], got[r]) {
			t.Errorf("rank %d diverged:\n in-process: %v\n tcp:        %v", r, want[r], got[r])
		}
	}
	if lt, it := leader.Traffic(), ref.Traffic(); lt != it {
		t.Errorf("modeled traffic diverged: tcp %+v vs in-process %+v", lt, it)
	}
	tx, rx := leader.SocketBytes()
	if tx == 0 || rx == 0 {
		t.Errorf("leader socket bytes tx=%d rx=%d, want both positive", tx, rx)
	}
	if w := follower.CommWall(); w.TotalSeconds() <= 0 || w.AllReduce.Count != 2 {
		t.Errorf("follower CommWall = %+v, want positive wall and 2 allreduces", w)
	}
}

// TestTCPLocalRanks verifies the rank partition both sides spawn.
func TestTCPLocalRanks(t *testing.T) {
	leader, follower := tcpPair(t, 5, 2)
	if lo, hi := leader.LocalRanks(); lo != 0 || hi != 2 {
		t.Fatalf("leader ranks [%d,%d), want [0,2)", lo, hi)
	}
	if lo, hi := follower.LocalRanks(); lo != 2 || hi != 5 {
		t.Fatalf("follower ranks [%d,%d), want [2,5)", lo, hi)
	}
	if !leader.Distributed() || !follower.Distributed() || NewCluster(2).Distributed() {
		t.Fatal("Distributed() misreports transports")
	}
}

// TestTCPAbortPropagates aborts on the follower mid-collective; both sides
// must unwind with the same reason, including ranks parked in a rendezvous
// on the other process.
func TestTCPAbortPropagates(t *testing.T) {
	leader, follower := tcpPair(t, 4, 2)
	boom := errors.New("boom")
	var wg sync.WaitGroup
	wg.Add(2)
	errs := make([]error, 2)
	go func() {
		defer wg.Done()
		errs[0] = leader.RunContext(t.Context(), func(c *Comm) {
			c.Barrier()
			c.AllReduceSum([]float64{1}) // never completes: follower aborts
		})
	}()
	go func() {
		defer wg.Done()
		errs[1] = follower.RunContext(t.Context(), func(c *Comm) {
			c.Barrier()
			if c.Rank() == 3 {
				c.cluster.Abort(boom)
				return
			}
			c.AllReduceSum([]float64{1})
		})
	}()
	wg.Wait()
	if !errors.Is(errs[1], boom) {
		t.Fatalf("follower error = %v, want boom", errs[1])
	}
	var ra *RemoteAbortError
	if !errors.As(errs[0], &ra) || ra.Msg != "boom" {
		t.Fatalf("leader error = %v, want remote abort carrying boom", errs[0])
	}
}

// TestTCPInjectedFaultOnFollowerReachesLeader attaches a drop plan to the
// follower's ranks: the structured FaultError must cross the wire so the
// leader's recovery machinery sees the same fault an in-process run would.
func TestTCPInjectedFaultOnFollowerReachesLeader(t *testing.T) {
	leader, follower := tcpPair(t, 4, 2)
	follower.SetFaultPlan(&FaultPlan{Drops: []Drop{{Rank: 3, Iteration: 2}}})

	script := func(c *Comm) {
		for it := 0; it < 5; it++ {
			c.StartIteration(it)
			c.AllReduceSum([]float64{float64(c.Rank())})
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	errs := make([]error, 2)
	go func() { defer wg.Done(); errs[0] = leader.RunContext(t.Context(), script) }()
	go func() { defer wg.Done(); errs[1] = follower.RunContext(t.Context(), script) }()
	wg.Wait()

	for side, err := range errs {
		var fe *FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("side %d error = %v, want FaultError", side, err)
		}
		if fe.Kind != FaultDrop || fe.Rank != 3 || fe.Iteration != 2 {
			t.Fatalf("side %d fault = %+v, want drop of rank 3 at iteration 2", side, fe)
		}
	}
}

// TestTCPHardKillIsBoundaryDrop kills the follower process (simulated: its
// links close with no handshake) at an iteration boundary. The leader must
// observe a drop of the follower's whole rank range attributed to exactly
// the kill iteration — the property that makes kill-recovery reproduce
// injected-drop recovery.
func TestTCPHardKillIsBoundaryDrop(t *testing.T) {
	const killAt = 3
	leader, follower := tcpPair(t, 4, 2)
	follower.HardKill(killAt)
	leader.SetStartIteration(0)
	follower.SetStartIteration(0)

	script := func(c *Comm) {
		for it := 0; it < 6; it++ {
			c.StartIteration(it)
			c.AllReduceSum([]float64{1})
			c.Barrier()
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	errs := make([]error, 2)
	go func() { defer wg.Done(); errs[0] = leader.RunContext(t.Context(), script) }()
	go func() { defer wg.Done(); errs[1] = follower.RunContext(t.Context(), script) }()
	wg.Wait()

	if !errors.Is(errs[1], ErrHardKilled) {
		t.Fatalf("follower error = %v, want ErrHardKilled", errs[1])
	}
	var fe *FaultError
	if !errors.As(errs[0], &fe) {
		t.Fatalf("leader error = %v, want FaultError", errs[0])
	}
	if fe.Kind != FaultDrop || fe.Iteration != killAt {
		t.Fatalf("leader fault = %+v, want drop at iteration %d", fe, killAt)
	}
	if !reflect.DeepEqual(fe.AllRanks(), []int{2, 3}) {
		t.Fatalf("leader fault ranks = %v, want [2 3]", fe.AllRanks())
	}
}

// TestTCPFollowerSurvivesLeaderDeathWithError: a follower losing the hub
// cannot continue (the leader is the single point of failure); it must
// abort promptly with a connection error, not hang in a collective.
func TestTCPFollowerAbortsOnLeaderDeath(t *testing.T) {
	leader, follower := tcpPair(t, 4, 2)
	leader.HardKill(2)

	script := func(c *Comm) {
		for it := 0; it < 6; it++ {
			c.StartIteration(it)
			c.AllReduceSum([]float64{1})
		}
	}
	done := make(chan error, 1)
	go func() { leader.RunContext(t.Context(), script); done <- nil }()
	var err error
	followDone := make(chan struct{})
	go func() { err = follower.RunContext(t.Context(), script); close(followDone) }()
	select {
	case <-followDone:
	case <-time.After(10 * time.Second):
		t.Fatal("follower hung after leader death")
	}
	<-done
	if err == nil {
		t.Fatal("follower ran clean after leader death")
	}
}

// TestFrameConnRejectsHostileLength: a corrupt length prefix must error
// out instead of forcing a giant allocation.
func TestFrameConnRejectsHostileLength(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go client.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x01})
	fc := NewFrameConn(server)
	if _, _, err := fc.Recv(); err == nil {
		t.Fatal("Recv accepted a 4 GiB frame length")
	}
}
