// Package obs is the observability substrate shared by the trainer, the
// communication layer and the job service: phase-span tracing exportable
// as Chrome trace-event JSON (loadable in Perfetto / chrome://tracing),
// and a Prometheus-style metrics registry with counters, gauges and
// log-bucketed latency histograms.
//
// Both halves are built for the training hot loop's allocation budget:
// a nil *Tracer (and a nil *Lane) is a valid no-op receiver, so disabled
// tracing costs exactly one nil check per phase boundary and zero
// allocations; an enabled lane records a span as one monotonic clock read
// plus one append into a reusable per-rank buffer. Histogram observation
// is three atomic adds with no locks.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// Phase identifies one traced section of the training iteration or the
// serve job lifecycle. The fixed enumeration keeps the hot-path span
// record free of strings.
type Phase uint8

// Training-iteration phases (recorded per rank, nested under
// PhaseIteration) and serve job-lifecycle phases.
const (
	PhaseIteration Phase = iota
	PhaseSample
	PhaseForwardBackward
	PhaseSelect
	PhaseEncode
	PhaseDecode
	PhaseCollective
	PhaseApply
	PhaseQueued
	PhaseRunning
	PhaseAttempt
	PhaseStream
	// PhaseStall is simulated straggler time: the trainer inflates a
	// faulted rank's accounted step time without burning wall clock, so
	// the extra duration is materialized as an explicit span to keep the
	// trace consistent with the metrics (and analyzable).
	PhaseStall
	numPhases
)

var phaseNames = [numPhases]string{
	"iteration", "sample", "forward/backward", "select", "encode",
	"decode", "collective", "apply", "queued", "running", "attempt",
	"stream", "stall",
}

// String returns the phase's trace-event name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// span is one completed trace event: times are nanoseconds since the
// tracer's epoch. name overrides the phase name when non-empty (used by
// the lifecycle spans of the job service); arg rides into the event's
// args block (attempt number, job sequence) when >= 0.
type span struct {
	phase Phase
	iter  int32
	name  string
	arg   int64
	start int64
	dur   int64
}

// openSpan is one Start awaiting its Stop on a lane's stack.
type openSpan struct {
	phase Phase
	iter  int32
	start int64
}

// maxOpenSpans bounds a lane's nesting depth; deeper Starts are counted
// but not recorded (the matching Stops unwind the count), so a runaway
// caller degrades to dropped spans instead of growing state.
const maxOpenSpans = 16

// Lane is one trace timeline — a simulated rank, a pool worker — owned by
// a single goroutine. The nil lane is a valid no-op receiver: every
// method returns immediately, so "tracing disabled" is spelled by handing
// the hot loop a nil lane and costs one nil check per call.
type Lane struct {
	tracer *Tracer
	id     int
	name   string
	depth  int
	stack  [maxOpenSpans]openSpan
	spans  []span
}

// Start opens a span of the given phase at the current time. iter tags
// the span with an iteration number (pass -1 for none). Spans nest:
// each Start must be matched by one Stop on the same lane.
func (l *Lane) Start(ph Phase, iter int) {
	if l == nil {
		return
	}
	if l.depth < maxOpenSpans {
		l.stack[l.depth] = openSpan{phase: ph, iter: int32(iter), start: l.tracer.now()}
	}
	l.depth++
}

// Stop closes the most recently started span. An unmatched Stop is a
// no-op.
func (l *Lane) Stop() {
	if l == nil || l.depth == 0 {
		return
	}
	l.depth--
	if l.depth >= maxOpenSpans {
		return // dropped by Start; nothing recorded
	}
	o := l.stack[l.depth]
	l.spans = append(l.spans, span{
		phase: o.phase, iter: o.iter, arg: -1,
		start: o.start, dur: l.tracer.now() - o.start,
	})
}

// Now returns the lane's trace clock (nanoseconds since the tracer
// epoch), or 0 on the nil lane. Pair with RecordSpanAt to record spans
// whose boundaries were measured externally.
func (l *Lane) Now() int64 {
	if l == nil {
		return 0
	}
	return l.tracer.now()
}

// RecordSpanAt appends a completed span with explicit trace-clock start
// and duration (both in nanoseconds; see Now). This is the hot-path form
// for callers that learn a sub-phase's duration after the fact — e.g.
// splitting a step's sampling prefix out of forward/backward.
func (l *Lane) RecordSpanAt(ph Phase, iter int, start, dur int64) {
	if l == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	l.spans = append(l.spans, span{
		phase: ph, iter: int32(iter), arg: -1, start: start, dur: dur,
	})
}

// Reset discards the lane's recorded spans, keeping the buffer capacity
// (reusable per-rank span buffers across runs or segments).
func (l *Lane) Reset() {
	if l == nil {
		return
	}
	l.depth = 0
	l.spans = l.spans[:0]
}

// Tracer collects spans across lanes and renders them as Chrome
// trace-event JSON. The zero of *Tracer (nil) is the disabled tracer:
// Lane returns nil and every recording path is a no-op.
type Tracer struct {
	process string
	epoch   time.Time

	mu       sync.Mutex
	lanes    map[int]*Lane
	order    []int // lane registration order, for deterministic export
	counters []counterSample
}

// counterSample is one point on a named counter track, rendered as a
// Chrome trace counter ("C") event — the runtime health sampler embeds
// heap/goroutine/GC series into traces this way.
type counterSample struct {
	name string
	ts   int64 // nanoseconds since epoch
	v    float64
}

// NewTracer creates a tracer whose trace clock starts now. process names
// the trace's process row in the viewer ("deft-train", "deft-serve").
func NewTracer(process string) *Tracer {
	return &Tracer{process: process, epoch: time.Now(), lanes: map[int]*Lane{}}
}

// now returns nanoseconds since the tracer epoch on the monotonic clock.
func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// Lane returns the lane with the given id, creating it with the given
// display name on first use. A nil tracer returns the nil (no-op) lane.
// The returned lane must be used by one goroutine at a time; distinct
// lanes are independent.
func (t *Tracer) Lane(id int, name string) *Lane {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.lanes[id]
	if !ok {
		l = &Lane{tracer: t, id: id, name: name}
		t.lanes[id] = l
		t.order = append(t.order, id)
	}
	return l
}

// RecordSpan appends one completed span under the tracer lock — the
// cold-path entry for callers whose spans complete on arbitrary
// goroutines (the job service's lifecycle spans). name labels the event;
// arg (>= 0) rides into its args block; laneName is used only when the
// lane does not exist yet. A nil tracer is a no-op.
func (t *Tracer) RecordSpan(laneID int, laneName, name string, arg int64, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.lanes[laneID]
	if !ok {
		l = &Lane{tracer: t, id: laneID, name: laneName}
		t.lanes[laneID] = l
		t.order = append(t.order, laneID)
	}
	s := start.Sub(t.epoch)
	d := end.Sub(start)
	if d < 0 {
		d = 0
	}
	l.spans = append(l.spans, span{
		phase: numPhases, iter: -1, name: name, arg: arg,
		start: int64(s), dur: int64(d),
	})
}

// RecordCounter appends one sample to the named counter track at the
// current trace time. Non-finite values are dropped (they are not
// representable in trace JSON). A nil tracer is a no-op. This is a
// cold-path call (mutex + append) meant for periodic samplers, not the
// per-iteration hot loop.
func (t *Tracer) RecordCounter(name string, v float64) {
	if t == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	t.mu.Lock()
	t.counters = append(t.counters, counterSample{name: name, ts: t.now(), v: v})
	t.mu.Unlock()
}

// traceEvent is one Chrome trace-event JSON object. Complete events
// (ph "X") carry ts+dur in microseconds; metadata events (ph "M") name
// the process and thread rows.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders every recorded span as a Chrome trace-event
// JSON document ({"traceEvents": [...]}), the format Perfetto and
// chrome://tracing load directly. Lanes become threads (tid = lane id)
// inside one process; spans become complete ("X") events with
// microsecond timestamps relative to the trace start and an args block
// carrying the iteration (and any span arg).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	events := []traceEvent{{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": t.process},
	}}
	for _, id := range t.order {
		l := t.lanes[id]
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: l.id,
			Args: map[string]any{"name": l.name},
		})
		for _, s := range l.spans {
			name := s.name
			if name == "" {
				name = s.phase.String()
			}
			ev := traceEvent{
				Name: name, Ph: "X", Pid: 1, Tid: l.id,
				Ts:  float64(s.start) / 1e3,
				Dur: float64(s.dur) / 1e3,
			}
			if s.iter >= 0 {
				ev.Args = map[string]any{"iteration": s.iter}
			}
			if s.arg >= 0 {
				if ev.Args == nil {
					ev.Args = map[string]any{}
				}
				ev.Args["arg"] = s.arg
			}
			events = append(events, ev)
		}
	}
	for _, c := range t.counters {
		events = append(events, traceEvent{
			Name: c.name, Ph: "C", Pid: 1, Tid: 0,
			Ts:   float64(c.ts) / 1e3,
			Args: map[string]any{"value": c.v},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     events,
	})
}

// SpanRecord is one completed span in a tracer snapshot, the in-process
// input to internal/obs/analyze. Times are nanoseconds since the tracer
// epoch; Name is the phase name (or the custom name of a lifecycle
// span); Iter is -1 on untagged spans.
type SpanRecord struct {
	Lane     int
	LaneName string
	Name     string
	Iter     int
	Start    int64
	Dur      int64
}

// Snapshot returns the tracer's process name and every completed span,
// lanes in registration order. Like WriteChromeTrace it must only run
// once the lane-owning goroutines have quiesced (after the traced run).
// A nil tracer returns ("", nil).
func (t *Tracer) Snapshot() (process string, spans []SpanRecord) {
	if t == nil {
		return "", nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, id := range t.order {
		l := t.lanes[id]
		for _, s := range l.spans {
			name := s.name
			if name == "" {
				name = s.phase.String()
			}
			spans = append(spans, SpanRecord{
				Lane: l.id, LaneName: l.name, Name: name,
				Iter: int(s.iter), Start: s.start, Dur: s.dur,
			})
		}
	}
	return t.process, spans
}

// SpanCount returns the number of completed spans across all lanes.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, l := range t.lanes {
		n += len(l.spans)
	}
	return n
}
