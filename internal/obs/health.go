package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// healthSamples are the runtime/metrics series the sampler polls. The
// two histogram-valued series are reduced to their p99 at each poll.
var healthSamples = []string{
	"/memory/classes/heap/objects:bytes",
	"/sched/goroutines:goroutines",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// HealthSampler polls the Go runtime's own metrics — live heap,
// goroutine count, GC cycles, GC pause p99, scheduler latency p99 —
// into an obs Registry (exported at /metrics) and, when a tracer is
// attached, into the trace as counter events, so a GC stall or
// goroutine leak shows up in the same timeline as the training phases.
// Either destination may be nil.
type HealthSampler struct {
	tracer  *Tracer
	samples []metrics.Sample

	heap       *Gauge
	goroutines *Gauge
	gcCycles   *Gauge
	gcPauseP99 *FloatGauge
	schedP99   *FloatGauge

	mu   sync.Mutex // serializes Sample; guards samples
	stop chan struct{}
	done chan struct{}
}

// NewHealthSampler registers the runtime health gauges on reg (when
// non-nil) and returns a sampler feeding them and tracer (when
// non-nil). Call Sample for one poll or Start for periodic polling.
func NewHealthSampler(reg *Registry, tracer *Tracer) *HealthSampler {
	h := &HealthSampler{
		tracer:  tracer,
		samples: make([]metrics.Sample, len(healthSamples)),
	}
	for i, name := range healthSamples {
		h.samples[i].Name = name
	}
	if reg != nil {
		h.heap = reg.Gauge("deft_runtime_heap_bytes",
			"Bytes of live heap objects (runtime /memory/classes/heap/objects).")
		h.goroutines = reg.Gauge("deft_runtime_goroutines",
			"Count of live goroutines.")
		h.gcCycles = reg.Gauge("deft_runtime_gc_cycles",
			"Completed GC cycles since process start.")
		h.gcPauseP99 = reg.FloatGauge("deft_runtime_gc_pause_p99_seconds",
			"p99 of stop-the-world GC pauses since process start (NaN before the first pause).")
		h.schedP99 = reg.FloatGauge("deft_runtime_sched_latency_p99_seconds",
			"p99 of goroutine scheduling latency since process start (NaN before the first sample).")
	}
	return h
}

// Sample performs one poll: reads the runtime metrics, updates the
// registry gauges and appends trace counter samples. Safe for
// concurrent use.
func (h *HealthSampler) Sample() {
	h.mu.Lock()
	defer h.mu.Unlock()
	metrics.Read(h.samples)
	var heap, goroutines, gcCycles uint64
	gcPauseP99, schedP99 := math.NaN(), math.NaN()
	for _, s := range h.samples {
		switch s.Name {
		case "/memory/classes/heap/objects:bytes":
			heap = s.Value.Uint64()
		case "/sched/goroutines:goroutines":
			goroutines = s.Value.Uint64()
		case "/gc/cycles/total:gc-cycles":
			gcCycles = s.Value.Uint64()
		case "/gc/pauses:seconds":
			gcPauseP99 = histQuantile(s.Value.Float64Histogram(), 0.99)
		case "/sched/latencies:seconds":
			schedP99 = histQuantile(s.Value.Float64Histogram(), 0.99)
		}
	}
	if h.heap != nil {
		h.heap.Set(int64(heap))
		h.goroutines.Set(int64(goroutines))
		h.gcCycles.Set(int64(gcCycles))
		h.gcPauseP99.Set(gcPauseP99)
		h.schedP99.Set(schedP99)
	}
	// RecordCounter drops non-finite values, so empty quantiles simply
	// leave a gap in the trace track.
	h.tracer.RecordCounter("heap_bytes", float64(heap))
	h.tracer.RecordCounter("goroutines", float64(goroutines))
	h.tracer.RecordCounter("gc_pause_p99_us", gcPauseP99*1e6)
	h.tracer.RecordCounter("sched_latency_p99_us", schedP99*1e6)
}

// Start polls every interval until Stop. Starting an already started
// sampler is a no-op.
func (h *HealthSampler) Start(every time.Duration) {
	if every <= 0 {
		return
	}
	h.mu.Lock()
	if h.stop != nil {
		h.mu.Unlock()
		return
	}
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	stop, done := h.stop, h.done
	h.mu.Unlock()

	h.Sample() // one immediate poll so short-lived processes still report
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				h.Sample()
			}
		}
	}()
}

// Stop halts periodic polling and takes one final sample (so the trace
// ends with fresh counters). Safe to call without Start.
func (h *HealthSampler) Stop() {
	h.mu.Lock()
	stop, done := h.stop, h.done
	h.stop, h.done = nil, nil
	h.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	h.Sample()
}

// histQuantile estimates the q-quantile of a runtime/metrics float64
// histogram: Counts[i] weights the bucket [Buckets[i], Buckets[i+1]).
// Returns NaN on an empty histogram; the returned value is the upper
// edge of the bucket containing the q-th observation (clamped to the
// last finite edge).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return math.NaN()
	}
	total := uint64(0)
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			hi := h.Buckets[i+1]
			if math.IsInf(hi, +1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	last := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(last, +1) {
		return h.Buckets[len(h.Buckets)-2]
	}
	return last
}
