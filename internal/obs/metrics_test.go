package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("deft_runs_total", "total runs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("deft_runs_total", "total runs"); again != c {
		t.Error("re-registering a counter must return the same instance")
	}
	g := r.Gauge("deft_queue_depth", "jobs waiting")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

// TestHistogramQuantiles checks that quantile estimates land within the
// factor-of-2 resolution the log2 buckets promise.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations at 1ms, 100 at 10ms, 10 at 100ms.
	for i := 0; i < 1000; i++ {
		h.Observe(int64(time.Millisecond))
	}
	for i := 0; i < 100; i++ {
		h.Observe(int64(10 * time.Millisecond))
	}
	for i := 0; i < 10; i++ {
		h.Observe(int64(100 * time.Millisecond))
	}
	s := h.Snapshot()
	if s.Count != 1110 {
		t.Fatalf("count = %d, want 1110", s.Count)
	}
	wantSum := 1000*0.001 + 100*0.010 + 10*0.100
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
	within := func(got, want float64) bool { return got >= want/2 && got <= want*2 }
	if !within(s.P50, 0.001) {
		t.Errorf("p50 = %v, want ~1ms", s.P50)
	}
	if !within(s.P90, 0.001) {
		t.Errorf("p90 = %v, want ~1ms", s.P90)
	}
	if !within(s.P99, 0.010) {
		t.Errorf("p99 = %v, want ~10ms", s.P99)
	}
	if q := h.Quantile(0.9999); !within(q, 0.100) {
		t.Errorf("p99.99 = %v, want ~100ms", q)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot = %+v, want zeros", s)
	}
	h.Observe(-5)
	if got := h.Snapshot(); got.Count != 1 || got.Sum != 0 {
		t.Errorf("negative observation snapshot = %+v", got)
	}
}

// TestHistogramObserveZeroAlloc pins the lock-free hot path.
func TestHistogramObserveZeroAlloc(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %v, want 0", allocs)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i) * 1000)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Errorf("concurrent count = %d, want 8000", got)
	}
}

// TestWritePrometheus validates the text exposition format: HELP/TYPE
// headers, label handling, deterministic ordering, and the cumulative
// histogram contract (monotone buckets, +Inf == count).
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("deft_jobs_submitted_total", "jobs accepted").Add(42)
	r.Counter(`deft_jobs{state="queued"}`, "jobs by state").Add(3)
	r.Counter(`deft_jobs{state="running"}`, "").Add(2)
	r.Gauge("deft_pool_size", "trainer pool size").Set(4)
	r.GaugeFunc("deft_queue_depth", "jobs waiting", func() int64 { return 9 })
	h := r.Histogram("deft_job_run_seconds", "job run duration")
	h.Observe(int64(5 * time.Millisecond))
	h.Observe(int64(50 * time.Millisecond))
	h.Observe(int64(2 * time.Second))

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()

	for _, want := range []string{
		"# HELP deft_jobs_submitted_total jobs accepted",
		"# TYPE deft_jobs_submitted_total counter",
		"deft_jobs_submitted_total 42",
		"# TYPE deft_jobs counter",
		`deft_jobs{state="queued"} 3`,
		`deft_jobs{state="running"} 2`,
		"# TYPE deft_pool_size gauge",
		"deft_pool_size 4",
		"deft_queue_depth 9",
		"# TYPE deft_job_run_seconds histogram",
		`deft_job_run_seconds_bucket{le="+Inf"} 3`,
		"deft_job_run_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n--- got ---\n%s", want, out)
		}
	}

	// One TYPE header per base name, even with multiple label values.
	if got := strings.Count(out, "# TYPE deft_jobs "); got != 1 {
		t.Errorf("TYPE deft_jobs appears %d times, want 1", got)
	}

	// Histogram buckets must be cumulative (non-decreasing) and the sum
	// close to the observed total.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "deft_job_run_seconds_bucket") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		prev = v
	}
	if prev != 3 {
		t.Errorf("final bucket = %d, want 3", prev)
	}
	if !strings.Contains(out, "deft_job_run_seconds_sum 2.055") {
		t.Errorf("histogram sum wrong:\n%s", out)
	}

	// Deterministic: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("WritePrometheus output is not deterministic")
	}
}
