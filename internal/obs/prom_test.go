package obs

import (
	"bytes"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestLabelEscaping pins the exposition-format escaping contract for
// label values: backslash, double quote and newline must be escaped so
// the sample stays one well-formed line.
func TestLabelEscaping(t *testing.T) {
	cases := []struct{ value, want string }{
		{"queued", `deft_jobs{state="queued"}`},
		{`back\slash`, `deft_jobs{state="back\\slash"}`},
		{`quo"te`, `deft_jobs{state="quo\"te"}`},
		{"new\nline", `deft_jobs{state="new\nline"}`},
		{"all\\three\"\n", `deft_jobs{state="all\\three\"\n"}`},
	}
	for _, c := range cases {
		if got := Label("deft_jobs", "state", c.value); got != c.want {
			t.Errorf("Label(%q) = %s, want %s", c.value, got, c.want)
		}
	}

	// A counter registered under an escaped label renders as exactly one
	// line with the escapes intact.
	r := NewRegistry()
	r.Counter(Label("deft_jobs", "state", "tricky\\\"\nvalue"), "jobs by state").Add(7)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `deft_jobs{state="tricky\\\"\nvalue"} 7`
	found := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == want {
			found = true
		}
	}
	if !found {
		t.Errorf("exposition missing the escaped sample line %q:\n%s", want, buf.String())
	}
}

// TestHelpEscaping: HELP text escapes backslash and newline per the
// format spec (quotes are legal in HELP and stay raw).
func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("deft_weird", "first line\nsecond \\ line \"quoted\"").Set(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP deft_weird first line\nsecond \\ line "quoted"`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("HELP not escaped, want %q in:\n%s", want, buf.String())
	}
}

// TestFloatGaugeSpecialValues: NaN and infinities render as the literal
// tokens the exposition format defines, and plain values round-trip.
func TestFloatGaugeSpecialValues(t *testing.T) {
	r := NewRegistry()
	r.FloatGauge("deft_nan", "unset quantile").Set(math.NaN())
	r.FloatGauge("deft_posinf", "overflow").Set(math.Inf(1))
	r.FloatGauge("deft_neginf", "underflow").Set(math.Inf(-1))
	r.FloatGauge("deft_plain", "ordinary").Set(0.001953125)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"deft_nan NaN",
		"deft_posinf +Inf",
		"deft_neginf -Inf",
		"deft_plain 0.001953125",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	g := r.FloatGauge("deft_plain", "ordinary")
	if g.Value() != 0.001953125 {
		t.Errorf("FloatGauge round-trip = %v", g.Value())
	}
	g.Set(math.NaN())
	if !math.IsNaN(g.Value()) {
		t.Errorf("FloatGauge NaN round-trip = %v", g.Value())
	}
}

// TestExpositionGrammar validates every line the full registry surface
// renders against a mini-grammar of the text format: comment lines are
// HELP/TYPE with a known type, sample lines are name{labels}? value, the
// value parses as a Go float (which accepts NaN/+Inf/-Inf), and label
// values contain no raw quote or newline.
func TestExpositionGrammar(t *testing.T) {
	r := NewRegistry()
	r.Counter("deft_total", "plain counter").Add(3)
	r.Counter(Label("deft_by_state", "state", "run\"ning\n\\"), "labelled").Add(1)
	r.Gauge("deft_depth", "gauge").Set(-4)
	r.GaugeFunc("deft_func", "func gauge", func() int64 { return 11 })
	r.FloatGauge("deft_float", "float gauge").Set(math.NaN())
	r.Histogram("deft_lat_seconds", "latency").Observe(1500)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^{}]*)\})? (\S+)$`)
	labelRe := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="((?:[^"\\]|\\.)*)"$`)
	types := map[string]bool{"counter": true, "gauge": true, "histogram": true}

	samples := 0
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			f := strings.SplitN(line, " ", 4)
			if len(f) < 4 || (f[1] != "HELP" && f[1] != "TYPE") || !nameRe.MatchString(f[2]) {
				t.Errorf("bad comment line %q", line)
			}
			if f[1] == "TYPE" && !types[f[3]] {
				t.Errorf("unknown TYPE %q in %q", f[3], line)
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("sample line does not match grammar: %q", line)
			continue
		}
		samples++
		if _, err := strconv.ParseFloat(m[4], 64); err != nil {
			t.Errorf("unparseable sample value in %q: %v", line, err)
		}
		if m[3] == "" {
			continue
		}
		// Split label pairs on commas outside escapes; the registry never
		// emits more than a few, so a simple scan suffices.
		for _, pair := range splitLabels(m[3]) {
			if !labelRe.MatchString(pair) {
				t.Errorf("bad label pair %q in %q", pair, line)
			}
		}
	}
	if samples < 8 {
		t.Errorf("grammar walk saw %d samples, expected the full registry surface (>= 8)", samples)
	}
}

// splitLabels splits a rendered label body on commas that sit outside
// quoted values.
func splitLabels(body string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	return append(out, body[start:])
}
