package analyze

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// syntheticTrace builds a 4-rank, 30-iteration trace where rank 1 does
// factor x the base work during iterations [10,25) via a stall span —
// the exact shape a FaultPlan straggler leaves behind.
func syntheticTrace(factor float64) *Trace {
	const ranks, iters = 4, 30
	const base = int64(1e6) // 1ms of work per iteration
	tr := &Trace{Process: "test", LaneNames: map[int]string{}}
	for r := 0; r < ranks; r++ {
		tr.LaneNames[r] = "rank"
		t := int64(0)
		for it := 0; it < iters; it++ {
			work := base + int64(r)*1000 // deterministic slight skew
			tr.Spans = append(tr.Spans,
				Span{Lane: r, Name: "sample", Iter: it, Start: t, Dur: work / 4},
				Span{Lane: r, Name: "forward/backward", Iter: it, Start: t + work/4, Dur: work - work/4},
			)
			end := t + work
			if r == 1 && it >= 10 && it < 25 {
				stall := int64(float64(work) * (factor - 1))
				tr.Spans = append(tr.Spans, Span{Lane: r, Name: "stall", Iter: it, Start: end, Dur: stall})
				end += stall
			}
			wait := int64(5e5)
			tr.Spans = append(tr.Spans,
				Span{Lane: r, Name: "collective", Iter: it, Start: end, Dur: wait},
				Span{Lane: r, Name: "iteration", Iter: it, Start: t, Dur: end + wait - t},
			)
			t = end + wait
		}
	}
	return tr
}

func TestAnalyzeAttributesStragglerWindow(t *testing.T) {
	rep := Analyze(syntheticTrace(4), Options{})
	if rep.Ranks != 4 || rep.Iterations != 30 {
		t.Fatalf("ranks=%d iters=%d, want 4, 30", rep.Ranks, rep.Iterations)
	}
	if len(rep.Stragglers) != 1 {
		t.Fatalf("stragglers = %+v, want exactly one", rep.Stragglers)
	}
	f := rep.Stragglers[0]
	if f.Rank != 1 {
		t.Errorf("straggler rank = %d, want 1", f.Rank)
	}
	if f.From != 10 || f.Until != 25 {
		t.Errorf("straggler window = [%d,%d), want [10,25)", f.From, f.Until)
	}
	if f.Flagged != 15 || f.Gated != 15 {
		t.Errorf("flagged=%d gated=%d, want 15, 15", f.Flagged, f.Gated)
	}
	if f.MeanRatio < 3.5 || f.MeanRatio > 4.5 {
		t.Errorf("mean ratio = %v, want ~4", f.MeanRatio)
	}

	// Rank 1 gates exactly its window; rank 3 (highest skew) the rest.
	var byRank [4]RankStat
	for _, s := range rep.RankStats {
		byRank[s.Rank] = s
	}
	if byRank[1].Gated != 15 {
		t.Errorf("rank 1 gated %d iterations, want 15", byRank[1].Gated)
	}
	if byRank[3].Gated != 15 {
		t.Errorf("rank 3 gated %d iterations, want 15", byRank[3].Gated)
	}
	// Wait attribution: in rank 1's window it absorbs the other three
	// ranks' collective time (3 × 0.5ms × 15 iterations).
	if want := int64(3 * 5e5 * 15); byRank[1].AttributedNS != want {
		t.Errorf("rank 1 attributed wait = %d, want %d", byRank[1].AttributedNS, want)
	}
	// The slowest iterations all sit inside the straggler window.
	if len(rep.Slowest) == 0 {
		t.Fatal("no slowest iterations reported")
	}
	for _, s := range rep.Slowest {
		if s.Rank != 1 || s.Iteration < 10 || s.Iteration >= 25 {
			t.Errorf("slowest iteration %+v outside the straggler window", s)
		}
	}
	// The verdict names the culprit.
	found := false
	for _, v := range rep.Verdicts {
		if bytes.Contains([]byte(v), []byte("straggler: rank 1")) {
			found = true
		}
	}
	if !found {
		t.Errorf("no straggler verdict naming rank 1 in %q", rep.Verdicts)
	}
}

func TestAnalyzeHealthyHasNoStraggler(t *testing.T) {
	rep := Analyze(syntheticTrace(1), Options{})
	if len(rep.Stragglers) != 0 {
		t.Fatalf("healthy trace flagged stragglers: %+v", rep.Stragglers)
	}
	found := false
	for _, v := range rep.Verdicts {
		if bytes.Contains([]byte(v), []byte("no straggler")) {
			found = true
		}
	}
	if !found {
		t.Errorf("missing no-straggler verdict in %q", rep.Verdicts)
	}
}

// TestAnalyzeByteStable: the full pipeline — analyze, render, marshal —
// is a pure function of the trace.
func TestAnalyzeByteStable(t *testing.T) {
	render := func() ([]byte, []byte) {
		rep := Analyze(syntheticTrace(4), Options{})
		var txt bytes.Buffer
		if err := rep.Fprint(&txt); err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return txt.Bytes(), js
	}
	t1, j1 := render()
	t2, j2 := render()
	if !bytes.Equal(t1, t2) {
		t.Error("text report differs across replays")
	}
	if !bytes.Equal(j1, j2) {
		t.Error("JSON report differs across replays")
	}
}

// TestChromeTraceRoundTrip: a trace written by the obs tracer and
// parsed back via LoadChromeTrace reaches the same verdict as the
// in-process snapshot (timestamps round through microseconds, so spans
// agree to 1µs).
func TestChromeTraceRoundTrip(t *testing.T) {
	tracer := obs.NewTracer("roundtrip")
	for r := 0; r < 2; r++ {
		lane := tracer.Lane(r, "rank")
		base := int64(1e6)
		tick := int64(0)
		for it := 0; it < 12; it++ {
			work := base
			if r == 1 && it >= 4 {
				work *= 5
			}
			lane.RecordSpanAt(obs.PhaseForwardBackward, it, tick, work)
			lane.RecordSpanAt(obs.PhaseCollective, it, tick+work, 2e5)
			lane.RecordSpanAt(obs.PhaseIteration, it, tick, work+2e5)
			tick += work + 2e5
		}
	}
	tracer.RecordCounter("heap_bytes", 12345)

	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Process != "roundtrip" {
		t.Errorf("process = %q, want roundtrip", loaded.Process)
	}
	direct := FromTracer(tracer)
	if len(loaded.Spans) != len(direct.Spans) {
		t.Fatalf("span count: loaded %d, direct %d", len(loaded.Spans), len(direct.Spans))
	}
	opt := Options{MinWindow: 3}
	ra, rb := Analyze(direct, opt), Analyze(loaded, opt)
	if len(ra.Stragglers) != 1 || len(rb.Stragglers) != 1 {
		t.Fatalf("stragglers: direct %+v, loaded %+v, want one each", ra.Stragglers, rb.Stragglers)
	}
	if ra.Stragglers[0] != rb.Stragglers[0] {
		t.Errorf("straggler findings diverge: direct %+v, loaded %+v", ra.Stragglers[0], rb.Stragglers[0])
	}
}

// TestFromSeries: the coarse result-based report (per-rank step series,
// no spans) attributes the same straggler.
func TestFromSeries(t *testing.T) {
	iters := make([]int, 40)
	base := make([]float64, 40)
	slow := make([]float64, 40)
	for i := range iters {
		iters[i] = i
		base[i] = 0.001
		slow[i] = 0.001
		if i >= 15 && i < 35 {
			slow[i] = 0.004
		}
	}
	steps := []StepSeries{
		{Rank: 0, Iters: iters, Seconds: base},
		{Rank: 1, Iters: iters, Seconds: base},
		{Rank: 2, Iters: iters, Seconds: slow},
	}
	phases := []PhaseTotal{{Name: "forward/backward", Seconds: 1.2}, {Name: "collective", Seconds: 0.4}}
	rep := FromSeries("serve", 40, phases, steps, nil, Options{})
	if rep.Ranks != 3 || rep.Iterations != 40 {
		t.Fatalf("ranks=%d iters=%d, want 3, 40", rep.Ranks, rep.Iterations)
	}
	if len(rep.Stragglers) != 1 {
		t.Fatalf("stragglers = %+v, want one", rep.Stragglers)
	}
	f := rep.Stragglers[0]
	if f.Rank != 2 || f.From != 15 || f.Until != 35 {
		t.Errorf("finding = %+v, want rank 2 over [15,35)", f)
	}
	if len(rep.Phases) != 2 || rep.Phases[0].Share < 0.74 || rep.Phases[0].Share > 0.76 {
		t.Errorf("phase shares wrong: %+v", rep.Phases)
	}
}

func TestDetector(t *testing.T) {
	d := NewDetector(0.25, 4, 8)
	// Warmup: no flags even for wild values.
	for i := 0; i < 8; i++ {
		v := 1.0
		if i == 3 {
			v = 100
		}
		if _, bad := d.Observe("m", i, v); bad {
			t.Fatalf("flagged during warmup at %d", i)
		}
	}
	// Steady state with mild jitter: no flags.
	for i := 8; i < 40; i++ {
		v := 1.0 + 0.01*float64(i%5)
		if a, bad := d.Observe("m", i, v); bad {
			t.Fatalf("false positive at %d: %+v", i, a)
		}
	}
	// A 10x spike flags.
	a, bad := d.Observe("m", 40, 10)
	if !bad {
		t.Fatal("10x spike not flagged")
	}
	if a.Iteration != 40 || a.Metric != "m" || a.Z < 4 {
		t.Errorf("anomaly = %+v", a)
	}
	// The EWMA absorbs a sustained shift: after enough samples at the
	// new level, flagging stops.
	flags := 0
	for i := 41; i < 80; i++ {
		if _, bad := d.Observe("m", i, 10+0.01*float64(i%5)); bad {
			flags++
		}
	}
	if flags > 10 {
		t.Errorf("detector never adapted to the new level: %d flags after shift", flags)
	}
	if _, bad := d.Observe("m", 80, 10.02); bad {
		t.Error("still flagging at the adapted level")
	}
	// Separate metrics keep separate state.
	if _, bad := d.Observe("other", 0, 1e9); bad {
		t.Error("fresh metric flagged on first observation")
	}
}
