package analyze

import (
	"fmt"
	"math"
)

// Anomaly is one flagged sample: the metric's value sat Z standard
// deviations from its EWMA mean at the given iteration.
type Anomaly struct {
	Metric    string  `json:"metric"`
	Iteration int     `json:"iteration"`
	Value     float64 `json:"value"`
	Mean      float64 `json:"mean"`
	Z         float64 `json:"z"`
}

func (a Anomaly) String() string {
	return fmt.Sprintf("iter %d %s = %.6g (mean %.6g, z %.1f)",
		a.Iteration, a.Metric, a.Value, a.Mean, a.Z)
}

// ewma is one metric's running state: exponentially weighted mean and
// variance (West's recurrence), plus the warmup count.
type ewma struct {
	n    int
	mean float64
	vari float64
}

// Detector flags streaming anomalies with an EWMA z-score per metric:
// each observation is scored against the running mean/variance, then
// folded in — so a sustained level shift (a straggler window opening, a
// GC stall) flags at its onset and the detector re-adapts instead of
// alarming forever. Deterministic: the same observation sequence
// produces the same anomalies. Not safe for concurrent use.
type Detector struct {
	alpha  float64
	zthr   float64
	warmup int
	series map[string]*ewma
}

// NewDetector creates a detector. alpha is the EWMA smoothing factor in
// (0,1]; zthr the |z| threshold; warmup the per-metric observation
// count before flagging starts. Non-positive arguments select the
// defaults (0.25, 4, 8).
func NewDetector(alpha, zthr float64, warmup int) *Detector {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.25
	}
	if zthr <= 0 {
		zthr = 4
	}
	if warmup <= 0 {
		warmup = 8
	}
	return &Detector{alpha: alpha, zthr: zthr, warmup: warmup, series: map[string]*ewma{}}
}

// Observe scores one sample of the named metric and updates the running
// state. It reports the anomaly (and true) when the series is past
// warmup and |z| crosses the threshold. NaN/Inf samples are ignored.
func (d *Detector) Observe(metric string, iteration int, v float64) (Anomaly, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return Anomaly{}, false
	}
	s := d.series[metric]
	if s == nil {
		s = &ewma{}
		d.series[metric] = s
	}
	var a Anomaly
	bad := false
	if s.n == 0 {
		s.mean = v
	} else if s.n >= d.warmup {
		// Floor the deviation so a constant series doesn't turn float
		// jitter into infinite z-scores.
		sd := math.Sqrt(s.vari)
		if floor := 1e-9 + 1e-6*math.Abs(s.mean); sd < floor {
			sd = floor
		}
		z := (v - s.mean) / sd
		if math.Abs(z) >= d.zthr {
			a = Anomaly{Metric: metric, Iteration: iteration, Value: v, Mean: s.mean, Z: z}
			bad = true
		}
	}
	delta := v - s.mean
	s.mean += d.alpha * delta
	s.vari = (1 - d.alpha) * (s.vari + d.alpha*delta*delta)
	s.n++
	return a, bad
}
