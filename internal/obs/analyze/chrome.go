package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// chromeEvent mirrors the subset of the Chrome trace-event schema the
// obs tracer writes: complete ("X"), metadata ("M") and counter ("C")
// events with microsecond timestamps.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

// LoadChromeTrace parses a Chrome trace-event JSON document — either
// the {"traceEvents": [...]} object form obs.WriteChromeTrace emits or
// a bare event array — back into an analyzable Trace. Counter and
// metadata events inform the process/lane names; only complete ("X")
// events become spans.
func LoadChromeTrace(r io.Reader) (*Trace, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil || doc.TraceEvents == nil {
		var arr []chromeEvent
		if aerr := json.Unmarshal(blob, &arr); aerr != nil {
			if err == nil {
				err = aerr
			}
			return nil, fmt.Errorf("not a Chrome trace-event document: %w", err)
		}
		doc.TraceEvents = arr
	}
	tr := &Trace{LaneNames: map[int]string{}}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			name, _ := ev.Args["name"].(string)
			switch ev.Name {
			case "process_name":
				tr.Process = name
			case "thread_name":
				tr.LaneNames[ev.Tid] = name
			}
		case "X":
			iter := -1
			if it, ok := ev.Args["iteration"]; ok {
				if f, ok := it.(float64); ok {
					iter = int(f)
				}
			}
			tr.Spans = append(tr.Spans, Span{
				Lane: ev.Tid, Name: ev.Name, Iter: iter,
				Start: int64(math.Round(ev.Ts * 1e3)),
				Dur:   int64(math.Round(ev.Dur * 1e3)),
			})
		}
	}
	if len(tr.Spans) == 0 {
		return nil, fmt.Errorf("trace contains no complete (ph=X) span events")
	}
	return tr, nil
}
