package analyze

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// fmtDur renders nanoseconds at a stable, scale-appropriate precision.
// Pure integer-to-string math, so identical inputs render identically.
func fmtDur(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// Fprint renders the report as the fixed-layout text the CLIs print.
// The output is a pure function of the report, byte-stable across
// replays of the same trace.
func (r *Report) Fprint(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("trace analytics — %s: %d ranks, %d iterations\n", r.Process, r.Ranks, r.Iterations)

	if len(r.Phases) > 0 {
		p("\nphases:\n")
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		coarse := true
		for _, ph := range r.Phases {
			if ph.Count > 0 {
				coarse = false
				break
			}
		}
		if coarse {
			fmt.Fprintf(tw, "  phase\ttotal\tshare\n")
			for _, ph := range r.Phases {
				fmt.Fprintf(tw, "  %s\t%s\t%.1f%%\n", ph.Name, fmtDur(ph.TotalNS), 100*ph.Share)
			}
		} else {
			fmt.Fprintf(tw, "  phase\tcount\ttotal\tp50\tp99\tshare\n")
			for _, ph := range r.Phases {
				fmt.Fprintf(tw, "  %s\t%d\t%s\t%s\t%s\t%.1f%%\n",
					ph.Name, ph.Count, fmtDur(ph.TotalNS), fmtDur(ph.P50NS), fmtDur(ph.P99NS), 100*ph.Share)
			}
		}
		if err == nil {
			err = tw.Flush()
		}
	}

	if len(r.RankStats) > 0 {
		p("\ncritical path (gating rank = max work per iteration):\n")
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprintf(tw, "  rank\titers\tgated\twork\tcoll. wait\tattributed wait\n")
		for _, s := range r.RankStats {
			fmt.Fprintf(tw, "  %d\t%d\t%d\t%s\t%s\t%s\n",
				s.Rank, s.Iterations, s.Gated, fmtDur(s.WorkNS), fmtDur(s.WaitNS), fmtDur(s.AttributedNS))
		}
		if err == nil {
			err = tw.Flush()
		}
	}

	if len(r.Slowest) > 0 {
		p("\nslowest iterations:\n")
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprintf(tw, "  iter\tgating rank\twork\tattributed wait\n")
		for _, s := range r.Slowest {
			fmt.Fprintf(tw, "  %d\t%d\t%s\t%s\n", s.Iteration, s.Rank, fmtDur(s.WorkNS), fmtDur(s.WaitNS))
		}
		if err == nil {
			err = tw.Flush()
		}
	}

	if len(r.Stragglers) > 0 {
		p("\nstragglers:\n")
		for _, f := range r.Stragglers {
			p("  rank %d: %.1fx median work over iterations [%d,%d) — %d flagged, %d gated\n",
				f.Rank, f.MeanRatio, f.From, f.Until, f.Flagged, f.Gated)
		}
	}

	if len(r.Anomalies) > 0 {
		p("\nanomalies:\n")
		for _, a := range r.Anomalies {
			p("  %s\n", a.String())
		}
	}

	if len(r.Verdicts) > 0 {
		p("\nverdicts:\n")
		for _, v := range r.Verdicts {
			p("  - %s\n", v)
		}
	}
	return err
}
