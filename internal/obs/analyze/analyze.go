// Package analyze turns the raw telemetry recorded by internal/obs into
// diagnoses: per-phase duration statistics, per-iteration cross-rank
// critical paths with collective wait attributed to the gating (slowest)
// rank, straggler windows with named culprit ranks, and streaming
// EWMA/z-score anomaly detection that works both post-hoc over traces
// and live over train.Progress-shaped series.
//
// The analysis is a pure function of its input: the same trace bytes
// produce the same Report, byte for byte, across replays — CI depends
// on that to diff reports.
package analyze

import (
	"fmt"
	"slices"

	"repro/internal/obs"
)

// Span is one completed trace span: Lane is the rank (or service lane),
// Iter the tagged iteration (-1 when untagged), times in nanoseconds
// since the trace epoch.
type Span struct {
	Lane  int
	Name  string
	Iter  int
	Start int64
	Dur   int64
}

// Trace is the analyzer's neutral input: built from a live Tracer
// (FromTracer) or parsed back from an exported Chrome trace file
// (LoadChromeTrace).
type Trace struct {
	Process   string
	LaneNames map[int]string
	Spans     []Span
}

// FromTracer snapshots a live tracer into an analyzable Trace.
func FromTracer(t *obs.Tracer) *Trace {
	process, recs := t.Snapshot()
	tr := &Trace{Process: process, LaneNames: map[int]string{}}
	for _, r := range recs {
		tr.LaneNames[r.Lane] = r.LaneName
		tr.Spans = append(tr.Spans, Span{
			Lane: r.Lane, Name: r.Name, Iter: r.Iter, Start: r.Start, Dur: r.Dur,
		})
	}
	return tr
}

// Options tunes the analysis; the zero value means "all defaults".
type Options struct {
	// StragglerRatio flags an iteration for a rank when its work is at
	// least this multiple of the median work of the other ranks.
	// Default 2.
	StragglerRatio float64
	// MinWindow is the minimum number of flagged iterations for a
	// straggler window to be reported. Default 3.
	MinWindow int
	// MaxGap is the largest run of unflagged iterations absorbed into a
	// window. Default 2.
	MaxGap int
	// TopSlow is how many slowest iterations the report lists. Default 5.
	TopSlow int
	// Alpha is the EWMA smoothing factor of the anomaly detector.
	// Default 0.25.
	Alpha float64
	// ZThreshold is the |z| score at which a sample is anomalous.
	// Default 4.
	ZThreshold float64
	// Warmup is the number of observations per series before the
	// detector may flag. Default 8.
	Warmup int
}

func (o Options) withDefaults() Options {
	if o.StragglerRatio <= 0 {
		o.StragglerRatio = 2
	}
	if o.MinWindow <= 0 {
		o.MinWindow = 3
	}
	if o.MaxGap < 0 {
		o.MaxGap = 0
	} else if o.MaxGap == 0 {
		o.MaxGap = 2
	}
	if o.TopSlow <= 0 {
		o.TopSlow = 5
	}
	if o.Alpha <= 0 || o.Alpha > 1 {
		o.Alpha = 0.25
	}
	if o.ZThreshold <= 0 {
		o.ZThreshold = 4
	}
	if o.Warmup <= 0 {
		o.Warmup = 8
	}
	return o
}

// PhaseStat summarizes one span name across all ranks and iterations.
// Count/P50/P99 are zero in result-based reports (FromSeries), which
// only know aggregate totals.
type PhaseStat struct {
	Name    string  `json:"name"`
	Count   int     `json:"count,omitempty"`
	TotalNS int64   `json:"total_ns"`
	P50NS   int64   `json:"p50_ns,omitempty"`
	P99NS   int64   `json:"p99_ns,omitempty"`
	Share   float64 `json:"share"`
}

// RankStat aggregates one rank's role in the critical path. Work is
// compute-side time (everything but the collective), Wait is collective
// time, Attributed is the other ranks' wait charged to this rank in the
// iterations it gated.
type RankStat struct {
	Rank         int   `json:"rank"`
	Iterations   int   `json:"iterations"`
	Gated        int   `json:"gated"`
	WorkNS       int64 `json:"work_ns"`
	WaitNS       int64 `json:"wait_ns"`
	AttributedNS int64 `json:"attributed_wait_ns"`
}

// CriticalStep is one iteration on the critical path: the gating rank,
// its work, and the wait it imposed on the others.
type CriticalStep struct {
	Iteration int   `json:"iteration"`
	Rank      int   `json:"rank"`
	WorkNS    int64 `json:"work_ns"`
	WaitNS    int64 `json:"attributed_wait_ns"`
}

// StragglerFinding is a contiguous window of iterations in which one
// rank's work dominated the others — a FaultPlan straggler turned into
// a named culprit. Until is exclusive, matching comm.Straggler windows.
type StragglerFinding struct {
	Rank      int     `json:"rank"`
	From      int     `json:"from"`
	Until     int     `json:"until"`
	Flagged   int     `json:"flagged"`
	Gated     int     `json:"gated"`
	MeanRatio float64 `json:"mean_ratio"`
}

// Report is the full analysis output; it marshals to deterministic JSON
// and renders as deterministic text via Fprint.
type Report struct {
	Process    string             `json:"process"`
	Ranks      int                `json:"ranks"`
	Iterations int                `json:"iterations"`
	Phases     []PhaseStat        `json:"phases"`
	RankStats  []RankStat         `json:"rank_stats,omitempty"`
	Slowest    []CriticalStep     `json:"slowest_iterations,omitempty"`
	Stragglers []StragglerFinding `json:"stragglers,omitempty"`
	Anomalies  []Anomaly          `json:"anomalies,omitempty"`
	Verdicts   []string           `json:"verdicts"`
}

// trainPhases is the canonical ordering of the training-iteration span
// names in reports; names outside it sort after, alphabetically.
var trainPhases = []string{
	"iteration", "sample", "forward/backward", "stall", "select",
	"encode", "decode", "collective", "apply",
}

// workPhases are the compute-side phases summed into a rank's
// per-iteration work: everything it does outside the collective,
// including simulated stall time.
var workPhases = map[string]bool{
	"sample": true, "forward/backward": true, "stall": true,
	"select": true, "encode": true, "decode": true, "apply": true,
}

func phaseOrder(name string) int {
	for i, p := range trainPhases {
		if p == name {
			return i
		}
	}
	return len(trainPhases)
}

// cell is one (rank, iteration) of the work/wait matrix.
type cell struct {
	work int64
	wait int64
	seen bool
}

// Analyze folds a trace into a Report: phase stats, critical path and
// wait attribution, straggler windows, and anomalies over per-phase
// durations and per-rank step times.
func Analyze(tr *Trace, opt Options) *Report {
	opt = opt.withDefaults()
	rep := &Report{Process: tr.Process}

	// Phase stats over every span name present.
	durs := map[string][]int64{}
	for _, s := range tr.Spans {
		durs[s.Name] = append(durs[s.Name], s.Dur)
	}
	names := make([]string, 0, len(durs))
	for n := range durs {
		names = append(names, n)
	}
	slices.SortFunc(names, func(a, b string) int {
		if d := phaseOrder(a) - phaseOrder(b); d != 0 {
			return d
		}
		return cmpStr(a, b)
	})
	iterTotal := int64(0)
	for _, d := range durs["iteration"] {
		iterTotal += d
	}
	for _, n := range names {
		ds := durs[n]
		slices.Sort(ds)
		total := int64(0)
		for _, d := range ds {
			total += d
		}
		st := PhaseStat{
			Name: n, Count: len(ds), TotalNS: total,
			P50NS: quantileNS(ds, 0.50), P99NS: quantileNS(ds, 0.99),
		}
		if iterTotal > 0 {
			st.Share = float64(total) / float64(iterTotal)
		}
		rep.Phases = append(rep.Phases, st)
	}

	// Work/wait matrix over iteration-tagged spans of training phases.
	iters, ranks, m := buildMatrix(tr)
	rep.Iterations = len(iters)
	rep.Ranks = len(ranks)
	attribute(rep, iters, ranks, m, opt)

	// Anomalies: per-phase duration series (max across ranks per
	// iteration), then per-rank work series — deterministic feed order.
	det := NewDetector(opt.Alpha, opt.ZThreshold, opt.Warmup)
	phaseMax := map[string][]int64{}
	iterIdx := make(map[int]int, len(iters))
	for i, it := range iters {
		iterIdx[it] = i
	}
	for _, s := range tr.Spans {
		if s.Iter < 0 {
			continue
		}
		if _, ok := iterIdx[s.Iter]; !ok {
			continue
		}
		if phaseOrder(s.Name) >= len(trainPhases) {
			continue
		}
		series := phaseMax[s.Name]
		if series == nil {
			series = make([]int64, len(iters))
			phaseMax[s.Name] = series
		}
		if i := iterIdx[s.Iter]; s.Dur > series[i] {
			series[i] = s.Dur
		}
	}
	for _, n := range trainPhases {
		series, ok := phaseMax[n]
		if !ok {
			continue
		}
		for i, it := range iters {
			if a, bad := det.Observe("phase:"+n, it, float64(series[i])/1e9); bad {
				rep.Anomalies = append(rep.Anomalies, a)
			}
		}
	}
	for ri, r := range ranks {
		metric := fmt.Sprintf("rank %d step", r)
		for ii, it := range iters {
			if !m[ri][ii].seen {
				continue
			}
			if a, bad := det.Observe(metric, it, float64(m[ri][ii].work)/1e9); bad {
				rep.Anomalies = append(rep.Anomalies, a)
			}
		}
	}

	rep.verdicts(opt)
	return rep
}

// buildMatrix extracts sorted iteration/rank axes and the dense
// work/wait matrix [rankIdx][iterIdx] from a trace. A rank is any lane
// carrying iteration-tagged training-phase spans.
func buildMatrix(tr *Trace) (iters, ranks []int, m [][]cell) {
	iterSet := map[int]bool{}
	rankSet := map[int]bool{}
	for _, s := range tr.Spans {
		if s.Iter < 0 || phaseOrder(s.Name) >= len(trainPhases) {
			continue
		}
		iterSet[s.Iter] = true
		rankSet[s.Lane] = true
	}
	for it := range iterSet {
		iters = append(iters, it)
	}
	for r := range rankSet {
		ranks = append(ranks, r)
	}
	slices.Sort(iters)
	slices.Sort(ranks)
	iterIdx := make(map[int]int, len(iters))
	for i, it := range iters {
		iterIdx[it] = i
	}
	rankIdx := make(map[int]int, len(ranks))
	for i, r := range ranks {
		rankIdx[r] = i
	}
	m = make([][]cell, len(ranks))
	for i := range m {
		m[i] = make([]cell, len(iters))
	}
	for _, s := range tr.Spans {
		if s.Iter < 0 || phaseOrder(s.Name) >= len(trainPhases) {
			continue
		}
		c := &m[rankIdx[s.Lane]][iterIdx[s.Iter]]
		c.seen = true
		switch {
		case workPhases[s.Name]:
			c.work += s.Dur
		case s.Name == "collective":
			c.wait += s.Dur
		}
	}
	return iters, ranks, m
}

// attribute computes per-rank stats, the slowest iterations and the
// straggler windows from the work/wait matrix, filling rep in place.
func attribute(rep *Report, iters, ranks []int, m [][]cell, opt Options) {
	if len(ranks) == 0 || len(iters) == 0 {
		return
	}
	stats := make([]RankStat, len(ranks))
	for i, r := range ranks {
		stats[i].Rank = r
	}
	steps := make([]CriticalStep, 0, len(iters))
	for ii, it := range iters {
		g, present := -1, 0
		for ri := range ranks {
			c := m[ri][ii]
			if !c.seen {
				continue
			}
			present++
			stats[ri].Iterations++
			stats[ri].WorkNS += c.work
			stats[ri].WaitNS += c.wait
			if g < 0 || c.work > m[g][ii].work {
				g = ri
			}
		}
		if g < 0 {
			continue
		}
		stats[g].Gated++
		attributed := int64(0)
		for ri := range ranks {
			if ri != g && m[ri][ii].seen {
				attributed += m[ri][ii].wait
			}
		}
		stats[g].AttributedNS += attributed
		if present > 1 {
			steps = append(steps, CriticalStep{
				Iteration: it, Rank: ranks[g],
				WorkNS: m[g][ii].work, WaitNS: attributed,
			})
		} else {
			steps = append(steps, CriticalStep{Iteration: it, Rank: ranks[g], WorkNS: m[g][ii].work})
		}
	}
	rep.RankStats = stats

	slow := slices.Clone(steps)
	slices.SortStableFunc(slow, func(a, b CriticalStep) int {
		if a.WorkNS != b.WorkNS {
			if a.WorkNS > b.WorkNS {
				return -1
			}
			return 1
		}
		return a.Iteration - b.Iteration
	})
	if len(slow) > opt.TopSlow {
		slow = slow[:opt.TopSlow]
	}
	rep.Slowest = slow

	// Straggler windows: flag (rank, iteration) where work dominates the
	// median of the other present ranks, then merge flags into windows.
	type flag struct {
		iter  int
		ratio float64
		gated bool
	}
	others := make([]int64, 0, len(ranks))
	for ri, r := range ranks {
		var flagged []flag
		for ii, it := range iters {
			if !m[ri][ii].seen {
				continue
			}
			others = others[:0]
			for rj := range ranks {
				if rj != ri && m[rj][ii].seen {
					others = append(others, m[rj][ii].work)
				}
			}
			if len(others) == 0 {
				continue
			}
			slices.Sort(others)
			med := others[len(others)/2]
			if len(others)%2 == 0 {
				med = (others[len(others)/2-1] + others[len(others)/2]) / 2
			}
			if med <= 0 {
				continue
			}
			ratio := float64(m[ri][ii].work) / float64(med)
			if ratio >= opt.StragglerRatio {
				flagged = append(flagged, flag{iter: it, ratio: ratio, gated: isGating(m, ri, ii)})
			}
		}
		// Merge flags into windows tolerating gaps of MaxGap iterations,
		// reporting windows with at least MinWindow flagged iterations.
		flush := func(win []flag) {
			if len(win) < opt.MinWindow {
				return
			}
			f := StragglerFinding{
				Rank: r, From: win[0].iter, Until: win[len(win)-1].iter + 1,
				Flagged: len(win),
			}
			sum := 0.0
			for _, fl := range win {
				sum += fl.ratio
				if fl.gated {
					f.Gated++
				}
			}
			f.MeanRatio = sum / float64(len(win))
			rep.Stragglers = append(rep.Stragglers, f)
		}
		start := 0
		for k := 1; k < len(flagged); k++ {
			if flagged[k].iter-flagged[k-1].iter > opt.MaxGap+1 {
				flush(flagged[start:k])
				start = k
			}
		}
		if len(flagged) > 0 {
			flush(flagged[start:])
		}
	}
}

// isGating reports whether rank ri has the strictly-maximal work at
// iteration ii (ties resolve to the lowest rank index, matching
// attribute's gating choice).
func isGating(m [][]cell, ri, ii int) bool {
	for rj := range m {
		if !m[rj][ii].seen {
			continue
		}
		if m[rj][ii].work > m[ri][ii].work {
			return false
		}
		if m[rj][ii].work == m[ri][ii].work && rj < ri {
			return false
		}
	}
	return true
}

// verdicts appends the human-readable conclusions, in a fixed order.
func (r *Report) verdicts(opt Options) {
	for _, f := range r.Stragglers {
		r.Verdicts = append(r.Verdicts, fmt.Sprintf(
			"straggler: rank %d ran %.1fx the median work of the other ranks over iterations [%d,%d) — gated the critical path in %d of %d flagged iterations",
			f.Rank, f.MeanRatio, f.From, f.Until, f.Gated, f.Flagged))
	}
	if len(r.Stragglers) == 0 && r.Ranks > 1 && len(r.RankStats) > 0 {
		top := r.RankStats[0]
		for _, s := range r.RankStats[1:] {
			if s.Gated > top.Gated {
				top = s
			}
		}
		r.Verdicts = append(r.Verdicts, fmt.Sprintf(
			"no straggler: the gating rank rotates (rank %d gated most, %d of %d iterations)",
			top.Rank, top.Gated, r.Iterations))
	}
	var work, wait, topAttr int64
	topRank := -1
	for _, s := range r.RankStats {
		work += s.WorkNS
		wait += s.WaitNS
		if s.AttributedNS > topAttr {
			topAttr, topRank = s.AttributedNS, s.Rank
		}
	}
	if work+wait > 0 && wait > 0 {
		v := fmt.Sprintf("collective wait is %.1f%% of traced rank time",
			100*float64(wait)/float64(work+wait))
		if topRank >= 0 && topAttr > 0 {
			v += fmt.Sprintf("; %.1f%% of it is attributed to rank %d gating",
				100*float64(topAttr)/float64(wait), topRank)
		}
		r.Verdicts = append(r.Verdicts, v)
	}
	if n := len(r.Anomalies); n > 0 {
		r.Verdicts = append(r.Verdicts, fmt.Sprintf(
			"%d anomalous samples flagged (EWMA z-score >= %g after %d-sample warmup)",
			n, opt.ZThreshold, opt.Warmup))
	} else {
		r.Verdicts = append(r.Verdicts, "no anomalies flagged")
	}
}

// PhaseTotal is one phase's aggregate time, for result-based reports.
type PhaseTotal struct {
	Name    string
	Seconds float64
}

// StepSeries is one rank's per-iteration step time in seconds — the
// shape of train.Result.RankStepTime.
type StepSeries struct {
	Rank    int
	Iters   []int
	Seconds []float64
}

// FromSeries builds a coarse Report from a finished run's aggregate
// phase totals and (when the run was fault-injected) per-rank step-time
// series, with collective wait modeled as the gap to the slowest rank.
// anomalies are the live detector's findings for the run, carried into
// the report verbatim; the function runs no detector of its own.
func FromSeries(process string, iterations int, phases []PhaseTotal, steps []StepSeries, anomalies []Anomaly, opt Options) *Report {
	opt = opt.withDefaults()
	rep := &Report{Process: process, Iterations: iterations, Anomalies: anomalies}
	var total float64
	for _, ph := range phases {
		total += ph.Seconds
	}
	for _, ph := range phases {
		st := PhaseStat{Name: ph.Name, TotalNS: int64(ph.Seconds * 1e9)}
		if total > 0 {
			st.Share = ph.Seconds / total
		}
		rep.Phases = append(rep.Phases, st)
	}
	if len(steps) > 0 {
		steps = slices.Clone(steps)
		slices.SortFunc(steps, func(a, b StepSeries) int { return a.Rank - b.Rank })
		iterSet := map[int]bool{}
		for _, s := range steps {
			for _, it := range s.Iters {
				iterSet[it] = true
			}
		}
		iters := make([]int, 0, len(iterSet))
		for it := range iterSet {
			iters = append(iters, it)
		}
		slices.Sort(iters)
		iterIdx := make(map[int]int, len(iters))
		for i, it := range iters {
			iterIdx[it] = i
		}
		ranks := make([]int, len(steps))
		m := make([][]cell, len(steps))
		for si, s := range steps {
			ranks[si] = s.Rank
			m[si] = make([]cell, len(iters))
			for k, it := range s.Iters {
				if k < len(s.Seconds) {
					c := &m[si][iterIdx[it]]
					c.seen = true
					c.work += int64(s.Seconds[k] * 1e9)
				}
			}
		}
		// Modeled wait: each rank waits out the gap to the slowest.
		for ii := range iters {
			var max int64
			for ri := range ranks {
				if m[ri][ii].seen && m[ri][ii].work > max {
					max = m[ri][ii].work
				}
			}
			for ri := range ranks {
				if m[ri][ii].seen {
					m[ri][ii].wait = max - m[ri][ii].work
				}
			}
		}
		rep.Ranks = len(ranks)
		if rep.Iterations == 0 {
			rep.Iterations = len(iters)
		}
		attribute(rep, iters, ranks, m, opt)
	}
	rep.verdicts(opt)
	return rep
}

// quantileNS returns the q-quantile of a sorted duration slice
// (nearest-rank).
func quantileNS(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func cmpStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
