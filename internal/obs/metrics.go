package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// PrometheusContentType is the Content-Type of the text exposition
// format produced by Registry.WritePrometheus.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// Counter is a monotonically increasing metric. Safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d must be >= 0).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a gauge holding a float64 (stored atomically as its
// bits). NaN and ±Inf are representable and render as the exposition
// format's literal NaN/+Inf/-Inf — the runtime health sampler sets NaN
// for quantiles with no observations yet.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the number of internal log2 buckets: bucket i counts
// observations with bits.Len64(ns) == i, i.e. durations in
// [2^(i-1), 2^i) ns, which spans 1ns through ~292 years in 64 buckets.
const histBuckets = 64

// Histogram records nanosecond durations into log2 buckets with no
// locks: one Observe is three atomic adds. Quantiles interpolated from
// the buckets are exact to within a factor of 2 — the right tool for
// latency distributions where the interesting signal is orders of
// magnitude, not microseconds.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumNS   atomic.Int64
}

// Observe records one duration in nanoseconds. Negative observations
// are clamped to zero.
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// HistSnapshot is a point-in-time summary of a histogram in seconds.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum_seconds"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// Snapshot returns the current count, sum and p50/p90/p99 estimates.
func (h *Histogram) Snapshot() HistSnapshot {
	var counts [histBuckets]int64
	total := int64(0)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return HistSnapshot{
		Count: h.count.Load(),
		Sum:   float64(h.sumNS.Load()) / 1e9,
		P50:   quantile(&counts, total, 0.50),
		P90:   quantile(&counts, total, 0.90),
		P99:   quantile(&counts, total, 0.99),
	}
}

// Quantile estimates the q-quantile (0 < q < 1) in seconds.
func (h *Histogram) Quantile(q float64) float64 {
	var counts [histBuckets]int64
	total := int64(0)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return quantile(&counts, total, q)
}

// quantile walks the cumulative bucket counts and interpolates linearly
// inside the bucket containing the q-th observation. Returns seconds.
func quantile(counts *[histBuckets]int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) >= rank {
			// Bucket i spans [lo, hi) ns with hi = 2^i, lo = hi/2
			// (bucket 0 is exactly 0ns).
			if i == 0 {
				return 0
			}
			hi := math.Ldexp(1, i)
			lo := hi / 2
			frac := (rank - float64(prev)) / float64(c)
			return (lo + frac*(lo)) / 1e9 // lo + frac*(hi-lo)
		}
	}
	return math.Ldexp(1, histBuckets-1) / 1e9
}

// promBounds are the published `le` bucket bounds in seconds: powers of
// 4 from 1µs to ~4.4 hours plus +Inf — 17 lines per histogram, enough
// resolution for dashboards without drowning the exposition.
var promBounds = func() []float64 {
	var b []float64
	for ns := float64(1e3); ns <= 16e12; ns *= 4 {
		b = append(b, ns/1e9)
	}
	return b
}()

// metricKind discriminates registry entries for exposition.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindFloatGauge
	kindGaugeFunc
	kindHistogram
)

// metric is one registered metric: a name, optional single label
// pair, help text, and exactly one of the value fields.
type metric struct {
	name string // full name including any {label="value"} suffix
	base string // name without labels (for HELP/TYPE grouping)
	kind metricKind
	help string
	c    *Counter
	g    *Gauge
	fg   *FloatGauge
	gf   func() int64
	h    *Histogram
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Registration is cheap but mutex-guarded; reads of
// the registered metrics themselves are lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

// register adds m or returns the existing entry with the same full name.
func (r *Registry) register(m metric) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[m.name]; ok {
		return i
	}
	r.byName[m.name] = len(r.metrics)
	r.metrics = append(r.metrics, m)
	return len(r.metrics) - 1
}

// Counter registers (or fetches) a counter. name may carry one static
// label, e.g. `deft_jobs{state="queued"}` — the base name groups the
// HELP/TYPE header.
func (r *Registry) Counter(name, help string) *Counter {
	i := r.register(metric{name: name, base: baseName(name), kind: kindCounter, help: help, c: &Counter{}})
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics[i].c
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	i := r.register(metric{name: name, base: baseName(name), kind: kindGauge, help: help, g: &Gauge{}})
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics[i].g
}

// FloatGauge registers (or fetches) a float-valued gauge.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	i := r.register(metric{name: name, base: baseName(name), kind: kindFloatGauge, help: help, fg: &FloatGauge{}})
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics[i].fg
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// for values the owner already tracks (queue depth, pool size). f must
// be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, f func() int64) {
	r.register(metric{name: name, base: baseName(name), kind: kindGaugeFunc, help: help, gf: f})
}

// Histogram registers (or fetches) a log-bucketed latency histogram.
// The name should end in _seconds; samples are observed in nanoseconds
// and exposed in seconds.
func (r *Registry) Histogram(name, help string) *Histogram {
	i := r.register(metric{name: name, base: baseName(name), kind: kindHistogram, help: help, h: &Histogram{}})
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics[i].h
}

// baseName strips a trailing {label="value"} block.
func baseName(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i]
		}
	}
	return name
}

// Label renders `name{key="value"}` with the value escaped per the
// Prometheus text exposition grammar: inside a label value, backslash,
// double-quote and newline must be written \\, \" and \n. Use this to
// build labeled metric names for registration.
func Label(name, key, value string) string {
	var b []byte
	b = append(b, name...)
	b = append(b, '{')
	b = append(b, key...)
	b = append(b, '=', '"')
	for i := 0; i < len(value); i++ {
		switch value[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, value[i])
		}
	}
	b = append(b, '"', '}')
	return string(b)
}

// escapeHelp escapes a HELP line's text: backslash and newline only
// (double quotes are legal in help text).
func escapeHelp(s string) string {
	ok := true
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' || s[i] == '\n' {
			ok = false
			break
		}
	}
	if ok {
		return s
	}
	var b []byte
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return string(b)
}

// promFloat renders a float sample value: finite values in Go's
// shortest-round-trip form, the specials as the grammar's literal
// NaN/+Inf/-Inf tokens.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), sorted by name so the output
// is deterministic. Histograms expose cumulative _bucket lines over
// promBounds plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()

	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].base != ms[j].base {
			return ms[i].base < ms[j].base
		}
		return ms[i].name < ms[j].name
	})

	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	lastBase := ""
	for _, m := range ms {
		if m.base != lastBase {
			lastBase = m.base
			typ := "counter"
			switch m.kind {
			case kindGauge, kindFloatGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if m.help != "" {
				p("# HELP %s %s\n", m.base, escapeHelp(m.help))
			}
			p("# TYPE %s %s\n", m.base, typ)
		}
		switch m.kind {
		case kindCounter:
			p("%s %d\n", m.name, m.c.Value())
		case kindGauge:
			p("%s %d\n", m.name, m.g.Value())
		case kindFloatGauge:
			p("%s %s\n", m.name, promFloat(m.fg.Value()))
		case kindGaugeFunc:
			p("%s %d\n", m.name, m.gf())
		case kindHistogram:
			writePromHistogram(p, m.name, m.h)
		}
	}
	return err
}

// writePromHistogram emits the cumulative bucket/sum/count lines for
// one histogram in seconds.
func writePromHistogram(p func(string, ...any), name string, h *Histogram) {
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	cum := int64(0)
	bi := 0
	for _, bound := range promBounds {
		// Internal bucket i holds durations < 2^i ns; fold every
		// internal bucket whose upper edge fits under this bound.
		for bi < histBuckets && math.Ldexp(1, bi)/1e9 <= bound+1e-18 {
			cum += counts[bi]
			bi++
		}
		p("%s_bucket{le=\"%g\"} %d\n", name, bound, cum)
	}
	total := int64(0)
	for i := range counts {
		total += counts[i]
	}
	p("%s_bucket{le=\"+Inf\"} %d\n", name, total)
	p("%s_sum %g\n", name, float64(h.sumNS.Load())/1e9)
	p("%s_count %d\n", name, h.count.Load())
}
