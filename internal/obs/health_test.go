package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"runtime/metrics"
	"strings"
	"testing"
	"time"
)

// traceCounterEvents decodes a Chrome trace and returns the ph:"C"
// counter events by name.
func traceCounterEvents(t *testing.T, tracer *Tracer) map[string][]float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	out := map[string][]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "C" {
			continue
		}
		v, _ := ev.Args["value"].(float64)
		out[ev.Name] = append(out[ev.Name], v)
	}
	return out
}

// TestHealthSamplerPopulatesRegistryAndTrace: one poll fills the
// deft_runtime_* gauges with live values and lands counter events in the
// trace timeline.
func TestHealthSamplerPopulatesRegistryAndTrace(t *testing.T) {
	reg := NewRegistry()
	tracer := NewTracer("health-test")
	h := NewHealthSampler(reg, tracer)
	h.Sample()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE deft_runtime_heap_bytes gauge",
		"deft_runtime_heap_bytes ",
		"deft_runtime_goroutines ",
		"deft_runtime_gc_cycles ",
		"# TYPE deft_runtime_gc_pause_p99_seconds gauge",
		"deft_runtime_gc_pause_p99_seconds ",
		"deft_runtime_sched_latency_p99_seconds ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q\n%s", want, out)
		}
	}
	if h.heap.Value() <= 0 {
		t.Errorf("heap gauge = %d, want > 0 (a live process has a heap)", h.heap.Value())
	}
	if h.goroutines.Value() <= 0 {
		t.Errorf("goroutines gauge = %d, want > 0", h.goroutines.Value())
	}

	counters := traceCounterEvents(t, tracer)
	for _, name := range []string{"heap_bytes", "goroutines"} {
		if len(counters[name]) == 0 {
			t.Errorf("trace missing counter track %q (got %v)", name, counters)
		} else if counters[name][0] <= 0 {
			t.Errorf("counter %q = %v, want > 0", name, counters[name][0])
		}
	}
}

// TestHealthSamplerStartStop: Start polls immediately, Stop waits for the
// goroutine and takes a final sample, double Start is a no-op and Stop
// without Start is safe.
func TestHealthSamplerStartStop(t *testing.T) {
	tracer := NewTracer("health-test")
	h := NewHealthSampler(nil, tracer)
	h.Stop() // no-op before Start

	h.Start(time.Hour) // interval never fires: immediate + final samples only
	h.Start(time.Hour) // double Start must not spawn a second poller
	h.Stop()
	h.Stop() // idempotent

	counters := traceCounterEvents(t, tracer)
	if got := len(counters["heap_bytes"]); got != 2 {
		t.Errorf("heap_bytes samples = %d, want 2 (immediate on Start + final on Stop)", got)
	}
}

// TestHealthSamplerNilDestinations: a sampler with neither registry nor
// tracer still polls without panicking (the deft-train path uses a nil
// registry).
func TestHealthSamplerNilDestinations(t *testing.T) {
	h := NewHealthSampler(nil, nil)
	h.Sample()
	h = NewHealthSampler(nil, NewTracer("t"))
	h.Sample()
	h = NewHealthSampler(NewRegistry(), nil)
	h.Sample()
}

// TestHistQuantile pins the bucket arithmetic on synthetic runtime
// histograms: upper-edge estimates, +Inf clamping, NaN on empty.
func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{10, 80, 10},
		Buckets: []float64{0, 1, 2, math.Inf(1)},
	}
	if got := histQuantile(h, 0.5); got != 2 {
		t.Errorf("p50 = %v, want 2 (upper edge of the bucket holding the median)", got)
	}
	// p99 lands in the +Inf bucket: clamp to the last finite edge.
	if got := histQuantile(h, 0.99); got != 2 {
		t.Errorf("p99 = %v, want 2 (clamped below +Inf)", got)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0, 0}, Buckets: []float64{0, 1, 2}}
	if got := histQuantile(empty, 0.99); !math.IsNaN(got) {
		t.Errorf("empty histogram quantile = %v, want NaN", got)
	}
	if got := histQuantile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("nil histogram quantile = %v, want NaN", got)
	}
	// All mass in the first bucket: its upper edge.
	one := &metrics.Float64Histogram{Counts: []uint64{5, 0}, Buckets: []float64{0, 0.5, 1}}
	if got := histQuantile(one, 0.99); got != 0.5 {
		t.Errorf("single-bucket p99 = %v, want 0.5", got)
	}
}
