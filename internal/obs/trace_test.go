package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestChromeTraceStructure validates the exported document against the
// Chrome trace-event format Perfetto accepts: a JSON object with a
// traceEvents array whose entries carry ph/pid/tid, metadata ("M")
// events naming process and threads, and complete ("X") events with
// non-negative microsecond ts/dur.
func TestChromeTraceStructure(t *testing.T) {
	tr := NewTracer("test-proc")
	lane := tr.Lane(0, "rank 0")
	for iter := 0; iter < 3; iter++ {
		lane.Start(PhaseIteration, iter)
		lane.Start(PhaseForwardBackward, iter)
		time.Sleep(time.Microsecond)
		lane.Stop()
		lane.Start(PhaseCollective, iter)
		lane.Stop()
		lane.Stop()
	}
	tr.Lane(1, "rank 1").Start(PhaseSelect, 0)
	tr.Lane(1, "rank 1").Stop()
	tr.RecordSpan(100, "serve", "attempt", 2, time.Now().Add(-time.Millisecond), time.Now())

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	var metaNames, spanNames []string
	complete := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metaNames = append(metaNames, ev.Name)
			if ev.Args["name"] == nil {
				t.Errorf("metadata event %q missing args.name", ev.Name)
			}
		case "X":
			complete++
			spanNames = append(spanNames, ev.Name)
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("event %q has negative ts/dur (%v/%v)", ev.Name, ev.Ts, ev.Dur)
			}
			if ev.Pid != 1 {
				t.Errorf("event %q pid = %d, want 1", ev.Name, ev.Pid)
			}
		default:
			t.Errorf("unexpected ph %q", ev.Ph)
		}
	}
	joinedMeta := strings.Join(metaNames, ",")
	if !strings.Contains(joinedMeta, "process_name") || !strings.Contains(joinedMeta, "thread_name") {
		t.Errorf("missing process/thread metadata events: %v", metaNames)
	}
	// 3 iterations x (iteration + forward/backward + collective) on rank 0,
	// 1 select on rank 1, 1 recorded serve span.
	if complete != 11 {
		t.Errorf("complete events = %d, want 11", complete)
	}
	joined := strings.Join(spanNames, ",")
	for _, want := range []string{"iteration", "forward/backward", "collective", "select", "attempt"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing span %q (have %v)", want, spanNames)
		}
	}

	// Nested spans: the forward/backward span must sit inside its
	// iteration span's window.
	var iterTs, iterEnd, fbTs, fbEnd float64 = -1, -1, -1, -1
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Tid != 0 {
			continue
		}
		it, _ := ev.Args["iteration"].(float64)
		if it != 0 {
			continue
		}
		switch ev.Name {
		case "iteration":
			iterTs, iterEnd = ev.Ts, ev.Ts+ev.Dur
		case "forward/backward":
			fbTs, fbEnd = ev.Ts, ev.Ts+ev.Dur
		}
	}
	if iterTs < 0 || fbTs < 0 {
		t.Fatal("did not find iteration-0 spans on rank 0")
	}
	if fbTs < iterTs || fbEnd > iterEnd+1e-6 {
		t.Errorf("forward/backward [%v,%v] not nested in iteration [%v,%v]",
			fbTs, fbEnd, iterTs, iterEnd)
	}
}

// TestNilTracerNoOp exercises the disabled path: a nil tracer hands out
// nil lanes, every method is safe, and the exported trace is an empty
// document.
func TestNilTracerNoOp(t *testing.T) {
	var tr *Tracer
	lane := tr.Lane(0, "rank 0")
	if lane != nil {
		t.Fatal("nil tracer must return nil lane")
	}
	lane.Start(PhaseIteration, 0)
	lane.Stop()
	lane.Reset()
	tr.RecordSpan(0, "x", "y", -1, time.Now(), time.Now())
	if tr.SpanCount() != 0 {
		t.Errorf("nil tracer SpanCount = %d", tr.SpanCount())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil trace not valid JSON: %v", err)
	}
}

// TestNilLaneZeroAlloc pins the contract the training hot loop relies
// on: driving a nil lane through a full phase cycle allocates nothing.
func TestNilLaneZeroAlloc(t *testing.T) {
	var lane *Lane
	allocs := testing.AllocsPerRun(1000, func() {
		lane.Start(PhaseIteration, 7)
		lane.Start(PhaseForwardBackward, 7)
		lane.Stop()
		lane.Stop()
	})
	if allocs != 0 {
		t.Errorf("nil lane allocates %v per cycle, want 0", allocs)
	}
}

// TestLaneSteadyStateZeroAlloc: once the span buffer has grown, an
// enabled lane's Start/Stop cycle is also allocation-free (append into
// existing capacity), so tracing costs clock reads, not GC pressure.
func TestLaneSteadyStateZeroAlloc(t *testing.T) {
	tr := NewTracer("alloc")
	lane := tr.Lane(0, "rank 0")
	for i := 0; i < 4096; i++ {
		lane.Start(PhaseIteration, i)
		lane.Stop()
	}
	lane.Reset() // keep capacity, drop spans
	allocs := testing.AllocsPerRun(1000, func() {
		lane.Start(PhaseIteration, 1)
		lane.Stop()
	})
	if allocs != 0 {
		t.Errorf("warm lane allocates %v per span, want 0", allocs)
	}
}

// TestLaneOverflowDegradesGracefully: nesting past maxOpenSpans drops
// the deep spans but keeps the shallow ones balanced.
func TestLaneOverflowDegradesGracefully(t *testing.T) {
	tr := NewTracer("overflow")
	lane := tr.Lane(0, "rank 0")
	const depth = maxOpenSpans + 8
	for i := 0; i < depth; i++ {
		lane.Start(PhaseIteration, i)
	}
	for i := 0; i < depth; i++ {
		lane.Stop()
	}
	if got := tr.SpanCount(); got != maxOpenSpans {
		t.Errorf("spans recorded = %d, want %d", got, maxOpenSpans)
	}
	lane.Stop() // unmatched: must not panic or underflow
	lane.Start(PhaseApply, 0)
	lane.Stop()
	if got := tr.SpanCount(); got != maxOpenSpans+1 {
		t.Errorf("after recovery spans = %d, want %d", got, maxOpenSpans+1)
	}
}
