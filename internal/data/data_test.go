package data

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestVisionDeterministicPrototypes(t *testing.T) {
	a := NewVision(DefaultVisionConfig())
	b := NewVision(DefaultVisionConfig())
	xa, la := a.TestSet(8)
	xb, lb := b.TestSet(8)
	for i := range xa.Data {
		if xa.Data[i] != xb.Data[i] {
			t.Fatal("test sets differ across constructions")
		}
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("labels differ")
		}
	}
}

func TestVisionSampleShapes(t *testing.T) {
	v := NewVision(DefaultVisionConfig())
	cfg := v.Config()
	x, labels := v.Sample(rng.New(1), 5)
	sh := x.Shape()
	if sh[0] != 5 || sh[1] != cfg.Channels || sh[2] != cfg.Size || sh[3] != cfg.Size {
		t.Fatalf("shape %v", sh)
	}
	for _, l := range labels {
		if l < 0 || l >= cfg.Classes {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestVisionClassesSeparable(t *testing.T) {
	// Nearest-prototype classification on clean prototypes must beat
	// chance by a wide margin, i.e. the task is learnable.
	v := NewVision(DefaultVisionConfig())
	x, labels := v.Sample(rng.New(2), 200)
	cfg := v.Config()
	img := cfg.Channels * cfg.Size * cfg.Size
	correct := 0
	for b := 0; b < 200; b++ {
		best, bestC := math.Inf(1), -1
		for c := 0; c < cfg.Classes; c++ {
			d := 0.0
			for i := 0; i < img; i++ {
				diff := x.Data[b*img+i] - v.protos[c].Data[i]
				d += diff * diff
			}
			if d < best {
				best, bestC = d, c
			}
		}
		if bestC == labels[b] {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.5 {
		t.Fatalf("nearest-prototype accuracy %v too low; task not learnable", acc)
	}
}

func TestTextSampleShapesAndTargets(t *testing.T) {
	tx := NewText(DefaultTextConfig())
	cfg := tx.Config()
	x, targets := tx.Sample(rng.New(3), 4)
	if x.Dim(0) != 4 || x.Dim(1) != cfg.SeqLen {
		t.Fatalf("shape %v", x.Shape())
	}
	if len(targets) != 4*cfg.SeqLen {
		t.Fatalf("targets %d", len(targets))
	}
	for i, id := range x.Data {
		if id < 0 || int(id) >= cfg.Vocab {
			t.Fatalf("token %v out of vocab at %d", id, i)
		}
	}
	for _, tg := range targets {
		if tg < 0 || tg >= cfg.Vocab {
			t.Fatalf("target %d out of vocab", tg)
		}
	}
	// Targets must be the next-step inputs within a sequence.
	for b := 0; b < 4; b++ {
		for s := 0; s < cfg.SeqLen-1; s++ {
			if int(x.Data[b*cfg.SeqLen+s+1]) != targets[b*cfg.SeqLen+s] {
				t.Fatal("targets are not shifted inputs")
			}
		}
	}
}

func TestTextTransitionsLearnable(t *testing.T) {
	// Empirical successor distribution must be concentrated: the top
	// Branching successors should own ~90% of transitions.
	tx := NewText(DefaultTextConfig())
	cfg := tx.Config()
	r := rng.New(4)
	counts := map[[2]int]int{}
	fromCount := map[int]int{}
	for i := 0; i < 50000; i++ {
		w := r.Intn(cfg.Vocab)
		n := tx.step(r, w)
		counts[[2]int{w, n}]++
		fromCount[w]++
	}
	// For token 0, mass on its nominal successors:
	mass := 0.0
	for _, s := range tx.next[0] {
		mass += float64(counts[[2]int{0, s}])
	}
	if fromCount[0] > 100 {
		frac := mass / float64(fromCount[0])
		if frac < 0.75 {
			t.Fatalf("successor mass %v, want >= 0.75", frac)
		}
	}
}

func TestTextEntropyBound(t *testing.T) {
	tx := NewText(DefaultTextConfig())
	h := tx.EntropyBound()
	if h <= 0 || h >= math.Log(float64(tx.Config().Vocab)) {
		t.Fatalf("entropy bound %v out of (0, ln V)", h)
	}
	// Perfect-model perplexity floor is far below uniform.
	if math.Exp(h) > float64(tx.Config().Vocab)/2 {
		t.Fatalf("perplexity floor %v too close to uniform", math.Exp(h))
	}
}

func TestRecsysConstruction(t *testing.T) {
	d := NewRecsys(DefaultRecsysConfig())
	cfg := d.Config()
	for u := 0; u < cfg.Users; u++ {
		if len(d.positives[u]) != cfg.PosPerUser {
			t.Fatalf("user %d has %d positives, want %d", u, len(d.positives[u]), cfg.PosPerUser)
		}
		for _, v := range d.positives[u] {
			if v == d.heldOut[u] {
				t.Fatal("held-out item appears in training positives")
			}
			if v < 0 || v >= cfg.Items {
				t.Fatal("item out of range")
			}
		}
	}
}

func TestRecsysSampleLabels(t *testing.T) {
	d := NewRecsys(DefaultRecsysConfig())
	users, items, labels := d.Sample(rng.New(5), 10, 4)
	if len(users) != 50 || len(items) != 50 || len(labels) != 50 {
		t.Fatalf("batch sizes %d %d %d", len(users), len(items), len(labels))
	}
	for i := range labels {
		if labels[i] == 1 {
			if !d.posSet[users[i]][items[i]] {
				t.Fatal("positive sample not in user's positives")
			}
		} else {
			if d.posSet[users[i]][items[i]] || items[i] == d.heldOut[users[i]] {
				t.Fatal("negative sample collides with positives/held-out")
			}
		}
	}
}

func TestRecsysEvalLists(t *testing.T) {
	d := NewRecsys(DefaultRecsysConfig())
	users, cands := d.EvalLists(50)
	if len(users) != d.Config().Users {
		t.Fatalf("eval users %d", len(users))
	}
	for i, list := range cands {
		if len(list) != 51 {
			t.Fatalf("candidate list %d has %d entries", i, len(list))
		}
		if list[0] != d.heldOut[users[i]] {
			t.Fatal("first candidate must be the held-out positive")
		}
		seen := map[int]bool{}
		for _, v := range list {
			if seen[v] {
				t.Fatal("duplicate candidate")
			}
			seen[v] = true
		}
	}
}

func TestRecsysPlantedStructure(t *testing.T) {
	// Users' positives should overlap more with their own preferences than
	// random: check the held-out item is predictable from co-occurrence.
	// Weak sanity: two different users usually have different positives.
	d := NewRecsys(DefaultRecsysConfig())
	identical := 0
	for u := 1; u < d.Config().Users; u++ {
		same := true
		if len(d.positives[u]) != len(d.positives[0]) {
			same = false
		} else {
			for i := range d.positives[u] {
				if d.positives[u][i] != d.positives[0][i] {
					same = false
					break
				}
			}
		}
		if same {
			identical++
		}
	}
	if identical > d.Config().Users/10 {
		t.Fatalf("%d users share identical positives; structure degenerate", identical)
	}
}

func TestTextSampleIntoMatchesSample(t *testing.T) {
	ds := NewText(DefaultTextConfig())
	x1, t1 := ds.Sample(rng.New(9), 4)
	T := ds.Config().SeqLen
	x2 := x1.Clone()
	for i := range x2.Data {
		x2.Data[i] = -1
	}
	t2 := make([]int, 4*T)
	ds.SampleInto(rng.New(9), x2, t2)
	for i := range x1.Data {
		if x1.Data[i] != x2.Data[i] {
			t.Fatalf("id %d differs: %v vs %v", i, x1.Data[i], x2.Data[i])
		}
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("target %d differs: %d vs %d", i, t1[i], t2[i])
		}
	}
}

func TestTextSampleIntoPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ds := NewText(DefaultTextConfig())
	ds.SampleInto(rng.New(1), tensor.New(5), make([]int, 7))
}

func TestRecsysSampleIntoMatchesSampleAndReuses(t *testing.T) {
	ds := NewRecsys(DefaultRecsysConfig())
	u1, i1, l1 := ds.Sample(rng.New(5), 4, 3)
	u2, i2, l2 := ds.SampleInto(rng.New(5), 4, 3, nil, nil, nil)
	if len(u1) != len(u2) {
		t.Fatalf("lengths differ: %d vs %d", len(u1), len(u2))
	}
	for i := range u1 {
		if u1[i] != u2[i] || i1[i] != i2[i] || l1[i] != l2[i] {
			t.Fatalf("triple %d differs", i)
		}
	}
	// Handing the slices back must reuse their backing arrays.
	u3, i3, l3 := ds.SampleInto(rng.New(6), 4, 3, u2, i2, l2)
	if &u3[0] != &u2[0] || &i3[0] != &i2[0] || &l3[0] != &l2[0] {
		t.Fatal("SampleInto reallocated caller-owned scratch")
	}
}
