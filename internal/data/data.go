// Package data provides the synthetic datasets that stand in for the
// paper's CIFAR-10, WikiText-2 and MovieLens-20M (which are unavailable in
// this offline environment; see DESIGN.md §1 for the substitution
// rationale). Each generator is fully deterministic given its seed and
// produces train batches on demand plus a fixed held-out evaluation set,
// so data never needs to be stored.
package data

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// ---------------------------------------------------------------- vision --

// VisionConfig sizes the synthetic image-classification task.
type VisionConfig struct {
	Classes  int // number of classes (CIFAR-10 analogue: 10)
	Channels int
	Size     int     // image side length
	Noise    float64 // per-pixel Gaussian noise std
	Seed     uint64
}

// DefaultVisionConfig returns the configuration used by the experiments:
// small enough to train on one CPU core, structured enough that a CNN
// clearly beats chance.
func DefaultVisionConfig() VisionConfig {
	return VisionConfig{Classes: 10, Channels: 3, Size: 8, Noise: 0.4, Seed: 1}
}

// Vision generates images as noisy, randomly shifted class prototypes.
type Vision struct {
	cfg    VisionConfig
	protos []*tensor.Tensor // one prototype per class
}

// NewVision builds the dataset: class prototypes are fixed at construction.
// Prototypes are low-frequency (box-blurred noise, renormalised), so the
// ±1-pixel translation augmentation perturbs them only mildly — like real
// images, where nearby pixels correlate.
func NewVision(cfg VisionConfig) *Vision {
	r := rng.New(cfg.Seed)
	v := &Vision{cfg: cfg}
	for c := 0; c < cfg.Classes; c++ {
		p := tensor.Randn(r, 1, cfg.Channels, cfg.Size, cfg.Size)
		for pass := 0; pass < 2; pass++ {
			blur3x3(p, cfg.Channels, cfg.Size)
		}
		// Renormalise to zero mean / unit per-pixel std so the Noise
		// parameter keeps its meaning as a signal-to-noise knob.
		normalizeStd(p)
		v.protos = append(v.protos, p)
	}
	return v
}

// blur3x3 applies one pass of a circular 3×3 box blur per channel.
func blur3x3(p *tensor.Tensor, channels, size int) {
	tmp := make([]float64, size*size)
	for ch := 0; ch < channels; ch++ {
		base := ch * size * size
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				s := 0.0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						yy := (y + dy + size) % size
						xx := (x + dx + size) % size
						s += p.Data[base+yy*size+xx]
					}
				}
				tmp[y*size+x] = s / 9
			}
		}
		copy(p.Data[base:base+size*size], tmp)
	}
}

// normalizeStd rescales p to zero mean, unit std.
func normalizeStd(p *tensor.Tensor) {
	n := float64(p.Size())
	mean := 0.0
	for _, v := range p.Data {
		mean += v
	}
	mean /= n
	ss := 0.0
	for i := range p.Data {
		p.Data[i] -= mean
		ss += p.Data[i] * p.Data[i]
	}
	std := mathSqrt(ss / n)
	if std > 0 {
		for i := range p.Data {
			p.Data[i] /= std
		}
	}
}

func mathSqrt(x float64) float64 { return math.Sqrt(x) }

// Config returns the dataset configuration.
func (v *Vision) Config() VisionConfig { return v.cfg }

// Sample fills x ([B, C, S, S]) and labels with a fresh random batch drawn
// with the caller's RNG (shard determinism is the caller's concern: pass a
// per-(rank, iteration) split RNG).
func (v *Vision) Sample(r *rng.RNG, batch int) (x *tensor.Tensor, labels []int) {
	cfg := v.cfg
	x = tensor.New(batch, cfg.Channels, cfg.Size, cfg.Size)
	labels = make([]int, batch)
	v.SampleInto(r, x, labels)
	return x, labels
}

// SampleInto is the scratch-buffer form of Sample: x must be shaped
// [len(labels), C, S, S]. Reusing one batch across iterations keeps the
// training step allocation-free at the data layer. Prototype pixels are
// read by flat offset — the variadic At() accessor boxes its index list and
// was, by itself, the training loop's dominant allocation site.
func (v *Vision) SampleInto(r *rng.RNG, x *tensor.Tensor, labels []int) {
	cfg := v.cfg
	batch := len(labels)
	img := cfg.Channels * cfg.Size * cfg.Size
	if x.Size() != batch*img {
		panic(fmt.Sprintf("data: SampleInto batch tensor has %d elements, want %d", x.Size(), batch*img))
	}
	for b := 0; b < batch; b++ {
		c := r.Intn(cfg.Classes)
		labels[b] = c
		// Random circular shift: cheap translation augmentation.
		dy, dx := r.Intn(3)-1, r.Intn(3)-1
		proto := v.protos[c].Data
		for ch := 0; ch < cfg.Channels; ch++ {
			for y := 0; y < cfg.Size; y++ {
				sy := (y + dy + cfg.Size) % cfg.Size
				srow := proto[(ch*cfg.Size+sy)*cfg.Size:]
				drow := x.Data[b*img+(ch*cfg.Size+y)*cfg.Size:]
				// dx is in {-1,0,1}, so the wrapped source column can step
				// with a compare instead of a per-pixel modulo. The RNG
				// draw order (ascending xx) is unchanged.
				sx := dx
				if sx < 0 {
					sx += cfg.Size
				}
				for xx := 0; xx < cfg.Size; xx++ {
					drow[xx] = srow[sx] + r.Norm()*cfg.Noise
					sx++
					if sx == cfg.Size {
						sx = 0
					}
				}
			}
		}
	}
}

// TestSet returns a fixed evaluation set of n examples.
func (v *Vision) TestSet(n int) (*tensor.Tensor, []int) {
	r := rng.New(v.cfg.Seed ^ 0xdeadbeef)
	return v.Sample(r, n)
}

// ------------------------------------------------------------------ text --

// TextConfig sizes the synthetic language-modelling task.
type TextConfig struct {
	Vocab     int // vocabulary size (WikiText-2 analogue, scaled down)
	SeqLen    int // training sequence length (BPTT window)
	Branching int // likely successors per token (controls entropy)
	Seed      uint64
}

// DefaultTextConfig returns the experiment configuration.
func DefaultTextConfig() TextConfig {
	return TextConfig{Vocab: 64, SeqLen: 12, Branching: 3, Seed: 2}
}

// Text is a first-order Markov language: each token has Branching likely
// successors (90% of the mass, Zipf-tilted) and a uniform remainder. A
// model that learns the transitions reaches much lower perplexity than the
// unigram baseline, mirroring how LSTM perplexity behaves on real text.
type Text struct {
	cfg  TextConfig
	next [][]int     // likely successors per token
	cdf  [][]float64 // successor CDF (over next ∪ uniform tail)
}

// NewText builds the language.
func NewText(cfg TextConfig) *Text {
	r := rng.New(cfg.Seed)
	t := &Text{cfg: cfg}
	t.next = make([][]int, cfg.Vocab)
	t.cdf = make([][]float64, cfg.Vocab)
	for w := 0; w < cfg.Vocab; w++ {
		succ := make([]int, cfg.Branching)
		for i := range succ {
			succ[i] = r.Intn(cfg.Vocab)
		}
		t.next[w] = succ
		// 90% mass on successors (geometric tilt), 10% uniform tail.
		cdf := make([]float64, cfg.Branching)
		mass := 0.9
		acc := 0.0
		for i := range cdf {
			share := mass * math.Pow(0.5, float64(i))
			if i == cfg.Branching-1 {
				share = mass - acc // exact remainder
			}
			acc += share
			cdf[i] = acc
		}
		t.cdf[w] = cdf
	}
	return t
}

// Config returns the dataset configuration.
func (t *Text) Config() TextConfig { return t.cfg }

// step samples the next token after w.
func (t *Text) step(r *rng.RNG, w int) int {
	u := r.Float64()
	cdf := t.cdf[w]
	for i, c := range cdf {
		if u < c {
			return t.next[w][i]
		}
	}
	return r.Intn(t.cfg.Vocab)
}

// Sample returns input ids [B, T] and next-token targets [B, T].
func (t *Text) Sample(r *rng.RNG, batch int) (x *tensor.Tensor, targets []int) {
	T := t.cfg.SeqLen
	x = tensor.New(batch, T)
	targets = make([]int, batch*T)
	t.SampleInto(r, x, targets)
	return x, targets
}

// SampleInto is the scratch-buffer form of Sample: x must be shaped
// [B, SeqLen] with len(targets) == B·SeqLen. Reusing one batch across
// iterations keeps the language-model training step allocation-free at the
// data layer, like Vision.SampleInto.
func (t *Text) SampleInto(r *rng.RNG, x *tensor.Tensor, targets []int) {
	T := t.cfg.SeqLen
	if x.Size() != len(targets) || len(targets)%T != 0 {
		panic(fmt.Sprintf("data: Text.SampleInto got %d ids for %d targets (seqlen %d)",
			x.Size(), len(targets), T))
	}
	batch := len(targets) / T
	for b := 0; b < batch; b++ {
		w := r.Intn(t.cfg.Vocab)
		for step := 0; step < T; step++ {
			x.Data[b*T+step] = float64(w)
			w = t.step(r, w)
			targets[b*T+step] = w
		}
	}
}

// TestSet returns a fixed evaluation batch.
func (t *Text) TestSet(n int) (*tensor.Tensor, []int) {
	r := rng.New(t.cfg.Seed ^ 0xabcdef)
	return t.Sample(r, n)
}

// EntropyBound estimates (by Monte Carlo) the per-token entropy of the
// language in nats — the perplexity floor exp(H) a perfect model attains.
func (t *Text) EntropyBound() float64 {
	// Transition entropy is identical in structure for every token; compute
	// the exact entropy of one row's distribution.
	cfg := t.cfg
	h := 0.0
	prev := 0.0
	for i := 0; i < cfg.Branching; i++ {
		p := t.cdf[0][i] - prev
		prev = t.cdf[0][i]
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	tail := 1 - t.cdf[0][cfg.Branching-1]
	if tail > 0 {
		// Tail mass spread uniformly over the vocabulary.
		p := tail / float64(cfg.Vocab)
		h -= tail * math.Log(p)
	}
	return h
}

// ---------------------------------------------------------------- recsys --

// RecsysConfig sizes the synthetic implicit-feedback task.
type RecsysConfig struct {
	Users, Items int
	Factors      int     // planted latent dimensionality
	PosPerUser   int     // observed positives per user
	NoiseTemp    float64 // softmax temperature of preference sampling
	Seed         uint64
}

// DefaultRecsysConfig returns the experiment configuration.
func DefaultRecsysConfig() RecsysConfig {
	return RecsysConfig{Users: 128, Items: 256, Factors: 6, PosPerUser: 12, NoiseTemp: 1.0, Seed: 3}
}

// Recsys plants low-rank user/item structure and derives implicit-feedback
// interactions from it: each user's positives are sampled proportional to
// exp(u·v / temp), mimicking the head-heavy exposure of MovieLens. The
// held-out item per user supports leave-one-out HR@K evaluation exactly as
// the NCF paper (and this paper's hr@10 metric) prescribes.
type Recsys struct {
	cfg RecsysConfig

	positives [][]int // observed positives per user (excludes held-out)
	heldOut   []int   // one held-out positive per user
	posSet    []map[int]bool
}

// NewRecsys builds the dataset.
func NewRecsys(cfg RecsysConfig) *Recsys {
	r := rng.New(cfg.Seed)
	// Planted factors.
	uf := make([][]float64, cfg.Users)
	vf := make([][]float64, cfg.Items)
	for u := range uf {
		uf[u] = normVec(r, cfg.Factors)
	}
	for v := range vf {
		vf[v] = normVec(r, cfg.Factors)
	}
	d := &Recsys{cfg: cfg}
	d.positives = make([][]int, cfg.Users)
	d.heldOut = make([]int, cfg.Users)
	d.posSet = make([]map[int]bool, cfg.Users)
	scores := make([]float64, cfg.Items)
	for u := 0; u < cfg.Users; u++ {
		// Preference distribution over items.
		maxs := math.Inf(-1)
		for v := 0; v < cfg.Items; v++ {
			s := dot(uf[u], vf[v]) / cfg.NoiseTemp
			scores[v] = s
			if s > maxs {
				maxs = s
			}
		}
		total := 0.0
		for v := range scores {
			scores[v] = math.Exp(scores[v] - maxs)
			total += scores[v]
		}
		set := map[int]bool{}
		var items []int // in sampling order: earlier = more preferred draws
		for len(items) < cfg.PosPerUser+1 {
			// Inverse-CDF sample.
			target := r.Float64() * total
			acc := 0.0
			pick := cfg.Items - 1
			for v, s := range scores {
				acc += s
				if acc >= target {
					pick = v
					break
				}
			}
			if set[pick] {
				continue
			}
			set[pick] = true
			items = append(items, pick)
		}
		// Hold out the first sampled item: it is drawn from the head of the
		// user's preference distribution, so it is predictable from the
		// collaborative structure (holding out a tail item would make HR@10
		// a coin flip — see the data tests).
		d.heldOut[u] = items[0]
		d.positives[u] = items[1:]
		ps := map[int]bool{}
		for _, v := range d.positives[u] {
			ps[v] = true
		}
		d.posSet[u] = ps
	}
	return d
}

// Config returns the dataset configuration.
func (d *Recsys) Config() RecsysConfig { return d.cfg }

// Sample returns a training batch of (user, item, label) triples with
// negRatio sampled negatives per positive.
func (d *Recsys) Sample(r *rng.RNG, positives, negRatio int) (users, items []int, labels []float64) {
	return d.SampleInto(r, positives, negRatio, nil, nil, nil)
}

// SampleInto is the scratch-buffer form of Sample: the triples are
// appended into the passed slices after truncation to zero length, so a
// caller that hands back the previous batch's slices reallocates nothing
// once capacities have reached the batch size — the same contract as
// Vision.SampleInto.
func (d *Recsys) SampleInto(r *rng.RNG, positives, negRatio int, users, items []int, labels []float64) ([]int, []int, []float64) {
	users, items, labels = users[:0], items[:0], labels[:0]
	for p := 0; p < positives; p++ {
		u := r.Intn(d.cfg.Users)
		pos := d.positives[u][r.Intn(len(d.positives[u]))]
		users = append(users, u)
		items = append(items, pos)
		labels = append(labels, 1)
		for n := 0; n < negRatio; n++ {
			v := r.Intn(d.cfg.Items)
			for d.posSet[u][v] || v == d.heldOut[u] {
				v = r.Intn(d.cfg.Items)
			}
			users = append(users, u)
			items = append(items, v)
			labels = append(labels, 0)
		}
	}
	return users, items, labels
}

// EvalLists returns, per user, the held-out positive followed by nNeg
// sampled negatives — the candidate list for HR@K.
func (d *Recsys) EvalLists(nNeg int) (users []int, candidates [][]int) {
	r := rng.New(d.cfg.Seed ^ 0x5eed)
	for u := 0; u < d.cfg.Users; u++ {
		list := []int{d.heldOut[u]}
		used := map[int]bool{d.heldOut[u]: true}
		for len(list) < nNeg+1 {
			v := r.Intn(d.cfg.Items)
			if d.posSet[u][v] || used[v] {
				continue
			}
			used[v] = true
			list = append(list, v)
		}
		users = append(users, u)
		candidates = append(candidates, list)
	}
	return users, candidates
}

func normVec(r *rng.RNG, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Norm()
	}
	return v
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}
