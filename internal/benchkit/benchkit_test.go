package benchkit

import (
	"path/filepath"
	"testing"
)

func TestCompareFlagsRegressions(t *testing.T) {
	old := File{Results: []Result{
		{Name: "A", NsPerOp: 1000},
		{Name: "B", NsPerOp: 1000},
		{Name: "OnlyOld", NsPerOp: 1000},
	}}
	cur := File{Results: []Result{
		{Name: "A", NsPerOp: 1099}, // +9.9%: within tolerance
		{Name: "B", NsPerOp: 1200}, // +20%: regression
		{Name: "OnlyNew", NsPerOp: 5000},
	}}
	regs := Compare(old, cur, 0.10)
	if len(regs) != 1 || regs[0].Name != "B" {
		t.Fatalf("Compare = %+v, want exactly B", regs)
	}
	if regs[0].Ratio < 1.19 || regs[0].Ratio > 1.21 {
		t.Errorf("ratio = %v, want ~1.2", regs[0].Ratio)
	}
	if got := Compare(old, cur, 0.25); len(got) != 0 {
		t.Errorf("tolerance 25%% should pass, got %+v", got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	f := File{
		GoVersion: "go1.24.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		Results: []Result{
			{Name: "X", NsPerOp: 123.5, BytesPerOp: 64, AllocsPerOp: 2, Iterations: 100},
		},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || got.Results[0] != f.Results[0] || got.GoVersion != f.GoVersion {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestCasesRunQuickly executes every registered benchmark body for a single
// iteration as a smoke test, so a broken fixture fails `go test` rather
// than only the CLI.
func TestCasesRunQuickly(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark fixtures are slow")
	}
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			r := testing.Benchmark(func(b *testing.B) {
				if b.N > 1 {
					b.Skip("smoke only")
				}
				c.Bench(b)
			})
			_ = r
		})
	}
}
