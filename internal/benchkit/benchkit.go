// Package benchkit defines the performance microbenchmarks shared between
// the `go test -bench` harness (bench_test.go at the repo root) and the
// deft-bench CLI's -json mode, plus the BENCH_results.json encoding and the
// regression comparison used to gate future PRs.
//
// The benchmarked quantities are the ones the paper's evaluation is about:
// whole-vector top-k selection (the Top-k/CLT-k per-iteration kernel, Fig
// 7/9), DEFT's slowest-worker layer-wise selection, and one full training
// iteration of Algorithm 1 on the simulated cluster. Allocations per
// operation are tracked as a first-class metric beside wall time: the
// selection wall times the simulator reports are only meaningful when the
// hot path is not fighting the garbage collector.
package benchkit

import (
	"cmp"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"slices"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/rng"
	"repro/internal/shapes"
	"repro/internal/tensor"
	"repro/internal/topk"
	"repro/internal/train"
	"repro/internal/wire"
)

// Case is one registered microbenchmark.
type Case struct {
	Name  string
	Bench func(b *testing.B)
}

// Cases returns the registered microbenchmarks, in reporting order.
func Cases() []Case {
	return []Case{
		{Name: "SelectWholeVectorTopK", Bench: BenchSelectWholeVectorTopK},
		{Name: "SelectWholeVectorQuickSelect", Bench: BenchSelectWholeVectorQuickSelect},
		{Name: "SelectDEFTSlowestWorker", Bench: BenchSelectDEFTSlowestWorker},
		{Name: "TrainIteration", Bench: BenchTrainIteration},
		{Name: "GemmMLPForward", Bench: BenchGemmMLPForward},
		{Name: "GemmLSTMGates", Bench: BenchGemmLSTMGates},
		{Name: "GemmOddBlocked", Bench: BenchGemmOddBlocked},
		{Name: "GemmTransAGrad", Bench: BenchGemmTransAGrad},
		{Name: "GemmTransBBack", Bench: BenchGemmTransBBack},
		{Name: "GemmParallel1", Bench: BenchGemmParallel1},
		{Name: "GemmParallel4", Bench: BenchGemmParallel4},
		{Name: "ConvForward", Bench: BenchConvForward},
		{Name: "WireEncodeCOOVarint", Bench: BenchWireEncodeCOOVarint},
		{Name: "WireEncodeBitmap", Bench: BenchWireEncodeBitmap},
		{Name: "WireDecodeCOOVarint", Bench: BenchWireDecodeCOOVarint},
		{Name: "ObsSpanStartStop", Bench: BenchObsSpanStartStop},
		{Name: "HistObserve", Bench: BenchHistObserve},
		{Name: "DetectorObserve", Bench: BenchDetectorObserve},
	}
}

// BenchDetectorObserve measures one EWMA anomaly-detector observation —
// the per-record cost deft-serve pays on every live progress event (a map
// lookup plus a handful of float ops). Benchmarked over a non-flagging
// steady series so the measured path is the common one.
func BenchDetectorObserve(b *testing.B) {
	det := analyze.NewDetector(0, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Observe("step_time_s", i, 0.001+1e-7*float64(i&7))
	}
}

// BenchObsSpanStartStop measures one enabled-tracer span record — a
// Start/Stop pair on a warm lane: two monotonic clock reads plus an
// append into the reusable span buffer. This is the per-phase cost a
// traced training iteration pays (the disabled tracer pays one nil check,
// asserted separately by the train package's zero-alloc test).
func BenchObsSpanStartStop(b *testing.B) {
	tr := obs.NewTracer("bench")
	lane := tr.Lane(0, "rank 0")
	// Warm the span buffer so steady state is append-into-capacity.
	for i := 0; i < 4096; i++ {
		lane.Start(obs.PhaseSelect, i)
		lane.Stop()
	}
	lane.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lane.Start(obs.PhaseSelect, i)
		lane.Stop()
		if i&0xfff == 0xfff {
			lane.Reset() // bound the buffer; amortised away
		}
	}
}

// BenchHistObserve measures one histogram observation: three atomic adds
// with a bits.Len64 bucket index, the cost the serve hot paths pay per
// queue-wait / run-duration sample.
func BenchHistObserve(b *testing.B) {
	var h obs.Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)<<10 + 137)
	}
}

// SelectionFixture builds the kernel-level speedup fixture shared by the
// selection microbenches: the LSTM catalog scaled to ~1.36M gradients at
// d=0.001, partitioned for 16 workers, with the slowest worker's bin under
// LPT packing.
func SelectionFixture() (frags []core.Fragment, slowest []int, grad []float64, k int) {
	catalog := shapes.LSTMWiki().Scaled(0.01)
	grad = catalog.SyntheticGradients(42)
	k = int(0.001 * float64(len(grad)))
	frags = core.Partition(catalog.Layers(), 16, core.PartitionOpts{SecondStage: true})
	core.ComputeNorms(frags, grad)
	core.AssignK(frags, k)
	bins := core.Allocate(frags, 16, core.LPTPolicy)
	best := 0.0
	for _, bin := range bins {
		if c := core.WorkerCost(frags, bin); c > best {
			best, slowest = c, bin
		}
	}
	return frags, slowest, grad, k
}

// BenchSelectWholeVectorTopK measures the O(n log k) heap selection over
// the whole gradient vector — what Top-k and CLT-k pay every iteration.
func BenchSelectWholeVectorTopK(b *testing.B) {
	_, _, grad, k := SelectionFixture()
	var s topk.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topk.HeapTopKInto(grad, k, &s)
	}
}

// BenchSelectWholeVectorQuickSelect measures the expected-O(n) introselect
// variant over the same fixture.
func BenchSelectWholeVectorQuickSelect(b *testing.B) {
	_, _, grad, k := SelectionFixture()
	var s topk.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topk.QuickSelectTopKInto(grad, k, &s)
	}
}

// BenchSelectDEFTSlowestWorker measures the slowest worker's layer-wise
// selection under DEFT at n=16 — the per-iteration cost that bounds DEFT's
// iteration time (Eq. 5).
func BenchSelectDEFTSlowestWorker(b *testing.B) {
	frags, slowest, grad, _ := SelectionFixture()
	var s topk.Scratch
	var dst []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = core.SelectLayerwiseInto(frags, slowest, grad, dst, &s)
	}
}

// BenchTrainIteration measures one full iteration of Algorithm 1 — gradient
// step, DEFT selection, index union, value all-reduce, sparse update — on
// the 4-worker MLP workload. The run executes b.N iterations, so ns/op and
// allocs/op amortise the one-time replica construction and converge to the
// steady-state per-iteration cost.
func BenchTrainIteration(b *testing.B) {
	w := models.NewMLP(models.DefaultMLPConfig())
	b.ReportAllocs()
	b.ResetTimer()
	train.Run(w, core.Factory(core.DefaultOptions()), train.Config{
		Workers:    4,
		Density:    0.01,
		LR:         0.1,
		Iterations: b.N,
		Seed:       1,
	})
}

// gemmFixture builds Gaussian operands for one GEMM benchmark shape.
func gemmFixture(seed uint64, sizes ...int) [][]float64 {
	r := rng.New(seed)
	out := make([][]float64, len(sizes))
	for i, n := range sizes {
		buf := make([]float64, n)
		for j := range buf {
			buf[j] = r.Norm()
		}
		out[i] = buf
	}
	return out
}

// BenchGemmMLPForward measures C = A·B at the MLP's first dense layer
// shape (batch 16 × 192 inputs × 32 units) — the modal forward GEMM of the
// TrainIteration workload, just above the blocked-path threshold.
func BenchGemmMLPForward(b *testing.B) {
	const m, k, n = 16, 192, 32
	f := gemmFixture(1, m*k, k*n, m*n)
	a, bb, c := f[0], f[1], f[2]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.GemmInto(c, a, bb, m, k, n, false)
	}
}

// BenchGemmLSTMGates measures the LSTM's per-timestep gate product (batch
// 8 × hidden 32 × 4·32 gate units) — the modal GEMM of the language model.
func BenchGemmLSTMGates(b *testing.B) {
	const m, k, n = 8, 32, 128
	f := gemmFixture(2, m*k, k*n, m*n)
	a, bb, c := f[0], f[1], f[2]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.GemmInto(c, a, bb, m, k, n, false)
	}
}

// BenchGemmOddBlocked measures a deliberately ragged blocked-path shape
// (61×127×33): every micro-tile edge and the panel remainder paths run.
func BenchGemmOddBlocked(b *testing.B) {
	const m, k, n = 61, 127, 33
	f := gemmFixture(3, m*k, k*n, m*n)
	a, bb, c := f[0], f[1], f[2]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.GemmInto(c, a, bb, m, k, n, false)
	}
}

// BenchGemmTransAGrad measures the weight-gradient product dW += xᵀ·dout
// at the MLP fc1 shape (192×16 batch×32) in accumulate mode.
func BenchGemmTransAGrad(b *testing.B) {
	const m, k, n = 192, 16, 32 // A is k×m, B is k×n
	f := gemmFixture(4, k*m, k*n, m*n)
	a, bb, c := f[0], f[1], f[2]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.GemmTransA(c, a, bb, m, k, n, true)
	}
}

// BenchGemmTransBBack measures the input-gradient product dx = dout·Wᵀ at
// the MLP fc1 shape (16×32×192).
func BenchGemmTransBBack(b *testing.B) {
	const m, k, n = 16, 32, 192 // B is n×k
	f := gemmFixture(5, m*k, n*k, m*n)
	a, bb, c := f[0], f[1], f[2]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.GemmTransB(c, a, bb, m, k, n, false)
	}
}

// benchGemmParallel measures C = A·B at 256×256×64 — 4.2M MACs, above the
// 2M-MAC row-band parallel threshold with bands taller than the 32-row
// minimum — under an explicit tensor.SetGemmWorkers cap. The two
// registered widths bracket the parallel path: GemmParallel1 is the serial
// reference, GemmParallel4 shards four row bands (bit-identical output; on
// a single-core runner it measures the banding overhead instead of the
// speedup, which is exactly what the multi-core CI job is for).
func benchGemmParallel(b *testing.B, workers int) {
	const m, k, n = 256, 256, 64
	f := gemmFixture(7, m*k, k*n, m*n)
	a, bb, c := f[0], f[1], f[2]
	prev := tensor.SetGemmWorkers(workers)
	defer tensor.SetGemmWorkers(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.GemmInto(c, a, bb, m, k, n, false)
	}
}

// BenchGemmParallel1 is the serial baseline of the large parallel shape.
func BenchGemmParallel1(b *testing.B) { benchGemmParallel(b, 1) }

// BenchGemmParallel4 runs the same shape sharded across 4 row bands.
func BenchGemmParallel4(b *testing.B) { benchGemmParallel(b, 4) }

// BenchConvForward measures one Conv2D forward pass at the vision
// workload's stage-1 shape (batch 8, 8→8 channels, 3×3, 8×8 maps) through
// the im2col + blocked-GEMM path.
func BenchConvForward(b *testing.B) {
	r := rng.New(6)
	c := nn.NewConv2D("bench", r, 8, 8, 3, 1, 1, false)
	x := tensor.Randn(r, 1, 8, 8, 8, 8)
	c.Forward(x, true) // warm the layer scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x, true)
	}
}

// WireFixture builds the codec benchmark payload: the top-k selection of
// the scaled LSTM catalog's synthetic gradient at the given density, as
// sorted (index, value) pairs ready to encode.
func WireFixture(density float64) (ng int, idx []int, vals []float64) {
	catalog := shapes.LSTMWiki().Scaled(0.01)
	grad := catalog.SyntheticGradients(42)
	ng = len(grad)
	k := int(density * float64(ng))
	var s topk.Scratch
	idx = append([]int(nil), topk.HeapTopKInto(grad, k, &s)...)
	slices.Sort(idx)
	vals = make([]float64, len(idx))
	for i, ix := range idx {
		vals[i] = grad[ix]
	}
	return ng, idx, vals
}

// BenchWireEncodeCOOVarint measures the automatic encode of a d=0.001
// selection — the regime where the varint-delta COO format wins — over the
// ~1.36M-gradient LSTM fixture. Steady state must be zero-alloc.
func BenchWireEncodeCOOVarint(b *testing.B) {
	ng, idx, vals := WireFixture(0.001)
	buf, _, _ := wire.AppendAuto(nil, ng, idx, vals, wire.Float32) // warm the buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _, _ = wire.AppendAuto(buf[:0], ng, idx, vals, wire.Float32)
	}
	_ = buf
}

// BenchWireEncodeBitmap measures the automatic encode of a d=0.25
// selection, where the fixed-cost presence bitmap beats per-index varints.
func BenchWireEncodeBitmap(b *testing.B) {
	ng, idx, vals := WireFixture(0.25)
	buf, _, _ := wire.AppendAuto(nil, ng, idx, vals, wire.Float32) // warm the buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _, _ = wire.AppendAuto(buf[:0], ng, idx, vals, wire.Float32)
	}
	_ = buf
}

// BenchWireDecodeCOOVarint measures DecodeInto of the d=0.001 payload into
// warmed caller-owned slices.
func BenchWireDecodeCOOVarint(b *testing.B) {
	ng, idx, vals := WireFixture(0.001)
	buf, _, err := wire.AppendAuto(nil, ng, idx, vals, wire.Float32)
	if err != nil {
		b.Fatal(err)
	}
	dIdx := make([]int, 0, len(idx))
	dVals := make([]float64, 0, len(vals))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, dIdx, dVals, err = wire.DecodeInto(buf, dIdx, dVals)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Result is one benchmark's measurement as persisted in BENCH_results.json.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// File is the BENCH_results.json document: the perf trajectory record one
// PR leaves for the next.
type File struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results"`
}

// RunAll executes every registered case through testing.Benchmark and
// returns the measurements.
func RunAll() File {
	f := File{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	for _, c := range Cases() {
		r := testing.Benchmark(c.Bench)
		f.Results = append(f.Results, Result{
			Name:        c.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		})
	}
	return f
}

// WriteFile persists the results as indented JSON.
func (f File) WriteFile(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a BENCH_results.json document.
func ReadFile(path string) (File, error) {
	var f File
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("benchkit: parse %s: %w", path, err)
	}
	return f, nil
}

// Regression describes one benchmark whose ns/op grew beyond the allowed
// ratio between a baseline and a current run.
type Regression struct {
	Name     string
	Old, New float64 // ns/op
	Ratio    float64 // New / Old
}

// Compare matches benchmarks by name and returns the ones whose ns/op
// regressed by more than tolerance (e.g. 0.10 for +10%). Benchmarks present
// in only one file are ignored: adding a benchmark must not fail the gate.
func Compare(old, cur File, tolerance float64) []Regression {
	baseline := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		baseline[r.Name] = r
	}
	var regs []Regression
	for _, r := range cur.Results {
		b, ok := baseline[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		if ratio > 1+tolerance {
			regs = append(regs, Regression{Name: r.Name, Old: b.NsPerOp, New: r.NsPerOp, Ratio: ratio})
		}
	}
	slices.SortFunc(regs, func(a, b Regression) int { return cmp.Compare(b.Ratio, a.Ratio) })
	return regs
}
