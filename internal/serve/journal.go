package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// walRecord is one line of the write-ahead job journal: a submission
// (op "submit", carrying the normalized spec so replay can re-enqueue
// it) or a terminal transition. A job that appears with no terminal
// record was queued or running when the process died — replay
// re-enqueues it. Jobs cancelled by process shutdown are deliberately
// NOT journalled as terminal: shutdown is the server's fault, not the
// client's, so those jobs come back and re-run on the next boot.
type walRecord struct {
	Op          string   `json:"op"` // "submit" | "done" | "failed" | "cancelled"
	ID          string   `json:"id"`
	Hash        string   `json:"hash,omitempty"`
	Spec        *JobSpec `json:"spec,omitempty"`
	CreatedUnix int64    `json:"created_unix_ms,omitempty"`
	Error       string   `json:"error,omitempty"`
}

// journal is the append-only WAL. Every append is fsynced before it
// returns: a record the server acted on is on disk. One file lives in
// the store root (jobs.wal); boot reads it back, then compacts it.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// walFile is the journal's name inside the store root.
const walFile = "jobs.wal"

// openJournal reads the existing WAL — tolerating a torn final line
// from a crash mid-append — and opens it for appending.
func openJournal(dir string) (*journal, []walRecord, error) {
	path := filepath.Join(dir, walFile)
	var recs []walRecord
	if data, err := os.ReadFile(path); err == nil {
		// Only newline-terminated lines are complete records: append writes
		// line+'\n' in one call and fsyncs before acking, so a tail missing
		// its terminator is a torn append the server never acted on — it
		// must be dropped even when the partial bytes happen to parse as
		// valid JSON (a record cut exactly at its closing brace).
		// bufio.Scanner would hand back such a tail as a line; split
		// manually instead.
		for len(data) > 0 {
			nl := bytes.IndexByte(data, '\n')
			if nl < 0 {
				break // torn tail from a crash mid-append
			}
			line := data[:nl]
			data = data[nl+1:]
			if len(line) == 0 {
				continue
			}
			var r walRecord
			if err := json.Unmarshal(line, &r); err != nil {
				// Corrupt interior record: every complete record before it
				// is valid; stop here.
				break
			}
			recs = append(recs, r)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("serve: journal read: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: journal open: %w", err)
	}
	return &journal{f: f, path: path}, recs, nil
}

// append writes one record and fsyncs it.
func (j *journal) append(r walRecord) error {
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("serve: journal marshal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: journal sync: %w", err)
	}
	return nil
}

// rewrite replaces the WAL with recs (boot-time compaction): temp file,
// fsync, atomic rename, reopen for append.
func (j *journal) rewrite(recs []walRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	tmp := j.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("serve: journal rewrite: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("serve: journal rewrite: %w", err)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: journal rewrite: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: journal rewrite: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: journal rewrite: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: journal rewrite: %w", err)
	}
	j.f.Close()
	f, err = os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("serve: journal reopen: %w", err)
	}
	j.f = f
	return nil
}

// close flushes and closes the WAL file.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// nowUnixMilli is the WAL timestamp.
func nowUnixMilli() int64 { return time.Now().UnixMilli() }
