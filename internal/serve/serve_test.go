package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/train"
)

// newTestServer returns a started scheduler plus its httptest front end;
// both are torn down with the test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec string) (jobView, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var v jobView
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatalf("decode job: %v\n%s", err, body)
		}
	}
	return v, resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	return v
}

// waitState polls until the job reaches want (or any terminal state) and
// returns the final view.
func waitState(t *testing.T, ts *httptest.Server, id string, want JobState) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if v.State == want {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s reached %q while waiting for %q (err %q)", id, v.State, want, v.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return jobView{}
}

// TestEndToEndTrainJob covers the main loop: submit → poll → stream →
// fetch, asserting the streamed NDJSON records match the final Result
// series exactly.
func TestEndToEndTrainJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Pool: 2})

	v, code := postJob(t, ts, `{"train":{"workload":"mlp","sparsifier":"topk","workers":2,"iterations":12,"lr":0.1,"eval_every":6,"record_every":1,"progress_every":4}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if v.State != StateQueued && v.State != StateRunning {
		t.Fatalf("fresh job state %q", v.State)
	}

	// Stream to completion.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	type line struct {
		Type  string   `json:"type"`
		State JobState `json:"state"`
		train.Progress
	}
	var records []line
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		records = append(records, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(records) == 0 || records[len(records)-1].Type != "done" {
		t.Fatalf("stream should end with a done event, got %+v", records)
	}
	if records[len(records)-1].State != StateDone {
		t.Fatalf("final state %q", records[len(records)-1].State)
	}

	// Fetch the result and cross-check the streamed records against the
	// final series.
	final := waitState(t, ts, v.ID, StateDone)
	if final.Result == nil || final.Result.TrainResult == nil {
		t.Fatal("done job has no train result")
	}
	res := final.Result.TrainResult
	var progress, evals []line
	for _, r := range records {
		if r.Type != "progress" {
			continue
		}
		if r.Kind == "eval" {
			evals = append(evals, r)
		} else {
			progress = append(progress, r)
		}
	}
	if len(progress) != len(res.TrainLoss.X) {
		t.Fatalf("streamed %d records, series has %d", len(progress), len(res.TrainLoss.X))
	}
	for i, p := range progress {
		if float64(p.Iteration) != res.TrainLoss.X[i] || p.TrainLoss != res.TrainLoss.Y[i] {
			t.Errorf("record %d: (%d, %v) vs series (%v, %v)",
				i, p.Iteration, p.TrainLoss, res.TrainLoss.X[i], res.TrainLoss.Y[i])
		}
		if p.ErrorNorm != res.ErrorNorm.Y[i] || p.ActualDensity != res.ActualDensity.Y[i] {
			t.Errorf("record %d: error/density mismatch", i)
		}
	}
	if len(evals) != len(res.Metric.X) {
		t.Fatalf("streamed %d evals, metric series has %d", len(evals), len(res.Metric.X))
	}
	for i, e := range evals {
		if e.Metric != res.Metric.Y[i] {
			t.Errorf("eval %d: %v vs %v", i, e.Metric, res.Metric.Y[i])
		}
	}

	// progress_every=4 rode through the spec into the run: the streamed
	// per-layer snapshots must decode to exactly the Result's layer
	// series — the same identity contract as the scalar series above.
	if len(res.LayerNames) == 0 {
		t.Fatal("progress_every job produced no layer series")
	}
	var withLayers []line
	for _, p := range progress {
		if p.Layers != nil {
			withLayers = append(withLayers, p)
		}
	}
	if len(withLayers) != len(res.LayerAlloc[0].X) {
		t.Fatalf("streamed %d layer snapshots, series has %d", len(withLayers), len(res.LayerAlloc[0].X))
	}
	for si, p := range withLayers {
		if len(p.Layers) != len(res.LayerNames) {
			t.Fatalf("snapshot %d has %d layers, want %d", si, len(p.Layers), len(res.LayerNames))
		}
		for li, ls := range p.Layers {
			if ls.Name != res.LayerNames[li] {
				t.Errorf("snapshot %d layer %d name %q, want %q", si, li, ls.Name, res.LayerNames[li])
			}
			if float64(ls.K) != res.LayerAlloc[li].Y[si] || ls.Norm != res.LayerNorm[li].Y[si] {
				t.Errorf("snapshot %d layer %q: streamed (K=%d, norm=%v) vs series (%v, %v)",
					si, ls.Name, ls.K, ls.Norm, res.LayerAlloc[li].Y[si], res.LayerNorm[li].Y[si])
			}
		}
	}
}

// TestSingleFlightDedup asserts the headline guarantee: 8 concurrent
// identical submissions complete with exactly one underlying train.Run.
func TestSingleFlightDedup(t *testing.T) {
	s, ts := newTestServer(t, Options{Pool: 4})
	var runs atomic.Int64
	orig := s.runTrain
	s.runTrain = func(ctx context.Context, spec TrainSpec, attempt int, checkpoint bool, progress func(train.Progress)) (*train.Result, error) {
		runs.Add(1)
		// Hold the flight open long enough that every concurrent submit
		// joins it rather than hitting the result cache.
		time.Sleep(50 * time.Millisecond)
		return orig(ctx, spec, attempt, checkpoint, progress)
	}

	const n = 8
	spec := `{"train":{"workload":"mlp","sparsifier":"deft","workers":2,"iterations":8,"lr":0.1}}`
	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var v jobView
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				errs <- err
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var hash string
	for _, id := range ids {
		v := waitState(t, ts, id, StateDone)
		if v.Result == nil || v.Result.TrainResult == nil {
			t.Fatalf("%s: done without result", id)
		}
		if hash == "" {
			hash = v.Hash
		} else if v.Hash != hash {
			t.Fatalf("hashes diverge: %s vs %s", v.Hash, hash)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("8 identical submissions trained %d times, want 1", got)
	}

	// A later identical submission is a pure cache hit: done on arrival,
	// still exactly one training run.
	v, code := postJob(t, ts, spec)
	if code != http.StatusOK || v.State != StateDone || !v.CacheHit {
		t.Fatalf("resubmit: status %d state %q cacheHit %v", code, v.State, v.CacheHit)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("cache hit retrained: %d runs", got)
	}
}

// TestQuantizedSpecNotDeduped submits fp32 and fp16 variants of the same
// training configuration concurrently: the precision is part of the
// canonical spec, so the two must hash — and therefore cache and flight —
// separately, training exactly twice, never collapsing into one entry.
// Run under -race in CI: both trainers execute at once.
func TestQuantizedSpecNotDeduped(t *testing.T) {
	s, ts := newTestServer(t, Options{Pool: 2})
	var runs atomic.Int64
	orig := s.runTrain
	s.runTrain = func(ctx context.Context, spec TrainSpec, attempt int, checkpoint bool, progress func(train.Progress)) (*train.Result, error) {
		runs.Add(1)
		// Hold both flights open so the second submission sees the first
		// in flight rather than completed.
		time.Sleep(50 * time.Millisecond)
		return orig(ctx, spec, attempt, checkpoint, progress)
	}

	specs := []string{
		`{"train":{"workload":"mlp","sparsifier":"topk","workers":2,"iterations":8,"lr":0.1}}`,
		`{"train":{"workload":"mlp","sparsifier":"topk","workers":2,"iterations":8,"lr":0.1,"quantize":true}}`,
	}
	views := make([]jobView, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec string) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if err := json.NewDecoder(resp.Body).Decode(&views[i]); err != nil {
				t.Error(err)
			}
		}(i, spec)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if views[0].Hash == views[1].Hash {
		t.Fatalf("fp32 and fp16 specs share hash %s: quantize not part of the cache key", views[0].Hash)
	}

	fp32 := waitState(t, ts, views[0].ID, StateDone)
	fp16 := waitState(t, ts, views[1].ID, StateDone)
	if got := runs.Load(); got != 2 {
		t.Fatalf("two distinct specs trained %d times, want 2", got)
	}
	if fp32.Result.TrainResult.Quantized || !fp16.Result.TrainResult.Quantized {
		t.Fatalf("quantized flags wrong: fp32=%v fp16=%v",
			fp32.Result.TrainResult.Quantized, fp16.Result.TrainResult.Quantized)
	}
	if fp16.Result.TrainResult.WireBytes >= fp32.Result.TrainResult.WireBytes {
		t.Errorf("fp16 job shipped %d B, fp32 %d B: quantization saved nothing",
			fp16.Result.TrainResult.WireBytes, fp32.Result.TrainResult.WireBytes)
	}

	// Resubmissions hit their own cache entries — still two runs.
	for i, spec := range specs {
		v, code := postJob(t, ts, spec)
		if code != http.StatusOK || !v.CacheHit {
			t.Errorf("spec %d resubmit: status %d cacheHit %v", i, code, v.CacheHit)
		}
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("cache hits retrained: %d runs", got)
	}
}

// TestCancelRunningJob asserts DELETE stops a running trainer within a few
// iterations and leaks no goroutines.
func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Pool: 1})
	before := runtime.NumGoroutine()

	// A job long enough (100k iterations) that it cannot finish on its
	// own within the test timeout: it either cancels mid-run or hangs.
	v, code := postJob(t, ts, `{"train":{"workload":"mlp","sparsifier":"topk","workers":4,"iterations":100000,"lr":0.05}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitState(t, ts, v.ID, StateRunning)

	// Wait for at least one progress record so the trainer is provably
	// mid-run, not still constructing replicas.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/stream")
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		sc := bufio.NewScanner(resp.Body)
		seen := false
		for sc.Scan() {
			if bytes.Contains(sc.Bytes(), []byte(`"type":"progress"`)) {
				seen = true
				break
			}
		}
		resp.Body.Close()
		if seen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress events before cancel")
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	var dv jobView
	if err := json.NewDecoder(resp.Body).Decode(&dv); err != nil {
		t.Fatalf("decode DELETE response: %v", err)
	}
	resp.Body.Close()
	if dv.State != StateCancelled {
		t.Fatalf("DELETE returned state %q, want cancelled", dv.State)
	}

	// The trainer goroutines must unwind promptly (abort is checked every
	// collective), freeing the single pool slot for the next flight.
	v2, _ := postJob(t, ts, `{"train":{"workload":"mlp","sparsifier":"topk","workers":2,"iterations":4,"lr":0.1}}`)
	waitState(t, ts, v2.ID, StateDone)
	t.Logf("cancel-to-next-job-done took %v", time.Since(start))

	// Goroutine accounting: everything the cancelled flight spawned (4
	// ranks + watcher) must exit. Allow scheduler lag with a retry loop
	// and slack for httptest's own connection goroutines.
	ok := false
	for i := 0; i < 100 && !ok; i++ {
		time.Sleep(10 * time.Millisecond)
		ok = runtime.NumGoroutine() <= before+5
	}
	if !ok {
		t.Errorf("goroutines: %d before, %d after cancel", before, runtime.NumGoroutine())
	}
}

// TestExperimentJob runs a cheap (training-free) paper artefact through
// the service and checks the Table JSON comes back.
func TestExperimentJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Pool: 1})
	v, code := postJob(t, ts, `{"experiment":"table2","quick":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	final := waitState(t, ts, v.ID, StateDone)
	if final.Result == nil || final.Result.Table == nil {
		t.Fatal("experiment job has no table")
	}
	if final.Result.Table.ID != "table2" || len(final.Result.Table.Rows) == 0 {
		t.Fatalf("bad table: %+v", final.Result.Table)
	}
}

// TestSpecValidation covers the rejection paths.
func TestSpecValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Pool: 1})
	for _, bad := range []string{
		`{}`,
		`{"experiment":"fig999"}`,
		`{"experiment":"fig4","train":{"workload":"mlp"}}`,
		`{"train":{"workload":"nope"}}`,
		`{"train":{"workload":"mlp","sparsifier":"nope"}}`,
		`{"train":{"workload":"mlp","workers":-1}}`,
		`{"train":{"workload":"mlp","workers":1000000000}}`,
		`{"train":{"workload":"mlp","iterations":2000000}}`,
		`{"train":{"workload":"mlp","iterations":1000000,"record_every":1}}`,
		`{"train":{"workload":"mlp","density":1.5}}`,
		`{"train":{"workload":"mlp","lr":-0.1}}`,
		`{"train":{"workload":"mlp","momentum":1.5}}`,
		`{"train":{"workload":"mlp","sparsifier":"dense","quantize":true}}`,
		`{"bogus_field":1}`,
	} {
		if _, code := postJob(t, ts, bad); code != http.StatusBadRequest {
			t.Errorf("spec %s: status %d, want 400", bad, code)
		}
	}
	if _, code := postJob(t, ts, `{"train":{}}`); code != http.StatusAccepted {
		t.Errorf("empty train spec should normalize to defaults, got %d", code)
	}
}

// TestSpecHashCanonical: specs that normalize identically must collide;
// different work must not.
func TestSpecHashCanonical(t *testing.T) {
	a := JobSpec{Train: &TrainSpec{}}
	b := JobSpec{Train: &TrainSpec{Workload: "mlp", Sparsifier: "deft", Workers: 4, Density: 0.01, LR: 0.1, Iterations: 50, RecordEvery: 1}}
	c := JobSpec{Train: &TrainSpec{Workload: "mlp", Sparsifier: "deft", Workers: 8}}
	for _, s := range []*JobSpec{&a, &b, &c} {
		if err := s.normalize(); err != nil {
			t.Fatal(err)
		}
	}
	if a.hash() != b.hash() {
		t.Errorf("defaulted and explicit specs hash differently: %s vs %s", a.hash(), b.hash())
	}
	if a.hash() == c.hash() {
		t.Error("different worker counts collide")
	}
}

// TestMetricsAndHealth sanity-checks the observability endpoints.
func TestMetricsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Options{Pool: 1})
	v, _ := postJob(t, ts, `{"train":{"workload":"mlp","iterations":4,"workers":2}}`)
	waitState(t, ts, v.ID, StateDone)
	postJob(t, ts, `{"train":{"workload":"mlp","iterations":4,"workers":2}}`) // cache hit

	var m struct {
		Jobs      map[string]int `json:"jobs"`
		Submitted int            `json:"submitted"`
		CacheHits int            `json:"cache_hits"`
		Runs      int            `json:"runs"`
		PoolSize  int            `json:"pool_size"`
	}
	resp, err := http.Get(ts.URL + "/metrics?format=expvar")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Submitted != 2 || m.CacheHits != 1 || m.Runs != 1 || m.Jobs["done"] != 2 || m.PoolSize != 1 {
		t.Errorf("metrics off: %+v", m)
	}

	// The default format is Prometheus text: same counters, plus the
	// queue-wait and run-duration histograms.
	pr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	if ct := pr.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Errorf("prometheus content type %q, want %q", ct, obs.PrometheusContentType)
	}
	promBody, _ := io.ReadAll(pr.Body)
	prom := string(promBody)
	for _, want := range []string{
		"# TYPE deft_jobs_submitted_total counter",
		"deft_jobs_submitted_total 2",
		"deft_jobs_cache_hits_total 1",
		"deft_runs_total 1",
		`deft_jobs{state="done"} 2`,
		"deft_pool_size 1",
		"# TYPE deft_job_queue_wait_seconds histogram",
		"deft_job_queue_wait_seconds_count 1",
		"# TYPE deft_job_run_seconds histogram",
		"deft_job_run_seconds_count 1",
		`deft_job_run_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", hr.StatusCode)
	}

	er, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer er.Body.Close()
	var ids struct {
		Experiments []string `json:"experiments"`
	}
	if err := json.NewDecoder(er.Body).Decode(&ids); err != nil {
		t.Fatal(err)
	}
	if len(ids.Experiments) == 0 {
		t.Error("no experiment ids")
	}
}

// TestShutdownCancelsRunning: Shutdown drains a running flight as
// cancelled instead of hanging.
func TestShutdownCancelsRunning(t *testing.T) {
	s := New(Options{Pool: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, _ := postJob(t, ts, `{"train":{"workload":"mlp","sparsifier":"topk","workers":2,"iterations":100000,"lr":0.05}}`)
	waitState(t, ts, v.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := getJob(t, ts, v.ID).State; got != StateCancelled {
		t.Fatalf("job state after shutdown = %q, want cancelled", got)
	}
	if _, code := postJob(t, ts, `{"train":{"workload":"mlp"}}`); code != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: %d, want 503", code)
	}
}

// TestStreamReplayForCacheHit: a cache-hit job's stream replays the
// original run's progress history.
func TestStreamReplayForCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Options{Pool: 1})
	spec := `{"train":{"workload":"mlp","iterations":6,"workers":2}}`
	v1, _ := postJob(t, ts, spec)
	waitState(t, ts, v1.ID, StateDone)
	v2, _ := postJob(t, ts, spec)
	if !v2.CacheHit {
		t.Fatal("second submit not a cache hit")
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v2.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	records := bytes.Count(body, []byte(`"kind":"record"`))
	evals := bytes.Count(body, []byte(`"kind":"eval"`))
	if records != 6 || evals != 1 {
		t.Errorf("replayed %d records + %d evals, want 6 + 1 (the final evaluation)\n%s", records, evals, body)
	}
}
