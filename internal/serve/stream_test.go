package serve

import (
	"bufio"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// TestStreamDisconnectFreesHandler pins the stream-handler leak: a busy
// job emits lines on every pass, so the handler's live-tail select — its
// only blocking disconnect check — may never run. A client that hangs up
// mid-stream must still free the handler goroutine promptly, not hold it
// for as long as the job keeps producing events.
func TestStreamDisconnectFreesHandler(t *testing.T) {
	_, ts := newTestServer(t, Options{Pool: 1})

	// Effectively endless and chatty: every iteration appends a record,
	// keeping the handler's fast path (lines flowing, no select) hot.
	v, code := postJob(t, ts, `{"train":{"workload":"mlp","sparsifier":"topk","workers":2,"iterations":100000,"lr":0.05,"record_every":1}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitState(t, ts, v.ID, StateRunning)
	before := runtime.NumGoroutine()

	// Open several streams, prove each is live, then hang up mid-flow.
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/stream")
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		sc := bufio.NewScanner(resp.Body)
		if !sc.Scan() {
			t.Fatalf("stream %d: no first line: %v", i, sc.Err())
		}
		resp.Body.Close()
	}

	// The job is still running — only the disconnects can release the
	// handlers. Allow slack for httptest conn goroutines winding down.
	ok := false
	for i := 0; i < 200 && !ok; i++ {
		time.Sleep(10 * time.Millisecond)
		ok = runtime.NumGoroutine() <= before+3
	}
	after := runtime.NumGoroutine()

	// Unwind the deliberately endless job before asserting.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	if !ok {
		t.Errorf("stream handlers leaked: %d goroutines before streams, %d after disconnects", before, after)
	}
}
