package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/train"
)

// newDurableServer boots a durable server over dir and fronts it with
// httptest. Shutdown is NOT registered as cleanup: recovery tests stop
// and restart servers themselves.
func newDurableServer(t *testing.T, dir string, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	opts.StoreDir = dir
	s, err := NewDurable(opts)
	if err != nil {
		t.Fatalf("NewDurable: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, ts
}

func stopServer(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// detJSON renders a train result's deterministic record for byte-exact
// comparison across process lifetimes.
func detJSON(t *testing.T, r *train.Result) []byte {
	t.Helper()
	b, err := r.DeterministicJSON()
	if err != nil {
		t.Fatalf("DeterministicJSON: %v", err)
	}
	return b
}

const recoverySpec = `{"train":{"workload":"mlp","sparsifier":"topk","workers":2,"iterations":8,"lr":0.1,"record_every":2}}`

// TestStoreHitAcrossRestart is the headline durability property: a job
// completed in one process lifetime is served — byte-identical — from
// the store in the next, without retraining.
func TestStoreHitAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	sA, tsA := newDurableServer(t, dir, Options{Pool: 2})
	v, code := postJob(t, tsA, recoverySpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	waitState(t, tsA, v.ID, StateDone)
	sA.mu.Lock()
	golden := detJSON(t, sA.jobs[v.ID].outcome.TrainResult)
	sA.mu.Unlock()
	stopServer(t, sA, tsA)

	// Lifetime B over the same directory: replay restores the done job
	// with its artifact, and the id survives.
	sB, tsB := newDurableServer(t, dir, Options{Pool: 2})
	defer stopServer(t, sB, tsB)
	restored, requeued := sB.RecoveryStats()
	if restored != 1 || requeued != 0 {
		t.Fatalf("recovery = (%d restored, %d requeued), want (1, 0)", restored, requeued)
	}
	got := getJob(t, tsB, v.ID)
	if got.State != StateDone {
		t.Fatalf("replayed job state = %q, want done", got.State)
	}
	sB.mu.Lock()
	replayed := detJSON(t, sB.jobs[v.ID].outcome.TrainResult)
	runsBefore := sB.mRuns.Value()
	sB.mu.Unlock()
	if !bytes.Equal(golden, replayed) {
		t.Fatal("replayed result differs from the original run")
	}
	if sB.mStoreHits.Value() < 1 {
		t.Fatalf("deft_store_hits_total = %d, want >= 1", sB.mStoreHits.Value())
	}

	// Resubmitting the identical spec is a cache hit — no retraining.
	v2, code := postJob(t, tsB, recoverySpec)
	if code != http.StatusOK || !v2.CacheHit {
		t.Fatalf("resubmit = (%d, cache_hit=%v), want (200, true)", code, v2.CacheHit)
	}
	if v2.Result == nil || !bytes.Equal(golden, detJSON(t, v2.Result.TrainResult)) {
		t.Fatal("resubmitted result differs from the original run")
	}
	if sB.mRuns.Value() != runsBefore {
		t.Fatalf("resubmission trained (%d runs, had %d)", sB.mRuns.Value(), runsBefore)
	}
}

// TestCrashReplayRequeues: a job interrupted mid-run (Shutdown cancels
// exactly like a crash as far as the journal is concerned — no terminal
// record is written) is re-enqueued on the next boot and re-runs to the
// golden result.
func TestCrashReplayRequeues(t *testing.T) {
	dir := t.TempDir()

	sA, tsA := newDurableServer(t, dir, Options{Pool: 1})
	running := make(chan struct{})
	sA.runTrain = func(ctx context.Context, spec TrainSpec, attempt int, checkpoint bool, progress func(train.Progress)) (*train.Result, error) {
		close(running)
		<-ctx.Done() // wedged trainer: the "crash" interrupts it mid-run
		return nil, ctx.Err()
	}
	v, code := postJob(t, tsA, recoverySpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	<-running
	stopServer(t, sA, tsA)

	// Lifetime B re-enqueues the open job and trains it for real.
	sB, tsB := newDurableServer(t, dir, Options{Pool: 1})
	defer stopServer(t, sB, tsB)
	restored, requeued := sB.RecoveryStats()
	if restored != 0 || requeued != 1 {
		t.Fatalf("recovery = (%d restored, %d requeued), want (0, 1)", restored, requeued)
	}
	waitState(t, tsB, v.ID, StateDone)

	// Golden: the production trainer on the same normalized spec.
	var spec JobSpec
	if err := json.Unmarshal([]byte(recoverySpec), &spec); err != nil {
		t.Fatal(err)
	}
	if err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
	goldenRes, err := runTrain(context.Background(), *spec.Train, 1, false, nil)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	sB.mu.Lock()
	recovered := detJSON(t, sB.jobs[v.ID].outcome.TrainResult)
	sB.mu.Unlock()
	if !bytes.Equal(detJSON(t, goldenRes), recovered) {
		t.Fatal("recovered run differs from the golden result")
	}
}

// TestCancelledJobStaysCancelledAcrossRestart: a client DELETE is a
// journalled terminal — unlike a shutdown interruption, it must not
// resurrect on reboot.
func TestCancelledJobStaysCancelledAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	sA, tsA := newDurableServer(t, dir, Options{Pool: 1})
	running := make(chan struct{})
	var opened atomic.Bool
	sA.runTrain = func(ctx context.Context, spec TrainSpec, attempt int, checkpoint bool, progress func(train.Progress)) (*train.Result, error) {
		if opened.CompareAndSwap(false, true) {
			close(running)
		}
		<-ctx.Done() // wedged until shutdown interrupts it
		return nil, ctx.Err()
	}
	blocker, _ := postJob(t, tsA, recoverySpec)
	<-running
	// A second, different spec queues behind the blocker; cancel it.
	queued, _ := postJob(t, tsA, `{"train":{"workload":"mlp","sparsifier":"topk","workers":2,"iterations":10,"lr":0.1}}`)
	req, _ := http.NewRequest(http.MethodDelete, tsA.URL+"/v1/jobs/"+queued.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatalf("DELETE: %v", err)
	} else {
		resp.Body.Close()
	}
	stopServer(t, sA, tsA)

	sB, tsB := newDurableServer(t, dir, Options{Pool: 1})
	defer stopServer(t, sB, tsB)
	if got := getJob(t, tsB, queued.ID); got.State != StateCancelled {
		t.Fatalf("cancelled job came back as %q", got.State)
	}
	// The blocker was interrupted by shutdown, so it DOES come back.
	waitState(t, tsB, blocker.ID, StateDone)
}

// TestCorruptArtifactQuarantinedNotServed: a bit-flipped artifact must
// never be served — boot-time replay quarantines it and re-trains the
// job from scratch.
func TestCorruptArtifactQuarantinedNotServed(t *testing.T) {
	dir := t.TempDir()

	sA, tsA := newDurableServer(t, dir, Options{Pool: 1})
	v, code := postJob(t, tsA, recoverySpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	waitState(t, tsA, v.ID, StateDone)
	sA.mu.Lock()
	golden := detJSON(t, sA.jobs[v.ID].outcome.TrainResult)
	sA.mu.Unlock()
	stopServer(t, sA, tsA)

	// Flip one byte in the committed result blob.
	blob := filepath.Join(dir, "objects", v.Hash, "result.v1.json")
	data, err := os.ReadFile(blob)
	if err != nil {
		t.Fatalf("read blob: %v", err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(blob, data, 0o644); err != nil {
		t.Fatalf("corrupt blob: %v", err)
	}

	sB, tsB := newDurableServer(t, dir, Options{Pool: 1})
	defer stopServer(t, sB, tsB)
	restored, requeued := sB.RecoveryStats()
	if restored != 0 || requeued != 1 {
		t.Fatalf("recovery = (%d restored, %d requeued), want (0, 1): corrupt artifacts must re-train", restored, requeued)
	}
	if sB.mStoreCorrupt.Value() < 1 {
		t.Fatalf("deft_store_corrupt_total = %d, want >= 1", sB.mStoreCorrupt.Value())
	}
	if sB.store.QuarantineLen() < 1 {
		t.Fatal("corrupt artifact not quarantined")
	}
	final := waitState(t, tsB, v.ID, StateDone)
	if final.Result == nil || !bytes.Equal(golden, detJSON(t, final.Result.TrainResult)) {
		t.Fatal("re-trained result differs from the golden run")
	}
	if !sB.store.Has(v.Hash) {
		t.Fatal("re-trained artifact not re-committed to the store")
	}
}

// TestENOSPCDegradesToMemoryOnly: an injected disk-full on the artifact
// commit must not fail the job — the server finishes it from memory,
// latches degraded mode and counts the error.
func TestENOSPCDegradesToMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	sA, tsA := newDurableServer(t, dir, Options{
		Pool:        1,
		StoreFaults: &store.FaultPlan{Faults: []store.Fault{{Kind: store.FaultENOSPC, Hash: "*", Put: 1}}},
	})
	defer stopServer(t, sA, tsA)

	v, code := postJob(t, tsA, recoverySpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	final := waitState(t, tsA, v.ID, StateDone)
	if final.Result == nil || final.Result.TrainResult == nil {
		t.Fatal("degraded job lost its result")
	}
	if !sA.Degraded() {
		t.Fatal("server did not latch degraded mode after ENOSPC")
	}
	if sA.mStoreErrors.Value() < 1 {
		t.Fatalf("deft_store_errors_total = %d, want >= 1", sA.mStoreErrors.Value())
	}
	if sA.store.Has(v.Hash) {
		t.Fatal("ENOSPC put should not have committed an artifact")
	}
	// Degraded, the server still answers resubmissions from memory.
	v2, code := postJob(t, tsA, recoverySpec)
	if code != http.StatusOK || !v2.CacheHit {
		t.Fatalf("degraded resubmit = (%d, cache_hit=%v), want (200, true)", code, v2.CacheHit)
	}
}

// TestPriorityOrdersDequeue: with one worker wedged on a blocker, later
// submissions drain strictly by priority, FIFO within a priority — and
// priority stays off the content address.
func TestPriorityOrdersDequeue(t *testing.T) {
	s, ts := newTestServer(t, Options{Pool: 1})
	gate := make(chan struct{})
	running := make(chan struct{})
	var ranSeeds []uint64
	var opened atomic.Bool
	s.runTrain = func(ctx context.Context, spec TrainSpec, attempt int, checkpoint bool, progress func(train.Progress)) (*train.Result, error) {
		if opened.CompareAndSwap(false, true) {
			close(running)
			<-gate // hold the pool's only worker until all submissions queue
		} else {
			ranSeeds = append(ranSeeds, spec.Seed) // serialized: pool=1
		}
		return &train.Result{}, nil
	}

	post := func(seed uint64, pri int) jobView {
		t.Helper()
		spec := fmt.Sprintf(`{"train":{"workload":"mlp","sparsifier":"topk","workers":2,"iterations":8,"lr":0.1,"seed":%d,"priority":%d}}`, seed, pri)
		v, code := postJob(t, ts, spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit status = %d, want 202", code)
		}
		return v
	}
	_ = post(1, 0) // blocker: occupies the worker
	<-running
	jobs := []jobView{post(2, 0), post(3, 5), post(4, 9), post(5, 5)}
	close(gate)
	for _, v := range jobs {
		waitState(t, ts, v.ID, StateDone)
	}
	s.mu.Lock()
	got := append([]uint64(nil), ranSeeds...)
	s.mu.Unlock()
	want := []uint64{4, 3, 5, 2} // pri 9, then 5s FIFO, then 0
	if len(got) != len(want) {
		t.Fatalf("ran %v, want %v", got, want)
	}
	for i, seed := range want {
		if got[i] != seed {
			t.Fatalf("execution order %v, want %v (priority desc, FIFO within)", got, want)
		}
	}

	// Priority is scheduling metadata: it must not split the hash.
	a := JobSpec{Train: &TrainSpec{Workload: "mlp", Sparsifier: "topk", Workers: 2, Iterations: 8, LR: 0.1}}
	b := JobSpec{Train: &TrainSpec{Workload: "mlp", Sparsifier: "topk", Workers: 2, Iterations: 8, LR: 0.1, Priority: 9}}
	if err := a.normalize(); err != nil {
		t.Fatal(err)
	}
	if err := b.normalize(); err != nil {
		t.Fatal(err)
	}
	if a.hash() != b.hash() {
		t.Fatal("priority changed the content address")
	}
}

// TestSubmitWaitLongPolls: POST /v1/jobs?wait=1 blocks until the job is
// terminal and answers 200 with the result attached.
func TestSubmitWaitLongPolls(t *testing.T) {
	_, ts := newTestServer(t, Options{Pool: 2})
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(recoverySpec))
	if err != nil {
		t.Fatalf("POST ?wait=1: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait=1 status = %d, want 200\n%s", resp.StatusCode, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if v.State != StateDone {
		t.Fatalf("wait=1 returned state %q, want done", v.State)
	}
	if v.Result == nil || v.Result.TrainResult == nil {
		t.Fatal("wait=1 response has no result")
	}
}
