package serve

import (
	"container/heap"
	"errors"
	"sync"
)

// errQueueFull rejects a submission when the backlog is at capacity.
var errQueueFull = errors.New("serve: queue full")

// flightQueue is the worker pool's backlog: a bounded blocking priority
// queue of flights ordered by (priority descending, arrival ascending)
// — strict priority dequeue, FIFO within a priority. A flight's
// priority may be bumped while it waits (a higher-priority job joining
// the single-flight); bump re-sifts it in place.
type flightQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   flightHeap
	seq    int64
	max    int
	closed bool
}

func newFlightQueue(max int) *flightQueue {
	q := &flightQueue{max: max}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a flight, stamping its arrival order. enforceCap is
// false for boot-time journal replay: recovered jobs are re-admitted
// even when they outnumber the live-submission bound.
func (q *flightQueue) push(fl *flight, enforceCap bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errors.New("serve: queue closed")
	}
	if enforceCap && len(q.heap) >= q.max {
		return errQueueFull
	}
	q.seq++
	fl.seq = q.seq
	heap.Push(&q.heap, fl)
	q.cond.Signal()
	return nil
}

// pop blocks until a flight is available and returns the
// highest-priority one. After close it drains the remaining backlog,
// then returns nil: the drain path hands queued flights to the workers
// (their contexts decide whether they run or settle as cancelled).
func (q *flightQueue) pop() *flight {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.heap) == 0 {
		return nil
	}
	return heap.Pop(&q.heap).(*flight)
}

// bump raises fl's priority to pri (never lowers it) and re-sifts the
// heap; a no-op once the flight has been popped — by then it is running
// and order no longer matters.
func (q *flightQueue) bump(fl *flight, pri int) {
	q.mu.Lock()
	if pri > fl.priority {
		fl.priority = pri
		if fl.queueIdx >= 0 {
			heap.Fix(&q.heap, fl.queueIdx)
		}
	}
	q.mu.Unlock()
}

// close stops admissions and wakes every blocked worker.
func (q *flightQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *flightQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// flightHeap implements heap.Interface: max-priority first, FIFO (seq)
// within a priority. Priority reads are guarded by the queue mutex —
// bump mutates it under the same lock.
type flightHeap []*flight

func (h flightHeap) Len() int { return len(h) }
func (h flightHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h flightHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].queueIdx = i
	h[j].queueIdx = j
}
func (h *flightHeap) Push(x any) {
	fl := x.(*flight)
	fl.queueIdx = len(*h)
	*h = append(*h, fl)
}
func (h *flightHeap) Pop() any {
	old := *h
	fl := old[len(old)-1]
	old[len(old)-1] = nil
	fl.queueIdx = -1
	*h = old[:len(old)-1]
	return fl
}
