package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestJournalTornTailEveryPrefix replays boot recovery against every
// possible crash point: a WAL of two records truncated at each byte
// length L must recover exactly the records whose terminating newline
// survived. The sharpest case is a record cut exactly at its closing
// brace — valid JSON, but missing its terminator, so it was never
// acknowledged and must be dropped.
func TestJournalTornTailEveryPrefix(t *testing.T) {
	r1 := walRecord{Op: "submit", ID: "job-000001", Hash: "aaaa", CreatedUnix: 1}
	r2 := walRecord{Op: "done", ID: "job-000001", Hash: "aaaa"}
	l1, _ := json.Marshal(r1)
	l2, _ := json.Marshal(r2)
	full := append(append(append([]byte{}, l1...), '\n'), append(l2, '\n')...)

	for L := 0; L <= len(full); L++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), full[:L], 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs, err := openJournal(dir)
		if err != nil {
			t.Fatalf("prefix %d: openJournal: %v", L, err)
		}
		j.close()
		want := 0
		if L >= len(l1)+1 {
			want = 1
		}
		if L >= len(full) {
			want = 2
		}
		if len(recs) != want {
			t.Errorf("prefix %d/%d bytes: recovered %d records, want %d", L, len(full), len(recs), want)
		}
		// Whatever was recovered must be a faithful prefix of the history.
		for i, r := range recs {
			wantRec := []walRecord{r1, r2}[i]
			if r.Op != wantRec.Op || r.ID != wantRec.ID || r.Hash != wantRec.Hash {
				t.Errorf("prefix %d: record %d = %+v, want %+v", L, i, r, wantRec)
			}
		}
	}
}

// TestJournalTornTailThenAppend: a journal recovered past a torn tail
// keeps accepting appends, and the next boot sees old + new records.
// (The torn bytes stay in the file — the boot-time compaction rewrite is
// what actually drops them — so this documents that openJournal's parse
// is what defines the recovered state, not the raw bytes.)
func TestJournalTornTailThenAppend(t *testing.T) {
	dir := t.TempDir()
	j, recs, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	if err := j.append(walRecord{Op: "submit", ID: "job-000001"}); err != nil {
		t.Fatal(err)
	}
	if err := j.rewrite([]walRecord{{Op: "submit", ID: "job-000001"}}); err != nil {
		t.Fatal(err)
	}
	if err := j.append(walRecord{Op: "done", ID: "job-000001"}); err != nil {
		t.Fatal(err)
	}
	j.close()
	_, recs, err = openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records after rewrite+append, want 2", len(recs))
	}
}
