// Package serve is the experiment-job service: it exposes every paper
// artefact id and ad-hoc training configuration as a schedulable job over
// HTTP, turning the batch reproduction into a multi-tenant system.
//
//	POST   /v1/jobs          submit {"experiment":"fig4"} or {"train":{...}}
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{id}         job status + result
//	GET    /v1/jobs/{id}/stream  NDJSON live metrics
//	DELETE /v1/jobs/{id}         cancel (stops a running trainer mid-iteration)
//	GET    /v1/experiments   runnable experiment ids
//	GET    /healthz          liveness
//	GET    /metrics          Prometheus text (counters, gauges, latency
//	                         histograms); ?format=expvar keeps the legacy JSON
//
// Jobs are content-addressed by the hash of their normalized spec. A
// completed hash is served from the result cache; an in-flight hash is
// joined (single-flight), so N concurrent identical submissions train
// exactly once. Every flight runs under its own context, derived from the
// server's: DELETE cancels it when the last attached job is cancelled,
// and the abort propagates through train.RunContext into the simulated
// cluster, which stops mid-iteration rather than at run end.
//
// Training jobs harden against faults: a spec may carry a deterministic
// chaos schedule ("faults"), a retry policy ("retries"/"backoff_ms" —
// faulted runs re-execute inside the same flight with capped exponential
// backoff, so retries never double-train a deduplicated spec) and a
// wall-clock budget ("budget_ms" — expiry fails the job with the distinct
// ErrBudget reason rather than a cancellation).
//
// With Options.StoreDir set the server is durable: completed artifacts
// (result JSON + checkpoint blob under a versioned, checksummed
// manifest) live in a content-addressed internal/store, and every job
// submission and terminal transition is fsynced to a write-ahead
// journal before the server acts on it. A restarted server replays the
// journal: done jobs are served from the store (their checksums
// verified — corrupt artifacts are quarantined and re-trained, never
// served), queued and running jobs are deterministically re-enqueued in
// submission order, and the content address gives cache hits across
// process lifetimes. Store I/O failures (disk full, torn journal) never
// fail a job: the server degrades to memory-only mode with a warning
// and deft_store_errors_total instead. Replayed streams carry the
// terminal event only; per-iteration history is not persisted.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/registry"
	"repro/internal/sparsifier"
	"repro/internal/store"
	"repro/internal/train"
)

// Trace lanes of the serve process: job lifecycle spans (queued,
// running), per-attempt spans, stream sessions and durable-store
// operations each get their own timeline in the exported trace.
const (
	laneJobs = iota
	laneAttempts
	laneStreams
	laneStore
)

// JobState is a job's position in its lifecycle.
type JobState string

// The job lifecycle: queued → running → done | failed | cancelled.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final (done, failed or cancelled).
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// runOutcome is what a flight produces: exactly one of the two, matching
// the spec kind.
type runOutcome struct {
	TrainResult *train.Result      `json:"train_result,omitempty"`
	Table       *experiments.Table `json:"table,omitempty"`
}

// Job is one submission. All fields are guarded by the server mutex.
type Job struct {
	ID       string
	Spec     JobSpec
	Hash     string
	State    JobState
	Created  time.Time
	Started  time.Time
	Finished time.Time
	Err      string
	CacheHit bool
	// Attempts counts the executions the job's flight has started (1 for a
	// run that never retried; 0 until it first runs).
	Attempts int

	flight    *flight // non-nil while queued/running
	outcome   *runOutcome
	events    *eventLog
	anomalies []analyze.Anomaly // live detector flags, settled with the run
}

// flight is one in-flight execution of a spec, shared by every job whose
// hash matches while it runs. Its jobs list is the attachment set: DELETE
// detaches a job, and cancelling the last attached job cancels the
// flight's context.
type flight struct {
	hash   string
	spec   JobSpec
	ctx    context.Context
	cancel context.CancelFunc

	// Scheduling fields, guarded by the flight queue's mutex: priority
	// orders dequeue (bumped when a higher-priority job joins while
	// queued), seq breaks ties FIFO, queueIdx is the heap position (-1
	// once popped).
	priority int
	seq      int64
	queueIdx int

	mu        sync.Mutex
	started   bool
	attempt   int               // current execution attempt (1-based once running)
	jobs      []*Job            // attached jobs (fan-out targets)
	history   []json.RawMessage // progress lines so far, replayed to late joiners
	anomalies []analyze.Anomaly // live detector flags across attempts
}

// progress fans one training event out to every attached job's stream.
// It runs on the training path (rank 0, between barriers): one marshal,
// one slice append per attached job, no blocking.
func (f *flight) progress(run string, p train.Progress) {
	line := marshalEvent(event{Type: "progress", Run: run, Progress: &p})
	f.mu.Lock()
	f.history = append(f.history, line)
	for _, j := range f.jobs {
		j.events.append(line)
	}
	f.mu.Unlock()
}

// maxAnomalies bounds the anomalies a flight keeps and streams, so a
// pathological series cannot grow job state without bound.
const maxAnomalies = 256

// anomaly records one live detector flag and fans it out to every
// attached job's stream as an "anomaly" event. Runs on the training
// path like progress; same cost profile.
func (f *flight) anomaly(a analyze.Anomaly) {
	f.mu.Lock()
	if len(f.anomalies) < maxAnomalies {
		f.anomalies = append(f.anomalies, a)
		line := marshalEvent(event{Type: "anomaly", Anomaly: &a})
		f.history = append(f.history, line)
		for _, j := range f.jobs {
			j.events.append(line)
		}
	}
	f.mu.Unlock()
}

// cacheEntry is a completed flight's outcome plus its progress history
// and anomalies, so cache-hit jobs replay the identical stream and
// report.
type cacheEntry struct {
	outcome   *runOutcome
	history   []json.RawMessage
	anomalies []analyze.Anomaly
}

// maxCachedResults bounds the in-memory result cache (FIFO eviction).
// Per-entry size is already bounded by the spec's maxRecords sample cap.
const maxCachedResults = 512

// Options configures a Server.
type Options struct {
	// Pool is the number of concurrent flights (default 2). Each training
	// flight itself runs spec-many worker goroutines.
	Pool int
	// Queue bounds the backlog of waiting flights (default 256);
	// submissions beyond it are rejected with 503.
	Queue int
	// Tracer, when non-nil, records job-lifecycle spans (queued, running,
	// attempt N, stream, store ops) for Chrome-trace export. nil disables
	// tracing.
	Tracer *obs.Tracer
	// StoreDir, when non-empty, makes the server durable: completed
	// artifacts go to a content-addressed store rooted there, and a
	// write-ahead job journal (jobs.wal) lets a restart recover every
	// job. Use NewDurable, which surfaces open errors.
	StoreDir string
	// StoreFaults is an optional deterministic store-fault schedule
	// (torn write, bit flip, ENOSPC) injected into the artifact store —
	// the storage leg of the chaos layer.
	StoreFaults *store.FaultPlan
	// Cluster, when non-nil, runs training specs with "distribute": true
	// across the joined follower nodes (deft-serve -join) instead of
	// in-process. The server does not own it: close it separately.
	Cluster *ClusterLeader
}

// Server owns the job registry, the single-flight dedup layer, the result
// cache and the worker pool. Create with New, serve via Handler, stop
// with Shutdown.
type Server struct {
	opts  Options
	start time.Time

	mu         sync.Mutex
	closed     bool
	nextID     int
	jobs       map[string]*Job
	order      []string // insertion order for listing
	flights    map[string]*flight
	cache      map[string]*cacheEntry
	cacheOrder []string // FIFO for eviction

	queue      *flightQueue
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	// Durability layer (nil/zero without Options.StoreDir): the
	// content-addressed artifact store, the write-ahead job journal, and
	// the degraded latch — once a store or journal write fails, the
	// server runs memory-only for the rest of its life rather than
	// failing jobs on storage errors.
	store     *store.Store
	journal   *journal
	degraded  atomic.Bool
	closeOnce sync.Once
	// Boot-replay outcome, for operator logging (RecoveryStats).
	recoveredDone     int
	recoveredRequeued int

	// Metrics live in a per-server obs.Registry (a process may host
	// several servers), exposed as Prometheus text by /metrics and as the
	// legacy JSON by /metrics?format=expvar — both read the same counters.
	reg        *obs.Registry
	tracer     *obs.Tracer
	mSubmitted *obs.Counter   // jobs accepted
	mCacheHits *obs.Counter   // jobs answered from the result cache
	mDeduped   *obs.Counter   // jobs attached to an in-flight run
	mRuns      *obs.Counter   // flights actually executed
	mRetries   *obs.Counter   // retry attempts started after a faulted run
	mBudget    *obs.Counter   // jobs failed by wall-clock budget expiry
	mAnomalies *obs.Counter   // live anomaly events emitted
	mInFlight  *obs.Gauge     // flights executing right now
	hQueueWait *obs.Histogram // job creation -> flight start
	hRunDur    *obs.Histogram // flight start -> settle, per job

	// Durability metrics (registered always; move only with a store).
	mStoreHits    *obs.Counter // jobs served from the durable store
	mStorePuts    *obs.Counter // artifacts committed to the store
	mStoreCorrupt *obs.Counter // corrupt artifacts quarantined
	mStoreErrors  *obs.Counter // store/journal I/O failures
	gDegraded     *obs.Gauge   // 1 after the server dropped to memory-only
	mRecovered    *obs.Counter // jobs re-enqueued by WAL replay at boot

	// Execution seams; tests substitute these to count and delay runs.
	// attempt is the 1-based execution attempt: the production trainer
	// prunes the spec's fault plan through ForAttempt, so attempts-scoped
	// faults expire on retries. checkpoint asks the trainer to record
	// the final parameter state (set when a durable store will persist
	// it).
	runTrain      func(ctx context.Context, spec TrainSpec, attempt int, checkpoint bool, progress func(train.Progress)) (*train.Result, error)
	runExperiment func(ctx context.Context, id string, o experiments.Options) (*experiments.Table, error)
}

// ErrBudget marks a job that ran out of its spec's wall-clock budget
// (budget_ms): the job fails — distinctly from a client cancellation —
// with this sentinel in its error chain.
var ErrBudget = errors.New("serve: wall-clock budget exhausted")

// New creates a memory-only server and starts its worker pool. It
// panics if Options.StoreDir is set and unopenable — durable callers
// should use NewDurable, which returns the error instead.
func New(opts Options) *Server {
	s, err := NewDurable(opts)
	if err != nil {
		panic("serve.New: " + err.Error())
	}
	return s
}

// NewDurable creates a server, opens the durable store and write-ahead
// journal when Options.StoreDir is set, replays the journal (restoring
// done jobs from the store and re-enqueueing interrupted ones), and
// starts the worker pool.
func NewDurable(opts Options) (*Server, error) {
	if opts.Pool <= 0 {
		opts.Pool = 2
	}
	if opts.Queue <= 0 {
		opts.Queue = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	reg := obs.NewRegistry()
	s := &Server{
		opts:          opts,
		start:         time.Now(),
		jobs:          map[string]*Job{},
		flights:       map[string]*flight{},
		cache:         map[string]*cacheEntry{},
		queue:         newFlightQueue(opts.Queue),
		baseCtx:       ctx,
		baseCancel:    cancel,
		reg:           reg,
		tracer:        opts.Tracer,
		mSubmitted:    reg.Counter("deft_jobs_submitted_total", "jobs accepted by POST /v1/jobs"),
		mCacheHits:    reg.Counter("deft_jobs_cache_hits_total", "jobs answered from the content-addressed result cache"),
		mDeduped:      reg.Counter("deft_jobs_deduped_total", "jobs attached to an in-flight identical run"),
		mRuns:         reg.Counter("deft_runs_total", "flights actually executed"),
		mRetries:      reg.Counter("deft_retries_total", "retry attempts started after a faulted run"),
		mBudget:       reg.Counter("deft_budget_expired_total", "jobs failed by wall-clock budget expiry"),
		mAnomalies:    reg.Counter("deft_anomalies_total", "anomaly events flagged on live job streams"),
		mInFlight:     reg.Gauge("deft_flights_in_flight", "flights executing right now"),
		hQueueWait:    reg.Histogram("deft_job_queue_wait_seconds", "job creation to flight start"),
		hRunDur:       reg.Histogram("deft_job_run_seconds", "flight start to settlement, per attached job"),
		mStoreHits:    reg.Counter("deft_store_hits_total", "jobs served from the durable artifact store"),
		mStorePuts:    reg.Counter("deft_store_puts_total", "artifacts committed to the durable store"),
		mStoreCorrupt: reg.Counter("deft_store_corrupt_total", "corrupt store artifacts quarantined (never served)"),
		mStoreErrors:  reg.Counter("deft_store_errors_total", "store/journal I/O failures (each may degrade the server to memory-only)"),
		gDegraded:     reg.Gauge("deft_store_degraded", "1 once a storage failure dropped the server to memory-only mode"),
		mRecovered:    reg.Counter("deft_jobs_recovered_total", "interrupted jobs re-enqueued by journal replay at boot"),
		runTrain:      runTrain,
		runExperiment: experiments.RunContext,
	}
	if cl := opts.Cluster; cl != nil {
		s.runTrain = func(ctx context.Context, spec TrainSpec, attempt int, checkpoint bool, progress func(train.Progress)) (*train.Result, error) {
			if spec.Distribute {
				return cl.RunJob(ctx, spec, attempt, checkpoint, progress)
			}
			return runTrain(ctx, spec, attempt, checkpoint, progress)
		}
	}
	reg.GaugeFunc("deft_queue_depth", "flights waiting in the backlog", func() int64 {
		return int64(s.queue.len())
	})
	reg.GaugeFunc("deft_pool_size", "concurrent-flight worker pool size", func() int64 {
		return int64(s.opts.Pool)
	})
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		st := st
		reg.GaugeFunc(obs.Label("deft_jobs", "state", string(st)), "jobs by lifecycle state", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := int64(0)
			for _, j := range s.jobs {
				if j.State == st {
					n++
				}
			}
			return n
		})
	}
	if opts.StoreDir != "" {
		st, rep, err := store.Open(opts.StoreDir)
		if err != nil {
			return nil, err
		}
		st.SetFaultPlan(opts.StoreFaults)
		s.store = st
		s.mStoreCorrupt.Add(int64(rep.Quarantined))
		reg.GaugeFunc("deft_store_objects", "committed artifacts in the durable store", func() int64 {
			return int64(st.Len())
		})
		reg.GaugeFunc("deft_store_quarantined", "artifacts in the store's quarantine directory", func() int64 {
			return int64(st.QuarantineLen())
		})
		j, recs, err := openJournal(opts.StoreDir)
		if err != nil {
			return nil, err
		}
		s.journal = j
		s.replay(recs)
		// Compact: the replayed state is the WAL's minimal equivalent.
		if err := j.rewrite(s.compactedRecords()); err != nil {
			s.degrade(err)
		}
	}
	s.wg.Add(opts.Pool)
	for i := 0; i < opts.Pool; i++ {
		go s.worker()
	}
	return s, nil
}

// runTrain is the production training runner behind the seam.
func runTrain(ctx context.Context, spec TrainSpec, attempt int, checkpoint bool, progress func(train.Progress)) (*train.Result, error) {
	w, factory, cfg, err := buildTrainConfig(spec, attempt, checkpoint, progress)
	if err != nil {
		return nil, err
	}
	return train.RunContext(ctx, w, factory, cfg)
}

// buildTrainConfig resolves a spec into the workload, sparsifier factory
// and train.Config that runTrain (and, under a cluster, every follower
// node — identically, so both sides agree on the run) executes.
func buildTrainConfig(spec TrainSpec, attempt int, checkpoint bool, progress func(train.Progress)) (train.Workload, sparsifier.Factory, train.Config, error) {
	w, err := registry.NewWorkload(spec.Workload)
	if err != nil {
		return nil, nil, train.Config{}, err
	}
	factory, dense, err := registry.NewFactory(spec.Sparsifier, w, spec.Density)
	if err != nil {
		return nil, nil, train.Config{}, err
	}
	return w, factory, train.Config{
		Workers:       spec.Workers,
		Density:       spec.Density,
		LR:            spec.LR,
		Momentum:      spec.Momentum,
		Iterations:    spec.Iterations,
		EvalEvery:     spec.EvalEvery,
		RecordEvery:   spec.RecordEvery,
		ProgressEvery: spec.ProgressEvery,
		Seed:          spec.Seed,
		Quantize:      spec.Quantize,
		DisableSparse: dense,
		Faults:        spec.Faults.ForAttempt(attempt),
		Recover:       spec.Recover,
		Checkpoint:    checkpoint,
		CostModel:     comm.DefaultCostModel(),
		Topology:      comm.DefaultTopology(),
		Progress:      progress,
	}, nil
}

// ------------------------------------------------------ durability layer --

// storeEnabled reports whether durable reads/writes are still on: a
// store was configured and no I/O failure has degraded the server.
func (s *Server) storeEnabled() bool {
	return s.store != nil && !s.degraded.Load()
}

// degrade latches the server into memory-only mode after a storage
// failure. Jobs keep succeeding from memory; the operator sees the
// warning, deft_store_errors_total and the deft_store_degraded gauge.
func (s *Server) degrade(err error) {
	s.mStoreErrors.Inc()
	if s.degraded.CompareAndSwap(false, true) {
		s.gDegraded.Set(1)
		log.Printf("serve: WARNING: storage failure, degrading to memory-only mode "+
			"(completed work will not survive a restart): %v", err)
	}
}

// journalAppend writes one WAL record, degrading on failure.
func (s *Server) journalAppend(r walRecord) {
	if s.journal == nil || s.degraded.Load() {
		return
	}
	if err := s.journal.append(r); err != nil {
		s.degrade(err)
	}
}

// artifactName is the manifest's human-readable name for a spec.
func artifactName(spec JobSpec) string {
	if spec.Train != nil {
		name := spec.Train.Workload + "-" + spec.Train.Sparsifier
		if spec.Train.Quantize {
			name += "-fp16"
		}
		return name
	}
	return "experiment-" + spec.Experiment
}

// persistOutcome commits a successful flight's artifact to the store:
// the outcome JSON plus the trainer's final-parameter checkpoint blob.
// Failures degrade instead of propagating — the job is already done.
func (s *Server) persistOutcome(hash string, spec JobSpec, outcome *runOutcome) {
	if !s.storeEnabled() {
		return
	}
	data, err := json.Marshal(outcome)
	if err != nil {
		panic("serve: marshal outcome: " + err.Error()) // unreachable: plain fields
	}
	var ckpt []byte
	if outcome.TrainResult != nil {
		ckpt = outcome.TrainResult.Checkpoint
	}
	t0 := time.Now()
	_, err = s.store.Put(hash, artifactName(spec), data, ckpt)
	if s.tracer != nil {
		s.tracer.RecordSpan(laneStore, "store", "put "+hash, int64(len(data)), t0, time.Now())
	}
	if err != nil {
		s.degrade(err)
		return
	}
	s.mStorePuts.Inc()
}

// storeLookup fetches and decodes hash's artifact from the durable
// store. Corruption quarantines (inside store.Get) and counts; any
// other I/O error degrades. A decode failure — valid checksum, stale
// schema — is treated as a miss and superseded at the next settle.
func (s *Server) storeLookup(hash string) (*cacheEntry, bool) {
	if !s.storeEnabled() {
		return nil, false
	}
	t0 := time.Now()
	e, err := s.store.Get(hash)
	if s.tracer != nil {
		s.tracer.RecordSpan(laneStore, "store", "get "+hash, -1, t0, time.Now())
	}
	if err != nil {
		switch {
		case errors.Is(err, store.ErrNotFound):
		case errors.Is(err, store.ErrCorrupt):
			s.mStoreCorrupt.Inc()
			log.Printf("serve: %v (quarantined; the spec will re-train)", err)
		default:
			s.degrade(err)
		}
		return nil, false
	}
	var outcome runOutcome
	if err := json.Unmarshal(e.Result, &outcome); err != nil {
		return nil, false
	}
	s.mStoreHits.Inc()
	return &cacheEntry{outcome: &outcome}, true
}

// addCacheLocked installs a completed outcome in the in-memory result
// cache under FIFO eviction. Callers hold s.mu.
func (s *Server) addCacheLocked(hash string, ce *cacheEntry) {
	if _, exists := s.cache[hash]; !exists {
		s.cacheOrder = append(s.cacheOrder, hash)
		// FIFO eviction keeps the result cache bounded; evicted specs
		// fall back to the durable store, then to retraining.
		for len(s.cacheOrder) > maxCachedResults {
			delete(s.cache, s.cacheOrder[0])
			s.cacheOrder = s.cacheOrder[1:]
		}
	}
	s.cache[hash] = ce
}

// maxWALJobs caps how many terminal jobs boot replay keeps: beyond it,
// the oldest terminal jobs are forgotten (their ids 404 after restart)
// while their artifacts remain content-addressed in the store. Open
// jobs are always kept.
const maxWALJobs = 1024

// replay rebuilds the job registry from WAL records, runs during
// construction (no workers yet, no locks needed). Done jobs load — and
// checksum-verify — their artifact from the store; a corrupt or missing
// artifact re-enqueues the job exactly like one that was interrupted
// mid-run. Open jobs re-enqueue in submission order, grouped per hash
// into single flights.
func (s *Server) replay(recs []walRecord) {
	type replayed struct {
		id       string
		spec     JobSpec
		created  time.Time
		terminal string // "" while open
		errMsg   string
	}
	byID := map[string]*replayed{}
	var order []*replayed
	for _, r := range recs {
		switch r.Op {
		case "submit":
			if r.Spec == nil || byID[r.ID] != nil {
				continue
			}
			// Track the id counter across every id ever issued, kept or
			// not, so restarts never reuse one.
			var n int
			if _, err := fmt.Sscanf(r.ID, "job-%d", &n); err == nil && n > s.nextID {
				s.nextID = n
			}
			rj := &replayed{id: r.ID, spec: *r.Spec, created: time.UnixMilli(r.CreatedUnix)}
			byID[r.ID] = rj
			order = append(order, rj)
		case "done", "failed", "cancelled":
			if rj := byID[r.ID]; rj != nil {
				rj.terminal = r.Op
				rj.errMsg = r.Error
			}
		}
	}
	// Trim: drop the oldest terminal jobs past the cap.
	terminal := 0
	for _, rj := range order {
		if rj.terminal != "" {
			terminal++
		}
	}
	if terminal > maxWALJobs {
		drop := terminal - maxWALJobs
		kept := order[:0]
		for _, rj := range order {
			if rj.terminal != "" && drop > 0 {
				drop--
				continue
			}
			kept = append(kept, rj)
		}
		order = kept
	}

	flightsByHash := map[string]*flight{}
	for _, rj := range order {
		spec := rj.spec
		if err := (&spec).normalize(); err != nil {
			// Schema drift across versions: the recorded spec no longer
			// validates. Nothing to run; forget the job.
			continue
		}
		hash := spec.hash()
		job := &Job{ID: rj.id, Spec: spec, Hash: hash, Created: rj.created, events: newEventLog()}
		switch rj.terminal {
		case "failed":
			job.State = StateFailed
			job.Err = rj.errMsg
			job.Finished = rj.created
			job.events.appendEvent(event{Type: "done", State: string(StateFailed), Error: job.Err})
			job.events.close()
		case "cancelled":
			job.State = StateCancelled
			job.Finished = rj.created
			job.events.appendEvent(event{Type: "done", State: string(StateCancelled)})
			job.events.close()
		default: // "done" or open: the store decides
			ce := s.cache[hash]
			if ce == nil {
				if got, ok := s.storeLookup(hash); ok {
					ce = got
					s.addCacheLocked(hash, ce)
				}
			}
			if ce != nil {
				job.State = StateDone
				job.CacheHit = rj.terminal == "" // open job resolved by content address
				job.Started = rj.created
				job.Finished = rj.created
				job.outcome = ce.outcome
				job.events.appendEvent(event{Type: "done", State: string(StateDone)})
				job.events.close()
				s.recoveredDone++
			} else {
				// Interrupted (or its artifact was lost/quarantined):
				// deterministically re-enqueue.
				job.State = StateQueued
				fl := flightsByHash[hash]
				if fl == nil {
					ctx, cancel := context.WithCancel(s.baseCtx)
					fl = &flight{hash: hash, spec: spec, ctx: ctx, cancel: cancel, priority: spec.priority(), queueIdx: -1}
					flightsByHash[hash] = fl
					s.flights[hash] = fl
					s.queue.push(fl, false) //nolint:errcheck // unbounded pre-worker push cannot fail
				} else if p := spec.priority(); p > fl.priority {
					fl.priority = p // pre-worker: queue order not yet observed
				}
				job.flight = fl
				fl.jobs = append(fl.jobs, job)
				job.events.appendEvent(event{Type: "state", State: string(StateQueued)})
				s.recoveredRequeued++
				s.mRecovered.Inc()
			}
		}
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
	}
}

// compactedRecords renders the replayed registry back into a minimal
// WAL: one submit per job, plus its terminal record where settled.
func (s *Server) compactedRecords() []walRecord {
	var recs []walRecord
	for _, id := range s.order {
		j := s.jobs[id]
		spec := j.Spec
		recs = append(recs, walRecord{
			Op: "submit", ID: j.ID, Hash: j.Hash, Spec: &spec, CreatedUnix: j.Created.UnixMilli(),
		})
		switch j.State {
		case StateDone:
			recs = append(recs, walRecord{Op: "done", ID: j.ID, Hash: j.Hash})
		case StateFailed:
			recs = append(recs, walRecord{Op: "failed", ID: j.ID, Hash: j.Hash, Error: j.Err})
		case StateCancelled:
			recs = append(recs, walRecord{Op: "cancelled", ID: j.ID, Hash: j.Hash})
		}
	}
	return recs
}

// RecoveryStats reports what boot-time journal replay restored: jobs
// served terminal from the store and journal, and interrupted jobs
// re-enqueued to run again.
func (s *Server) RecoveryStats() (restored, requeued int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recoveredDone, s.recoveredRequeued
}

// Degraded reports whether a storage failure has dropped the server to
// memory-only mode.
func (s *Server) Degraded() bool { return s.degraded.Load() }

// closeDurable flushes and closes the journal exactly once.
func (s *Server) closeDurable() {
	s.closeOnce.Do(func() {
		if s.journal != nil {
			if err := s.journal.close(); err != nil {
				s.mStoreErrors.Inc()
			}
		}
	})
}

// Shutdown stops the server abortively: no new jobs are accepted, every
// flight's context is cancelled (running trainers abort mid-iteration,
// queued jobs drain as cancelled), and it waits — bounded by ctx — for
// the pool to finish. Shutdown-cancelled jobs are deliberately left open
// in the journal, so a durable server re-runs them on the next boot.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.queue.close()
	s.baseCancel()
	return s.awaitPool(ctx)
}

// Drain stops the server gracefully: no new jobs are accepted, but the
// backlog and every running flight run to completion (and are persisted)
// before Drain returns. If ctx expires first the remaining flights are
// aborted as in Shutdown and ctx's error is returned; those jobs stay
// open in the journal and re-run on the next boot.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.queue.close()

	if err := s.awaitPool(ctx); err != nil {
		s.baseCancel()
		return err
	}
	return nil
}

// awaitPool waits for the worker pool to exit, bounded by ctx, then
// closes the journal.
func (s *Server) awaitPool(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closeDurable()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker drains the flight queue until Shutdown/Drain closes it and the
// backlog empties.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		fl := s.queue.pop()
		if fl == nil {
			return
		}
		s.runFlight(fl)
	}
}

// runFlight executes one flight and settles every job still attached.
func (s *Server) runFlight(fl *flight) {
	if err := fl.ctx.Err(); err != nil {
		// Cancelled while queued (every attached job was deleted, or the
		// server shut down): settle whatever is still attached.
		s.settleFlight(fl, nil, context.Canceled)
		return
	}
	s.mu.Lock()
	fl.mu.Lock()
	fl.started = true
	now := time.Now()
	for _, j := range fl.jobs {
		j.State = StateRunning
		j.Started = now
		j.events.appendEvent(event{Type: "state", State: string(StateRunning)})
		s.hQueueWait.Observe(int64(now.Sub(j.Created)))
		if s.tracer != nil {
			s.tracer.RecordSpan(laneJobs, "jobs", "queued "+j.ID, -1, j.Created, now)
		}
	}
	fl.mu.Unlock()
	s.mu.Unlock()

	s.mRuns.Inc()
	s.mInFlight.Add(1)
	var outcome *runOutcome
	var err error
	if fl.spec.Train != nil {
		outcome, err = s.runTrainFlight(fl)
	} else {
		var tab *experiments.Table
		tab, err = s.runExperiment(fl.ctx, fl.spec.Experiment, experiments.Options{
			Quick:    fl.spec.Quick,
			Seed:     fl.spec.Seed,
			Progress: fl.progress,
		})
		if err == nil {
			outcome = &runOutcome{Table: tab}
		}
	}
	s.mInFlight.Add(-1)
	s.settleFlight(fl, outcome, err)
}

// runTrainFlight executes a training flight's attempts: the run plus up to
// Retries re-executions after faulted (not cancelled) runs, under capped
// exponential backoff and the spec's optional wall-clock budget. Retries
// stay inside the one flight, so attached jobs — and any identical spec
// submitted meanwhile, which single-flight joins this flight — never
// train twice for one failure.
func (s *Server) runTrainFlight(fl *flight) (*runOutcome, error) {
	spec := *fl.spec.Train
	runCtx := fl.ctx
	if spec.BudgetMS > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(fl.ctx, time.Duration(spec.BudgetMS)*time.Millisecond)
		defer cancel()
	}
	backoff := time.Duration(spec.BackoffMS) * time.Millisecond
	for attempt := 1; ; attempt++ {
		s.noteAttempt(fl, attempt, nil)
		attemptStart := time.Now()
		// Fresh detector per attempt: a retry's series starts over, so its
		// warmup does too.
		det := analyze.NewDetector(0, 0, 0)
		res, err := s.runTrain(runCtx, spec, attempt, s.storeEnabled(), func(p train.Progress) {
			fl.progress("", p)
			for _, a := range observeProgress(det, p) {
				s.mAnomalies.Inc()
				fl.anomaly(a)
			}
		})
		if s.tracer != nil {
			s.tracer.RecordSpan(laneAttempts, "attempts", "attempt", int64(attempt), attemptStart, time.Now())
		}
		if err == nil {
			return &runOutcome{TrainResult: res}, nil
		}
		if runCtx.Err() != nil && fl.ctx.Err() == nil {
			// The budget fired, not the client: fail with the distinct
			// budget reason (the run error rides along unwrapped, so a
			// deadline never classifies as a cancellation).
			s.mBudget.Inc()
			return nil, fmt.Errorf("%w: budget_ms=%d elapsed on attempt %d: %v",
				ErrBudget, spec.BudgetMS, attempt, err)
		}
		if fl.ctx.Err() != nil {
			return nil, err // client cancellation / shutdown: never retried
		}
		if attempt > spec.Retries {
			if spec.Retries > 0 {
				return nil, fmt.Errorf("retries exhausted after %d attempts: %w", attempt, err)
			}
			return nil, err
		}
		s.noteAttempt(fl, attempt+1, err)
		select {
		case <-time.After(backoff):
		case <-runCtx.Done():
			// Cancelled or budget-expired mid-backoff: the next loop pass
			// fails fast inside the trainer and classifies above.
		}
		backoff = min(backoff*2, maxBackoffMS*time.Millisecond)
	}
}

// noteAttempt records the attempt count on every attached job and — for
// retries (attempt > 1, called before the backoff with the killing error)
// — emits a "retry" stream event. Lock order matches runFlight: s.mu, then
// fl.mu; a job attaching concurrently holds both too, so late joiners see
// a consistent attempt count.
func (s *Server) noteAttempt(fl *flight, attempt int, cause error) {
	s.mu.Lock()
	fl.mu.Lock()
	fl.attempt = attempt
	for _, j := range fl.jobs {
		j.Attempts = attempt
	}
	if cause != nil {
		s.mRetries.Inc()
		line := marshalEvent(event{Type: "retry", Attempt: attempt, Error: cause.Error()})
		fl.history = append(fl.history, line)
		for _, j := range fl.jobs {
			j.events.append(line)
		}
	}
	fl.mu.Unlock()
	s.mu.Unlock()
}

// settleFlight records a flight's outcome: success persists the artifact
// to the durable store, populates the result cache and completes attached
// jobs; failure or cancellation marks them failed/cancelled. Detached
// (individually cancelled) jobs were settled at DELETE time. Terminal WAL
// records are written after the locks drop — a crash in that window just
// re-runs the job, which the content address turns into a store hit.
func (s *Server) settleFlight(fl *flight, outcome *runOutcome, err error) {
	if err == nil {
		// The store commit (several fsyncs) runs before any server lock.
		s.persistOutcome(fl.hash, fl.spec, outcome)
	}
	var terminals []walRecord

	s.mu.Lock()
	if s.flights[fl.hash] == fl {
		delete(s.flights, fl.hash)
	}
	shuttingDown := s.closed
	fl.cancel() // release the context regardless of outcome

	fl.mu.Lock()
	if err == nil {
		s.addCacheLocked(fl.hash, &cacheEntry{outcome: outcome, history: fl.history, anomalies: fl.anomalies})
	}
	now := time.Now()
	for _, j := range fl.jobs {
		j.Finished = now
		j.flight = nil
		if !j.Started.IsZero() {
			s.hRunDur.Observe(int64(now.Sub(j.Started)))
			if s.tracer != nil {
				s.tracer.RecordSpan(laneJobs, "jobs", "running "+j.ID, int64(j.Attempts), j.Started, now)
			}
		}
		switch {
		case err == nil:
			j.State = StateDone
			j.outcome = outcome
			j.anomalies = fl.anomalies
			j.events.appendEvent(event{Type: "done", State: string(StateDone)})
			terminals = append(terminals, walRecord{Op: "done", ID: j.ID, Hash: j.Hash})
		case errors.Is(err, context.Canceled) || errors.Is(err, comm.ErrAborted):
			j.State = StateCancelled
			j.events.appendEvent(event{Type: "done", State: string(StateCancelled)})
			if !shuttingDown {
				// Shutdown cancellations stay open in the journal on
				// purpose: the job comes back and re-runs on the next boot.
				terminals = append(terminals, walRecord{Op: "cancelled", ID: j.ID, Hash: j.Hash})
			}
		default:
			j.State = StateFailed
			j.Err = err.Error()
			j.events.appendEvent(event{Type: "done", State: string(StateFailed), Error: j.Err})
			terminals = append(terminals, walRecord{Op: "failed", ID: j.ID, Hash: j.Hash, Error: j.Err})
		}
		j.events.close()
	}
	fl.jobs = nil
	fl.mu.Unlock()
	s.mu.Unlock()

	for _, r := range terminals {
		s.journalAppend(r)
	}
}

// ----------------------------------------------------------- HTTP layer --

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDelete)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	return mux
}

// jobView is the wire form of a Job.
type jobView struct {
	ID       string      `json:"id"`
	State    JobState    `json:"state"`
	Hash     string      `json:"hash"`
	CacheHit bool        `json:"cache_hit,omitempty"`
	Attempts int         `json:"attempts,omitempty"`
	Spec     JobSpec     `json:"spec"`
	Created  time.Time   `json:"created"`
	Started  *time.Time  `json:"started,omitempty"`
	Finished *time.Time  `json:"finished,omitempty"`
	Error    string      `json:"error,omitempty"`
	Result   *runOutcome `json:"result,omitempty"`
}

// view renders a job; callers hold s.mu. withResult attaches the outcome
// (job detail only — the list stays light).
func (j *Job) view(withResult bool) jobView {
	v := jobView{
		ID: j.ID, State: j.State, Hash: j.Hash, CacheHit: j.CacheHit,
		Attempts: j.Attempts, Spec: j.Spec, Created: j.Created, Error: j.Err,
	}
	if !j.Started.IsZero() {
		t := j.Started
		v.Started = &t
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		v.Finished = &t
	}
	if withResult && j.State == StateDone {
		v.Result = j.outcome
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone: nothing to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit accepts a job. With ?wait=1 the response long-polls: it
// is written only once the job reaches a terminal state (or the client
// disconnects), carrying the final view with the result attached.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode spec: %v", err)
		return
	}
	if err := spec.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	if spec.Train != nil && spec.Train.Distribute && s.opts.Cluster == nil {
		writeError(w, http.StatusBadRequest, "spec requests distribute but this server has no cluster (start with -cluster-listen)")
		return
	}
	hash := spec.hash()
	waitQ := r.URL.Query().Get("wait")
	wait := waitQ == "1" || waitQ == "true"

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	if s.cache[hash] == nil && s.flights[hash] == nil {
		// Durable fallback: the hash may be in the store from a previous
		// process lifetime (or evicted from the FIFO cache). One small
		// checksummed read; a hit re-primes the memory cache.
		if ce, ok := s.storeLookup(hash); ok {
			s.addCacheLocked(hash, ce)
		}
	}
	s.nextID++
	job := &Job{
		ID:      fmt.Sprintf("job-%06d", s.nextID),
		Spec:    spec,
		Hash:    hash,
		Created: time.Now(),
		events:  newEventLog(),
	}
	status := http.StatusAccepted
	switch {
	case s.cache[hash] != nil:
		// Content-addressed cache hit: done before it ever queues, with
		// the original run's stream replayed into the job's log.
		ce := s.cache[hash]
		job.State = StateDone
		job.CacheHit = true
		job.Started = job.Created
		job.Finished = job.Created
		job.outcome = ce.outcome
		job.anomalies = ce.anomalies
		for _, line := range ce.history {
			job.events.append(line)
		}
		job.events.appendEvent(event{Type: "done", State: string(StateDone)})
		job.events.close()
		s.mCacheHits.Inc()
		status = http.StatusOK
	case s.flights[hash] != nil && s.flights[hash].ctx.Err() == nil:
		// Single-flight join: ride the in-progress run. A flight whose
		// context is already cancelled (its last job was just deleted) is
		// not joinable — it falls through and a fresh flight replaces it
		// in the map (settleFlight only deletes its own entry).
		fl := s.flights[hash]
		job.flight = fl
		fl.mu.Lock()
		job.State = StateQueued
		if fl.started {
			job.State = StateRunning
			job.Started = time.Now()
			job.Attempts = fl.attempt
		}
		for _, line := range fl.history {
			job.events.append(line)
		}
		job.events.appendEvent(event{Type: "state", State: string(job.State)})
		fl.jobs = append(fl.jobs, job)
		fl.mu.Unlock()
		// A higher-priority joiner pulls the whole flight forward in the
		// backlog: the work is shared, so it runs at the highest priority
		// any attached job asked for.
		s.queue.bump(fl, spec.priority())
		s.mDeduped.Inc()
	default:
		ctx, cancel := context.WithCancel(s.baseCtx)
		fl := &flight{
			hash: hash, spec: spec, ctx: ctx, cancel: cancel,
			jobs: []*Job{job}, priority: spec.priority(), queueIdx: -1,
		}
		job.State = StateQueued
		job.flight = fl
		job.events.appendEvent(event{Type: "state", State: string(StateQueued)})
		if err := s.queue.push(fl, true); err != nil {
			cancel()
			s.mu.Unlock()
			writeError(w, http.StatusServiceUnavailable, "queue full (%d flights waiting)", s.opts.Queue)
			return
		}
		s.flights[hash] = fl
	}
	s.mSubmitted.Inc()
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	// Write-ahead: the submission is fsynced before the response commits
	// to it. A cache-hit job settled above, so its terminal rides along.
	specCopy := job.Spec
	s.journalAppend(walRecord{
		Op: "submit", ID: job.ID, Hash: hash, Spec: &specCopy, CreatedUnix: job.Created.UnixMilli(),
	})
	if job.State == StateDone {
		s.journalAppend(walRecord{Op: "done", ID: job.ID, Hash: hash})
	}
	v := job.view(true)
	events := job.events
	s.mu.Unlock()

	if wait && !v.State.Terminal() {
		select {
		case <-events.terminated():
			s.mu.Lock()
			v = job.view(true)
			s.mu.Unlock()
			if v.State == StateDone {
				status = http.StatusOK
			}
		case <-r.Context().Done():
			return // client gone; the job runs on regardless
		}
	}
	writeJSON(w, status, v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]jobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	var v jobView
	if ok {
		v = job.view(true)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleDelete cancels a job. A queued or running job detaches from its
// flight and turns cancelled immediately; when the last attached job
// leaves, the flight's context is cancelled and the trainer aborts
// mid-iteration. Deleting a terminal job is an idempotent no-op.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	cancelled := false
	if fl := job.flight; fl != nil {
		fl.mu.Lock()
		for i, j := range fl.jobs {
			if j == job {
				fl.jobs = append(fl.jobs[:i], fl.jobs[i+1:]...)
				break
			}
		}
		orphaned := len(fl.jobs) == 0
		fl.mu.Unlock()
		job.flight = nil
		job.State = StateCancelled
		job.Finished = time.Now()
		job.events.appendEvent(event{Type: "done", State: string(StateCancelled)})
		job.events.close()
		cancelled = true
		if orphaned {
			fl.cancel()
		}
	}
	v := job.view(false)
	id, hash := job.ID, job.Hash
	s.mu.Unlock()
	if cancelled {
		// A client cancellation — unlike a shutdown one — is journalled
		// terminal: the client asked for this job to stop, so it must not
		// resurrect on the next boot.
		s.journalAppend(walRecord{Op: "cancelled", ID: id, Hash: hash})
	}
	writeJSON(w, http.StatusOK, v)
}

// handleStream serves the job's event log as NDJSON: full history first,
// then live events until the job reaches a terminal state or the client
// disconnects.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	if s.tracer != nil {
		streamStart := time.Now()
		id := job.ID
		defer func() {
			s.tracer.RecordSpan(laneStreams, "streams", "stream "+id, -1, streamStart, time.Now())
		}()
	}
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()
	cursor := 0
	for {
		lines, closed, ping := job.events.next(cursor)
		for _, line := range lines {
			// A write error means the client is gone: stop immediately
			// instead of pumping the rest of the log into a dead socket.
			if _, err := w.Write(line); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
			cursor++ // one line consumed
		}
		if flusher != nil {
			flusher.Flush()
		}
		if len(lines) > 0 {
			// A busy job can keep lines flowing on every pass, so the select
			// below — the only other disconnect check — may never run; a
			// handler looping here after its client left would be a
			// goroutine leak for as long as the job runs. Check the request
			// context each pass.
			if ctx.Err() != nil {
				return
			}
			continue
		}
		if closed {
			return
		}
		select {
		case <-ping:
		case <-ctx.Done():
			return
		}
	}
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": experiments.IDs()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	closed := s.closed
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if closed {
		status = "shutting down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"jobs":           n,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// handleMetrics serves the registry in Prometheus text exposition format
// — counters, gauges, jobs by state, and the queue-wait / run-duration
// histograms a fleet scheduler or dashboard scrapes. ?format=expvar keeps
// the legacy JSON shape (same keys as before the registry existed), read
// from the same counters, for existing consumers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "expvar" {
		byState := map[JobState]int{}
		s.mu.Lock()
		for _, j := range s.jobs {
			byState[j.State]++
		}
		s.mu.Unlock()
		states := map[string]int{}
		for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
			states[string(st)] = byState[st]
		}
		out := map[string]any{
			"jobs":               states,
			"submitted":          s.mSubmitted.Value(),
			"cache_hits":         s.mCacheHits.Value(),
			"deduped":            s.mDeduped.Value(),
			"runs":               s.mRuns.Value(),
			"in_flight_trainers": s.mInFlight.Value(),
			"queue_depth":        s.queue.len(),
			"pool_size":          s.opts.Pool,
		}
		if s.store != nil {
			out["store"] = map[string]any{
				"hits":        s.mStoreHits.Value(),
				"puts":        s.mStorePuts.Value(),
				"corrupt":     s.mStoreCorrupt.Value(),
				"errors":      s.mStoreErrors.Value(),
				"objects":     s.store.Len(),
				"quarantined": s.store.QuarantineLen(),
				"degraded":    s.degraded.Load(),
			}
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	s.reg.WritePrometheus(w) //nolint:errcheck // client gone: nothing to do
}

// Metrics returns the server\'s metrics registry, for callers that want
// to register their own metrics next to the service\'s or snapshot
// histograms programmatically.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Jobs returns the ids of all registered jobs in submission order (test
// and tooling helper).
func (s *Server) Jobs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]string(nil), s.order...)
	slices.Sort(out)
	return out
}
