// Package serve is the experiment-job service: it exposes every paper
// artefact id and ad-hoc training configuration as a schedulable job over
// HTTP, turning the batch reproduction into a multi-tenant system.
//
//	POST   /v1/jobs          submit {"experiment":"fig4"} or {"train":{...}}
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{id}         job status + result
//	GET    /v1/jobs/{id}/stream  NDJSON live metrics
//	DELETE /v1/jobs/{id}         cancel (stops a running trainer mid-iteration)
//	GET    /v1/experiments   runnable experiment ids
//	GET    /healthz          liveness
//	GET    /metrics          Prometheus text (counters, gauges, latency
//	                         histograms); ?format=expvar keeps the legacy JSON
//
// Jobs are content-addressed by the hash of their normalized spec. A
// completed hash is served from the result cache; an in-flight hash is
// joined (single-flight), so N concurrent identical submissions train
// exactly once. Every flight runs under its own context, derived from the
// server's: DELETE cancels it when the last attached job is cancelled,
// and the abort propagates through train.RunContext into the simulated
// cluster, which stops mid-iteration rather than at run end.
//
// Training jobs harden against faults: a spec may carry a deterministic
// chaos schedule ("faults"), a retry policy ("retries"/"backoff_ms" —
// faulted runs re-execute inside the same flight with capped exponential
// backoff, so retries never double-train a deduplicated spec) and a
// wall-clock budget ("budget_ms" — expiry fails the job with the distinct
// ErrBudget reason rather than a cancellation).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/registry"
	"repro/internal/train"
)

// Trace lanes of the serve process: job lifecycle spans (queued,
// running), per-attempt spans, and stream sessions each get their own
// timeline in the exported trace.
const (
	laneJobs = iota
	laneAttempts
	laneStreams
)

// JobState is a job's position in its lifecycle.
type JobState string

// The job lifecycle: queued → running → done | failed | cancelled.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final (done, failed or cancelled).
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// runOutcome is what a flight produces: exactly one of the two, matching
// the spec kind.
type runOutcome struct {
	TrainResult *train.Result      `json:"train_result,omitempty"`
	Table       *experiments.Table `json:"table,omitempty"`
}

// Job is one submission. All fields are guarded by the server mutex.
type Job struct {
	ID       string
	Spec     JobSpec
	Hash     string
	State    JobState
	Created  time.Time
	Started  time.Time
	Finished time.Time
	Err      string
	CacheHit bool
	// Attempts counts the executions the job's flight has started (1 for a
	// run that never retried; 0 until it first runs).
	Attempts int

	flight    *flight // non-nil while queued/running
	outcome   *runOutcome
	events    *eventLog
	anomalies []analyze.Anomaly // live detector flags, settled with the run
}

// flight is one in-flight execution of a spec, shared by every job whose
// hash matches while it runs. Its jobs list is the attachment set: DELETE
// detaches a job, and cancelling the last attached job cancels the
// flight's context.
type flight struct {
	hash   string
	spec   JobSpec
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	started   bool
	attempt   int               // current execution attempt (1-based once running)
	jobs      []*Job            // attached jobs (fan-out targets)
	history   []json.RawMessage // progress lines so far, replayed to late joiners
	anomalies []analyze.Anomaly // live detector flags across attempts
}

// progress fans one training event out to every attached job's stream.
// It runs on the training path (rank 0, between barriers): one marshal,
// one slice append per attached job, no blocking.
func (f *flight) progress(run string, p train.Progress) {
	line := marshalEvent(event{Type: "progress", Run: run, Progress: &p})
	f.mu.Lock()
	f.history = append(f.history, line)
	for _, j := range f.jobs {
		j.events.append(line)
	}
	f.mu.Unlock()
}

// maxAnomalies bounds the anomalies a flight keeps and streams, so a
// pathological series cannot grow job state without bound.
const maxAnomalies = 256

// anomaly records one live detector flag and fans it out to every
// attached job's stream as an "anomaly" event. Runs on the training
// path like progress; same cost profile.
func (f *flight) anomaly(a analyze.Anomaly) {
	f.mu.Lock()
	if len(f.anomalies) < maxAnomalies {
		f.anomalies = append(f.anomalies, a)
		line := marshalEvent(event{Type: "anomaly", Anomaly: &a})
		f.history = append(f.history, line)
		for _, j := range f.jobs {
			j.events.append(line)
		}
	}
	f.mu.Unlock()
}

// cacheEntry is a completed flight's outcome plus its progress history
// and anomalies, so cache-hit jobs replay the identical stream and
// report.
type cacheEntry struct {
	outcome   *runOutcome
	history   []json.RawMessage
	anomalies []analyze.Anomaly
}

// maxCachedResults bounds the in-memory result cache (FIFO eviction).
// Per-entry size is already bounded by the spec's maxRecords sample cap.
const maxCachedResults = 512

// Options configures a Server.
type Options struct {
	// Pool is the number of concurrent flights (default 2). Each training
	// flight itself runs spec-many worker goroutines.
	Pool int
	// Queue bounds the backlog of waiting flights (default 256);
	// submissions beyond it are rejected with 503.
	Queue int
	// Tracer, when non-nil, records job-lifecycle spans (queued, running,
	// attempt N, stream) for Chrome-trace export. nil disables tracing.
	Tracer *obs.Tracer
}

// Server owns the job registry, the single-flight dedup layer, the result
// cache and the worker pool. Create with New, serve via Handler, stop
// with Shutdown.
type Server struct {
	opts  Options
	start time.Time

	mu         sync.Mutex
	closed     bool
	nextID     int
	jobs       map[string]*Job
	order      []string // insertion order for listing
	flights    map[string]*flight
	cache      map[string]*cacheEntry
	cacheOrder []string // FIFO for eviction

	queue      chan *flight
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	// Metrics live in a per-server obs.Registry (a process may host
	// several servers), exposed as Prometheus text by /metrics and as the
	// legacy JSON by /metrics?format=expvar — both read the same counters.
	reg        *obs.Registry
	tracer     *obs.Tracer
	mSubmitted *obs.Counter   // jobs accepted
	mCacheHits *obs.Counter   // jobs answered from the result cache
	mDeduped   *obs.Counter   // jobs attached to an in-flight run
	mRuns      *obs.Counter   // flights actually executed
	mRetries   *obs.Counter   // retry attempts started after a faulted run
	mBudget    *obs.Counter   // jobs failed by wall-clock budget expiry
	mAnomalies *obs.Counter   // live anomaly events emitted
	mInFlight  *obs.Gauge     // flights executing right now
	hQueueWait *obs.Histogram // job creation -> flight start
	hRunDur    *obs.Histogram // flight start -> settle, per job

	// Execution seams; tests substitute these to count and delay runs.
	// attempt is the 1-based execution attempt: the production trainer
	// prunes the spec's fault plan through ForAttempt, so attempts-scoped
	// faults expire on retries.
	runTrain      func(ctx context.Context, spec TrainSpec, attempt int, progress func(train.Progress)) (*train.Result, error)
	runExperiment func(ctx context.Context, id string, o experiments.Options) (*experiments.Table, error)
}

// ErrBudget marks a job that ran out of its spec's wall-clock budget
// (budget_ms): the job fails — distinctly from a client cancellation —
// with this sentinel in its error chain.
var ErrBudget = errors.New("serve: wall-clock budget exhausted")

// New creates a server and starts its worker pool.
func New(opts Options) *Server {
	if opts.Pool <= 0 {
		opts.Pool = 2
	}
	if opts.Queue <= 0 {
		opts.Queue = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	reg := obs.NewRegistry()
	s := &Server{
		opts:          opts,
		start:         time.Now(),
		jobs:          map[string]*Job{},
		flights:       map[string]*flight{},
		cache:         map[string]*cacheEntry{},
		queue:         make(chan *flight, opts.Queue),
		baseCtx:       ctx,
		baseCancel:    cancel,
		reg:           reg,
		tracer:        opts.Tracer,
		mSubmitted:    reg.Counter("deft_jobs_submitted_total", "jobs accepted by POST /v1/jobs"),
		mCacheHits:    reg.Counter("deft_jobs_cache_hits_total", "jobs answered from the content-addressed result cache"),
		mDeduped:      reg.Counter("deft_jobs_deduped_total", "jobs attached to an in-flight identical run"),
		mRuns:         reg.Counter("deft_runs_total", "flights actually executed"),
		mRetries:      reg.Counter("deft_retries_total", "retry attempts started after a faulted run"),
		mBudget:       reg.Counter("deft_budget_expired_total", "jobs failed by wall-clock budget expiry"),
		mAnomalies:    reg.Counter("deft_anomalies_total", "anomaly events flagged on live job streams"),
		mInFlight:     reg.Gauge("deft_flights_in_flight", "flights executing right now"),
		hQueueWait:    reg.Histogram("deft_job_queue_wait_seconds", "job creation to flight start"),
		hRunDur:       reg.Histogram("deft_job_run_seconds", "flight start to settlement, per attached job"),
		runTrain:      runTrain,
		runExperiment: experiments.RunContext,
	}
	reg.GaugeFunc("deft_queue_depth", "flights waiting in the backlog", func() int64 {
		return int64(len(s.queue))
	})
	reg.GaugeFunc("deft_pool_size", "concurrent-flight worker pool size", func() int64 {
		return int64(s.opts.Pool)
	})
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		st := st
		reg.GaugeFunc(obs.Label("deft_jobs", "state", string(st)), "jobs by lifecycle state", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := int64(0)
			for _, j := range s.jobs {
				if j.State == st {
					n++
				}
			}
			return n
		})
	}
	s.wg.Add(opts.Pool)
	for i := 0; i < opts.Pool; i++ {
		go s.worker()
	}
	return s
}

// runTrain is the production training runner behind the seam.
func runTrain(ctx context.Context, spec TrainSpec, attempt int, progress func(train.Progress)) (*train.Result, error) {
	w, err := registry.NewWorkload(spec.Workload)
	if err != nil {
		return nil, err
	}
	factory, dense, err := registry.NewFactory(spec.Sparsifier, w, spec.Density)
	if err != nil {
		return nil, err
	}
	return train.RunContext(ctx, w, factory, train.Config{
		Workers:       spec.Workers,
		Density:       spec.Density,
		LR:            spec.LR,
		Momentum:      spec.Momentum,
		Iterations:    spec.Iterations,
		EvalEvery:     spec.EvalEvery,
		RecordEvery:   spec.RecordEvery,
		ProgressEvery: spec.ProgressEvery,
		Seed:          spec.Seed,
		Quantize:      spec.Quantize,
		DisableSparse: dense,
		Faults:        spec.Faults.ForAttempt(attempt),
		Recover:       spec.Recover,
		CostModel:     comm.DefaultCostModel(),
		Topology:      comm.DefaultTopology(),
		Progress:      progress,
	})
}

// Shutdown stops the server: no new jobs are accepted, every flight's
// context is cancelled (running trainers abort mid-iteration, queued jobs
// drain as cancelled), and it waits — bounded by ctx — for the pool to
// finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.baseCancel()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker drains the flight queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for fl := range s.queue {
		s.runFlight(fl)
	}
}

// runFlight executes one flight and settles every job still attached.
func (s *Server) runFlight(fl *flight) {
	if err := fl.ctx.Err(); err != nil {
		// Cancelled while queued (every attached job was deleted, or the
		// server shut down): settle whatever is still attached.
		s.settleFlight(fl, nil, context.Canceled)
		return
	}
	s.mu.Lock()
	fl.mu.Lock()
	fl.started = true
	now := time.Now()
	for _, j := range fl.jobs {
		j.State = StateRunning
		j.Started = now
		j.events.appendEvent(event{Type: "state", State: string(StateRunning)})
		s.hQueueWait.Observe(int64(now.Sub(j.Created)))
		if s.tracer != nil {
			s.tracer.RecordSpan(laneJobs, "jobs", "queued "+j.ID, -1, j.Created, now)
		}
	}
	fl.mu.Unlock()
	s.mu.Unlock()

	s.mRuns.Inc()
	s.mInFlight.Add(1)
	var outcome *runOutcome
	var err error
	if fl.spec.Train != nil {
		outcome, err = s.runTrainFlight(fl)
	} else {
		var tab *experiments.Table
		tab, err = s.runExperiment(fl.ctx, fl.spec.Experiment, experiments.Options{
			Quick:    fl.spec.Quick,
			Seed:     fl.spec.Seed,
			Progress: fl.progress,
		})
		if err == nil {
			outcome = &runOutcome{Table: tab}
		}
	}
	s.mInFlight.Add(-1)
	s.settleFlight(fl, outcome, err)
}

// runTrainFlight executes a training flight's attempts: the run plus up to
// Retries re-executions after faulted (not cancelled) runs, under capped
// exponential backoff and the spec's optional wall-clock budget. Retries
// stay inside the one flight, so attached jobs — and any identical spec
// submitted meanwhile, which single-flight joins this flight — never
// train twice for one failure.
func (s *Server) runTrainFlight(fl *flight) (*runOutcome, error) {
	spec := *fl.spec.Train
	runCtx := fl.ctx
	if spec.BudgetMS > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(fl.ctx, time.Duration(spec.BudgetMS)*time.Millisecond)
		defer cancel()
	}
	backoff := time.Duration(spec.BackoffMS) * time.Millisecond
	for attempt := 1; ; attempt++ {
		s.noteAttempt(fl, attempt, nil)
		attemptStart := time.Now()
		// Fresh detector per attempt: a retry's series starts over, so its
		// warmup does too.
		det := analyze.NewDetector(0, 0, 0)
		res, err := s.runTrain(runCtx, spec, attempt, func(p train.Progress) {
			fl.progress("", p)
			for _, a := range observeProgress(det, p) {
				s.mAnomalies.Inc()
				fl.anomaly(a)
			}
		})
		if s.tracer != nil {
			s.tracer.RecordSpan(laneAttempts, "attempts", "attempt", int64(attempt), attemptStart, time.Now())
		}
		if err == nil {
			return &runOutcome{TrainResult: res}, nil
		}
		if runCtx.Err() != nil && fl.ctx.Err() == nil {
			// The budget fired, not the client: fail with the distinct
			// budget reason (the run error rides along unwrapped, so a
			// deadline never classifies as a cancellation).
			s.mBudget.Inc()
			return nil, fmt.Errorf("%w: budget_ms=%d elapsed on attempt %d: %v",
				ErrBudget, spec.BudgetMS, attempt, err)
		}
		if fl.ctx.Err() != nil {
			return nil, err // client cancellation / shutdown: never retried
		}
		if attempt > spec.Retries {
			if spec.Retries > 0 {
				return nil, fmt.Errorf("retries exhausted after %d attempts: %w", attempt, err)
			}
			return nil, err
		}
		s.noteAttempt(fl, attempt+1, err)
		select {
		case <-time.After(backoff):
		case <-runCtx.Done():
			// Cancelled or budget-expired mid-backoff: the next loop pass
			// fails fast inside the trainer and classifies above.
		}
		backoff = min(backoff*2, maxBackoffMS*time.Millisecond)
	}
}

// noteAttempt records the attempt count on every attached job and — for
// retries (attempt > 1, called before the backoff with the killing error)
// — emits a "retry" stream event. Lock order matches runFlight: s.mu, then
// fl.mu; a job attaching concurrently holds both too, so late joiners see
// a consistent attempt count.
func (s *Server) noteAttempt(fl *flight, attempt int, cause error) {
	s.mu.Lock()
	fl.mu.Lock()
	fl.attempt = attempt
	for _, j := range fl.jobs {
		j.Attempts = attempt
	}
	if cause != nil {
		s.mRetries.Inc()
		line := marshalEvent(event{Type: "retry", Attempt: attempt, Error: cause.Error()})
		fl.history = append(fl.history, line)
		for _, j := range fl.jobs {
			j.events.append(line)
		}
	}
	fl.mu.Unlock()
	s.mu.Unlock()
}

// settleFlight records a flight's outcome: success populates the result
// cache and completes attached jobs; failure or cancellation marks them
// failed/cancelled. Detached (individually cancelled) jobs were settled
// at DELETE time.
func (s *Server) settleFlight(fl *flight, outcome *runOutcome, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.flights[fl.hash] == fl {
		delete(s.flights, fl.hash)
	}
	fl.cancel() // release the context regardless of outcome

	fl.mu.Lock()
	defer fl.mu.Unlock()
	if err == nil {
		if _, exists := s.cache[fl.hash]; !exists {
			s.cacheOrder = append(s.cacheOrder, fl.hash)
			// FIFO eviction keeps the result cache bounded; evicted specs
			// simply train again on resubmission.
			for len(s.cacheOrder) > maxCachedResults {
				delete(s.cache, s.cacheOrder[0])
				s.cacheOrder = s.cacheOrder[1:]
			}
		}
		s.cache[fl.hash] = &cacheEntry{outcome: outcome, history: fl.history, anomalies: fl.anomalies}
	}
	now := time.Now()
	for _, j := range fl.jobs {
		j.Finished = now
		j.flight = nil
		if !j.Started.IsZero() {
			s.hRunDur.Observe(int64(now.Sub(j.Started)))
			if s.tracer != nil {
				s.tracer.RecordSpan(laneJobs, "jobs", "running "+j.ID, int64(j.Attempts), j.Started, now)
			}
		}
		switch {
		case err == nil:
			j.State = StateDone
			j.outcome = outcome
			j.anomalies = fl.anomalies
			j.events.appendEvent(event{Type: "done", State: string(StateDone)})
		case errors.Is(err, context.Canceled) || errors.Is(err, comm.ErrAborted):
			j.State = StateCancelled
			j.events.appendEvent(event{Type: "done", State: string(StateCancelled)})
		default:
			j.State = StateFailed
			j.Err = err.Error()
			j.events.appendEvent(event{Type: "done", State: string(StateFailed), Error: j.Err})
		}
		j.events.close()
	}
	fl.jobs = nil
}

// ----------------------------------------------------------- HTTP layer --

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDelete)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	return mux
}

// jobView is the wire form of a Job.
type jobView struct {
	ID       string      `json:"id"`
	State    JobState    `json:"state"`
	Hash     string      `json:"hash"`
	CacheHit bool        `json:"cache_hit,omitempty"`
	Attempts int         `json:"attempts,omitempty"`
	Spec     JobSpec     `json:"spec"`
	Created  time.Time   `json:"created"`
	Started  *time.Time  `json:"started,omitempty"`
	Finished *time.Time  `json:"finished,omitempty"`
	Error    string      `json:"error,omitempty"`
	Result   *runOutcome `json:"result,omitempty"`
}

// view renders a job; callers hold s.mu. withResult attaches the outcome
// (job detail only — the list stays light).
func (j *Job) view(withResult bool) jobView {
	v := jobView{
		ID: j.ID, State: j.State, Hash: j.Hash, CacheHit: j.CacheHit,
		Attempts: j.Attempts, Spec: j.Spec, Created: j.Created, Error: j.Err,
	}
	if !j.Started.IsZero() {
		t := j.Started
		v.Started = &t
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		v.Finished = &t
	}
	if withResult && j.State == StateDone {
		v.Result = j.outcome
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone: nothing to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode spec: %v", err)
		return
	}
	if err := spec.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	hash := spec.hash()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	s.nextID++
	job := &Job{
		ID:      fmt.Sprintf("job-%06d", s.nextID),
		Spec:    spec,
		Hash:    hash,
		Created: time.Now(),
		events:  newEventLog(),
	}
	status := http.StatusAccepted
	switch {
	case s.cache[hash] != nil:
		// Content-addressed cache hit: done before it ever queues, with
		// the original run's stream replayed into the job's log.
		ce := s.cache[hash]
		job.State = StateDone
		job.CacheHit = true
		job.Started = job.Created
		job.Finished = job.Created
		job.outcome = ce.outcome
		job.anomalies = ce.anomalies
		for _, line := range ce.history {
			job.events.append(line)
		}
		job.events.appendEvent(event{Type: "done", State: string(StateDone)})
		job.events.close()
		s.mCacheHits.Inc()
		status = http.StatusOK
	case s.flights[hash] != nil && s.flights[hash].ctx.Err() == nil:
		// Single-flight join: ride the in-progress run. A flight whose
		// context is already cancelled (its last job was just deleted) is
		// not joinable — it falls through and a fresh flight replaces it
		// in the map (settleFlight only deletes its own entry).
		fl := s.flights[hash]
		job.flight = fl
		fl.mu.Lock()
		job.State = StateQueued
		if fl.started {
			job.State = StateRunning
			job.Started = time.Now()
			job.Attempts = fl.attempt
		}
		for _, line := range fl.history {
			job.events.append(line)
		}
		job.events.appendEvent(event{Type: "state", State: string(job.State)})
		fl.jobs = append(fl.jobs, job)
		fl.mu.Unlock()
		s.mDeduped.Inc()
	default:
		ctx, cancel := context.WithCancel(s.baseCtx)
		fl := &flight{hash: hash, spec: spec, ctx: ctx, cancel: cancel, jobs: []*Job{job}}
		job.State = StateQueued
		job.flight = fl
		job.events.appendEvent(event{Type: "state", State: string(StateQueued)})
		select {
		case s.queue <- fl:
			s.flights[hash] = fl
		default:
			cancel()
			s.mu.Unlock()
			writeError(w, http.StatusServiceUnavailable, "queue full (%d flights waiting)", s.opts.Queue)
			return
		}
	}
	s.mSubmitted.Inc()
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	v := job.view(true)
	s.mu.Unlock()
	writeJSON(w, status, v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]jobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view(false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	var v jobView
	if ok {
		v = job.view(true)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleDelete cancels a job. A queued or running job detaches from its
// flight and turns cancelled immediately; when the last attached job
// leaves, the flight's context is cancelled and the trainer aborts
// mid-iteration. Deleting a terminal job is an idempotent no-op.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	if fl := job.flight; fl != nil {
		fl.mu.Lock()
		for i, j := range fl.jobs {
			if j == job {
				fl.jobs = append(fl.jobs[:i], fl.jobs[i+1:]...)
				break
			}
		}
		orphaned := len(fl.jobs) == 0
		fl.mu.Unlock()
		job.flight = nil
		job.State = StateCancelled
		job.Finished = time.Now()
		job.events.appendEvent(event{Type: "done", State: string(StateCancelled)})
		job.events.close()
		if orphaned {
			fl.cancel()
		}
	}
	v := job.view(false)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

// handleStream serves the job's event log as NDJSON: full history first,
// then live events until the job reaches a terminal state or the client
// disconnects.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	job, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	if s.tracer != nil {
		streamStart := time.Now()
		id := job.ID
		defer func() {
			s.tracer.RecordSpan(laneStreams, "streams", "stream "+id, -1, streamStart, time.Now())
		}()
	}
	flusher, _ := w.(http.Flusher)
	cursor := 0
	for {
		lines, closed, ping := job.events.next(cursor)
		for _, line := range lines {
			w.Write(line)         //nolint:errcheck // disconnect caught below
			w.Write([]byte{'\n'}) //nolint:errcheck
			cursor++              // one line consumed
		}
		if flusher != nil {
			flusher.Flush()
		}
		if len(lines) > 0 {
			continue
		}
		if closed {
			return
		}
		select {
		case <-ping:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": experiments.IDs()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	closed := s.closed
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if closed {
		status = "shutting down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":         status,
		"jobs":           n,
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// handleMetrics serves the registry in Prometheus text exposition format
// — counters, gauges, jobs by state, and the queue-wait / run-duration
// histograms a fleet scheduler or dashboard scrapes. ?format=expvar keeps
// the legacy JSON shape (same keys as before the registry existed), read
// from the same counters, for existing consumers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "expvar" {
		byState := map[JobState]int{}
		s.mu.Lock()
		for _, j := range s.jobs {
			byState[j.State]++
		}
		queueDepth := len(s.queue)
		s.mu.Unlock()
		states := map[string]int{}
		for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
			states[string(st)] = byState[st]
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"jobs":               states,
			"submitted":          s.mSubmitted.Value(),
			"cache_hits":         s.mCacheHits.Value(),
			"deduped":            s.mDeduped.Value(),
			"runs":               s.mRuns.Value(),
			"in_flight_trainers": s.mInFlight.Value(),
			"queue_depth":        queueDepth,
			"pool_size":          s.opts.Pool,
		})
		return
	}
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	s.reg.WritePrometheus(w) //nolint:errcheck // client gone: nothing to do
}

// Metrics returns the server\'s metrics registry, for callers that want
// to register their own metrics next to the service\'s or snapshot
// histograms programmatically.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Jobs returns the ids of all registered jobs in submission order (test
// and tooling helper).
func (s *Server) Jobs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]string(nil), s.order...)
	slices.Sort(out)
	return out
}
