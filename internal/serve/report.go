package serve

import (
	"fmt"
	"net/http"

	"repro/internal/obs/analyze"
	"repro/internal/train"
)

// observeProgress feeds one training event into the live anomaly
// detector, returning whatever it flags. Only record events carry the
// watched series; everything is deterministic given the run's stream.
func observeProgress(det *analyze.Detector, p train.Progress) []analyze.Anomaly {
	if p.Kind != "record" {
		return nil
	}
	var out []analyze.Anomaly
	score := func(metric string, v float64) {
		if a, bad := det.Observe(metric, p.Iteration, v); bad {
			out = append(out, a)
		}
	}
	score("step_time_s", p.StepTime)
	score("train_loss", p.TrainLoss)
	score("error_norm", p.ErrorNorm)
	score("encoded_bytes", p.EncodedBytes)
	for r, v := range p.RankStep {
		if v > 0 { // dropped ranks report 0
			score(fmt.Sprintf("rank %d step", r), v)
		}
	}
	return out
}

// trainReport folds a finished run's Result into an analyze.Report: the
// aggregate phase totals, the per-rank step-time series a fault-injected
// run records (collective wait modeled as the gap to the slowest rank),
// and the anomalies the live detector flagged while it ran.
func trainReport(res *train.Result, anomalies []analyze.Anomaly) *analyze.Report {
	phases := []analyze.PhaseTotal{
		{Name: "forward/backward", Seconds: res.ComputeTime},
		{Name: "select", Seconds: res.SelectTime},
		{Name: "partition", Seconds: res.PartitionTime},
		{Name: "collective", Seconds: res.WireCommTime},
	}
	var steps []analyze.StepSeries
	for rank, s := range res.RankStepTime {
		if len(s.X) == 0 {
			continue
		}
		ss := analyze.StepSeries{Rank: rank, Iters: make([]int, len(s.X)), Seconds: s.Y}
		for i, x := range s.X {
			ss.Iters[i] = int(x)
		}
		steps = append(steps, ss)
	}
	iterations := len(res.TrainLoss.X)
	return analyze.FromSeries("deft-serve", iterations, phases, steps, anomalies, analyze.Options{})
}

// handleReport serves GET /v1/jobs/{id}/report: the trace-analytics
// report of a completed training job — phase shares, per-rank critical
// path and straggler attribution when the run recorded rank series, and
// the anomalies flagged live on its stream.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	job, ok := s.jobs[id]
	var res *train.Result
	var anomalies []analyze.Anomaly
	var state JobState
	if ok {
		state = job.State
		anomalies = job.anomalies
		if job.outcome != nil {
			res = job.outcome.TrainResult
		}
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	if res == nil {
		writeError(w, http.StatusConflict,
			"no report for job %s: state %s (reports need a completed training job)", id, state)
		return
	}
	writeJSON(w, http.StatusOK, trainReport(res, anomalies))
}
