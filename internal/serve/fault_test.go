package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/train"
)

// streamLines drains a finished job's stream and returns the parsed lines.
func streamLines(t *testing.T, url, id string) []event {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	var lines []event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("stream line: %v\n%s", err, sc.Text())
		}
		lines = append(lines, e)
	}
	return lines
}

// TestInjectedDropRetriesToDone is the chaos smoke the CI job also runs:
// a job whose first execution dies from an injected drop retries inside
// its flight and completes, with the attempt count on the job view and a
// "retry" event in the stream.
func TestInjectedDropRetriesToDone(t *testing.T) {
	_, ts := newTestServer(t, Options{Pool: 2})
	spec := `{"train":{"workload":"mlp","sparsifier":"topk","workers":2,"iterations":6,"lr":0.1,
		"faults":{"drops":[{"rank":1,"iteration":2}]},"retries":2}}`
	v, code := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	final := waitState(t, ts, v.ID, StateDone)
	if final.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (fault on the first, clean second)", final.Attempts)
	}
	if final.Result == nil || final.Result.TrainResult == nil {
		t.Fatal("done without a training result")
	}
	if got := len(final.Result.TrainResult.TrainLoss.Y); got == 0 {
		t.Fatal("retried run returned an empty series")
	}
	retries := 0
	for _, e := range streamLines(t, ts.URL, v.ID) {
		if e.Type == "retry" {
			retries++
			if e.Attempt != 2 || !strings.Contains(e.Error, "injected drop") {
				t.Fatalf("retry event = %+v, want attempt 2 with the drop cause", e)
			}
		}
	}
	if retries != 1 {
		t.Fatalf("%d retry events, want 1", retries)
	}
}

// TestRetryExhaustedFails: a fault scheduled to fire on every attempt must
// exhaust the retry budget and fail — with the attempt count preserved.
func TestRetryExhaustedFails(t *testing.T) {
	_, ts := newTestServer(t, Options{Pool: 2})
	spec := `{"train":{"workload":"mlp","sparsifier":"topk","workers":2,"iterations":6,"lr":0.1,
		"faults":{"drops":[{"rank":1,"iteration":2,"attempts":99}]},"retries":1}}`
	v, code := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	final := waitState(t, ts, v.ID, StateFailed)
	if final.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (original + 1 retry)", final.Attempts)
	}
	if !strings.Contains(final.Error, "retries exhausted") || !strings.Contains(final.Error, "injected drop") {
		t.Fatalf("error = %q, want retry exhaustion wrapping the drop", final.Error)
	}
}

// TestRecoverAvoidsRetry: with the in-run recovery policy enabled the
// first attempt survives the drop by itself — no retry consumed.
func TestRecoverAvoidsRetry(t *testing.T) {
	_, ts := newTestServer(t, Options{Pool: 2})
	spec := `{"train":{"workload":"mlp","sparsifier":"topk","workers":3,"iterations":6,"lr":0.1,
		"faults":{"drops":[{"rank":2,"iteration":3}]},"recover":true,"retries":2}}`
	v, code := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	final := waitState(t, ts, v.ID, StateDone)
	if final.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (recovery, not retry)", final.Attempts)
	}
	r := final.Result.TrainResult
	if r == nil || r.Recoveries != 1 || r.Survivors != 2 {
		t.Fatalf("result = %+v, want 1 recovery with 2 survivors", r)
	}
}

// TestBudgetFailsWithDistinctReason: a job past its wall-clock budget must
// end failed — not cancelled — with the ErrBudget reason, and must not
// burn retries on the way out.
func TestBudgetFailsWithDistinctReason(t *testing.T) {
	s, ts := newTestServer(t, Options{Pool: 1})
	s.runTrain = func(ctx context.Context, spec TrainSpec, attempt int, checkpoint bool, progress func(train.Progress)) (*train.Result, error) {
		<-ctx.Done() // a chaos-stuck trainer: only the context frees it
		return nil, ctx.Err()
	}
	spec := `{"train":{"workload":"mlp","sparsifier":"topk","workers":2,"iterations":6,"lr":0.1,
		"budget_ms":50,"retries":3}}`
	v, code := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	final := waitState(t, ts, v.ID, StateFailed)
	if !strings.Contains(final.Error, ErrBudget.Error()) {
		t.Fatalf("error = %q, want the budget reason", final.Error)
	}
	if final.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (budget expiry is never retried)", final.Attempts)
	}
}

// TestRetriesStayInsideOneFlight: two identical faulty submissions share a
// flight; its retry re-executes the trainer but never spawns a second
// flight — the attempt count is the execution count for both jobs.
func TestRetriesStayInsideOneFlight(t *testing.T) {
	s, ts := newTestServer(t, Options{Pool: 4})
	var calls atomic.Int64
	started := make(chan struct{})
	var once sync.Once
	orig := s.runTrain
	s.runTrain = func(ctx context.Context, spec TrainSpec, attempt int, checkpoint bool, progress func(train.Progress)) (*train.Result, error) {
		calls.Add(1)
		once.Do(func() { close(started) })
		// Hold the first attempt open until the second submission joined.
		time.Sleep(30 * time.Millisecond)
		return orig(ctx, spec, attempt, checkpoint, progress)
	}
	spec := `{"train":{"workload":"mlp","sparsifier":"topk","workers":2,"iterations":6,"lr":0.1,
		"faults":{"drops":[{"rank":1,"iteration":2}]},"retries":3}}`
	a, code := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	<-started
	b, code := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("second submit status = %d, want 202", code)
	}
	if a.Hash != b.Hash {
		t.Fatalf("identical specs hash differently: %s vs %s", a.Hash, b.Hash)
	}
	fa := waitState(t, ts, a.ID, StateDone)
	fb := waitState(t, ts, b.ID, StateDone)
	if got := calls.Load(); got != 2 {
		t.Fatalf("trainer executed %d times, want 2 (one faulted attempt + one retry, shared by both jobs)", got)
	}
	if fa.Attempts != 2 || fb.Attempts != 2 {
		t.Fatalf("attempts = %d/%d, want 2 on both attached jobs", fa.Attempts, fb.Attempts)
	}
}

// TestFaultSpecValidation: malformed chaos/retry/budget fields are
// rejected at submission, and an empty fault plan normalises away so the
// spec hashes like its healthy twin.
func TestFaultSpecValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Pool: 1})
	bad := []string{
		`{"train":{"workload":"mlp","faults":{"drops":[{"rank":9,"iteration":0}]}}}`, // rank >= workers
		`{"train":{"workload":"mlp","faults":{"stragglers":[{"rank":0,"factor":0}]}}}`,
		`{"train":{"workload":"mlp","retries":99}}`,
		`{"train":{"workload":"mlp","backoff_ms":-1}}`,
		`{"train":{"workload":"mlp","budget_ms":-5}}`,
	}
	for _, spec := range bad {
		if _, code := postJob(t, ts, spec); code != http.StatusBadRequest {
			t.Errorf("spec %s accepted with status %d", spec, code)
		}
	}
	plain, code := postJob(t, ts, `{"train":{"workload":"mlp","sparsifier":"topk","workers":2,"iterations":6,"lr":0.1}}`)
	if code >= 300 {
		t.Fatalf("plain spec rejected: %d", code)
	}
	empty, code := postJob(t, ts, `{"train":{"workload":"mlp","sparsifier":"topk","workers":2,"iterations":6,"lr":0.1,"faults":{}}}`)
	if code >= 300 {
		t.Fatalf("empty-plan spec rejected: %d", code)
	}
	if plain.Hash != empty.Hash {
		t.Fatalf("empty fault plan changed the hash: %s vs %s", plain.Hash, empty.Hash)
	}
}
