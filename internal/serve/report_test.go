package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs/analyze"
	"repro/internal/train"
)

func getReport(t *testing.T, url, id string) (*analyze.Report, int) {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatalf("GET report: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var rep analyze.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("decode report: %v\n%s", err, body)
	}
	return &rep, resp.StatusCode
}

// TestReportAttributesStraggler: a chaos training job's report endpoint
// names the injected straggler rank and window, built from the run's
// per-rank step-time series.
func TestReportAttributesStraggler(t *testing.T) {
	_, ts := newTestServer(t, Options{Pool: 2})
	spec := `{"train":{"workload":"mlp","sparsifier":"topk","workers":4,"iterations":40,"lr":0.1,
		"record_every":1,"faults":{"stragglers":[{"rank":1,"factor":8,"from":10,"until":30}]}}}`
	v, code := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}

	// A queued/running job has no report yet.
	if _, code := getReport(t, ts.URL, v.ID); code != http.StatusConflict && code != http.StatusOK {
		t.Fatalf("pre-completion report status = %d, want 409 (or 200 if already done)", code)
	}
	waitState(t, ts, v.ID, StateDone)

	rep, code := getReport(t, ts.URL, v.ID)
	if code != http.StatusOK {
		t.Fatalf("report status = %d, want 200", code)
	}
	if rep.Process != "deft-serve" || rep.Ranks != 4 {
		t.Errorf("report process=%q ranks=%d, want deft-serve, 4", rep.Process, rep.Ranks)
	}
	if len(rep.Stragglers) != 1 {
		t.Fatalf("stragglers = %+v, want exactly one", rep.Stragglers)
	}
	f := rep.Stragglers[0]
	if f.Rank != 1 || f.From < 10 || f.Until > 30 {
		t.Errorf("finding = %+v, want rank 1 within [10,30)", f)
	}
	named := false
	for _, verdict := range rep.Verdicts {
		if strings.Contains(verdict, "straggler: rank 1") {
			named = true
		}
	}
	if !named {
		t.Errorf("no verdict naming rank 1: %q", rep.Verdicts)
	}

	// Unknown job: 404.
	if _, code := getReport(t, ts.URL, "job-999999"); code != http.StatusNotFound {
		t.Errorf("missing job report status = %d, want 404", code)
	}
}

// TestAnomalyEventsAndReportReplay: a step-time spike on the live
// progress stream becomes an "anomaly" NDJSON event, lands in the job
// report, shows in /metrics, and replays identically on a cache hit.
func TestAnomalyEventsAndReportReplay(t *testing.T) {
	s, ts := newTestServer(t, Options{Pool: 1})
	s.runTrain = func(ctx context.Context, spec TrainSpec, attempt int, checkpoint bool, progress func(train.Progress)) (*train.Result, error) {
		res := &train.Result{Workload: spec.Workload, Workers: spec.Workers}
		for i := 0; i < 30; i++ {
			st := 0.001
			if i == 25 {
				st = 0.05 // 50x spike: unambiguous past any warmup
			}
			progress(train.Progress{Kind: "record", Iteration: i, TrainLoss: 1, StepTime: st})
			res.TrainLoss.Append(float64(i), 1)
		}
		return res, nil
	}

	spec := `{"train":{"workload":"mlp","sparsifier":"topk","workers":2,"iterations":30,"lr":0.1}}`
	v, code := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	waitState(t, ts, v.ID, StateDone)

	checkStream := func(id string) {
		t.Helper()
		anomalies := 0
		for _, e := range streamLines(t, ts.URL, id) {
			if e.Type != "anomaly" {
				continue
			}
			anomalies++
			if e.Anomaly == nil || e.Anomaly.Metric != "step_time_s" || e.Anomaly.Iteration != 25 {
				t.Errorf("anomaly event = %+v, want step_time_s at iteration 25", e.Anomaly)
			}
		}
		if anomalies != 1 {
			t.Errorf("job %s streamed %d anomaly events, want 1", id, anomalies)
		}
	}
	checkStream(v.ID)

	rep, code := getReport(t, ts.URL, v.ID)
	if code != http.StatusOK {
		t.Fatalf("report status = %d, want 200", code)
	}
	if len(rep.Anomalies) != 1 || rep.Anomalies[0].Metric != "step_time_s" {
		t.Fatalf("report anomalies = %+v, want the step-time spike", rep.Anomalies)
	}

	// The anomaly counter is on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "deft_anomalies_total 1") {
		t.Errorf("/metrics missing deft_anomalies_total 1")
	}

	// Cache hit: same spec resolves instantly, replays the anomaly line
	// and serves the same report.
	v2, code := postJob(t, ts, spec)
	if code != http.StatusOK {
		t.Fatalf("resubmit status = %d, want 200 (cache hit)", code)
	}
	if !getJob(t, ts, v2.ID).CacheHit {
		t.Fatal("resubmission was not a cache hit")
	}
	checkStream(v2.ID)
	rep2, code := getReport(t, ts.URL, v2.ID)
	if code != http.StatusOK {
		t.Fatalf("cache-hit report status = %d", code)
	}
	if len(rep2.Anomalies) != 1 {
		t.Fatalf("cache-hit report lost the anomaly: %+v", rep2.Anomalies)
	}
}
