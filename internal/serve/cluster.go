// Multi-node serving: a leader deft-serve process listens for follower
// nodes (deft-serve -join) and partitions distributed training jobs
// across every joined node over real TCP.
//
// One long-lived framed connection per follower carries two kinds of
// traffic, split by frame type: the comm collective protocol (types below
// comm.FrameUserBase, owned by the per-segment TCP transports) and this
// file's control protocol (HELLO/WELCOME at join, JOB/SESSION/ACK/DONE
// per job). A single reader goroutine per connection demultiplexes them —
// comm frames feed the live session, control frames feed a channel the
// job driver consumes.
//
// Per training segment (train recovery re-clusters between segments) the
// leader re-partitions the surviving worker count contiguously over the
// nodes still connected, installs one session per peer, announces the
// assignment with SESSION and waits for each ACK before building the
// comm.NewLeaderCluster. Followers never compute partitions: they learn
// their rank range from SESSION, so node membership can change between
// segments without any cross-node agreement protocol — the only lockstep
// state is the worker count, which both sides derive from the same
// FaultError the comm layer delivered to each process.
//
// Node failure needs no special case: a dead connection surfaces inside
// the comm transport as a drop of the node's whole rank range, and the
// ordinary checkpoint → rebuild → resume recovery runs on every surviving
// node. A node that dies between segments simply stops being assigned
// ranks; the worker count is unchanged and the survivors absorb its share.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/train"
)

// Control frame types of the serve cluster protocol, multiplexed over the
// same framed connection the comm collectives ride.
const (
	frameHello      byte = comm.FrameUserBase + iota // follower → leader: join request
	frameWelcome                                     // leader → follower: assigned node id
	frameJob                                         // leader → follower: run this training spec
	frameSession                                     // leader → follower: one segment's rank assignment
	frameSessionAck                                  // follower → leader: segment transport installed
	frameJobDone                                     // follower → leader: job finished locally
)

// Wire messages: the JSON payloads of the control frames.
type helloMsg struct {
	Name string `json:"name,omitempty"`
}

type welcomeMsg struct {
	NodeID int `json:"node_id"`
}

type jobMsg struct {
	JobID   int64     `json:"job_id"`
	Spec    TrainSpec `json:"spec"`
	Attempt int       `json:"attempt"`
}

// sessionMsg announces one segment's rank assignment (leader → follower)
// and acknowledges it (follower → leader, echoing JobID and Seq). Lo == Hi
// tells a node the cluster shrank past it: it acknowledges and sits the
// rest of the job out.
type sessionMsg struct {
	JobID int64 `json:"job_id"`
	Seq   int   `json:"seq"`            // segment counter within the job
	Size  int   `json:"size,omitempty"` // cluster-wide worker count this segment
	Lo    int   `json:"lo,omitempty"`   // this node's rank range [Lo, Hi)
	Hi    int   `json:"hi,omitempty"`
}

type jobDoneMsg struct {
	JobID    int64  `json:"job_id"`
	Excluded bool   `json:"excluded,omitempty"` // the job shrank past this node
	Err      string `json:"error,omitempty"`
}

// Handshake and collection deadlines. Session acks ride an otherwise idle
// control path, so a slow ack means a wedged or dead node — the leader
// severs it and lets the comm layer turn that into an ordinary rank drop.
const (
	ackTimeout  = 30 * time.Second
	doneTimeout = 30 * time.Second
)

// errSessionClosed ends a transport Recv when its training segment is
// over; the underlying node connection stays open for the next one.
var errSessionClosed = errors.New("serve: cluster session closed")

// errExcluded is a follower segment factory's report that the shrinking
// cluster no longer assigns this node any ranks: the node's part of the
// job is over, cleanly.
var errExcluded = errors.New("serve: cluster shrank past this node's ranks")

// commFrame is one frame routed off a node connection's reader.
type commFrame struct {
	typ     byte
	payload []byte
}

// nodeConn is one long-lived cluster connection: the framed conn, a
// single reader goroutine demultiplexing comm frames (to the live
// session) from control frames (to ctrl), and a death latch.
type nodeConn struct {
	fc   *comm.FrameConn
	ctrl chan commFrame
	sess atomic.Pointer[session]

	dead     chan struct{}
	deadErr  error // written once, before dead closes
	deadOnce sync.Once
}

func newNodeConn(c net.Conn) *nodeConn {
	return &nodeConn{
		fc:   comm.NewFrameConn(c),
		ctrl: make(chan commFrame, 16),
		dead: make(chan struct{}),
	}
}

// die latches the connection dead and closes it; safe from any goroutine.
func (nc *nodeConn) die(err error) {
	nc.deadOnce.Do(func() {
		nc.deadErr = err
		nc.fc.Close()
		close(nc.dead)
	})
}

// readLoop runs for the connection's lifetime. Comm frames go to the live
// session; a frame with no live session is a straggler from a torn-down
// segment and is dropped (sessions are closed before their successor is
// installed, so a routed frame can never belong to the wrong segment).
func (nc *nodeConn) readLoop() {
	for {
		typ, payload, err := nc.fc.Recv()
		if err != nil {
			nc.die(err)
			return
		}
		buf := append([]byte(nil), payload...) // Recv reuses its buffer
		if comm.IsCommFrame(typ) {
			s := nc.sess.Load()
			if s == nil {
				continue
			}
			select {
			case s.ch <- commFrame{typ, buf}:
			case <-s.done:
				// Segment over: drop the straggler.
			case <-nc.dead:
				return
			}
			continue
		}
		select {
		case nc.ctrl <- commFrame{typ, buf}:
		case <-nc.dead:
			return
		}
	}
}

// newSession installs a fresh session as the connection's comm routing
// target. The caller must have closed the previous session first.
func (nc *nodeConn) newSession() *session {
	s := &session{nc: nc, ch: make(chan commFrame, 64), done: make(chan struct{})}
	nc.sess.Store(s)
	return s
}

// session adapts one training segment's slice of a node connection to
// comm.Link: Send writes straight to the shared framed conn, Recv is fed
// by the connection's reader, and Close ends the session while leaving
// the connection open for the next segment.
type session struct {
	nc   *nodeConn
	ch   chan commFrame
	done chan struct{}
	once sync.Once
}

func (s *session) Send(typ byte, payload []byte) error {
	select {
	case <-s.done:
		return errSessionClosed
	default:
	}
	return s.nc.fc.Send(typ, payload)
}

// Recv drains routed frames first so results queued before Close are
// still delivered, then parks until a frame, session close, or the
// connection dying.
func (s *session) Recv() (byte, []byte, error) {
	select {
	case f := <-s.ch:
		return f.typ, f.payload, nil
	default:
	}
	select {
	case f := <-s.ch:
		return f.typ, f.payload, nil
	case <-s.done:
		return 0, nil, errSessionClosed
	case <-s.nc.dead:
		return 0, nil, fmt.Errorf("serve: cluster connection lost: %w", s.nc.deadErr)
	}
}

func (s *session) Close() error {
	s.once.Do(func() { close(s.done) })
	return nil
}

// ----------------------------------------------------------------- leader --

// ClusterLeader accepts follower deft-serve nodes and runs distributed
// training jobs across them. Create with NewClusterLeader, hand to
// Options.Cluster, close with Close.
type ClusterLeader struct {
	ln net.Listener

	mu      sync.Mutex
	nodes   []*clusterNode
	nextID  int
	nextJob int64
	closed  bool

	// jobMu serializes distributed jobs: sessions multiplex over the node
	// connections, so exactly one job drives them at a time (a second
	// distributed flight queues here until the first finishes).
	jobMu sync.Mutex
	wg    sync.WaitGroup
}

// clusterNode is the leader's view of one joined node. pendingDone parks
// a JOBDONE that arrived while the driver was awaiting a session ack; the
// job driver is the only control-frame consumer, so it is unsynchronised.
type clusterNode struct {
	id          int
	nc          *nodeConn
	pendingDone *jobDoneMsg
}

// NewClusterLeader listens for follower nodes on addr (host:port).
func NewClusterLeader(addr string) (*ClusterLeader, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: cluster listen: %w", err)
	}
	cl := &ClusterLeader{ln: ln}
	cl.wg.Add(1)
	go cl.acceptLoop()
	return cl, nil
}

// Addr is the listener's bound address (useful with port 0).
func (cl *ClusterLeader) Addr() string { return cl.ln.Addr().String() }

func (cl *ClusterLeader) acceptLoop() {
	defer cl.wg.Done()
	for {
		c, err := cl.ln.Accept()
		if err != nil {
			return
		}
		go cl.admit(c)
	}
}

// admit runs the join handshake on a fresh connection, registers the
// node, and starts its reader.
func (cl *ClusterLeader) admit(c net.Conn) {
	nc := newNodeConn(c)
	typ, payload, err := nc.fc.Recv()
	if err != nil || typ != frameHello {
		c.Close()
		return
	}
	var h helloMsg
	_ = json.Unmarshal(payload, &h) // the name is advisory
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		c.Close()
		return
	}
	cl.nextID++
	node := &clusterNode{id: cl.nextID, nc: nc}
	cl.nodes = append(cl.nodes, node)
	cl.mu.Unlock()
	wm, _ := json.Marshal(welcomeMsg{NodeID: node.id})
	if err := nc.fc.Send(frameWelcome, wm); err != nil {
		nc.die(err)
		return
	}
	go nc.readLoop()
	log.Printf("serve: cluster node %d joined from %s", node.id, c.RemoteAddr())
}

// alive prunes dead nodes and returns the connected ones, in join order.
func (cl *ClusterLeader) alive() []*clusterNode {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	kept := cl.nodes[:0]
	var out []*clusterNode
	for _, n := range cl.nodes {
		select {
		case <-n.nc.dead:
			log.Printf("serve: cluster node %d left (%v)", n.id, n.nc.deadErr)
			continue
		default:
		}
		kept = append(kept, n)
		out = append(out, n)
	}
	cl.nodes = kept
	return out
}

// Nodes reports how many follower nodes are currently connected.
func (cl *ClusterLeader) Nodes() int { return len(cl.alive()) }

// Close stops accepting, severs every node connection, and waits for the
// accept loop.
func (cl *ClusterLeader) Close() error {
	cl.mu.Lock()
	cl.closed = true
	nodes := append([]*clusterNode(nil), cl.nodes...)
	cl.mu.Unlock()
	err := cl.ln.Close()
	cause := errors.New("serve: cluster leader shutting down")
	for _, n := range nodes {
		n.nc.die(cause)
	}
	cl.wg.Wait()
	return err
}

// RunJob executes one training spec across the cluster: the leader hosts
// rank 0 (and its contiguous share), every joined node hosts a share, and
// the spec's recovery/retry semantics apply cluster-wide. With no nodes
// joined it degrades to the plain local runner. The returned Result is
// the leader's — the canonical one, recorded by rank 0.
func (cl *ClusterLeader) RunJob(ctx context.Context, spec TrainSpec, attempt int, checkpoint bool, progress func(train.Progress)) (*train.Result, error) {
	cl.jobMu.Lock()
	defer cl.jobMu.Unlock()

	cl.mu.Lock()
	cl.nextJob++
	jobID := cl.nextJob
	cl.mu.Unlock()

	// Broadcast the job to every node connected right now; the set is
	// fixed for the job's lifetime (later joiners wait for the next job).
	var live []*clusterNode
	jm, _ := json.Marshal(jobMsg{JobID: jobID, Spec: spec, Attempt: attempt})
	for _, n := range cl.alive() {
		n.pendingDone = nil
		if err := n.nc.fc.Send(frameJob, jm); err != nil {
			n.nc.die(err)
			continue
		}
		live = append(live, n)
	}
	if len(live) == 0 {
		return runTrain(ctx, spec, attempt, checkpoint, progress)
	}

	w, factory, cfg, err := buildTrainConfig(spec, attempt, checkpoint, progress)
	if err != nil {
		// The followers run the identical build and fail identically; no
		// session ever starts.
		cl.collectDones(live, jobID)
		return nil, err
	}
	seq := 0
	excluded := map[int]bool{}
	cfg.NewCluster = func(size int) (*comm.Cluster, error) {
		return cl.newSegment(ctx, jobID, &seq, size, live, excluded)
	}
	res, err := train.RunContext(ctx, w, factory, cfg)
	if err != nil {
		// Followers mid-segment (or parked awaiting a SESSION the leader
		// will never send) must unwind: close the leader-side sessions so
		// straggler frames drop instead of wedging the readers, then send
		// an abort that the follower transports surface as the job error.
		cause := fmt.Errorf("serve: leader abandoned job: %w", err)
		for _, n := range live {
			if s := n.nc.sess.Load(); s != nil {
				s.Close()
			}
			_ = comm.AbortLink(n.nc.fc, cause)
		}
	}
	cl.collectDones(live, jobID)
	return res, err
}

// newSegment is the leader's train.Config.NewCluster hook: partition size
// ranks contiguously over the leader plus every node still connected and
// not yet excluded, install one session per participating node, announce
// the assignment, await the acks, and build the hub cluster.
//
// A node that fails during this handshake is deliberately still included
// as a peer: its dead link surfaces in the transport as a drop of its
// rank range, and the ordinary recovery shrinks the cluster in lockstep
// on every node — one failure path instead of two.
func (cl *ClusterLeader) newSegment(ctx context.Context, jobID int64, seq *int, size int, nodes []*clusterNode, excluded map[int]bool) (*comm.Cluster, error) {
	*seq++
	s := *seq
	var alive []*clusterNode
	for _, n := range nodes {
		if excluded[n.id] {
			continue
		}
		select {
		case <-n.nc.dead:
		default:
			alive = append(alive, n)
		}
	}
	// Contiguous split: node i of k gets size/k ranks plus one of the
	// remainder, the leader (node 0) first — so rank 0 is always local.
	k := len(alive) + 1
	share := func(i int) int {
		n := size / k
		if i < size%k {
			n++
		}
		return n
	}
	local := share(0)
	type assign struct {
		n      *clusterNode
		lo, hi int
	}
	var assigns []assign
	var peers []comm.RemotePeer
	lo := local
	for i, n := range alive {
		hi := lo + share(i+1)
		assigns = append(assigns, assign{n, lo, hi})
		if hi == lo {
			// More nodes than workers: this node sits the job out from
			// here on (SESSION with an empty range tells it so).
			excluded[n.id] = true
		} else {
			sess := n.nc.newSession()
			peers = append(peers, comm.RemotePeer{Link: sess, Lo: lo, Hi: hi})
		}
		lo = hi
	}
	for _, a := range assigns {
		msg, _ := json.Marshal(sessionMsg{JobID: jobID, Seq: s, Size: size, Lo: a.lo, Hi: a.hi})
		if err := a.n.nc.fc.Send(frameSession, msg); err != nil {
			a.n.nc.die(err) // the transport will report the rank drop
		}
	}
	for _, a := range assigns {
		if a.hi == a.lo {
			continue // excluded nodes ack too, but nothing waits on it
		}
		if err := cl.awaitAck(ctx, a.n, jobID, s); err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			a.n.nc.die(fmt.Errorf("serve: node %d session ack: %w", a.n.id, err))
		}
	}
	return comm.NewLeaderCluster(size, local, peers)
}

// awaitAck consumes a node's control frames until the matching session
// ack (bounded by ackTimeout/ctx). A JOBDONE arriving early — the node
// failed or bowed out before acking — is parked for collectDones.
func (cl *ClusterLeader) awaitAck(ctx context.Context, n *clusterNode, jobID int64, seq int) error {
	timer := time.NewTimer(ackTimeout)
	defer timer.Stop()
	for {
		select {
		case f := <-n.nc.ctrl:
			switch f.typ {
			case frameSessionAck:
				var sm sessionMsg
				if json.Unmarshal(f.payload, &sm) == nil && sm.JobID == jobID && sm.Seq == seq {
					return nil
				}
			case frameJobDone:
				var dm jobDoneMsg
				if json.Unmarshal(f.payload, &dm) == nil && dm.JobID == jobID {
					dm := dm
					n.pendingDone = &dm
				}
			}
		case <-n.nc.dead:
			return fmt.Errorf("connection lost: %w", n.nc.deadErr)
		case <-timer.C:
			return errors.New("timed out")
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// collectDones waits (bounded) for each node's JOBDONE so the connections
// are quiescent before the next job reuses them, logging follower-side
// failures — the leader's own result is the canonical one.
func (cl *ClusterLeader) collectDones(nodes []*clusterNode, jobID int64) {
	deadline := time.NewTimer(doneTimeout)
	defer deadline.Stop()
	for _, n := range nodes {
		var dm *jobDoneMsg
		if n.pendingDone != nil && n.pendingDone.JobID == jobID {
			dm = n.pendingDone
			n.pendingDone = nil
		}
	wait:
		for dm == nil {
			select {
			case f := <-n.nc.ctrl:
				if f.typ != frameJobDone {
					continue
				}
				var m jobDoneMsg
				if json.Unmarshal(f.payload, &m) == nil && m.JobID == jobID {
					dm = &m
				}
			case <-n.nc.dead:
				break wait
			case <-deadline.C:
				return
			}
		}
		if dm != nil && dm.Err != "" {
			log.Printf("serve: cluster node %d finished job with error: %s", n.id, dm.Err)
		}
	}
}

// --------------------------------------------------------------- follower --

// JoinCluster connects to a leader deft-serve node at addr and serves
// distributed training work until ctx is cancelled, rejoining with capped
// backoff whenever the connection is lost. name is an advisory label for
// the leader's logs.
func JoinCluster(ctx context.Context, addr, name string) error {
	backoff := time.Second
	for {
		err := joinOnce(ctx, addr, name)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		log.Printf("serve: cluster connection to %s lost (%v); rejoining in %s", addr, err, backoff)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		backoff = min(backoff*2, 15*time.Second)
	}
}

// joinOnce dials, handshakes, and serves jobs until the connection dies.
func joinOnce(ctx context.Context, addr, name string) error {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	nc := newNodeConn(c)
	hm, _ := json.Marshal(helloMsg{Name: name})
	if err := nc.fc.Send(frameHello, hm); err != nil {
		nc.die(err)
		return err
	}
	typ, payload, err := nc.fc.Recv()
	if err != nil {
		nc.die(err)
		return err
	}
	if typ != frameWelcome {
		err := fmt.Errorf("serve: unexpected handshake frame %d", typ)
		nc.die(err)
		return err
	}
	var wm welcomeMsg
	_ = json.Unmarshal(payload, &wm)
	log.Printf("serve: joined cluster at %s as node %d", addr, wm.NodeID)
	stop := context.AfterFunc(ctx, func() { nc.die(ctx.Err()) })
	defer stop()
	go nc.readLoop()
	for {
		select {
		case f := <-nc.ctrl:
			if f.typ != frameJob {
				continue
			}
			var jm jobMsg
			if err := json.Unmarshal(f.payload, &jm); err != nil {
				continue
			}
			runFollowerJob(nc, jm)
		case <-nc.dead:
			return nc.deadErr
		}
	}
}

// runFollowerJob trains this node's share of one job and reports the
// local outcome. The follower records no result — rank 0 lives on the
// leader — and takes no checkpoint; it exists to host ranks.
//
// The train run deliberately does NOT watch the join context: a worker
// being shut down must look like a dead connection (a recoverable rank
// drop at the leader), and ctx cancellation already severs the
// connection. Aborting the run on ctx directly would race that close and
// sometimes push a graceful abort through the still-open socket, failing
// the whole cluster job that severing alone would have let recover.
func runFollowerJob(nc *nodeConn, jm jobMsg) {
	done := jobDoneMsg{JobID: jm.JobID}
	err := func() error {
		w, factory, cfg, err := buildTrainConfig(jm.Spec, jm.Attempt, false, nil)
		if err != nil {
			return err
		}
		cfg.NewCluster = func(size int) (*comm.Cluster, error) {
			return followerSegment(nc, jm.JobID, size)
		}
		_, err = train.RunContext(context.Background(), w, factory, cfg)
		return err
	}()
	if errors.Is(err, errExcluded) {
		done.Excluded = true
		err = nil
	}
	if err != nil {
		done.Err = err.Error()
		log.Printf("serve: cluster job failed locally: %v", err)
	}
	b, _ := json.Marshal(done)
	_ = nc.fc.Send(frameJobDone, b)
}

// followerSegment is a follower's train.Config.NewCluster hook: await the
// leader's SESSION for the next segment, install the session before
// acking (the ack licenses the leader to start sending results), and
// build the follower transport on it.
func followerSegment(nc *nodeConn, jobID int64, size int) (*comm.Cluster, error) {
	for {
		select {
		case f := <-nc.ctrl:
			if f.typ != frameSession {
				continue
			}
			var sm sessionMsg
			if err := json.Unmarshal(f.payload, &sm); err != nil || sm.JobID != jobID {
				continue // straggler from an earlier job
			}
			if sm.Size != size {
				return nil, fmt.Errorf("serve: leader partitioned %d workers, this node computed %d", sm.Size, size)
			}
			ack, _ := json.Marshal(sessionMsg{JobID: jobID, Seq: sm.Seq})
			if sm.Lo >= sm.Hi {
				_ = nc.fc.Send(frameSessionAck, ack)
				return nil, errExcluded
			}
			sess := nc.newSession()
			if err := nc.fc.Send(frameSessionAck, ack); err != nil {
				sess.Close()
				return nil, fmt.Errorf("serve: session ack: %w", err)
			}
			return comm.NewFollowerCluster(sm.Size, sm.Lo, sm.Hi, sess)
		case <-nc.dead:
			return nil, fmt.Errorf("serve: cluster connection lost: %w", nc.deadErr)
		}
	}
}
