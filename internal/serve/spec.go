package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/comm"
	"repro/internal/experiments"
	"repro/internal/registry"
)

// JobSpec describes one schedulable unit of work: exactly one of
// Experiment (a paper table/figure id) or Train (an ad-hoc training
// configuration) must be set. Submitting the same normalized spec twice
// is guaranteed to train at most once: specs are content-addressed by
// Hash and deduplicated against both the result cache and in-flight runs.
type JobSpec struct {
	// Experiment is a paper artefact id from experiments.IDs(), e.g. "fig4".
	Experiment string `json:"experiment,omitempty"`
	// Quick shrinks worker counts and iteration budgets (experiment jobs).
	Quick bool `json:"quick,omitempty"`
	// Seed offsets all run seeds (experiment jobs).
	Seed uint64 `json:"seed,omitempty"`

	// Train is an ad-hoc training run.
	Train *TrainSpec `json:"train,omitempty"`
}

// TrainSpec mirrors train.Config for the workload/sparsifier names of
// internal/registry. Zero fields are filled with defaults by normalize.
type TrainSpec struct {
	Workload    string  `json:"workload"`
	Sparsifier  string  `json:"sparsifier"`
	Workers     int     `json:"workers,omitempty"`
	Density     float64 `json:"density,omitempty"`
	LR          float64 `json:"lr,omitempty"`
	Momentum    float64 `json:"momentum,omitempty"`
	Iterations  int     `json:"iterations,omitempty"`
	EvalEvery   int     `json:"eval_every,omitempty"`
	RecordEvery int     `json:"record_every,omitempty"`
	// ProgressEvery emits per-layer fragment-allocation and gradient-norm
	// snapshots on every ProgressEvery-th record event, streamed through
	// the job's NDJSON feed (train.Config.ProgressEvery). 0 disables them.
	ProgressEvery int    `json:"progress_every,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`
	// Quantize ships fp16 uploads and applies the decoded values with
	// error feedback (train.Config.Quantize). Part of the canonical spec:
	// a quantized run hashes — and therefore caches — separately from its
	// fp32 twin.
	Quantize bool `json:"quantize,omitempty"`

	// Faults is an optional deterministic chaos schedule injected into the
	// run (see comm.FaultPlan). Part of the canonical spec: a faulted run
	// hashes — and caches — separately from its healthy twin.
	Faults *comm.FaultPlan `json:"faults,omitempty"`
	// Recover makes the trainer checkpoint, rebuild at the surviving size
	// and resume when an injected fault aborts the run (train.Config.Recover).
	Recover bool `json:"recover,omitempty"`
	// Retries is how many times a faulted (not cancelled) run is
	// re-executed before the job fails, each attempt seeing the fault
	// plan's ForAttempt view so attempts-scoped faults expire.
	Retries int `json:"retries,omitempty"`
	// BackoffMS is the first retry's backoff in milliseconds (default 10),
	// doubling per attempt and capped at maxBackoffMS.
	BackoffMS int `json:"backoff_ms,omitempty"`
	// BudgetMS is the job's wall-clock budget across all attempts; when it
	// expires the run aborts and the job fails with a distinct budget
	// reason (ErrBudget). Zero means no budget.
	BudgetMS int `json:"budget_ms,omitempty"`

	// Priority orders dequeue in the worker pool: higher runs first, FIFO
	// within a priority, range [0, 9] (default 0). Scheduling metadata,
	// not work: it is on the canonical-hash exempt-list, so the same
	// training run submitted at two priorities dedups into one flight —
	// which then runs at the highest priority any attached job asked for.
	Priority int `json:"priority,omitempty"`

	// Distribute runs the job across the serve cluster's joined nodes
	// (requires the server to be started with -cluster-listen; rejected
	// with 400 otherwise). Part of the canonical spec: the collective
	// results are byte-identical to the in-process run, but the execution
	// placement differs, so a distributed run hashes separately.
	Distribute bool `json:"distribute,omitempty"`
}

// normalize validates the spec and fills defaults in place, so that every
// spec describing the same work hashes identically.
func (s *JobSpec) normalize() error {
	switch {
	case s.Experiment != "" && s.Train != nil:
		return fmt.Errorf("spec sets both experiment and train; pick one")
	case s.Experiment == "" && s.Train == nil:
		return fmt.Errorf("spec sets neither experiment nor train")
	case s.Experiment != "":
		for _, id := range experiments.IDs() {
			if id == s.Experiment {
				return nil
			}
		}
		return fmt.Errorf("unknown experiment %q", s.Experiment)
	}

	t := s.Train
	if s.Quick || s.Seed != 0 {
		return fmt.Errorf("quick/seed apply to experiment jobs; use the train fields")
	}
	if t.Workload == "" {
		t.Workload = "mlp"
	}
	if t.Sparsifier == "" {
		t.Sparsifier = "deft"
	}
	if _, err := registry.NewWorkload(t.Workload); err != nil {
		return err
	}
	known := false
	for _, n := range registry.Sparsifiers() {
		if n == t.Sparsifier {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("unknown sparsifier %q", t.Sparsifier)
	}
	if t.Workers == 0 {
		t.Workers = 4
	}
	// Upper bounds keep one tenant's spec from wedging the shared
	// process: each simulated worker is a goroutine holding several
	// gradient-sized buffers, and a pool slot is held for the whole run.
	if t.Workers < 1 || t.Workers > maxWorkers {
		return fmt.Errorf("workers %d out of [1, %d]", t.Workers, maxWorkers)
	}
	if t.Density == 0 && t.Sparsifier != "dense" {
		t.Density = 0.01
	}
	if t.Density < 0 || t.Density > 1 {
		return fmt.Errorf("density %g out of (0, 1]", t.Density)
	}
	if t.LR == 0 {
		t.LR = 0.1
	}
	if t.LR < 0 {
		return fmt.Errorf("lr %g must be positive", t.LR)
	}
	if t.Momentum < 0 || t.Momentum >= 1 {
		return fmt.Errorf("momentum %g out of [0, 1)", t.Momentum)
	}
	if t.Quantize && t.Sparsifier == "dense" {
		return fmt.Errorf("quantize applies to sparse schemes; the dense baseline ships fp32")
	}
	if t.Iterations == 0 {
		t.Iterations = 50
	}
	if t.Iterations < 1 || t.Iterations > maxIterations {
		return fmt.Errorf("iterations %d out of [1, %d]", t.Iterations, maxIterations)
	}
	if t.RecordEvery < 0 || t.EvalEvery < 0 {
		return fmt.Errorf("record_every/eval_every must be non-negative")
	}
	if t.ProgressEvery < 0 {
		return fmt.Errorf("progress_every must be non-negative")
	}
	if t.RecordEvery == 0 {
		// Scale the sampling stride with the run length so a long job's
		// series — and its streamed/cached event history — stays bounded
		// by default.
		t.RecordEvery = max(1, t.Iterations/maxDefaultRecords)
	}
	if t.Iterations/t.RecordEvery > maxRecords {
		return fmt.Errorf("iterations/record_every = %d samples exceeds %d; raise record_every",
			t.Iterations/t.RecordEvery, maxRecords)
	}
	if t.Faults.Empty() {
		// A present-but-empty plan is the healthy run: normalise it away so
		// the spec hashes identically to one that never mentioned faults.
		t.Faults = nil
	} else if err := t.Faults.Validate(t.Workers); err != nil {
		return err
	}
	if t.Retries < 0 || t.Retries > maxRetries {
		return fmt.Errorf("retries %d out of [0, %d]", t.Retries, maxRetries)
	}
	if t.BackoffMS < 0 || t.BackoffMS > maxBackoffMS {
		return fmt.Errorf("backoff_ms %d out of [0, %d]", t.BackoffMS, maxBackoffMS)
	}
	if t.BackoffMS == 0 {
		t.BackoffMS = defaultBackoffMS
	}
	if t.BudgetMS < 0 {
		return fmt.Errorf("budget_ms %d must be non-negative", t.BudgetMS)
	}
	if t.Priority < 0 || t.Priority > maxPriority {
		return fmt.Errorf("priority %d out of [0, %d]", t.Priority, maxPriority)
	}
	return nil
}

// priority is the spec's scheduling priority (experiment jobs run at
// the default).
func (s JobSpec) priority() int {
	if s.Train != nil {
		return s.Train.Priority
	}
	return 0
}

// Spec limits: the largest cluster the paper scales to leaves headroom
// (64 ≥ 2×32 workers), and a million iterations of the smallest workload
// already runs for hours — anything bigger is a misconfigured client.
// maxRecords bounds the per-run sample count (series points, streamed
// NDJSON lines, cached history) no matter what the client asks for;
// maxDefaultRecords is the gentler target used when record_every is left
// for the server to pick.
// Retry limits: attempts are serial executions holding a pool slot, so
// both the count and the backoff between them stay small; the default
// backoff is just enough to order the retry behind the abort's unwinding.
const (
	maxWorkers        = 64
	maxIterations     = 1_000_000
	maxRecords        = 100_000
	maxDefaultRecords = 10_000
	maxRetries        = 8
	maxBackoffMS      = 5_000
	defaultBackoffMS  = 10
	maxPriority       = 9
)

// hash returns the content address of a normalized spec: the first 16 hex
// digits of the SHA-256 of its canonical JSON (struct field order is
// fixed, so encoding/json is canonical here).
//
// Exempt-list: fields that describe how a job is scheduled rather than
// what it computes are cleared before hashing, so they never split the
// content address. Currently exempt: Priority.
func (s JobSpec) hash() string {
	if s.Train != nil && s.Train.Priority != 0 {
		t := *s.Train
		t.Priority = 0
		s.Train = &t
	}
	data, err := json.Marshal(s)
	if err != nil {
		panic("serve: spec hash: " + err.Error()) // unreachable: plain fields
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}
