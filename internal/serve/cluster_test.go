package serve

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/train"
)

// startFollowers joins n follower nodes to the leader and returns their
// cancel funcs (kill one to simulate node death). It blocks until the
// leader sees all n.
func startFollowers(t *testing.T, cl *ClusterLeader, n int) []context.CancelFunc {
	t.Helper()
	var cancels []context.CancelFunc
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = JoinCluster(ctx, cl.Addr(), "test-node")
		}()
	}
	t.Cleanup(func() {
		for _, c := range cancels {
			c()
		}
		wg.Wait()
	})
	deadline := time.Now().Add(10 * time.Second)
	for cl.Nodes() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d nodes joined", cl.Nodes(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cancels
}

func newTestCluster(t *testing.T, followers int) (*ClusterLeader, []context.CancelFunc) {
	t.Helper()
	cl, err := NewClusterLeader("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewClusterLeader: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	cancels := startFollowers(t, cl, followers)
	return cl, cancels
}

// TestClusterJobMatchesLocal is the serve-level equivalence check: the
// same spec run across two real TCP follower nodes produces a Result
// whose deterministic fields are byte-identical to the in-process run.
func TestClusterJobMatchesLocal(t *testing.T) {
	cl, _ := newTestCluster(t, 2)
	spec := TrainSpec{
		Workload: "mlp", Sparsifier: "deft", Workers: 4, Density: 0.05,
		LR: 0.1, Iterations: 10, EvalEvery: 5, RecordEvery: 2, Seed: 42,
	}
	ctx := context.Background()
	distRes, err := cl.RunJob(ctx, spec, 1, false, nil)
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	localRes, err := runTrain(ctx, spec, 1, false, nil)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	dj, err := distRes.DeterministicJSON()
	if err != nil {
		t.Fatalf("distributed DeterministicJSON: %v", err)
	}
	lj, err := localRes.DeterministicJSON()
	if err != nil {
		t.Fatalf("local DeterministicJSON: %v", err)
	}
	if !bytes.Equal(dj, lj) {
		t.Errorf("distributed result diverges from local:\ndistributed: %s\nlocal:       %s", dj, lj)
	}
	if distRes.SocketTxBytes == 0 || distRes.SocketRxBytes == 0 {
		t.Errorf("distributed run reports no socket traffic (tx=%d rx=%d)",
			distRes.SocketTxBytes, distRes.SocketRxBytes)
	}
	if localRes.SocketTxBytes != 0 || localRes.SocketRxBytes != 0 {
		t.Errorf("local run reports socket traffic (tx=%d rx=%d)",
			localRes.SocketTxBytes, localRes.SocketRxBytes)
	}
}

// TestClusterMoreNodesThanWorkers exercises the exclusion protocol: with
// more nodes than ranks the surplus nodes are told to sit the job out
// (SESSION with an empty range → errExcluded → JOBDONE{excluded}), and
// the job still matches the local run.
func TestClusterMoreNodesThanWorkers(t *testing.T) {
	cl, _ := newTestCluster(t, 3)
	spec := TrainSpec{
		Workload: "mlp", Sparsifier: "topk", Workers: 2, Density: 0.05,
		LR: 0.1, Iterations: 6, Seed: 7,
	}
	ctx := context.Background()
	distRes, err := cl.RunJob(ctx, spec, 1, false, nil)
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	localRes, err := runTrain(ctx, spec, 1, false, nil)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	dj, _ := distRes.DeterministicJSON()
	lj, _ := localRes.DeterministicJSON()
	if !bytes.Equal(dj, lj) {
		t.Errorf("result diverges with excluded nodes:\ndistributed: %s\nlocal:       %s", dj, lj)
	}
}

// TestClusterSequentialJobs reuses the same node connections for a second
// job, proving the per-segment sessions tear down cleanly in between.
func TestClusterSequentialJobs(t *testing.T) {
	cl, _ := newTestCluster(t, 1)
	ctx := context.Background()
	for i, seed := range []uint64{3, 4} {
		spec := TrainSpec{
			Workload: "mlp", Sparsifier: "deft", Workers: 3, Density: 0.05,
			LR: 0.1, Iterations: 5, Seed: seed,
		}
		distRes, err := cl.RunJob(ctx, spec, 1, false, nil)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		localRes, err := runTrain(ctx, spec, 1, false, nil)
		if err != nil {
			t.Fatalf("job %d local: %v", i, err)
		}
		dj, _ := distRes.DeterministicJSON()
		lj, _ := localRes.DeterministicJSON()
		if !bytes.Equal(dj, lj) {
			t.Errorf("job %d diverges from local", i)
		}
	}
	if n := cl.Nodes(); n != 1 {
		t.Errorf("node count after two jobs = %d, want 1", n)
	}
}

// TestClusterNodeDeathRecovers kills a follower mid-job: its rank range
// must surface as a drop fault and the leader — plus the surviving node —
// must recover and converge.
func TestClusterNodeDeathRecovers(t *testing.T) {
	cl, cancels := newTestCluster(t, 2)
	spec := TrainSpec{
		Workload: "mlp", Sparsifier: "deft", Workers: 6, Density: 0.05,
		LR: 0.1, Iterations: 40, EvalEvery: 20, Seed: 11, Recover: true,
	}
	var once sync.Once
	progress := func(p train.Progress) {
		if p.Iteration >= 5 {
			once.Do(cancels[0]) // hard-kill the first follower mid-run
		}
	}
	res, err := cl.RunJob(context.Background(), spec, 1, false, progress)
	if err != nil {
		t.Fatalf("RunJob with node death: %v", err)
	}
	if len(res.Faults) == 0 {
		t.Fatalf("node death recorded no faults")
	}
	if res.Recoveries == 0 {
		t.Fatalf("node death recorded no recoveries")
	}
	if last := res.TrainLoss.LastY(); last <= 0 {
		t.Errorf("suspicious final loss %g", last)
	}
	// The survivors keep serving: a follow-up job must still work.
	spec2 := TrainSpec{
		Workload: "mlp", Sparsifier: "deft", Workers: 2, Density: 0.05,
		LR: 0.1, Iterations: 4, Seed: 12,
	}
	if _, err := cl.RunJob(context.Background(), spec2, 1, false, nil); err != nil {
		t.Fatalf("job after node death: %v", err)
	}
	if n := cl.Nodes(); n != 1 {
		t.Errorf("node count after death = %d, want 1", n)
	}
}

// TestClusterNoNodesRunsLocal: a leader with no joined nodes degrades to
// the plain in-process runner.
func TestClusterNoNodesRunsLocal(t *testing.T) {
	cl, err := NewClusterLeader("127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewClusterLeader: %v", err)
	}
	defer cl.Close()
	spec := TrainSpec{
		Workload: "mlp", Sparsifier: "deft", Workers: 2, Density: 0.05,
		LR: 0.1, Iterations: 4, Seed: 9,
	}
	res, err := cl.RunJob(context.Background(), spec, 1, false, nil)
	if err != nil {
		t.Fatalf("RunJob with empty cluster: %v", err)
	}
	if res.SocketTxBytes != 0 {
		t.Errorf("empty-cluster run used sockets (tx=%d)", res.SocketTxBytes)
	}
}

// TestDistributeOverHTTP drives a distribute job through the full HTTP
// path: submit, wait, and check the result carries socket traffic.
func TestDistributeOverHTTP(t *testing.T) {
	cl, _ := newTestCluster(t, 1)
	_, ts := newTestServer(t, Options{Pool: 1, Cluster: cl})
	v, code := postJob(t, ts,
		`{"train":{"workload":"mlp","sparsifier":"deft","workers":2,"iterations":6,"seed":5,"distribute":true}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	done := waitState(t, ts, v.ID, StateDone)
	if done.Result == nil || done.Result.TrainResult == nil {
		t.Fatalf("done job has no training result")
	}
	res := done.Result.TrainResult
	if res.SocketTxBytes == 0 || res.SocketRxBytes == 0 {
		t.Errorf("distributed job reports no socket traffic (tx=%d rx=%d)",
			res.SocketTxBytes, res.SocketRxBytes)
	}
}

// TestDistributeWithoutClusterRejected: "distribute": true on a server
// with no cluster is a client error, not a silent local run.
func TestDistributeWithoutClusterRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{Pool: 1})
	_, code := postJob(t, ts,
		`{"train":{"workload":"mlp","sparsifier":"deft","workers":2,"iterations":4,"distribute":true}}`)
	if code != http.StatusBadRequest {
		t.Fatalf("submit status = %d, want 400", code)
	}
}

// TestParseDistributeSpecHash: distribute is part of the canonical spec,
// so a distributed run never answers from its in-process twin's cache.
func TestDistributeSplitsHash(t *testing.T) {
	base := JobSpec{Train: &TrainSpec{Workload: "mlp", Sparsifier: "deft"}}
	if err := base.normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	dist := base
	tcopy := *base.Train
	tcopy.Distribute = true
	dist.Train = &tcopy
	if base.hash() == dist.hash() {
		t.Errorf("distribute does not split the content address")
	}
}
