package serve

import (
	"encoding/json"
	"sync"

	"repro/internal/obs/analyze"
	"repro/internal/train"
)

// event is one NDJSON line of a job's stream. Type "state" marks job
// lifecycle transitions, "progress" carries a training sample (the same
// values appended to the run's Result series), "retry" announces the next
// execution attempt of a faulted run (Error holds what killed the previous
// one), "anomaly" reports a live detector flag on the run's progress
// series, and "done" terminates the stream with the job's final state.
type event struct {
	Type  string `json:"type"` // "state" | "progress" | "retry" | "anomaly" | "done"
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	// Attempt is the 1-based execution attempt a retry event starts.
	Attempt int `json:"attempt,omitempty"`
	// Run tags progress events with the underlying run's cache key when an
	// experiment job trains several configurations.
	Run string `json:"run,omitempty"`
	// Anomaly is the detector flag carried by anomaly events.
	Anomaly *analyze.Anomaly `json:"anomaly,omitempty"`
	*train.Progress
}

// marshalEvent renders an event to one newline-free JSON line. Marshal
// failures are impossible for the plain field types involved.
func marshalEvent(ev event) json.RawMessage {
	line, err := json.Marshal(ev)
	if err != nil {
		panic("serve: marshal event: " + err.Error())
	}
	return line
}

// eventLog is an append-only broadcast buffer: writers append marshalled
// lines, readers cursor through history and block for more. Each job owns
// one log; deduplicated jobs sharing a training run receive fan-out copies
// of the run's progress events, so a job's stream is self-contained (a
// late or repeated GET replays the full history).
type eventLog struct {
	mu     sync.Mutex
	lines  []json.RawMessage
	closed bool
	ping   chan struct{} // closed and replaced on every append/close
	done   chan struct{} // closed once, when the log terminates
}

func newEventLog() *eventLog {
	return &eventLog{ping: make(chan struct{}), done: make(chan struct{})}
}

// append adds one line and wakes blocked readers. Appending to a closed
// log is a no-op (a cancelled job's log stays terminated).
func (l *eventLog) append(line json.RawMessage) {
	l.mu.Lock()
	if !l.closed {
		l.lines = append(l.lines, line)
		close(l.ping)
		l.ping = make(chan struct{})
	}
	l.mu.Unlock()
}

// appendEvent marshals and appends.
func (l *eventLog) appendEvent(ev event) { l.append(marshalEvent(ev)) }

// close terminates the log: readers drain what remains and stop.
func (l *eventLog) close() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.ping)
		close(l.done)
	}
	l.mu.Unlock()
}

// terminated returns a channel closed when the log reaches its terminal
// state — the long-poll (?wait=1) signal that the job settled.
func (l *eventLog) terminated() <-chan struct{} { return l.done }

// next returns the lines beyond cursor, whether the log is terminated,
// and a channel that is closed on the next append/close (valid only when
// no lines were returned and the log is open).
func (l *eventLog) next(cursor int) (lines []json.RawMessage, closed bool, ping <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cursor < len(l.lines) {
		return l.lines[cursor:], l.closed, nil
	}
	return nil, l.closed, l.ping
}
