package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// gradCheck verifies a layer's analytic gradients against central finite
// differences. The scalar objective is sum(output ⊙ w) for a fixed random
// weighting w, whose gradient is exactly w. It checks every parameter
// tensor (sampled entries) and, when the layer propagates input gradients,
// the input too.
func gradCheck(t *testing.T, name string, layer Layer, x *tensor.Tensor, checkInput bool) {
	t.Helper()
	const eps = 1e-5
	const tol = 1e-4
	r := rng.New(12345)

	forwardLoss := func() float64 {
		y := layer.Forward(x, true)
		// Deterministic weighting derived from position only.
		s := 0.0
		for i, v := range y.Data {
			s += v * weightAt(i)
		}
		return s
	}

	// Analytic pass.
	y := layer.Forward(x, true)
	dout := tensor.New(y.Shape()...)
	for i := range dout.Data {
		dout.Data[i] = weightAt(i)
	}
	ZeroGrads(layer.Params())
	dx := layer.Backward(dout)

	// Parameter gradients.
	for _, p := range layer.Params() {
		n := p.W.Size()
		samples := n
		if samples > 24 {
			samples = 24
		}
		for s := 0; s < samples; s++ {
			i := r.Intn(n)
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := forwardLoss()
			p.W.Data[i] = orig - eps
			lm := forwardLoss()
			p.W.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := p.G.Data[i]
			if relErr(numeric, analytic) > tol {
				t.Errorf("%s: param %s[%d]: numeric %v analytic %v", name, p.Name, i, numeric, analytic)
			}
		}
	}

	// Input gradient.
	if checkInput {
		if dx == nil {
			t.Fatalf("%s: expected input gradient, got nil", name)
		}
		n := x.Size()
		samples := n
		if samples > 24 {
			samples = 24
		}
		for s := 0; s < samples; s++ {
			i := r.Intn(n)
			orig := x.Data[i]
			x.Data[i] = orig + eps
			lp := forwardLoss()
			x.Data[i] = orig - eps
			lm := forwardLoss()
			x.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := dx.Data[i]
			if relErr(numeric, analytic) > tol {
				t.Errorf("%s: input[%d]: numeric %v analytic %v", name, i, numeric, analytic)
			}
		}
	}
}

// weightAt is a fixed pseudo-random weighting, position-dependent only.
func weightAt(i int) float64 {
	x := uint64(i)*0x9e3779b97f4a7c15 + 1
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x%2000)/1000 - 1 // in [-1, 1)
}

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	den := math.Max(math.Abs(a)+math.Abs(b), 1e-8)
	return d / den
}

func TestGradCheckDense(t *testing.T) {
	r := rng.New(1)
	gradCheck(t, "dense", NewDense("d", r, 7, 5, true), tensor.Randn(r, 1, 4, 7), true)
}

func TestGradCheckDenseNoBias(t *testing.T) {
	r := rng.New(2)
	gradCheck(t, "dense-nobias", NewDense("d", r, 6, 3, false), tensor.Randn(r, 1, 2, 6), true)
}

func TestGradCheckReLU(t *testing.T) {
	r := rng.New(3)
	// Offset inputs away from 0 so finite differences don't cross the kink.
	x := tensor.Randn(r, 1, 3, 8)
	for i := range x.Data {
		if math.Abs(x.Data[i]) < 0.05 {
			x.Data[i] += 0.2
		}
	}
	gradCheck(t, "relu", NewReLU(), x, true)
}

func TestGradCheckSigmoidTanh(t *testing.T) {
	r := rng.New(4)
	gradCheck(t, "sigmoid", NewSigmoid(), tensor.Randn(r, 1, 3, 6), true)
	gradCheck(t, "tanh", NewTanh(), tensor.Randn(r, 1, 3, 6), true)
}

func TestGradCheckConv2D(t *testing.T) {
	r := rng.New(5)
	gradCheck(t, "conv", NewConv2D("c", r, 2, 3, 3, 1, 1, true), tensor.Randn(r, 1, 2, 2, 5, 5), true)
}

func TestGradCheckConv2DStride2NoPad(t *testing.T) {
	r := rng.New(6)
	gradCheck(t, "conv-s2", NewConv2D("c", r, 3, 2, 3, 2, 0, false), tensor.Randn(r, 1, 2, 3, 7, 7), true)
}

func TestGradCheckBatchNorm2D(t *testing.T) {
	r := rng.New(7)
	gradCheck(t, "bn4d", NewBatchNorm("bn", 3), tensor.Randn(r, 1, 4, 3, 3, 3), true)
}

func TestGradCheckBatchNorm1D(t *testing.T) {
	r := rng.New(8)
	gradCheck(t, "bn2d", NewBatchNorm("bn", 5), tensor.Randn(r, 1, 6, 5), true)
}

func TestGradCheckGlobalAvgPool(t *testing.T) {
	r := rng.New(9)
	gradCheck(t, "gap", NewGlobalAvgPool(), tensor.Randn(r, 1, 2, 3, 4, 4), true)
}

func TestGradCheckEmbedding(t *testing.T) {
	r := rng.New(10)
	x := tensor.New(3, 4)
	for i := range x.Data {
		x.Data[i] = float64(r.Intn(9))
	}
	gradCheck(t, "embedding", NewEmbedding("e", r, 9, 5), x, false)
}

func TestGradCheckLSTM(t *testing.T) {
	r := rng.New(11)
	gradCheck(t, "lstm", NewLSTM("l", r, 4, 3), tensor.Randn(r, 1, 2, 5, 4), true)
}

func TestGradCheckSequentialCNN(t *testing.T) {
	r := rng.New(12)
	model := NewSequential(
		NewConv2D("c1", r, 2, 4, 3, 1, 1, false),
		NewBatchNorm("bn1", 4),
		NewReLU(),
		NewGlobalAvgPool(),
		NewDense("fc", r, 4, 3, true),
	)
	x := tensor.Randn(r, 1, 2, 2, 6, 6)
	// Keep ReLU inputs away from the kink: BN output is centred, so just
	// use the generic checker with its tolerance; kink crossings are rare
	// at eps=1e-5.
	gradCheck(t, "cnn", model, x, true)
}

func TestGradCheckSoftmaxCrossEntropy(t *testing.T) {
	r := rng.New(13)
	logits := tensor.Randn(r, 1, 4, 6)
	labels := []int{1, 3, 0, 5}
	_, grad := SoftmaxCrossEntropy(logits, labels)
	const eps = 1e-6
	for s := 0; s < 10; s++ {
		i := r.Intn(logits.Size())
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if relErr(numeric, grad.Data[i]) > 1e-4 {
			t.Errorf("xent grad[%d]: numeric %v analytic %v", i, numeric, grad.Data[i])
		}
	}
}

func TestGradCheckBCEWithLogits(t *testing.T) {
	r := rng.New(14)
	logits := tensor.Randn(r, 2, 8)
	targets := make([]float64, 8)
	for i := range targets {
		targets[i] = float64(r.Intn(2))
	}
	_, grad := BCEWithLogits(logits, targets)
	const eps = 1e-6
	for i := 0; i < 8; i++ {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := BCEWithLogits(logits, targets)
		logits.Data[i] = orig - eps
		lm, _ := BCEWithLogits(logits, targets)
		logits.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if relErr(numeric, grad.Data[i]) > 1e-4 {
			t.Errorf("bce grad[%d]: numeric %v analytic %v", i, numeric, grad.Data[i])
		}
	}
}

func TestGradCheckMSE(t *testing.T) {
	r := rng.New(15)
	pred := tensor.Randn(r, 1, 6)
	target := tensor.Randn(r, 1, 6)
	_, grad := MSE(pred, target)
	const eps = 1e-6
	for i := 0; i < 6; i++ {
		orig := pred.Data[i]
		pred.Data[i] = orig + eps
		lp, _ := MSE(pred, target)
		pred.Data[i] = orig - eps
		lm, _ := MSE(pred, target)
		pred.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if relErr(numeric, grad.Data[i]) > 1e-4 {
			t.Errorf("mse grad[%d]: numeric %v analytic %v", i, numeric, grad.Data[i])
		}
	}
}
