package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// GRU is a single-layer gated recurrent unit unrolled over full sequences
// with exact BPTT. Input [B, T, In] → output [B, T, H]. Gate order in the
// packed weights is (r, z, n) — reset, update, candidate — matching
// PyTorch's layout, with separate input and hidden biases (the hidden bias
// enters the candidate term before the reset gate is applied, also the
// PyTorch convention):
//
//	r = σ(x·Wr + h·Ur + br)
//	z = σ(x·Wz + h·Uz + bz)
//	n = tanh(x·Wn + bn_i + r ⊙ (h·Un + bn_h))
//	h' = (1 − z) ⊙ n + z ⊙ h
type GRU struct {
	In, H int
	Wih   *Param // [In, 3H]
	Whh   *Param // [H, 3H]
	BiasI *Param // [3H]
	BiasH *Param // [3H]

	b, t  int
	x     *tensor.Tensor
	gates []float64 // [T][B][3H] post-activation r, z, n
	hs    []float64 // [T][B][H]
	hcand []float64 // [T][B][H]: h_{t-1}·Un + bn_h, cached for backward

	// Reusable per-step scratch (outputs and step-local work buffers).
	y, dx                 *tensor.Tensor
	hPrev, xt, preI, preH []float64 // forward step buffers
	dh, dPreI, dPreH, dxt []float64 // backward step buffers
	dhNext, hpz           []float64
}

// NewGRU builds a GRU layer with Xavier initialisation.
func NewGRU(name string, r *rng.RNG, in, h int) *GRU {
	return &GRU{
		In: in, H: h,
		Wih:   NewParam(name+".wih", tensor.Randn(r, XavierStd(in, h), in, 3*h)),
		Whh:   NewParam(name+".whh", tensor.Randn(r, XavierStd(h, h), h, 3*h)),
		BiasI: NewParam(name+".bias_i", tensor.New(3*h)),
		BiasH: NewParam(name+".bias_h", tensor.New(3*h)),
	}
}

// Forward implements Layer.
func (g *GRU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	sh := x.Shape()
	if len(sh) != 3 || sh[2] != g.In {
		panic(fmt.Sprintf("nn: GRU(%d→%d) got shape %v", g.In, g.H, sh))
	}
	b, t, h := sh[0], sh[1], g.H
	g.b, g.t, g.x = b, t, x
	g.gates = grow(g.gates, t*b*3*h)
	g.hs = grow(g.hs, t*b*h)
	g.hcand = grow(g.hcand, t*b*h)

	g.y = tensor.Ensure(g.y, b, t, h)
	y := g.y
	g.hPrev = grow(g.hPrev, b*h)
	g.xt = grow(g.xt, b*g.In)
	g.preI = grow(g.preI, b*3*h) // x·Wih
	g.preH = grow(g.preH, b*3*h) // h·Whh
	hPrev, xt, preI, preH := g.hPrev, g.xt, g.preI, g.preH
	clear(hPrev)

	for step := 0; step < t; step++ {
		for n := 0; n < b; n++ {
			copy(xt[n*g.In:(n+1)*g.In], x.Data[(n*t+step)*g.In:(n*t+step+1)*g.In])
		}
		tensor.GemmInto(preI, xt, g.Wih.W.Data, b, g.In, 3*h, false)
		tensor.GemmInto(preH, hPrev, g.Whh.W.Data, b, h, 3*h, false)
		gBase := step * b * 3 * h
		sBase := step * b * h
		for n := 0; n < b; n++ {
			gi := preI[n*3*h : (n+1)*3*h]
			gh := preH[n*3*h : (n+1)*3*h]
			gRow := g.gates[gBase+n*3*h : gBase+(n+1)*3*h]
			for j := 0; j < h; j++ {
				r := sigmoid(gi[j] + g.BiasI.W.Data[j] + gh[j] + g.BiasH.W.Data[j])
				z := sigmoid(gi[h+j] + g.BiasI.W.Data[h+j] + gh[h+j] + g.BiasH.W.Data[h+j])
				cand := gh[2*h+j] + g.BiasH.W.Data[2*h+j]
				nv := math.Tanh(gi[2*h+j] + g.BiasI.W.Data[2*h+j] + r*cand)
				hv := (1-z)*nv + z*hPrev[n*h+j]
				gRow[j], gRow[h+j], gRow[2*h+j] = r, z, nv
				g.hcand[sBase+n*h+j] = cand
				g.hs[sBase+n*h+j] = hv
				y.Data[(n*t+step)*h+j] = hv
			}
		}
		copy(hPrev, g.hs[sBase:sBase+b*h])
	}
	return y
}

// Backward implements Layer (full BPTT).
func (g *GRU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	b, t, h := g.b, g.t, g.H
	g.dx = tensor.Ensure(g.dx, b, t, g.In)
	dx := g.dx
	g.dh = grow(g.dh, b*h)
	g.dPreI = grow(g.dPreI, b*3*h)
	g.dPreH = grow(g.dPreH, b*3*h)
	g.xt = grow(g.xt, b*g.In)
	g.dxt = grow(g.dxt, b*g.In)
	g.dhNext = grow(g.dhNext, b*h)
	g.hpz = grow(g.hpz, b*h)
	dh, dPreI, dPreH, xt := g.dh, g.dPreI, g.dPreH, g.xt
	dxt, dhNext, hPrevBuf := g.dxt, g.dhNext, g.hpz
	clear(dh)

	for step := t - 1; step >= 0; step-- {
		gBase := step * b * 3 * h
		sBase := step * b * h
		var hPrev []float64
		if step > 0 {
			hPrev = g.hs[(step-1)*b*h : step*b*h]
		} else {
			for i := range hPrevBuf {
				hPrevBuf[i] = 0
			}
			hPrev = hPrevBuf
		}
		for i := range dhNext {
			dhNext[i] = 0
		}
		for n := 0; n < b; n++ {
			gRow := g.gates[gBase+n*3*h : gBase+(n+1)*3*h]
			for j := 0; j < h; j++ {
				dhv := dout.Data[(n*t+step)*h+j] + dh[n*h+j]
				r, z, nv := gRow[j], gRow[h+j], gRow[2*h+j]
				hp := hPrev[n*h+j]
				cand := g.hcand[sBase+n*h+j]

				dz := dhv * (hp - nv)
				dn := dhv * (1 - z)
				dhNext[n*h+j] += dhv * z

				dnPre := dn * (1 - nv*nv)
				dr := dnPre * cand
				// Candidate pre-activation splits into the input part and
				// r ⊙ hidden part.
				dPreI[n*3*h+2*h+j] = dnPre
				dPreH[n*3*h+2*h+j] = dnPre * r

				drPre := dr * r * (1 - r)
				dzPre := dz * z * (1 - z)
				dPreI[n*3*h+j] = drPre
				dPreH[n*3*h+j] = drPre
				dPreI[n*3*h+h+j] = dzPre
				dPreH[n*3*h+h+j] = dzPre
			}
		}
		// Parameter gradients.
		for n := 0; n < b; n++ {
			copy(xt[n*g.In:(n+1)*g.In], g.x.Data[(n*t+step)*g.In:(n*t+step+1)*g.In])
		}
		tensor.GemmTransA(g.Wih.G.Data, xt, dPreI, g.In, b, 3*h, true)
		tensor.GemmTransA(g.Whh.G.Data, hPrev, dPreH, h, b, 3*h, true)
		for n := 0; n < b; n++ {
			for j := 0; j < 3*h; j++ {
				g.BiasI.G.Data[j] += dPreI[n*3*h+j]
				g.BiasH.G.Data[j] += dPreH[n*3*h+j]
			}
		}
		// Input gradient and recurrent contribution through Whh.
		tensor.GemmTransB(dxt, dPreI, g.Wih.W.Data, b, 3*h, g.In, false)
		for n := 0; n < b; n++ {
			copy(dx.Data[(n*t+step)*g.In:(n*t+step+1)*g.In], dxt[n*g.In:(n+1)*g.In])
		}
		tensor.GemmTransB(dh, dPreH, g.Whh.W.Data, b, 3*h, h, false)
		for i := range dh {
			dh[i] += dhNext[i]
		}
	}
	return dx
}

// Params implements Layer.
func (g *GRU) Params() []*Param { return []*Param{g.Wih, g.Whh, g.BiasI, g.BiasH} }
