package nn

import (
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss between logits
// [B, C] and integer labels, and the gradient dL/dlogits. Rows are
// max-shifted for numerical stability.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	return SoftmaxCrossEntropyInto(logits, labels, nil)
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing the gradient into
// caller-owned scratch (resized as needed; nil allocates). It returns the
// gradient tensor so callers can keep it for the next step.
func SoftmaxCrossEntropyInto(logits *tensor.Tensor, labels []int, scratch *tensor.Tensor) (loss float64, grad *tensor.Tensor) {
	sh := logits.Shape()
	b, c := sh[0], sh[1]
	if len(labels) != b {
		panic("nn: SoftmaxCrossEntropy label count mismatch")
	}
	grad = tensor.Ensure(scratch, b, c)
	invB := 1 / float64(b)
	for n := 0; n < b; n++ {
		row := logits.Data[n*c : (n+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - maxv)
		}
		logSum := math.Log(sum) + maxv
		y := labels[n]
		if y < 0 || y >= c {
			panic("nn: label out of range")
		}
		loss += (logSum - row[y]) * invB
		gRow := grad.Data[n*c : (n+1)*c]
		for j, v := range row {
			p := math.Exp(v-maxv) / sum
			gRow[j] = p * invB
		}
		gRow[y] -= invB
	}
	return loss, grad
}

// BCEWithLogits computes the mean binary cross-entropy between logits [B]
// (or [B,1]) and targets in {0,1}, plus dL/dlogits. The log-sum-exp form
// keeps it stable for large |logit|.
func BCEWithLogits(logits *tensor.Tensor, targets []float64) (loss float64, grad *tensor.Tensor) {
	return BCEWithLogitsInto(logits, targets, nil)
}

// BCEWithLogitsInto is BCEWithLogits writing the gradient into caller-owned
// scratch (resized as needed; nil allocates).
func BCEWithLogitsInto(logits *tensor.Tensor, targets []float64, scratch *tensor.Tensor) (loss float64, grad *tensor.Tensor) {
	n := logits.Size()
	if len(targets) != n {
		panic("nn: BCEWithLogits target count mismatch")
	}
	grad = tensor.Ensure(scratch, logits.Shape()...)
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		z, y := logits.Data[i], targets[i]
		// loss = max(z,0) - z·y + log(1 + exp(-|z|))
		m := z
		if m < 0 {
			m = 0
		}
		loss += (m - z*y + math.Log1p(math.Exp(-math.Abs(z)))) * invN
		grad.Data[i] = (sigmoid(z) - y) * invN
	}
	return loss, grad
}

// MSE computes mean squared error between pred and target tensors of equal
// size, plus dL/dpred.
func MSE(pred, target *tensor.Tensor) (loss float64, grad *tensor.Tensor) {
	if pred.Size() != target.Size() {
		panic("nn: MSE size mismatch")
	}
	grad = tensor.New(pred.Shape()...)
	invN := 1 / float64(pred.Size())
	for i, p := range pred.Data {
		d := p - target.Data[i]
		loss += d * d * invN
		grad.Data[i] = 2 * d * invN
	}
	return loss, grad
}
