package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// LSTM is a single-layer LSTM unrolled over full sequences with exact
// backpropagation through time. Input [B, T, In] → output [B, T, H]
// (hidden state at every step). The initial hidden and cell states are
// zero for every sequence.
//
// Gate parameters are packed PyTorch-style into three tensors — Wih
// [In, 4H], Whh [H, 4H], bias [4H] — with gate order (i, f, g, o). The
// forget-gate bias is initialised to 1, the standard trick for gradient
// flow early in training.
type LSTM struct {
	In, H int
	Wih   *Param // [In, 4H]
	Whh   *Param // [H, 4H]
	Bias  *Param // [4H]

	// BPTT cache, rebuilt each Forward.
	b, t  int
	x     *tensor.Tensor
	gates []float64 // [T][B][4H] post-activation
	cells []float64 // [T][B][H] cell states c_t
	tanhC []float64 // [T][B][H] tanh(c_t)
	hs    []float64 // [T][B][H] hidden states h_t

	// Reusable per-step scratch (outputs and step-local work buffers).
	y, dx                  *tensor.Tensor
	hPrev, cPrev, xt, pre  []float64 // forward step buffers
	dh, dc, dPre, dxt, hpz []float64 // backward step buffers
}

// NewLSTM builds an LSTM layer.
func NewLSTM(name string, r *rng.RNG, in, h int) *LSTM {
	l := &LSTM{
		In: in, H: h,
		Wih:  NewParam(name+".wih", tensor.Randn(r, XavierStd(in, h), in, 4*h)),
		Whh:  NewParam(name+".whh", tensor.Randn(r, XavierStd(h, h), h, 4*h)),
		Bias: NewParam(name+".bias", tensor.New(4*h)),
	}
	for j := h; j < 2*h; j++ { // forget gate bias = 1
		l.Bias.W.Data[j] = 1
	}
	return l
}

// Forward implements Layer. x is [B, T, In].
func (l *LSTM) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	sh := x.Shape()
	if len(sh) != 3 || sh[2] != l.In {
		panic(fmt.Sprintf("nn: LSTM(%d→%d) got shape %v", l.In, l.H, sh))
	}
	b, t, h := sh[0], sh[1], l.H
	l.b, l.t, l.x = b, t, x
	l.gates = grow(l.gates, t*b*4*h)
	l.cells = grow(l.cells, t*b*h)
	l.tanhC = grow(l.tanhC, t*b*h)
	l.hs = grow(l.hs, t*b*h)

	l.y = tensor.Ensure(l.y, b, t, h)
	y := l.y
	l.hPrev = grow(l.hPrev, b*h) // zero initial state
	l.cPrev = grow(l.cPrev, b*h)
	l.xt = grow(l.xt, b*l.In)
	l.pre = grow(l.pre, b*4*h)
	hPrev, cPrev, xt, pre := l.hPrev, l.cPrev, l.xt, l.pre
	clear(hPrev)
	clear(cPrev)

	for step := 0; step < t; step++ {
		// Gather x_t: rows step of each sequence.
		for n := 0; n < b; n++ {
			copy(xt[n*l.In:(n+1)*l.In], x.Data[(n*t+step)*l.In:(n*t+step+1)*l.In])
		}
		// pre = x_t·Wih + h_{t-1}·Whh + bias
		tensor.GemmInto(pre, xt, l.Wih.W.Data, b, l.In, 4*h, false)
		tensor.GemmInto(pre, hPrev, l.Whh.W.Data, b, h, 4*h, true)
		gBase := step * b * 4 * h
		sBase := step * b * h
		for n := 0; n < b; n++ {
			row := pre[n*4*h : (n+1)*4*h]
			gRow := l.gates[gBase+n*4*h : gBase+(n+1)*4*h]
			for j := 0; j < 4*h; j++ {
				v := row[j] + l.Bias.W.Data[j]
				if j >= 2*h && j < 3*h { // g gate uses tanh
					gRow[j] = math.Tanh(v)
				} else {
					gRow[j] = sigmoid(v)
				}
			}
			for j := 0; j < h; j++ {
				i, f, g, o := gRow[j], gRow[h+j], gRow[2*h+j], gRow[3*h+j]
				c := f*cPrev[n*h+j] + i*g
				tc := math.Tanh(c)
				hv := o * tc
				l.cells[sBase+n*h+j] = c
				l.tanhC[sBase+n*h+j] = tc
				l.hs[sBase+n*h+j] = hv
				y.Data[(n*t+step)*h+j] = hv
			}
		}
		copy(hPrev, l.hs[sBase:sBase+b*h])
		copy(cPrev, l.cells[sBase:sBase+b*h])
	}
	return y
}

// Backward implements Layer: full BPTT. dout is [B, T, H]; returns
// dL/dx [B, T, In].
func (l *LSTM) Backward(dout *tensor.Tensor) *tensor.Tensor {
	b, t, h := l.b, l.t, l.H
	l.dx = tensor.Ensure(l.dx, b, t, l.In)
	dx := l.dx
	l.dh = grow(l.dh, b*h)       // dL/dh_t carried across steps
	l.dc = grow(l.dc, b*h)       // dL/dc_t carried across steps
	l.dPre = grow(l.dPre, b*4*h) // gradient at pre-activations
	l.xt = grow(l.xt, b*l.In)
	l.dxt = grow(l.dxt, b*l.In)
	l.hpz = grow(l.hpz, b*h)
	dh, dc, dPre, xt, dxt, hPrevBuf := l.dh, l.dc, l.dPre, l.xt, l.dxt, l.hpz
	clear(dh)
	clear(dc)

	for step := t - 1; step >= 0; step-- {
		gBase := step * b * 4 * h
		sBase := step * b * h
		// h_{t-1} and c_{t-1}: previous step's state, or zeros at step 0.
		var hPrev, cPrev []float64
		if step > 0 {
			hPrev = l.hs[(step-1)*b*h : step*b*h]
			cPrev = l.cells[(step-1)*b*h : step*b*h]
		} else {
			for i := range hPrevBuf {
				hPrevBuf[i] = 0
			}
			hPrev = hPrevBuf
			cPrev = hPrevBuf // zeros as well
		}
		for n := 0; n < b; n++ {
			gRow := l.gates[gBase+n*4*h : gBase+(n+1)*4*h]
			for j := 0; j < h; j++ {
				// Total gradient at h_t: from the output plus the carried
				// recurrent term.
				dhv := dout.Data[(n*t+step)*h+j] + dh[n*h+j]
				i, f, g, o := gRow[j], gRow[h+j], gRow[2*h+j], gRow[3*h+j]
				tc := l.tanhC[sBase+n*h+j]
				dcv := dc[n*h+j] + dhv*o*(1-tc*tc)
				do := dhv * tc
				di := dcv * g
				dg := dcv * i
				df := dcv * cPrev[n*h+j]
				// Through gate nonlinearities.
				dPre[n*4*h+j] = di * i * (1 - i)
				dPre[n*4*h+h+j] = df * f * (1 - f)
				dPre[n*4*h+2*h+j] = dg * (1 - g*g)
				dPre[n*4*h+3*h+j] = do * o * (1 - o)
				// Carry dc to step t-1.
				dc[n*h+j] = dcv * f
			}
		}
		// Parameter gradients: dWih += x_tᵀ·dPre, dWhh += h_{t-1}ᵀ·dPre,
		// dBias += column sums of dPre.
		for n := 0; n < b; n++ {
			copy(xt[n*l.In:(n+1)*l.In], l.x.Data[(n*t+step)*l.In:(n*t+step+1)*l.In])
		}
		tensor.GemmTransA(l.Wih.G.Data, xt, dPre, l.In, b, 4*h, true)
		tensor.GemmTransA(l.Whh.G.Data, hPrev, dPre, h, b, 4*h, true)
		for n := 0; n < b; n++ {
			row := dPre[n*4*h : (n+1)*4*h]
			for j, g := range row {
				l.Bias.G.Data[j] += g
			}
		}
		// Input gradient and recurrent hidden gradient.
		tensor.GemmTransB(dxt, dPre, l.Wih.W.Data, b, 4*h, l.In, false)
		for n := 0; n < b; n++ {
			copy(dx.Data[(n*t+step)*l.In:(n*t+step+1)*l.In], dxt[n*l.In:(n+1)*l.In])
		}
		tensor.GemmTransB(dh, dPre, l.Whh.W.Data, b, 4*h, h, false)
	}
	return dx
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.Wih, l.Whh, l.Bias} }

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
