package nn

import "repro/internal/tensor"

// Residual computes y = ReLU(Body(x) + x). Body must preserve shape (the
// classical identity-shortcut basic block; downsampling is done by strided
// convolutions between blocks, as in the CIFAR variants of ResNet).
type Residual struct {
	Body Layer

	mask []bool // post-sum ReLU mask
}

// NewResidual wraps body with an identity shortcut and output ReLU.
func NewResidual(body Layer) *Residual { return &Residual{Body: body} }

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := r.Body.Forward(x, train)
	if y.Size() != x.Size() {
		panic("nn: Residual body changed tensor size")
	}
	out := y.Clone()
	for i, v := range x.Data {
		out.Data[i] += v
	}
	if cap(r.mask) < out.Size() {
		r.mask = make([]bool, out.Size())
	}
	r.mask = r.mask[:out.Size()]
	for i, v := range out.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *Residual) Backward(dout *tensor.Tensor) *tensor.Tensor {
	d := dout.Clone()
	for i := range d.Data {
		if !r.mask[i] {
			d.Data[i] = 0
		}
	}
	dx := r.Body.Backward(d)
	out := dx.Clone()
	for i, v := range d.Data {
		out.Data[i] += v
	}
	return out
}

// Params implements Layer.
func (r *Residual) Params() []*Param { return r.Body.Params() }
