package nn

import "repro/internal/tensor"

// Residual computes y = ReLU(Body(x) + x). Body must preserve shape (the
// classical identity-shortcut basic block; downsampling is done by strided
// convolutions between blocks, as in the CIFAR variants of ResNet).
type Residual struct {
	Body Layer

	mask []bool // post-sum ReLU mask

	// Reusable per-step scratch for the summed forward output, the masked
	// gradient fed to the body, and the summed input gradient.
	out, dmask, dsum *tensor.Tensor
}

// NewResidual wraps body with an identity shortcut and output ReLU.
func NewResidual(body Layer) *Residual { return &Residual{Body: body} }

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := r.Body.Forward(x, train)
	if y.Size() != x.Size() {
		panic("nn: Residual body changed tensor size")
	}
	r.out = tensor.Ensure(r.out, y.Shape()...)
	out := r.out
	if cap(r.mask) < out.Size() {
		r.mask = make([]bool, out.Size())
	}
	r.mask = r.mask[:out.Size()]
	for i, v := range x.Data {
		s := y.Data[i] + v
		if s > 0 {
			r.mask[i] = true
			out.Data[i] = s
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *Residual) Backward(dout *tensor.Tensor) *tensor.Tensor {
	r.dmask = tensor.Ensure(r.dmask, dout.Shape()...)
	d := r.dmask
	for i, g := range dout.Data {
		if r.mask[i] {
			d.Data[i] = g
		} else {
			d.Data[i] = 0
		}
	}
	dx := r.Body.Backward(d)
	r.dsum = tensor.Ensure(r.dsum, dx.Shape()...)
	out := r.dsum
	for i, v := range d.Data {
		out.Data[i] = dx.Data[i] + v
	}
	return out
}

// Params implements Layer.
func (r *Residual) Params() []*Param { return r.Body.Params() }
