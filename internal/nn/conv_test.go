package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// convForwardDirect is the pre-im2col direct convolution loop, kept as the
// correctness oracle for the GEMM-lowered forward pass.
func convForwardDirect(c *Conv2D, x *tensor.Tensor) *tensor.Tensor {
	sh := x.Shape()
	b, h, w := sh[0], sh[2], sh[3]
	oh, ow := c.OutSize(h), c.OutSize(w)
	y := tensor.New(b, c.OutC, oh, ow)
	wd := c.Weight.W.Data
	for n := 0; n < b; n++ {
		for oc := 0; oc < c.OutC; oc++ {
			bias := 0.0
			if c.Bias != nil {
				bias = c.Bias.W.Data[oc]
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := bias
					iy0 := oy*c.Stride - c.Pad
					ix0 := ox*c.Stride - c.Pad
					for ic := 0; ic < c.InC; ic++ {
						xBase := (n*c.InC + ic) * h
						wBase := ((oc*c.InC + ic) * c.K) * c.K
						for ky := 0; ky < c.K; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < c.K; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= w {
									continue
								}
								sum += x.Data[(xBase+iy)*w+ix] * wd[wBase+ky*c.K+kx]
							}
						}
					}
					y.Data[((n*c.OutC+oc)*oh+oy)*ow+ox] = sum
				}
			}
		}
	}
	return y
}

// TestConvForwardMatchesDirect compares the im2col + blocked-GEMM forward
// pass against the direct convolution loops across stride/pad/size/bias
// combinations, including non-square and padding-dominated maps.
func TestConvForwardMatchesDirect(t *testing.T) {
	cases := []struct {
		name                      string
		inC, outC, k, stride, pad int
		b, h, w                   int
		bias                      bool
	}{
		{"3x3-s1-p1", 3, 8, 3, 1, 1, 2, 8, 8, false},
		{"3x3-s1-p1-bias", 4, 6, 3, 1, 1, 3, 6, 6, true},
		{"3x3-s2-p1", 8, 16, 3, 2, 1, 2, 8, 8, false},
		{"5x5-s1-p2", 2, 4, 5, 1, 2, 1, 9, 9, true},
		{"1x1-s1-p0", 6, 3, 1, 1, 0, 2, 5, 5, false},
		{"3x3-s1-p0", 3, 5, 3, 1, 0, 2, 7, 7, false},
		{"nonsquare", 3, 4, 3, 1, 1, 2, 6, 10, true},
		{"3x3-s3-p1", 2, 3, 3, 3, 1, 1, 10, 10, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rng.New(77)
			c := NewConv2D("c", r, tc.inC, tc.outC, tc.k, tc.stride, tc.pad, tc.bias)
			if tc.bias {
				for i := range c.Bias.W.Data {
					c.Bias.W.Data[i] = r.Norm()
				}
			}
			x := tensor.Randn(r, 1, tc.b, tc.inC, tc.h, tc.w)
			got := c.Forward(x, true)
			want := convForwardDirect(c, x)
			if got.Size() != want.Size() {
				t.Fatalf("output size %d, want %d", got.Size(), want.Size())
			}
			for i := range got.Data {
				d := math.Abs(got.Data[i] - want.Data[i])
				den := math.Max(math.Abs(want.Data[i]), 1)
				if d/den > 1e-12 {
					t.Fatalf("element %d: got %v want %v", i, got.Data[i], want.Data[i])
				}
			}
		})
	}
}

// TestConvForwardReusesScratch asserts the im2col forward and backward
// paths are allocation-free once the layer scratch is warm.
func TestConvForwardReusesScratch(t *testing.T) {
	r := rng.New(5)
	c := NewConv2D("c", r, 4, 4, 3, 1, 1, false)
	x := tensor.Randn(r, 1, 2, 4, 8, 8)
	y := c.Forward(x, true)
	dout := tensor.Randn(r, 1, y.Shape()...)
	c.Backward(dout)
	if allocs := testing.AllocsPerRun(10, func() {
		ZeroGrads(c.Params())
		c.Forward(x, true)
		c.Backward(dout)
	}); allocs != 0 {
		t.Errorf("conv forward+backward: %v allocs/op after warmup, want 0", allocs)
	}
}
