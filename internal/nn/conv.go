package nn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW input with square kernels.
//
// Both passes are routed through the blocked GEMM substrate: the forward
// pass lowers each image to a [InC·K·K, OH·OW] column matrix (im2col) and
// multiplies it by the [OutC, InC·K·K] weight view; the backward pass
// reuses the same lowering for the weight gradient (A·Bᵀ) and the input
// gradient (Aᵀ·B followed by a col2im scatter). The column matrix, the
// output and the gradients live in per-layer scratch reused across steps,
// so the steady state allocates nothing.
type Conv2D struct {
	InC, OutC, K, Stride, Pad int
	Weight                    *Param // [OutC, InC, K, K]
	Bias                      *Param // [OutC], nil when disabled

	x          *tensor.Tensor // cached input
	outH, outW int

	cols  []float64      // im2col scratch, one image: [InC·K·K, OH·OW]
	dcols []float64      // backward column gradient, one image
	y     *tensor.Tensor // forward output scratch
	dx    *tensor.Tensor // backward input-gradient scratch
}

// NewConv2D builds a convolution with Kaiming initialisation.
func NewConv2D(name string, r *rng.RNG, inC, outC, k, stride, pad int, bias bool) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		Weight: NewParam(name+".weight", tensor.Randn(r, KaimingStd(inC*k*k), outC, inC, k, k)),
	}
	if bias {
		c.Bias = NewParam(name+".bias", tensor.New(outC))
	}
	return c
}

// OutSize returns the spatial output size for input size h.
func (c *Conv2D) OutSize(h int) int { return (h+2*c.Pad-c.K)/c.Stride + 1 }

// Forward implements Layer. x is [B, InC, H, W].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	sh := x.Shape()
	if len(sh) != 4 || sh[1] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D(%d→%d) got input shape %v", c.InC, c.OutC, sh))
	}
	b, h, w := sh[0], sh[2], sh[3]
	oh, ow := c.OutSize(h), c.OutSize(w)
	c.x, c.outH, c.outW = x, oh, ow
	ckk := c.InC * c.K * c.K
	ohw := oh * ow
	c.cols = grow(c.cols, ckk*ohw)
	c.y = tensor.Ensure(c.y, b, c.OutC, oh, ow)
	y := c.y

	wd := c.Weight.W.Data
	for n := 0; n < b; n++ {
		c.im2col(c.cols, x.Data[n*c.InC*h*w:], h, w, oh, ow)
		out := y.Data[n*c.OutC*ohw : (n+1)*c.OutC*ohw]
		tensor.GemmInto(out, wd, c.cols, c.OutC, ckk, ohw, false)
		if c.Bias != nil {
			for oc := 0; oc < c.OutC; oc++ {
				bias := c.Bias.W.Data[oc]
				row := out[oc*ohw : (oc+1)*ohw]
				for i := range row {
					row[i] += bias
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	x := c.x
	sh := x.Shape()
	b, h, w := sh[0], sh[2], sh[3]
	oh, ow := c.outH, c.outW
	ckk := c.InC * c.K * c.K
	ohw := oh * ow
	c.dx = tensor.Ensure(c.dx, sh...)
	c.dx.Zero()
	c.dcols = grow(c.dcols, ckk*ohw)
	wd := c.Weight.W.Data
	gw := c.Weight.G.Data

	for n := 0; n < b; n++ {
		g := dout.Data[n*c.OutC*ohw : (n+1)*c.OutC*ohw]
		if c.Bias != nil {
			for oc := 0; oc < c.OutC; oc++ {
				s := 0.0
				for _, v := range g[oc*ohw : (oc+1)*ohw] {
					s += v
				}
				c.Bias.G.Data[oc] += s
			}
		}
		// dW += g · colsᵀ — recompute the lowering instead of caching it for
		// the whole batch (one image of columns is cheap; B of them are not).
		c.im2col(c.cols, x.Data[n*c.InC*h*w:], h, w, oh, ow)
		tensor.GemmTransB(gw, g, c.cols, c.OutC, ohw, ckk, true)
		// dcols = Wᵀ · g, scattered back to input coordinates.
		tensor.GemmTransA(c.dcols, wd, g, ckk, c.OutC, ohw, false)
		c.col2im(c.dx.Data[n*c.InC*h*w:], c.dcols, h, w, oh, ow)
	}
	return c.dx
}

// im2col lowers one image (src, [InC, h, w]) into dst laid out as
// [InC·K·K, oh·ow]: row (ic·K+ky)·K+kx holds the input value under kernel
// tap (ic, ky, kx) for every output position, zero where the tap falls in
// the padding.
func (c *Conv2D) im2col(dst, src []float64, h, w, oh, ow int) {
	ohw := oh * ow
	for ic := 0; ic < c.InC; ic++ {
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				row := dst[((ic*c.K+ky)*c.K+kx)*ohw : ((ic*c.K+ky)*c.K+kx+1)*ohw]
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.Stride - c.Pad + ky
					d := row[oy*ow : (oy+1)*ow]
					if iy < 0 || iy >= h {
						clear(d)
						continue
					}
					srcRow := src[(ic*h+iy)*w : (ic*h+iy+1)*w]
					ox0, ox1 := c.validOxRange(kx, w, ow)
					for ox := 0; ox < ox0; ox++ {
						d[ox] = 0
					}
					if c.Stride == 1 {
						copy(d[ox0:ox1], srcRow[ox0-c.Pad+kx:])
					} else {
						for ox := ox0; ox < ox1; ox++ {
							d[ox] = srcRow[ox*c.Stride-c.Pad+kx]
						}
					}
					for ox := ox1; ox < ow; ox++ {
						d[ox] = 0
					}
				}
			}
		}
	}
}

// col2im scatters a column-gradient matrix (same layout as im2col) back
// into image coordinates, accumulating into dst ([InC, h, w]).
func (c *Conv2D) col2im(dst, cols []float64, h, w, oh, ow int) {
	ohw := oh * ow
	for ic := 0; ic < c.InC; ic++ {
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				row := cols[((ic*c.K+ky)*c.K+kx)*ohw : ((ic*c.K+ky)*c.K+kx+1)*ohw]
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.Stride - c.Pad + ky
					if iy < 0 || iy >= h {
						continue
					}
					dstRow := dst[(ic*h+iy)*w : (ic*h+iy+1)*w]
					src := row[oy*ow : (oy+1)*ow]
					ox0, ox1 := c.validOxRange(kx, w, ow)
					for ox := ox0; ox < ox1; ox++ {
						dstRow[ox*c.Stride-c.Pad+kx] += src[ox]
					}
				}
			}
		}
	}
}

// validOxRange returns the half-open range of output columns whose input
// column ix = ox·Stride − Pad + kx lands inside [0, w).
func (c *Conv2D) validOxRange(kx, w, ow int) (ox0, ox1 int) {
	// ix >= 0  ⇔  ox >= ceil((Pad−kx)/Stride)
	if lo := c.Pad - kx; lo > 0 {
		ox0 = (lo + c.Stride - 1) / c.Stride
	}
	// ix < w  ⇔  ox <= floor((w−1+Pad−kx)/Stride)
	ox1 = (w-1+c.Pad-kx)/c.Stride + 1
	if ox1 > ow {
		ox1 = ow
	}
	if ox1 < ox0 {
		ox1 = ox0
	}
	return ox0, ox1
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.Bias == nil {
		return []*Param{c.Weight}
	}
	return []*Param{c.Weight, c.Bias}
}

// GlobalAvgPool averages each channel's spatial map: [B,C,H,W] → [B,C].
type GlobalAvgPool struct {
	inShape []int
	y, dx   *tensor.Tensor
}

// NewGlobalAvgPool creates the pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	sh := x.Shape()
	if len(sh) != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool got shape %v", sh))
	}
	p.inShape = append(p.inShape[:0], sh...)
	b, ch, hw := sh[0], sh[1], sh[2]*sh[3]
	p.y = tensor.Ensure(p.y, b, ch)
	y := p.y
	for n := 0; n < b; n++ {
		for c := 0; c < ch; c++ {
			base := (n*ch + c) * hw
			s := 0.0
			for i := 0; i < hw; i++ {
				s += x.Data[base+i]
			}
			y.Data[n*ch+c] = s / float64(hw)
		}
	}
	return y
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(dout *tensor.Tensor) *tensor.Tensor {
	b, ch, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	hw := h * w
	p.dx = tensor.Ensure(p.dx, p.inShape...)
	dx := p.dx
	inv := 1 / float64(hw)
	for n := 0; n < b; n++ {
		for c := 0; c < ch; c++ {
			g := dout.Data[n*ch+c] * inv
			base := (n*ch + c) * hw
			for i := 0; i < hw; i++ {
				dx.Data[base+i] = g
			}
		}
	}
	return dx
}

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*Param { return nil }
