package nn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW input with square kernels.
type Conv2D struct {
	InC, OutC, K, Stride, Pad int
	Weight                    *Param // [OutC, InC, K, K]
	Bias                      *Param // [OutC], nil when disabled

	x          *tensor.Tensor // cached input
	outH, outW int
}

// NewConv2D builds a convolution with Kaiming initialisation.
func NewConv2D(name string, r *rng.RNG, inC, outC, k, stride, pad int, bias bool) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		Weight: NewParam(name+".weight", tensor.Randn(r, KaimingStd(inC*k*k), outC, inC, k, k)),
	}
	if bias {
		c.Bias = NewParam(name+".bias", tensor.New(outC))
	}
	return c
}

// OutSize returns the spatial output size for input size h.
func (c *Conv2D) OutSize(h int) int { return (h+2*c.Pad-c.K)/c.Stride + 1 }

// Forward implements Layer. x is [B, InC, H, W].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	sh := x.Shape()
	if len(sh) != 4 || sh[1] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D(%d→%d) got input shape %v", c.InC, c.OutC, sh))
	}
	b, h, w := sh[0], sh[2], sh[3]
	oh, ow := c.OutSize(h), c.OutSize(w)
	c.x, c.outH, c.outW = x, oh, ow
	y := tensor.New(b, c.OutC, oh, ow)

	wd := c.Weight.W.Data
	for n := 0; n < b; n++ {
		for oc := 0; oc < c.OutC; oc++ {
			bias := 0.0
			if c.Bias != nil {
				bias = c.Bias.W.Data[oc]
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := bias
					iy0 := oy*c.Stride - c.Pad
					ix0 := ox*c.Stride - c.Pad
					for ic := 0; ic < c.InC; ic++ {
						xBase := ((n*c.InC + ic) * h)
						wBase := ((oc*c.InC + ic) * c.K) * c.K
						for ky := 0; ky < c.K; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= h {
								continue
							}
							xRow := (xBase + iy) * w
							wRow := wBase + ky*c.K
							for kx := 0; kx < c.K; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= w {
									continue
								}
								sum += x.Data[xRow+ix] * wd[wRow+kx]
							}
						}
					}
					y.Data[((n*c.OutC+oc)*oh+oy)*ow+ox] = sum
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	x := c.x
	sh := x.Shape()
	b, h, w := sh[0], sh[2], sh[3]
	oh, ow := c.outH, c.outW
	dx := tensor.New(sh...)
	wd := c.Weight.W.Data
	gw := c.Weight.G.Data

	for n := 0; n < b; n++ {
		for oc := 0; oc < c.OutC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := dout.Data[((n*c.OutC+oc)*oh+oy)*ow+ox]
					if g == 0 {
						continue
					}
					if c.Bias != nil {
						c.Bias.G.Data[oc] += g
					}
					iy0 := oy*c.Stride - c.Pad
					ix0 := ox*c.Stride - c.Pad
					for ic := 0; ic < c.InC; ic++ {
						xBase := (n*c.InC + ic) * h
						wBase := ((oc*c.InC + ic) * c.K) * c.K
						for ky := 0; ky < c.K; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= h {
								continue
							}
							xRow := (xBase + iy) * w
							wRow := wBase + ky*c.K
							for kx := 0; kx < c.K; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= w {
									continue
								}
								gw[wRow+kx] += g * x.Data[xRow+ix]
								dx.Data[xRow+ix] += g * wd[wRow+kx]
							}
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.Bias == nil {
		return []*Param{c.Weight}
	}
	return []*Param{c.Weight, c.Bias}
}

// GlobalAvgPool averages each channel's spatial map: [B,C,H,W] → [B,C].
type GlobalAvgPool struct {
	inShape []int
}

// NewGlobalAvgPool creates the pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	sh := x.Shape()
	if len(sh) != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool got shape %v", sh))
	}
	p.inShape = append(p.inShape[:0], sh...)
	b, ch, hw := sh[0], sh[1], sh[2]*sh[3]
	y := tensor.New(b, ch)
	for n := 0; n < b; n++ {
		for c := 0; c < ch; c++ {
			base := (n*ch + c) * hw
			s := 0.0
			for i := 0; i < hw; i++ {
				s += x.Data[base+i]
			}
			y.Data[n*ch+c] = s / float64(hw)
		}
	}
	return y
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(dout *tensor.Tensor) *tensor.Tensor {
	b, ch, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	hw := h * w
	dx := tensor.New(p.inShape...)
	inv := 1 / float64(hw)
	for n := 0; n < b; n++ {
		for c := 0; c < ch; c++ {
			g := dout.Data[n*ch+c] * inv
			base := (n*ch + c) * hw
			for i := 0; i < hw; i++ {
				dx.Data[base+i] = g
			}
		}
	}
	return dx
}

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*Param { return nil }
