package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestDenseShapes(t *testing.T) {
	r := rng.New(1)
	d := NewDense("d", r, 8, 3, true)
	y := d.Forward(tensor.Randn(r, 1, 5, 8), true)
	if y.Dim(0) != 5 || y.Dim(1) != 3 {
		t.Fatalf("dense output shape %v", y.Shape())
	}
	dx := d.Backward(tensor.Randn(r, 1, 5, 3))
	if dx.Dim(0) != 5 || dx.Dim(1) != 8 {
		t.Fatalf("dense dx shape %v", dx.Shape())
	}
}

func TestDenseAcceptsHigherRankInput(t *testing.T) {
	r := rng.New(2)
	d := NewDense("d", r, 4, 2, false)
	// [3, 5, 4] is flattened to [15, 4].
	y := d.Forward(tensor.Randn(r, 1, 3, 5, 4), true)
	if y.Dim(0) != 15 || y.Dim(1) != 2 {
		t.Fatalf("shape %v", y.Shape())
	}
}

func TestDensePanicsOnWrongInput(t *testing.T) {
	r := rng.New(3)
	d := NewDense("d", r, 4, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Forward(tensor.Randn(r, 1, 5, 3), true)
}

func TestConvOutputSize(t *testing.T) {
	r := rng.New(4)
	c := NewConv2D("c", r, 1, 1, 3, 1, 1, false)
	if c.OutSize(8) != 8 {
		t.Fatal("same-pad conv should preserve size")
	}
	s2 := NewConv2D("c", r, 1, 1, 3, 2, 1, false)
	if s2.OutSize(8) != 4 {
		t.Fatalf("stride-2 OutSize(8) = %d, want 4", s2.OutSize(8))
	}
}

func TestConvKnownValues(t *testing.T) {
	// 1×1 input channel, 2×2 image, 2×2 kernel of ones, no pad: output is
	// the sum of the image.
	r := rng.New(5)
	c := NewConv2D("c", r, 1, 1, 2, 1, 0, false)
	c.Weight.W.Fill(1)
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	y := c.Forward(x, true)
	if y.Size() != 1 || y.Data[0] != 10 {
		t.Fatalf("conv output %v, want [10]", y.Data)
	}
}

func TestBatchNormNormalises(t *testing.T) {
	bn := NewBatchNorm("bn", 2)
	r := rng.New(6)
	x := tensor.Randn(r, 3, 16, 2, 4, 4)
	for i := range x.Data {
		x.Data[i] += 7 // large offset must be removed
	}
	y := bn.Forward(x, true)
	// Per-channel mean ~0, var ~1.
	for c := 0; c < 2; c++ {
		var sum, ss float64
		n := 0
		for b := 0; b < 16; b++ {
			base := (b*2 + c) * 16
			for i := 0; i < 16; i++ {
				v := y.Data[base+i]
				sum += v
				ss += v * v
				n++
			}
		}
		mean := sum / float64(n)
		if math.Abs(mean) > 1e-9 {
			t.Errorf("channel %d mean %v", c, mean)
		}
		// The ε inside 1/sqrt(var+ε) biases output variance to var/(var+ε).
		if v := ss/float64(n) - mean*mean; math.Abs(v-1) > 1e-4 {
			t.Errorf("channel %d var %v", c, v)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	r := rng.New(7)
	// Train several batches to populate running stats.
	for i := 0; i < 50; i++ {
		x := tensor.Randn(r, 2, 8, 1, 2, 2)
		for j := range x.Data {
			x.Data[j] += 5
		}
		bn.Forward(x, true)
	}
	if math.Abs(bn.RunMean[0]-5) > 0.5 {
		t.Fatalf("running mean %v, want ~5", bn.RunMean[0])
	}
	// Eval mode must use running stats: a constant input maps to ~(c-5)/2.
	x := tensor.New(1, 1, 2, 2)
	x.Fill(5)
	y := bn.Forward(x, false)
	if math.Abs(y.Data[0]) > 0.3 {
		t.Fatalf("eval-mode output %v, want ~0", y.Data[0])
	}
}

func TestEmbeddingLookup(t *testing.T) {
	r := rng.New(8)
	e := NewEmbedding("e", r, 10, 4)
	x := tensor.FromSlice([]float64{3, 7}, 2)
	y := e.Forward(x, true)
	for j := 0; j < 4; j++ {
		if y.Data[j] != e.Weight.W.Data[3*4+j] {
			t.Fatal("embedding row mismatch")
		}
		if y.Data[4+j] != e.Weight.W.Data[7*4+j] {
			t.Fatal("embedding row mismatch")
		}
	}
}

func TestEmbeddingPanicsOnBadID(t *testing.T) {
	r := rng.New(9)
	e := NewEmbedding("e", r, 10, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Forward(tensor.FromSlice([]float64{10}, 1), true)
}

func TestEmbeddingGradAccumulatesRepeatedIDs(t *testing.T) {
	r := rng.New(10)
	e := NewEmbedding("e", r, 5, 2)
	x := tensor.FromSlice([]float64{1, 1}, 2)
	e.Forward(x, true)
	dout := tensor.FromSlice([]float64{1, 2, 10, 20}, 2, 2)
	e.Backward(dout)
	if e.Weight.G.Data[1*2+0] != 11 || e.Weight.G.Data[1*2+1] != 22 {
		t.Fatalf("repeated-id grads not accumulated: %v", e.Weight.G.Data[2:4])
	}
}

func TestLSTMShapes(t *testing.T) {
	r := rng.New(11)
	l := NewLSTM("l", r, 6, 4)
	y := l.Forward(tensor.Randn(r, 1, 3, 5, 6), true)
	sh := y.Shape()
	if sh[0] != 3 || sh[1] != 5 || sh[2] != 4 {
		t.Fatalf("lstm output shape %v", sh)
	}
	dx := l.Backward(tensor.Randn(r, 1, 3, 5, 4))
	dsh := dx.Shape()
	if dsh[0] != 3 || dsh[1] != 5 || dsh[2] != 6 {
		t.Fatalf("lstm dx shape %v", dsh)
	}
}

func TestLSTMStatePropagation(t *testing.T) {
	// With a constant nonzero input, hidden states must evolve over time.
	r := rng.New(12)
	l := NewLSTM("l", r, 2, 3)
	x := tensor.New(1, 4, 2)
	x.Fill(1)
	y := l.Forward(x, true)
	h0 := y.Data[0:3]
	h3 := y.Data[9:12]
	same := true
	for i := range h0 {
		if math.Abs(h0[i]-h3[i]) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Fatal("hidden state did not evolve over time")
	}
}

func TestSequentialComposition(t *testing.T) {
	r := rng.New(13)
	m := NewSequential(
		NewDense("d1", r, 4, 8, true),
		NewReLU(),
		NewDense("d2", r, 8, 2, true),
	)
	if got := len(m.Params()); got != 4 {
		t.Fatalf("param count %d, want 4", got)
	}
	y := m.Forward(tensor.Randn(r, 1, 3, 4), true)
	if y.Dim(1) != 2 {
		t.Fatalf("output shape %v", y.Shape())
	}
	if err := CheckNames(m.Params()); err != nil {
		t.Fatal(err)
	}
}

func TestCheckNamesDetectsDuplicates(t *testing.T) {
	r := rng.New(14)
	p1 := NewDense("same", r, 2, 2, false).Params()
	p2 := NewDense("same", r, 2, 2, false).Params()
	if err := CheckNames(append(p1, p2...)); err == nil {
		t.Fatal("duplicate names not detected")
	}
}

func TestZeroGradsAndTotalSize(t *testing.T) {
	r := rng.New(15)
	d := NewDense("d", r, 3, 2, true)
	d.Forward(tensor.Randn(r, 1, 2, 3), true)
	d.Backward(tensor.Randn(r, 1, 2, 2))
	ZeroGrads(d.Params())
	for _, p := range d.Params() {
		for _, g := range p.G.Data {
			if g != 0 {
				t.Fatal("grad not zeroed")
			}
		}
	}
	if TotalSize(d.Params()) != 3*2+2 {
		t.Fatalf("TotalSize = %d", TotalSize(d.Params()))
	}
}

func TestCloneIndependence(t *testing.T) {
	r := rng.New(16)
	d := NewDense("d", r, 2, 2, false)
	cl := Clone(d.Params())
	cl[0].W.Data[0] = 999
	if d.Weight.W.Data[0] == 999 {
		t.Fatal("Clone aliases originals")
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over C classes: loss = ln C.
	logits := tensor.New(2, 4)
	loss, _ := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("loss %v, want ln4", loss)
	}
}

func TestBCEWithLogitsKnown(t *testing.T) {
	logits := tensor.FromSlice([]float64{0}, 1)
	loss, _ := BCEWithLogits(logits, []float64{1})
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("loss %v, want ln2", loss)
	}
	// Large logit, correct label: near-zero loss, stable.
	logits2 := tensor.FromSlice([]float64{50}, 1)
	loss2, _ := BCEWithLogits(logits2, []float64{1})
	if loss2 > 1e-9 || math.IsNaN(loss2) {
		t.Fatalf("large-logit loss %v", loss2)
	}
}

func TestSigmoidStable(t *testing.T) {
	if v := sigmoid(1000); v != 1 {
		t.Fatalf("sigmoid(1000) = %v", v)
	}
	if v := sigmoid(-1000); v != 0 {
		t.Fatalf("sigmoid(-1000) = %v", v)
	}
	if math.Abs(sigmoid(0)-0.5) > 1e-15 {
		t.Fatal("sigmoid(0) != 0.5")
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	r := rng.New(17)
	f := NewFlatten()
	x := tensor.Randn(r, 1, 2, 3, 4)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 12 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	dx := f.Backward(y)
	sh := dx.Shape()
	if sh[0] != 2 || sh[1] != 3 || sh[2] != 4 {
		t.Fatalf("unflatten shape %v", sh)
	}
}

func TestTrainingReducesLossMLP(t *testing.T) {
	// End-to-end sanity: a small MLP must fit a linearly separable toy set.
	r := rng.New(18)
	model := NewSequential(
		NewDense("d1", r, 2, 16, true),
		NewReLU(),
		NewDense("d2", r, 16, 2, true),
	)
	params := model.Params()
	var first, last float64
	for iter := 0; iter < 200; iter++ {
		x := tensor.New(16, 2)
		labels := make([]int, 16)
		for i := 0; i < 16; i++ {
			a, b := r.Norm(), r.Norm()
			x.Data[i*2], x.Data[i*2+1] = a, b
			if a+b > 0 {
				labels[i] = 1
			}
		}
		logits := model.Forward(x, true)
		loss, grad := SoftmaxCrossEntropy(logits, labels)
		ZeroGrads(params)
		model.Backward(grad)
		for _, p := range params {
			p.W.AddScaled(-0.5, p.G)
		}
		if iter == 0 {
			first = loss
		}
		last = loss
	}
	if last > first/2 {
		t.Fatalf("loss did not halve: first %v last %v", first, last)
	}
}

func BenchmarkConvForward(b *testing.B) {
	r := rng.New(1)
	c := NewConv2D("c", r, 8, 8, 3, 1, 1, false)
	x := tensor.Randn(r, 1, 8, 8, 12, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x, true)
	}
}

func BenchmarkLSTMForwardBackward(b *testing.B) {
	r := rng.New(2)
	l := NewLSTM("l", r, 16, 32)
	x := tensor.Randn(r, 1, 8, 12, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := l.Forward(x, true)
		l.Backward(y)
	}
}
