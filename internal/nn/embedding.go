package nn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Embedding maps integer ids to dense vectors. The input tensor carries ids
// as float64 values (the framework is float64-only); Forward truncates them
// to int. Input shape [B] or [B, T]; output appends the embedding dimension.
type Embedding struct {
	Vocab, Dim int
	Weight     *Param // [Vocab, Dim]

	ids      []int
	inShape  []int
	outShape []int
	y        *tensor.Tensor // reusable per-step scratch
}

// NewEmbedding builds an embedding table with N(0, 0.1²) initialisation.
func NewEmbedding(name string, r *rng.RNG, vocab, dim int) *Embedding {
	return &Embedding{
		Vocab: vocab, Dim: dim,
		Weight: NewParam(name+".weight", tensor.Randn(r, 0.1, vocab, dim)),
	}
}

// Forward implements Layer.
func (e *Embedding) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Size()
	e.inShape = append(e.inShape[:0], x.Shape()...)
	if cap(e.ids) < n {
		e.ids = make([]int, n)
	}
	e.ids = e.ids[:n]
	e.outShape = append(append(e.outShape[:0], x.Shape()...), e.Dim)
	e.y = tensor.Ensure(e.y, e.outShape...)
	y := e.y
	for i := 0; i < n; i++ {
		id := int(x.Data[i])
		if id < 0 || id >= e.Vocab {
			panic(fmt.Sprintf("nn: embedding id %d out of vocab %d", id, e.Vocab))
		}
		e.ids[i] = id
		copy(y.Data[i*e.Dim:(i+1)*e.Dim], e.Weight.W.Data[id*e.Dim:(id+1)*e.Dim])
	}
	return y
}

// Backward implements Layer. Embeddings have no input gradient (ids are
// discrete); it returns nil.
func (e *Embedding) Backward(dout *tensor.Tensor) *tensor.Tensor {
	for i, id := range e.ids {
		dst := e.Weight.G.Data[id*e.Dim : (id+1)*e.Dim]
		src := dout.Data[i*e.Dim : (i+1)*e.Dim]
		for j, g := range src {
			dst[j] += g
		}
	}
	return nil
}

// Params implements Layer.
func (e *Embedding) Params() []*Param { return []*Param{e.Weight} }
