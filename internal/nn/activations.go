package nn

import (
	"math"

	"repro/internal/tensor"
)

// ReLU is the rectified linear activation.
type ReLU struct {
	mask  []bool
	y, dx *tensor.Tensor // reusable per-step scratch
}

// NewReLU creates a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.y = tensor.Ensure(r.y, x.Shape()...)
	y := r.y
	if cap(r.mask) < x.Size() {
		r.mask = make([]bool, x.Size())
	}
	r.mask = r.mask[:x.Size()]
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
			y.Data[i] = v
		} else {
			r.mask[i] = false
			y.Data[i] = 0
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	r.dx = tensor.Ensure(r.dx, dout.Shape()...)
	dx := r.dx
	for i, g := range dout.Data {
		if r.mask[i] {
			dx.Data[i] = g
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	y *tensor.Tensor
}

// NewSigmoid creates a Sigmoid layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x.Clone()
	for i, v := range y.Data {
		y.Data[i] = sigmoid(v)
	}
	s.y = y
	return y
}

// Backward implements Layer.
func (s *Sigmoid) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := dout.Clone()
	for i, g := range dx.Data {
		yv := s.y.Data[i]
		dx.Data[i] = g * yv * (1 - yv)
	}
	return dx
}

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	y *tensor.Tensor
}

// NewTanh creates a Tanh layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x.Clone()
	for i, v := range y.Data {
		y.Data[i] = math.Tanh(v)
	}
	t.y = y
	return y
}

// Backward implements Layer.
func (t *Tanh) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := dout.Clone()
	for i, g := range dx.Data {
		yv := t.y.Data[i]
		dx.Data[i] = g * (1 - yv*yv)
	}
	return dx
}

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// sigmoid is numerically stable for large |x|.
func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Flatten reshapes [B, ...] to [B, rest]. It is shape bookkeeping only; the
// views are cached so the steady state allocates nothing.
type Flatten struct {
	inShape          []int
	fwdView, bwdView *tensor.Tensor
}

// NewFlatten creates a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape()...)
	b := x.Dim(0)
	f.fwdView = tensor.ViewOf(f.fwdView, x, b, x.Size()/b)
	return f.fwdView
}

// Backward implements Layer.
func (f *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	f.bwdView = tensor.ViewOf(f.bwdView, dout, f.inShape...)
	return f.bwdView
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }
