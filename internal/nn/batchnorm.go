package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm normalises per channel over batch and spatial dimensions
// (NCHW input) or per feature (2-D input [B, C]). Running statistics feed
// evaluation mode.
type BatchNorm struct {
	C        int
	Eps      float64
	Momentum float64 // running-stat update rate (PyTorch convention)

	Gamma *Param // [C] scale
	Beta  *Param // [C] shift

	RunMean []float64
	RunVar  []float64

	// Forward cache and reusable per-step scratch.
	xhat    *tensor.Tensor
	invStd  []float64
	inShape []int
	y, dx   *tensor.Tensor
}

// NewBatchNorm creates a batch-norm layer over C channels.
func NewBatchNorm(name string, c int) *BatchNorm {
	bn := &BatchNorm{
		C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:   NewParam(name+".gamma", tensor.New(c)),
		Beta:    NewParam(name+".beta", tensor.New(c)),
		RunMean: make([]float64, c),
		RunVar:  make([]float64, c),
	}
	bn.Gamma.W.Fill(1)
	for i := range bn.RunVar {
		bn.RunVar[i] = 1
	}
	return bn
}

// channelViews returns batch size and per-position count for the input.
func (bn *BatchNorm) dims(x *tensor.Tensor) (b, hw int) {
	sh := x.Shape()
	switch len(sh) {
	case 2:
		if sh[1] != bn.C {
			panic(fmt.Sprintf("nn: BatchNorm(%d) got shape %v", bn.C, sh))
		}
		return sh[0], 1
	case 4:
		if sh[1] != bn.C {
			panic(fmt.Sprintf("nn: BatchNorm(%d) got shape %v", bn.C, sh))
		}
		return sh[0], sh[2] * sh[3]
	default:
		panic(fmt.Sprintf("nn: BatchNorm supports 2-D/4-D, got %v", sh))
	}
}

// Forward implements Layer.
func (bn *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b, hw := bn.dims(x)
	bn.inShape = append(bn.inShape[:0], x.Shape()...)
	n := float64(b * hw)
	bn.y = tensor.Ensure(bn.y, x.Shape()...)
	y := bn.y
	bn.xhat = tensor.Ensure(bn.xhat, x.Shape()...)
	if cap(bn.invStd) < bn.C {
		bn.invStd = make([]float64, bn.C)
	}
	bn.invStd = bn.invStd[:bn.C]

	for c := 0; c < bn.C; c++ {
		var mean, variance float64
		if train {
			sum := 0.0
			for i := 0; i < b; i++ {
				base := (i*bn.C + c) * hw
				for j := 0; j < hw; j++ {
					sum += x.Data[base+j]
				}
			}
			mean = sum / n
			ss := 0.0
			for i := 0; i < b; i++ {
				base := (i*bn.C + c) * hw
				for j := 0; j < hw; j++ {
					d := x.Data[base+j] - mean
					ss += d * d
				}
			}
			variance = ss / n
			bn.RunMean[c] = (1-bn.Momentum)*bn.RunMean[c] + bn.Momentum*mean
			bn.RunVar[c] = (1-bn.Momentum)*bn.RunVar[c] + bn.Momentum*variance
		} else {
			mean, variance = bn.RunMean[c], bn.RunVar[c]
		}
		inv := 1 / math.Sqrt(variance+bn.Eps)
		bn.invStd[c] = inv
		g, bta := bn.Gamma.W.Data[c], bn.Beta.W.Data[c]
		for i := 0; i < b; i++ {
			base := (i*bn.C + c) * hw
			for j := 0; j < hw; j++ {
				xh := (x.Data[base+j] - mean) * inv
				bn.xhat.Data[base+j] = xh
				y.Data[base+j] = g*xh + bta
			}
		}
	}
	return y
}

// Backward implements Layer (training-mode gradient).
func (bn *BatchNorm) Backward(dout *tensor.Tensor) *tensor.Tensor {
	b := bn.inShape[0]
	hw := 1
	if len(bn.inShape) == 4 {
		hw = bn.inShape[2] * bn.inShape[3]
	}
	n := float64(b * hw)
	bn.dx = tensor.Ensure(bn.dx, bn.inShape...)
	dx := bn.dx
	for c := 0; c < bn.C; c++ {
		var sumDy, sumDyXhat float64
		for i := 0; i < b; i++ {
			base := (i*bn.C + c) * hw
			for j := 0; j < hw; j++ {
				dy := dout.Data[base+j]
				sumDy += dy
				sumDyXhat += dy * bn.xhat.Data[base+j]
			}
		}
		bn.Beta.G.Data[c] += sumDy
		bn.Gamma.G.Data[c] += sumDyXhat
		g := bn.Gamma.W.Data[c]
		inv := bn.invStd[c]
		for i := 0; i < b; i++ {
			base := (i*bn.C + c) * hw
			for j := 0; j < hw; j++ {
				dy := dout.Data[base+j]
				xh := bn.xhat.Data[base+j]
				dx.Data[base+j] = g * inv * (dy - sumDy/n - xh*sumDyXhat/n)
			}
		}
	}
	return dx
}

// Params implements Layer.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }
