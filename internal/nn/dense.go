package nn

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = x·W + b, with x of shape
// [B, in] (any leading shape is flattened to B = size/in).
type Dense struct {
	In, Out int
	Weight  *Param // [In, Out]
	Bias    *Param // [Out], nil when disabled

	x *tensor.Tensor // cached input, flattened to [B, In]

	// Reusable per-step scratch: the flattened input/dout views and the
	// forward/backward outputs, overwritten on every pass.
	xview, y, dview, dx *tensor.Tensor
}

// NewDense builds a dense layer with Kaiming-initialised weights and zero
// bias. name prefixes the parameter names.
func NewDense(name string, r *rng.RNG, in, out int, bias bool) *Dense {
	d := &Dense{
		In: in, Out: out,
		Weight: NewParam(name+".weight", tensor.Randn(r, KaimingStd(in), in, out)),
	}
	if bias {
		d.Bias = NewParam(name+".bias", tensor.New(out))
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Size()%d.In != 0 {
		panic(fmt.Sprintf("nn: Dense(%d→%d) got input of size %d", d.In, d.Out, x.Size()))
	}
	b := x.Size() / d.In
	d.xview = tensor.ViewOf(d.xview, x, b, d.In)
	xf := d.xview
	d.x = xf
	d.y = tensor.Ensure(d.y, b, d.Out)
	y := d.y
	tensor.GemmInto(y.Data, xf.Data, d.Weight.W.Data, b, d.In, d.Out, false)
	if d.Bias != nil {
		for i := 0; i < b; i++ {
			row := y.Data[i*d.Out : (i+1)*d.Out]
			for j, bv := range d.Bias.W.Data {
				row[j] += bv
			}
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	b := d.x.Dim(0)
	if dout.Size() != b*d.Out {
		panic(fmt.Sprintf("nn: Dense backward got dout size %d, want %d", dout.Size(), b*d.Out))
	}
	d.dview = tensor.ViewOf(d.dview, dout, b, d.Out)
	df := d.dview
	// dW = xᵀ · dout  (In×Out), accumulate.
	tensor.GemmTransA(d.Weight.G.Data, d.x.Data, df.Data, d.In, b, d.Out, true)
	if d.Bias != nil {
		for i := 0; i < b; i++ {
			row := df.Data[i*d.Out : (i+1)*d.Out]
			for j, g := range row {
				d.Bias.G.Data[j] += g
			}
		}
	}
	// dx = dout · Wᵀ  (B×In).
	d.dx = tensor.Ensure(d.dx, b, d.In)
	dx := d.dx
	tensor.GemmTransB(dx.Data, df.Data, d.Weight.W.Data, b, d.Out, d.In, false)
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param {
	if d.Bias == nil {
		return []*Param{d.Weight}
	}
	return []*Param{d.Weight, d.Bias}
}
