package nn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout(0.5, 1)
	r := rng.New(2)
	x := tensor.Randn(r, 1, 4, 8)
	y := d.Forward(x, false)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
	dx := d.Backward(y)
	for i := range x.Data {
		if dx.Data[i] != y.Data[i] {
			t.Fatal("eval-mode dropout backward must be identity")
		}
	}
}

func TestDropoutTrainDropsAndScales(t *testing.T) {
	d := NewDropout(0.5, 3)
	x := tensor.New(1, 10000)
	x.Fill(1)
	y := d.Forward(x, true)
	zeros, scaled := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			scaled++
		default:
			t.Fatalf("unexpected value %v", v)
		}
	}
	frac := float64(zeros) / float64(x.Size())
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("drop fraction %v, want ~0.5", frac)
	}
	// Expectation preserved by inverted scaling.
	if mean := tensor.Sum(y.Data) / float64(y.Size()); math.Abs(mean-1) > 0.05 {
		t.Fatalf("mean %v, want ~1", mean)
	}
}

func TestDropoutBackwardMasksGradient(t *testing.T) {
	d := NewDropout(0.3, 4)
	r := rng.New(5)
	x := tensor.Randn(r, 1, 3, 6)
	y := d.Forward(x, true)
	dout := tensor.New(3, 6)
	dout.Fill(1)
	dx := d.Backward(dout)
	for i := range y.Data {
		if y.Data[i] == 0 && dx.Data[i] != 0 {
			t.Fatal("gradient leaked through dropped unit")
		}
		if y.Data[i] != 0 && math.Abs(dx.Data[i]-1/(1-0.3)) > 1e-12 {
			t.Fatal("gradient not scaled for kept unit")
		}
	}
}

func TestDropoutPanicsOnBadP(t *testing.T) {
	for _, p := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v accepted", p)
				}
			}()
			NewDropout(p, 1)
		}()
	}
}

func TestMaxPoolKnownValues(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	p := NewMaxPool2D(2)
	y := p.Forward(x, true)
	want := []float64{6, 8, 14, 16}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("pool output %v, want %v", y.Data, want)
		}
	}
	// Backward routes gradient to argmax positions only.
	dout := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	dx := p.Backward(dout)
	if dx.Data[5] != 1 || dx.Data[7] != 2 || dx.Data[13] != 3 || dx.Data[15] != 4 {
		t.Fatalf("pool backward wrong: %v", dx.Data)
	}
	sum := 0.0
	for _, v := range dx.Data {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("gradient mass not conserved: %v", sum)
	}
}

func TestMaxPoolPanicsOnIndivisible(t *testing.T) {
	p := NewMaxPool2D(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Forward(tensor.New(1, 1, 3, 4), true)
}

func TestGradCheckMaxPool(t *testing.T) {
	r := rng.New(6)
	// Well-separated values keep the argmax stable under ±eps.
	x := tensor.New(2, 2, 4, 4)
	for i := range x.Data {
		x.Data[i] = float64(i%17) + r.Float64()*0.1
	}
	gradCheck(t, "maxpool", NewMaxPool2D(2), x, true)
}

func TestGradCheckLayerNorm(t *testing.T) {
	r := rng.New(7)
	gradCheck(t, "layernorm", NewLayerNorm("ln", 6), tensor.Randn(r, 1, 4, 6), true)
}

func TestLayerNormNormalisesRows(t *testing.T) {
	ln := NewLayerNorm("ln", 32)
	r := rng.New(8)
	x := tensor.Randn(r, 3, 5, 32)
	for i := range x.Data {
		x.Data[i] += 4
	}
	y := ln.Forward(x, true)
	for i := 0; i < 5; i++ {
		row := y.Data[i*32 : (i+1)*32]
		mean := tensor.Sum(row) / 32
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("row %d mean %v", i, mean)
		}
	}
}

func TestLayerNormTrainEvalIdentical(t *testing.T) {
	ln := NewLayerNorm("ln", 8)
	r := rng.New(9)
	x := tensor.Randn(r, 1, 2, 8)
	a := ln.Forward(x, true)
	b := ln.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("layer norm must not depend on mode")
		}
	}
}

func TestGradCheckResidual(t *testing.T) {
	r := rng.New(10)
	body := NewSequential(
		NewDense("d1", r, 6, 6, true),
		NewTanh(),
	)
	x := tensor.Randn(r, 1, 3, 6)
	// Shift away from the post-sum ReLU kink.
	for i := range x.Data {
		x.Data[i] += 0.5
	}
	gradCheck(t, "residual", NewResidual(body), x, true)
}

func TestResidualPanicsOnShapeChange(t *testing.T) {
	r := rng.New(11)
	res := NewResidual(NewDense("d", r, 4, 3, false))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	res.Forward(tensor.Randn(r, 1, 2, 4), true)
}

func TestGradCheckGRU(t *testing.T) {
	r := rng.New(12)
	gradCheck(t, "gru", NewGRU("g", r, 4, 3), tensor.Randn(r, 1, 2, 5, 4), true)
}

func TestGRUShapesAndEvolution(t *testing.T) {
	r := rng.New(13)
	g := NewGRU("g", r, 5, 4)
	y := g.Forward(tensor.Randn(r, 1, 3, 6, 5), true)
	sh := y.Shape()
	if sh[0] != 3 || sh[1] != 6 || sh[2] != 4 {
		t.Fatalf("gru output shape %v", sh)
	}
	dx := g.Backward(tensor.Randn(r, 1, 3, 6, 4))
	if dx.Dim(2) != 5 {
		t.Fatalf("gru dx shape %v", dx.Shape())
	}
	// Constant input: hidden state must evolve across steps.
	x := tensor.New(1, 4, 5)
	x.Fill(1)
	y2 := g.Forward(x, true)
	same := true
	for j := 0; j < 4; j++ {
		if math.Abs(y2.Data[j]-y2.Data[3*4+j]) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Fatal("GRU hidden state did not evolve")
	}
}

func TestGRUPanicsOnBadShape(t *testing.T) {
	r := rng.New(14)
	g := NewGRU("g", r, 5, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Forward(tensor.Randn(r, 1, 3, 5), true)
}
