package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Dropout zeroes each activation with probability P at training time and
// scales survivors by 1/(1−P) (inverted dropout), so evaluation is the
// identity. The mask is drawn from the layer's own deterministic stream.
type Dropout struct {
	P float64

	r    *rng.RNG
	mask []bool
}

// NewDropout creates a dropout layer with drop probability p, seeded
// deterministically.
func NewDropout(p float64, seed uint64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout p=%v out of [0,1)", p))
	}
	return &Dropout{P: p, r: rng.New(seed)}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		d.mask = d.mask[:0]
		return x
	}
	y := x.Clone()
	if cap(d.mask) < x.Size() {
		d.mask = make([]bool, x.Size())
	}
	d.mask = d.mask[:x.Size()]
	scale := 1 / (1 - d.P)
	for i := range y.Data {
		if d.r.Float64() < d.P {
			d.mask[i] = false
			y.Data[i] = 0
		} else {
			d.mask[i] = true
			y.Data[i] *= scale
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if len(d.mask) == 0 {
		return dout
	}
	dx := dout.Clone()
	scale := 1 / (1 - d.P)
	for i := range dx.Data {
		if d.mask[i] {
			dx.Data[i] *= scale
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// MaxPool2D applies non-overlapping K×K max pooling over NCHW input.
// Spatial dimensions must be divisible by K.
type MaxPool2D struct {
	K int

	inShape []int
	argmax  []int // flat input index of each output's maximum
}

// NewMaxPool2D creates a max-pooling layer with window k.
func NewMaxPool2D(k int) *MaxPool2D {
	if k < 1 {
		panic("nn: MaxPool2D window must be >= 1")
	}
	return &MaxPool2D{K: k}
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	sh := x.Shape()
	if len(sh) != 4 || sh[2]%p.K != 0 || sh[3]%p.K != 0 {
		panic(fmt.Sprintf("nn: MaxPool2D(%d) got shape %v", p.K, sh))
	}
	b, c, h, w := sh[0], sh[1], sh[2], sh[3]
	oh, ow := h/p.K, w/p.K
	p.inShape = append(p.inShape[:0], sh...)
	y := tensor.New(b, c, oh, ow)
	if cap(p.argmax) < y.Size() {
		p.argmax = make([]int, y.Size())
	}
	p.argmax = p.argmax[:y.Size()]
	for n := 0; n < b; n++ {
		for ch := 0; ch < c; ch++ {
			base := (n*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := math.Inf(-1)
					bestIdx := -1
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							idx := base + (oy*p.K+ky)*w + ox*p.K + kx
							if v := x.Data[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					out := ((n*c+ch)*oh+oy)*ow + ox
					y.Data[out] = best
					p.argmax[out] = bestIdx
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.inShape...)
	for out, in := range p.argmax {
		dx.Data[in] += dout.Data[out]
	}
	return dx
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// LayerNorm normalises each row of a [B, C] input over its C features with
// learned scale and shift (Ba et al.). Unlike BatchNorm it has no running
// statistics, so train and eval behave identically.
type LayerNorm struct {
	C   int
	Eps float64

	Gamma *Param
	Beta  *Param

	xhat   *tensor.Tensor
	invStd []float64
}

// NewLayerNorm creates a layer-norm over c features.
func NewLayerNorm(name string, c int) *LayerNorm {
	ln := &LayerNorm{
		C: c, Eps: 1e-5,
		Gamma: NewParam(name+".gamma", tensor.New(c)),
		Beta:  NewParam(name+".beta", tensor.New(c)),
	}
	ln.Gamma.W.Fill(1)
	return ln
}

// Forward implements Layer.
func (ln *LayerNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Size()%ln.C != 0 {
		panic(fmt.Sprintf("nn: LayerNorm(%d) got %d elements", ln.C, x.Size()))
	}
	b := x.Size() / ln.C
	xf := x.Reshape(b, ln.C)
	y := tensor.New(b, ln.C)
	ln.xhat = tensor.New(b, ln.C)
	if cap(ln.invStd) < b {
		ln.invStd = make([]float64, b)
	}
	ln.invStd = ln.invStd[:b]
	for i := 0; i < b; i++ {
		row := xf.Data[i*ln.C : (i+1)*ln.C]
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(ln.C)
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float64(ln.C)
		inv := 1 / math.Sqrt(variance+ln.Eps)
		ln.invStd[i] = inv
		for j, v := range row {
			xh := (v - mean) * inv
			ln.xhat.Data[i*ln.C+j] = xh
			y.Data[i*ln.C+j] = ln.Gamma.W.Data[j]*xh + ln.Beta.W.Data[j]
		}
	}
	return y
}

// Backward implements Layer.
func (ln *LayerNorm) Backward(dout *tensor.Tensor) *tensor.Tensor {
	b := ln.xhat.Dim(0)
	dx := tensor.New(b, ln.C)
	cf := float64(ln.C)
	for i := 0; i < b; i++ {
		var sumDy, sumDyXhat float64
		for j := 0; j < ln.C; j++ {
			dy := dout.Data[i*ln.C+j] * ln.Gamma.W.Data[j]
			xh := ln.xhat.Data[i*ln.C+j]
			sumDy += dy
			sumDyXhat += dy * xh
		}
		for j := 0; j < ln.C; j++ {
			dyRaw := dout.Data[i*ln.C+j]
			xh := ln.xhat.Data[i*ln.C+j]
			ln.Gamma.G.Data[j] += dyRaw * xh
			ln.Beta.G.Data[j] += dyRaw
			dy := dyRaw * ln.Gamma.W.Data[j]
			dx.Data[i*ln.C+j] = ln.invStd[i] * (dy - sumDy/cf - xh*sumDyXhat/cf)
		}
	}
	return dx
}

// Params implements Layer.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gamma, ln.Beta} }
