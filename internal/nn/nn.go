// Package nn is the neural-network substrate: the minimal deep-learning
// framework the reproduction needs in place of PyTorch. It provides
// parameterised layers with explicit Forward/Backward, the three model
// families the paper evaluates (built in internal/models), and the losses.
//
// Design notes:
//   - One minibatch in flight per layer instance: layers cache forward
//     activations for the following Backward call. Each simulated worker
//     owns its model replica, so there is no sharing.
//   - A Param is one parameter tensor (a weight or a bias). The paper's
//     unit of partitioning — the "layer" of footnote 2 — maps 1:1 onto
//     Param, which is exactly what the trainer flattens for the
//     sparsifiers.
//   - All shapes are row-major; images are NCHW.
package nn

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Param is one trainable parameter tensor and its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor // value
	G    *tensor.Tensor // gradient, same shape as W
}

// NewParam allocates a parameter with a zero gradient buffer.
func NewParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, G: tensor.New(w.Shape()...)}
}

// Size returns the number of scalar parameters.
func (p *Param) Size() int { return p.W.Size() }

// Layer is a differentiable module.
type Layer interface {
	// Forward computes the layer output for input x. train toggles
	// training-time behaviour (batch-norm statistics, dropout).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward receives dL/d(output) and returns dL/d(input), accumulating
	// parameter gradients into Params().G. Must follow a Forward call.
	Backward(dout *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a sequential container.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(dout *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads zeroes every parameter gradient.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.G.Zero()
	}
}

// TotalSize returns the total number of scalar parameters.
func TotalSize(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.Size()
	}
	return n
}

// CheckNames verifies parameter names are unique (catches wiring bugs in
// model constructors).
func CheckNames(params []*Param) error {
	seen := map[string]bool{}
	for _, p := range params {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}

// KaimingStd returns the He-initialisation standard deviation for a layer
// with the given fan-in, appropriate before ReLU nonlinearities.
func KaimingStd(fanIn int) float64 {
	if fanIn <= 0 {
		return 0
	}
	return math.Sqrt(2 / float64(fanIn))
}

// XavierStd returns the Glorot-initialisation standard deviation.
func XavierStd(fanIn, fanOut int) float64 {
	if fanIn+fanOut <= 0 {
		return 0
	}
	return math.Sqrt(2 / float64(fanIn+fanOut))
}

// Clone deep-copies a parameter list (used to snapshot replicas in tests).
func Clone(params []*Param) []*Param {
	out := make([]*Param, len(params))
	for i, p := range params {
		out[i] = &Param{Name: p.Name, W: p.W.Clone(), G: p.G.Clone()}
	}
	return out
}

// NewRNG is a convenience re-export so model constructors take a single
// import.
func NewRNG(seed uint64) *rng.RNG { return rng.New(seed) }
