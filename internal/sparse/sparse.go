// Package sparse provides the sparse-gradient representation exchanged by
// workers: a sorted index set with values, plus the binary wire format
// (uint32 index + float32 value pairs, the layout NCCL-based systems ship)
// used for traffic accounting in bytes.
package sparse

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
)

// Vector is a sparse view of a dense gradient vector: parallel slices of
// strictly increasing indices and their values.
type Vector struct {
	Indices []int
	Values  []float64
}

// FromDense gathers the given indices out of a dense vector. The indices
// are copied and sorted; duplicates are rejected.
func FromDense(dense []float64, indices []int) (*Vector, error) {
	idx := make([]int, len(indices))
	copy(idx, indices)
	slices.Sort(idx)
	v := &Vector{Indices: idx, Values: make([]float64, len(idx))}
	for i, ix := range idx {
		if ix < 0 || ix >= len(dense) {
			return nil, fmt.Errorf("sparse: index %d out of range [0,%d)", ix, len(dense))
		}
		if i > 0 && idx[i-1] == ix {
			return nil, fmt.Errorf("sparse: duplicate index %d", ix)
		}
		v.Values[i] = dense[ix]
	}
	return v, nil
}

// NNZ returns the number of stored entries.
func (v *Vector) NNZ() int { return len(v.Indices) }

// WireBytes returns the on-the-wire size with the standard uint32+float32
// encoding.
func (v *Vector) WireBytes() int { return 8 * len(v.Indices) }

// ScatterAdd adds alpha·value into dense at each stored index.
func (v *Vector) ScatterAdd(dense []float64, alpha float64) {
	for i, ix := range v.Indices {
		dense[ix] += alpha * v.Values[i]
	}
}

// ScatterZero zeroes dense at each stored index (the error-feedback clear
// on line 11 of Algorithm 1).
func (v *Vector) ScatterZero(dense []float64) {
	for _, ix := range v.Indices {
		dense[ix] = 0
	}
}

// L2Norm returns the Euclidean norm of the stored values.
func (v *Vector) L2Norm() float64 {
	s := 0.0
	for _, x := range v.Values {
		s += x * x
	}
	return math.Sqrt(s)
}

// Union merges two sparse vectors, summing values on shared indices.
// Inputs must be sorted (as produced by FromDense); the result is sorted.
func Union(a, b *Vector) *Vector {
	out := &Vector{
		Indices: make([]int, 0, len(a.Indices)+len(b.Indices)),
		Values:  make([]float64, 0, len(a.Indices)+len(b.Indices)),
	}
	i, j := 0, 0
	for i < len(a.Indices) && j < len(b.Indices) {
		switch {
		case a.Indices[i] < b.Indices[j]:
			out.Indices = append(out.Indices, a.Indices[i])
			out.Values = append(out.Values, a.Values[i])
			i++
		case a.Indices[i] > b.Indices[j]:
			out.Indices = append(out.Indices, b.Indices[j])
			out.Values = append(out.Values, b.Values[j])
			j++
		default:
			out.Indices = append(out.Indices, a.Indices[i])
			out.Values = append(out.Values, a.Values[i]+b.Values[j])
			i++
			j++
		}
	}
	for ; i < len(a.Indices); i++ {
		out.Indices = append(out.Indices, a.Indices[i])
		out.Values = append(out.Values, a.Values[i])
	}
	for ; j < len(b.Indices); j++ {
		out.Indices = append(out.Indices, b.Indices[j])
		out.Values = append(out.Values, b.Values[j])
	}
	return out
}

// UnionAll folds Union over many vectors (k-way merge via repeated
// pairwise merge in a balanced tree, O(total·log n) overall).
func UnionAll(vs []*Vector) *Vector {
	if len(vs) == 0 {
		return &Vector{}
	}
	for len(vs) > 1 {
		var next []*Vector
		for i := 0; i+1 < len(vs); i += 2 {
			next = append(next, Union(vs[i], vs[i+1]))
		}
		if len(vs)%2 == 1 {
			next = append(next, vs[len(vs)-1])
		}
		vs = next
	}
	return vs[0]
}

// Encode serialises the vector into the wire format: nnz as uint32, then
// nnz uint32 indices, then nnz float32 values, little-endian. Values are
// truncated to float32 exactly as GPU systems transmit them.
func (v *Vector) Encode() []byte {
	buf := make([]byte, 4+8*len(v.Indices))
	binary.LittleEndian.PutUint32(buf, uint32(len(v.Indices)))
	off := 4
	for _, ix := range v.Indices {
		binary.LittleEndian.PutUint32(buf[off:], uint32(ix))
		off += 4
	}
	for _, val := range v.Values {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(val)))
		off += 4
	}
	return buf
}

// Decode parses the wire format produced by Encode.
func Decode(buf []byte) (*Vector, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("sparse: short buffer (%d bytes)", len(buf))
	}
	nnz := int(binary.LittleEndian.Uint32(buf))
	want := 4 + 8*nnz
	if len(buf) != want {
		return nil, fmt.Errorf("sparse: buffer %d bytes, want %d for nnz=%d", len(buf), want, nnz)
	}
	v := &Vector{Indices: make([]int, nnz), Values: make([]float64, nnz)}
	off := 4
	for i := 0; i < nnz; i++ {
		v.Indices[i] = int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	prev := -1
	for _, ix := range v.Indices {
		if ix <= prev {
			return nil, fmt.Errorf("sparse: indices not strictly increasing at %d", ix)
		}
		prev = ix
	}
	for i := 0; i < nnz; i++ {
		v.Values[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off:])))
		off += 4
	}
	return v, nil
}

// Density returns nnz / ng.
func (v *Vector) Density(ng int) float64 {
	if ng == 0 {
		return 0
	}
	return float64(v.NNZ()) / float64(ng)
}
