package sparse

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestFromDenseSortsAndGathers(t *testing.T) {
	dense := []float64{10, 11, 12, 13, 14}
	v, err := FromDense(dense, []int{3, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 3 {
		t.Fatalf("nnz %d", v.NNZ())
	}
	wantIdx := []int{0, 3, 4}
	wantVal := []float64{10, 13, 14}
	for i := range wantIdx {
		if v.Indices[i] != wantIdx[i] || v.Values[i] != wantVal[i] {
			t.Fatalf("entry %d = (%d, %v)", i, v.Indices[i], v.Values[i])
		}
	}
	if v.WireBytes() != 24 {
		t.Fatalf("WireBytes %d", v.WireBytes())
	}
}

func TestFromDenseRejectsBadInput(t *testing.T) {
	dense := []float64{1, 2}
	if _, err := FromDense(dense, []int{2}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := FromDense(dense, []int{-1}); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := FromDense(dense, []int{1, 1}); err == nil {
		t.Fatal("duplicate index accepted")
	}
}

func TestScatterAddAndZero(t *testing.T) {
	dense := []float64{1, 2, 3}
	v, _ := FromDense(dense, []int{0, 2})
	out := make([]float64, 3)
	v.ScatterAdd(out, 2)
	if out[0] != 2 || out[1] != 0 || out[2] != 6 {
		t.Fatalf("ScatterAdd gave %v", out)
	}
	v.ScatterZero(dense)
	if dense[0] != 0 || dense[1] != 2 || dense[2] != 0 {
		t.Fatalf("ScatterZero gave %v", dense)
	}
}

func TestL2Norm(t *testing.T) {
	v := &Vector{Indices: []int{0, 1}, Values: []float64{3, 4}}
	if math.Abs(v.L2Norm()-5) > 1e-12 {
		t.Fatalf("norm %v", v.L2Norm())
	}
}

func TestUnionSumsSharedIndices(t *testing.T) {
	a := &Vector{Indices: []int{1, 3, 5}, Values: []float64{1, 3, 5}}
	b := &Vector{Indices: []int{3, 4}, Values: []float64{30, 40}}
	u := Union(a, b)
	wantIdx := []int{1, 3, 4, 5}
	wantVal := []float64{1, 33, 40, 5}
	if u.NNZ() != 4 {
		t.Fatalf("nnz %d", u.NNZ())
	}
	for i := range wantIdx {
		if u.Indices[i] != wantIdx[i] || u.Values[i] != wantVal[i] {
			t.Fatalf("union entry %d = (%d,%v)", i, u.Indices[i], u.Values[i])
		}
	}
}

func TestUnionAllMatchesDenseSum(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const ng = 200
		n := 1 + r.Intn(6)
		dense := make([]float64, ng)
		var vs []*Vector
		for w := 0; w < n; w++ {
			wd := make([]float64, ng)
			k := 1 + r.Intn(50)
			idx := r.Perm(ng)[:k]
			for _, i := range idx {
				wd[i] = r.Norm()
				dense[i] += wd[i]
			}
			v, err := FromDense(wd, idx)
			if err != nil {
				return false
			}
			vs = append(vs, v)
		}
		u := UnionAll(vs)
		// Every nonzero of dense must appear in the union with the summed value.
		got := make([]float64, ng)
		u.ScatterAdd(got, 1)
		for i := range dense {
			if math.Abs(got[i]-dense[i]) > 1e-12 {
				return false
			}
		}
		return sort.IntsAreSorted(u.Indices)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionAllEmpty(t *testing.T) {
	if UnionAll(nil).NNZ() != 0 {
		t.Fatal("empty union should be empty")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const ng = 500
		dense := make([]float64, ng)
		for i := range dense {
			dense[i] = r.Norm()
		}
		k := 1 + r.Intn(100)
		idx := r.Perm(ng)[:k]
		v, err := FromDense(dense, idx)
		if err != nil {
			return false
		}
		buf := v.Encode()
		if len(buf) != 4+v.WireBytes() {
			return false
		}
		back, err := Decode(buf)
		if err != nil {
			return false
		}
		if back.NNZ() != v.NNZ() {
			return false
		}
		for i := range v.Indices {
			if back.Indices[i] != v.Indices[i] {
				return false
			}
			// Values round-trip through float32.
			if float32(v.Values[i]) != float32(back.Values[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := Decode([]byte{1, 0, 0}); err == nil {
		t.Fatal("short accepted")
	}
	v := &Vector{Indices: []int{5, 9}, Values: []float64{1, 2}}
	buf := v.Encode()
	if _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated accepted")
	}
	// Non-increasing indices.
	bad := &Vector{Indices: []int{9, 5}, Values: []float64{1, 2}}
	if _, err := Decode(bad.Encode()); err == nil {
		t.Fatal("unsorted accepted")
	}
}

func TestDensity(t *testing.T) {
	v := &Vector{Indices: make([]int, 5), Values: make([]float64, 5)}
	if v.Density(500) != 0.01 {
		t.Fatalf("density %v", v.Density(500))
	}
	if v.Density(0) != 0 {
		t.Fatal("ng=0 should give 0")
	}
}

func BenchmarkUnionAll_16workers_10k(b *testing.B) {
	r := rng.New(1)
	const ng = 1 << 20
	dense := make([]float64, ng)
	for i := range dense {
		dense[i] = r.Norm()
	}
	var vs []*Vector
	for w := 0; w < 16; w++ {
		idx := make([]int, 10000)
		for i := range idx {
			idx[i] = r.Intn(ng)
		}
		seen := map[int]bool{}
		uniq := idx[:0]
		for _, i := range idx {
			if !seen[i] {
				seen[i] = true
				uniq = append(uniq, i)
			}
		}
		v, _ := FromDense(dense, uniq)
		vs = append(vs, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnionAll(vs)
	}
}
