package topk

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// magnitudeSet returns the multiset of |v[i]| for the given indices, sorted.
func magnitudeSet(v []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = math.Abs(v[j])
	}
	sort.Float64s(out)
	return out
}

func randVec(seed uint64, n int) []float64 {
	r := rng.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Norm()
	}
	return v
}

func TestTopKKernelsAgreeWithSort(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(500)
		k := r.Intn(n + 2) // may exceed n
		v := randVec(seed+1, n)
		want := magnitudeSet(v, SortTopK(v, k))
		gotHeap := magnitudeSet(v, HeapTopK(v, k))
		gotQS := magnitudeSet(v, QuickSelectTopK(v, k))
		if len(gotHeap) != len(want) || len(gotQS) != len(want) {
			return false
		}
		for i := range want {
			if gotHeap[i] != want[i] || gotQS[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKNoDuplicateIndices(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(300)
		k := 1 + r.Intn(n)
		v := randVec(seed, n)
		for _, idx := range [][]int{HeapTopK(v, k), QuickSelectTopK(v, k), SortTopK(v, k)} {
			seen := map[int]bool{}
			for _, i := range idx {
				if i < 0 || i >= n || seen[i] {
					return false
				}
				seen[i] = true
			}
			if len(idx) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	v := []float64{3, -1, 2}
	if got := HeapTopK(v, 0); len(got) != 0 {
		t.Errorf("k=0 gave %v", got)
	}
	if got := HeapTopK(v, -5); len(got) != 0 {
		t.Errorf("k<0 gave %v", got)
	}
	if got := HeapTopK(v, 10); len(got) != 3 {
		t.Errorf("k>n gave %v", got)
	}
	if got := QuickSelectTopK(nil, 3); len(got) != 0 {
		t.Errorf("empty v gave %v", got)
	}
	if got := HeapTopK(nil, 3); len(got) != 0 {
		t.Errorf("empty v heap gave %v", got)
	}
}

func TestTopKSelectsLargest(t *testing.T) {
	v := []float64{0.1, -9, 0.2, 5, -0.3}
	got := HeapTopK(v, 2)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("HeapTopK = %v, want [1 3]", got)
	}
}

func TestTopKAllEqualValues(t *testing.T) {
	v := []float64{2, 2, 2, 2, 2}
	for _, fn := range []func([]float64, int) []int{HeapTopK, QuickSelectTopK, SortTopK} {
		got := fn(v, 3)
		if len(got) != 3 {
			t.Fatalf("equal values: got %d indices, want 3", len(got))
		}
	}
}

func TestAboveThreshold(t *testing.T) {
	v := []float64{0.5, -2, 0, 3, -0.1}
	got := AboveThreshold(v, 1)
	want := []int{1, 3}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("AboveThreshold = %v, want %v", got, want)
	}
	if got := AboveThreshold(v, 100); got != nil {
		t.Fatalf("high threshold should return nil, got %v", got)
	}
	// threshold 0 selects everything (|x| >= 0 always true).
	if got := AboveThreshold(v, 0); len(got) != 5 {
		t.Fatalf("zero threshold selected %d, want 5", len(got))
	}
}

func TestCountAboveMatchesAboveThreshold(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(200)
		v := randVec(seed, n)
		th := math.Abs(r.Norm())
		return CountAbove(v, th) == len(AboveThreshold(v, th))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKthAbs(t *testing.T) {
	v := []float64{1, -5, 3, -2, 4}
	cases := []struct {
		k    int
		want float64
	}{{1, 5}, {2, 4}, {3, 3}, {4, 2}, {5, 1}}
	for _, c := range cases {
		if got := KthAbs(v, c.k); got != c.want {
			t.Errorf("KthAbs(k=%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestKthAbsPanics(t *testing.T) {
	for _, k := range []int{0, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KthAbs(k=%d) should panic", k)
				}
			}()
			KthAbs([]float64{1, 2, 3, 4, 5}, k)
		}()
	}
}

// TestThresholdConsistency: selecting with the exact k-th magnitude as a
// threshold must select at least k elements (>= comparison) and the top-k
// set magnitudes must all be >= that threshold.
func TestThresholdConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(300)
		k := 1 + r.Intn(n)
		v := randVec(seed, n)
		th := KthAbs(v, k)
		if CountAbove(v, th) < k {
			return false
		}
		for _, i := range HeapTopK(v, k) {
			if math.Abs(v[i]) < th {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSelectAdversarialSorted(t *testing.T) {
	// Already-sorted inputs exercise the median-of-three pivot path.
	n := 5000
	asc := make([]float64, n)
	desc := make([]float64, n)
	for i := 0; i < n; i++ {
		asc[i] = float64(i)
		desc[i] = float64(n - i)
	}
	for _, v := range [][]float64{asc, desc} {
		got := magnitudeSet(v, QuickSelectTopK(v, 100))
		want := magnitudeSet(v, SortTopK(v, 100))
		for i := range want {
			if got[i] != want[i] {
				t.Fatal("quickselect wrong on sorted input")
			}
		}
	}
}

func benchVec(n int) []float64 { return randVec(99, n) }

func BenchmarkHeapTopK_1M_k10K(b *testing.B) {
	v := benchVec(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HeapTopK(v, 10000)
	}
}

func BenchmarkQuickSelectTopK_1M_k10K(b *testing.B) {
	v := benchVec(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QuickSelectTopK(v, 10000)
	}
}

func BenchmarkSortTopK_1M_k10K(b *testing.B) {
	v := benchVec(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SortTopK(v, 10000)
	}
}

func BenchmarkAboveThreshold_1M(b *testing.B) {
	v := benchVec(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AboveThreshold(v, 2.5)
	}
}
