package topk

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// checkAgreement verifies that every kernel (allocating and Into forms)
// selects the same magnitude multiset as the sort reference for (v, k).
func checkAgreement(t *testing.T, v []float64, k int) {
	t.Helper()
	want := magnitudeSet(v, SortTopK(v, k))
	var s Scratch
	got := map[string][]int{
		"HeapTopK":            HeapTopK(v, k),
		"QuickSelectTopK":     QuickSelectTopK(v, k),
		"HeapTopKInto":        append([]int(nil), HeapTopKInto(v, k, &s)...),
		"QuickSelectTopKInto": append([]int(nil), QuickSelectTopKInto(v, k, &s)...),
	}
	for name, idx := range got {
		ms := magnitudeSet(v, idx)
		if len(ms) != len(want) {
			t.Fatalf("%s(n=%d, k=%d): selected %d, want %d", name, len(v), k, len(ms), len(want))
		}
		for i := range want {
			if ms[i] != want[i] {
				t.Fatalf("%s(n=%d, k=%d): magnitude multiset differs at %d: %v vs %v",
					name, len(v), k, i, ms[i], want[i])
			}
		}
		seen := make(map[int]bool, len(idx))
		for _, i := range idx {
			if i < 0 || i >= len(v) || seen[i] {
				t.Fatalf("%s(n=%d, k=%d): invalid or duplicate index %d", name, len(v), k, i)
			}
			seen[i] = true
		}
	}
}

// adversarialVectors are the inputs the satellite task calls out: all-equal
// values, ties exactly at the k-th boundary, already sorted both ways, and
// alternating signs.
func adversarialVectors(n int) map[string][]float64 {
	allEqual := make([]float64, n)
	asc := make([]float64, n)
	desc := make([]float64, n)
	ties := make([]float64, n)
	signs := make([]float64, n)
	for i := 0; i < n; i++ {
		allEqual[i] = 1.5
		asc[i] = float64(i)
		desc[i] = float64(n - i)
		// Two magnitude classes: the boundary between them falls on k for
		// many k, forcing tie-break behaviour at the k-th position.
		if i < n/2 {
			ties[i] = 2
		} else {
			ties[i] = 7
		}
		signs[i] = float64(i%5) * float64(1-2*(i%2))
	}
	return map[string][]float64{
		"allEqual": allEqual,
		"asc":      asc,
		"desc":     desc,
		"ties":     ties,
		"signs":    signs,
	}
}

func TestTopKAdversarialInputs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 256} {
		for name, v := range adversarialVectors(n) {
			for _, k := range []int{0, 1, n / 2, n - 1, n, n + 3} {
				if k < 0 {
					continue
				}
				t.Run(name, func(t *testing.T) { checkAgreement(t, v, k) })
			}
		}
	}
}

// TestIntoVariantsReuseScratch verifies a shared scratch is safe to reuse
// across kernels and sizes (the training loop's usage pattern).
func TestIntoVariantsReuseScratch(t *testing.T) {
	var s Scratch
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(400)
		k := r.Intn(n + 1)
		v := randVec(uint64(trial), n)
		want := magnitudeSet(v, SortTopK(v, k))
		for _, got := range [][]int{HeapTopKInto(v, k, &s), QuickSelectTopKInto(v, k, &s)} {
			ms := magnitudeSet(v, got)
			for i := range want {
				if ms[i] != want[i] {
					t.Fatalf("trial %d (n=%d k=%d): scratch reuse broke selection", trial, n, k)
				}
			}
		}
	}
}

// TestIntoVariantsZeroAlloc asserts the acceptance criterion directly: a
// warmed scratch performs zero heap allocations per selection.
func TestIntoVariantsZeroAlloc(t *testing.T) {
	v := randVec(3, 20000)
	k := 200
	var s Scratch
	HeapTopKInto(v, k, &s) // warm the scratch
	if a := testing.AllocsPerRun(20, func() { HeapTopKInto(v, k, &s) }); a != 0 {
		t.Errorf("HeapTopKInto allocates %v per run, want 0", a)
	}
	QuickSelectTopKInto(v, k, &s)
	if a := testing.AllocsPerRun(20, func() { QuickSelectTopKInto(v, k, &s) }); a != 0 {
		t.Errorf("QuickSelectTopKInto allocates %v per run, want 0", a)
	}
	dst := make([]int, 0, len(v))
	th := KthAbsInto(v, k, &s)
	if a := testing.AllocsPerRun(20, func() { dst = AboveThresholdInto(v, th, dst) }); a != 0 {
		t.Errorf("AboveThresholdInto allocates %v per run, want 0", a)
	}
}

// TestHeapSelectRange exercises the introselect fallback path directly:
// after heapSelectRange the front of the range must hold the m largest
// magnitudes of the range.
func TestHeapSelectRange(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(100)
		v := randVec(uint64(trial)+500, n)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		lo := r.Intn(n)
		hi := lo + r.Intn(n-lo)
		m := r.Intn(hi - lo + 2)
		heapSelectRange(v, idx, lo, hi, m)
		// idx must remain a permutation.
		seen := make(map[int]bool, n)
		for _, i := range idx {
			if seen[i] {
				t.Fatalf("trial %d: heapSelectRange broke the permutation", trial)
			}
			seen[i] = true
		}
		if m <= 0 || m >= hi-lo+1 {
			continue
		}
		minSel := math.Inf(1)
		for _, i := range idx[lo : lo+m] {
			if a := math.Abs(v[i]); a < minSel {
				minSel = a
			}
		}
		for _, i := range idx[lo+m : hi+1] {
			if math.Abs(v[i]) > minSel {
				t.Fatalf("trial %d: unselected element %v above selected minimum %v",
					trial, math.Abs(v[i]), minSel)
			}
		}
	}
}

// TestAboveThresholdPreSized checks result length against CountAbove and
// ascending order (the union merge in comm relies on sortedness).
func TestAboveThresholdPreSized(t *testing.T) {
	v := randVec(21, 997)
	for _, th := range []float64{0, 0.5, 1, 2.5, 100} {
		idx := AboveThreshold(v, th)
		if len(idx) != CountAbove(v, th) {
			t.Fatalf("threshold %v: len %d != CountAbove %d", th, len(idx), CountAbove(v, th))
		}
		if !sort.IntsAreSorted(idx) {
			t.Fatalf("threshold %v: indices not ascending", th)
		}
	}
}

// FuzzTopKKernels cross-checks heap, quickselect and the Into variants
// against the sort reference on fuzz-generated vectors.
func FuzzTopKKernels(f *testing.F) {
	f.Add(uint64(1), 10, 3)
	f.Add(uint64(2), 1, 0)
	f.Add(uint64(3), 64, 64)
	f.Add(uint64(4), 100, 99)
	f.Fuzz(func(t *testing.T, seed uint64, n, k int) {
		if n < 1 || n > 2000 {
			return
		}
		if k < 0 || k > n+2 {
			return
		}
		r := rng.New(seed)
		v := make([]float64, n)
		for i := range v {
			switch r.Intn(4) {
			case 0:
				v[i] = 0
			case 1:
				v[i] = 3 // force ties
			default:
				v[i] = r.Norm()
			}
		}
		checkAgreement(t, v, k)
	})
}
