// Package topk implements the gradient-selection kernels shared by all
// sparsifiers: exact top-k by absolute magnitude (heap- and
// quickselect-based), and linear threshold scans.
//
// The paper models the cost of top-k selection over an n-element vector as
// O(n log k) (ref. [29] in the paper); the heap implementation here has
// exactly that complexity and is the kernel whose wall-clock time the
// speedup experiments (Fig 7, Fig 9) measure.
//
// Every kernel has two forms: an allocating convenience function
// (HeapTopK, QuickSelectTopK, AboveThreshold) and a scratch-buffer variant
// (HeapTopKInto, QuickSelectTopKInto, AboveThresholdInto) that reuses
// caller-owned buffers so steady-state selection performs zero heap
// allocations. The Into variants return slices aliasing the scratch; they
// are valid until the scratch is next used.
package topk

import (
	"math"
	"slices"
)

// Scratch holds the reusable buffers of the Into kernels. The zero value is
// ready to use; buffers grow on demand and are retained across calls, so a
// Scratch that has seen its steady-state sizes performs no allocations.
// A Scratch must not be shared between concurrent selections.
type Scratch struct {
	idx  []int     // index permutation / result buffer
	vals []float64 // |v| cache paired with idx (heap kernel)
}

// growIdx returns s.idx with length n, reallocating only when capacity is
// insufficient.
func (s *Scratch) growIdx(n int) []int {
	if cap(s.idx) < n {
		s.idx = make([]int, n)
	}
	s.idx = s.idx[:n]
	return s.idx
}

// growVals returns s.vals with length n, reallocating only when capacity is
// insufficient.
func (s *Scratch) growVals(n int) []float64 {
	if cap(s.vals) < n {
		s.vals = make([]float64, n)
	}
	s.vals = s.vals[:n]
	return s.vals
}

// HeapTopK returns the indices of the k largest elements of v by absolute
// value, in unspecified order. It runs in O(n log k) time and O(k) space.
// If k >= len(v) all indices are returned; if k <= 0 the result is empty.
func HeapTopK(v []float64, k int) []int {
	var s Scratch
	out := HeapTopKInto(v, k, &s)
	if out == nil {
		return nil
	}
	res := make([]int, len(out))
	copy(res, out)
	return res
}

// HeapTopKInto is the scratch-buffer form of HeapTopK: the returned slice
// aliases s and is valid until s is next used. Zero heap allocations once s
// has grown to the steady-state k.
func HeapTopKInto(v []float64, k int, s *Scratch) []int {
	if k <= 0 {
		return nil
	}
	n := len(v)
	if k >= n {
		idx := s.growIdx(n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	// Min-heap of size k over parallel (|v|, index) arrays. Caching the
	// absolute values beside the heap avoids re-reading (and re-absing) v on
	// every sift comparison, and the concrete loops below let the compiler
	// keep the root threshold in a register through the scan.
	hi := s.growIdx(k)
	hv := s.growVals(k)
	for i := 0; i < k; i++ {
		hi[i] = i
		hv[i] = math.Abs(v[i])
	}
	// Floyd heapify: O(k).
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(hv, hi, i, k)
	}
	// Scan the tail with the root threshold cached in a register;
	// math.Abs is branchless (sign-bit clear) on the common platforms.
	root := hv[0]
	for j, x := range v[k:] {
		if a := math.Abs(x); a > root {
			hv[0], hi[0] = a, j+k
			siftDown(hv, hi, 0, k)
			root = hv[0]
		}
	}
	return hi
}

// siftDown restores the min-heap property of the parallel arrays (hv keyed)
// from position i within heap size n.
func siftDown(hv []float64, hi []int, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		smallest := l
		if r := l + 1; r < n && hv[r] < hv[l] {
			smallest = r
		}
		if hv[smallest] >= hv[i] {
			return
		}
		hv[i], hv[smallest] = hv[smallest], hv[i]
		hi[i], hi[smallest] = hi[smallest], hi[i]
		i = smallest
	}
}

// QuickSelectTopK returns the indices of the k largest elements of v by
// absolute value using in-place quickselect over an index permutation.
// Expected O(n) time, O(n) space for the permutation.
func QuickSelectTopK(v []float64, k int) []int {
	var s Scratch
	out := QuickSelectTopKInto(v, k, &s)
	if out == nil {
		return nil
	}
	res := make([]int, len(out))
	copy(res, out)
	return res
}

// QuickSelectTopKInto is the scratch-buffer form of QuickSelectTopK. It is
// an introselect: median-of-three quickselect with a depth budget of
// 2·⌈log₂ n⌉; a partition sequence that exceeds the budget (adversarial
// input) falls back to an in-place heap selection of the remaining range,
// guarding the O(n²) worst case. The returned slice aliases s and is valid
// until s is next used.
func QuickSelectTopKInto(v []float64, k int, s *Scratch) []int {
	if k <= 0 {
		return nil
	}
	n := len(v)
	idx := s.growIdx(n)
	for i := range idx {
		idx[i] = i
	}
	if k >= n {
		return idx
	}
	depth := 0
	budget := 2 * ceilLog2(n)
	lo, hi := 0, n-1
	for lo < hi {
		if depth > budget {
			heapSelectRange(v, idx, lo, hi, k-lo)
			break
		}
		depth++
		p := partition(v, idx, lo, hi)
		switch {
		case p == k-1:
			lo = hi // done
		case p < k-1:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return idx[:k]
}

// ceilLog2 returns ⌈log₂ n⌉ for n >= 1.
func ceilLog2(n int) int {
	b := 0
	for x := n - 1; x > 0; x >>= 1 {
		b++
	}
	return b
}

// heapSelectRange permutes idx[lo..hi] so that the m entries with the
// largest |v| occupy idx[lo:lo+m]. In-place max-heap: heapify the range,
// then pop m maxima to the back and swap the collected block to the front.
// O(len + m·log len) time, zero allocations.
func heapSelectRange(v []float64, idx []int, lo, hi, m int) {
	n := hi - lo + 1
	if m <= 0 || m >= n {
		return
	}
	h := idx[lo : hi+1]
	// Max-heapify by |v|.
	down := func(i, size int) {
		for {
			l := 2*i + 1
			if l >= size {
				return
			}
			largest := l
			if r := l + 1; r < size && abs(v[h[r]]) > abs(v[h[l]]) {
				largest = r
			}
			if abs(v[h[largest]]) <= abs(v[h[i]]) {
				return
			}
			h[i], h[largest] = h[largest], h[i]
			i = largest
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		down(i, n)
	}
	// Pop the m largest to h[n-1], h[n-2], ..., h[n-m].
	for size := n; size > n-m; size-- {
		h[0], h[size-1] = h[size-1], h[0]
		down(0, size-1)
	}
	// Move the selected block to the front of the range.
	for i := 0; i < m; i++ {
		h[i], h[n-m+i] = h[n-m+i], h[i]
	}
}

// partition rearranges idx[lo..hi] around a pivot chosen by median-of-three
// so that elements with larger |v| come first; returns the pivot's final
// position.
func partition(v []float64, idx []int, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Order lo, mid, hi descending by |v|, then use mid as pivot.
	if abs(v[idx[mid]]) > abs(v[idx[lo]]) {
		idx[mid], idx[lo] = idx[lo], idx[mid]
	}
	if abs(v[idx[hi]]) > abs(v[idx[lo]]) {
		idx[hi], idx[lo] = idx[lo], idx[hi]
	}
	if abs(v[idx[hi]]) > abs(v[idx[mid]]) {
		idx[hi], idx[mid] = idx[mid], idx[hi]
	}
	pivot := abs(v[idx[mid]])
	idx[mid], idx[hi] = idx[hi], idx[mid]
	store := lo
	for i := lo; i < hi; i++ {
		if abs(v[idx[i]]) > pivot {
			idx[store], idx[i] = idx[i], idx[store]
			store++
		}
	}
	idx[store], idx[hi] = idx[hi], idx[store]
	return store
}

// SortTopK is the reference implementation: full sort by |v| descending.
// O(n log n). Used for testing and as the "very high cost" baseline.
func SortTopK(v []float64, k int) []int {
	if k <= 0 {
		return nil
	}
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		av, bv := abs(v[a]), abs(v[b])
		if av != bv {
			if av > bv {
				return -1
			}
			return 1
		}
		return a - b // stable tie-break for determinism
	})
	if k > n {
		k = n
	}
	return idx[:k]
}

// AboveThreshold returns the indices i with |v[i]| >= threshold, in
// ascending index order. This is the O(n) kernel used by the
// hard-threshold and SIDCo sparsifiers. The result is pre-sized via
// CountAbove, so it allocates exactly once (never for an empty result).
func AboveThreshold(v []float64, threshold float64) []int {
	n := CountAbove(v, threshold)
	if n == 0 {
		return nil
	}
	idx := make([]int, 0, n)
	for i, x := range v {
		if abs(x) >= threshold {
			idx = append(idx, i)
		}
	}
	return idx
}

// AboveThresholdInto appends the indices i with |v[i]| >= threshold to
// dst[:0] and returns the extended slice. Pass a buffer retained across
// calls for allocation-free steady state.
func AboveThresholdInto(v []float64, threshold float64, dst []int) []int {
	dst = dst[:0]
	for i, x := range v {
		if abs(x) >= threshold {
			dst = append(dst, i)
		}
	}
	return dst
}

// CountAbove returns how many elements satisfy |v[i]| >= threshold without
// materialising the index list.
func CountAbove(v []float64, threshold float64) int {
	n := 0
	for _, x := range v {
		if abs(x) >= threshold {
			n++
		}
	}
	return n
}

// KthAbs returns the k-th largest absolute value in v (1-based), i.e. the
// exact threshold that a top-k selection uses. Panics if k is out of range.
func KthAbs(v []float64, k int) float64 {
	var s Scratch
	return KthAbsInto(v, k, &s)
}

// KthAbsInto is the scratch-buffer form of KthAbs.
func KthAbsInto(v []float64, k int, s *Scratch) float64 {
	if k < 1 || k > len(v) {
		panic("topk: KthAbs k out of range")
	}
	idx := QuickSelectTopKInto(v, k, s)
	// The k-th largest is the minimum of the selected set.
	m := math.Inf(1)
	for _, i := range idx {
		if a := abs(v[i]); a < m {
			m = a
		}
	}
	return m
}

// abs is math.Abs; the alias keeps call sites compact. The compiler
// intrinsifies it to a sign-bit clear, so there is no branch.
func abs(x float64) float64 { return math.Abs(x) }
