// Package topk implements the gradient-selection kernels shared by all
// sparsifiers: exact top-k by absolute magnitude (heap- and
// quickselect-based), and linear threshold scans.
//
// The paper models the cost of top-k selection over an n-element vector as
// O(n log k) (ref. [29] in the paper); the heap implementation here has
// exactly that complexity and is the kernel whose wall-clock time the
// speedup experiments (Fig 7, Fig 9) measure.
package topk

import (
	"math"
	"sort"
)

// HeapTopK returns the indices of the k largest elements of v by absolute
// value, in unspecified order. It runs in O(n log k) time and O(k) space.
// If k >= len(v) all indices are returned; if k <= 0 the result is empty.
func HeapTopK(v []float64, k int) []int {
	if k <= 0 {
		return nil
	}
	if k >= len(v) {
		idx := make([]int, len(v))
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	// Min-heap of size k keyed by |v[idx]|; the root is the smallest of the
	// current candidates, so any larger element replaces it.
	h := make([]int, 0, k)
	less := func(a, b int) bool { return abs(v[h[a]]) < abs(v[h[b]]) }
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(h) && less(l, smallest) {
				smallest = l
			}
			if r < len(h) && less(r, smallest) {
				smallest = r
			}
			if smallest == i {
				return
			}
			h[i], h[smallest] = h[smallest], h[i]
			i = smallest
		}
	}
	siftUp := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(i, parent) {
				return
			}
			h[i], h[parent] = h[parent], h[i]
			i = parent
		}
	}
	for i := range v {
		if len(h) < k {
			h = append(h, i)
			siftUp(len(h) - 1)
			continue
		}
		if abs(v[i]) > abs(v[h[0]]) {
			h[0] = i
			siftDown(0)
		}
	}
	return h
}

// QuickSelectTopK returns the indices of the k largest elements of v by
// absolute value using in-place quickselect over an index permutation.
// Expected O(n) time, O(n) space for the permutation.
func QuickSelectTopK(v []float64, k int) []int {
	if k <= 0 {
		return nil
	}
	n := len(v)
	if k >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Partition idx so that the k indices with the largest |v| end up in
	// idx[:k]. Deterministic median-of-three pivoting avoids adversarial
	// O(n²) for the structured inputs the simulator produces.
	lo, hi := 0, n-1
	for lo < hi {
		p := partition(v, idx, lo, hi)
		switch {
		case p == k-1:
			lo = hi // done
		case p < k-1:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return idx[:k]
}

// partition rearranges idx[lo..hi] around a pivot chosen by median-of-three
// so that elements with larger |v| come first; returns the pivot's final
// position.
func partition(v []float64, idx []int, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Order lo, mid, hi descending by |v|, then use mid as pivot.
	if abs(v[idx[mid]]) > abs(v[idx[lo]]) {
		idx[mid], idx[lo] = idx[lo], idx[mid]
	}
	if abs(v[idx[hi]]) > abs(v[idx[lo]]) {
		idx[hi], idx[lo] = idx[lo], idx[hi]
	}
	if abs(v[idx[hi]]) > abs(v[idx[mid]]) {
		idx[hi], idx[mid] = idx[mid], idx[hi]
	}
	pivot := abs(v[idx[mid]])
	idx[mid], idx[hi] = idx[hi], idx[mid]
	store := lo
	for i := lo; i < hi; i++ {
		if abs(v[idx[i]]) > pivot {
			idx[store], idx[i] = idx[i], idx[store]
			store++
		}
	}
	idx[store], idx[hi] = idx[hi], idx[store]
	return store
}

// SortTopK is the reference implementation: full sort by |v| descending.
// O(n log n). Used for testing and as the "very high cost" baseline.
func SortTopK(v []float64, k int) []int {
	if k <= 0 {
		return nil
	}
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		av, bv := abs(v[idx[a]]), abs(v[idx[b]])
		if av != bv {
			return av > bv
		}
		return idx[a] < idx[b] // stable tie-break for determinism
	})
	if k > n {
		k = n
	}
	return idx[:k]
}

// AboveThreshold returns the indices i with |v[i]| >= threshold, in
// ascending index order. This is the O(n) kernel used by the
// hard-threshold and SIDCo sparsifiers.
func AboveThreshold(v []float64, threshold float64) []int {
	var idx []int
	for i, x := range v {
		if abs(x) >= threshold {
			idx = append(idx, i)
		}
	}
	return idx
}

// CountAbove returns how many elements satisfy |v[i]| >= threshold without
// materialising the index list.
func CountAbove(v []float64, threshold float64) int {
	n := 0
	for _, x := range v {
		if abs(x) >= threshold {
			n++
		}
	}
	return n
}

// KthAbs returns the k-th largest absolute value in v (1-based), i.e. the
// exact threshold that a top-k selection uses. Panics if k is out of range.
func KthAbs(v []float64, k int) float64 {
	if k < 1 || k > len(v) {
		panic("topk: KthAbs k out of range")
	}
	idx := QuickSelectTopK(v, k)
	// The k-th largest is the minimum of the selected set.
	m := math.Inf(1)
	for _, i := range idx {
		if a := abs(v[i]); a < m {
			m = a
		}
	}
	return m
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
