// Package models implements the three DNN application families of the
// paper's Table 2 — computer vision (residual CNN, standing in for
// ResNet-18), language modelling (LSTM) and recommendation (NCF) — scaled
// to train on a single CPU core, plus a small MLP used by the quickstart.
//
// Each workload satisfies the train.Workload contract structurally:
//
//	Name() / MetricName() string
//	NewModel() returning a replica with identical initial weights
//	Evaluate(model) float64
//
// and every model satisfies train.Model:
//
//	Params() []*nn.Param
//	Step(r *rng.RNG) float64   // sample minibatch, forward+backward
package models

import (
	"math"
	"time"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/train"
)

// sampleClock times the dataset-sampling prefix of a model Step so the
// trainer's tracer can split the "sample" phase out of forward/backward.
// Embedded by every model; the cost is two monotonic clock reads per
// Step, with no allocation.
type sampleClock struct {
	last time.Duration
}

// LastSampleTime reports how long the most recent Step spent sampling
// its minibatch. It satisfies the optional interface the trainer probes
// when tracing is enabled.
func (s *sampleClock) LastSampleTime() time.Duration { return s.last }

// ---------------------------------------------------------------- vision --

// VisionConfig sizes the residual CNN workload.
type VisionConfig struct {
	Data      data.VisionConfig
	Width     int // base channel count
	BatchSize int
	InitSeed  uint64
	TestN     int // evaluation set size
}

// DefaultVisionConfig returns the configuration used in the experiments.
func DefaultVisionConfig() VisionConfig {
	return VisionConfig{
		Data:      data.DefaultVisionConfig(),
		Width:     8,
		BatchSize: 8,
		InitSeed:  100,
		TestN:     256,
	}
}

// Vision is the computer-vision workload (paper: ResNet-18 on CIFAR-10).
type Vision struct {
	cfg   VisionConfig
	ds    *data.Vision
	testX *tensor.Tensor
	testY []int
}

// NewVision builds the workload.
func NewVision(cfg VisionConfig) *Vision {
	ds := data.NewVision(cfg.Data)
	v := &Vision{cfg: cfg, ds: ds}
	v.testX, v.testY = ds.TestSet(cfg.TestN)
	return v
}

// Name implements train.Workload.
func (v *Vision) Name() string { return "vision" }

// MetricName implements train.Workload.
func (v *Vision) MetricName() string { return "test accuracy (%)" }

// VisionModel is a small residual CNN.
type VisionModel struct {
	sampleClock
	net *nn.Sequential
	ds  *data.Vision
	cfg VisionConfig

	// Reusable minibatch scratch (per replica; a replica steps serially).
	batchX   *tensor.Tensor
	batchY   []int
	lossGrad *tensor.Tensor
}

// NewModel implements train.Workload. Every call returns an identically
// initialised replica.
func (v *Vision) NewModel() train.Model {
	r := rng.New(v.cfg.InitSeed)
	w := v.cfg.Width
	c := v.cfg.Data.Channels
	block := func(name string, ch int) nn.Layer {
		return nn.NewResidual(nn.NewSequential(
			nn.NewConv2D(name+".conv1", r, ch, ch, 3, 1, 1, false),
			nn.NewBatchNorm(name+".bn1", ch),
			nn.NewReLU(),
			nn.NewConv2D(name+".conv2", r, ch, ch, 3, 1, 1, false),
			nn.NewBatchNorm(name+".bn2", ch),
		))
	}
	net := nn.NewSequential(
		nn.NewConv2D("stem.conv", r, c, w, 3, 1, 1, false),
		nn.NewBatchNorm("stem.bn", w),
		nn.NewReLU(),
		block("stage1.block1", w),
		nn.NewConv2D("stage2.down", r, w, 2*w, 3, 2, 1, false),
		nn.NewBatchNorm("stage2.bn", 2*w),
		nn.NewReLU(),
		block("stage2.block1", 2*w),
		nn.NewGlobalAvgPool(),
		nn.NewDense("fc", r, 2*w, v.cfg.Data.Classes, true),
	)
	return &VisionModel{net: net, ds: v.ds, cfg: v.cfg}
}

// Params implements train.Model.
func (m *VisionModel) Params() []*nn.Param { return m.net.Params() }

// Step implements train.Model.
func (m *VisionModel) Step(r *rng.RNG) float64 {
	if m.batchX == nil {
		d := m.cfg.Data
		m.batchX = tensor.New(m.cfg.BatchSize, d.Channels, d.Size, d.Size)
		m.batchY = make([]int, m.cfg.BatchSize)
	}
	sampleStart := time.Now()
	m.ds.SampleInto(r, m.batchX, m.batchY)
	m.sampleClock.last = time.Since(sampleStart)
	logits := m.net.Forward(m.batchX, true)
	loss, grad := nn.SoftmaxCrossEntropyInto(logits, m.batchY, m.lossGrad)
	m.lossGrad = grad
	m.net.Backward(grad)
	return loss
}

// Evaluate implements train.Workload: test accuracy in percent.
func (v *Vision) Evaluate(mi train.Model) float64 {
	m := mi.(*VisionModel)
	logits := m.net.Forward(v.testX, false)
	c := v.cfg.Data.Classes
	correct := 0
	for i, label := range v.testY {
		if tensor.ArgMax(logits.Data[i*c:(i+1)*c]) == label {
			correct++
		}
	}
	return 100 * float64(correct) / float64(len(v.testY))
}

// ------------------------------------------------------------------ text --

// TextConfig sizes the LSTM language-modelling workload.
type TextConfig struct {
	Data      data.TextConfig
	Embed     int
	Hidden    int
	BatchSize int
	InitSeed  uint64
	TestN     int
}

// DefaultTextConfig returns the configuration used in the experiments.
func DefaultTextConfig() TextConfig {
	return TextConfig{
		Data:      data.DefaultTextConfig(),
		Embed:     16,
		Hidden:    32,
		BatchSize: 8,
		InitSeed:  200,
		TestN:     64,
	}
}

// Text is the language-modelling workload (paper: LSTM on WikiText-2).
type Text struct {
	cfg   TextConfig
	ds    *data.Text
	testX *tensor.Tensor
	testY []int
}

// NewText builds the workload.
func NewText(cfg TextConfig) *Text {
	ds := data.NewText(cfg.Data)
	t := &Text{cfg: cfg, ds: ds}
	t.testX, t.testY = ds.TestSet(cfg.TestN)
	return t
}

// Name implements train.Workload.
func (t *Text) Name() string { return "langmodel" }

// MetricName implements train.Workload.
func (t *Text) MetricName() string { return "test perplexity" }

// TextModel is Embedding → LSTM → Dense over each timestep.
type TextModel struct {
	sampleClock
	emb  *nn.Embedding
	lstm *nn.LSTM
	out  *nn.Dense
	ds   *data.Text
	cfg  TextConfig

	// Reusable minibatch scratch (per replica; a replica steps serially).
	batchX   *tensor.Tensor
	batchT   []int
	lossGrad *tensor.Tensor
	dhView   *tensor.Tensor // [B, T, H] view of the decoder's input gradient
}

// NewModel implements train.Workload.
func (t *Text) NewModel() train.Model {
	r := rng.New(t.cfg.InitSeed)
	return &TextModel{
		emb:  nn.NewEmbedding("embed", r, t.cfg.Data.Vocab, t.cfg.Embed),
		lstm: nn.NewLSTM("lstm", r, t.cfg.Embed, t.cfg.Hidden),
		out:  nn.NewDense("decoder", r, t.cfg.Hidden, t.cfg.Data.Vocab, true),
		ds:   t.ds,
		cfg:  t.cfg,
	}
}

// Params implements train.Model.
func (m *TextModel) Params() []*nn.Param {
	ps := m.emb.Params()
	ps = append(ps, m.lstm.Params()...)
	ps = append(ps, m.out.Params()...)
	return ps
}

// forward runs the full pipeline, returning logits [B*T, V].
func (m *TextModel) forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	e := m.emb.Forward(x, train)   // [B, T, E]
	h := m.lstm.Forward(e, train)  // [B, T, H]
	return m.out.Forward(h, train) // [B*T, V]
}

// Step implements train.Model.
func (m *TextModel) Step(r *rng.RNG) float64 {
	if m.batchX == nil {
		m.batchX = tensor.New(m.cfg.BatchSize, m.cfg.Data.SeqLen)
		m.batchT = make([]int, m.cfg.BatchSize*m.cfg.Data.SeqLen)
	}
	sampleStart := time.Now()
	m.ds.SampleInto(r, m.batchX, m.batchT)
	m.sampleClock.last = time.Since(sampleStart)
	x, targets := m.batchX, m.batchT
	logits := m.forward(x, true)
	loss, grad := nn.SoftmaxCrossEntropyInto(logits, targets, m.lossGrad)
	m.lossGrad = grad
	dh := m.out.Backward(grad)
	b, T := x.Dim(0), x.Dim(1)
	m.dhView = tensor.ViewOf(m.dhView, dh, b, T, m.cfg.Hidden)
	de := m.lstm.Backward(m.dhView)
	m.emb.Backward(de)
	return loss
}

// Evaluate implements train.Workload: perplexity on the held-out set.
func (t *Text) Evaluate(mi train.Model) float64 {
	m := mi.(*TextModel)
	logits := m.forward(t.testX, false)
	loss, _ := nn.SoftmaxCrossEntropy(logits, t.testY)
	return math.Exp(loss)
}

// ---------------------------------------------------------------- recsys --

// RecsysConfig sizes the NCF workload.
type RecsysConfig struct {
	Data      data.RecsysConfig
	GMFDim    int
	MLPDim    int // per-side embedding dim of the MLP tower
	Hidden    int // MLP tower hidden width
	Positives int // positives per batch
	NegRatio  int // negatives per positive
	InitSeed  uint64
	EvalNeg   int // negatives per user in HR@10 evaluation
}

// DefaultRecsysConfig returns the configuration used in the experiments.
func DefaultRecsysConfig() RecsysConfig {
	return RecsysConfig{
		Data:      data.DefaultRecsysConfig(),
		GMFDim:    8,
		MLPDim:    8,
		Hidden:    16,
		Positives: 8,
		NegRatio:  4,
		InitSeed:  300,
		EvalNeg:   50,
	}
}

// Recsys is the recommendation workload (paper: NCF on MovieLens-20M).
type Recsys struct {
	cfg       RecsysConfig
	ds        *data.Recsys
	evalUsers []int
	evalCands [][]int
}

// NewRecsys builds the workload.
func NewRecsys(cfg RecsysConfig) *Recsys {
	ds := data.NewRecsys(cfg.Data)
	r := &Recsys{cfg: cfg, ds: ds}
	r.evalUsers, r.evalCands = ds.EvalLists(cfg.EvalNeg)
	return r
}

// Name implements train.Workload.
func (rw *Recsys) Name() string { return "recsys" }

// MetricName implements train.Workload.
func (rw *Recsys) MetricName() string { return "hr@10 (%)" }

// RecsysModel is neural collaborative filtering: a GMF tower (element-wise
// product of user/item embeddings) and an MLP tower (concatenated
// embeddings through two dense layers), fused by a final dense layer to one
// logit (He et al. [18]).
type RecsysModel struct {
	sampleClock
	userG, itemG *nn.Embedding // GMF embeddings
	userM, itemM *nn.Embedding // MLP embeddings
	fc1, fc2     *nn.Dense
	relu1, relu2 *nn.ReLU
	fuse         *nn.Dense
	ds           *data.Recsys
	cfg          RecsysConfig

	// forward cache for backward
	gmfU, gmfI *tensor.Tensor

	// Reusable minibatch scratch (per replica; a replica steps serially):
	// the sampled triples, the id tensors fed to the embeddings, and the
	// intermediate tower tensors of forward/backward.
	users, items []int
	labels       []float64
	uIDs, iIDs   *tensor.Tensor
	gmf, mlpIn   *tensor.Tensor
	fused        *tensor.Tensor
	dGmf, dMlp   *tensor.Tensor
	dGu, dGi     *tensor.Tensor
	dMu, dMi     *tensor.Tensor
	lossGrad     *tensor.Tensor
}

// NewModel implements train.Workload.
func (rw *Recsys) NewModel() train.Model {
	r := rng.New(rw.cfg.InitSeed)
	cfg := rw.cfg
	return &RecsysModel{
		userG: nn.NewEmbedding("gmf.user", r, cfg.Data.Users, cfg.GMFDim),
		itemG: nn.NewEmbedding("gmf.item", r, cfg.Data.Items, cfg.GMFDim),
		userM: nn.NewEmbedding("mlp.user", r, cfg.Data.Users, cfg.MLPDim),
		itemM: nn.NewEmbedding("mlp.item", r, cfg.Data.Items, cfg.MLPDim),
		fc1:   nn.NewDense("mlp.fc1", r, 2*cfg.MLPDim, cfg.Hidden, true),
		relu1: nn.NewReLU(),
		fc2:   nn.NewDense("mlp.fc2", r, cfg.Hidden, cfg.GMFDim, true),
		relu2: nn.NewReLU(),
		fuse:  nn.NewDense("fuse", r, 2*cfg.GMFDim, 1, true),
		ds:    rw.ds,
		cfg:   cfg,
	}
}

// Params implements train.Model.
func (m *RecsysModel) Params() []*nn.Param {
	var ps []*nn.Param
	for _, l := range []nn.Layer{m.userG, m.itemG, m.userM, m.itemM, m.fc1, m.fc2, m.fuse} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// forward scores (user, item) pairs, returning logits [B]. The id tensors
// are per-replica scratch, rebuilt only when the batch size changes (the
// training batch is fixed; evaluation batches differ and are rare).
func (m *RecsysModel) forward(users, items []int, train bool) *tensor.Tensor {
	b := len(users)
	m.uIDs = tensor.Ensure(m.uIDs, b)
	m.iIDs = tensor.Ensure(m.iIDs, b)
	uIDs, iIDs := m.uIDs, m.iIDs
	for i := range users {
		uIDs.Data[i] = float64(users[i])
		iIDs.Data[i] = float64(items[i])
	}
	gu := m.userG.Forward(uIDs, train) // [B, G]
	gi := m.itemG.Forward(iIDs, train)
	m.gmfU, m.gmfI = gu, gi
	g := m.cfg.GMFDim
	m.gmf = tensor.Ensure(m.gmf, b, g)
	gmf := m.gmf
	for i := range gmf.Data {
		gmf.Data[i] = gu.Data[i] * gi.Data[i]
	}
	mu := m.userM.Forward(uIDs, train) // [B, M]
	mi := m.itemM.Forward(iIDs, train)
	m.mlpIn = concatColsInto(m.mlpIn, mu, mi)
	h := m.relu1.Forward(m.fc1.Forward(m.mlpIn, train), train)
	mlpOut := m.relu2.Forward(m.fc2.Forward(h, train), train) // [B, G]
	m.fused = concatColsInto(m.fused, gmf, mlpOut)            // [B, 2G]
	return m.fuse.Forward(m.fused, train)                     // [B, 1]
}

// backward propagates dL/dlogits through both towers.
func (m *RecsysModel) backward(dlogits *tensor.Tensor) {
	dFused := m.fuse.Backward(dlogits) // [B, 2G]
	g := m.cfg.GMFDim
	m.dGmf, m.dMlp = splitColsInto(m.dGmf, m.dMlp, dFused, g)
	dGmf, dMlpOut := m.dGmf, m.dMlp
	// GMF tower: d gu = dgmf ⊙ gi, d gi = dgmf ⊙ gu.
	m.dGu = tensor.Ensure(m.dGu, dGmf.Shape()...)
	m.dGi = tensor.Ensure(m.dGi, dGmf.Shape()...)
	dGu, dGi := m.dGu, m.dGi
	for i := range dGmf.Data {
		dGu.Data[i] = dGmf.Data[i] * m.gmfI.Data[i]
		dGi.Data[i] = dGmf.Data[i] * m.gmfU.Data[i]
	}
	m.userG.Backward(dGu)
	m.itemG.Backward(dGi)
	// MLP tower.
	dh := m.fc2.Backward(m.relu2.Backward(dMlpOut))
	dMlpIn := m.fc1.Backward(m.relu1.Backward(dh))
	m.dMu, m.dMi = splitColsInto(m.dMu, m.dMi, dMlpIn, m.cfg.MLPDim)
	m.userM.Backward(m.dMu)
	m.itemM.Backward(m.dMi)
}

// Step implements train.Model.
func (m *RecsysModel) Step(r *rng.RNG) float64 {
	sampleStart := time.Now()
	m.users, m.items, m.labels = m.ds.SampleInto(r, m.cfg.Positives, m.cfg.NegRatio, m.users, m.items, m.labels)
	m.sampleClock.last = time.Since(sampleStart)
	logits := m.forward(m.users, m.items, true)
	loss, grad := nn.BCEWithLogitsInto(logits, m.labels, m.lossGrad)
	m.lossGrad = grad
	m.backward(grad)
	return loss
}

// Evaluate implements train.Workload: hit rate at 10 in percent.
func (rw *Recsys) Evaluate(mi train.Model) float64 {
	m := mi.(*RecsysModel)
	hits := 0
	for i, u := range rw.evalUsers {
		cands := rw.evalCands[i]
		users := make([]int, len(cands))
		for j := range users {
			users[j] = u
		}
		scores := m.forward(users, cands, false)
		// Rank of candidate 0 (the held-out positive).
		rank := 0
		target := scores.Data[0]
		for _, s := range scores.Data[1:] {
			if s > target {
				rank++
			}
		}
		if rank < 10 {
			hits++
		}
	}
	return 100 * float64(hits) / float64(len(rw.evalUsers))
}

// ----------------------------------------------------------------- mlp --

// MLPConfig sizes the quickstart MLP workload.
type MLPConfig struct {
	Data      data.VisionConfig
	Hidden    int
	BatchSize int
	InitSeed  uint64
	TestN     int
}

// DefaultMLPConfig returns the quickstart configuration.
func DefaultMLPConfig() MLPConfig {
	return MLPConfig{Data: data.DefaultVisionConfig(), Hidden: 32, BatchSize: 16, InitSeed: 400, TestN: 256}
}

// MLP is a small dense classifier over the flattened vision dataset,
// used by the quickstart example and as a fast workload in tests.
type MLP struct {
	cfg   MLPConfig
	ds    *data.Vision
	testX *tensor.Tensor
	testY []int
}

// NewMLP builds the workload.
func NewMLP(cfg MLPConfig) *MLP {
	ds := data.NewVision(cfg.Data)
	m := &MLP{cfg: cfg, ds: ds}
	m.testX, m.testY = ds.TestSet(cfg.TestN)
	return m
}

// Name implements train.Workload.
func (m *MLP) Name() string { return "mlp" }

// MetricName implements train.Workload.
func (m *MLP) MetricName() string { return "test accuracy (%)" }

// MLPModel is Flatten → Dense → ReLU → Dense.
type MLPModel struct {
	sampleClock
	net *nn.Sequential
	ds  *data.Vision
	cfg MLPConfig

	// Reusable minibatch scratch (per replica; a replica steps serially).
	batchX   *tensor.Tensor
	batchY   []int
	lossGrad *tensor.Tensor
}

// NewModel implements train.Workload.
func (m *MLP) NewModel() train.Model {
	r := rng.New(m.cfg.InitSeed)
	in := m.cfg.Data.Channels * m.cfg.Data.Size * m.cfg.Data.Size
	h2 := m.cfg.Hidden / 2
	if h2 < 4 {
		h2 = 4
	}
	net := nn.NewSequential(
		nn.NewFlatten(),
		nn.NewDense("fc1", r, in, m.cfg.Hidden, true),
		nn.NewReLU(),
		nn.NewDense("fc2", r, m.cfg.Hidden, h2, true),
		nn.NewReLU(),
		nn.NewDense("fc3", r, h2, m.cfg.Data.Classes, true),
	)
	return &MLPModel{net: net, ds: m.ds, cfg: m.cfg}
}

// Params implements train.Model.
func (mm *MLPModel) Params() []*nn.Param { return mm.net.Params() }

// Step implements train.Model.
func (mm *MLPModel) Step(r *rng.RNG) float64 {
	if mm.batchX == nil {
		d := mm.cfg.Data
		mm.batchX = tensor.New(mm.cfg.BatchSize, d.Channels, d.Size, d.Size)
		mm.batchY = make([]int, mm.cfg.BatchSize)
	}
	sampleStart := time.Now()
	mm.ds.SampleInto(r, mm.batchX, mm.batchY)
	mm.sampleClock.last = time.Since(sampleStart)
	logits := mm.net.Forward(mm.batchX, true)
	loss, grad := nn.SoftmaxCrossEntropyInto(logits, mm.batchY, mm.lossGrad)
	mm.lossGrad = grad
	mm.net.Backward(grad)
	return loss
}

// Evaluate implements train.Workload.
func (m *MLP) Evaluate(mi train.Model) float64 {
	mm := mi.(*MLPModel)
	logits := mm.net.Forward(m.testX, false)
	c := m.cfg.Data.Classes
	correct := 0
	for i, label := range m.testY {
		if tensor.ArgMax(logits.Data[i*c:(i+1)*c]) == label {
			correct++
		}
	}
	return 100 * float64(correct) / float64(len(m.testY))
}

// --------------------------------------------------------------- helpers --

// concatColsInto concatenates two [B, X] / [B, Y] tensors into [B, X+Y],
// reusing dst's buffer when capacity allows.
func concatColsInto(dst, a, b *tensor.Tensor) *tensor.Tensor {
	ba, ca := a.Dim(0), a.Dim(1)
	cb := b.Dim(1)
	out := tensor.Ensure(dst, ba, ca+cb)
	for i := 0; i < ba; i++ {
		copy(out.Data[i*(ca+cb):i*(ca+cb)+ca], a.Data[i*ca:(i+1)*ca])
		copy(out.Data[i*(ca+cb)+ca:(i+1)*(ca+cb)], b.Data[i*cb:(i+1)*cb])
	}
	return out
}

// splitColsInto splits [B, X+Y] at column x into [B, X] and [B, Y], reusing
// the destination buffers.
func splitColsInto(dstA, dstB, t *tensor.Tensor, x int) (*tensor.Tensor, *tensor.Tensor) {
	b, c := t.Dim(0), t.Dim(1)
	a := tensor.Ensure(dstA, b, x)
	bb := tensor.Ensure(dstB, b, c-x)
	for i := 0; i < b; i++ {
		copy(a.Data[i*x:(i+1)*x], t.Data[i*c:i*c+x])
		copy(bb.Data[i*(c-x):(i+1)*(c-x)], t.Data[i*c+x:(i+1)*c])
	}
	return a, bb
}

// Compile-time interface conformance checks.
var (
	_ train.Workload = (*Vision)(nil)
	_ train.Workload = (*Text)(nil)
	_ train.Workload = (*Recsys)(nil)
	_ train.Workload = (*MLP)(nil)
	_ train.Model    = (*VisionModel)(nil)
	_ train.Model    = (*TextModel)(nil)
	_ train.Model    = (*RecsysModel)(nil)
	_ train.Model    = (*MLPModel)(nil)
)
