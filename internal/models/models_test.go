package models

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/train"
)

func randMat(r *rng.RNG, rows, cols int) *tensor.Tensor {
	return tensor.Randn(r, 1, rows, cols)
}

// workloads under test, with the iteration budget and learning rate each
// needs to show clear single-worker learning progress.
func testWorkloads() []struct {
	name  string
	w     train.Workload
	lr    float64
	iters int
} {
	return []struct {
		name  string
		w     train.Workload
		lr    float64
		iters int
	}{
		{"mlp", NewMLP(DefaultMLPConfig()), 0.3, 60},
		{"vision", NewVision(DefaultVisionConfig()), 0.2, 40},
		{"langmodel", NewText(DefaultTextConfig()), 1.0, 60},
		{"recsys", NewRecsys(DefaultRecsysConfig()), 1.0, 600},
	}
}

func TestReplicasIdenticalAtInit(t *testing.T) {
	for _, tc := range testWorkloads() {
		a := tc.w.NewModel().Params()
		b := tc.w.NewModel().Params()
		if len(a) != len(b) {
			t.Fatalf("%s: param count differs", tc.name)
		}
		for i := range a {
			if a[i].Name != b[i].Name {
				t.Fatalf("%s: param order differs: %s vs %s", tc.name, a[i].Name, b[i].Name)
			}
			for j := range a[i].W.Data {
				if a[i].W.Data[j] != b[i].W.Data[j] {
					t.Fatalf("%s: replicas differ at %s[%d]", tc.name, a[i].Name, j)
				}
			}
		}
	}
}

func TestParamNamesUnique(t *testing.T) {
	for _, tc := range testWorkloads() {
		if err := nn.CheckNames(tc.w.NewModel().Params()); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestModelsHaveHeterogeneousLayers(t *testing.T) {
	// The paper's premise: layers differ in size (and later, in norm).
	for _, tc := range testWorkloads() {
		params := tc.w.NewModel().Params()
		if len(params) < 5 {
			t.Errorf("%s: only %d parameter tensors; too homogeneous for DEFT experiments", tc.name, len(params))
		}
		minSz, maxSz := params[0].Size(), params[0].Size()
		for _, p := range params {
			if p.Size() < minSz {
				minSz = p.Size()
			}
			if p.Size() > maxSz {
				maxSz = p.Size()
			}
		}
		if maxSz < 10*minSz {
			t.Errorf("%s: layer sizes too uniform (%d..%d)", tc.name, minSz, maxSz)
		}
	}
}

func TestStepProducesFiniteGradients(t *testing.T) {
	for _, tc := range testWorkloads() {
		m := tc.w.NewModel()
		nn.ZeroGrads(m.Params())
		loss := m.Step(rng.New(1))
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("%s: loss %v", tc.name, loss)
		}
		nonZero := 0
		for _, p := range m.Params() {
			for _, g := range p.G.Data {
				if math.IsNaN(g) || math.IsInf(g, 0) {
					t.Fatalf("%s: non-finite gradient in %s", tc.name, p.Name)
				}
				if g != 0 {
					nonZero++
				}
			}
		}
		if nonZero == 0 {
			t.Fatalf("%s: all gradients zero", tc.name)
		}
	}
}

func TestSingleWorkerSGDLearns(t *testing.T) {
	// Plain (non-sparsified, n=1) SGD must improve the training loss for
	// every workload. This is the substrate sanity check everything else
	// rests on.
	for _, tc := range testWorkloads() {
		m := tc.w.NewModel()
		params := m.Params()
		r := rng.New(42)
		var head, tail float64
		headN, tailN := 0, 0
		// head = the first few minibatches (the loss near initialisation);
		// tail = the last quarter. The workloads plateau at different
		// speeds, so comparing against initialisation is the robust check.
		headWin := 5
		for it := 0; it < tc.iters; it++ {
			nn.ZeroGrads(params)
			loss := m.Step(r.Split(uint64(it)))
			for _, p := range params {
				p.W.AddScaled(-tc.lr, p.G)
			}
			if it < headWin {
				head += loss
				headN++
			}
			if it >= tc.iters*3/4 {
				tail += loss
				tailN++
			}
		}
		head /= float64(headN)
		tail /= float64(tailN)
		if tail >= head*0.9 {
			t.Errorf("%s: loss did not improve (head %.4f tail %.4f)", tc.name, head, tail)
		}
	}
}

func TestEvaluateMetricsInRange(t *testing.T) {
	for _, tc := range testWorkloads() {
		m := tc.w.NewModel()
		metric := tc.w.Evaluate(m)
		switch tc.name {
		case "mlp", "vision", "recsys":
			if metric < 0 || metric > 100 {
				t.Errorf("%s: metric %v out of [0,100]", tc.name, metric)
			}
		case "langmodel":
			if metric <= 1 || math.IsNaN(metric) {
				t.Errorf("%s: perplexity %v invalid", tc.name, metric)
			}
		}
	}
}

func TestRecsysHRBeatsChanceAfterTraining(t *testing.T) {
	w := NewRecsys(DefaultRecsysConfig())
	m := w.NewModel()
	params := m.Params()
	r := rng.New(7)
	for it := 0; it < 400; it++ {
		nn.ZeroGrads(params)
		m.Step(r.Split(uint64(it)))
		for _, p := range params {
			p.W.AddScaled(-0.5, p.G)
		}
	}
	hr := w.Evaluate(m)
	// Chance HR@10 with 1 positive among 51 candidates ≈ 19.6%.
	if hr < 30 {
		t.Errorf("hr@10 = %v%%, want well above chance (~20%%)", hr)
	}
}

func TestTextPerplexityDropsBelowUniform(t *testing.T) {
	w := NewText(DefaultTextConfig())
	m := w.NewModel()
	params := m.Params()
	r := rng.New(8)
	uniform := float64(DefaultTextConfig().Data.Vocab)
	for it := 0; it < 150; it++ {
		nn.ZeroGrads(params)
		m.Step(r.Split(uint64(it)))
		for _, p := range params {
			p.W.AddScaled(-1.0, p.G)
		}
	}
	ppl := w.Evaluate(m)
	if ppl > uniform*0.7 {
		t.Errorf("perplexity %v did not drop below 0.7×uniform (%v)", ppl, uniform)
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	r := rng.New(9)
	a := randMat(r, 3, 4)
	b := randMat(r, 3, 2)
	c := concatColsInto(nil, a, b)
	if c.Dim(0) != 3 || c.Dim(1) != 6 {
		t.Fatalf("concat shape %v", c.Shape())
	}
	a2, b2 := splitColsInto(nil, nil, c, 4)
	for i := range a.Data {
		if a.Data[i] != a2.Data[i] {
			t.Fatal("split lost a")
		}
	}
	for i := range b.Data {
		if b.Data[i] != b2.Data[i] {
			t.Fatal("split lost b")
		}
	}
}
